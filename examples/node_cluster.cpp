// node_cluster: the multi-client multi-server configuration of Figure 2.
//
// One BeSS server owns the database; a node server caches for its "node";
// clients connect both directly (copy-on-access over the network, with
// inter-transaction caching and callback locking) and through the node
// server. A second server demonstrates a two-server distributed commit.
//
//   $ ./node_cluster /tmp/bess_cluster
#include <cstdio>
#include <string>

#include "bess/bess.h"
#include "bess/bess_internal.h"

using namespace bess;

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const std::string dir = argc > 1 ? argv[1] : "/tmp/bess_cluster";
  (void)system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());

  // ---- server 1 owns database 1 ----------------------------------------------
  Database::Options dbo;
  dbo.dir = dir + "/db1";
  dbo.db_id = 1;
  dbo.create = true;
  auto db1 = Database::Open(dbo);
  if (!db1.ok()) return 1;
  BessServer::Options so;
  so.socket_path = dir + "/server1.sock";
  BessServer server1(so);
  (void)server1.AddDatabase(db1->get());
  if (!server1.Start().ok()) return 1;
  printf("server1 owns database 1 at %s\n", so.socket_path.c_str());

  // ---- node server: caches on behalf of local applications (§3) -------------
  NodeServer::Options no;
  no.socket_path = dir + "/node.sock";
  no.upstream_path = so.socket_path;
  auto node = NodeServer::Start(no);
  if (!node.ok()) return 1;
  printf("node server caching for local applications\n");

  // ---- client A (direct): creates the shared design --------------------------
  RemoteClient::Options ca;
  ca.server_path = so.socket_path;
  ca.db_id = 1;
  auto a = RemoteClient::Connect(ca);
  if (!a.ok()) return 1;
  if (!(*a)->Begin().ok()) return 1;
  auto file = (*a)->CreateFile("designs");
  if (!file.ok()) return 1;
  uint64_t v = 1;
  auto obj = (*a)->CreateObject(*file, kRawBytesType, 8, &v);
  if (!obj.ok()) return 1;
  if (!(*a)->SetRoot("design", *obj).ok()) return 1;
  if (!(*a)->Commit().ok()) return 1;
  printf("client A created the design (value 1); its locks stay cached\n");

  // ---- applications B and C on the node --------------------------------------
  RemoteClient::Options cb;
  cb.server_path = no.socket_path;  // through the node server
  cb.db_id = 1;
  // Applications behind a node server do not cache locks themselves: the
  // node caches data and locks on their behalf and answers the server's
  // callbacks (§3). They release their (node-local) locks at commit.
  cb.cache_inter_txn = false;
  auto b = RemoteClient::Connect(cb);
  auto c = RemoteClient::Connect(cb);
  if (!b.ok() || !c.ok()) return 1;

  if (!(*b)->Begin().ok()) return 1;
  auto design_b = (*b)->GetRoot("design");
  if (!design_b.ok()) return 1;
  printf("app B (via node) reads value %llu\n",
         (unsigned long long)*reinterpret_cast<uint64_t*>((*design_b)->dp));
  if (!(*b)->Commit().ok()) return 1;

  if (!(*c)->Begin().ok()) return 1;
  auto design_c = (*c)->GetRoot("design");
  if (!design_c.ok()) return 1;
  printf("app C (via node) reads value %llu — served from the node cache "
         "(cache hits so far: %llu)\n",
         (unsigned long long)*reinterpret_cast<uint64_t*>((*design_c)->dp),
         (unsigned long long)(*node)->stats().cache_hits);
  if (!(*c)->Commit().ok()) return 1;

  // ---- a write by A triggers callbacks to reclaim cached locks ---------------
  if (!(*a)->Begin().ok()) return 1;
  auto design_a = (*a)->GetRoot("design");
  if (!design_a.ok()) return 1;
  (*reinterpret_cast<uint64_t*>((*design_a)->dp)) = 42;
  if (!(*a)->Commit().ok()) return 1;
  printf("client A wrote value 42 (server sent %llu callbacks to reclaim "
         "conflicting cached locks)\n",
         (unsigned long long)server1.stats().callbacks_sent);

  if (!(*b)->Begin().ok()) return 1;
  auto reread = (*b)->GetRoot("design");
  if (!reread.ok()) return 1;
  printf("app B re-reads value %llu (node cache was invalidated)\n",
         (unsigned long long)*reinterpret_cast<uint64_t*>((*reread)->dp));
  if (!(*b)->Commit().ok()) return 1;

  // ---- second server: a transaction spanning two databases (2PC, §3) ---------
  Database::Options dbo2;
  dbo2.dir = dir + "/db2";
  dbo2.db_id = 2;
  dbo2.create = true;
  auto db2 = Database::Open(dbo2);
  if (!db2.ok()) return 1;
  BessServer::Options so2;
  so2.socket_path = dir + "/server2.sock";
  BessServer server2(so2);
  (void)server2.AddDatabase(db2->get());
  if (!server2.Start().ok()) return 1;

  // Seed an object on server 2 and learn its OID.
  RemoteClient::Options c2o;
  c2o.server_path = so2.socket_path;
  c2o.db_id = 2;
  auto seeder = RemoteClient::Connect(c2o);
  if (!seeder.ok()) return 1;
  if (!(*seeder)->Begin().ok()) return 1;
  auto f2 = (*seeder)->CreateFile("mirror");
  uint64_t zero = 0;
  auto remote_obj = (*seeder)->CreateObject(*f2, kRawBytesType, 8, &zero);
  if (!remote_obj.ok()) return 1;
  auto remote_oid = (*seeder)->OidOf(*remote_obj);
  if (!(*seeder)->Commit().ok()) return 1;

  // Client A attaches server 2 and commits one transaction touching both.
  if (!(*a)->AddServer(so2.socket_path, {2}).ok()) return 1;
  auto mirrored = (*a)->Deref(*remote_oid);
  if (!mirrored.ok()) return 1;
  if (!(*a)->Begin().ok()) return 1;
  (*reinterpret_cast<uint64_t*>((*design_a)->dp)) = 100;   // db 1
  (*reinterpret_cast<uint64_t*>((*mirrored)->dp)) = 100;   // db 2
  if (!(*a)->Commit().ok()) return 1;
  printf("one transaction updated both servers atomically via 2PC\n");

  node->reset();
  server1.Stop();
  server2.Stop();
  printf("ok\n");
  return 0;
}
