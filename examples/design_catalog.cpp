// design_catalog: an OO7-flavoured CAD part catalog — the object-oriented
// DBMS workload the paper's storage structures target.
//
// Builds a catalog of assemblies and parts, runs pointer-chase traversals
// (hot and cold), updates parts in place (automatic write detection), and
// then demonstrates the paper's headline flexibility: the data segments are
// moved to another storage area *while references stay valid* (§2.1), and
// compacted after deletions.
//
//   $ ./design_catalog /tmp/bess_catalog
#include <cstdio>
#include <string>
#include <vector>

#include "bess/bess.h"
#include "bess/bess_internal.h"
#include "util/random.h"

using namespace bess;

struct AtomicPart {
  uint64_t connections[3];  // refs at 0, 8, 16
  uint64_t assembly;        // ref at 24
  uint64_t part_id;
  uint64_t build_cost;
  char doc[80];
};

struct Assembly {
  uint64_t first_part;  // ref at 0
  uint64_t assembly_id;
  char name[48];
};

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/bess_catalog";
  Database::Options options;
  options.dir = dir;
  options.create = true;
  options.outbound_capacity = 256;
  auto dbr = Database::Open(options);
  if (!dbr.ok()) {
    fprintf(stderr, "open: %s\n", dbr.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*dbr);

  TypeDescriptor part_t;
  part_t.name = "AtomicPart";
  part_t.fixed_size = sizeof(AtomicPart);
  part_t.ref_offsets = {0, 8, 16, 24};
  TypeDescriptor asm_t;
  asm_t.name = "Assembly";
  asm_t.fixed_size = sizeof(Assembly);
  asm_t.ref_offsets = {0};
  auto tp_part = db->RegisterType(part_t);
  auto tp_asm = db->RegisterType(asm_t);
  if (!tp_part.ok() || !tp_asm.ok()) return 1;

  auto file = db->CreateFile("catalog");
  if (!file.ok()) return 1;

  // ---- build: 20 assemblies x 200 parts, ring-connected ----------------------
  const int kAssemblies = 20, kPartsPer = 200;
  Random rng(2026);
  {
    Transaction txn(db.get());
    std::vector<ref<AtomicPart>> all_parts;
    for (int a = 0; a < kAssemblies; ++a) {
      auto assembly = CreateObject<Assembly>(db.get(), *file, *tp_asm);
      if (!assembly.ok()) return 1;
      (*assembly)->assembly_id = static_cast<uint64_t>(a);
      snprintf((*assembly)->name, sizeof(Assembly::name), "assembly-%03d", a);
      std::vector<ref<AtomicPart>> parts;
      for (int p = 0; p < kPartsPer; ++p) {
        auto part = CreateObject<AtomicPart>(db.get(), *file, *tp_part);
        if (!part.ok()) return 1;
        (*part)->part_id = static_cast<uint64_t>(a * kPartsPer + p);
        (*part)->build_cost = rng.Range(10, 9999);
        (*part)->assembly = assembly->AsField();
        snprintf((*part)->doc, sizeof(AtomicPart::doc),
                 "spec sheet for part %d/%d", a, p);
        parts.push_back(*part);
      }
      // Ring + random chords, like OO7's connection structure.
      for (int p = 0; p < kPartsPer; ++p) {
        parts[p]->connections[0] = parts[(p + 1) % kPartsPer].AsField();
        parts[p]->connections[1] =
            parts[rng.Uniform(kPartsPer)].AsField();
        parts[p]->connections[2] =
            parts[rng.Uniform(kPartsPer)].AsField();
      }
      (*assembly)->first_part = parts[0].AsField();
      if (a == 0 && !db->SetRoot("assembly0", assembly->slot()).ok()) {
        return 1;
      }
      all_parts.insert(all_parts.end(), parts.begin(), parts.end());
    }
    if (!txn.Commit().ok()) return 1;
    printf("built %d assemblies, %d parts\n", kAssemblies,
           kAssemblies * kPartsPer);
  }

  // ---- traversal T1: full ring walk summing build costs ----------------------
  auto t1 = [&]() -> uint64_t {
    auto a0 = GetRoot<Assembly>(db.get(), "assembly0");
    if (!a0.ok()) return 0;
    ref<AtomicPart> cur = ref<AtomicPart>::FromField((*a0)->first_part);
    uint64_t sum = 0;
    for (int i = 0; i < kPartsPer; ++i) {
      sum += cur->build_cost;
      cur = ref<AtomicPart>::FromField(cur->connections[0]);
    }
    return sum;
  };
  {
    Transaction txn(db.get());
    printf("T1 ring-walk cost sum: %llu\n",
           (unsigned long long)t1());
    (void)txn.Commit();
  }

  // ---- update pass: raise cost of every part in assembly 0 -------------------
  {
    Transaction txn(db.get());
    auto a0 = GetRoot<Assembly>(db.get(), "assembly0");
    if (!a0.ok()) return 1;
    ref<AtomicPart> cur = ref<AtomicPart>::FromField((*a0)->first_part);
    for (int i = 0; i < kPartsPer; ++i) {
      cur->build_cost += 1;  // plain store; detected by hardware (§2.3)
      cur = ref<AtomicPart>::FromField(cur->connections[0]);
    }
    if (!txn.Commit().ok()) return 1;
    printf("updated %d parts in place (no dirty calls)\n", kPartsPer);
  }

  // ---- reorganization: move the whole catalog to a new storage area ----------
  {
    auto area = db->AddStorageArea();
    if (!area.ok()) return 1;
    Transaction txn(db.get());
    auto a0 = GetRoot<Assembly>(db.get(), "assembly0");
    if (!a0.ok()) return 1;
    // A reference held across the move:
    ref<AtomicPart> held = ref<AtomicPart>::FromField((*a0)->first_part);
    const uint64_t before = held->build_cost;
    if (!db->MoveFileData(*file, *area).ok()) return 1;
    printf("moved data segments to area %u; held ref still reads cost=%llu "
           "(was %llu)\n",
           *area, (unsigned long long)held->build_cost,
           (unsigned long long)before);
    if (!txn.Commit().ok()) return 1;
  }

  // ---- deletion + compaction --------------------------------------------------
  {
    Transaction txn(db.get());
    // Delete every part with an odd cost, then squeeze the holes out.
    uint64_t deleted = 0;
    std::vector<Slot*> victims;
    if (!db->Scan(*file, [&](Slot* s) {
              if (s->size == sizeof(AtomicPart)) {
                auto* part = reinterpret_cast<AtomicPart*>(s->dp);
                if (part->build_cost % 2 == 1) victims.push_back(s);
              }
              return Status::OK();
            })
             .ok()) {
      return 1;
    }
    for (Slot* s : victims) {
      if (db->DeleteObject(s).ok()) ++deleted;
    }
    if (!db->CompactFile(*file).ok()) return 1;
    if (!txn.Commit().ok()) return 1;
    auto remaining = db->CountObjects(*file);
    printf("deleted %llu odd-cost parts, compacted; %llu objects remain\n",
           (unsigned long long)deleted,
           (unsigned long long)remaining.value_or(0));
  }

  printf("ok\n");
  return 0;
}
