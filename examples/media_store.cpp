// media_store: a Prospector/Calico-flavoured multimedia store (paper §1).
//
// Demonstrates the large-object machinery: transparent large objects
// (accessed like small ones, §2.1), the byte-range class for very large
// objects (insert/append/delete at arbitrary positions), user-registered
// compression hooks (§2.4), and a parallel multifile scan for content
// analysis (§2, the Prospector/MoonBase pattern).
//
//   $ ./media_store /tmp/bess_media
#include <atomic>
#include <cstdio>
#include <string>

#include "bess/bess.h"
#include "bess/bess_internal.h"
#include "util/random.h"

using namespace bess;

namespace {

// The allocator bridge: LargeObject needs disk extents; Database provides.
class DbAllocator : public ExtentAllocator {
 public:
  explicit DbAllocator(Database* db) : db_(db) {}
  Result<DiskSegment> AllocExtent(uint16_t area, uint32_t pages) override {
    return db_->AllocDiskSegment(area, pages);
  }
  Status FreeExtent(uint16_t area, PageId first_page) override {
    return db_->FreeDiskSegment(area, first_page);
  }

 private:
  Database* db_;
};

// Store bridge: LargeObject reads/writes raw pages.
class DbStore : public SegmentStore {
 public:
  explicit DbStore(Database* db) : db_(db) {}
  Status FetchSlotted(SegmentId, void*, uint32_t*) override {
    return Status::NotSupported("raw pages only");
  }
  Status FetchPages(uint16_t, uint16_t area, PageId first, uint32_t count,
                    void* buf) override {
    return db_->ReadRawPages(area, first, count, buf);
  }
  Status WritePages(uint16_t, uint16_t area, PageId first, uint32_t count,
                    const void* buf) override {
    return db_->WriteRawPages(area, first, count, buf);
  }

 private:
  Database* db_;
};

std::string FakeVideo(size_t n, uint64_t seed) {
  // Compressible "video": long runs with occasional noise.
  Random rng(seed);
  std::string s;
  s.reserve(n);
  while (s.size() < n) {
    s.append(rng.Range(50, 400), static_cast<char>('A' + rng.Uniform(26)));
  }
  s.resize(n);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/bess_media";
  Database::Options options;
  options.dir = dir;
  options.create = true;
  auto dbr = Database::Open(options);
  if (!dbr.ok()) {
    fprintf(stderr, "open: %s\n", dbr.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*dbr);

  // ---- compression hooks, registered exactly as a user would (§2.4) ---------
  auto rle_compress = [](Event, const EventContext& ctx) {
    std::string out;
    const std::string& in = *ctx.buffer;
    for (size_t i = 0; i < in.size();) {
      size_t j = i;
      while (j < in.size() && in[j] == in[i] && j - i < 255) ++j;
      out.push_back(static_cast<char>(j - i));
      out.push_back(in[i]);
      i = j;
    }
    *ctx.buffer = out;
    return Status::OK();
  };
  auto rle_expand = [](Event, const EventContext& ctx) {
    std::string out;
    const std::string& in = *ctx.buffer;
    for (size_t i = 0; i + 1 < in.size(); i += 2) {
      out.append(static_cast<size_t>(static_cast<unsigned char>(in[i])),
                 in[i + 1]);
    }
    *ctx.buffer = out;
    return Status::OK();
  };
  HookRegistry::Instance().Register(Event::kLargeObjectStore, rle_compress);
  HookRegistry::Instance().Register(Event::kLargeObjectFetch, rle_expand);
  printf("registered RLE compression hooks for large objects\n");

  // ---- a multifile spanning three areas for parallel content analysis --------
  auto area1 = db->AddStorageArea();
  auto area2 = db->AddStorageArea();
  if (!area1.ok() || !area2.ok()) return 1;
  auto media = db->CreateFile("media", /*multifile=*/true);
  if (!media.ok()) return 1;
  (void)db->AddFileArea(*media, *area1);
  (void)db->AddFileArea(*media, *area2);

  // ---- thumbnails: transparent large objects (≤ 64 KB, §2.1) ----------------
  {
    Transaction txn(db.get());
    Random rng(5);
    for (int i = 0; i < 30; ++i) {
      std::string thumb = FakeVideo(20000 + rng.Uniform(30000), i);
      auto slot = db->CreateObject(*media, kRawBytesType,
                                   static_cast<uint32_t>(thumb.size()),
                                   thumb.data());
      if (!slot.ok()) {
        fprintf(stderr, "thumb: %s\n", slot.status().ToString().c_str());
        return 1;
      }
    }
    if (!txn.Commit().ok()) return 1;
    printf("stored 30 thumbnails (transparent large objects)\n");
  }

  // ---- a "video": the byte-range very-large-object class (§2.1) -------------
  DbAllocator alloc(db.get());
  DbStore store(db.get());
  LargeObject::Options lo;
  lo.db = db->db_id();
  lo.area = 0;
  auto video = LargeObject::Create(&store, &alloc, lo,
                                   /*size_hint=*/8 << 20);
  if (!video.ok()) return 1;

  const std::string feed = FakeVideo(6 << 20, 99);
  if (!video->Append(feed).ok()) return 1;
  auto size = video->Size();
  auto extents = video->ExtentCount();
  printf("ingested %.1f MB of video in %u extents (compressed on disk)\n",
         *size / 1048576.0, *extents);

  // Splice an ad break into the middle — a byte-range insert.
  const std::string ad = FakeVideo(256 << 10, 7);
  if (!video->Insert(*size / 2, ad).ok()) return 1;
  // Trim a blooper near the start.
  if (!video->Delete(64 << 10, 128 << 10).ok()) return 1;
  auto size2 = video->Size();
  printf("after splice+trim: %.1f MB\n", *size2 / 1048576.0);
  auto check = video->Read(*size2 - 4096, 4096);
  if (!check.ok()) return 1;
  printf("tail read ok (%zu bytes)\n", check->size());

  // Keep the video reachable: its root address in a named object.
  {
    Transaction txn(db.get());
    const uint64_t packed = video->root().Pack();
    auto slot = db->CreateObject(*media, kRawBytesType, 8, &packed);
    if (!slot.ok()) return 1;
    if (!db->SetRoot("feature_video", *slot).ok()) return 1;
    if (!txn.Commit().ok()) return 1;
  }

  // ---- parallel content analysis over the multifile (§2) ---------------------
  {
    std::atomic<uint64_t> bytes{0}, objects{0};
    Status s = db->ParallelScan(
        *media, /*threads=*/4,
        [&](const Slot& slot, const void* data) {
          // "content analysis": histogram the first bytes
          if (data != nullptr && slot.size > 0) {
            const auto* p = static_cast<const unsigned char*>(data);
            uint64_t sum = 0;
            for (uint32_t i = 0; i < slot.size; i += 997) sum += p[i];
            bytes.fetch_add(slot.size);
            objects.fetch_add(1);
            (void)sum;
          }
          return Status::OK();
        });
    if (!s.ok()) {
      fprintf(stderr, "scan: %s\n", s.ToString().c_str());
      return 1;
    }
    printf("parallel scan analyzed %llu objects, %.1f MB across %u areas\n",
           (unsigned long long)objects.load(), bytes.load() / 1048576.0,
           db->area_count());
  }

  HookRegistry::Instance().Clear();
  printf("ok\n");
  return 0;
}
