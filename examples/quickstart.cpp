// Quickstart: create a database, define a type, create and connect
// persistent objects, navigate with typed references, and see transactional
// durability + rollback in action.
//
//   $ ./quickstart /tmp/bess_quickstart
#include <cstdio>
#include <string>

#include "bess/bess.h"

using namespace bess;

// A persistent type. Reference fields are 8-byte slots registered with the
// type descriptor so the storage manager can swizzle them (paper §2.1).
struct Person {
  uint64_t spouse;  // ref field at offset 0
  char name[56];
};

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/bess_quickstart";
  const bool fresh = !File::Exists(dir + "/area_0.bess");

  Database::Options options;
  options.dir = dir;
  options.create = fresh;
  auto dbr = Database::Open(options);
  if (!dbr.ok()) {
    fprintf(stderr, "open failed: %s\n", dbr.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*dbr);
  printf("database %s at %s\n", fresh ? "created" : "reopened", dir.c_str());

  // Register the Person type: fixed size, one reference at offset 0.
  TypeDescriptor person_type;
  person_type.name = "Person";
  person_type.fixed_size = sizeof(Person);
  person_type.ref_offsets = {0};
  auto tp = db->RegisterType(person_type);
  if (!tp.ok()) return 1;

  if (fresh) {
    auto file = db->CreateFile("people");
    if (!file.ok()) return 1;

    // Everything inside a transaction: writes are detected automatically
    // through the virtual-memory hardware (§2.3) — no dirty calls.
    Transaction txn(db.get());
    auto alice = CreateObject<Person>(db.get(), *file, *tp);
    auto bob = CreateObject<Person>(db.get(), *file, *tp);
    if (!alice.ok() || !bob.ok()) return 1;
    snprintf((*alice)->name, sizeof(Person::name), "Alice");
    snprintf((*bob)->name, sizeof(Person::name), "Bob");
    (*alice)->spouse = bob->AsField();  // a persistent reference
    (*bob)->spouse = alice->AsField();

    // Name a root object so it can be found again (§2.5).
    if (!db->SetRoot("alice", alice->slot()).ok()) return 1;
    if (!txn.Commit().ok()) return 1;
    printf("created alice <-> bob\n");
  }

  {
    // Navigate: dereference faults segments in, swizzles references, and
    // acquires locks — all transparently.
    Transaction txn(db.get());
    auto alice = GetRoot<Person>(db.get(), "alice");
    if (!alice.ok()) return 1;
    ref<Person> spouse = ref<Person>::FromField((*alice)->spouse);
    printf("%s is married to %s\n", (*alice)->name, spouse->name);

    // OIDs: location-independent identity (§2.1), slower to resolve.
    auto oid = db->OidOf(alice->slot());
    if (oid.ok()) {
      printf("alice's 96-bit OID: %s\n", oid->ToString().c_str());
      global_ref<Person> gref(*oid);
      auto back = gref.Resolve();
      printf("resolved via OID: %s\n",
             back.ok() ? (*back)->name : back.status().ToString().c_str());
    }
    if (!txn.Commit().ok()) return 1;
  }

  {
    // Abort rolls the in-memory state back — the update never happened.
    Transaction txn(db.get());
    auto alice = GetRoot<Person>(db.get(), "alice");
    if (!alice.ok()) return 1;
    snprintf((*alice)->name, sizeof(Person::name), "Mallory");
    (void)txn.Abort();
  }
  {
    Transaction txn(db.get());
    auto alice = GetRoot<Person>(db.get(), "alice");
    if (!alice.ok()) return 1;
    printf("after abort, the root is still: %s\n", (*alice)->name);
    (void)txn.Commit();
  }
  printf("ok\n");
  return 0;
}
