file(REMOVE_RECURSE
  "CMakeFiles/private_pool_test.dir/private_pool_test.cc.o"
  "CMakeFiles/private_pool_test.dir/private_pool_test.cc.o.d"
  "private_pool_test"
  "private_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
