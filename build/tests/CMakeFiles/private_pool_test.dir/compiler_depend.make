# Empty compiler generated dependencies file for private_pool_test.
# This may be replaced when dependencies are built.
