file(REMOVE_RECURSE
  "CMakeFiles/reorg_property_test.dir/reorg_property_test.cc.o"
  "CMakeFiles/reorg_property_test.dir/reorg_property_test.cc.o.d"
  "reorg_property_test"
  "reorg_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorg_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
