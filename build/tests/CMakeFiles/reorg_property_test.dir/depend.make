# Empty dependencies file for reorg_property_test.
# This may be replaced when dependencies are built.
