file(REMOVE_RECURSE
  "CMakeFiles/type_table_test.dir/type_table_test.cc.o"
  "CMakeFiles/type_table_test.dir/type_table_test.cc.o.d"
  "type_table_test"
  "type_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
