# Empty dependencies file for type_table_test.
# This may be replaced when dependencies are built.
