# Empty dependencies file for storage_area_test.
# This may be replaced when dependencies are built.
