file(REMOVE_RECURSE
  "CMakeFiles/storage_area_test.dir/storage_area_test.cc.o"
  "CMakeFiles/storage_area_test.dir/storage_area_test.cc.o.d"
  "storage_area_test"
  "storage_area_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_area_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
