file(REMOVE_RECURSE
  "CMakeFiles/slotted_view_test.dir/slotted_view_test.cc.o"
  "CMakeFiles/slotted_view_test.dir/slotted_view_test.cc.o.d"
  "slotted_view_test"
  "slotted_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slotted_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
