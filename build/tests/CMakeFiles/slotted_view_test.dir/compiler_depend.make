# Empty compiler generated dependencies file for slotted_view_test.
# This may be replaced when dependencies are built.
