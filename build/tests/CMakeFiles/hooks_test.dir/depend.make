# Empty dependencies file for hooks_test.
# This may be replaced when dependencies are built.
