file(REMOVE_RECURSE
  "CMakeFiles/large_object_test.dir/large_object_test.cc.o"
  "CMakeFiles/large_object_test.dir/large_object_test.cc.o.d"
  "large_object_test"
  "large_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
