# Empty compiler generated dependencies file for large_object_test.
# This may be replaced when dependencies are built.
