# Empty dependencies file for media_store.
# This may be replaced when dependencies are built.
