file(REMOVE_RECURSE
  "CMakeFiles/media_store.dir/media_store.cpp.o"
  "CMakeFiles/media_store.dir/media_store.cpp.o.d"
  "media_store"
  "media_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
