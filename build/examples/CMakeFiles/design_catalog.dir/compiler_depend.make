# Empty compiler generated dependencies file for design_catalog.
# This may be replaced when dependencies are built.
