file(REMOVE_RECURSE
  "CMakeFiles/design_catalog.dir/design_catalog.cpp.o"
  "CMakeFiles/design_catalog.dir/design_catalog.cpp.o.d"
  "design_catalog"
  "design_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
