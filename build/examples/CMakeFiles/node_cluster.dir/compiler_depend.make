# Empty compiler generated dependencies file for node_cluster.
# This may be replaced when dependencies are built.
