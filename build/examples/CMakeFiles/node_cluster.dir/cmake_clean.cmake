file(REMOVE_RECURSE
  "CMakeFiles/node_cluster.dir/node_cluster.cpp.o"
  "CMakeFiles/node_cluster.dir/node_cluster.cpp.o.d"
  "node_cluster"
  "node_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
