file(REMOVE_RECURSE
  "libbess.a"
)
