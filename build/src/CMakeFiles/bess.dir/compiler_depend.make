# Empty compiler generated dependencies file for bess.
# This may be replaced when dependencies are built.
