
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/replacement.cc" "src/CMakeFiles/bess.dir/baseline/replacement.cc.o" "gcc" "src/CMakeFiles/bess.dir/baseline/replacement.cc.o.d"
  "/root/repo/src/cache/private_pool.cc" "src/CMakeFiles/bess.dir/cache/private_pool.cc.o" "gcc" "src/CMakeFiles/bess.dir/cache/private_pool.cc.o.d"
  "/root/repo/src/cache/shared_cache.cc" "src/CMakeFiles/bess.dir/cache/shared_cache.cc.o" "gcc" "src/CMakeFiles/bess.dir/cache/shared_cache.cc.o.d"
  "/root/repo/src/hooks/hooks.cc" "src/CMakeFiles/bess.dir/hooks/hooks.cc.o" "gcc" "src/CMakeFiles/bess.dir/hooks/hooks.cc.o.d"
  "/root/repo/src/lob/large_object.cc" "src/CMakeFiles/bess.dir/lob/large_object.cc.o" "gcc" "src/CMakeFiles/bess.dir/lob/large_object.cc.o.d"
  "/root/repo/src/object/database.cc" "src/CMakeFiles/bess.dir/object/database.cc.o" "gcc" "src/CMakeFiles/bess.dir/object/database.cc.o.d"
  "/root/repo/src/os/fault_dispatcher.cc" "src/CMakeFiles/bess.dir/os/fault_dispatcher.cc.o" "gcc" "src/CMakeFiles/bess.dir/os/fault_dispatcher.cc.o.d"
  "/root/repo/src/os/fault_injection.cc" "src/CMakeFiles/bess.dir/os/fault_injection.cc.o" "gcc" "src/CMakeFiles/bess.dir/os/fault_injection.cc.o.d"
  "/root/repo/src/os/file.cc" "src/CMakeFiles/bess.dir/os/file.cc.o" "gcc" "src/CMakeFiles/bess.dir/os/file.cc.o.d"
  "/root/repo/src/os/shm.cc" "src/CMakeFiles/bess.dir/os/shm.cc.o" "gcc" "src/CMakeFiles/bess.dir/os/shm.cc.o.d"
  "/root/repo/src/os/socket.cc" "src/CMakeFiles/bess.dir/os/socket.cc.o" "gcc" "src/CMakeFiles/bess.dir/os/socket.cc.o.d"
  "/root/repo/src/os/vmem.cc" "src/CMakeFiles/bess.dir/os/vmem.cc.o" "gcc" "src/CMakeFiles/bess.dir/os/vmem.cc.o.d"
  "/root/repo/src/segment/slotted_view.cc" "src/CMakeFiles/bess.dir/segment/slotted_view.cc.o" "gcc" "src/CMakeFiles/bess.dir/segment/slotted_view.cc.o.d"
  "/root/repo/src/segment/type_descriptor.cc" "src/CMakeFiles/bess.dir/segment/type_descriptor.cc.o" "gcc" "src/CMakeFiles/bess.dir/segment/type_descriptor.cc.o.d"
  "/root/repo/src/server/bess_server.cc" "src/CMakeFiles/bess.dir/server/bess_server.cc.o" "gcc" "src/CMakeFiles/bess.dir/server/bess_server.cc.o.d"
  "/root/repo/src/server/node_server.cc" "src/CMakeFiles/bess.dir/server/node_server.cc.o" "gcc" "src/CMakeFiles/bess.dir/server/node_server.cc.o.d"
  "/root/repo/src/server/protocol.cc" "src/CMakeFiles/bess.dir/server/protocol.cc.o" "gcc" "src/CMakeFiles/bess.dir/server/protocol.cc.o.d"
  "/root/repo/src/server/remote_client.cc" "src/CMakeFiles/bess.dir/server/remote_client.cc.o" "gcc" "src/CMakeFiles/bess.dir/server/remote_client.cc.o.d"
  "/root/repo/src/storage/buddy.cc" "src/CMakeFiles/bess.dir/storage/buddy.cc.o" "gcc" "src/CMakeFiles/bess.dir/storage/buddy.cc.o.d"
  "/root/repo/src/storage/storage_area.cc" "src/CMakeFiles/bess.dir/storage/storage_area.cc.o" "gcc" "src/CMakeFiles/bess.dir/storage/storage_area.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/bess.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/bess.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/CMakeFiles/bess.dir/util/crc32c.cc.o" "gcc" "src/CMakeFiles/bess.dir/util/crc32c.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/bess.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/bess.dir/util/logging.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/bess.dir/util/status.cc.o" "gcc" "src/CMakeFiles/bess.dir/util/status.cc.o.d"
  "/root/repo/src/vm/arena.cc" "src/CMakeFiles/bess.dir/vm/arena.cc.o" "gcc" "src/CMakeFiles/bess.dir/vm/arena.cc.o.d"
  "/root/repo/src/vm/mapper.cc" "src/CMakeFiles/bess.dir/vm/mapper.cc.o" "gcc" "src/CMakeFiles/bess.dir/vm/mapper.cc.o.d"
  "/root/repo/src/vm/mem_store.cc" "src/CMakeFiles/bess.dir/vm/mem_store.cc.o" "gcc" "src/CMakeFiles/bess.dir/vm/mem_store.cc.o.d"
  "/root/repo/src/wal/log_manager.cc" "src/CMakeFiles/bess.dir/wal/log_manager.cc.o" "gcc" "src/CMakeFiles/bess.dir/wal/log_manager.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/bess.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/bess.dir/wal/log_record.cc.o.d"
  "/root/repo/src/wal/recovery.cc" "src/CMakeFiles/bess.dir/wal/recovery.cc.o" "gcc" "src/CMakeFiles/bess.dir/wal/recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
