# Empty dependencies file for bench_deref.
# This may be replaced when dependencies are built.
