file(REMOVE_RECURSE
  "CMakeFiles/bench_deref.dir/bench_deref.cc.o"
  "CMakeFiles/bench_deref.dir/bench_deref.cc.o.d"
  "bench_deref"
  "bench_deref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
