file(REMOVE_RECURSE
  "CMakeFiles/bench_protect.dir/bench_protect.cc.o"
  "CMakeFiles/bench_protect.dir/bench_protect.cc.o.d"
  "bench_protect"
  "bench_protect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
