# Empty compiler generated dependencies file for bench_protect.
# This may be replaced when dependencies are built.
