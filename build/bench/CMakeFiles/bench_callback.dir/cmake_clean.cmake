file(REMOVE_RECURSE
  "CMakeFiles/bench_callback.dir/bench_callback.cc.o"
  "CMakeFiles/bench_callback.dir/bench_callback.cc.o.d"
  "bench_callback"
  "bench_callback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_callback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
