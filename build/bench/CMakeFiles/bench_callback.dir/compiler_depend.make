# Empty compiler generated dependencies file for bench_callback.
# This may be replaced when dependencies are built.
