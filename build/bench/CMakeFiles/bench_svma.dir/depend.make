# Empty dependencies file for bench_svma.
# This may be replaced when dependencies are built.
