file(REMOVE_RECURSE
  "CMakeFiles/bench_svma.dir/bench_svma.cc.o"
  "CMakeFiles/bench_svma.dir/bench_svma.cc.o.d"
  "bench_svma"
  "bench_svma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_svma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
