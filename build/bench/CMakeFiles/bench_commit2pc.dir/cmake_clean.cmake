file(REMOVE_RECURSE
  "CMakeFiles/bench_commit2pc.dir/bench_commit2pc.cc.o"
  "CMakeFiles/bench_commit2pc.dir/bench_commit2pc.cc.o.d"
  "bench_commit2pc"
  "bench_commit2pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit2pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
