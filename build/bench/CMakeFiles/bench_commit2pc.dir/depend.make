# Empty dependencies file for bench_commit2pc.
# This may be replaced when dependencies are built.
