file(REMOVE_RECURSE
  "CMakeFiles/bench_buddy.dir/bench_buddy.cc.o"
  "CMakeFiles/bench_buddy.dir/bench_buddy.cc.o.d"
  "bench_buddy"
  "bench_buddy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buddy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
