# Empty compiler generated dependencies file for bench_buddy.
# This may be replaced when dependencies are built.
