# Empty dependencies file for bench_detect.
# This may be replaced when dependencies are built.
