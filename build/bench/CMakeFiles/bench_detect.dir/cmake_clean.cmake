file(REMOVE_RECURSE
  "CMakeFiles/bench_detect.dir/bench_detect.cc.o"
  "CMakeFiles/bench_detect.dir/bench_detect.cc.o.d"
  "bench_detect"
  "bench_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
