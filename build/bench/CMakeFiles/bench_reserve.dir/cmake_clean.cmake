file(REMOVE_RECURSE
  "CMakeFiles/bench_reserve.dir/bench_reserve.cc.o"
  "CMakeFiles/bench_reserve.dir/bench_reserve.cc.o.d"
  "bench_reserve"
  "bench_reserve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reserve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
