# Empty compiler generated dependencies file for bench_reserve.
# This may be replaced when dependencies are built.
