file(REMOVE_RECURSE
  "CMakeFiles/bench_largeobj.dir/bench_largeobj.cc.o"
  "CMakeFiles/bench_largeobj.dir/bench_largeobj.cc.o.d"
  "bench_largeobj"
  "bench_largeobj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_largeobj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
