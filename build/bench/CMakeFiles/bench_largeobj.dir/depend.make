# Empty dependencies file for bench_largeobj.
# This may be replaced when dependencies are built.
