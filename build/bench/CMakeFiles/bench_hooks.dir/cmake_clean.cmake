file(REMOVE_RECURSE
  "CMakeFiles/bench_hooks.dir/bench_hooks.cc.o"
  "CMakeFiles/bench_hooks.dir/bench_hooks.cc.o.d"
  "bench_hooks"
  "bench_hooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
