#!/usr/bin/env sh
# Secondary-index gate (DESIGN.md §14, EXPERIMENTS.md E18).
#
# Builds and runs bench_index, then fails unless the BENCH_index.json
# artifact shows the B+-tree earning its keep over the frame core:
#   1. point lookups/s >= 10x the scan-everything baseline at 10k objects
#      (the O(height) descent vs. grinding the whole keyspace),
#   2. the cold index range scan stays within 1.5x of raw ScanRange page
#      throughput on the same frame-table configuration (the tree layering
#      must ride the push pipeline, not forfeit it),
#   3. no sync evict write-backs in any phase (the bgwriter with write
#      coalescing keeps the demand path clean),
#   4. the tree validates and the scan delivered exactly `objects` entries.
#
# Usage: scripts/check_bench_index.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR" ]; then
  cmake --preset default
fi
cmake --build "$BUILD_DIR" -j --target bench_index

BESS_METRICS_DIR="$BUILD_DIR" "$BUILD_DIR/bench/bench_index"
JSON="$BUILD_DIR/BENCH_index.json"

if [ ! -f "$JSON" ]; then
  echo "check_bench_index: FAILED — $JSON was not written" >&2
  exit 1
fi

# The artifact is flat (one "key": value per line) precisely so this works.
field() { awk -F'[:,]' -v k="\"$1\"" '$1 ~ k { gsub(/ /, "", $2); print $2; exit }' "$JSON"; }
OBJECTS=$(field objects)
SPEEDUP=$(field point_speedup)
RATIO=$(field range_ratio)
ENTRIES=$(field scan_entries)
LOOKUPS_OK=$(field lookups_ok)
SYNC_WB=$(field evict_sync_writebacks)
IDX_PPS=$(field index_pages_per_sec)
RAW_PPS=$(field raw_pages_per_sec)

if [ -z "$OBJECTS" ] || [ -z "$SPEEDUP" ] || [ -z "$RATIO" ] ||
   [ -z "$ENTRIES" ] || [ -z "$LOOKUPS_OK" ] || [ -z "$SYNC_WB" ]; then
  echo "check_bench_index: FAILED to parse $JSON" >&2
  exit 1
fi

echo ""
echo "point lookup: ${SPEEDUP}x the scan baseline at ${OBJECTS} objects"
echo "range scan: ${IDX_PPS} pages/s vs raw ${RAW_PPS} pages/s" \
     "(${RATIO}x slower); ${SYNC_WB} sync evict write-backs"

awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 10.0) }' || {
  echo "check_bench_index: FAILED — indexed point lookup is only ${SPEEDUP}x" >&2
  echo "the scan-everything baseline (< 10x): the descent is not earning" >&2
  echo "its keep over a full sweep" >&2
  exit 1
}
awk -v r="$RATIO" 'BEGIN { exit !(r <= 1.5) }' || {
  echo "check_bench_index: FAILED — the cold index range scan is ${RATIO}x" >&2
  echo "slower than raw ScanRange (> 1.5x): the tree layering is forfeiting" >&2
  echo "the push pipeline" >&2
  exit 1
}
[ "$ENTRIES" = "$OBJECTS" ] || {
  echo "check_bench_index: FAILED — the range scan delivered $ENTRIES of" >&2
  echo "$OBJECTS entries: the leaf walk skipped or duplicated data" >&2
  exit 1
}
[ "$LOOKUPS_OK" = "1" ] || {
  echo "check_bench_index: FAILED — a lookup missed or Validate found a" >&2
  echo "structural fault (lookups_ok=$LOOKUPS_OK)" >&2
  exit 1
}
[ "$SYNC_WB" = "0" ] || {
  echo "check_bench_index: FAILED — $SYNC_WB sync write-backs on the demand" >&2
  echo "path: eviction outran the coalescing bgwriter" >&2
  exit 1
}
# Publish the gate artifact at the repo root so the latest gated run is
# always inspectable without digging through build dirs.
cp "$JSON" ./BENCH_index.json

echo "check_bench_index: OK — the index turns full sweeps into O(height)"
echo "descents and its leaf scans ride the push pipeline at raw-scan speed"
