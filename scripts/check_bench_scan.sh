#!/usr/bin/env sh
# Push-based scan pipeline gate (DESIGN.md §13, EXPERIMENTS.md E17).
#
# Builds and runs bench_scan, then fails unless the BENCH_scan.json artifact
# shows the async pipeline earning its keep:
#   1. push pages/s >= 2x the pull-on-fault baseline at queue depth 8
#      (staged reads coalesce into batched device ops and overlap the
#      injected device latency with consumer compute),
#   2. every page the scan delivered verified byte-exact (checksums_ok),
#   3. the async bgwriter paid exactly one WAL durability gate per flush
#      batch inside the audit window (bg_wal_gates == bg_batches),
#   4. the churn phase evicted through bgwriter-cleaned frames only — no
#      sync write-back on the demand path (evict_sync_writebacks == 0).
#
# Usage: scripts/check_bench_scan.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR" ]; then
  cmake --preset default
fi
cmake --build "$BUILD_DIR" -j --target bench_scan

BESS_METRICS_DIR="$BUILD_DIR" "$BUILD_DIR/bench/bench_scan"
JSON="$BUILD_DIR/BENCH_scan.json"

if [ ! -f "$JSON" ]; then
  echo "check_bench_scan: FAILED — $JSON was not written" >&2
  exit 1
fi

# The artifact is flat (one "key": value per line) precisely so this works.
field() { awk -F'[:,]' -v k="\"$1\"" '$1 ~ k { gsub(/ /, "", $2); print $2; exit }' "$JSON"; }
PULL=$(field pull_pages_per_sec)
PUSH8=$(field push_pages_per_sec_qd8)
SPEEDUP=$(field speedup_qd8)
CHECKSUMS=$(field checksums_ok)
BATCHES=$(field bg_batches)
GATES=$(field bg_wal_gates)
SYNC_WB=$(field evict_sync_writebacks)
RUNS=$(field read_runs_qd8)

if [ -z "$PULL" ] || [ -z "$PUSH8" ] || [ -z "$SPEEDUP" ] ||
   [ -z "$CHECKSUMS" ] || [ -z "$BATCHES" ] || [ -z "$GATES" ] ||
   [ -z "$SYNC_WB" ]; then
  echo "check_bench_scan: FAILED to parse $JSON" >&2
  exit 1
fi

echo ""
echo "pull baseline: ${PULL} pages/s; push qd8: ${PUSH8} pages/s (${SPEEDUP}x," \
     "${RUNS} device ops)"
echo "bgwriter: ${GATES} WAL gates for ${BATCHES} async batches," \
     "${SYNC_WB} sync evict write-backs"

awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 2.0) }' || {
  echo "check_bench_scan: FAILED — push scan at queue depth 8 is only" >&2
  echo "${SPEEDUP}x the pull baseline (< 2x): staged reads are not" >&2
  echo "amortizing device latency" >&2
  exit 1
}
[ "$CHECKSUMS" = "1" ] || {
  echo "check_bench_scan: FAILED — a scanned page did not match the written" >&2
  echo "image (checksums_ok=$CHECKSUMS): the push path corrupted or skipped data" >&2
  exit 1
}
[ "$GATES" = "$BATCHES" ] || {
  echo "check_bench_scan: FAILED — $GATES WAL gates for $BATCHES async flush" >&2
  echo "batches: the bgwriter is not paying exactly one durability gate per batch" >&2
  exit 1
}
[ "$SYNC_WB" = "0" ] || {
  echo "check_bench_scan: FAILED — $SYNC_WB sync write-backs on the demand" >&2
  echo "path: eviction outran the async bgwriter" >&2
  exit 1
}
# Publish the gate artifact at the repo root so the latest gated run is
# always inspectable without digging through build dirs.
cp "$JSON" ./BENCH_scan.json

echo "check_bench_scan: OK — push scan overlaps device latency with consumer"
echo "compute and the bgwriter batches write-backs behind one WAL gate"
