#!/usr/bin/env sh
# Verifies that the library still compiles with the observability subsystem
# compiled out (BESS_METRICS=OFF): every BESS_COUNT / BESS_SPAN / BESS_GAUGE
# site must reduce to a no-op, never to a missing symbol. CI regression gate
# for the "pay only for what you use" configurability claim.
set -eu
cd "$(dirname "$0")/.."
cmake --preset metrics-off
cmake --build --preset metrics-off -j
echo "BESS_METRICS=OFF build: OK"
