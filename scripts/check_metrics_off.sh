#!/usr/bin/env sh
# Verifies that the library still works with the observability subsystem
# compiled out (BESS_METRICS=OFF): every BESS_COUNT / BESS_SPAN / BESS_GAUGE
# site must reduce to a no-op, never to a missing symbol — and the full test
# suite must pass, so no code path *depends* on a metric being recorded
# (counter-delta assertions in tests are compiled out alongside). CI
# regression gate for the "pay only for what you use" configurability claim.
set -eu
cd "$(dirname "$0")/.."
cmake --preset metrics-off
cmake --build --preset metrics-off -j
echo "BESS_METRICS=OFF build: OK"
ctest --test-dir build-off --output-on-failure -j "$(nproc)"
echo "BESS_METRICS=OFF tests: OK"
