#!/usr/bin/env sh
# The whole release gate in one command: the full test suite across the
# default, asan and tsan presets, then every scripts/check_*.sh regression
# gate (bench scaling + overload degradation, recovery bound, scan
# pipeline, metrics-off build-and-test, mutex discipline).
#
# Suite notes:
#   - the default preset runs everything, torture harnesses included
#     (BESS_TORTURE_ITERS / BESS_CHAOS_ITERS trim those when iterating);
#   - asan/tsan presets exclude torture (the crash children SIGKILL
#     themselves mid-write, which sanitizers reasonably hate); the tsan
#     `concurrency` and asan `integrity` presets cover those paths with
#     reduced iterations — run them separately when touching that code;
#   - the overload-protection slice alone is `ctest -L overload`; it also
#     rides the tsan run via its `concurrency` label;
#   - the async I/O pipeline slice alone is `ctest -L scan`; it rides both
#     sanitizer presets, and `scripts/check_bench_scan.sh` gates the
#     push-vs-pull throughput claim on BENCH_scan.json.
#
# Usage: scripts/run_gates.sh
set -eu
cd "$(dirname "$0")/.."

rc=0
fail() {
  echo "run_gates: FAILED — $*" >&2
  rc=1
}

for preset in default asan tsan; do
  echo ""
  echo "==== suite: $preset ===="
  cmake --preset "$preset" >/dev/null
  cmake --build --preset "$preset" -j
  ctest --preset "$preset" -j "$(nproc)" || fail "ctest preset $preset"
done

for check in scripts/check_*.sh; do
  echo ""
  echo "==== gate: $check ===="
  sh "$check" || fail "$check"
done

echo ""
if [ "$rc" -ne 0 ]; then
  echo "run_gates: FAILED (see above)"
else
  echo "run_gates: all suites and gates passed"
fi
exit "$rc"
