#!/usr/bin/env sh
# Guards the locking discipline the frame-lifecycle refactor depends on:
# every mutex in the tree is a plain std::mutex, with public entry points
# locking exactly once and delegating to *Locked internals. A recursive
# mutex would let hidden re-entrancy creep back in (the original eviction
# self-deadlock was exactly such a cycle) and TSan's lock-order analysis
# degrades on recursive locks. CI fails on the first occurrence.
set -eu
cd "$(dirname "$0")/.."

if grep -rn "recursive_mutex" src/ bench/ examples/ tests/ 2>/dev/null; then
  echo "error: recursive_mutex found — use a plain std::mutex and the" >&2
  echo "Locked-suffix delegation pattern instead (see vm/mapper.h)." >&2
  exit 1
fi
echo "no recursive_mutex: OK"
