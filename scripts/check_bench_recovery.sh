#!/usr/bin/env sh
# Always-on-recovery gate (paper §3, DESIGN.md §10, EXPERIMENTS.md E13).
#
# Builds and runs bench_recovery, then fails unless the fuzzy-checkpoint
# restart beats the full-scan baseline on the BENCH_recovery.json artifact:
#   1. records scanned at restart drop by at least 4x (analysis seeds from
#      the checkpoint snapshot instead of scanning the whole log),
#   2. pages replayed do not exceed the baseline (redo is bounded by the
#      dirty set at the checkpoint, not by log length),
#   3. restart wall-clock is no slower than the baseline (generous 1.5x
#      slack: the point is the bound, not a timing microbenchmark).
#
# Usage: scripts/check_bench_recovery.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR" ]; then
  cmake --preset default
fi
cmake --build "$BUILD_DIR" -j --target bench_recovery

BESS_METRICS_DIR="$BUILD_DIR" "$BUILD_DIR/bench/bench_recovery"
JSON="$BUILD_DIR/BENCH_recovery.json"

if [ ! -f "$JSON" ]; then
  echo "check_bench_recovery: FAILED — $JSON was not written" >&2
  exit 1
fi

# The artifact is flat (one "key": value per line) precisely so this works.
field() { awk -F'[:,]' -v k="\"$1\"" '$1 ~ k { gsub(/ /, "", $2); print $2; exit }' "$JSON"; }
BASE_MS=$(field baseline_restart_ms)
BASE_RECORDS=$(field baseline_records_scanned)
BASE_PAGES=$(field baseline_redo_pages)
FUZZY_MS=$(field fuzzy_restart_ms)
FUZZY_RECORDS=$(field fuzzy_records_scanned)
FUZZY_PAGES=$(field fuzzy_redo_pages)

if [ -z "$BASE_MS" ] || [ -z "$BASE_RECORDS" ] || [ -z "$BASE_PAGES" ] ||
   [ -z "$FUZZY_MS" ] || [ -z "$FUZZY_RECORDS" ] || [ -z "$FUZZY_PAGES" ]; then
  echo "check_bench_recovery: FAILED to parse $JSON" >&2
  exit 1
fi

echo ""
echo "full-scan baseline: ${BASE_MS}ms, $BASE_RECORDS records, $BASE_PAGES pages"
echo "fuzzy checkpoint:   ${FUZZY_MS}ms, $FUZZY_RECORDS records, $FUZZY_PAGES pages"

awk -v b="$BASE_RECORDS" -v f="$FUZZY_RECORDS" 'BEGIN { exit !(4 * f <= b) }' || {
  echo "check_bench_recovery: FAILED — checkpoint restart scanned $FUZZY_RECORDS" >&2
  echo "records vs $BASE_RECORDS baseline (< 4x reduction): analysis is not" >&2
  echo "seeding from the checkpoint snapshot" >&2
  exit 1
}
awk -v b="$BASE_PAGES" -v f="$FUZZY_PAGES" 'BEGIN { exit !(f <= b) }' || {
  echo "check_bench_recovery: FAILED — checkpoint restart replayed more pages" >&2
  echo "($FUZZY_PAGES) than the full-scan baseline ($BASE_PAGES)" >&2
  exit 1
}
awk -v b="$BASE_MS" -v f="$FUZZY_MS" 'BEGIN { exit !(f <= 1.5 * b) }' || {
  echo "check_bench_recovery: FAILED — checkpoint restart (${FUZZY_MS}ms) slower" >&2
  echo "than 1.5x the full-scan baseline (${BASE_MS}ms)" >&2
  exit 1
}
# Publish the gate artifact at the repo root so the latest gated run is
# always inspectable without digging through build dirs.
cp "$JSON" ./BENCH_recovery.json

echo "check_bench_recovery: OK — fuzzy-checkpoint restart is bounded by the"
echo "dirty set, not the log length"
