#!/usr/bin/env sh
# Multi-client scaling gate (paper §4, DESIGN.md §8 + §11, EXPERIMENTS.md
# E14 + E15).
#
# Builds and runs bench_scale, then fails unless
#   1. 8-client commit throughput is at least 2x the 1-client throughput
#      (the commit path must not serialize on the WAL tail or a big lock),
#   2. the WAL group-commit batch size p50 exceeded 1 under the 8-client
#      load (group commit actually batched concurrent committers),
#   3. the open-loop sweep wrote BENCH_scale.json with p99 at 256 clients
#      within budget (default 50ms, override with BESS_SCALE_P99_BUDGET_US),
#   4. the server stayed O(workers) at 256 clients (< 64 process threads)
#      and the reactor's reply batches coalesced (batch max > 1).
#
# Usage: scripts/check_bench_scale.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
P99_BUDGET_US="${BESS_SCALE_P99_BUDGET_US:-50000}"

if [ ! -d "$BUILD_DIR" ]; then
  cmake --preset default
fi
cmake --build "$BUILD_DIR" -j --target bench_scale

OUT="$(BESS_METRICS_DIR="$BUILD_DIR" "$BUILD_DIR/bench/bench_scale")"
printf '%s\n' "$OUT"

# Rows look like:  clients  commits  secs  commits/sec  batch-p50  fsyncs
row() { printf '%s\n' "$OUT" | awk -v n="$1" '$1 == n { print; exit }'; }
ONE=$(row 1 | awk '{print $4}')
EIGHT=$(row 8 | awk '{print $4}')
P50=$(row 8 | awk '{print $5}')

if [ -z "$ONE" ] || [ -z "$EIGHT" ] || [ -z "$P50" ]; then
  echo "check_bench_scale: FAILED to parse bench_scale output" >&2
  exit 1
fi

echo ""
echo "1 client:  $ONE commits/sec"
echo "8 clients: $EIGHT commits/sec (batch p50 $P50)"

awk -v one="$ONE" -v eight="$EIGHT" 'BEGIN { exit !(eight >= 2.0 * one) }' || {
  echo "check_bench_scale: FAILED — 8-client throughput < 2x 1-client" >&2
  exit 1
}
awk -v p50="$P50" 'BEGIN { exit !(p50 > 1.0) }' || {
  echo "check_bench_scale: FAILED — group-commit batch p50 <= 1 at 8 clients" >&2
  exit 1
}

# ---- E15: open-loop sweep gates on the persistent artifact ------------------
JSON="$BUILD_DIR/BENCH_scale.json"
if [ ! -f "$JSON" ]; then
  echo "check_bench_scale: FAILED — $JSON was not written" >&2
  exit 1
fi
# The artifact is flat (one "key": value per line) precisely so this works.
field() { awk -F'[:,]' -v k="\"$1\"" '$1 ~ k { gsub(/ /, "", $2); print $2; exit }' "$JSON"; }
P99_256=$(field open_loop_256_p99_us)
THREADS_256=$(field open_loop_256_threads)
SENT_256=$(field open_loop_256_sent)
RECEIVED_256=$(field open_loop_256_received)
BATCH_MAX_256=$(field open_loop_256_reactor_batch_max)

if [ -z "$P99_256" ] || [ -z "$THREADS_256" ] || [ -z "$SENT_256" ] ||
   [ -z "$RECEIVED_256" ] || [ -z "$BATCH_MAX_256" ]; then
  echo "check_bench_scale: FAILED to parse $JSON" >&2
  exit 1
fi

echo "256 clients open-loop: p99 ${P99_256}us, $THREADS_256 threads," \
     "$RECEIVED_256/$SENT_256 replies, reactor batch max $BATCH_MAX_256"

awk -v got="$RECEIVED_256" -v want="$SENT_256" 'BEGIN { exit !(got == want) }' || {
  echo "check_bench_scale: FAILED — open-loop sweep lost replies at 256 clients" >&2
  exit 1
}
awk -v p99="$P99_256" -v budget="$P99_BUDGET_US" 'BEGIN { exit !(p99 + 0 > 0 && p99 <= budget) }' || {
  echo "check_bench_scale: FAILED — p99 at 256 clients (${P99_256}us) outside" >&2
  echo "budget (${P99_BUDGET_US}us)" >&2
  exit 1
}
awk -v t="$THREADS_256" 'BEGIN { exit !(t + 0 > 0 && t < 64) }' || {
  echo "check_bench_scale: FAILED — $THREADS_256 threads at 256 clients: the" >&2
  echo "server is scaling threads with connections, not O(workers)" >&2
  exit 1
}
awk -v b="$BATCH_MAX_256" 'BEGIN { exit !(b + 0 > 1) }' || {
  echo "check_bench_scale: FAILED — reactor reply batches never exceeded 1" >&2
  exit 1
}

# ---- E16: overload sweep gates (DESIGN.md §12) ------------------------------
# Graceful degradation past capacity: goodput at 4x offered load holds at
# >= 70% of the peak across the sweep, accepted-request p99 stays within
# 2x the deadline budget (the server sheds stale work instead of serving an
# ever-growing queue), every request got exactly one reply, and the surplus
# actually was shed (the protection layer engaged).
CAPACITY=$(field overload_capacity_per_sec)
if [ -z "$CAPACITY" ]; then
  echo "check_bench_scale: FAILED — no overload sweep in $JSON" >&2
  exit 1
fi
PEAK=0
for MULT in 2 4; do
  RATE=$((CAPACITY * MULT))
  G=$(field "overload_${RATE}_goodput_per_sec")
  PEAK=$(awk -v a="$PEAK" -v b="${G:-0}" 'BEGIN { print (b + 0 > a + 0) ? b : a }')
done
HALF_G=$(field "overload_$((CAPACITY / 2))_goodput_per_sec")
PEAK=$(awk -v a="$PEAK" -v b="${HALF_G:-0}" -v c="$(field "overload_${CAPACITY}_goodput_per_sec")" \
       'BEGIN { m = a + 0; if (b + 0 > m) m = b + 0; if (c + 0 > m) m = c + 0; print m }')
OVER_RATE=$((CAPACITY * 4))
OVER_G=$(field "overload_${OVER_RATE}_goodput_per_sec")
OVER_P99=$(field "overload_${OVER_RATE}_p99_us")
OVER_SENT=$(field "overload_${OVER_RATE}_sent")
OVER_RECV=$(field "overload_${OVER_RATE}_received")
OVER_SHED=$(awk -v a="$(field "overload_${OVER_RATE}_shed_deadline")" \
                -v b="$(field "overload_${OVER_RATE}_shed_retry")" \
                'BEGIN { print a + b }')
P99_OVERLOAD_BUDGET_US="${BESS_OVERLOAD_P99_BUDGET_US:-100000}"

if [ -z "$OVER_G" ] || [ -z "$OVER_P99" ] || [ -z "$OVER_SENT" ] ||
   [ -z "$OVER_RECV" ]; then
  echo "check_bench_scale: FAILED to parse overload sweep from $JSON" >&2
  exit 1
fi

echo "overload 4x capacity: goodput ${OVER_G}/s (peak ${PEAK}/s)," \
     "p99 ${OVER_P99}us, $OVER_RECV/$OVER_SENT replies, $OVER_SHED shed"

awk -v got="$OVER_RECV" -v want="$OVER_SENT" 'BEGIN { exit !(got == want) }' || {
  echo "check_bench_scale: FAILED — overload sweep lost replies at 4x capacity:" >&2
  echo "sheds must be explicit error replies, never silence" >&2
  exit 1
}
awk -v g="$OVER_G" -v peak="$PEAK" 'BEGIN { exit !(g + 0 >= 0.7 * peak) }' || {
  echo "check_bench_scale: FAILED — goodput collapsed past capacity:" >&2
  echo "${OVER_G}/s at 4x offered vs ${PEAK}/s peak (< 70%)" >&2
  exit 1
}
awk -v p99="$OVER_P99" -v budget="$P99_OVERLOAD_BUDGET_US" \
    'BEGIN { exit !(p99 + 0 > 0 && p99 <= budget) }' || {
  echo "check_bench_scale: FAILED — accepted-request p99 at 4x capacity" >&2
  echo "(${OVER_P99}us) outside budget (${P99_OVERLOAD_BUDGET_US}us): the" >&2
  echo "server is queueing stale work instead of shedding it" >&2
  exit 1
}
awk -v s="$OVER_SHED" 'BEGIN { exit !(s + 0 > 0) }' || {
  echo "check_bench_scale: FAILED — nothing was shed at 4x capacity: the" >&2
  echo "overload-protection layer never engaged" >&2
  exit 1
}

# Publish the gate artifact at the repo root so the latest gated run is
# always inspectable without digging through build dirs.
cp "$JSON" ./BENCH_scale.json

echo "check_bench_scale: OK (scaling >= 2x, group commit batching," \
     "open-loop p99 in budget, O(workers) threads, batched dispatch," \
     "graceful degradation past capacity)"
