#!/usr/bin/env sh
# Multi-client scaling gate (paper §4, DESIGN.md §8, EXPERIMENTS.md E8).
#
# Builds and runs bench_scale, then fails unless
#   1. 8-client commit throughput is at least 2x the 1-client throughput
#      (the commit path must not serialize on the WAL tail or a big lock),
#   2. the WAL group-commit batch size p50 exceeded 1 under the 8-client
#      load (group commit actually batched concurrent committers).
#
# Usage: scripts/check_bench_scale.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR" ]; then
  cmake --preset default
fi
cmake --build "$BUILD_DIR" -j --target bench_scale

OUT="$("$BUILD_DIR/bench/bench_scale")"
printf '%s\n' "$OUT"

# Rows look like:  clients  commits  secs  commits/sec  batch-p50  fsyncs
row() { printf '%s\n' "$OUT" | awk -v n="$1" '$1 == n { print; exit }'; }
ONE=$(row 1 | awk '{print $4}')
EIGHT=$(row 8 | awk '{print $4}')
P50=$(row 8 | awk '{print $5}')

if [ -z "$ONE" ] || [ -z "$EIGHT" ] || [ -z "$P50" ]; then
  echo "check_bench_scale: FAILED to parse bench_scale output" >&2
  exit 1
fi

echo ""
echo "1 client:  $ONE commits/sec"
echo "8 clients: $EIGHT commits/sec (batch p50 $P50)"

awk -v one="$ONE" -v eight="$EIGHT" 'BEGIN { exit !(eight >= 2.0 * one) }' || {
  echo "check_bench_scale: FAILED — 8-client throughput < 2x 1-client" >&2
  exit 1
}
awk -v p50="$P50" 'BEGIN { exit !(p50 > 1.0) }' || {
  echo "check_bench_scale: FAILED — group-commit batch p50 <= 1 at 8 clients" >&2
  exit 1
}
echo "check_bench_scale: OK (scaling >= 2x, group commit batching)"
