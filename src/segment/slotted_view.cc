#include "segment/slotted_view.h"

#include <cstring>

namespace bess {

Result<SlottedView> SlottedView::Format(void* image, size_t image_bytes,
                                        SegmentId id, uint16_t file_id,
                                        uint32_t slot_capacity,
                                        uint16_t outbound_capacity) {
  if (slot_capacity == 0 || slot_capacity > kMaxSlotsPerSegment ||
      slot_capacity >= kNoSlot) {
    return Status::InvalidArgument("bad slot capacity");
  }
  const size_t need = SlottedImageSize(slot_capacity, outbound_capacity);
  if (need > image_bytes) {
    return Status::InvalidArgument("slotted image buffer too small: need " +
                                   std::to_string(need) + " have " +
                                   std::to_string(image_bytes));
  }
  memset(image, 0, image_bytes);
  SlottedView view(image, image_bytes);
  SlottedHeader* h = view.header();
  *h = SlottedHeader{};
  h->db = id.db;
  h->area = id.area;
  h->first_page = id.first_page;
  h->page_count = static_cast<uint32_t>(image_bytes / kPageSize);
  h->file_id = file_id;
  h->slot_capacity = slot_capacity;
  h->outbound_capacity = outbound_capacity;
  return view;
}

Status SlottedView::Validate() const {
  const SlottedHeader* h = header();
  if (bytes_ < sizeof(SlottedHeader) || h->magic != SlottedHeader::kMagic) {
    return Status::Corruption("bad slotted segment magic");
  }
  if (h->slot_capacity == 0 || h->slot_capacity > kMaxSlotsPerSegment ||
      SlottedImageSize(h->slot_capacity, h->outbound_capacity) > bytes_) {
    return Status::Corruption("slotted segment capacities exceed image");
  }
  if (h->slot_count > h->slot_capacity ||
      h->outbound_count > h->outbound_capacity) {
    return Status::Corruption("slotted segment counts exceed capacities");
  }
  return Status::OK();
}

uint16_t SlottedView::SlotNumberOf(const void* slot_addr) const {
  const char* p = static_cast<const char*>(slot_addr);
  const char* first = base_ + SlotOffset(0);
  if (p < first) return kNoSlot;
  const size_t delta = static_cast<size_t>(p - first);
  if (delta % sizeof(Slot) != 0) return kNoSlot;
  const size_t idx = delta / sizeof(Slot);
  if (idx >= header()->slot_capacity) return kNoSlot;
  return static_cast<uint16_t>(idx);
}

Result<uint16_t> SlottedView::AllocSlot() {
  SlottedHeader* h = header();
  uint16_t idx;
  if (h->free_head != kNoSlot) {
    idx = h->free_head;
    Slot* s = slot(idx);
    h->free_head = s->next_free;
    const uint32_t uniq = s->uniquifier;  // already bumped by FreeSlot
    *s = Slot{};
    s->uniquifier = uniq;
  } else if (h->slot_count < h->slot_capacity) {
    idx = static_cast<uint16_t>(h->slot_count++);
    *slot(idx) = Slot{};
  } else {
    return Status::NoSpace("slotted segment out of slots");
  }
  Slot* s = slot(idx);
  s->flags = kSlotInUse;
  s->next_free = kNoSlot;
  h->live_objects++;
  return idx;
}

Status SlottedView::FreeSlot(uint16_t i) {
  SlottedHeader* h = header();
  if (i >= h->slot_count || !slot(i)->in_use()) {
    return Status::InvalidArgument("free of unused slot " + std::to_string(i));
  }
  Slot* s = slot(i);
  s->flags = 0;
  s->dp = 0;
  s->size = 0;
  s->uniquifier++;  // existing OIDs to this slot become stale
  s->next_free = h->free_head;
  h->free_head = i;
  h->live_objects--;
  return Status::OK();
}

Result<uint16_t> SlottedView::InternOutbound(SegmentId target) {
  SlottedHeader* h = header();
  if (target == h->self()) return kOutboundSelf;
  for (uint16_t i = 0; i < h->outbound_count; ++i) {
    if (outbound(i)->AsSegmentId() == target) return i;
  }
  if (h->outbound_count >= h->outbound_capacity) {
    return Status::NoSpace("outbound reference table full");
  }
  const uint16_t idx = h->outbound_count++;
  OutboundRef* ref = outbound(idx);
  ref->db = target.db;
  ref->area = target.area;
  ref->first_page = target.first_page;
  return idx;
}

Result<SegmentId> SlottedView::ResolveOutbound(uint16_t idx) const {
  const SlottedHeader* h = header();
  if (idx == kOutboundSelf) return h->self();
  if (idx >= h->outbound_count) {
    return Status::Corruption("outbound index " + std::to_string(idx) +
                              " out of range");
  }
  return outbound(idx)->AsSegmentId();
}

Result<uint32_t> SlottedView::AllocData(uint32_t nbytes) {
  SlottedHeader* h = header();
  const uint32_t aligned = (nbytes + 7u) & ~7u;
  const uint64_t limit =
      static_cast<uint64_t>(h->data_page_count) * kPageSize;
  if (h->data_used + static_cast<uint64_t>(aligned) > limit) {
    return Status::NoSpace("data segment full");
  }
  const uint32_t off = h->data_used;
  h->data_used += aligned;
  return off;
}

}  // namespace bess
