// SlottedView: a non-owning window onto a slotted segment image (on a page
// buffer, in the shared cache, or in a mapped region). All slot / outbound
// table / data-allocation bookkeeping goes through here.
//
// The view itself never changes memory protection; callers that operate on a
// write-protected mapping (corruption prevention, §2.2) wrap mutations in a
// vm::UnprotectGuard.
#ifndef BESS_SEGMENT_SLOTTED_VIEW_H_
#define BESS_SEGMENT_SLOTTED_VIEW_H_

#include <cstdint>

#include "segment/layout.h"
#include "util/status.h"

namespace bess {

class SlottedView {
 public:
  /// Wraps an existing image. Call Validate() before trusting its contents.
  SlottedView(void* image, size_t image_bytes)
      : base_(static_cast<char*>(image)), bytes_(image_bytes) {}

  /// Formats a fresh slotted segment in `image` (zeroing it first). The
  /// data segment location is set separately via header().
  static Result<SlottedView> Format(void* image, size_t image_bytes,
                                    SegmentId id, uint16_t file_id,
                                    uint32_t slot_capacity,
                                    uint16_t outbound_capacity);

  /// Checks magic, capacities and offsets against the buffer size.
  Status Validate() const;

  SlottedHeader* header() { return reinterpret_cast<SlottedHeader*>(base_); }
  const SlottedHeader* header() const {
    return reinterpret_cast<const SlottedHeader*>(base_);
  }

  Slot* slot(uint16_t i) {
    return reinterpret_cast<Slot*>(base_ + SlotOffset(i));
  }
  const Slot* slot(uint16_t i) const {
    return reinterpret_cast<const Slot*>(base_ + SlotOffset(i));
  }

  OutboundRef* outbound(uint16_t i) {
    return reinterpret_cast<OutboundRef*>(
        base_ + OutboundOffset(header()->slot_capacity, i));
  }
  const OutboundRef* outbound(uint16_t i) const {
    return reinterpret_cast<const OutboundRef*>(
        base_ + OutboundOffset(header()->slot_capacity, i));
  }

  /// Slot number of a slot pointer within this image, or kNoSlot if the
  /// pointer is not a slot of this segment.
  uint16_t SlotNumberOf(const void* slot_addr) const;

  /// Allocates a slot: pops the free chain or extends the high-water mark.
  /// The returned slot has in-use set, a fresh uniquifier, other fields
  /// zeroed. NoSpace when the segment is at slot capacity.
  Result<uint16_t> AllocSlot();

  /// Frees a slot: bumps the uniquifier (OID approximate uniqueness) and
  /// links it into the free chain.
  Status FreeSlot(uint16_t i);

  /// Finds or adds `target` in the outbound table. Returns kOutboundSelf if
  /// target is this segment. NoSpace when the table is full.
  Result<uint16_t> InternOutbound(SegmentId target);

  /// Resolves an outbound index (kOutboundSelf maps to this segment).
  Result<SegmentId> ResolveOutbound(uint16_t idx) const;

  /// Bump-allocates `nbytes` (8-byte aligned) in the data segment; returns
  /// the data-segment offset, or NoSpace when the bump pointer would pass
  /// `data_page_count * kPageSize`.
  Result<uint32_t> AllocData(uint32_t nbytes);

  /// Records `nbytes` of the data segment as dead (a hole left by a deleted
  /// or moved object); compaction reclaims holes.
  void NoteDataDead(uint32_t nbytes) { header()->data_dead += nbytes; }

  char* base() { return base_; }
  size_t bytes() const { return bytes_; }

 private:
  char* base_;
  size_t bytes_;
};

}  // namespace bess

#endif  // BESS_SEGMENT_SLOTTED_VIEW_H_
