#include "segment/type_descriptor.h"

#include <memory>

namespace bess {

void TypeDescriptor::EncodeTo(std::string* out) const {
  PutLengthPrefixed(out, name);
  PutFixed32(out, fixed_size);
  PutFixed32(out, static_cast<uint32_t>(ref_offsets.size()));
  for (uint32_t off : ref_offsets) PutFixed32(out, off);
}

Result<TypeDescriptor> TypeDescriptor::DecodeFrom(Decoder* dec) {
  TypeDescriptor desc;
  desc.name = dec->GetLengthPrefixed().ToString();
  desc.fixed_size = dec->GetFixed32();
  uint32_t n = dec->GetFixed32();
  if (!dec->ok() || n > 1u << 20) {
    return Status::Corruption("bad type descriptor encoding");
  }
  desc.ref_offsets.reserve(n);
  for (uint32_t i = 0; i < n; ++i) desc.ref_offsets.push_back(dec->GetFixed32());
  if (!dec->ok()) return Status::Corruption("truncated type descriptor");
  return desc;
}

TypeTable::TypeTable() {
  auto raw = std::make_unique<TypeDescriptor>();
  raw->name = "__raw_bytes";
  raw->fixed_size = 0;
  by_name_[raw->name] = 0;
  types_.push_back(std::move(raw));
}

Result<TypeIdx> TypeTable::Register(const TypeDescriptor& desc) {
  if (desc.name.empty()) {
    return Status::InvalidArgument("type name must be non-empty");
  }
  for (uint32_t off : desc.ref_offsets) {
    if (off % 8 != 0) {
      return Status::InvalidArgument("reference offset " +
                                     std::to_string(off) +
                                     " in type " + desc.name +
                                     " is not 8-byte aligned");
    }
    if (desc.fixed_size != 0 && off + 8 > desc.fixed_size) {
      return Status::InvalidArgument("reference offset beyond object in " +
                                     desc.name);
    }
  }
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = by_name_.find(desc.name);
  if (it != by_name_.end()) {
    const TypeDescriptor& existing = *types_[it->second];
    if (existing.fixed_size != desc.fixed_size ||
        existing.ref_offsets != desc.ref_offsets) {
      return Status::InvalidArgument("type " + desc.name +
                                     " re-registered with different shape");
    }
    return it->second;
  }
  TypeIdx idx = static_cast<TypeIdx>(types_.size());
  types_.push_back(std::make_unique<TypeDescriptor>(desc));
  by_name_[desc.name] = idx;
  return idx;
}

Result<const TypeDescriptor*> TypeTable::Get(TypeIdx idx) const {
  std::lock_guard<std::mutex> guard(mutex_);
  if (idx >= types_.size()) {
    return Status::NotFound("type index " + std::to_string(idx));
  }
  return const_cast<const TypeDescriptor*>(types_[idx].get());
}

Result<TypeIdx> TypeTable::Find(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("type " + name);
  return it->second;
}

uint32_t TypeTable::size() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return static_cast<uint32_t>(types_.size());
}

void TypeTable::EncodeTo(std::string* out) const {
  std::lock_guard<std::mutex> guard(mutex_);
  PutFixed32(out, static_cast<uint32_t>(types_.size()));
  for (const auto& t : types_) t->EncodeTo(out);
}

Status TypeTable::DecodeFrom(Decoder* dec) {
  uint32_t n = dec->GetFixed32();
  if (!dec->ok() || n == 0 || n > 1u << 20) {
    return Status::Corruption("bad type table encoding");
  }
  std::lock_guard<std::mutex> guard(mutex_);
  types_.clear();
  by_name_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    BESS_ASSIGN_OR_RETURN(TypeDescriptor desc, TypeDescriptor::DecodeFrom(dec));
    by_name_[desc.name] = i;
    types_.push_back(std::make_unique<TypeDescriptor>(std::move(desc)));
  }
  return Status::OK();
}

}  // namespace bess
