// On-disk / in-memory layout of object segments (paper §2.1, Figure 1).
//
// An object segment consists of a *slotted segment* (fixed header + slot
// array + outbound-reference table) and a *data segment* (the objects'
// bytes). An optional *overflow segment* holds extra control information
// such as very-large-object descriptors. Slotted segments are never
// relocated; data segments can be resized, moved or compacted without
// affecting references, because references always point at slots.
//
// The same byte layout is used on disk and in memory. Runtime-only fields
// (DP as a virtual address, segment_handle, last_data_base) are rewritten at
// fetch time; their on-disk values are interpreted as described per field.
#ifndef BESS_SEGMENT_LAYOUT_H_
#define BESS_SEGMENT_LAYOUT_H_

#include <cstdint>

#include "storage/storage_area.h"
#include "util/config.h"

namespace bess {

/// Identifies a slotted segment: (database, storage area, first page).
/// Stable for the life of the segment (slotted segments never move).
struct SegmentId {
  uint16_t db = 0;
  uint16_t area = 0;
  PageId first_page = kInvalidPage;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(db) << 48) |
           (static_cast<uint64_t>(area) << 32) | first_page;
  }
  static SegmentId Unpack(uint64_t v) {
    return SegmentId{static_cast<uint16_t>(v >> 48),
                     static_cast<uint16_t>((v >> 32) & 0xFFFF),
                     static_cast<PageId>(v & 0xFFFFFFFFu)};
  }
  bool valid() const { return first_page != kInvalidPage; }
  bool operator==(const SegmentId& o) const {
    return db == o.db && area == o.area && first_page == o.first_page;
  }
};

/// Slot flags.
enum SlotFlags : uint16_t {
  kSlotInUse = 1 << 0,
  kSlotLargeObject = 1 << 1,  ///< transparent large object (own disk segment)
  kSlotForward = 1 << 2,      ///< forward object for inter-database refs
  kSlotVeryLarge = 1 << 3,    ///< byte-range large object (tree in overflow)
};

inline constexpr uint16_t kNoSlot = 0xFFFF;

/// An object header, stored in a slot (paper: TP, DP, size, bookkeeping).
///
/// `dp` interpretation:
///   in memory:                 virtual address of the object's data
///   on disk, small object:     byte offset within the data segment
///   on disk, large object:     packed disk address (area:16|pages:16|page:32)
///   on disk, very large:       byte offset of its descriptor in the
///                              overflow segment
struct Slot {
  uint64_t dp = 0;
  uint32_t type_idx = 0;    ///< TP: index into the database type table
  uint32_t size = 0;        ///< object size in bytes
  uint32_t uniquifier = 0;  ///< bumped on every slot reuse (OID uniqueness)
  uint16_t flags = 0;
  uint16_t next_free = kNoSlot;  ///< free-slot chain link when free
  uint64_t lock_ref = 0;  ///< runtime pointer to lock info; junk on disk

  bool in_use() const { return flags & kSlotInUse; }

  static uint64_t PackDiskAddr(uint16_t area, PageId page, uint16_t pages) {
    return (static_cast<uint64_t>(area) << 48) |
           (static_cast<uint64_t>(pages) << 32) | page;
  }
  static void UnpackDiskAddr(uint64_t v, uint16_t* area, PageId* page,
                             uint16_t* pages) {
    *area = static_cast<uint16_t>(v >> 48);
    *pages = static_cast<uint16_t>((v >> 32) & 0xFFFF);
    *page = static_cast<PageId>(v & 0xFFFFFFFFu);
  }
};
static_assert(sizeof(Slot) == 32, "Slot layout is persisted; keep it stable");

/// Entry in the outbound-reference table: a slotted segment that objects in
/// this segment reference. On-disk reference fields name their target as
/// (outbound index, slot number); swizzling turns that into the virtual
/// address of the target slot.
struct OutboundRef {
  uint16_t db = 0;
  uint16_t area = 0;
  PageId first_page = kInvalidPage;

  SegmentId AsSegmentId() const { return SegmentId{db, area, first_page}; }
};
static_assert(sizeof(OutboundRef) == 8);

/// Index value meaning "this segment itself" in reference fields.
inline constexpr uint16_t kOutboundSelf = 0xFFFF;

/// On-disk form of a reference field inside an object (8 bytes):
///   bits 63..48: outbound index (kOutboundSelf for intra-segment refs)
///   bits 47..32: slot number in the target segment
///   bit  0:      always 1 (tags the value as unswizzled; a swizzled value
///                is a pointer, which is at least 8-byte aligned)
/// A zero value is a null reference in both forms.
struct DiskRef {
  static uint64_t Pack(uint16_t outbound_idx, uint16_t slot) {
    return (static_cast<uint64_t>(outbound_idx) << 48) |
           (static_cast<uint64_t>(slot) << 32) | 1u;
  }
  static bool IsUnswizzled(uint64_t v) { return (v & 1u) != 0; }
  static uint16_t OutboundIdx(uint64_t v) {
    return static_cast<uint16_t>(v >> 48);
  }
  static uint16_t SlotNo(uint64_t v) {
    return static_cast<uint16_t>((v >> 32) & 0xFFFF);
  }
};

/// Fixed header at the start of every slotted segment ("slotted segment
/// header" of Figure 1).
struct SlottedHeader {
  static constexpr uint32_t kMagic = 0xBE55D0C5u;

  uint32_t magic = kMagic;
  uint16_t db = 0;
  uint16_t area = 0;
  PageId first_page = kInvalidPage;  ///< self (slotted segments never move)
  uint32_t page_count = 0;           ///< slotted segment size in pages
  uint16_t file_id = 0;              ///< owning BeSS file
  uint16_t flags = 0;

  uint32_t slot_capacity = 0;
  uint32_t slot_count = 0;  ///< slots ever used (high-water mark)
  uint32_t live_objects = 0;
  uint16_t free_head = kNoSlot;  ///< head of free-slot chain
  uint16_t outbound_capacity = 0;
  uint16_t outbound_count = 0;
  uint16_t reserved0 = 0;

  // Data segment location and its (bump) allocation state.
  uint16_t data_area = 0;
  uint16_t reserved1 = 0;
  PageId data_first_page = kInvalidPage;
  uint32_t data_page_count = 0;
  uint32_t data_used = 0;  ///< bump pointer: bytes allocated from the start
  uint32_t data_dead = 0;  ///< bytes occupied by deleted objects (holes)

  // Overflow segment (kInvalidPage when absent).
  uint16_t overflow_area = 0;
  uint16_t reserved2 = 0;
  PageId overflow_first_page = kInvalidPage;
  uint32_t overflow_page_count = 0;
  uint32_t overflow_used = 0;

  /// Runtime pointer to the in-memory segment control structure (the
  /// paper's "segment handle": dirty pages, lock data, ...). Junk on disk.
  uint64_t segment_handle = 0;

  /// Virtual address at which the data segment was mapped when this image
  /// was last written. DP fix-up at fetch time computes
  ///   new_dp = new_data_base + (old_dp - last_data_base)
  /// — the paper's "two arithmetic operations".
  uint64_t last_data_base = 0;

  SegmentId self() const { return SegmentId{db, area, first_page}; }
  SegmentId data_segment() const {
    return SegmentId{db, data_area, data_first_page};
  }
};

/// Byte offset of slot `i` within the slotted segment image.
inline constexpr size_t SlotOffset(uint32_t i) {
  return sizeof(SlottedHeader) + static_cast<size_t>(i) * sizeof(Slot);
}

/// Byte offset of outbound entry `i`, given the slot capacity.
inline constexpr size_t OutboundOffset(uint32_t slot_capacity, uint32_t i) {
  return SlotOffset(slot_capacity) + static_cast<size_t>(i) * sizeof(OutboundRef);
}

/// Total bytes needed for a slotted segment image.
inline constexpr size_t SlottedImageSize(uint32_t slot_capacity,
                                         uint32_t outbound_capacity) {
  return OutboundOffset(slot_capacity, outbound_capacity);
}

}  // namespace bess

#endif  // BESS_SEGMENT_LAYOUT_H_
