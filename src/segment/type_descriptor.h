// Type descriptors: per-type metadata the swizzler consults.
//
// "Type descriptors contain the offsets of pointers within the objects they
// describe" (paper §2.1). They are registered per database; the slot's TP
// field stores an index into this table. Descriptors are persisted in the
// database catalog.
#ifndef BESS_SEGMENT_TYPE_DESCRIPTOR_H_
#define BESS_SEGMENT_TYPE_DESCRIPTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace bess {

/// Index of a type in a database's type table.
using TypeIdx = uint32_t;

/// Type index used for raw (pointer-free) byte objects; always present.
inline constexpr TypeIdx kRawBytesType = 0;

/// Describes one object type: its name, fixed size (0 for variable), and
/// the byte offsets of reference fields within instances.
struct TypeDescriptor {
  std::string name;
  uint32_t fixed_size = 0;  ///< 0 = variable-size
  std::vector<uint32_t> ref_offsets;

  void EncodeTo(std::string* out) const;
  static Result<TypeDescriptor> DecodeFrom(Decoder* dec);
};

/// The per-database type table. Registration is append-only; index 0 is the
/// built-in raw-bytes type. Thread-safe.
class TypeTable {
 public:
  TypeTable();

  /// Registers a type (or returns the existing index if a type of the same
  /// name is already registered; re-registration with a different shape is
  /// InvalidArgument). Reference offsets must be 8-byte aligned and, for
  /// fixed-size types, within the object.
  Result<TypeIdx> Register(const TypeDescriptor& desc);

  /// Looks up by index. The pointer stays valid for the table's lifetime
  /// (registration never reallocates published entries' ref vectors).
  Result<const TypeDescriptor*> Get(TypeIdx idx) const;

  Result<TypeIdx> Find(const std::string& name) const;

  uint32_t size() const;

  /// Serializes the whole table into the database catalog.
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(Decoder* dec);

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TypeDescriptor>> types_;
  std::unordered_map<std::string, TypeIdx> by_name_;
};

}  // namespace bess

#endif  // BESS_SEGMENT_TYPE_DESCRIPTOR_H_
