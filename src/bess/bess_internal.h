// bess/bess_internal.h — the embedder surface.
//
// Everything an application needs beyond plain object access: hosting a
// page/object server, talking to one remotely, the client-side caches of
// both operation modes (copy-on-access private pools, shared-memory node
// cache), large-object streams, and the event-hook registry. Applications
// that only create, dereference and commit objects should include
// bess/bess.h alone — it compiles faster and exposes no server machinery.
#ifndef BESS_BESS_INTERNAL_H_
#define BESS_BESS_INTERNAL_H_

#include "bess/bess.h"
#include "cache/private_pool.h"
#include "cache/shared_cache.h"
#include "hooks/hooks.h"
#include "lob/large_object.h"
#include "server/bess_server.h"
#include "server/node_server.h"
#include "server/remote_client.h"

#endif  // BESS_BESS_INTERNAL_H_
