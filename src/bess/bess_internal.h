// bess/bess_internal.h — the embedder surface.
//
// Everything an application needs beyond plain object access: hosting a
// page/object server, talking to one remotely, the client-side caches of
// both operation modes (copy-on-access private pools, shared-memory node
// cache), large-object streams, and the event-hook registry. Applications
// that only create, dereference and commit objects should include
// bess/bess.h alone — it compiles faster and exposes no server machinery.
#ifndef BESS_BESS_INTERNAL_H_
#define BESS_BESS_INTERNAL_H_

#include "bess/bess.h"
#include "cache/private_pool.h"
#include "cache/shared_cache.h"
#include "hooks/hooks.h"
#include "lob/large_object.h"
#include "server/bess_server.h"
#include "server/node_server.h"
#include "server/remote_client.h"

namespace bess {

/// One bag of knobs for an embedder that opens a database and hosts it
/// behind a server: the database options plus every server timeout, so the
/// configuration surface (paper title: *configurable* storage manager) sits
/// in a single struct instead of being scattered across subsystems.
struct OpenOptions {
  Database::Options db;
  std::string socket_path;
  int lock_timeout_ms = kLockTimeoutMillis;
  /// Wait for one callback round trip before the holder's session is
  /// presumed dead and torn down (presumed-abort cleanup).
  int callback_timeout_ms = kCallbackTimeoutMillis;
  uint32_t simulated_latency_us = 0;

  BessServer::Options server_options() const {
    BessServer::Options o;
    o.socket_path = socket_path;
    o.lock_timeout_ms = lock_timeout_ms;
    o.callback_timeout_ms = callback_timeout_ms;
    o.simulated_latency_us = simulated_latency_us;
    return o;
  }
};

}  // namespace bess

#endif  // BESS_BESS_INTERNAL_H_
