// bess/bess.h — the public BeSS interface (paper §2.5).
//
// Object retrieval is implicit, via dereference of typed references in the
// style of ODMG-93 [14]:
//
//   bess::ref<Person> p = ...;
//   std::cout << p->spouse->name;   // faults, swizzles, locks — transparent
//
// `ref<T>` encapsulates a pointer to the object header (slot); it behaves
// like a `T*` and can be passed where a `T*` is expected. `global_ref<T>`
// encapsulates an OID — location-independent identity, somewhat slower to
// dereference. `shm_ref<T>` translates pointers between a process's PVMA
// and the shared virtual address space of the shared-memory operation mode
// (§4.1.2). Named root objects are retrieved explicitly from the database's
// root directory.
//
// This header is the application-facing surface: typed references, the
// TxnGuard scoped transaction, typed create/root helpers, and the metrics
// snapshot (bess::Snapshot / bess::Stats). Embedders that host a server,
// reach into the caches, or install hooks want bess/bess_internal.h.
#ifndef BESS_BESS_H_
#define BESS_BESS_H_

#include "object/database.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace bess {

class SharedPageSpace;  // bess_internal.h / cache/shared_cache.h

/// Typed reference to a persistent object: wraps a pointer to the object
/// header (slot). Dereference touches the slot and then the data, letting
/// the fault machinery fetch/swizzle/lock on demand (§2.1, §2.5).
///
/// Forward objects (inter-database references, §2.1) are followed
/// transparently on first dereference and the resolution is memoized.
///
/// Contract: get() (and therefore ->, *, and the T* conversion) returns
/// nullptr when the reference is null OR when it designates a forward
/// object whose target cannot be resolved (target database not open, stale
/// OID, unreadable forward payload). It never returns a pointer into the
/// forward object's own bytes. Each failed resolution also increments the
/// `api.forward_resolve.fail` counter, so a workload that silently loses
/// objects shows up in the stats snapshot.
template <typename T>
class ref {
 public:
  ref() = default;
  explicit ref(Slot* slot) : slot_(slot) {}

  /// Builds a ref from a raw reference field of another persistent object
  /// (a swizzled pointer to a slot).
  static ref FromField(uint64_t field) {
    return ref(reinterpret_cast<Slot*>(field));
  }

  bool valid() const { return slot_ != nullptr; }
  explicit operator bool() const { return valid(); }

  Slot* slot() const { return slot_; }

  /// The object's bytes; nullptr for null refs and unresolvable forwards
  /// (see the class contract above). Successful forward resolution is
  /// memoized, failure is re-attempted on the next dereference.
  T* get() const {
    if (slot_ == nullptr) return nullptr;
    Slot* s = slot_;
    if (s->flags & kSlotForward) {
      Database* db = Database::FindByAddress(s);
      Result<Slot*> resolved =
          db != nullptr ? db->ResolveForward(s)
                        : Result<Slot*>(Status::NotFound(
                              "forward slot outside any open database"));
      if (!resolved.ok()) {
        BESS_COUNT("api.forward_resolve.fail");
        return nullptr;
      }
      s = *resolved;
      slot_ = s;  // memoize
    }
    return reinterpret_cast<T*>(s->dp);
  }

  T* operator->() const { return get(); }
  T& operator*() const { return *get(); }
  operator T*() const { return get(); }  // NOLINT: pass as T* (§2.5)

  /// The raw field value to store inside another persistent object.
  uint64_t AsField() const { return reinterpret_cast<uint64_t>(slot_); }

  bool operator==(const ref& o) const { return slot_ == o.slot_; }
  bool operator!=(const ref& o) const { return slot_ != o.slot_; }

 private:
  mutable Slot* slot_ = nullptr;
};

/// Reference by OID — explicit identity, resolved through the database
/// registry; "access via this mechanism is somewhat slower" (§2.5).
template <typename T>
class global_ref {
 public:
  global_ref() = default;
  explicit global_ref(const Oid& oid) : oid_(oid) {}

  const Oid& oid() const { return oid_; }
  bool valid() const { return oid_.valid(); }

  /// Resolves to a fast in-memory ref (NotFound on stale OIDs).
  Result<ref<T>> Resolve() const {
    Database* db = Database::FindById(oid_.db);
    if (db == nullptr) {
      return Status::NotFound("database " + std::to_string(oid_.db) +
                              " is not open");
    }
    BESS_ASSIGN_OR_RETURN(Slot * slot, db->Deref(oid_));
    return ref<T>(slot);
  }

 private:
  Oid oid_;
};

/// Shared-memory-mode reference (§4.1.2): stores an SVMA offset, valid for
/// every process attached to the node cache; translation to a process
/// pointer adds the local PVMA base. Methods taking a SharedPageSpace*
/// require bess/bess_internal.h (or cache/shared_cache.h) at the call site.
template <typename T>
class shm_ref {
 public:
  shm_ref() = default;
  explicit shm_ref(uint64_t svma) : svma_(svma) {}

  template <typename Space = SharedPageSpace>
  static Result<shm_ref> FromPointer(Space* space, const T* ptr) {
    BESS_ASSIGN_OR_RETURN(uint64_t svma, space->ToSvma(ptr));
    return shm_ref(svma);
  }

  template <typename Space = SharedPageSpace>
  T* get(Space* space) const {
    return static_cast<T*>(space->FromSvma(svma_));
  }

  uint64_t svma() const { return svma_; }
  bool operator==(const shm_ref& o) const { return svma_ == o.svma_; }

 private:
  uint64_t svma_ = 0;
};

/// Scoped transaction: begins on construction; aborts on destruction unless
/// Commit() was called. Commit() reports what the commit cost.
class TxnGuard {
 public:
  explicit TxnGuard(Database* db) : db_(db) {
    auto txn = db->Begin();
    if (txn.ok()) txn_ = *txn;
    else status_ = txn.status();
  }
  ~TxnGuard() {
    if (txn_ != nullptr) (void)db_->Abort(txn_);
  }
  TxnGuard(const TxnGuard&) = delete;
  TxnGuard& operator=(const TxnGuard&) = delete;

  /// The status of Begin (check when construction might race another
  /// transaction on this thread).
  const Status& begin_status() const { return status_; }
  bool active() const { return txn_ != nullptr; }
  Txn* handle() const { return txn_; }

  /// Commits and returns what it cost (log bytes appended, pages forced,
  /// locks released, wall time). InvalidArgument when no transaction is
  /// active; the engine's error otherwise.
  Result<CommitStats> Commit() {
    if (txn_ == nullptr) return Status::InvalidArgument("no transaction");
    Txn* t = txn_;
    txn_ = nullptr;
    CommitStats stats;
    BESS_RETURN_IF_ERROR(db_->Commit(t, &stats));
    return stats;
  }

  Status Abort() {
    if (txn_ == nullptr) return Status::InvalidArgument("no transaction");
    Txn* t = txn_;
    txn_ = nullptr;
    return db_->Abort(t);
  }

 private:
  Database* db_;
  Txn* txn_ = nullptr;
  Status status_;
};

/// Deprecated spelling of TxnGuard with a Status-returning Commit(). New
/// code should use TxnGuard and inspect the CommitStats.
class Transaction {
 public:
  explicit Transaction(Database* db) : guard_(db) {}

  const Status& begin_status() const { return guard_.begin_status(); }
  bool active() const { return guard_.active(); }
  Txn* handle() const { return guard_.handle(); }

  Status Commit() { return guard_.Commit().status(); }
  Status Abort() { return guard_.Abort(); }

 private:
  TxnGuard guard_;
};

// ---- Pipelined RPCs (DESIGN.md §11) -----------------------------------------
//
// Networked applications talk to a BeSS server through `RemoteClient`
// (server/remote_client.h; included via bess_internal.h). Every RPC on a
// connection is correlated by request id, so the connection is a pipeline,
// not a lockstep request/response channel:
//
//   bess::ReplyFuture f1 = client->CallAsync(type1, payload1);
//   bess::ReplyFuture f2 = client->CallAsync(type2, payload2);  // in flight
//   ...                                    // server may already be executing
//   auto reply = f1.Get();                 // blocks only for f1's reply
//   client->Flush();                       // barrier: everything resolved
//
// Semantics:
//   - `CallAsync` never blocks on the server; it frames the request, hands
//     it to the wire, and returns a shareable `ReplyFuture`. The future
//     resolves to the server's reply (a `kMsgError` reply arrives as a
//     Message — decode with `DecodeStatusReply`) or to the transport
//     failure that killed the connection. `Get()` is idempotent.
//   - Requests from one client execute *serially in issue order* at the
//     server (a session is a FIFO drained by one worker at a time), so
//     pipelined writes + a final read behave as if issued synchronously —
//     only the wire round trips overlap.
//   - `Flush()` blocks until every in-flight RPC on every peer has
//     resolved, successfully or not: the barrier to run before asserting
//     server-side state.
//   - The synchronous calls (`Begin`/`Commit`, the catalog and object
//     helpers — everything else on RemoteClient) are built on this same
//     machinery and carry the retry/reconnect policy; `CallAsync` itself
//     is the raw single-attempt surface.

// ---- Secondary indexes (DESIGN.md §14) --------------------------------------
//
// `bess::Index` (declared in object/database.h, part of this surface) is a
// WAL-logged B+-tree over byte-string keys in its own storage area:
//
//   BESS_ASSIGN_OR_RETURN(bess::Index by_name, db->CreateIndex("by_name"));
//   by_name.Put(nullptr, "alice", EncodeOid(oid));      // autocommitted
//   TxnGuard txn(db);
//   by_name.Put(txn.handle(), "bob", EncodeOid(oid2));  // rides the txn
//   txn.Commit();                                       // or Abort: undone
//   by_name.Scan("a", "c", [](Slice k, Slice v) { ...; return Status::OK(); });
//
// Mutations join the surrounding transaction's WAL chain (abort reverses
// them logically); with `txn == nullptr` each call is its own durable
// micro-commit. Reads see the latest latched state.

/// Collects an index range into (key, value) pairs — the convenience form
/// of Index::Scan for small ranges.
inline Result<std::vector<std::pair<std::string, std::string>>> IndexRange(
    const Index& index, Slice lo, Slice hi) {
  std::vector<std::pair<std::string, std::string>> out;
  BESS_RETURN_IF_ERROR(index.Scan(lo, hi, [&](Slice k, Slice v) {
    out.emplace_back(k.ToString(), v.ToString());
    return Status::OK();
  }));
  return out;
}

/// Typed object creation (§2.5): size and type descriptor are supplied by
/// the caller's registered type; returns a typed ref.
template <typename T>
Result<ref<T>> CreateObject(Database* db, uint16_t file_id, TypeIdx type) {
  BESS_ASSIGN_OR_RETURN(Slot * slot,
                        db->CreateObject(file_id, type, sizeof(T)));
  return ref<T>(slot);
}

/// Typed root lookup.
template <typename T>
Result<ref<T>> GetRoot(Database* db, const std::string& name) {
  BESS_ASSIGN_OR_RETURN(Slot * slot, db->GetRoot(name));
  return ref<T>(slot);
}

}  // namespace bess

#endif  // BESS_BESS_H_
