#include "server/bess_server.h"

#include <algorithm>
#include <chrono>

#include "obs/stats.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace bess {
namespace {

LockMode ModeFromByte(uint8_t b) {
  if (b > static_cast<uint8_t>(LockMode::kX)) return LockMode::kX;
  return static_cast<LockMode>(b);
}

// How many applied commit ids the duplicate-suppression window remembers.
// A client retries a commit within a few backoff rounds, so even a small
// window is generous; bounding it keeps a long-lived server at O(1) memory.
constexpr size_t kAppliedCommitWindow = 1024;

}  // namespace

BessServer::BessServer(Options options)
    : options_(std::move(options)), locks_(options_.lock_timeout_ms) {}

BessServer::~BessServer() { Stop(); }

Status BessServer::AddDatabase(Database* db) {
  // The database registry is lock-free on the read side: registration is
  // only legal before Start() (whose thread creation publishes the map).
  if (running_.load()) {
    return Status::Busy("AddDatabase after Start()");
  }
  databases_[db->db_id()] = db;
  return Status::OK();
}

Status BessServer::Start() {
  BESS_ASSIGN_OR_RETURN(listener_, MsgListener::Listen(options_.socket_path));
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void BessServer::Stop() {
  if (!running_.exchange(false)) return;
  listener_.Shutdown();
  // Shutting session sockets down unblocks their serving threads (they
  // close their own fds as they unwind).
  for (SessionShard& shard : session_shards_) {
    std::lock_guard<std::mutex> guard(shard.mu);
    for (auto& [id, session] : shard.map) {
      (void)id;
      session->main.Shutdown();
      // A late kMsgHelloCallback may still be attaching this socket.
      std::lock_guard<std::mutex> cb_guard(session->callback_mutex);
      session->callback.Shutdown();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> guard(threads_mu_);
    threads.swap(session_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  listener_.Close();
}

Result<Database*> BessServer::DbFor(uint16_t db_id) {
  auto it = databases_.find(db_id);
  if (it == databases_.end()) {
    return Status::NotFound("server does not own database " +
                            std::to_string(db_id));
  }
  return it->second;
}

std::vector<Database*> BessServer::AllDatabases() {
  std::vector<Database*> dbs;
  dbs.reserve(databases_.size());
  for (auto& [id, db] : databases_) {
    (void)id;
    dbs.push_back(db);
  }
  return dbs;
}

std::shared_ptr<BessServer::Session> BessServer::FindSession(uint64_t id) {
  SessionShard& shard = SessionShardFor(id);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto it = shard.map.find(id);
  return it == shard.map.end() ? nullptr : it->second;
}

void BessServer::AcceptLoop() {
  while (running_.load()) {
    auto sock = listener_.AcceptTimeout(100);
    if (!sock.ok()) {
      if (sock.status().IsBusy()) continue;  // poll tick: re-check running_
      break;  // listener closed
    }
    sock->set_simulated_latency_us(options_.simulated_latency_us);
    auto first = sock->Recv();
    if (!first.ok()) continue;
    if (first->type == kMsgHello) {
      auto session = std::make_shared<Session>();
      session->id = next_session_.fetch_add(1);
      session->main = std::move(*sock);
      std::string reply;
      PutFixed64(&reply, session->id);
      if (!session->main.Send(kMsgOk, reply).ok()) continue;
      {
        SessionShard& shard = SessionShardFor(session->id);
        std::lock_guard<std::mutex> guard(shard.mu);
        shard.map[session->id] = session;
      }
      BESS_COUNT("srv.session.open");
      BESS_GAUGE_ADD("srv.session.active", 1);
      std::lock_guard<std::mutex> guard(threads_mu_);
      session_threads_.emplace_back(
          [this, session] { ServeSession(session); });
    } else if (first->type == kMsgHelloCallback) {
      Decoder dec(first->payload);
      const uint64_t id = dec.GetFixed64();
      std::shared_ptr<Session> session = FindSession(id);
      if (session != nullptr) {
        // The session is already published, so Stop() or a callback round
        // trip can be looking at this socket; callback_mutex guards the fd.
        std::lock_guard<std::mutex> cb_guard(session->callback_mutex);
        session->callback = std::move(*sock);
        session->has_callback.store(true);
      }
    }
  }
}

void BessServer::ServeSession(std::shared_ptr<Session> session) {
  for (;;) {
    auto msg = session->main.Recv();
    BESS_DEBUG("session " << session->id << " recv type "
               << (msg.ok() ? msg->type : 0) << " ok=" << msg.ok());
    if (!msg.ok()) break;  // disconnect
    if (msg->type == kMsgGoodbye) break;
    uint16_t reply_type;
    std::string reply;
    Handle(*session, *msg, &reply_type, &reply);
    BESS_DEBUG("session " << session->id << " reply type " << reply_type);
    if (!session->main.Send(reply_type, reply).ok()) break;
  }
  // Session over. First resolve any transaction it prepared but never
  // decided: presumed abort — the coordinator kept its decision in volatile
  // memory, and this channel can no longer deliver one.
  if (!session->prepared_gtids.empty()) {
    for (uint64_t gtid : session->prepared_gtids) {
      for (Database* db : AllDatabases()) {
        (void)db->AbortPrepared(gtid);
      }
    }
  }
  // Then release its locks (cached and held) and forget it.
  locks_.ReleaseAll(session->id);
  {
    SessionShard& shard = SessionShardFor(session->id);
    std::lock_guard<std::mutex> guard(shard.mu);
    shard.map.erase(session->id);
  }
  stats_.sessions_reaped.fetch_add(1, std::memory_order_relaxed);
  BESS_GAUGE_SUB("srv.session.active", 1);
}

void BessServer::Handle(Session& session, const Message& msg,
                        uint16_t* reply_type, std::string* reply) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  BESS_COUNT("srv.request");
  BESS_SPAN("srv.request.latency");
  Status s = HandleRequest(session, msg, reply, reply_type);
  if (!s.ok()) {
    EncodeStatus(s, reply_type, reply);
  }
}

Status BessServer::HandleRequest(Session& session, const Message& msg,
                                 std::string* reply, uint16_t* reply_type) {
  *reply_type = kMsgOk;
  reply->clear();
  Decoder dec(msg.payload);

  switch (msg.type) {
    case kMsgFetchSlotted: {
      const SegmentId id = SegmentId::Unpack(dec.GetFixed64());
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(id.db));
      std::string buf(kMaxSlottedPages * kPageSize, '\0');
      // Serve from the canonical on-disk state via the database's store
      // path (the server's own mapped cache is a separate client).
      uint32_t pages = 0;
      BESS_RETURN_IF_ERROR(db->ReadRawPages(id.area, id.first_page, 1,
                                            buf.data()));
      const auto* header = reinterpret_cast<const SlottedHeader*>(buf.data());
      if (header->magic != SlottedHeader::kMagic || header->page_count == 0 ||
          header->page_count > kMaxSlottedPages) {
        return Status::Corruption("not a slotted segment head");
      }
      pages = header->page_count;
      if (pages > 1) {
        BESS_RETURN_IF_ERROR(db->ReadRawPages(id.area, id.first_page + 1,
                                              pages - 1,
                                              buf.data() + kPageSize));
      }
      PutFixed32(reply, pages);
      reply->append(buf.data(), static_cast<size_t>(pages) * kPageSize);
      stats_.fetches.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    case kMsgFetchPages: {
      const uint16_t db_id = dec.GetFixed16();
      const uint16_t area = dec.GetFixed16();
      const PageId first = dec.GetFixed32();
      const uint32_t count = dec.GetFixed32();
      if (!dec.ok() || count == 0 || count > kPagesPerExtent) {
        return Status::Protocol("bad fetch request");
      }
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      reply->resize(static_cast<size_t>(count) * kPageSize);
      BESS_RETURN_IF_ERROR(
          db->ReadRawPages(area, first, count, reply->data()));
      stats_.fetches.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    case kMsgAllocSegment: {
      const uint16_t db_id = dec.GetFixed16();
      const uint16_t area = dec.GetFixed16();
      const uint32_t pages = dec.GetFixed32();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(DiskSegment seg, db->AllocDiskSegment(area, pages));
      PutFixed32(reply, seg.first_page);
      PutFixed32(reply, seg.page_count);
      return Status::OK();
    }

    case kMsgFreeSegment: {
      const uint16_t db_id = dec.GetFixed16();
      const uint16_t area = dec.GetFixed16();
      const PageId first = dec.GetFixed32();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      return db->FreeDiskSegment(area, first);
    }

    case kMsgLock: {
      const uint64_t key = dec.GetFixed64();
      const LockMode mode = ModeFromByte(
          static_cast<uint8_t>(dec.GetBytes(1).data()[0]));
      const int timeout = static_cast<int>(dec.GetFixed32());
      stats_.lock_requests.fetch_add(1, std::memory_order_relaxed);
      return AcquireWithCallbacks(session, key, mode,
                                  timeout > 0 ? timeout
                                              : options_.lock_timeout_ms);
    }

    case kMsgReleaseLock: {
      const uint64_t key = dec.GetFixed64();
      return locks_.Release(session.id, key);
    }

    case kMsgReleaseAll: {
      locks_.ReleaseAll(session.id);
      return Status::OK();
    }

    case kMsgCommit: {
      const uint64_t ctid = dec.GetFixed64();
      if (!dec.ok()) return Status::Protocol("bad commit request");
      if (ctid != 0) {
        CommitShard& shard = CommitShardFor(ctid);
        std::lock_guard<std::mutex> guard(shard.mu);
        if (shard.applied.count(ctid)) {
          // A replay of a commit we already applied (its reply was lost):
          // report the original outcome instead of applying twice.
          stats_.commit_dedupes.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        }
      }
      Slice rest(msg.payload.data() + 8, msg.payload.size() - 8);
      BESS_ASSIGN_OR_RETURN(std::vector<PageImage> pages, DecodePageSet(rest));
      // Split by owning database (one server may own several).
      std::unordered_map<uint16_t, std::vector<PageImage>> by_db;
      for (PageImage& img : pages) by_db[img.db].push_back(std::move(img));
      for (auto& [db_id, set] : by_db) {
        BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
        BESS_RETURN_IF_ERROR(db->CommitPageSet(set));
      }
      if (ctid != 0) {
        CommitShard& shard = CommitShardFor(ctid);
        std::lock_guard<std::mutex> guard(shard.mu);
        shard.applied.insert(ctid);
        shard.order.push_back(ctid);
        if (shard.order.size() > kAppliedCommitWindow / kCommitShards) {
          shard.applied.erase(shard.order.front());
          shard.order.pop_front();
        }
      }
      stats_.commits.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    case kMsgPrepare: {
      const uint64_t gtid = dec.GetFixed64();
      Slice rest(msg.payload.data() + 8, msg.payload.size() - 8);
      BESS_ASSIGN_OR_RETURN(std::vector<PageImage> pages, DecodePageSet(rest));
      std::unordered_map<uint16_t, std::vector<PageImage>> by_db;
      for (PageImage& img : pages) by_db[img.db].push_back(std::move(img));
      for (auto& [db_id, set] : by_db) {
        BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
        BESS_RETURN_IF_ERROR(db->PreparePageSet(gtid, set));
      }
      session.prepared_gtids.insert(gtid);
      return Status::OK();
    }

    case kMsgCommitPrepared: {
      const uint64_t gtid = dec.GetFixed64();
      bool any = false;
      for (Database* db : AllDatabases()) {
        Status s = db->CommitPrepared(gtid);
        if (s.ok()) any = true;
        else if (!s.IsNotFound()) return s;
      }
      session.prepared_gtids.erase(gtid);
      return any ? Status::OK()
                 : Status::NotFound("gtid unknown (presumed abort)");
    }

    case kMsgAbortPrepared: {
      const uint64_t gtid = dec.GetFixed64();
      for (Database* db : AllDatabases()) {
        (void)db->AbortPrepared(gtid);
      }
      session.prepared_gtids.erase(gtid);
      return Status::OK();
    }

    case kMsgCreateFile: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      const uint8_t multi = static_cast<uint8_t>(dec.GetBytes(1).data()[0]);
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(uint16_t id,
                            db->CreateFile(name.ToString(), multi != 0));
      PutFixed16(reply, id);
      return Status::OK();
    }

    case kMsgFindFile: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(uint16_t id, db->FindFile(name.ToString()));
      PutFixed16(reply, id);
      return Status::OK();
    }

    case kMsgRegisterType: {
      const uint16_t db_id = dec.GetFixed16();
      Slice rest(msg.payload.data() + 2, msg.payload.size() - 2);
      Decoder tdec(rest);
      BESS_ASSIGN_OR_RETURN(TypeDescriptor desc,
                            TypeDescriptor::DecodeFrom(&tdec));
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(TypeIdx idx, db->RegisterType(desc));
      PutFixed32(reply, idx);
      return Status::OK();
    }

    case kMsgFetchTypes: {
      const uint16_t db_id = dec.GetFixed16();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      db->types()->EncodeTo(reply);
      return Status::OK();
    }

    case kMsgNewObjectSegment: {
      const uint16_t db_id = dec.GetFixed16();
      const uint16_t file_id = dec.GetFixed16();
      const uint32_t min_bytes = dec.GetFixed32();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(auto grant,
                            db->GrantObjectSegment(file_id, min_bytes));
      NewSegmentReply r;
      r.id = grant.id;
      r.slotted_pages = grant.slotted_pages;
      r.slot_capacity = grant.slot_capacity;
      r.outbound_capacity = grant.outbound_capacity;
      r.data_area = grant.data_area;
      r.data_first_page = grant.data_first_page;
      r.data_page_count = grant.data_page_count;
      r.EncodeTo(reply);
      return Status::OK();
    }

    case kMsgGetRoot: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(Oid oid, db->GetRootOid(name.ToString()));
      char buf[12];
      oid.EncodeTo(buf);
      reply->append(buf, 12);
      return Status::OK();
    }

    case kMsgSetRoot: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      Slice oid_bytes = dec.GetBytes(12);
      if (!dec.ok()) return Status::Protocol("bad SetRoot");
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      return db->SetRootOid(name.ToString(), Oid::DecodeFrom(oid_bytes.data()));
    }

    case kMsgRemoveRoot: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      return db->RemoveRoot(name.ToString());
    }

    case kMsgGetStats: {
      // Everything the server process has counted so far, over the wire.
      Snapshot().EncodeTo(reply);
      return Status::OK();
    }

    case kMsgScrub: {
      const uint16_t db_id = dec.GetFixed16();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(ScrubReport report, db->Scrub());
      PutFixed64(reply, report.pages_scanned);
      PutFixed64(reply, report.verify_failures);
      PutFixed64(reply, report.repaired);
      PutFixed64(reply, report.quarantined);
      return Status::OK();
    }

    default:
      return Status::Protocol("unknown request type " +
                              std::to_string(msg.type));
  }
}

void BessServer::MarkSessionDefunct(Session* session) {
  stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
  BESS_COUNT("srv.callback.timeout");
  // Shutting both sockets makes the session's serving thread's Recv fail,
  // which unwinds it into ServeSession's cleanup: prepared transactions are
  // presumed-aborted, locks released, the session erased. The defunct flag
  // additionally stops that thread from continuing to *wait* for locks —
  // without it, a serving thread parked in AcquireWithCallbacks rides out
  // its full timeout on a request whose session is already dead.
  session->defunct.store(true);
  session->has_callback.store(false);
  session->callback.Shutdown();
  session->main.Shutdown();
  // Release the ghost's locks now rather than when its serving thread
  // eventually unwinds: that thread may itself be parked in a lock wait,
  // and until it unwinds every waiter blocked on these locks would miss its
  // grant wakeup and time out against a holder that can never answer. The
  // unwind path's ReleaseAll then finds nothing left — release is
  // idempotent — and sweeps up anything granted in between.
  locks_.ReleaseAll(session->id);
}

Status BessServer::AcquireWithCallbacks(Session& session, uint64_t key,
                                        LockMode mode, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (session.defunct.load()) {
      // Torn down by the callback-timeout reaper while we were waiting: our
      // grant (if any) is moot and our locks are already being released.
      return Status::Aborted("session torn down during lock wait");
    }
    Status s = locks_.TryAcquire(session.id, key, mode);
    if (!s.IsBusy()) return s;  // granted or hard error

    // Conflict: call back the caching holders (callback locking, §3).
    std::vector<std::pair<TxnId, LockMode>> holders = locks_.Holders(key);
    for (const auto& [holder_id, held_mode] : holders) {
      if (holder_id == session.id || LockCompatible(held_mode, mode)) {
        continue;
      }
      std::shared_ptr<Session> holder = FindSession(holder_id);
      if (holder == nullptr || !holder->has_callback.load()) {
        // A dead or callback-less session cannot answer: break its lock if
        // the session is gone, otherwise keep waiting.
        continue;
      }
      std::string payload;
      PutFixed64(&payload, key);
      payload.push_back(static_cast<char>(mode));
      std::lock_guard<std::mutex> cb_guard(holder->callback_mutex);
      stats_.callbacks_sent.fetch_add(1, std::memory_order_relaxed);
      BESS_COUNT("srv.callback.sent");
      if (!holder->callback.Send(kMsgCallback, payload).ok()) {
        MarkSessionDefunct(holder.get());
        continue;
      }
      auto answer = holder->callback.RecvTimeout(options_.callback_timeout_ms);
      if (!answer.ok()) {
        // No answer inside the window: the holder is unresponsive. Tearing
        // down its session (not just counting a denial) frees its locks via
        // the presumed-abort path so the requester stops waiting on a ghost.
        MarkSessionDefunct(holder.get());
        continue;
      }
      if (answer->type == kMsgCallbackReleased) {
        stats_.callbacks_released.fetch_add(1, std::memory_order_relaxed);
        BESS_COUNT("srv.callback.released");
        (void)locks_.Release(holder_id, key);
      } else {
        // In use: the requester keeps waiting.
        stats_.callbacks_denied.fetch_add(1, std::memory_order_relaxed);
        BESS_COUNT("srv.callback.denied");
      }
    }

    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::Deadlock("lock wait timeout (callbacks exhausted) on " +
                              std::to_string(key));
    }
    // Wait for a grant on the lock manager's shard condition instead of
    // polling: a release (callback answer, commit, or a reaped holder's
    // ReleaseAll) wakes us immediately. The wait is capped per round so
    // unanswered conflicts re-enter the callback loop above.
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int round_ms =
        static_cast<int>(std::min<int64_t>(remaining.count() + 1, 50));
    s = locks_.Acquire(session.id, key, mode, round_ms);
    if (!s.IsDeadlock()) return s;  // granted or hard error
  }
}

BessServer::Stats BessServer::stats() const {
  Stats out;
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.fetches = stats_.fetches.load(std::memory_order_relaxed);
  out.commits = stats_.commits.load(std::memory_order_relaxed);
  out.commit_dedupes = stats_.commit_dedupes.load(std::memory_order_relaxed);
  out.sessions_reaped =
      stats_.sessions_reaped.load(std::memory_order_relaxed);
  out.lock_requests = stats_.lock_requests.load(std::memory_order_relaxed);
  out.callbacks_sent = stats_.callbacks_sent.load(std::memory_order_relaxed);
  out.callbacks_released =
      stats_.callbacks_released.load(std::memory_order_relaxed);
  out.callbacks_denied =
      stats_.callbacks_denied.load(std::memory_order_relaxed);
  out.callback_timeouts =
      stats_.callback_timeouts.load(std::memory_order_relaxed);
  return out;
}

}  // namespace bess
