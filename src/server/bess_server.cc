#include "server/bess_server.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/stats.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace bess {
namespace {

LockMode ModeFromByte(uint8_t b) {
  if (b > static_cast<uint8_t>(LockMode::kX)) return LockMode::kX;
  return static_cast<LockMode>(b);
}

// How many applied commit ids the duplicate-suppression window remembers.
// A client retries a commit within a few backoff rounds, so even a small
// window is generous; bounding it keeps a long-lived server at O(1) memory.
constexpr size_t kAppliedCommitWindow = 1024;

int DefaultWorkerCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(8u, std::max(2u, hw)));
}

}  // namespace

BessServer::BessServer(Options options)
    : options_(std::move(options)), locks_(options_.lock_timeout_ms) {}

BessServer::~BessServer() { Stop(); }

Status BessServer::AddDatabase(Database* db) {
  // The database registry is lock-free on the read side: registration is
  // only legal before Start() (whose thread creation publishes the map).
  if (running_.load()) {
    return Status::Busy("AddDatabase after Start()");
  }
  databases_[db->db_id()] = db;
  return Status::OK();
}

Status BessServer::Start() {
  BESS_ASSIGN_OR_RETURN(listener_, MsgListener::Listen(options_.socket_path));
  Reactor::Options ropts;
  ropts.workers = options_.worker_threads > 0 ? options_.worker_threads
                                              : DefaultWorkerCount();
  ropts.send_soft_cap_bytes = options_.send_soft_cap_bytes;
  ropts.send_hard_cap_bytes = options_.send_hard_cap_bytes;
  ropts.idle_timeout_ms = options_.idle_timeout_ms;
  ropts.probe_type = kMsgPing;
  ropts.watchdog_ms = options_.watchdog_ms;
  reactor_ = std::make_unique<Reactor>(ropts);
  BESS_RETURN_IF_ERROR(reactor_->AddListener(
      &listener_, [this](MsgSocket sock) { OnAccept(std::move(sock)); }));
  running_.store(true);
  return reactor_->Start();
}

void BessServer::Stop() {
  if (!running_.exchange(false)) return;
  // Mark every session defunct first: workers parked in lock-wait rounds
  // abort within one capped round instead of riding out their timeouts, and
  // callback round trips fail fast once their sockets are shut.
  for (SessionShard& shard : session_shards_) {
    std::lock_guard<std::mutex> guard(shard.mu);
    for (auto& [id, session] : shard.map) {
      (void)id;
      session->defunct.store(true);
      // A late kMsgHelloCallback may still be attaching this socket.
      std::lock_guard<std::mutex> cb_guard(session->callback_mutex);
      session->callback.Shutdown();
    }
  }
  // The reactor closes every connection on its event thread (running each
  // session's on_close cleanup), drains the worker queue, then joins.
  if (reactor_ != nullptr) reactor_->Stop();
  listener_.Close();
}

Result<Database*> BessServer::DbFor(uint16_t db_id) {
  auto it = databases_.find(db_id);
  if (it == databases_.end()) {
    return Status::NotFound("server does not own database " +
                            std::to_string(db_id));
  }
  return it->second;
}

std::vector<Database*> BessServer::AllDatabases() {
  std::vector<Database*> dbs;
  dbs.reserve(databases_.size());
  for (auto& [id, db] : databases_) {
    (void)id;
    dbs.push_back(db);
  }
  return dbs;
}

std::shared_ptr<BessServer::Session> BessServer::FindSession(uint64_t id) {
  SessionShard& shard = SessionShardFor(id);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto it = shard.map.find(id);
  return it == shard.map.end() ? nullptr : it->second;
}

void BessServer::OnAccept(MsgSocket sock) {
  // Accept-time admission: past the connection cap there is no session to
  // reply through, so the socket is simply closed — the cheapest possible
  // refusal, and on the client a clean retryable transport failure.
  if (options_.max_connections > 0 &&
      reactor_->ConnCountOnEventThread() >= options_.max_connections) {
    stats_.conns_rejected.fetch_add(1, std::memory_order_relaxed);
    BESS_COUNT("server.overload.conn_rejected");
    sock.Close();
    return;
  }
  // What this connection *is* — a new session's main channel or the
  // callback channel of an existing session — is decided by its first
  // message, so the handler carries a slot that Hello fills in.
  auto bound = std::make_shared<std::shared_ptr<Session>>();
  Reactor::ConnHandler handler;
  handler.on_message = [this, bound](Reactor::ConnId conn, Message msg) {
    OnConnMessage(bound, conn, std::move(msg));
  };
  handler.on_close = [this, bound](Reactor::ConnId) { OnConnClose(bound); };
  reactor_->AddConnection(std::move(sock), std::move(handler));
}

void BessServer::OnConnMessage(
    const std::shared_ptr<std::shared_ptr<Session>>& bound,
    Reactor::ConnId conn, Message msg) {
  std::shared_ptr<Session> session = *bound;
  if (session == nullptr) {
    // First message on a fresh connection.
    if (msg.type == kMsgHello) {
      session = std::make_shared<Session>();
      session->id = next_session_.fetch_add(1);
      session->conn = conn;
      {
        SessionShard& shard = SessionShardFor(session->id);
        std::lock_guard<std::mutex> guard(shard.mu);
        shard.map[session->id] = session;
      }
      *bound = session;
      BESS_COUNT("srv.session.open");
      BESS_GAUGE_ADD("srv.session.active", 1);
      std::string reply;
      PutFixed64(&reply, session->id);
      reactor_->Send(conn, kMsgOk, msg.req_id, std::move(reply));
    } else if (msg.type == kMsgHelloCallback) {
      Decoder dec(msg.payload);
      const uint64_t id = dec.GetFixed64();
      // The callback channel leaves the event loop: the server writes
      // callbacks and blocks for the answer from worker context, which is
      // exactly what the detached blocking surface is for.
      MsgSocket cb = reactor_->Detach(conn);
      std::shared_ptr<Session> target = dec.ok() ? FindSession(id) : nullptr;
      if (target != nullptr && cb.valid()) {
        cb.set_simulated_latency_us(options_.simulated_latency_us);
        // The session is already published, so Stop() or a callback round
        // trip can be looking at this socket; callback_mutex guards the fd.
        std::lock_guard<std::mutex> cb_guard(target->callback_mutex);
        target->callback = std::move(cb);
        target->has_callback.store(true);
      }
    } else {
      BESS_DEBUG("conn " << conn << " bad first message type " << msg.type);
      reactor_->CloseConn(conn);
    }
    return;
  }
  // An unsolicited kMsgOk/kMsgError inbound is a client's answer to our
  // idle probe (or a stray reply): pure liveness, already credited by the
  // reactor's activity tracking. Never a request — drop it here.
  if (msg.type == kMsgOk || msg.type == kMsgError) return;

  // Enqueue admission (DESIGN.md §12). Shedding order under overload:
  // phase-two 2PC decisions and Goodbye always pass (refusing them only
  // delays resolving an already-decided transaction); commit-carrying work
  // gets double the global budget; everything else sheds first. Every shed
  // is an explicit kRetryLater reply, never a silent drop.
  const bool exempt = msg.type == kMsgCommitPrepared ||
                      msg.type == kMsgAbortPrepared || msg.type == kMsgGoodbye;
  if (!exempt && options_.max_inflight_global > 0) {
    const uint64_t budget =
        (msg.type == kMsgCommit || msg.type == kMsgPrepare)
            ? uint64_t{options_.max_inflight_global} * 2
            : uint64_t{options_.max_inflight_global};
    if (inflight_.load(std::memory_order_relaxed) >= budget) {
      stats_.shed_admission.fetch_add(1, std::memory_order_relaxed);
      BESS_COUNT("server.overload.shed.admission");
      ShedRequest(conn, msg.req_id,
                  Status::RetryLater("server at capacity; back off"));
      return;
    }
  }

  // The wire deadline is a relative budget; pin it to an absolute expiry at
  // arrival so time spent queued counts against it.
  Session::Queued q;
  q.expiry = msg.deadline_ms > 0
                 ? std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(msg.deadline_ms)
                 : std::chrono::steady_clock::time_point::max();
  q.msg = std::move(msg);

  // Pipelining: append to the session's FIFO and claim the single-drainer
  // token if no worker currently owns this session.
  bool claim = false;
  {
    std::lock_guard<std::mutex> guard(session->q_mu);
    if (!exempt && options_.max_inflight_per_session > 0 &&
        session->queue.size() >= options_.max_inflight_per_session) {
      stats_.shed_admission.fetch_add(1, std::memory_order_relaxed);
      BESS_COUNT("server.overload.shed.admission");
      ShedRequest(conn, q.msg.req_id,
                  Status::RetryLater("session pipeline full; back off"));
      return;
    }
    session->queue.push_back(std::move(q));
    inflight_.fetch_add(1, std::memory_order_relaxed);
    if (!session->draining) {
      session->draining = true;
      claim = true;
    }
  }
  if (claim) {
    reactor_->Submit([this, session] { DrainSession(std::move(session)); });
  }
}

void BessServer::OnConnClose(
    const std::shared_ptr<std::shared_ptr<Session>>& bound) {
  std::shared_ptr<Session> session = *bound;
  if (session == nullptr) return;  // never said Hello (or was detached)
  bool claim = false;
  {
    std::lock_guard<std::mutex> guard(session->q_mu);
    session->closed = true;
    if (!session->draining) {
      session->draining = true;
      claim = true;
    }
  }
  // If a drain is in flight it will observe `closed` once the queue empties;
  // otherwise claim the token so cleanup runs exactly once, on a worker.
  if (claim) {
    reactor_->Submit([this, session] { DrainSession(std::move(session)); });
  }
}

void BessServer::DrainSession(std::shared_ptr<Session> session) {
  for (;;) {
    // An in-progress lock wait is the head-of-line request: run one bounded
    // round; if still undecided, requeue ourselves at the back of the worker
    // FIFO so other sessions — including whoever will release this lock —
    // get worker time. A waiter never parks a worker for its full timeout.
    if (session->lock_wait.active) {
      Status s = LockWaitRound(*session);
      if (s.IsBusy()) {
        reactor_->Submit([this, session] { DrainSession(std::move(session)); });
        return;  // the drain token stays held; no one else may enter
      }
      session->lock_wait.active = false;
      uint16_t type;
      std::string reply;
      EncodeStatus(s, &type, &reply);
      SendReply(*session, type, session->lock_wait.req_id, std::move(reply));
      // The kMsgLock request that started this wait completes here.
      inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
    Session::Queued q;
    bool got = false;
    bool cleanup = false;
    {
      std::lock_guard<std::mutex> guard(session->q_mu);
      if (session->queue.empty()) {
        session->draining = false;
        if (session->closed && !session->cleaned) {
          session->cleaned = true;
          cleanup = true;
        }
      } else {
        q = std::move(session->queue.front());
        session->queue.pop_front();
        got = true;
      }
    }
    if (cleanup) {
      CleanupSession(session);
      return;
    }
    if (!got) return;
    Message msg = std::move(q.msg);
    if (session->defunct.load()) {  // torn down: drop queued work
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (msg.type == kMsgGoodbye) {
      // Close via the event loop; its on_close re-enters the drain path for
      // the final cleanup once the token is released.
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      reactor_->CloseConn(session->conn);
      continue;
    }
    // Deadline shed: the client's budget ran out while the request sat in
    // the pipeline. Executing it would burn worker time on an answer no one
    // is waiting for — refuse instead, before dispatch. Phase-two 2PC
    // decisions execute regardless: they only shrink in-doubt state.
    if (q.expiry <= std::chrono::steady_clock::now() &&
        msg.type != kMsgCommitPrepared && msg.type != kMsgAbortPrepared) {
      stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      BESS_COUNT("server.overload.shed.deadline");
      ShedRequest(session->conn, msg.req_id,
                  Status::DeadlineExceeded("deadline passed before dispatch"));
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (msg.type == kMsgLock) {
      stats_.requests.fetch_add(1, std::memory_order_relaxed);
      BESS_COUNT("srv.request");
      Decoder dec(msg.payload);
      const uint64_t key = dec.GetFixed64();
      Slice mode_byte = dec.GetBytes(1);
      const int timeout = static_cast<int>(dec.GetFixed32());
      if (!dec.ok()) {
        uint16_t type;
        std::string reply;
        EncodeStatus(Status::Protocol("bad lock request"), &type, &reply);
        SendReply(*session, type, msg.req_id, std::move(reply));
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      stats_.lock_requests.fetch_add(1, std::memory_order_relaxed);
      session->lock_wait.active = true;
      session->lock_wait.key = key;
      session->lock_wait.mode =
          ModeFromByte(static_cast<uint8_t>(mode_byte.data()[0]));
      session->lock_wait.req_id = msg.req_id;
      session->lock_wait.deadline = std::min(
          q.expiry, std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(
                            timeout > 0 ? timeout : options_.lock_timeout_ms));
      continue;  // the top of the loop runs the first round
    }
    uint16_t reply_type;
    std::string reply;
    Handle(*session, msg, &reply_type, &reply);
    SendReply(*session, reply_type, msg.req_id, std::move(reply));
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void BessServer::CleanupSession(const std::shared_ptr<Session>& session) {
  // First resolve any transaction it prepared but never decided: presumed
  // abort — the coordinator kept its decision in volatile memory, and this
  // channel can no longer deliver one.
  if (!session->prepared_gtids.empty()) {
    for (uint64_t gtid : session->prepared_gtids) {
      for (Database* db : AllDatabases()) {
        (void)db->AbortPrepared(gtid);
      }
    }
  }
  // Then release its locks (cached and held) and forget it.
  locks_.ReleaseAll(session->id);
  {
    SessionShard& shard = SessionShardFor(session->id);
    std::lock_guard<std::mutex> guard(shard.mu);
    shard.map.erase(session->id);
  }
  {
    std::lock_guard<std::mutex> cb_guard(session->callback_mutex);
    session->has_callback.store(false);
    session->callback.Close();
  }
  stats_.sessions_reaped.fetch_add(1, std::memory_order_relaxed);
  BESS_GAUGE_SUB("srv.session.active", 1);
}

void BessServer::ShedRequest(Reactor::ConnId conn, uint64_t req_id,
                             const Status& s) {
  // No simulated LAN latency here: a shed exists to be cheaper than the
  // work it refuses, and under overload the worker (or event thread) must
  // not sleep per refusal.
  uint16_t type;
  std::string reply;
  EncodeStatus(s, &type, &reply);
  reactor_->Send(conn, type, req_id, std::move(reply));
}

void BessServer::SendReply(Session& session, uint16_t type, uint64_t req_id,
                           std::string payload) {
  // The simulated LAN latency burns worker time, never event-loop time.
  if (options_.simulated_latency_us > 0) {
    ::usleep(options_.simulated_latency_us);
  }
  reactor_->Send(session.conn, type, req_id, std::move(payload));
}

void BessServer::Handle(Session& session, const Message& msg,
                        uint16_t* reply_type, std::string* reply) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  BESS_COUNT("srv.request");
  BESS_SPAN("srv.request.latency");
  Status s = HandleRequest(session, msg, reply, reply_type);
  if (!s.ok()) {
    EncodeStatus(s, reply_type, reply);
  }
}

Status BessServer::HandleRequest(Session& session, const Message& msg,
                                 std::string* reply, uint16_t* reply_type) {
  *reply_type = kMsgOk;
  reply->clear();
  Decoder dec(msg.payload);

  switch (msg.type) {
    case kMsgPing: {
      // Echo, for latency probes and pipelining-exactness tests.
      reply->assign(msg.payload);
      return Status::OK();
    }

    case kMsgFetchSlotted: {
      const SegmentId id = SegmentId::Unpack(dec.GetFixed64());
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(id.db));
      std::string buf(kMaxSlottedPages * kPageSize, '\0');
      // Serve from the canonical on-disk state via the database's store
      // path (the server's own mapped cache is a separate client).
      uint32_t pages = 0;
      BESS_RETURN_IF_ERROR(db->ReadRawPages(id.area, id.first_page, 1,
                                            buf.data()));
      const auto* header = reinterpret_cast<const SlottedHeader*>(buf.data());
      if (header->magic != SlottedHeader::kMagic || header->page_count == 0 ||
          header->page_count > kMaxSlottedPages) {
        return Status::Corruption("not a slotted segment head");
      }
      pages = header->page_count;
      if (pages > 1) {
        BESS_RETURN_IF_ERROR(db->ReadRawPages(id.area, id.first_page + 1,
                                              pages - 1,
                                              buf.data() + kPageSize));
      }
      PutFixed32(reply, pages);
      reply->append(buf.data(), static_cast<size_t>(pages) * kPageSize);
      stats_.fetches.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    case kMsgFetchPages: {
      const uint16_t db_id = dec.GetFixed16();
      const uint16_t area = dec.GetFixed16();
      const PageId first = dec.GetFixed32();
      const uint32_t count = dec.GetFixed32();
      if (!dec.ok() || count == 0 || count > kPagesPerExtent) {
        return Status::Protocol("bad fetch request");
      }
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      reply->resize(static_cast<size_t>(count) * kPageSize);
      BESS_RETURN_IF_ERROR(
          db->ReadRawPages(area, first, count, reply->data()));
      stats_.fetches.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    case kMsgAllocSegment: {
      const uint16_t db_id = dec.GetFixed16();
      const uint16_t area = dec.GetFixed16();
      const uint32_t pages = dec.GetFixed32();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(DiskSegment seg, db->AllocDiskSegment(area, pages));
      PutFixed32(reply, seg.first_page);
      PutFixed32(reply, seg.page_count);
      return Status::OK();
    }

    case kMsgFreeSegment: {
      const uint16_t db_id = dec.GetFixed16();
      const uint16_t area = dec.GetFixed16();
      const PageId first = dec.GetFixed32();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      return db->FreeDiskSegment(area, first);
    }

    case kMsgReleaseLock: {
      const uint64_t key = dec.GetFixed64();
      return locks_.Release(session.id, key);
    }

    case kMsgReleaseAll: {
      locks_.ReleaseAll(session.id);
      return Status::OK();
    }

    case kMsgCommit: {
      const uint64_t ctid = dec.GetFixed64();
      if (!dec.ok()) return Status::Protocol("bad commit request");
      if (ctid != 0) {
        CommitShard& shard = CommitShardFor(ctid);
        std::lock_guard<std::mutex> guard(shard.mu);
        if (shard.applied.count(ctid)) {
          // A replay of a commit we already applied (its reply was lost):
          // report the original outcome instead of applying twice.
          stats_.commit_dedupes.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        }
      }
      Slice rest(msg.payload.data() + 8, msg.payload.size() - 8);
      BESS_ASSIGN_OR_RETURN(std::vector<PageImage> pages, DecodePageSet(rest));
      // Split by owning database (one server may own several).
      std::unordered_map<uint16_t, std::vector<PageImage>> by_db;
      for (PageImage& img : pages) by_db[img.db].push_back(std::move(img));
      for (auto& [db_id, set] : by_db) {
        BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
        // WAL backpressure: while the retained log is over its soft limit,
        // refuse *new* commit work outright rather than parking a worker in
        // a throttled append. The client retries after backing off — by
        // then the forced checkpoint has usually reclaimed space. A replay
        // of an applied commit never gets here (dedup window answered OK).
        if (db->LogBackpressured()) {
          stats_.shed_log_full.fetch_add(1, std::memory_order_relaxed);
          BESS_COUNT("server.overload.shed.log_full");
          return Status::RetryLater("log full; retry after backoff");
        }
        BESS_RETURN_IF_ERROR(db->CommitPageSet(set));
      }
      if (ctid != 0) {
        CommitShard& shard = CommitShardFor(ctid);
        std::lock_guard<std::mutex> guard(shard.mu);
        shard.applied.insert(ctid);
        shard.order.push_back(ctid);
        if (shard.order.size() > kAppliedCommitWindow / kCommitShards) {
          shard.applied.erase(shard.order.front());
          shard.order.pop_front();
        }
      }
      stats_.commits.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    case kMsgPrepare: {
      const uint64_t gtid = dec.GetFixed64();
      Slice rest(msg.payload.data() + 8, msg.payload.size() - 8);
      BESS_ASSIGN_OR_RETURN(std::vector<PageImage> pages, DecodePageSet(rest));
      std::unordered_map<uint16_t, std::vector<PageImage>> by_db;
      for (PageImage& img : pages) by_db[img.db].push_back(std::move(img));
      for (auto& [db_id, set] : by_db) {
        BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
        // Same WAL-backpressure refusal as kMsgCommit: prepares open *new*
        // in-doubt state, which is exactly what a full log cannot afford.
        if (db->LogBackpressured()) {
          stats_.shed_log_full.fetch_add(1, std::memory_order_relaxed);
          BESS_COUNT("server.overload.shed.log_full");
          return Status::RetryLater("log full; retry after backoff");
        }
        BESS_RETURN_IF_ERROR(db->PreparePageSet(gtid, set));
      }
      session.prepared_gtids.insert(gtid);
      return Status::OK();
    }

    case kMsgCommitPrepared: {
      const uint64_t gtid = dec.GetFixed64();
      bool any = false;
      for (Database* db : AllDatabases()) {
        Status s = db->CommitPrepared(gtid);
        if (s.ok()) any = true;
        else if (!s.IsNotFound()) return s;
      }
      session.prepared_gtids.erase(gtid);
      return any ? Status::OK()
                 : Status::NotFound("gtid unknown (presumed abort)");
    }

    case kMsgAbortPrepared: {
      const uint64_t gtid = dec.GetFixed64();
      for (Database* db : AllDatabases()) {
        (void)db->AbortPrepared(gtid);
      }
      session.prepared_gtids.erase(gtid);
      return Status::OK();
    }

    case kMsgCreateFile: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      const uint8_t multi = static_cast<uint8_t>(dec.GetBytes(1).data()[0]);
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(uint16_t id,
                            db->CreateFile(name.ToString(), multi != 0));
      PutFixed16(reply, id);
      return Status::OK();
    }

    case kMsgFindFile: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(uint16_t id, db->FindFile(name.ToString()));
      PutFixed16(reply, id);
      return Status::OK();
    }

    case kMsgRegisterType: {
      const uint16_t db_id = dec.GetFixed16();
      Slice rest(msg.payload.data() + 2, msg.payload.size() - 2);
      Decoder tdec(rest);
      BESS_ASSIGN_OR_RETURN(TypeDescriptor desc,
                            TypeDescriptor::DecodeFrom(&tdec));
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(TypeIdx idx, db->RegisterType(desc));
      PutFixed32(reply, idx);
      return Status::OK();
    }

    case kMsgFetchTypes: {
      const uint16_t db_id = dec.GetFixed16();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      db->types()->EncodeTo(reply);
      return Status::OK();
    }

    case kMsgNewObjectSegment: {
      const uint16_t db_id = dec.GetFixed16();
      const uint16_t file_id = dec.GetFixed16();
      const uint32_t min_bytes = dec.GetFixed32();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(auto grant,
                            db->GrantObjectSegment(file_id, min_bytes));
      NewSegmentReply r;
      r.id = grant.id;
      r.slotted_pages = grant.slotted_pages;
      r.slot_capacity = grant.slot_capacity;
      r.outbound_capacity = grant.outbound_capacity;
      r.data_area = grant.data_area;
      r.data_first_page = grant.data_first_page;
      r.data_page_count = grant.data_page_count;
      r.EncodeTo(reply);
      return Status::OK();
    }

    case kMsgGetRoot: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(Oid oid, db->GetRootOid(name.ToString()));
      char buf[12];
      oid.EncodeTo(buf);
      reply->append(buf, 12);
      return Status::OK();
    }

    case kMsgSetRoot: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      Slice oid_bytes = dec.GetBytes(12);
      if (!dec.ok()) return Status::Protocol("bad SetRoot");
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      return db->SetRootOid(name.ToString(), Oid::DecodeFrom(oid_bytes.data()));
    }

    case kMsgRemoveRoot: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      return db->RemoveRoot(name.ToString());
    }

    case kMsgGetStats: {
      // Everything the server process has counted so far, over the wire.
      Snapshot().EncodeTo(reply);
      return Status::OK();
    }

    case kMsgScrub: {
      const uint16_t db_id = dec.GetFixed16();
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(ScrubReport report, db->Scrub());
      PutFixed64(reply, report.pages_scanned);
      PutFixed64(reply, report.verify_failures);
      PutFixed64(reply, report.repaired);
      PutFixed64(reply, report.quarantined);
      return Status::OK();
    }

    case kMsgIndexCreate: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      if (!dec.ok()) return Status::Protocol("bad IndexCreate");
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      return db->CreateIndex(name.ToString()).status();
    }

    case kMsgIndexDrop: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      if (!dec.ok()) return Status::Protocol("bad IndexDrop");
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      return db->DropIndex(name.ToString());
    }

    case kMsgIndexPut: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      Slice key = dec.GetLengthPrefixed();
      Slice value = dec.GetLengthPrefixed();
      if (!dec.ok()) return Status::Protocol("bad IndexPut");
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      // Same WAL-backpressure refusal as kMsgCommit: an index put is a new
      // micro-commit (kBegin is its throttled admission point).
      if (db->LogBackpressured()) {
        stats_.shed_log_full.fetch_add(1, std::memory_order_relaxed);
        BESS_COUNT("server.overload.shed.log_full");
        return Status::RetryLater("log full; retry after backoff");
      }
      BESS_ASSIGN_OR_RETURN(Index index, db->OpenIndex(name.ToString()));
      return index.Put(nullptr, key, value);
    }

    case kMsgIndexDel: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      Slice key = dec.GetLengthPrefixed();
      if (!dec.ok()) return Status::Protocol("bad IndexDel");
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      if (db->LogBackpressured()) {
        stats_.shed_log_full.fetch_add(1, std::memory_order_relaxed);
        BESS_COUNT("server.overload.shed.log_full");
        return Status::RetryLater("log full; retry after backoff");
      }
      BESS_ASSIGN_OR_RETURN(Index index, db->OpenIndex(name.ToString()));
      bool existed = false;
      BESS_RETURN_IF_ERROR(index.Delete(nullptr, key, &existed));
      reply->push_back(existed ? 1 : 0);
      return Status::OK();
    }

    case kMsgIndexGet: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      Slice key = dec.GetLengthPrefixed();
      if (!dec.ok()) return Status::Protocol("bad IndexGet");
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(Index index, db->OpenIndex(name.ToString()));
      std::string value;
      BESS_ASSIGN_OR_RETURN(bool found, index.Get(key, &value));
      reply->push_back(found ? 1 : 0);
      if (found) PutLengthPrefixed(reply, value);
      return Status::OK();
    }

    case kMsgIndexScan: {
      const uint16_t db_id = dec.GetFixed16();
      Slice name = dec.GetLengthPrefixed();
      std::string lo = dec.GetLengthPrefixed().ToString();
      std::string hi = dec.GetLengthPrefixed().ToString();
      uint32_t limit = dec.GetFixed32();
      if (!dec.ok()) return Status::Protocol("bad IndexScan");
      if (limit == 0 || limit > kIndexScanMaxEntries) {
        limit = kIndexScanMaxEntries;  // bound the reply frame
      }
      BESS_ASSIGN_OR_RETURN(Database * db, DbFor(db_id));
      BESS_ASSIGN_OR_RETURN(Index index, db->OpenIndex(name.ToString()));
      std::string entries;
      uint32_t n = 0;
      bool truncated = false;
      Status s = index.Scan(lo, hi, [&](Slice k, Slice v) {
        if (n >= limit) {
          truncated = true;
          return Status::Aborted("scan limit");  // stop the scan, not an error
        }
        PutLengthPrefixed(&entries, k);
        PutLengthPrefixed(&entries, v);
        ++n;
        return Status::OK();
      });
      if (!s.ok() && !truncated) return s;
      PutFixed32(reply, n);
      reply->append(entries);
      reply->push_back(truncated ? 1 : 0);
      return Status::OK();
    }

    default:
      return Status::Protocol("unknown request type " +
                              std::to_string(msg.type));
  }
}

void BessServer::MarkSessionDefunct(Session* session) {
  stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
  BESS_COUNT("srv.callback.timeout");
  // The defunct flag stops the session's drain from continuing to *wait*
  // for locks — without it, a lock-wait round in flight rides out its cap
  // on a request whose session is already dead. Closing the main channel
  // (via the reactor, so it is safe from any thread) triggers the session's
  // on_close → cleanup path: prepared transactions are presumed-aborted,
  // the session erased.
  session->defunct.store(true);
  session->has_callback.store(false);
  session->callback.Shutdown();
  reactor_->CloseConn(session->conn);
  // Release the ghost's locks now rather than when its cleanup eventually
  // runs: every waiter blocked on these locks would otherwise miss its
  // grant wakeup and time out against a holder that can never answer. The
  // cleanup path's ReleaseAll then finds nothing left — release is
  // idempotent — and sweeps up anything granted in between.
  locks_.ReleaseAll(session->id);
}

Status BessServer::LockWaitRound(Session& session) {
  const LockWait& w = session.lock_wait;
  if (session.defunct.load()) {
    // Torn down by the callback-timeout reaper while we were waiting: our
    // grant (if any) is moot and our locks are already being released.
    return Status::Aborted("session torn down during lock wait");
  }
  Status s = locks_.TryAcquire(session.id, w.key, w.mode);
  if (!s.IsBusy()) return s;  // granted or hard error

  // Conflict: call back the caching holders (callback locking, §3). The
  // round trips block, which is why lock waits live on workers.
  std::vector<std::pair<TxnId, LockMode>> holders = locks_.Holders(w.key);
  for (const auto& [holder_id, held_mode] : holders) {
    if (holder_id == session.id || LockCompatible(held_mode, w.mode)) {
      continue;
    }
    std::shared_ptr<Session> holder = FindSession(holder_id);
    if (holder == nullptr || !holder->has_callback.load()) {
      // A dead or callback-less session cannot answer: break its lock if
      // the session is gone, otherwise keep waiting.
      continue;
    }
    std::string payload;
    PutFixed64(&payload, w.key);
    payload.push_back(static_cast<char>(w.mode));
    std::lock_guard<std::mutex> cb_guard(holder->callback_mutex);
    stats_.callbacks_sent.fetch_add(1, std::memory_order_relaxed);
    BESS_COUNT("srv.callback.sent");
    if (!holder->callback.Send(kMsgCallback, payload).ok()) {
      MarkSessionDefunct(holder.get());
      continue;
    }
    auto answer = holder->callback.RecvTimeout(options_.callback_timeout_ms);
    if (!answer.ok()) {
      // No answer inside the window: the holder is unresponsive. Tearing
      // down its session (not just counting a denial) frees its locks via
      // the presumed-abort path so the requester stops waiting on a ghost.
      MarkSessionDefunct(holder.get());
      continue;
    }
    if (answer->type == kMsgCallbackReleased) {
      stats_.callbacks_released.fetch_add(1, std::memory_order_relaxed);
      BESS_COUNT("srv.callback.released");
      (void)locks_.Release(holder_id, w.key);
    } else {
      // In use: the requester keeps waiting.
      stats_.callbacks_denied.fetch_add(1, std::memory_order_relaxed);
      BESS_COUNT("srv.callback.denied");
    }
  }

  const auto now = std::chrono::steady_clock::now();
  if (now >= w.deadline) {
    return Status::Deadlock("lock wait timeout (callbacks exhausted) on " +
                            std::to_string(w.key));
  }
  // Wait for a grant on the lock manager's shard condition instead of
  // polling: a release (callback answer, commit, or a reaped holder's
  // ReleaseAll) wakes us immediately. The wait is capped per round so the
  // worker is handed back between rounds and unanswered conflicts re-enter
  // the callback loop above.
  const auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(w.deadline - now);
  const int round_ms =
      static_cast<int>(std::min<int64_t>(remaining.count() + 1, 50));
  s = locks_.Acquire(session.id, w.key, w.mode, round_ms);
  if (!s.IsDeadlock()) return s;  // granted or hard error
  return Status::Busy("lock wait round expired");
}

BessServer::Stats BessServer::stats() const {
  Stats out;
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.fetches = stats_.fetches.load(std::memory_order_relaxed);
  out.commits = stats_.commits.load(std::memory_order_relaxed);
  out.commit_dedupes = stats_.commit_dedupes.load(std::memory_order_relaxed);
  out.sessions_reaped =
      stats_.sessions_reaped.load(std::memory_order_relaxed);
  out.lock_requests = stats_.lock_requests.load(std::memory_order_relaxed);
  out.callbacks_sent = stats_.callbacks_sent.load(std::memory_order_relaxed);
  out.callbacks_released =
      stats_.callbacks_released.load(std::memory_order_relaxed);
  out.callbacks_denied =
      stats_.callbacks_denied.load(std::memory_order_relaxed);
  out.callback_timeouts =
      stats_.callback_timeouts.load(std::memory_order_relaxed);
  out.shed_deadline = stats_.shed_deadline.load(std::memory_order_relaxed);
  out.shed_admission = stats_.shed_admission.load(std::memory_order_relaxed);
  out.shed_log_full = stats_.shed_log_full.load(std::memory_order_relaxed);
  out.conns_rejected = stats_.conns_rejected.load(std::memory_order_relaxed);
  return out;
}

size_t BessServer::live_sessions() const {
  size_t n = 0;
  for (const SessionShard& shard : session_shards_) {
    std::lock_guard<std::mutex> guard(shard.mu);
    n += shard.map.size();
  }
  return n;
}

}  // namespace bess
