#include "server/remote_client.h"

#include <unistd.h>

#include <algorithm>

#include "object/database.h"
#include "obs/trace.h"
#include "os/fault_injection.h"
#include "util/logging.h"

namespace bess {
namespace {

/// Per-opcode RPC counters for the handful of opcodes that dominate the
/// paper's traffic; the rest pool under rpc.other.
void CountRpcOp(uint16_t type) {
  switch (type) {
    case kMsgFetchSlotted: BESS_COUNT("rpc.fetch_slotted"); break;
    case kMsgFetchPages: BESS_COUNT("rpc.fetch_pages"); break;
    case kMsgLock: BESS_COUNT("rpc.lock"); break;
    case kMsgCommit: BESS_COUNT("rpc.commit"); break;
    case kMsgPrepare:
    case kMsgCommitPrepared:
    case kMsgAbortPrepared: BESS_COUNT("rpc.2pc"); break;
    default: BESS_COUNT("rpc.other"); break;
  }
}

/// Transport failures (vs. an error *reply* from the server): the request
/// may not have reached the server — the only errors worth a retry.
bool IsTransportFailure(const Status& s) {
  return s.IsIOError() || s.code() == StatusCode::kProtocol;
}

/// Safe to replay after a transport failure: reads, lock traffic (re-granting
/// a held lock is a no-op; after a reconnect the new session needs the grant
/// anyway), and commit (deduplicated server-side by the ctid prefix, so a
/// replayed commit whose first attempt applied reports OK without applying
/// twice). Everything else — catalog mutation, segment allocation, 2PC
/// prepare/decision — could apply twice and must surface "outcome unknown".
bool IsIdempotentRpc(uint16_t type) {
  switch (type) {
    case kMsgFetchSlotted:
    case kMsgFetchPages:
    case kMsgFetchTypes:
    case kMsgFindFile:
    case kMsgGetRoot:
    case kMsgLock:
    case kMsgReleaseLock:
    case kMsgReleaseAll:
    case kMsgCommit:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ---- RemoteStore --------------------------------------------------------------

// Fetches segments from the server into the client cache (copy on access).
// Write-back never goes through here: commits ship the whole page set in
// one atomic kMsgCommit.
class RemoteClient::RemoteStore : public SegmentStore {
 public:
  explicit RemoteStore(RemoteClient* client) : client_(client) {}

  Status FetchSlotted(SegmentId id, void* buf, uint32_t* page_count) override {
    std::string payload;
    PutFixed64(&payload, id.Pack());
    Message reply;
    BESS_RETURN_IF_ERROR(client_->Call(client_->PeerFor(id.db),
                                       kMsgFetchSlotted, payload, &reply));
    Decoder dec(reply.payload);
    const uint32_t pages = dec.GetFixed32();
    Slice bytes = dec.GetBytes(static_cast<size_t>(pages) * kPageSize);
    if (!dec.ok() || pages == 0 || pages > kMaxSlottedPages) {
      return Status::Protocol("bad FetchSlotted reply");
    }
    memcpy(buf, bytes.data(), bytes.size());
    *page_count = pages;
    return Status::OK();
  }

  Status FetchPages(uint16_t db, uint16_t area, PageId first,
                    uint32_t page_count, void* buf) override {
    std::string payload;
    PutFixed16(&payload, db);
    PutFixed16(&payload, area);
    PutFixed32(&payload, first);
    PutFixed32(&payload, page_count);
    Message reply;
    BESS_RETURN_IF_ERROR(
        client_->Call(client_->PeerFor(db), kMsgFetchPages, payload, &reply));
    if (reply.payload.size() != static_cast<size_t>(page_count) * kPageSize) {
      return Status::Protocol("short FetchPages reply");
    }
    memcpy(buf, reply.payload.data(), reply.payload.size());
    return Status::OK();
  }

  Status WritePages(uint16_t, uint16_t, PageId, uint32_t,
                    const void*) override {
    return Status::NotSupported(
        "remote clients write back through Commit() only");
  }

 private:
  RemoteClient* client_;
};

// ---- connection ---------------------------------------------------------------

Result<std::unique_ptr<RemoteClient>> RemoteClient::Connect(Options options) {
  auto client = std::unique_ptr<RemoteClient>(new RemoteClient());
  client->options_ = options;

  BESS_ASSIGN_OR_RETURN(client->primary_.main,
                        MsgSocket::Connect(options.server_path));
  client->primary_.main.set_simulated_latency_us(options.simulated_latency_us);
  client->primary_.path = options.server_path;
  client->primary_.db_ids.push_back(options.db_id);
  // The hello handshake is the one blocking round trip on the main socket;
  // once the reader thread starts, all receives go through it.
  BESS_RETURN_IF_ERROR(client->primary_.main.Send(kMsgHello, ""));
  BESS_ASSIGN_OR_RETURN(Message hello, client->primary_.main.Recv());
  if (hello.type != kMsgOk || hello.payload.size() != 8) {
    return Status::Protocol("bad hello reply");
  }
  client->session_id_ = DecodeFixed64(hello.payload.data());
  client->StartReader(&client->primary_);

  BESS_ASSIGN_OR_RETURN(client->callback_sock_,
                        MsgSocket::Connect(options.server_path));
  std::string bind;
  PutFixed64(&bind, client->session_id_);
  BESS_RETURN_IF_ERROR(client->callback_sock_.Send(kMsgHelloCallback, bind));

  client->store_ = std::make_unique<RemoteStore>(client.get());
  client->mapper_ = std::make_unique<SegmentMapper>(
      client->store_.get(), &client->types_, options.mapper);
  client->mapper_->set_observer(client.get());

  BESS_RETURN_IF_ERROR(client->SyncTypes());

  client->running_.store(true);
  client->callback_thread_ = std::thread([c = client.get()] {
    c->CallbackLoop();
  });
  return client;
}

RemoteClient::~RemoteClient() {
  running_.store(false);
  (void)primary_.main.Send(kMsgGoodbye, "");
  StopReader(&primary_);
  for (auto& peer : extra_peers_) StopReader(peer.get());
  callback_sock_.Shutdown();
  if (callback_thread_.joinable()) callback_thread_.join();
  callback_sock_.Close();
  mapper_.reset();
}

// ---- pipelined RPC core -------------------------------------------------------

Result<Message> ReplyFuture::Get() {
  if (state_ == nullptr) {
    return Status::InvalidArgument("Get() on an empty ReplyFuture");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  if (!state_->status.ok()) return state_->status;
  return state_->reply;
}

void RemoteClient::StartReader(Peer* peer) {
  std::lock_guard<std::mutex> guard(peer->p_mu);
  const uint64_t gen = peer->generation;
  peer->reader = std::thread([this, peer, gen] { ReaderLoop(peer, gen); });
}

void RemoteClient::StopReader(Peer* peer) {
  peer->main.Shutdown();  // wakes the reader's poll
  std::thread reader;
  {
    std::lock_guard<std::mutex> guard(peer->p_mu);
    reader = std::move(peer->reader);
  }
  if (reader.joinable()) reader.join();
}

void RemoteClient::FailAllPending(Peer* peer, const Status& s) {
  std::vector<std::shared_ptr<ReplyFuture::State>> victims;
  {
    std::lock_guard<std::mutex> guard(peer->p_mu);
    victims.reserve(peer->pending.size());
    for (auto& [id, st] : peer->pending) {
      (void)id;
      victims.push_back(st);
    }
    peer->pending.clear();
    peer->drained_cv.notify_all();
  }
  for (auto& st : victims) {
    std::lock_guard<std::mutex> guard(st->mu);
    st->done = true;
    st->status = s;
    st->cv.notify_all();
  }
}

void RemoteClient::ReaderLoop(Peer* peer, uint64_t generation) {
  for (;;) {
    // Poll-first receive: the socket's fault point is only consulted once
    // data (or a close) is actually pending, so a parked reader does not
    // consume injection triggers aimed at in-flight replies.
    auto r = peer->main.RecvTimeout(-1);
    {
      std::lock_guard<std::mutex> guard(peer->p_mu);
      if (peer->generation != generation) return;  // superseded by Reconnect
    }
    if (!r.ok()) {
      // Transport death takes every in-flight RPC with it; the sync Call
      // layer decides per-opcode whether a replay is safe.
      FailAllPending(peer, r.status());
      return;
    }
    std::shared_ptr<ReplyFuture::State> st;
    {
      std::lock_guard<std::mutex> guard(peer->p_mu);
      auto it = peer->pending.find(r->req_id);
      if (it != peer->pending.end()) {
        st = it->second;
        peer->pending.erase(it);
      }
      if (peer->pending.empty()) peer->drained_cv.notify_all();
    }
    if (st != nullptr) {
      std::lock_guard<std::mutex> guard(st->mu);
      st->done = true;
      st->reply = std::move(*r);
      st->cv.notify_all();
    } else if (r->type == kMsgPing) {
      // The server's idle probe (DESIGN.md §12): an unsolicited ping with
      // no pending entry. Answer it so a live-but-quiet client is not
      // reaped as half-open; the echo's req_id lets the server drop it.
      std::lock_guard<std::mutex> guard(peer->send_mu);
      (void)peer->main.Send(kMsgOk, "", r->req_id);
    }
    // Any other reply with no pending entry is dropped: its Call already
    // failed the send locally, or this is a stray from a dying connection.
  }
}

ReplyFuture RemoteClient::CallAsyncOn(Peer& peer, uint16_t type,
                                      const std::string& payload,
                                      uint64_t* req_id_out) {
  ReplyFuture fut;
  fut.state_ = std::make_shared<ReplyFuture::State>();
  const uint64_t req_id = next_req_id_.fetch_add(1, std::memory_order_relaxed);
  if (req_id_out != nullptr) *req_id_out = req_id;
  // Register before sending so the reader can never race the reply.
  {
    std::lock_guard<std::mutex> guard(peer.p_mu);
    peer.pending.emplace(req_id, fut.state_);
  }
  Status s;
  {
    std::lock_guard<std::mutex> guard(peer.send_mu);
    // The deadline rides the frame header: the server turns the relative
    // budget into an absolute expiry at arrival and sheds the request if
    // it is still queued when the budget runs out (DESIGN.md §12).
    s = peer.main.Send(type, payload, req_id, options_.rpc_deadline_ms);
  }
  if (!s.ok()) {
    // Whoever erases the pending entry owns completion (the reader's
    // fail-all may be racing us).
    bool own = false;
    {
      std::lock_guard<std::mutex> guard(peer.p_mu);
      own = peer.pending.erase(req_id) > 0;
      if (peer.pending.empty()) peer.drained_cv.notify_all();
    }
    if (own) {
      std::lock_guard<std::mutex> guard(fut.state_->mu);
      fut.state_->done = true;
      fut.state_->status = s;
      fut.state_->cv.notify_all();
    }
  }
  return fut;
}

ReplyFuture RemoteClient::CallAsync(uint16_t type, const std::string& payload) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stats_.rpcs++;
  }
  BESS_COUNT("rpc.call");
  CountRpcOp(type);
  return CallAsyncOn(primary_, type, payload);
}

Status RemoteClient::Flush() {
  auto wait_drained = [](Peer& peer) {
    std::unique_lock<std::mutex> lock(peer.p_mu);
    peer.drained_cv.wait(lock, [&peer] { return peer.pending.empty(); });
  };
  wait_drained(primary_);
  for (auto& peer : extra_peers_) wait_drained(*peer);
  return Status::OK();
}

Result<Message> RemoteClient::AwaitReply(Peer& peer, ReplyFuture& fut,
                                         uint64_t req_id, int timeout_ms) {
  auto st = fut.state_;
  if (st == nullptr) return Status::InvalidArgument("empty future");
  std::unique_lock<std::mutex> lock(st->mu);
  if (timeout_ms <= 0) {
    st->cv.wait(lock, [&] { return st->done; });
  } else if (!st->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              [&] { return st->done; })) {
    // Timed out waiting locally. Withdraw the pending entry; whoever
    // erases it owns completion (the reader may be racing us with the
    // real reply, in which case we take that instead).
    lock.unlock();
    bool own;
    {
      std::lock_guard<std::mutex> pguard(peer.p_mu);
      own = peer.pending.erase(req_id) > 0;
      if (peer.pending.empty()) peer.drained_cv.notify_all();
    }
    lock.lock();
    if (own) {
      st->done = true;
      st->status = Status::DeadlineExceeded("no reply within deadline");
      st->cv.notify_all();
    } else {
      st->cv.wait(lock, [&] { return st->done; });  // reader is finishing
    }
  }
  if (!st->status.ok()) return st->status;
  return st->reply;
}

Status RemoteClient::BreakerAdmit(Peer& peer) {
  if (options_.breaker_failure_threshold <= 0) return Status::OK();
  {
    std::lock_guard<std::mutex> guard(peer.b_mu);
    if (!peer.breaker_open) return Status::OK();
    const auto now = std::chrono::steady_clock::now();
    if (now < peer.breaker_until || peer.probe_inflight) {
      BESS_COUNT("client.breaker.short_circuit");
      {
        std::lock_guard<std::mutex> sguard(mutex_);
        stats_.breaker_short_circuits++;
      }
      return Status::RetryLater("circuit open to " + peer.path);
    }
    peer.probe_inflight = true;  // half-open: this caller owns the probe
  }
  {
    std::lock_guard<std::mutex> sguard(mutex_);
    stats_.breaker_probes++;
  }
  BESS_COUNT("client.breaker.probe");
  const int probe_wait = std::max(options_.breaker_cooldown_ms, 50);
  uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> guard(peer.p_mu);
    gen = peer.generation;
  }
  uint64_t req_id = 0;
  ReplyFuture fut = CallAsyncOn(peer, kMsgPing, "", &req_id);
  Result<Message> r = AwaitReply(peer, fut, req_id, probe_wait);
  if (!r.ok() && IsTransportFailure(r.status())) {
    // The old socket is dead but the server may be back by now: probe once
    // more on a fresh connection. (This is how an opened breaker heals
    // across a server restart — the regular reconnect path never runs
    // while every call short-circuits.)
    if (Reconnect(peer, gen).ok()) {
      fut = CallAsyncOn(peer, kMsgPing, "", &req_id);
      r = AwaitReply(peer, fut, req_id, probe_wait);
    }
  }
  std::lock_guard<std::mutex> guard(peer.b_mu);
  peer.probe_inflight = false;
  if (r.ok()) {
    // Any reply at all — even an error status — proves the peer serves
    // traffic again.
    peer.breaker_open = false;
    peer.consecutive_failures = 0;
    BESS_COUNT("client.breaker.close");
    return Status::OK();
  }
  peer.breaker_until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.breaker_cooldown_ms);
  return Status::RetryLater("half-open probe failed; circuit stays open");
}

void RemoteClient::BreakerRecord(Peer& peer, bool failed) {
  if (options_.breaker_failure_threshold <= 0) return;
  bool opened = false;
  {
    std::lock_guard<std::mutex> guard(peer.b_mu);
    if (!failed) {
      peer.consecutive_failures = 0;
      return;
    }
    peer.consecutive_failures++;
    if (!peer.breaker_open &&
        peer.consecutive_failures >= options_.breaker_failure_threshold) {
      peer.breaker_open = true;
      opened = true;
    }
    if (peer.breaker_open) {
      peer.breaker_until =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.breaker_cooldown_ms);
    }
  }
  if (opened) {
    {
      std::lock_guard<std::mutex> sguard(mutex_);
      stats_.breaker_opens++;
    }
    BESS_COUNT("client.breaker.open");
    BESS_DEBUG("breaker opened to " << peer.path);
  }
}

Status RemoteClient::Call(Peer& peer, uint16_t type,
                          const std::string& payload, Message* reply) {
  {
    std::lock_guard<std::mutex> sguard(mutex_);
    stats_.rpcs++;
  }
  BESS_COUNT("rpc.call");
  CountRpcOp(type);
  BESS_SPAN("rpc.call.latency");
  // Local wait backstop: roughly twice the wire deadline (budget for the
  // queueing the server's shed already accounts for, plus transit), so a
  // wedged server cannot park this caller forever. No deadline = wait
  // forever, as before.
  const int local_wait_ms =
      options_.rpc_deadline_ms > 0
          ? static_cast<int>(options_.rpc_deadline_ms * 2 + 50)
          : -1;
  Status last;
  uint64_t observed_gen = 0;
  int transport_attempts = 0;
  int shed_retries = 0;
  bool need_reconnect = false;
  for (;;) {
    if (need_reconnect) {
      if (++transport_attempts > options_.max_rpc_retries) return last;
      {
        std::lock_guard<std::mutex> sguard(mutex_);
        stats_.rpc_retries++;
      }
      BESS_COUNT("rpc.retry");
      ::usleep(static_cast<useconds_t>(options_.rpc_backoff_ms) * 1000u
               << (transport_attempts - 1));
      Status rc = Reconnect(peer, observed_gen);
      if (!rc.ok()) {
        last = rc;
        continue;  // server may still be coming back: back off and retry
      }
      need_reconnect = false;
    }
    // Circuit breaker: while open, fail fast with kRetryLater — no socket
    // traffic, no reconnect storm. The first caller past the cooldown runs
    // the half-open ping probe inside BreakerAdmit.
    BESS_RETURN_IF_ERROR(BreakerAdmit(peer));
    {
      std::lock_guard<std::mutex> guard(peer.p_mu);
      observed_gen = peer.generation;
    }
    BESS_DEBUG("client call send type " << type << " attempt "
               << (transport_attempts + shed_retries));
    uint64_t req_id = 0;
    ReplyFuture fut = CallAsyncOn(peer, type, payload, &req_id);
    Result<Message> r = AwaitReply(peer, fut, req_id, local_wait_ms);
    if (r.ok()) {
      BreakerRecord(peer, /*failed=*/false);
      *reply = std::move(*r);
      BESS_DEBUG("client call got reply " << reply->type);
      if (reply->type == kMsgError) {
        Status e = DecodeStatusReply(*reply);
        // kRetryLater = the server shed us (admission control or WAL
        // backpressure): it is healthy, just full. Back off and resend on
        // the same connection, within its own budget — this never burns a
        // transport retry and never reconnects.
        if (e.IsRetryLater() && shed_retries < options_.retry_later_max) {
          ++shed_retries;
          {
            std::lock_guard<std::mutex> sguard(mutex_);
            stats_.retry_later_backoffs++;
          }
          BESS_COUNT("client.retry_later.backoff");
          const uint64_t base =
              static_cast<uint64_t>(options_.retry_later_backoff_ms)
              << std::min(shed_retries - 1, 10);
          uint64_t jittered;
          {
            std::lock_guard<std::mutex> guard(backoff_mutex_);
            jittered = base / 2 + backoff_rng_.Uniform(base / 2 + 1);
          }
          ::usleep(static_cast<useconds_t>(jittered) * 1000u);
          continue;
        }
        // Any other error reply (including kDeadlineExceeded — the server
        // refused unexecuted work whose budget ran out) is the operation's
        // outcome: never retried.
        return e;
      }
      return Status::OK();
    }
    Status s = r.status();
    last = s;
    if (s.IsDeadlineExceeded()) {
      // Gave up waiting locally. The budget is gone — a retry would only
      // expire again — so surface it, but feed the breaker: enough of
      // these in a row and subsequent calls fail fast instead of each
      // burning a full deadline against a wedged server.
      BreakerRecord(peer, /*failed=*/true);
      {
        std::lock_guard<std::mutex> sguard(mutex_);
        stats_.deadline_timeouts++;
      }
      BESS_COUNT("client.deadline.local");
      return s;
    }
    if (!IsTransportFailure(s)) return s;
    BreakerRecord(peer, /*failed=*/true);
    if (!IsIdempotentRpc(type)) {
      // The request may have reached the server even though the send or the
      // reply failed; replaying it could apply the operation twice.
      return Status::Aborted("RPC outcome unknown after transport failure (op " +
                             std::to_string(type) + "): " + s.message());
    }
    need_reconnect = true;
  }
}

Status RemoteClient::Reconnect(Peer& peer, uint64_t observed_generation) {
  {
    std::unique_lock<std::mutex> guard(peer.p_mu);
    if (peer.generation != observed_generation) {
      // Another thread reconnected since our attempt failed: ride its work.
      return Status::OK();
    }
    peer.generation++;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stats_.reconnects++;
  }
  BESS_COUNT("rpc.reconnect");
  // Retire the old reader (it exits on the generation bump; shutdown wakes
  // it if parked) and fail whatever was still in flight.
  StopReader(&peer);
  FailAllPending(&peer, Status::IOError("connection reset by reconnect"));

  // Swap the socket under send_mu so concurrent pipelined sends can never
  // interleave with the handshake.
  {
    std::lock_guard<std::mutex> guard(peer.send_mu);
    peer.main.Close();
    BESS_ASSIGN_OR_RETURN(peer.main, MsgSocket::Connect(peer.path));
    peer.main.set_simulated_latency_us(options_.simulated_latency_us);
    BESS_RETURN_IF_ERROR(peer.main.Send(kMsgHello, ""));
    BESS_ASSIGN_OR_RETURN(Message hello, peer.main.Recv());
    if (hello.type != kMsgOk || hello.payload.size() != 8) {
      return Status::Protocol("bad hello reply");
    }
    const uint64_t new_session = DecodeFixed64(hello.payload.data());

    if (&peer == &primary_) {
      session_id_.store(new_session);
      // Rebind the callback channel: the old one belonged to the dead
      // session.
      callback_sock_.Shutdown();
      if (callback_thread_.joinable()) callback_thread_.join();
      callback_sock_.Close();
      BESS_ASSIGN_OR_RETURN(callback_sock_, MsgSocket::Connect(peer.path));
      std::string bind;
      PutFixed64(&bind, new_session);
      BESS_RETURN_IF_ERROR(callback_sock_.Send(kMsgHelloCallback, bind));
      if (running_.load()) {
        callback_thread_ = std::thread([this] { CallbackLoop(); });
      }
    }
  }
  StartReader(&peer);

  // The server released the dead session's locks, so every cached lock —
  // and the 2PL guarantee of any transaction in flight — is gone.
  std::lock_guard<std::mutex> guard(mutex_);
  cached_locks_.clear();
  key_home_.clear();
  active_segment_.clear();
  evict_after_reconnect_ = true;
  if (in_txn_ && poison_.ok()) {
    poison_ = Status::Aborted(
        "connection lost mid-transaction: server released our locks");
  }
  return Status::OK();
}

RemoteClient::Peer& RemoteClient::PeerFor(uint16_t db_id) {
  for (auto& peer : extra_peers_) {
    for (uint16_t id : peer->db_ids) {
      if (id == db_id) return *peer;
    }
  }
  return primary_;
}

Status RemoteClient::AddServer(const std::string& server_path,
                               const std::vector<uint16_t>& db_ids) {
  auto peer = std::make_unique<Peer>();
  BESS_ASSIGN_OR_RETURN(peer->main, MsgSocket::Connect(server_path));
  peer->main.set_simulated_latency_us(options_.simulated_latency_us);
  peer->path = server_path;
  peer->db_ids = db_ids;
  BESS_RETURN_IF_ERROR(peer->main.Send(kMsgHello, ""));
  BESS_ASSIGN_OR_RETURN(Message hello, peer->main.Recv());
  if (hello.type != kMsgOk) return Status::Protocol("bad hello reply");
  StartReader(peer.get());
  extra_peers_.push_back(std::move(peer));
  return Status::OK();
}

Status RemoteClient::SyncTypes() {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  Message reply;
  BESS_RETURN_IF_ERROR(Call(primary_, kMsgFetchTypes, payload, &reply));
  Decoder dec(reply.payload);
  return types_.DecodeFrom(&dec);
}

// ---- locking ------------------------------------------------------------------

Status RemoteClient::EnsureLock(uint64_t key, LockMode mode, SegmentId home) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = cached_locks_.find(key);
    if (it != cached_locks_.end() && LockJoin(it->second, mode) == it->second) {
      // Cached from an earlier transaction: no server round trip (§3).
      in_use_.insert(key);
      stats_.lock_cache_hits++;
      BESS_COUNT("rpc.lock.cache_hit");
      return Status::OK();
    }
  }
  // RPC outside the client mutex: the callback thread must stay responsive
  // while we wait (the server may be calling *us* back for another lock).
  std::string payload;
  PutFixed64(&payload, key);
  payload.push_back(static_cast<char>(mode));
  PutFixed32(&payload, static_cast<uint32_t>(options_.lock_timeout_ms));
  Message reply;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stats_.lock_rpcs++;
  }
  // kDeadlock means the server's wait timed out — usually transient
  // contention (the holder's transaction will finish), not a true cycle.
  // Retry with exponential backoff; jitter desynchronizes clients that timed
  // out against each other so they don't collide again in lockstep.
  Status lock_status;
  for (int attempt = 0;; ++attempt) {
    lock_status = Call(PeerFor(home.db), kMsgLock, payload, &reply);
    if (!lock_status.IsDeadlock() || attempt >= options_.lock_retries) break;
    const uint64_t base = static_cast<uint64_t>(options_.lock_backoff_ms)
                          << attempt;
    uint64_t jittered;
    {
      std::lock_guard<std::mutex> guard(backoff_mutex_);
      jittered = base / 2 + backoff_rng_.Uniform(base / 2 + 1);
    }
    {
      std::lock_guard<std::mutex> guard(mutex_);
      stats_.lock_backoffs++;
    }
    BESS_COUNT("client.lock.backoff");
    ::usleep(static_cast<useconds_t>(jittered) * 1000u);
  }
  BESS_RETURN_IF_ERROR(lock_status);

  std::lock_guard<std::mutex> guard(mutex_);
  auto it = cached_locks_.find(key);
  cached_locks_[key] =
      it == cached_locks_.end() ? mode : LockJoin(it->second, mode);
  in_use_.insert(key);
  key_home_[key] = home.Pack();
  return Status::OK();
}

Status RemoteClient::OnSegmentRead(SegmentId id) {
  Status s = EnsureLock(LockKey::Segment(id.Pack()), LockMode::kS, id);
  if (!s.ok()) {
    std::lock_guard<std::mutex> guard(mutex_);
    if (poison_.ok()) poison_ = s;
  }
  return Status::OK();
}

Status RemoteClient::OnPageWrite(SegmentId id, PageAddr page) {
  Status s = EnsureLock(LockKey::Segment(id.Pack()), LockMode::kIX, id);
  if (s.ok()) {
    s = EnsureLock(LockKey::Page(page.db, page.area, page.page), LockMode::kX,
                   id);
  }
  if (!s.ok()) {
    std::lock_guard<std::mutex> guard(mutex_);
    if (poison_.ok()) poison_ = s;
  }
  return Status::OK();
}

// ---- callbacks ----------------------------------------------------------------

void RemoteClient::CallbackLoop() {
  while (running_.load()) {
    // Poll-first (negative timeout = wait forever): a parked callback loop
    // only touches the "sock.recv" fault point once a callback (or a close)
    // is actually pending, so it cannot eat triggers a test aimed at the
    // main channel's replies.
    auto msg = callback_sock_.RecvTimeout(-1);
    if (!msg.ok()) break;
    if (msg->type != kMsgCallback || msg->payload.size() < 9) continue;
    const uint64_t key = DecodeFixed64(msg->payload.data());
    const LockMode wanted = static_cast<LockMode>(msg->payload[8]);
    Status s = HandleCallback(key, wanted);
    (void)callback_sock_.Send(
        s.ok() ? kMsgCallbackReleased : kMsgCallbackDenied, "");
  }
}

Status RemoteClient::HandleCallback(uint64_t key, LockMode wanted) {
  (void)wanted;
  std::unique_lock<std::mutex> guard(mutex_);
  stats_.callbacks_received++;
  if (in_use_.count(key)) {
    // The lock protects work of the active transaction: refuse; the
    // requester waits until this transaction ends (§3).
    stats_.callbacks_denied++;
    return Status::Busy("lock in use by active transaction");
  }
  auto home = key_home_.find(key);
  const SegmentId seg = home != key_home_.end()
                            ? SegmentId::Unpack(home->second)
                            : SegmentId{};
  cached_locks_.erase(key);
  key_home_.erase(key);
  stats_.callbacks_released++;
  guard.unlock();
  if (seg.valid()) {
    // Giving back the lock means our cached copy may go stale: drop it so
    // the next access refetches from the server.
    Status s = mapper_->Evict(seg, /*drop_dirty=*/false);
    if (s.IsBusy()) {
      // Dirty but not in use should not happen (dirty => in_use); be safe.
      std::lock_guard<std::mutex> reguard(mutex_);
      stats_.callbacks_released--;
      stats_.callbacks_denied++;
      return s;
    }
  }
  return Status::OK();
}

// ---- transactions ---------------------------------------------------------------

Status RemoteClient::Begin() {
  bool evict = false;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (in_txn_) return Status::InvalidArgument("transaction already active");
    in_txn_ = true;
    poison_ = Status::OK();
    in_use_.clear();
    evict = evict_after_reconnect_;
    evict_after_reconnect_ = false;
  }
  if (evict) {
    // A reconnect happened since the last boundary: cached pages may be
    // stale copies of data another client modified while we held no locks.
    BESS_RETURN_IF_ERROR(mapper_->EvictAll(/*drop_dirty=*/true));
  }
  return Status::OK();
}

Status RemoteClient::Commit(CommitStats* out) {
  const uint64_t start_ns = obs::Trace::NowNs();
  uint64_t shipped_bytes = 0;
  Status poison;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!in_txn_) return Status::InvalidArgument("no active transaction");
    poison = poison_;
  }
  if (!poison.ok()) {
    (void)Abort();
    return poison;
  }
  std::vector<PageImage> pages;
  BESS_RETURN_IF_ERROR(mapper_->CollectDirty(&pages));
  const size_t pages_shipped = pages.size();

  // Partition pages by the peer that owns their database.
  std::unordered_map<Peer*, std::vector<PageImage>> by_peer;
  for (PageImage& img : pages) {
    by_peer[&PeerFor(img.db)].push_back(std::move(img));
  }

  Status outcome;
  if (by_peer.size() <= 1) {
    // Single server: one-phase commit. The ctid prefix makes the RPC safely
    // retryable — if the commit applied but the reply was lost, the server
    // recognizes the replay and reports OK without applying twice.
    if (!by_peer.empty()) {
      const uint64_t ctid =
          (session_id_.load() << 32) |
          next_gtid_.fetch_add(1, std::memory_order_relaxed);
      std::string payload;
      PutFixed64(&payload, ctid);
      EncodePageSet(by_peer.begin()->second, &payload);
      shipped_bytes += payload.size();
      Message reply;
      outcome = Call(*by_peer.begin()->first, kMsgCommit, payload, &reply);
    }
  } else {
    // Two-phase commit: this client coordinates (paper §3: distributed
    // processing is performed by the first server the application connects
    // to; the coordinator logic lives in its client library).
    const uint64_t gtid =
        (session_id_.load() << 32) |
        next_gtid_.fetch_add(1, std::memory_order_relaxed);
    bool all_prepared = true;
    for (auto& [peer, set] : by_peer) {
      std::string payload;
      PutFixed64(&payload, gtid);
      EncodePageSet(set, &payload);
      shipped_bytes += payload.size();
      Message reply;
      Status s = Call(*peer, kMsgPrepare, payload, &reply);
      if (!s.ok()) {
        all_prepared = false;
        outcome = s;
        break;
      }
    }
    // Coordinator crashpoint: between prepare and decision every participant
    // is in-doubt and must resolve via presumed abort (dead-session cleanup
    // on the server, or restart recovery). kCrash kills us right here; a
    // kFail spec simulates a coordinator that silently forgets its decision.
    if (all_prepared) {
      Status s = fault::Check("client.2pc.decision");
      if (!s.ok()) {
        (void)Abort();
        return s;
      }
    }
    std::string decision;
    PutFixed64(&decision, gtid);
    for (auto& [peer, set] : by_peer) {
      (void)set;
      Message reply;
      Status s = Call(*peer,
                      all_prepared ? kMsgCommitPrepared : kMsgAbortPrepared,
                      decision, &reply);
      if (all_prepared && !s.ok()) outcome = s;
    }
    if (!all_prepared && outcome.ok()) {
      outcome = Status::Aborted("2PC prepare failed");
    }
  }

  if (!outcome.ok()) {
    (void)Abort();
    return outcome;
  }
  BESS_RETURN_IF_ERROR(mapper_->MarkClean());

  const uint64_t dur_ns = obs::Trace::NowNs() - start_ns;
  BESS_COUNT("txn.commit");
  BESS_HIST("txn.commit.latency", dur_ns);

  std::unique_lock<std::mutex> guard(mutex_);
  if (out != nullptr) {
    out->log_bytes = shipped_bytes;
    out->pages_forced = static_cast<uint32_t>(pages_shipped);
    out->locks_held = static_cast<uint32_t>(in_use_.size());
    out->duration_ns = dur_ns;
  }
  in_txn_ = false;
  in_use_.clear();
  if (!options_.cache_inter_txn) {
    // Node-less client behaviour (§3): drop data and locks at txn end.
    cached_locks_.clear();
    key_home_.clear();
    guard.unlock();
    // Drop the cache but keep reservations: held references refault.
    BESS_RETURN_IF_ERROR(mapper_->EvictAll());
    Message reply;
    return Call(primary_, kMsgReleaseAll, "", &reply);
  }
  return Status::OK();
}

Status RemoteClient::Abort() {
  bool evict = false;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    evict = evict_after_reconnect_;
    evict_after_reconnect_ = false;
  }
  if (evict) BESS_RETURN_IF_ERROR(mapper_->EvictAll(/*drop_dirty=*/true));
  BESS_RETURN_IF_ERROR(mapper_->DiscardDirty());
  std::unique_lock<std::mutex> guard(mutex_);
  in_txn_ = false;
  in_use_.clear();
  poison_ = Status::OK();
  if (!options_.cache_inter_txn) {
    cached_locks_.clear();
    key_home_.clear();
    guard.unlock();
    BESS_RETURN_IF_ERROR(mapper_->EvictAll(/*drop_dirty=*/true));
    Message reply;
    return Call(primary_, kMsgReleaseAll, "", &reply);
  }
  return Status::OK();
}

// ---- objects --------------------------------------------------------------------

Result<SegmentId> RemoteClient::ActiveSegment(uint16_t file_id,
                                              uint32_t min_bytes) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = active_segment_.find(file_id);
    if (it != active_segment_.end()) return SegmentId::Unpack(it->second);
  }
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  PutFixed16(&payload, file_id);
  PutFixed32(&payload, min_bytes);
  Message reply;
  BESS_RETURN_IF_ERROR(Call(primary_, kMsgNewObjectSegment, payload, &reply));
  BESS_ASSIGN_OR_RETURN(NewSegmentReply grant,
                        NewSegmentReply::DecodeFrom(reply.payload));
  BESS_RETURN_IF_ERROR(EnsureLock(LockKey::Segment(grant.id.Pack()),
                                  LockMode::kX, grant.id));
  BESS_RETURN_IF_ERROR(mapper_
                           ->InstallNewSegment(
                               grant.id, file_id, grant.slotted_pages,
                               grant.slot_capacity, grant.outbound_capacity,
                               grant.data_area, grant.data_first_page,
                               grant.data_page_count)
                           .status());
  std::lock_guard<std::mutex> guard(mutex_);
  active_segment_[file_id] = grant.id.Pack();
  return grant.id;
}

Result<Slot*> RemoteClient::CreateObject(uint16_t file_id, TypeIdx type,
                                         uint32_t size, const void* init) {
  if (size > kMaxTransparentObjectSize) {
    return Status::InvalidArgument(
        "objects above 64 KB use the byte-range large-object class");
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    BESS_ASSIGN_OR_RETURN(SegmentId home, ActiveSegment(file_id, size));
    BESS_RETURN_IF_ERROR(
        EnsureLock(LockKey::Segment(home.Pack()), LockMode::kX, home));
    Result<Slot*> slot = mapper_->CreateObject(home, type, size, init);
    if (slot.ok() || !slot.status().IsNoSpace()) return slot;
    // Active segment full: forget it and request a fresh one.
    std::lock_guard<std::mutex> guard(mutex_);
    active_segment_.erase(file_id);
  }
  return Status::Internal("object placement failed twice");
}

Result<uint16_t> RemoteClient::CreateFile(const std::string& name,
                                          bool multifile) {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  PutLengthPrefixed(&payload, name);
  payload.push_back(multifile ? 1 : 0);
  Message reply;
  BESS_RETURN_IF_ERROR(Call(primary_, kMsgCreateFile, payload, &reply));
  if (reply.payload.size() < 2) return Status::Protocol("bad CreateFile reply");
  return DecodeFixed16(reply.payload.data());
}

Result<uint16_t> RemoteClient::FindFile(const std::string& name) {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  PutLengthPrefixed(&payload, name);
  Message reply;
  BESS_RETURN_IF_ERROR(Call(primary_, kMsgFindFile, payload, &reply));
  if (reply.payload.size() < 2) return Status::Protocol("bad FindFile reply");
  return DecodeFixed16(reply.payload.data());
}

Result<TypeIdx> RemoteClient::RegisterType(const TypeDescriptor& desc) {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  desc.EncodeTo(&payload);
  Message reply;
  BESS_RETURN_IF_ERROR(Call(primary_, kMsgRegisterType, payload, &reply));
  if (reply.payload.size() < 4) {
    return Status::Protocol("bad RegisterType reply");
  }
  // Refresh the local table so indices agree with the server's assignment.
  BESS_RETURN_IF_ERROR(SyncTypes());
  return DecodeFixed32(reply.payload.data());
}

Result<Slot*> RemoteClient::GetRoot(const std::string& name) {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  PutLengthPrefixed(&payload, name);
  Message reply;
  BESS_RETURN_IF_ERROR(Call(primary_, kMsgGetRoot, payload, &reply));
  if (reply.payload.size() != 12) return Status::Protocol("bad GetRoot reply");
  return Deref(Oid::DecodeFrom(reply.payload.data()));
}

Status RemoteClient::SetRoot(const std::string& name, Slot* slot) {
  BESS_ASSIGN_OR_RETURN(Oid oid, OidOf(slot));
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  PutLengthPrefixed(&payload, name);
  char buf[12];
  oid.EncodeTo(buf);
  payload.append(buf, 12);
  Message reply;
  return Call(primary_, kMsgSetRoot, payload, &reply);
}

Result<Oid> RemoteClient::OidOf(Slot* slot) {
  SegmentId id;
  uint16_t slot_no;
  BESS_RETURN_IF_ERROR(mapper_->ResolveSlotAddress(slot, &id, &slot_no));
  Oid oid;
  oid.host = 1;
  oid.db = static_cast<uint8_t>(id.db);
  oid.area = static_cast<uint8_t>(id.area);
  oid.page = id.first_page;
  oid.slot = slot_no;
  oid.uniq = static_cast<uint16_t>(slot->uniquifier);
  return oid;
}

Result<Slot*> RemoteClient::Deref(const Oid& oid) {
  BESS_ASSIGN_OR_RETURN(SlottedView view,
                        mapper_->FetchSlottedNow(oid.segment()));
  if (oid.slot >= view.header()->slot_count) {
    return Status::NotFound("stale OID: " + oid.ToString());
  }
  Slot* slot = view.slot(oid.slot);
  if (!slot->in_use() ||
      static_cast<uint16_t>(slot->uniquifier) != oid.uniq) {
    return Status::NotFound("stale OID: " + oid.ToString());
  }
  return slot;
}

RemoteClient::Stats RemoteClient::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

Result<::bess::Stats> RemoteClient::ServerStats() {
  Message reply;
  BESS_RETURN_IF_ERROR(Call(primary_, kMsgGetStats, "", &reply));
  if (reply.type == kMsgError) return DecodeStatusReply(reply);
  return ::bess::Stats::DecodeFrom(reply.payload);
}

Result<ScrubReport> RemoteClient::Scrub() {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  Message reply;
  BESS_RETURN_IF_ERROR(Call(primary_, kMsgScrub, payload, &reply));
  if (reply.payload.size() != 32) return Status::Protocol("bad Scrub reply");
  Decoder dec(reply.payload);
  ScrubReport report;
  report.pages_scanned = dec.GetFixed64();
  report.verify_failures = dec.GetFixed64();
  report.repaired = dec.GetFixed64();
  report.quarantined = dec.GetFixed64();
  return report;
}

// ---- secondary indexes ------------------------------------------------------

Status RemoteClient::IndexCreate(const std::string& name) {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  PutLengthPrefixed(&payload, name);
  Message reply;
  return Call(primary_, kMsgIndexCreate, payload, &reply);
}

Status RemoteClient::IndexDrop(const std::string& name) {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  PutLengthPrefixed(&payload, name);
  Message reply;
  return Call(primary_, kMsgIndexDrop, payload, &reply);
}

Status RemoteClient::IndexPut(const std::string& name, Slice key,
                              Slice value) {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  PutLengthPrefixed(&payload, name);
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);
  Message reply;
  return Call(primary_, kMsgIndexPut, payload, &reply);
}

Status RemoteClient::IndexDelete(const std::string& name, Slice key,
                                 bool* existed) {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  PutLengthPrefixed(&payload, name);
  PutLengthPrefixed(&payload, key);
  Message reply;
  BESS_RETURN_IF_ERROR(Call(primary_, kMsgIndexDel, payload, &reply));
  if (reply.payload.empty()) return Status::Protocol("bad IndexDel reply");
  if (existed != nullptr) *existed = reply.payload[0] != 0;
  return Status::OK();
}

Result<bool> RemoteClient::IndexGet(const std::string& name, Slice key,
                                    std::string* value) {
  std::string payload;
  PutFixed16(&payload, options_.db_id);
  PutLengthPrefixed(&payload, name);
  PutLengthPrefixed(&payload, key);
  Message reply;
  BESS_RETURN_IF_ERROR(Call(primary_, kMsgIndexGet, payload, &reply));
  if (reply.payload.empty()) return Status::Protocol("bad IndexGet reply");
  const bool found = reply.payload[0] != 0;
  if (found && value != nullptr) {
    Decoder dec(Slice(reply.payload.data() + 1, reply.payload.size() - 1));
    *value = dec.GetLengthPrefixed().ToString();
    if (!dec.ok()) return Status::Protocol("bad IndexGet reply");
  }
  return found;
}

Status RemoteClient::IndexScan(
    const std::string& name, Slice lo, Slice hi,
    const std::function<Status(Slice key, Slice value)>& fn) {
  std::string cursor = lo.ToString();
  for (;;) {
    std::string payload;
    PutFixed16(&payload, options_.db_id);
    PutLengthPrefixed(&payload, name);
    PutLengthPrefixed(&payload, cursor);
    PutLengthPrefixed(&payload, hi);
    PutFixed32(&payload, kIndexScanMaxEntries);
    Message reply;
    BESS_RETURN_IF_ERROR(Call(primary_, kMsgIndexScan, payload, &reply));
    Decoder dec(reply.payload);
    const uint32_t n = dec.GetFixed32();
    std::string last_key;
    for (uint32_t i = 0; i < n; ++i) {
      Slice k = dec.GetLengthPrefixed();
      Slice v = dec.GetLengthPrefixed();
      if (!dec.ok()) return Status::Protocol("bad IndexScan reply");
      last_key.assign(k.data(), k.size());
      BESS_RETURN_IF_ERROR(fn(k, v));
    }
    if (dec.remaining() < 1) return Status::Protocol("bad IndexScan reply");
    const bool truncated = dec.GetBytes(1).data()[0] != 0;
    if (!truncated) return Status::OK();
    // Resume just past the last delivered key ('\0' is the smallest
    // one-byte extension in bytewise order).
    cursor = last_key + std::string(1, '\0');
  }
}

}  // namespace bess
