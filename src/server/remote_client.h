// RemoteClient: a BeSS client application's connection to a BeSS server —
// the *copy on access* operation mode over the network (paper §3, §4.1.1).
//
// The client runs the full reference machinery locally: a SegmentMapper over
// a RemoteStore that fetches segments from the server into the private
// cache. Locks are acquired from the server through the fault path and,
// together with the data, stay *cached between transactions*; the server
// reclaims them with callbacks when another client conflicts (§3).
// Constructing the client with `cache_inter_txn = false` reproduces the
// paper's node-less client behaviour: "data and locks are cached only
// during the duration of a transaction".
//
// Distributed commits across several servers use two-phase commit with this
// client acting for its first server as the coordinator (paper §3).
#ifndef BESS_SERVER_REMOTE_CLIENT_H_
#define BESS_SERVER_REMOTE_CLIENT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>

#include "object/oid.h"
#include "obs/stats.h"
#include "server/protocol.h"
#include "storage/page_io.h"
#include "util/random.h"
#include "vm/mapper.h"

namespace bess {

struct CommitStats;  // object/database.h

/// The eventual reply of a pipelined RPC issued with CallAsync. Shareable
/// and cheap to copy; Get() blocks until the reply (or the transport
/// failure that killed it) arrives. See bess/bess.h §"Pipelined RPCs".
class ReplyFuture {
 public:
  ReplyFuture() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the reply is in. A kMsgError reply is returned as a
  /// Message (decode with DecodeStatusReply); a non-OK Result means the
  /// transport died before the reply arrived. Idempotent.
  Result<Message> Get();

 private:
  friend class RemoteClient;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;  ///< transport outcome; OK = `reply` is valid
    Message reply;
  };
  std::shared_ptr<State> state_;
};

class RemoteClient : public AccessObserver {
 public:
  struct Options {
    std::string server_path;
    uint16_t db_id = 1;
    bool cache_inter_txn = true;  ///< keep data + locks across transactions
    uint32_t simulated_latency_us = 0;
    int lock_timeout_ms = kLockTimeoutMillis;
    /// Transport-failure resilience: how many times one RPC is retried
    /// (reconnecting first) before the error surfaces, and the initial
    /// backoff between attempts (doubled each retry).
    int max_rpc_retries = 3;
    int rpc_backoff_ms = 5;
    /// Contention resilience: a lock RPC answered with kDeadlock (the server's
    /// wait timed out under the callback algorithm) is retried this many
    /// times with exponential backoff + jitter before the error surfaces.
    int lock_retries = 4;
    int lock_backoff_ms = 10;

    // ---- overload resilience (DESIGN.md §12) ----------------------------

    /// Deadline stamped on every RPC (wire header, relative ms): the server
    /// sheds the request with kDeadlineExceeded if the budget expires while
    /// it is queued, and the client gives up waiting locally at roughly
    /// twice the budget (a wedged server can't park callers forever).
    /// 0 = no deadline.
    uint32_t rpc_deadline_ms = 0;
    /// Retry budget for kRetryLater sheds (admission control / WAL
    /// backpressure): retried this many times with exponential backoff —
    /// no reconnect; the server is healthy, just full.
    int retry_later_max = 5;
    int retry_later_backoff_ms = 5;
    /// Circuit breaker: this many *consecutive* transport failures or
    /// local deadline timeouts on one peer open its breaker; calls then
    /// fail fast with kRetryLater (no socket traffic) until cooldown_ms
    /// passes, after which one caller probes with a ping (half-open) and
    /// any reply closes the breaker. 0 disables the breaker.
    int breaker_failure_threshold = 0;
    int breaker_cooldown_ms = 100;
    SegmentMapper::Options mapper;
  };

  struct Stats {
    uint64_t rpcs = 0;
    uint64_t rpc_retries = 0;   ///< RPC attempts beyond the first
    uint64_t reconnects = 0;    ///< sessions re-established after a failure
    uint64_t lock_rpcs = 0;
    uint64_t lock_cache_hits = 0;  ///< lock needed, already cached: no RPC
    uint64_t lock_backoffs = 0;    ///< deadlock-timeout retries after backoff
    uint64_t callbacks_received = 0;
    uint64_t callbacks_released = 0;
    uint64_t callbacks_denied = 0;
    /// Overload resilience (DESIGN.md §12).
    uint64_t retry_later_backoffs = 0;  ///< kRetryLater sheds retried
    uint64_t deadline_timeouts = 0;     ///< gave up waiting locally
    uint64_t breaker_opens = 0;
    uint64_t breaker_short_circuits = 0;  ///< calls refused while open
    uint64_t breaker_probes = 0;          ///< half-open ping probes sent
  };

  static Result<std::unique_ptr<RemoteClient>> Connect(Options options);
  ~RemoteClient() override;

  // ---- transactions ----------------------------------------------------------

  Status Begin();
  /// Commits; `out`, when non-null, receives what the commit cost
  /// (log_bytes here counts the commit RPC payload bytes shipped).
  Status Commit(CommitStats* out = nullptr);
  Status Abort();

  // ---- pipelined RPCs --------------------------------------------------------

  /// Issues one raw RPC to the primary server without waiting for the reply:
  /// many calls may be in flight on the one connection, correlated by
  /// request id, and the server may be executing them while earlier replies
  /// are still in transit. No retry/reconnect machinery — the future
  /// resolves to the reply or to the transport failure. The synchronous
  /// surface (and its retry semantics) is built on top of this.
  ReplyFuture CallAsync(uint16_t type, const std::string& payload);

  /// Barrier: blocks until every in-flight RPC on every peer has resolved
  /// (successfully or not). Useful before asserting server-side state.
  Status Flush();

  /// The server's own metrics snapshot (kMsgGetStats over the wire).
  Result<::bess::Stats> ServerStats();

  /// Asks the server to sweep every page of the client's database, verifying
  /// checksums and repairing/quarantining mismatches (kMsgScrub).
  Result<ScrubReport> Scrub();

  // ---- secondary indexes (server-side micro-commits; DESIGN.md §14) ---------

  Status IndexCreate(const std::string& name);
  Status IndexDrop(const std::string& name);
  Status IndexPut(const std::string& name, Slice key, Slice value);
  /// Removes `key`; *existed (optional) reports whether it was present.
  Status IndexDelete(const std::string& name, Slice key,
                     bool* existed = nullptr);
  /// Point lookup: true + *value when present.
  Result<bool> IndexGet(const std::string& name, Slice key,
                        std::string* value);
  /// Ordered scan of [lo, hi] inclusive (empty = open end). Wide ranges are
  /// fetched in server-bounded batches (kIndexScanMaxEntries per RPC) and
  /// stitched back together transparently.
  Status IndexScan(const std::string& name, Slice lo, Slice hi,
                   const std::function<Status(Slice key, Slice value)>& fn);

  // ---- objects (client-side creation in the cache, write-back at commit) ----

  Result<Slot*> CreateObject(uint16_t file_id, TypeIdx type, uint32_t size,
                             const void* init = nullptr);
  Result<uint16_t> CreateFile(const std::string& name, bool multifile = false);
  Result<uint16_t> FindFile(const std::string& name);
  Result<TypeIdx> RegisterType(const TypeDescriptor& desc);
  Result<Slot*> GetRoot(const std::string& name);
  Status SetRoot(const std::string& name, Slot* slot);
  Result<Oid> OidOf(Slot* slot);
  Result<Slot*> Deref(const Oid& oid);

  // ---- 2PC across several servers (this client coordinates) -----------------

  /// Opens an additional connection to another server (for databases it
  /// owns); pages for those databases commit through 2PC.
  Status AddServer(const std::string& server_path,
                   const std::vector<uint16_t>& db_ids);

  SegmentMapper* mapper() { return mapper_.get(); }
  TypeTable* types() { return &types_; }
  Stats stats() const;

  // AccessObserver: automatic lock acquisition from the fault path.
  Status OnSegmentRead(SegmentId id) override;
  Status OnPageWrite(SegmentId id, PageAddr page) override;

 private:
  class RemoteStore;

  /// One server connection. Requests are framed onto the socket under
  /// `send_mu` (many threads may pipeline concurrently); a per-peer reader
  /// thread demultiplexes replies back to their futures by request id.
  struct Peer {
    MsgSocket main;
    std::mutex send_mu;  ///< serializes frame writes onto the socket
    std::string path;    ///< server socket path, for reconnect
    std::vector<uint16_t> db_ids;

    /// Guards everything below: the in-flight map, the reconnect
    /// generation, and reader-thread management.
    std::mutex p_mu;
    std::unordered_map<uint64_t, std::shared_ptr<ReplyFuture::State>> pending;
    std::condition_variable drained_cv;  ///< signalled when pending empties
    /// Bumped by every (successful or not) Reconnect: a reader observing a
    /// newer generation exits, and a Call that observed an older one skips
    /// its own reconnect — someone already did it.
    uint64_t generation = 0;
    std::thread reader;

    /// Circuit breaker (guarded by `b_mu`, separate from p_mu so breaker
    /// checks never contend with reply demultiplexing). Consecutive
    /// transport failures / local timeouts open it; while open, calls fail
    /// fast with kRetryLater; after the cooldown one caller probes with a
    /// ping (half-open) and any reply closes it.
    std::mutex b_mu;
    int consecutive_failures = 0;
    bool breaker_open = false;
    std::chrono::steady_clock::time_point breaker_until{};
    bool probe_inflight = false;
  };

  RemoteClient() = default;

  Status Call(Peer& peer, uint16_t type, const std::string& payload,
              Message* reply);
  ReplyFuture CallAsyncOn(Peer& peer, uint16_t type,
                          const std::string& payload,
                          uint64_t* req_id_out = nullptr);
  /// Blocks for the future like ReplyFuture::Get, but gives up after
  /// `timeout_ms` (> 0), withdrawing the pending entry and failing the
  /// future with kDeadlineExceeded — the local backstop for a wedged
  /// server. timeout_ms <= 0 waits forever.
  Result<Message> AwaitReply(Peer& peer, ReplyFuture& fut, uint64_t req_id,
                             int timeout_ms);
  /// Circuit-breaker admission for one attempt on `peer`. OK = proceed
  /// (possibly after this caller ran the half-open ping probe);
  /// kRetryLater = breaker open, fail fast.
  Status BreakerAdmit(Peer& peer);
  /// Feeds the breaker: `failed` = transport failure or local timeout
  /// (server error replies are *successes* here — the server answered).
  void BreakerRecord(Peer& peer, bool failed);
  void ReaderLoop(Peer* peer, uint64_t generation);
  void StartReader(Peer* peer);
  /// Shuts the peer's socket and joins its reader (used by teardown).
  void StopReader(Peer* peer);
  void FailAllPending(Peer* peer, const Status& s);
  /// Re-establishes a failed peer connection: fresh session (the server has
  /// already — or will — release the dead session's locks), rebound callback
  /// channel for the primary, client lock/data caches invalidated, any
  /// active transaction poisoned (its 2PL guarantee is gone). A no-op if
  /// `observed_generation` is stale (a concurrent caller reconnected first).
  Status Reconnect(Peer& peer, uint64_t observed_generation);
  Peer& PeerFor(uint16_t db_id);
  Status EnsureLock(uint64_t key, LockMode mode, SegmentId home);
  Status SyncTypes();
  void CallbackLoop();
  Status HandleCallback(uint64_t key, LockMode wanted);
  Result<SegmentId> ActiveSegment(uint16_t file_id, uint32_t min_bytes);

  Options options_;
  Peer primary_;
  std::vector<std::unique_ptr<Peer>> extra_peers_;
  MsgSocket callback_sock_;
  std::thread callback_thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> session_id_{0};
  std::atomic<uint64_t> next_req_id_{1};

  TypeTable types_;
  std::unique_ptr<RemoteStore> store_;
  std::unique_ptr<SegmentMapper> mapper_;

  mutable std::mutex mutex_;
  bool in_txn_ = false;
  // Set by Reconnect: cached data may be stale (our locks were released
  // server-side); consumed at the next transaction boundary, where the whole
  // client cache is dropped. Deferred because Reconnect can run inside a
  // mapper fault (EvictAll there would re-enter the mapper).
  bool evict_after_reconnect_ = false;
  Status poison_;  // first lock failure of the active transaction
  std::unordered_map<uint64_t, LockMode> cached_locks_;  // key -> mode
  std::set<uint64_t> in_use_;  // keys the current transaction relies on
  std::unordered_map<uint64_t, uint64_t> key_home_;  // key -> packed SegmentId
  std::unordered_map<uint16_t, uint64_t> active_segment_;  // file -> packed
  std::atomic<uint64_t> next_gtid_{1};
  std::mutex backoff_mutex_;  // protects backoff_rng_ (jitter for retries)
  Random backoff_rng_{reinterpret_cast<uint64_t>(this)};
  mutable Stats stats_;
};

}  // namespace bess

#endif  // BESS_SERVER_REMOTE_CLIENT_H_
