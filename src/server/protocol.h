// Wire protocol between BeSS clients, node servers, and servers (paper §3).
//
// Each peer connection is a pair of Unix-domain sockets: the *main* channel
// carries client-initiated request/response traffic; the *callback* channel
// carries server-initiated callback-locking requests (the server sends a
// callback and reads the reply on that channel, one at a time).
#ifndef BESS_SERVER_PROTOCOL_H_
#define BESS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "object/oid.h"
#include "os/socket.h"
#include "segment/type_descriptor.h"
#include "txn/lock_manager.h"
#include "vm/mapper.h"

namespace bess {

enum MsgType : uint16_t {
  // Session management
  kMsgHello = 1,        ///< {u64 session_hint} -> {u64 session_id}
  kMsgHelloCallback,    ///< {u64 session_id} binds a callback channel
  kMsgGoodbye,

  // Data service
  kMsgFetchSlotted,     ///< {u64 seg} -> {u32 pages, bytes}
  kMsgFetchPages,       ///< {u16 db, u16 area, u32 first, u32 count} -> bytes
  kMsgAllocSegment,     ///< {u16 db, u16 area, u32 pages} -> {u32 first, u32 count}
  kMsgFreeSegment,      ///< {u16 db, u16 area, u32 first}

  // Locking (callback algorithm, §3)
  kMsgLock,             ///< {u64 key, u8 mode, u32 timeout_ms} -> status
  kMsgReleaseLock,      ///< {u64 key}
  kMsgReleaseAll,       ///< {} release every lock of the session

  // Transactions
  kMsgCommit,           ///< {u64 ctid, u32 npages, npages×(u64 addr, page bytes)}
                        ///< -> status; ctid deduplicates replayed commits
  kMsgPrepare,          ///< same payload; phase 1 of 2PC -> vote
  kMsgCommitPrepared,   ///< {u64 gtid} -> status
  kMsgAbortPrepared,    ///< {u64 gtid}

  // Catalog service
  kMsgCreateFile,       ///< {u16 db, name, u8 multifile} -> {u16 file_id}
  kMsgFindFile,         ///< {u16 db, name} -> {u16 file_id}
  kMsgRegisterType,     ///< {u16 db, TypeDescriptor} -> {u32 type_idx}
  kMsgFetchTypes,       ///< {u16 db} -> type table blob
  kMsgNewObjectSegment, ///< {u16 db, u16 file, u32 min_bytes} -> SegmentId + geometry
  kMsgGetRoot,          ///< {u16 db, name} -> {oid}
  kMsgSetRoot,          ///< {u16 db, name, oid}
  kMsgRemoveRoot,       ///< {u16 db, name}

  // Observability
  kMsgGetStats,         ///< {} -> encoded bess::Stats snapshot of the server

  // Server -> client (callback channel)
  kMsgCallback,         ///< {u64 key, u8 wanted_mode} -> reply below
  kMsgCallbackReleased, ///< client gave the lock back
  kMsgCallbackDenied,   ///< lock is in use by an active transaction

  // Generic replies
  kMsgOk,               ///< optional payload per request
  kMsgError,            ///< {u8 code, message}

  // Maintenance (appended: enum order is the wire format)
  kMsgScrub,            ///< {u16 db} -> {u64 scanned, fails, repaired, quarantined}

  // Latency probe (appended)
  kMsgPing,             ///< payload echoed back verbatim; the open-loop
                        ///< load generator and pipelining tests ride on it

  // Secondary indexes (appended; DESIGN.md §14). All index RPCs are
  // autocommitted server-side micro-transactions.
  kMsgIndexCreate,      ///< {u16 db, name} -> status
  kMsgIndexDrop,        ///< {u16 db, name} -> status
  kMsgIndexPut,         ///< {u16 db, name, key, value} -> status
  kMsgIndexDel,         ///< {u16 db, name, key} -> {u8 existed}
  kMsgIndexGet,         ///< {u16 db, name, key} -> {u8 found, value}
  kMsgIndexScan,        ///< {u16 db, name, lo, hi, u32 limit} ->
                        ///< {u32 n, n×(key, value), u8 truncated}
};

/// Server-side cap on entries per kMsgIndexScan reply. A wider scan returns
/// `truncated = 1`; the client resumes with lo = last key + '\0'.
inline constexpr uint32_t kIndexScanMaxEntries = 4096;

/// Encodes a Status into a kMsgError payload (or returns kMsgOk type).
inline void EncodeStatus(const Status& s, uint16_t* type,
                         std::string* payload) {
  if (s.ok()) {
    *type = kMsgOk;
    payload->clear();
    return;
  }
  *type = kMsgError;
  payload->clear();
  payload->push_back(static_cast<char>(s.code()));
  payload->append(s.message());
}

/// Decodes a reply message into a Status (kMsgOk -> OK).
Status DecodeStatusReply(const Message& msg);

/// Page-set payload used by kMsgCommit / kMsgPrepare.
void EncodePageSet(const std::vector<PageImage>& pages, std::string* out);
Result<std::vector<PageImage>> DecodePageSet(Slice payload);

/// Geometry of a freshly created object segment (kMsgNewObjectSegment reply).
struct NewSegmentReply {
  SegmentId id;
  uint32_t slotted_pages = 0;
  uint32_t slot_capacity = 0;
  uint16_t outbound_capacity = 0;
  uint16_t data_area = 0;
  PageId data_first_page = kInvalidPage;
  uint32_t data_page_count = 0;

  void EncodeTo(std::string* out) const;
  static Result<NewSegmentReply> DecodeFrom(Slice payload);
};

}  // namespace bess

#endif  // BESS_SERVER_PROTOCOL_H_
