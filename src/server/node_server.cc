#include "server/node_server.h"

#include "segment/layout.h"
#include "util/logging.h"

namespace bess {

Result<std::unique_ptr<NodeServer>> NodeServer::Start(Options options) {
  auto node = std::unique_ptr<NodeServer>(new NodeServer());
  node->options_ = std::move(options);
  BESS_RETURN_IF_ERROR(node->Init());
  return node;
}

NodeServer::~NodeServer() { Stop(); }

Status NodeServer::Init() {
  // Node page cache: copy-in/copy-out frames on the heap, LRU-2 so a
  // one-touch scan through the node cannot flush the working set.
  const uint32_t frames = options_.cache_pages == 0 ? 1 : options_.cache_pages;
  cache_placement_.reset(new HeapPlacement(frames));
  FrameTable::Options copts;
  copts.frame_count = frames;
  copts.policy = "lru2";
  page_cache_.reset(
      new FrameTable(copts, cache_placement_.get(), /*io=*/nullptr));
  BESS_RETURN_IF_ERROR(page_cache_->Init());

  // Upstream connection (the node server is itself a client, §3).
  BESS_ASSIGN_OR_RETURN(upstream_, MsgSocket::Connect(options_.upstream_path));
  upstream_.set_simulated_latency_us(options_.upstream_latency_us);
  BESS_RETURN_IF_ERROR(upstream_.Send(kMsgHello, ""));
  BESS_ASSIGN_OR_RETURN(Message hello, upstream_.Recv());
  if (hello.type != kMsgOk || hello.payload.size() != 8) {
    return Status::Protocol("bad upstream hello");
  }
  upstream_session_ = DecodeFixed64(hello.payload.data());

  BESS_ASSIGN_OR_RETURN(upstream_callback_,
                        MsgSocket::Connect(options_.upstream_path));
  std::string bind;
  PutFixed64(&bind, upstream_session_);
  BESS_RETURN_IF_ERROR(upstream_callback_.Send(kMsgHelloCallback, bind));

  BESS_ASSIGN_OR_RETURN(listener_, MsgListener::Listen(options_.socket_path));
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  callback_thread_ = std::thread([this] { UpstreamCallbackLoop(); });
  return Status::OK();
}

void NodeServer::Stop() {
  if (!running_.exchange(false)) return;
  listener_.Shutdown();
  (void)upstream_.Send(kMsgGoodbye, "");
  upstream_callback_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (callback_thread_.joinable()) callback_thread_.join();
  listener_.Close();
  upstream_callback_.Close();
  {
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto& s : sessions_) s->main.Shutdown();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    threads.swap(session_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

Status NodeServer::UpstreamCall(uint16_t type, const std::string& payload,
                                Message* reply) {
  std::lock_guard<std::mutex> guard(upstream_mutex_);
  BESS_RETURN_IF_ERROR(upstream_.Send(type, payload));
  BESS_ASSIGN_OR_RETURN(*reply, upstream_.Recv());
  if (reply->type == kMsgError) return DecodeStatusReply(*reply);
  return Status::OK();
}

void NodeServer::AcceptLoop() {
  while (running_.load()) {
    auto sock = listener_.AcceptTimeout(100);
    if (!sock.ok()) {
      if (sock.status().IsBusy()) continue;
      break;
    }
    auto first = sock->Recv();
    if (!first.ok()) continue;
    if (first->type == kMsgHello) {
      auto session = std::make_shared<LocalSession>();
      session->id = next_session_.fetch_add(1);
      session->main = std::move(*sock);
      std::string reply;
      PutFixed64(&reply, session->id);
      if (!session->main.Send(kMsgOk, reply).ok()) continue;
      std::lock_guard<std::mutex> guard(mutex_);
      sessions_.push_back(session);
      session_threads_.emplace_back(
          [this, session] { ServeSession(session); });
    }
    // Local callback channels are accepted but unused: the node server
    // resolves local conflicts by blocking (its lock manager), and answers
    // upstream callbacks itself on the applications' behalf (§3).
  }
}

void NodeServer::ServeSession(std::shared_ptr<LocalSession> session) {
  for (;;) {
    auto msg = session->main.Recv();
    if (!msg.ok()) break;
    if (msg->type == kMsgGoodbye) break;
    uint16_t reply_type = kMsgOk;
    std::string reply;
    Status s = HandleRequest(*session, *msg, &reply, &reply_type);
    if (!s.ok()) EncodeStatus(s, &reply_type, &reply);
    if (!session->main.Send(reply_type, reply, msg->req_id).ok()) break;
  }
  local_locks_.ReleaseAll(session->id);
}

bool NodeServer::CacheGet(uint64_t page_key, std::string* bytes) {
  bytes->resize(kPageSize);
  if (!page_cache_->Get(page_key, bytes->data())) return false;
  std::lock_guard<std::mutex> guard(mutex_);
  stats_.cache_hits++;
  return true;
}

void NodeServer::CachePut(uint64_t page_key, std::string bytes) {
  if (bytes.size() != kPageSize) return;
  (void)page_cache_->Put(page_key, bytes.data());
}

void NodeServer::CacheInvalidateAll() {
  (void)page_cache_->Clear(/*flush=*/false);
  std::lock_guard<std::mutex> guard(mutex_);
  stats_.cache_invalidations++;
}

Status NodeServer::EnsureUpstreamLock(uint64_t key, LockMode mode,
                                      int timeout_ms) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = node_locks_.find(key);
    if (it != node_locks_.end() && LockJoin(it->second, mode) == it->second) {
      stats_.lock_cache_hits++;
      return Status::OK();
    }
  }
  std::string payload;
  PutFixed64(&payload, key);
  payload.push_back(static_cast<char>(mode));
  PutFixed32(&payload, static_cast<uint32_t>(timeout_ms));
  Message reply;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stats_.locks_forwarded++;
  }
  BESS_RETURN_IF_ERROR(UpstreamCall(kMsgLock, payload, &reply));
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = node_locks_.find(key);
  node_locks_[key] =
      it == node_locks_.end() ? mode : LockJoin(it->second, mode);
  return Status::OK();
}

Status NodeServer::HandleRequest(LocalSession& session, const Message& msg,
                                 std::string* reply, uint16_t* reply_type) {
  *reply_type = kMsgOk;
  reply->clear();
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stats_.local_requests++;
  }
  Decoder dec(msg.payload);

  switch (msg.type) {
    case kMsgFetchPages: {
      const uint16_t db = dec.GetFixed16();
      const uint16_t area = dec.GetFixed16();
      const PageId first = dec.GetFixed32();
      const uint32_t count = dec.GetFixed32();
      if (!dec.ok() || count == 0) return Status::Protocol("bad fetch");
      reply->resize(static_cast<size_t>(count) * kPageSize);
      // Serve each page from the node cache where possible; fetch the rest
      // upstream (one request per contiguous missing run would be an easy
      // optimization; we fetch the full run on any miss for simplicity).
      bool all_hit = true;
      for (uint32_t i = 0; i < count; ++i) {
        std::string bytes;
        if (!CacheGet(PageAddr{db, area, first + i}.Pack(), &bytes)) {
          all_hit = false;
          break;
        }
        memcpy(reply->data() + static_cast<size_t>(i) * kPageSize,
               bytes.data(), kPageSize);
      }
      if (all_hit) return Status::OK();
      Message upstream_reply;
      BESS_RETURN_IF_ERROR(UpstreamCall(kMsgFetchPages, msg.payload,
                                        &upstream_reply));
      {
        std::lock_guard<std::mutex> guard(mutex_);
        stats_.upstream_fetches++;
      }
      if (upstream_reply.payload.size() != reply->size()) {
        return Status::Protocol("short upstream fetch");
      }
      *reply = upstream_reply.payload;
      for (uint32_t i = 0; i < count; ++i) {
        CachePut(PageAddr{db, area, first + i}.Pack(),
                 reply->substr(static_cast<size_t>(i) * kPageSize, kPageSize));
      }
      return Status::OK();
    }

    case kMsgFetchSlotted: {
      const SegmentId id = SegmentId::Unpack(dec.GetFixed64());
      Message upstream_reply;
      // Cached head page tells us the page count without going upstream.
      std::string head;
      if (CacheGet(PageAddr{id.db, id.area, id.first_page}.Pack(), &head)) {
        const auto* header =
            reinterpret_cast<const SlottedHeader*>(head.data());
        const uint32_t pages = header->page_count;
        if (pages >= 1 && pages <= kMaxSlottedPages) {
          std::string out;
          PutFixed32(&out, pages);
          out += head;
          bool ok = true;
          for (uint32_t i = 1; i < pages && ok; ++i) {
            std::string bytes;
            ok = CacheGet(PageAddr{id.db, id.area, id.first_page + i}.Pack(),
                          &bytes);
            if (ok) out += bytes;
          }
          if (ok) {
            *reply = std::move(out);
            return Status::OK();
          }
        }
      }
      BESS_RETURN_IF_ERROR(UpstreamCall(kMsgFetchSlotted, msg.payload,
                                        &upstream_reply));
      {
        std::lock_guard<std::mutex> guard(mutex_);
        stats_.upstream_fetches++;
      }
      Decoder rdec(upstream_reply.payload);
      const uint32_t pages = rdec.GetFixed32();
      for (uint32_t i = 0; i < pages; ++i) {
        Slice bytes = rdec.GetBytes(kPageSize);
        if (!rdec.ok()) break;
        CachePut(PageAddr{id.db, id.area, id.first_page + i}.Pack(),
                 bytes.ToString());
      }
      *reply = upstream_reply.payload;
      return Status::OK();
    }

    case kMsgLock: {
      const uint64_t key = dec.GetFixed64();
      const LockMode mode = static_cast<LockMode>(dec.GetBytes(1).data()[0]);
      const int timeout = static_cast<int>(dec.GetFixed32());
      const int effective =
          timeout > 0 ? timeout : options_.lock_timeout_ms;
      // Local conflicts first (applications on this node), then make sure
      // the node holds a covering lock from the owner server.
      BESS_RETURN_IF_ERROR(
          local_locks_.Acquire(session.id, key, mode, effective));
      Status s = EnsureUpstreamLock(key, mode, effective);
      if (!s.ok()) {
        (void)local_locks_.Release(session.id, key);
        return s;
      }
      return Status::OK();
    }

    case kMsgReleaseLock: {
      const uint64_t key = dec.GetFixed64();
      return local_locks_.Release(session.id, key);
      // The node-level lock stays cached until an upstream callback.
    }

    case kMsgReleaseAll: {
      local_locks_.ReleaseAll(session.id);
      return Status::OK();
    }

    case kMsgCommit: {
      Message upstream_reply;
      BESS_RETURN_IF_ERROR(UpstreamCall(kMsgCommit, msg.payload,
                                        &upstream_reply));
      // Write-through: refresh the node cache so the other local
      // applications see the committed state immediately. The payload was
      // forwarded verbatim (its ctid prefix keeps upstream dedupe intact);
      // skip those 8 bytes to reach the page set.
      if (msg.payload.size() < 8) return Status::OK();
      auto pages = DecodePageSet(
          Slice(msg.payload.data() + 8, msg.payload.size() - 8));
      if (pages.ok()) {
        for (const PageImage& img : *pages) {
          CachePut(PageAddr{img.db, img.area, img.page}.Pack(), img.bytes);
        }
      }
      return Status::OK();
    }

    // Everything else is a pure pass-through to the owning server.
    case kMsgAllocSegment:
    case kMsgFreeSegment:
    case kMsgPrepare:
    case kMsgCommitPrepared:
    case kMsgAbortPrepared:
    case kMsgCreateFile:
    case kMsgFindFile:
    case kMsgRegisterType:
    case kMsgFetchTypes:
    case kMsgNewObjectSegment:
    case kMsgGetRoot:
    case kMsgSetRoot:
    case kMsgRemoveRoot: {
      Message upstream_reply;
      BESS_RETURN_IF_ERROR(UpstreamCall(msg.type, msg.payload,
                                        &upstream_reply));
      *reply = upstream_reply.payload;
      return Status::OK();
    }

    default:
      return Status::Protocol("unknown request " + std::to_string(msg.type));
  }
}

void NodeServer::UpstreamCallbackLoop() {
  while (running_.load()) {
    auto msg = upstream_callback_.Recv();
    if (!msg.ok()) break;
    if (msg->type != kMsgCallback || msg->payload.size() < 9) continue;
    const uint64_t key = DecodeFixed64(msg->payload.data());
    {
      std::lock_guard<std::mutex> guard(mutex_);
      stats_.upstream_callbacks++;
    }
    // Deny while any local application still holds the lock; otherwise
    // drop the cached pages and give the lock back (§3).
    const bool in_use = !local_locks_.Holders(key).empty();
    if (in_use) {
      (void)upstream_callback_.Send(kMsgCallbackDenied, "");
      continue;
    }
    {
      std::lock_guard<std::mutex> guard(mutex_);
      node_locks_.erase(key);
    }
    CacheInvalidateAll();  // coarse but safe: stale data cannot be served
    (void)upstream_callback_.Send(kMsgCallbackReleased, "");
  }
}

NodeServer::Stats NodeServer::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

}  // namespace bess
