// Reactor: the server's epoll event loop plus a small worker pool
// (DESIGN.md §11). One event thread multiplexes every session socket with
// edge-triggered readiness — the server runs O(workers) threads regardless
// of how many connections are live, instead of the old thread-per-session
// model that fell over past a few hundred clients.
//
// Threading rules (the whole contract — see DESIGN.md §11 for rationale):
//   - The event thread exclusively owns connection state (epoll membership,
//     continuations, callbacks). AddConnection/Detach may only be called on
//     it (i.e. from inside a reactor callback).
//   - on_message / on_close / on_accept run on the event thread and must
//     never block: hand real work to Submit() and return.
//   - Send / CloseConn / Post are safe from any thread; they enqueue an
//     operation the event thread drains on its next wakeup (one eventfd
//     kick per batch — replies queued while the loop is busy coalesce).
//   - Submit() runs a closure on the worker pool; blocking work (fsync,
//     page I/O, lock waits, callback round trips) belongs there.
//
// Overload protection (DESIGN.md §12): each connection's outbound queue is
// byte-capped — a slow consumer is first throttled (the reactor stops
// reading its requests, letting kernel-buffer backpressure reach the peer)
// and disconnected when the hard cap is crossed. A coarse lazy timer wheel
// reaps idle and half-open connections: after idle_timeout_ms of silence
// the reactor sends one probe frame (the server wires kMsgPing) and closes
// the connection if the next period passes without traffic. A watchdog
// flags workers stuck on one task longer than watchdog_ms.
#ifndef BESS_SERVER_REACTOR_H_
#define BESS_SERVER_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>

#include "os/socket.h"
#include "util/status.h"

namespace bess {

class Reactor {
 public:
  /// Identifies one reactor-owned connection. Never reused within a run.
  using ConnId = uint64_t;

  struct Options {
    /// Size of the blocking-work pool (>= 1).
    int workers = 1;
    /// Outbound byte caps per connection (0 = uncapped). Above the soft cap
    /// the reactor stops reading from the connection — a pipelining peer
    /// that won't drain replies is throttled by its own socket buffers.
    /// Above the hard cap it is disconnected (slow-consumer policy).
    size_t send_soft_cap_bytes = 1u << 20;
    size_t send_hard_cap_bytes = 8u << 20;
    /// Idle/half-open reaping: after this long without any inbound or
    /// outbound progress the connection is probed (once) and then closed if
    /// another period passes silent. 0 disables reaping.
    uint32_t idle_timeout_ms = 0;
    /// Frame type of the idle probe (the server passes kMsgPing); 0 sends
    /// no probe — idle connections are closed after one period.
    uint16_t probe_type = 0;
    /// A worker running one task longer than this is counted stuck
    /// (server.overload.worker_stuck) and logged. 0 disables the watchdog.
    uint32_t watchdog_ms = 0;
  };

  /// Per-connection callbacks, invoked on the event thread.
  struct ConnHandler {
    /// One complete message arrived. May call Detach/CloseConn for its own
    /// connection. Must not block.
    std::function<void(ConnId, Message)> on_message;
    /// The connection died (peer close, transport error, slow-consumer or
    /// idle reaping, or reactor Stop). Fires at most once, never after
    /// Detach.
    std::function<void(ConnId)> on_close;
  };

  explicit Reactor(Options options);
  /// Convenience: a pool of `workers` with default overload options.
  explicit Reactor(int workers) : Reactor(Options{.workers = workers}) {}
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawns the event thread and workers. Listeners may be registered
  /// before or after Start.
  Status Start();

  /// Stops everything, in order: the event thread closes all connections
  /// (each on_close fires there), then the worker queue drains, then all
  /// threads join. Send/Post/Submit after Stop are dropped silently.
  void Stop();

  /// Registers a listening socket; `on_accept` receives each accepted
  /// (already non-blocking) socket on the event thread. The listener must
  /// outlive the reactor's run. Call before Start or from the event thread.
  Status AddListener(MsgListener* listener,
                     std::function<void(MsgSocket)> on_accept);

  /// Takes ownership of `sock` (switched to non-blocking) and watches it.
  /// Event thread only.
  ConnId AddConnection(MsgSocket sock, ConnHandler handler);

  /// Removes the connection from the loop and returns its socket (still
  /// non-blocking; the blocking wrappers poll, so it can be used as a
  /// plain blocking channel). on_close will not fire. Event thread only.
  /// Returns an invalid socket if the id is already gone.
  MsgSocket Detach(ConnId id);

  /// Queues one framed message for `id` and flushes opportunistically.
  /// Any thread. Messages from one thread keep their order; the frame goes
  /// out after any bytes already pending.
  void Send(ConnId id, uint16_t type, uint64_t req_id, std::string payload);

  /// Closes `id` from any thread (on_close fires on the event thread).
  /// Pending outbound bytes are NOT flushed first — this is teardown.
  void CloseConn(ConnId id);

  /// Runs `fn` on the event thread at its next wakeup. Any thread.
  void Post(std::function<void()> fn);

  /// Runs `fn` on the worker pool. Any thread.
  void Submit(std::function<void()> fn);

  /// True only on the reactor's event thread (for asserts).
  bool OnEventThread() const;

  /// Live connection count. Event thread only (admission checks in
  /// on_accept).
  size_t ConnCountOnEventThread() const { return conns_.size(); }

  /// Workers currently stuck past watchdog_ms on one task (informational;
  /// the counter server.overload.worker_stuck records incidents).
  int stuck_workers() const {
    return stuck_workers_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    MsgSocket sock;
    SendContinuation out;
    RecvContinuation in;
    ConnHandler handler;
    /// Monotonic ns of the last inbound or outbound progress.
    uint64_t last_activity_ns = 0;
    /// Slow-consumer throttle: reads are paused until the out queue drains
    /// below the low watermark (half the soft cap).
    bool read_paused = false;
    /// One idle probe per silent period; any activity re-arms it.
    bool probe_sent = false;
  };
  struct Listener {
    MsgListener* listener;
    std::function<void(MsgSocket)> on_accept;
  };

  void EventLoop();
  void WorkerLoop(int index);
  void Wake();
  void DrainOps();
  void HandleReadable(ConnId id);
  void FlushConn(ConnId id);
  void DestroyConn(ConnId id, bool invoke_on_close);
  void AcceptPending(Listener* l);
  Conn* FindConn(ConnId id);
  /// Applies the outbound byte-cap policy after bytes were queued/flushed.
  /// Returns false if the connection was destroyed (hard cap).
  bool EnforceSendCaps(ConnId id, Conn* c);
  void MarkActivity(Conn* c, uint64_t now_ns);
  /// Lazy timer wheel: entries are (re)filed by expiry bucket; a due entry
  /// whose connection saw traffic since is simply refiled at its real
  /// deadline, so activity never touches the wheel.
  void ScheduleIdleCheck(ConnId id, uint64_t fire_at_ns);
  void RunTimers(uint64_t now_ns);
  void CheckWorkers(uint64_t now_ns);

  Options opts_;
  int epfd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: cross-thread kick out of epoll_wait
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> next_conn_id_{1};
  std::thread event_thread_;

  // Event-thread-owned (no lock): live connections and listeners.
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns_;
  std::vector<std::unique_ptr<Listener>> listeners_;

  // Event-thread-owned timer wheel (coarse hashed buckets of ConnIds).
  static constexpr size_t kWheelBuckets = 64;
  std::vector<std::vector<ConnId>> wheel_{kWheelBuckets};
  uint64_t wheel_granularity_ns_ = 0;
  uint64_t wheel_cursor_ns_ = 0;  ///< timers below this already ran

  // Cross-thread operation queue, drained once per event-loop wakeup.
  std::mutex ops_mu_;
  std::vector<std::function<void()>> ops_;
  bool ops_accepting_ = true;

  // Worker pool.
  std::vector<std::thread> workers_;
  int num_workers_;
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> work_;
  bool work_accepting_ = true;

  // Watchdog: per-worker start-of-task stamps (0 = idle), written by the
  // workers, read by the event thread; `reported_` is event-thread-only.
  std::unique_ptr<std::atomic<uint64_t>[]> worker_busy_since_ns_;
  std::vector<uint64_t> worker_reported_stamp_;
  std::atomic<int> stuck_workers_{0};
};

}  // namespace bess

#endif  // BESS_SERVER_REACTOR_H_
