// Reactor: the server's epoll event loop plus a small worker pool
// (DESIGN.md §11). One event thread multiplexes every session socket with
// edge-triggered readiness — the server runs O(workers) threads regardless
// of how many connections are live, instead of the old thread-per-session
// model that fell over past a few hundred clients.
//
// Threading rules (the whole contract — see DESIGN.md §11 for rationale):
//   - The event thread exclusively owns connection state (epoll membership,
//     continuations, callbacks). AddConnection/Detach may only be called on
//     it (i.e. from inside a reactor callback).
//   - on_message / on_close / on_accept run on the event thread and must
//     never block: hand real work to Submit() and return.
//   - Send / CloseConn / Post are safe from any thread; they enqueue an
//     operation the event thread drains on its next wakeup (one eventfd
//     kick per batch — replies queued while the loop is busy coalesce).
//   - Submit() runs a closure on the worker pool; blocking work (fsync,
//     page I/O, lock waits, callback round trips) belongs there.
#ifndef BESS_SERVER_REACTOR_H_
#define BESS_SERVER_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>

#include "os/socket.h"
#include "util/status.h"

namespace bess {

class Reactor {
 public:
  /// Identifies one reactor-owned connection. Never reused within a run.
  using ConnId = uint64_t;

  /// Per-connection callbacks, invoked on the event thread.
  struct ConnHandler {
    /// One complete message arrived. May call Detach/CloseConn for its own
    /// connection. Must not block.
    std::function<void(ConnId, Message)> on_message;
    /// The connection died (peer close, transport error, or reactor Stop).
    /// Fires at most once, and never after Detach.
    std::function<void(ConnId)> on_close;
  };

  /// `workers`: size of the blocking-work pool (>= 1).
  explicit Reactor(int workers);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawns the event thread and workers. Listeners may be registered
  /// before or after Start.
  Status Start();

  /// Stops everything, in order: the event thread closes all connections
  /// (each on_close fires there), then the worker queue drains, then all
  /// threads join. Send/Post/Submit after Stop are dropped silently.
  void Stop();

  /// Registers a listening socket; `on_accept` receives each accepted
  /// (already non-blocking) socket on the event thread. The listener must
  /// outlive the reactor's run. Call before Start or from the event thread.
  Status AddListener(MsgListener* listener,
                     std::function<void(MsgSocket)> on_accept);

  /// Takes ownership of `sock` (switched to non-blocking) and watches it.
  /// Event thread only.
  ConnId AddConnection(MsgSocket sock, ConnHandler handler);

  /// Removes the connection from the loop and returns its socket (still
  /// non-blocking; the blocking wrappers poll, so it can be used as a
  /// plain blocking channel). on_close will not fire. Event thread only.
  /// Returns an invalid socket if the id is already gone.
  MsgSocket Detach(ConnId id);

  /// Queues one framed message for `id` and flushes opportunistically.
  /// Any thread. Messages from one thread keep their order; the frame goes
  /// out after any bytes already pending.
  void Send(ConnId id, uint16_t type, uint64_t req_id, std::string payload);

  /// Closes `id` from any thread (on_close fires on the event thread).
  /// Pending outbound bytes are NOT flushed first — this is teardown.
  void CloseConn(ConnId id);

  /// Runs `fn` on the event thread at its next wakeup. Any thread.
  void Post(std::function<void()> fn);

  /// Runs `fn` on the worker pool. Any thread.
  void Submit(std::function<void()> fn);

  /// True only on the reactor's event thread (for asserts).
  bool OnEventThread() const;

 private:
  struct Conn {
    MsgSocket sock;
    SendContinuation out;
    RecvContinuation in;
    ConnHandler handler;
  };
  struct Listener {
    MsgListener* listener;
    std::function<void(MsgSocket)> on_accept;
  };

  void EventLoop();
  void WorkerLoop();
  void Wake();
  void DrainOps();
  void HandleReadable(ConnId id);
  void FlushConn(ConnId id);
  void DestroyConn(ConnId id, bool invoke_on_close);
  void AcceptPending(Listener* l);
  Conn* FindConn(ConnId id);

  int epfd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: cross-thread kick out of epoll_wait
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> next_conn_id_{1};
  std::thread event_thread_;

  // Event-thread-owned (no lock): live connections and listeners.
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns_;
  std::vector<std::unique_ptr<Listener>> listeners_;

  // Cross-thread operation queue, drained once per event-loop wakeup.
  std::mutex ops_mu_;
  std::vector<std::function<void()>> ops_;
  bool ops_accepting_ = true;

  // Worker pool.
  std::vector<std::thread> workers_;
  int num_workers_;
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> work_;
  bool work_accepting_ = true;
};

}  // namespace bess

#endif  // BESS_SERVER_REACTOR_H_
