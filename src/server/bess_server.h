// The BeSS server (paper §3, Figure 2).
//
// "Each BeSS server manages a number of storage areas and provides
// distributed transaction management, concurrency control and recovery for
// the databases stored in these areas." Clients connect over two channels
// (request/response + callback); the server grants locks with the callback
// locking algorithm [17, 19]: when a request conflicts with a lock *cached*
// by another client, the server calls that client back; the client releases
// the lock if no active transaction uses it, otherwise the requester waits
// (timeouts standing in for distributed deadlock detection).
//
// The server is an *open server*: trusted code can be linked with it — in
// this codebase that simply means constructing BessServer inside your own
// process and registering hooks or using the owned Databases directly
// (§2.4, §5 "value added server").
#ifndef BESS_SERVER_BESS_SERVER_H_
#define BESS_SERVER_BESS_SERVER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "object/database.h"
#include "os/socket.h"
#include "server/protocol.h"

namespace bess {

class BessServer {
 public:
  struct Options {
    std::string socket_path;
    int lock_timeout_ms = kLockTimeoutMillis;
    /// Wait for one callback round trip; plumbed from bess::OpenOptions.
    int callback_timeout_ms = kCallbackTimeoutMillis;
    uint32_t simulated_latency_us = 0;  ///< per message (LAN simulation)
  };

  struct Stats {
    uint64_t requests = 0;
    uint64_t fetches = 0;
    uint64_t commits = 0;
    uint64_t commit_dedupes = 0;  ///< replayed commits answered from the window
    uint64_t sessions_reaped = 0;  ///< dead sessions cleaned up
    uint64_t lock_requests = 0;
    uint64_t callbacks_sent = 0;
    uint64_t callbacks_released = 0;
    uint64_t callbacks_denied = 0;
    /// Sessions torn down because a callback round trip timed out: the
    /// holder is presumed dead and unwinds into presumed-abort cleanup.
    uint64_t callback_timeouts = 0;
  };

  explicit BessServer(Options options);
  ~BessServer();

  /// Registers a database this server owns (not transferred).
  Status AddDatabase(Database* db);

  /// Starts listening and serving (returns immediately).
  Status Start();
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }
  Stats stats() const;
  LockStats lock_stats() const { return locks_.stats(); }

 private:
  struct Session {
    uint64_t id = 0;
    MsgSocket main;
    MsgSocket callback;
    /// Guards the callback socket: one round trip at a time, and the
    /// AcceptLoop attach / Stop() shutdown of a published session's socket.
    /// MarkSessionDefunct expects its callers to hold it.
    std::mutex callback_mutex;
    std::atomic<bool> has_callback{false};
    /// Set by the callback-timeout reaper (MarkSessionDefunct): the session
    /// is being torn down. Its serving thread stops waiting for locks
    /// immediately instead of riding out the timeout on a doomed request.
    std::atomic<bool> defunct{false};
    /// Transactions this session prepared but has not yet resolved. Only
    /// touched by the session's own serving thread; on disconnect they are
    /// aborted (presumed abort: the coordinator's decision, if any, lived in
    /// client memory and can no longer reach us through this session).
    std::set<uint64_t> prepared_gtids;
  };

  // There is deliberately no server-wide mutex. Per-session state (sockets,
  // prepared gtids) is owned by the serving thread; the cross-session
  // structures are sharded so two clients committing to different pages
  // never contend: the session registry and the ctid dedup window hash over
  // small per-shard mutexes, counters are relaxed atomics, and the database
  // registry is immutable once Start() has been called.
  static constexpr uint32_t kSessionShards = 16;
  static constexpr uint32_t kCommitShards = 8;
  struct SessionShard {
    std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<Session>> map;
  };
  struct CommitShard {
    std::mutex mu;
    /// Recently applied commit ids (kMsgCommit ctid prefix), a bounded
    /// duplicate-suppression window: a client replaying a commit whose
    /// reply was lost gets OK instead of a second application.
    std::unordered_set<uint64_t> applied;
    std::deque<uint64_t> order;
  };
  struct AtomicStats {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> fetches{0};
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> commit_dedupes{0};
    std::atomic<uint64_t> sessions_reaped{0};
    std::atomic<uint64_t> lock_requests{0};
    std::atomic<uint64_t> callbacks_sent{0};
    std::atomic<uint64_t> callbacks_released{0};
    std::atomic<uint64_t> callbacks_denied{0};
    std::atomic<uint64_t> callback_timeouts{0};
  };

  SessionShard& SessionShardFor(uint64_t id) {
    return session_shards_[id % kSessionShards];
  }
  CommitShard& CommitShardFor(uint64_t ctid) {
    return commit_shards_[(ctid * 0x9E3779B97F4A7C15ull >> 32) %
                          kCommitShards];
  }
  std::shared_ptr<Session> FindSession(uint64_t id);

  void AcceptLoop();
  void ServeSession(std::shared_ptr<Session> session);
  /// Handles one request; fills the reply (type + payload).
  void Handle(Session& session, const Message& msg, uint16_t* reply_type,
              std::string* reply);
  Status HandleRequest(Session& session, const Message& msg,
                       std::string* reply, uint16_t* reply_type);
  Status AcquireWithCallbacks(Session& session, uint64_t key, LockMode mode,
                              int timeout_ms);
  /// Tears down an unresponsive session's sockets so its serving thread
  /// unwinds into the presumed-abort cleanup at the end of ServeSession,
  /// and releases its locks right away so waiters are granted promptly
  /// instead of riding out their own timeouts against a ghost holder.
  void MarkSessionDefunct(Session* session);
  Result<Database*> DbFor(uint16_t db_id);
  std::vector<Database*> AllDatabases();

  Options options_;
  LockManager locks_;
  MsgListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> next_session_{1};

  /// Populated by AddDatabase strictly before Start(); read without a lock
  /// afterwards (Start()'s thread creation publishes it).
  std::unordered_map<uint16_t, Database*> databases_;
  SessionShard session_shards_[kSessionShards];
  CommitShard commit_shards_[kCommitShards];
  std::mutex threads_mu_;
  std::vector<std::thread> session_threads_;
  mutable AtomicStats stats_;
};

}  // namespace bess

#endif  // BESS_SERVER_BESS_SERVER_H_
