// The BeSS server (paper §3, Figure 2).
//
// "Each BeSS server manages a number of storage areas and provides
// distributed transaction management, concurrency control and recovery for
// the databases stored in these areas." Clients connect over two channels
// (request/response + callback); the server grants locks with the callback
// locking algorithm [17, 19]: when a request conflicts with a lock *cached*
// by another client, the server calls that client back; the client releases
// the lock if no active transaction uses it, otherwise the requester waits
// (timeouts standing in for distributed deadlock detection).
//
// Threading (DESIGN.md §11): the server runs one epoll event loop (Reactor)
// that owns every session socket, plus a small worker pool. Sessions are
// not threads — each is a FIFO request queue drained by at most one worker
// at a time, so a connection may pipeline many requests (replies matched by
// req_id) while the server still executes them serially per session. At 256
// or 1024 connections the thread count stays O(workers).
//
// The server is an *open server*: trusted code can be linked with it — in
// this codebase that simply means constructing BessServer inside your own
// process and registering hooks or using the owned Databases directly
// (§2.4, §5 "value added server").
#ifndef BESS_SERVER_BESS_SERVER_H_
#define BESS_SERVER_BESS_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "object/database.h"
#include "os/socket.h"
#include "server/protocol.h"
#include "server/reactor.h"

namespace bess {

class BessServer {
 public:
  struct Options {
    std::string socket_path;
    int lock_timeout_ms = kLockTimeoutMillis;
    /// Wait for one callback round trip; plumbed from bess::OpenOptions.
    int callback_timeout_ms = kCallbackTimeoutMillis;
    uint32_t simulated_latency_us = 0;  ///< per message (LAN simulation)
    /// Blocking-work pool size (fsync/group commit, page I/O, lock waits).
    /// 0 picks a small default; the count never scales with connections.
    int worker_threads = 0;

    // ---- overload protection (DESIGN.md §12); 0 always means "off" ------

    /// Accept-time admission: connections beyond this are closed without a
    /// session (the client's connect succeeds, then the socket drops —
    /// a retryable transport failure on its side).
    size_t max_connections = 0;
    /// Per-session pipelining depth: requests queued beyond this are shed
    /// with kRetryLater instead of buffered without bound.
    uint32_t max_inflight_per_session = 0;
    /// Global enqueued-but-unfinished request cap. Commit-carrying work
    /// (kMsgCommit/kMsgPrepare) gets 2x this budget so under overload the
    /// server finishes transactions rather than starting new reads;
    /// phase-two 2PC decisions are never shed.
    uint32_t max_inflight_global = 0;
    /// Outbound byte caps per connection (reactor slow-consumer policy):
    /// throttle reads above soft, disconnect above hard.
    size_t send_soft_cap_bytes = 1u << 20;
    size_t send_hard_cap_bytes = 8u << 20;
    /// Idle/half-open reaping: a connection silent this long is pinged
    /// (kMsgPing) and closed if the next period also passes silent.
    uint32_t idle_timeout_ms = 0;
    /// Workers stuck on one task longer than this are flagged.
    uint32_t watchdog_ms = 0;
  };

  struct Stats {
    uint64_t requests = 0;
    uint64_t fetches = 0;
    uint64_t commits = 0;
    uint64_t commit_dedupes = 0;  ///< replayed commits answered from the window
    uint64_t sessions_reaped = 0;  ///< dead sessions cleaned up
    uint64_t lock_requests = 0;
    uint64_t callbacks_sent = 0;
    uint64_t callbacks_released = 0;
    uint64_t callbacks_denied = 0;
    /// Sessions torn down because a callback round trip timed out: the
    /// holder is presumed dead and unwinds into presumed-abort cleanup.
    uint64_t callback_timeouts = 0;
    /// Overload sheds (DESIGN.md §12): every shed is a *reply* (never a
    /// silent drop), so these reconcile against client-side counts.
    uint64_t shed_deadline = 0;   ///< expired budget, kDeadlineExceeded
    uint64_t shed_admission = 0;  ///< in-flight caps, kRetryLater
    uint64_t shed_log_full = 0;   ///< WAL backpressure, kRetryLater
    uint64_t conns_rejected = 0;  ///< closed at accept (max_connections)
  };

  explicit BessServer(Options options);
  ~BessServer();

  /// Registers a database this server owns (not transferred).
  Status AddDatabase(Database* db);

  /// Starts listening and serving (returns immediately).
  Status Start();
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }
  Stats stats() const;
  LockStats lock_stats() const { return locks_.stats(); }

  /// Sessions currently registered (leak checks: must return to baseline
  /// after clients disconnect).
  size_t live_sessions() const;
  /// Workers currently stuck past watchdog_ms (0 when healthy).
  int stuck_workers() const {
    return reactor_ != nullptr ? reactor_->stuck_workers() : 0;
  }

 private:
  /// An in-progress cooperative lock wait. A lock request that cannot be
  /// granted immediately does NOT park a worker for its whole timeout: each
  /// drain slot runs one bounded round (callbacks + a short capped wait),
  /// then re-queues the session so other sessions' work — including the
  /// release that will eventually grant us — gets worker time.
  struct LockWait {
    bool active = false;
    uint64_t key = 0;
    LockMode mode = LockMode::kS;
    uint64_t req_id = 0;
    std::chrono::steady_clock::time_point deadline;
  };

  struct Session {
    uint64_t id = 0;
    Reactor::ConnId conn = 0;  ///< reactor-owned main channel
    MsgSocket callback;
    /// Guards the callback socket: one round trip at a time, and the
    /// HelloCallback attach / Stop() shutdown of a published session's
    /// socket. MarkSessionDefunct expects its callers to hold it.
    std::mutex callback_mutex;
    std::atomic<bool> has_callback{false};
    /// Set by the callback-timeout reaper (MarkSessionDefunct): the session
    /// is being torn down. Its drain stops waiting for locks immediately
    /// instead of riding out the timeout on a doomed request.
    std::atomic<bool> defunct{false};

    /// One queued request plus its deadline, fixed at arrival: a relative
    /// wire budget (Message::deadline_ms) becomes an absolute expiry here,
    /// so queueing delay counts against it and an expired request is shed
    /// before dispatch instead of executed late (DESIGN.md §12).
    struct Queued {
      Message msg;
      std::chrono::steady_clock::time_point expiry;
    };

    /// Pipelining queue: the event thread appends, one worker at a time
    /// drains. `draining` is the single-drainer token; `closed` is set by
    /// the reactor's on_close; `cleaned` makes teardown run exactly once.
    std::mutex q_mu;
    std::deque<Queued> queue;
    bool draining = false;
    bool closed = false;
    bool cleaned = false;

    /// Drainer-owned (serial per session): cooperative lock-wait state.
    LockWait lock_wait;
    /// Transactions this session prepared but has not yet resolved. Only
    /// touched by the session's drain (serial); on disconnect they are
    /// aborted (presumed abort: the coordinator's decision, if any, lived in
    /// client memory and can no longer reach us through this session).
    std::set<uint64_t> prepared_gtids;
  };

  // There is deliberately no server-wide mutex. Per-session state (queue,
  // prepared gtids) is owned by its serial drain; the cross-session
  // structures are sharded so two clients committing to different pages
  // never contend: the session registry and the ctid dedup window hash over
  // small per-shard mutexes, counters are relaxed atomics, and the database
  // registry is immutable once Start() has been called.
  static constexpr uint32_t kSessionShards = 16;
  static constexpr uint32_t kCommitShards = 8;
  struct SessionShard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<Session>> map;
  };
  struct CommitShard {
    std::mutex mu;
    /// Recently applied commit ids (kMsgCommit ctid prefix), a bounded
    /// duplicate-suppression window: a client replaying a commit whose
    /// reply was lost gets OK instead of a second application.
    std::unordered_set<uint64_t> applied;
    std::deque<uint64_t> order;
  };
  struct AtomicStats {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> fetches{0};
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> commit_dedupes{0};
    std::atomic<uint64_t> sessions_reaped{0};
    std::atomic<uint64_t> lock_requests{0};
    std::atomic<uint64_t> callbacks_sent{0};
    std::atomic<uint64_t> callbacks_released{0};
    std::atomic<uint64_t> callbacks_denied{0};
    std::atomic<uint64_t> callback_timeouts{0};
    std::atomic<uint64_t> shed_deadline{0};
    std::atomic<uint64_t> shed_admission{0};
    std::atomic<uint64_t> shed_log_full{0};
    std::atomic<uint64_t> conns_rejected{0};
  };

  SessionShard& SessionShardFor(uint64_t id) {
    return session_shards_[id % kSessionShards];
  }
  CommitShard& CommitShardFor(uint64_t ctid) {
    return commit_shards_[(ctid * 0x9E3779B97F4A7C15ull >> 32) %
                          kCommitShards];
  }
  std::shared_ptr<Session> FindSession(uint64_t id);

  // Reactor callbacks (event thread; must not block).
  void OnAccept(MsgSocket sock);
  void OnConnMessage(
      const std::shared_ptr<std::shared_ptr<Session>>& bound,
      Reactor::ConnId conn, Message msg);
  void OnConnClose(const std::shared_ptr<std::shared_ptr<Session>>& bound);

  // Worker-side request execution (serial per session).
  void DrainSession(std::shared_ptr<Session> session);
  void CleanupSession(const std::shared_ptr<Session>& session);
  void SendReply(Session& session, uint16_t type, uint64_t req_id,
                 std::string payload);
  /// Replies `s` to a request being refused without execution. Bypasses the
  /// simulated LAN latency: a shed must be cheaper than the work it sheds.
  void ShedRequest(Reactor::ConnId conn, uint64_t req_id, const Status& s);
  /// Handles one request; fills the reply (type + payload).
  void Handle(Session& session, const Message& msg, uint16_t* reply_type,
              std::string* reply);
  Status HandleRequest(Session& session, const Message& msg,
                       std::string* reply, uint16_t* reply_type);
  /// One bounded round of the callback-locking acquire; kBusy means
  /// "undecided, yield the worker and try again next slot".
  Status LockWaitRound(Session& session);
  /// Tears down an unresponsive session so its drain unwinds into the
  /// presumed-abort cleanup, and releases its locks right away so waiters
  /// are granted promptly instead of riding out their own timeouts against
  /// a ghost holder.
  void MarkSessionDefunct(Session* session);
  Result<Database*> DbFor(uint16_t db_id);
  std::vector<Database*> AllDatabases();

  Options options_;
  LockManager locks_;
  MsgListener listener_;
  std::unique_ptr<Reactor> reactor_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> next_session_{1};
  /// Requests enqueued but not yet finished, across all sessions — the
  /// quantity max_inflight_global caps. Incremented at enqueue (event
  /// thread), decremented once per request when its drain completes it.
  std::atomic<uint64_t> inflight_{0};

  /// Populated by AddDatabase strictly before Start(); read without a lock
  /// afterwards (Start()'s thread creation publishes it).
  std::unordered_map<uint16_t, Database*> databases_;
  SessionShard session_shards_[kSessionShards];
  CommitShard commit_shards_[kCommitShards];
  mutable AtomicStats stats_;
};

}  // namespace bess

#endif  // BESS_SERVER_BESS_SERVER_H_
