#include "server/reactor.h"

#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace bess {
namespace {

// epoll user-data tags. Connection ids start at 1 and listeners are tagged
// with the high bit so one epoll instance serves both.
constexpr uint64_t kWakeTag = 0;
constexpr uint64_t kListenerBit = 1ull << 63;

thread_local const Reactor* t_event_reactor = nullptr;

uint64_t MonotonicNs() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

Reactor::Reactor(Options options)
    : opts_(options), num_workers_(opts_.workers < 1 ? 1 : opts_.workers) {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epfd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
  if (opts_.idle_timeout_ms > 0) {
    // Coarse wheel: a quarter of the idle period, floored so a tiny timeout
    // cannot turn the event loop into a busy spin.
    wheel_granularity_ns_ =
        std::max<uint64_t>(10, opts_.idle_timeout_ms / 4) * 1000000ull;
  }
  worker_busy_since_ns_ =
      std::make_unique<std::atomic<uint64_t>[]>(num_workers_);
  for (int i = 0; i < num_workers_; ++i) worker_busy_since_ns_[i] = 0;
  worker_reported_stamp_.assign(num_workers_, 0);
}

Reactor::~Reactor() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epfd_ >= 0) ::close(epfd_);
}

Status Reactor::Start() {
  if (epfd_ < 0 || wake_fd_ < 0) {
    return Status::Internal("reactor: epoll/eventfd setup failed");
  }
  if (running_.exchange(true)) return Status::OK();
  {
    std::lock_guard<std::mutex> guard(ops_mu_);
    ops_accepting_ = true;
  }
  {
    std::lock_guard<std::mutex> guard(work_mu_);
    work_accepting_ = true;
  }
  event_thread_ = std::thread(&Reactor::EventLoop, this);
  workers_.reserve(num_workers_);
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back(&Reactor::WorkerLoop, this, i);
  }
  return Status::OK();
}

void Reactor::Stop() {
  if (!running_.exchange(false)) return;
  // Refuse new cross-thread ops, then kick the event thread so it observes
  // the stop flag, tears down every connection (on_close may Submit final
  // cleanup work), and exits.
  {
    std::lock_guard<std::mutex> guard(ops_mu_);
    ops_accepting_ = false;
  }
  Wake();
  if (event_thread_.joinable()) event_thread_.join();
  // Workers drain whatever the teardown queued, then exit.
  {
    std::lock_guard<std::mutex> guard(work_mu_);
    work_accepting_ = false;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> guard(ops_mu_);
    ops_.clear();
  }
}

Status Reactor::AddListener(MsgListener* listener,
                            std::function<void(MsgSocket)> on_accept) {
  BESS_RETURN_IF_ERROR(listener->SetNonBlocking(true));
  auto l = std::make_unique<Listener>();
  l->listener = listener;
  l->on_accept = std::move(on_accept);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenerBit | listeners_.size();
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, listener->fd(), &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(listener): ") +
                            strerror(errno));
  }
  listeners_.push_back(std::move(l));
  return Status::OK();
}

Reactor::ConnId Reactor::AddConnection(MsgSocket sock, ConnHandler handler) {
  const ConnId id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  (void)sock.SetNonBlocking(true);
  auto conn = std::make_unique<Conn>();
  conn->sock = std::move(sock);
  conn->handler = std::move(handler);
  conn->last_activity_ns = MonotonicNs();
  epoll_event ev{};
  // One registration, edge-triggered, for the connection's whole life:
  // EPOLLOUT edges arrive only after a send hit WouldBlock, EPOLLIN edges
  // whenever new bytes land. No epoll_ctl churn per message.
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = id;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, conn->sock.fd(), &ev) != 0) {
    BESS_ERROR("reactor: epoll_ctl(add conn): " << strerror(errno));
    return 0;
  }
  const uint64_t activity = conn->last_activity_ns;
  conns_.emplace(id, std::move(conn));
  if (wheel_granularity_ns_ > 0) {
    ScheduleIdleCheck(id, activity + opts_.idle_timeout_ms * 1000000ull);
  }
  return id;
}

MsgSocket Reactor::Detach(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return MsgSocket();
  MsgSocket sock = std::move(it->second->sock);
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, sock.fd(), nullptr);
  conns_.erase(it);
  return sock;
}

void Reactor::Send(ConnId id, uint16_t type, uint64_t req_id,
                   std::string payload) {
  Post([this, id, type, req_id, payload = std::move(payload)]() {
    Conn* c = FindConn(id);
    if (c == nullptr) return;
    MsgSocket::QueueFrame(type, req_id, payload, &c->out);
    FlushConn(id);
  });
}

void Reactor::CloseConn(ConnId id) {
  Post([this, id]() { DestroyConn(id, /*invoke_on_close=*/true); });
}

void Reactor::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> guard(ops_mu_);
    if (!ops_accepting_) return;
    ops_.push_back(std::move(fn));
  }
  // Always wake, even from the event thread: a Post issued after this
  // iteration's DrainOps would otherwise sit until the next epoll timeout.
  // The eventfd write is cheap and immediately re-readies epoll_wait.
  Wake();
}

void Reactor::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> guard(work_mu_);
    if (!work_accepting_) return;
    work_.push_back(std::move(fn));
    BESS_GAUGE_ADD("server.reactor.queue_depth", 1);
  }
  work_cv_.notify_one();
}

bool Reactor::OnEventThread() const { return t_event_reactor == this; }

void Reactor::Wake() {
  uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

void Reactor::DrainOps() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> guard(ops_mu_);
    batch.swap(ops_);
  }
  if (batch.empty()) return;
  // The batch-size histogram is the proof of coalescing: under load many
  // replies ride one wakeup instead of one syscall round trip each.
  BESS_HIST("server.reactor.batch_size", batch.size());
  for (auto& fn : batch) fn();
}

void Reactor::EventLoop() {
  t_event_reactor = this;
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  // With timers or a watchdog armed the loop must tick even when sockets
  // are silent; otherwise the 500ms heartbeat only bounds Stop() latency.
  int timeout_ms = 500;
  if (wheel_granularity_ns_ > 0) {
    timeout_ms = std::min<int>(
        timeout_ms, static_cast<int>(wheel_granularity_ns_ / 1000000ull));
  }
  if (opts_.watchdog_ms > 0) {
    timeout_ms = std::min<int>(
        timeout_ms, std::max<int>(10, static_cast<int>(opts_.watchdog_ms / 2)));
  }
  wheel_cursor_ns_ = MonotonicNs();
  while (running_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epfd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      BESS_ERROR("reactor: epoll_wait: " << strerror(errno));
      break;
    }
    BESS_COUNT("server.reactor.wakeup");
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (tag & kListenerBit) {
        const size_t idx = tag & ~kListenerBit;
        if (idx < listeners_.size()) AcceptPending(listeners_[idx].get());
        continue;
      }
      const ConnId id = tag;
      if (events[i].events & EPOLLOUT) FlushConn(id);
      if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        HandleReadable(id);
      }
    }
    // Cross-thread ops (queued replies, closes, posts) drain as one batch
    // per wakeup, after readiness handling so a reply to a just-read
    // request can still make this batch via on_message → Send.
    DrainOps();
    const uint64_t now = MonotonicNs();
    if (wheel_granularity_ns_ > 0) RunTimers(now);
    if (opts_.watchdog_ms > 0) CheckWorkers(now);
  }
  // Teardown: every surviving connection closes on this thread, so
  // on_close ordering guarantees hold to the very end.
  std::vector<ConnId> ids;
  ids.reserve(conns_.size());
  for (auto& kv : conns_) ids.push_back(kv.first);
  for (ConnId id : ids) DestroyConn(id, /*invoke_on_close=*/true);
  DrainOps();
  t_event_reactor = nullptr;
}

void Reactor::AcceptPending(Listener* l) {
  for (;;) {
    auto sock = l->listener->TryAccept();
    if (!sock.ok()) {
      if (!sock.status().IsWouldBlock()) {
        BESS_DEBUG("reactor: accept: " << sock.status().ToString());
      }
      return;
    }
    l->on_accept(std::move(sock).value());
  }
}

void Reactor::MarkActivity(Conn* c, uint64_t now_ns) {
  // Only *inbound* traffic counts as liveness: outbound progress (including
  // our own idle probes) proves nothing about the peer.
  c->last_activity_ns = now_ns;
  c->probe_sent = false;
}

void Reactor::HandleReadable(ConnId id) {
  // Edge-triggered: drain until WouldBlock. The conn is re-looked-up every
  // iteration because on_message may Detach or CloseConn it.
  for (;;) {
    Conn* c = FindConn(id);
    if (c == nullptr) return;
    if (c->read_paused) return;  // slow consumer: kernel buffer backpressure
    Message msg;
    Status s = c->sock.TryRecv(&msg, &c->in);
    if (s.ok()) {
      MarkActivity(c, MonotonicNs());
      c->handler.on_message(id, std::move(msg));
      continue;
    }
    if (s.IsWouldBlock()) return;
    // Peer close or transport error: tear the connection down.
    DestroyConn(id, /*invoke_on_close=*/true);
    return;
  }
}

void Reactor::FlushConn(ConnId id) {
  Conn* c = FindConn(id);
  if (c == nullptr) return;
  if (!c->out.empty()) {
    Status s = c->sock.TrySend(&c->out);
    if (!s.ok() && !s.IsWouldBlock()) {
      DestroyConn(id, /*invoke_on_close=*/true);
      return;
    }
  }
  (void)EnforceSendCaps(id, c);
}

bool Reactor::EnforceSendCaps(ConnId id, Conn* c) {
  const size_t pending = c->out.pending_bytes();
  if (opts_.send_hard_cap_bytes > 0 && pending > opts_.send_hard_cap_bytes) {
    // Slow consumer past the hard cap: presumed dead or hostile. on_close
    // runs the session's presumed-abort cleanup.
    BESS_COUNT("server.overload.slow_consumer.disconnect");
    BESS_ERROR("reactor: conn " << id << " disconnected, " << pending
                                << " outbound bytes undrained");
    DestroyConn(id, /*invoke_on_close=*/true);
    return false;
  }
  if (opts_.send_soft_cap_bytes > 0) {
    if (!c->read_paused && pending > opts_.send_soft_cap_bytes) {
      // Throttle: stop reading its requests. The peer keeps its socket
      // buffers; our kernel recv queue fills; the peer's sends block.
      c->read_paused = true;
      BESS_COUNT("server.overload.slow_consumer.throttle");
    } else if (c->read_paused && pending < opts_.send_soft_cap_bytes / 2) {
      // Drained below the low watermark: resume. The paused stretch may
      // have consumed EPOLLIN edges, so drain the kernel buffer now.
      c->read_paused = false;
      HandleReadable(id);
    }
  }
  return true;
}

void Reactor::ScheduleIdleCheck(ConnId id, uint64_t fire_at_ns) {
  // Entries below the cursor would never be visited; file them into the
  // next tick instead.
  if (fire_at_ns <= wheel_cursor_ns_) fire_at_ns = wheel_cursor_ns_ + 1;
  const size_t bucket =
      (fire_at_ns / wheel_granularity_ns_) % kWheelBuckets;
  wheel_[bucket].push_back(id);
}

void Reactor::RunTimers(uint64_t now_ns) {
  const uint64_t idle_ns = opts_.idle_timeout_ms * 1000000ull;
  // Visit every bucket the cursor passes; cap the walk at one full rotation
  // (a long stall visits each bucket once, not once per missed tick).
  uint64_t from = wheel_cursor_ns_ / wheel_granularity_ns_;
  const uint64_t to = now_ns / wheel_granularity_ns_;
  if (to <= from) return;
  if (to - from > kWheelBuckets) from = to - kWheelBuckets;
  std::vector<ConnId> due;
  for (uint64_t t = from + 1; t <= to; ++t) {
    auto& bucket = wheel_[t % kWheelBuckets];
    due.insert(due.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  wheel_cursor_ns_ = now_ns;
  for (ConnId id : due) {
    Conn* c = FindConn(id);
    if (c == nullptr) continue;  // stale entry: conn already gone
    const uint64_t deadline = c->last_activity_ns + idle_ns;
    if (now_ns < deadline) {
      // Traffic since this entry was filed: lazy re-arm at the real
      // deadline. Activity never touches the wheel.
      ScheduleIdleCheck(id, deadline);
      continue;
    }
    if (opts_.probe_type != 0 && !c->probe_sent) {
      // One probe per silent period: a live-but-quiet peer answers (the
      // client echoes unsolicited pings) and the answer re-arms the timer.
      c->probe_sent = true;
      BESS_COUNT("server.overload.idle_probe");
      MsgSocket::QueueFrame(opts_.probe_type, 0, "", &c->out);
      FlushConn(id);
      if (FindConn(id) != nullptr) {
        ScheduleIdleCheck(id, now_ns + idle_ns);
      }
      continue;
    }
    // Probed and still silent (or probing disabled): half-open or dead.
    BESS_COUNT("server.overload.idle_reaped");
    BESS_DEBUG("reactor: reaping idle conn " << id);
    DestroyConn(id, /*invoke_on_close=*/true);
  }
}

void Reactor::CheckWorkers(uint64_t now_ns) {
  const uint64_t limit_ns = opts_.watchdog_ms * 1000000ull;
  int stuck = 0;
  for (int i = 0; i < num_workers_; ++i) {
    const uint64_t since =
        worker_busy_since_ns_[i].load(std::memory_order_relaxed);
    if (since == 0 || now_ns - since <= limit_ns) continue;
    ++stuck;
    if (worker_reported_stamp_[i] != since) {
      // New incident (same task still running on a later pass is not
      // re-counted): surface it once per stuck task.
      worker_reported_stamp_[i] = since;
      BESS_COUNT("server.overload.worker_stuck");
      BESS_ERROR("reactor: worker " << i << " stuck for "
                                    << (now_ns - since) / 1000000ull << " ms");
    }
  }
  stuck_workers_.store(stuck, std::memory_order_relaxed);
}

void Reactor::DestroyConn(ConnId id, bool invoke_on_close) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  // Move the conn out before the callback so a re-entrant CloseConn for the
  // same id is a no-op.
  std::unique_ptr<Conn> conn = std::move(it->second);
  conns_.erase(it);
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn->sock.fd(), nullptr);
  if (invoke_on_close && conn->handler.on_close) {
    conn->handler.on_close(id);
  }
  conn->sock.Close();
}

Reactor::Conn* Reactor::FindConn(ConnId id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void Reactor::WorkerLoop(int index) {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] { return !work_.empty() || !work_accepting_; });
      if (work_.empty()) return;  // accepting == false and drained
      fn = std::move(work_.front());
      work_.pop_front();
      BESS_GAUGE_SUB("server.reactor.queue_depth", 1);
    }
    worker_busy_since_ns_[index].store(MonotonicNs(),
                                       std::memory_order_relaxed);
    fn();
    worker_busy_since_ns_[index].store(0, std::memory_order_relaxed);
  }
}

}  // namespace bess
