#include "server/protocol.h"

#include "os/socket.h"

namespace bess {

Status DecodeStatusReply(const Message& msg) {
  if (msg.type == kMsgOk) return Status::OK();
  if (msg.type != kMsgError || msg.payload.empty()) {
    return Status::Protocol("malformed reply (type " +
                            std::to_string(msg.type) + ")");
  }
  const auto code = static_cast<StatusCode>(msg.payload[0]);
  const std::string text = msg.payload.substr(1);
  switch (code) {
    case StatusCode::kNotFound: return Status::NotFound(text);
    case StatusCode::kCorruption: return Status::Corruption(text);
    case StatusCode::kNotSupported: return Status::NotSupported(text);
    case StatusCode::kInvalidArgument: return Status::InvalidArgument(text);
    case StatusCode::kIOError: return Status::IOError(text);
    case StatusCode::kBusy: return Status::Busy(text);
    case StatusCode::kDeadlock: return Status::Deadlock(text);
    case StatusCode::kAborted: return Status::Aborted(text);
    case StatusCode::kNoSpace: return Status::NoSpace(text);
    case StatusCode::kProtocol: return Status::Protocol(text);
    case StatusCode::kDeadlineExceeded: return Status::DeadlineExceeded(text);
    case StatusCode::kRetryLater: return Status::RetryLater(text);
    default: return Status::Internal(text);
  }
}

void EncodePageSet(const std::vector<PageImage>& pages, std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(pages.size()));
  for (const PageImage& img : pages) {
    PutFixed64(out, PageAddr{img.db, img.area, img.page}.Pack());
    out->append(img.bytes);
  }
}

Result<std::vector<PageImage>> DecodePageSet(Slice payload) {
  Decoder dec(payload);
  const uint32_t n = dec.GetFixed32();
  if (!dec.ok() || n > (1u << 20)) {
    return Status::Protocol("bad page-set header");
  }
  std::vector<PageImage> pages;
  pages.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const PageAddr addr = PageAddr::Unpack(dec.GetFixed64());
    Slice bytes = dec.GetBytes(kPageSize);
    if (!dec.ok()) return Status::Protocol("truncated page set");
    PageImage img;
    img.db = addr.db;
    img.area = addr.area;
    img.page = addr.page;
    img.bytes = bytes.ToString();
    pages.push_back(std::move(img));
  }
  return pages;
}

void NewSegmentReply::EncodeTo(std::string* out) const {
  PutFixed64(out, id.Pack());
  PutFixed32(out, slotted_pages);
  PutFixed32(out, slot_capacity);
  PutFixed16(out, outbound_capacity);
  PutFixed16(out, data_area);
  PutFixed32(out, data_first_page);
  PutFixed32(out, data_page_count);
}

Result<NewSegmentReply> NewSegmentReply::DecodeFrom(Slice payload) {
  Decoder dec(payload);
  NewSegmentReply r;
  r.id = SegmentId::Unpack(dec.GetFixed64());
  r.slotted_pages = dec.GetFixed32();
  r.slot_capacity = dec.GetFixed32();
  r.outbound_capacity = dec.GetFixed16();
  r.data_area = dec.GetFixed16();
  r.data_first_page = dec.GetFixed32();
  r.data_page_count = dec.GetFixed32();
  if (!dec.ok()) return Status::Protocol("truncated NewSegmentReply");
  return r;
}

}  // namespace bess
