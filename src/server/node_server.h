// The BeSS node server (paper §3, Figure 2-3).
//
// "A BeSS node server is a BeSS server that does not own any storage areas.
// Consequently, each node server is a client of the BeSS servers that acts
// as a server for the local applications. The node server establishes a
// cache on the node it is running and is responsible for fetching the data
// requested by the local applications from the BeSS servers that own the
// data. In addition, the node server acquires locks on behalf of the local
// applications and responds to callback requests issued by BeSS servers."
//
// Local applications speak the same protocol to the node server that they
// would speak to a real server; page requests are served from the node
// cache when possible, lock requests are resolved locally first and then
// covered by a node-level lock cached from the upstream server.
#ifndef BESS_SERVER_NODE_SERVER_H_
#define BESS_SERVER_NODE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/frame_table.h"
#include "os/socket.h"
#include "server/protocol.h"
#include "txn/lock_manager.h"

namespace bess {

class NodeServer {
 public:
  struct Options {
    std::string socket_path;    ///< where local applications connect
    std::string upstream_path;  ///< the owning BeSS server
    uint32_t cache_pages = 4096;
    uint32_t upstream_latency_us = 0;  ///< simulated WAN/LAN link cost
    int lock_timeout_ms = kLockTimeoutMillis;
  };

  struct Stats {
    uint64_t local_requests = 0;
    uint64_t cache_hits = 0;
    uint64_t upstream_fetches = 0;
    uint64_t locks_forwarded = 0;
    uint64_t lock_cache_hits = 0;   ///< node lock already covers the request
    uint64_t upstream_callbacks = 0;
    uint64_t cache_invalidations = 0;
  };

  static Result<std::unique_ptr<NodeServer>> Start(Options options);
  ~NodeServer();

  void Stop();
  Stats stats() const;

 private:
  struct LocalSession {
    uint64_t id;
    MsgSocket main;
  };

  NodeServer() = default;

  Status Init();
  void AcceptLoop();
  void ServeSession(std::shared_ptr<LocalSession> session);
  Status HandleRequest(LocalSession& session, const Message& msg,
                       std::string* reply, uint16_t* reply_type);
  Status Forward(const Message& msg, Message* reply);
  Status UpstreamCall(uint16_t type, const std::string& payload,
                      Message* reply);
  Status EnsureUpstreamLock(uint64_t key, LockMode mode, int timeout_ms);
  void UpstreamCallbackLoop();

  // Node page cache (write-through on local commits): a heap-placement
  // frame-core configuration with LRU-2 replacement and no backing I/O —
  // misses are resolved upstream by the caller, invalidated pages drop.
  bool CacheGet(uint64_t page_key, std::string* bytes);
  void CachePut(uint64_t page_key, std::string bytes);
  void CacheInvalidateAll();

  Options options_;
  MsgListener listener_;
  MsgSocket upstream_;
  std::mutex upstream_mutex_;
  MsgSocket upstream_callback_;
  uint64_t upstream_session_ = 0;

  std::thread accept_thread_;
  std::thread callback_thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> next_session_{1};

  LockManager local_locks_;

  mutable std::mutex mutex_;
  std::unique_ptr<HeapPlacement> cache_placement_;
  std::unique_ptr<FrameTable> page_cache_;
  std::unordered_map<uint64_t, LockMode> node_locks_;  // cached upstream locks
  std::vector<std::shared_ptr<LocalSession>> sessions_;
  std::vector<std::thread> session_threads_;
  mutable Stats stats_;
};

}  // namespace bess

#endif  // BESS_SERVER_NODE_SERVER_H_
