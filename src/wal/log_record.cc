#include "wal/log_record.h"

namespace bess {

void LogRecord::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type));
  PutFixed64(out, txn);
  PutFixed64(out, prev_lsn);
  switch (type) {
    case LogRecordType::kPageWrite:
      PutFixed64(out, page.Pack());
      PutLengthPrefixed(out, before);
      PutLengthPrefixed(out, after);
      break;
    case LogRecordType::kClr:
      PutFixed64(out, page.Pack());
      PutFixed64(out, undo_next);
      PutLengthPrefixed(out, after);
      break;
    case LogRecordType::kFullPageImage:
      PutFixed64(out, page.Pack());
      PutLengthPrefixed(out, after);
      break;
    case LogRecordType::kIndexPut:
    case LogRecordType::kIndexDelete:
      PutFixed64(out, page.Pack());
      PutFixed32(out, index_area);
      PutLengthPrefixed(out, ikey);
      PutLengthPrefixed(out, ival);
      PutLengthPrefixed(out, iold);
      out->push_back(iold_present ? 1 : 0);
      PutLengthPrefixed(out, after);
      break;
    case LogRecordType::kIndexSmo:
      PutFixed32(out, index_area);
      PutFixed32(out, static_cast<uint32_t>(smo_pages.size()));
      for (const SmoPage& p : smo_pages) {
        PutFixed64(out, p.page.Pack());
        PutLengthPrefixed(out, p.image);
      }
      break;
    case LogRecordType::kCheckpoint:
      PutFixed32(out, static_cast<uint32_t>(active_txns.size()));
      for (const ActiveTxn& t : active_txns) {
        PutFixed64(out, t.txn);
        PutFixed64(out, t.last_lsn);
      }
      PutFixed32(out, static_cast<uint32_t>(dirty_pages.size()));
      for (const DirtyPage& d : dirty_pages) {
        PutFixed64(out, d.page.Pack());
        PutFixed64(out, d.rec_lsn);
      }
      PutFixed64(out, redo_floor);
      break;
    default:
      break;
  }
}

Result<LogRecord> LogRecord::DecodeFrom(Slice payload) {
  if (payload.empty()) return Status::Corruption("empty log record");
  LogRecord rec;
  rec.type = static_cast<LogRecordType>(payload[0]);
  payload.remove_prefix(1);
  Decoder dec(payload);
  rec.txn = dec.GetFixed64();
  rec.prev_lsn = dec.GetFixed64();
  switch (rec.type) {
    case LogRecordType::kBegin:
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
    case LogRecordType::kEnd:
    case LogRecordType::kPrepare:
      break;
    case LogRecordType::kPageWrite:
      rec.page = PageAddr::Unpack(dec.GetFixed64());
      rec.before = dec.GetLengthPrefixed().ToString();
      rec.after = dec.GetLengthPrefixed().ToString();
      break;
    case LogRecordType::kClr:
      rec.page = PageAddr::Unpack(dec.GetFixed64());
      rec.undo_next = dec.GetFixed64();
      rec.after = dec.GetLengthPrefixed().ToString();
      break;
    case LogRecordType::kFullPageImage:
      rec.page = PageAddr::Unpack(dec.GetFixed64());
      rec.after = dec.GetLengthPrefixed().ToString();
      break;
    case LogRecordType::kIndexPut:
    case LogRecordType::kIndexDelete: {
      rec.page = PageAddr::Unpack(dec.GetFixed64());
      rec.index_area = static_cast<uint16_t>(dec.GetFixed32());
      rec.ikey = dec.GetLengthPrefixed().ToString();
      rec.ival = dec.GetLengthPrefixed().ToString();
      rec.iold = dec.GetLengthPrefixed().ToString();
      Slice flag = dec.GetBytes(1);
      rec.iold_present = dec.ok() && flag[0] != 0;
      rec.after = dec.GetLengthPrefixed().ToString();
      break;
    }
    case LogRecordType::kIndexSmo: {
      rec.index_area = static_cast<uint16_t>(dec.GetFixed32());
      uint32_t np = dec.GetFixed32();
      if (!dec.ok() || np > 64) {
        return Status::Corruption("bad index SMO record");
      }
      for (uint32_t i = 0; i < np; ++i) {
        SmoPage p;
        p.page = PageAddr::Unpack(dec.GetFixed64());
        p.image = dec.GetLengthPrefixed().ToString();
        rec.smo_pages.push_back(std::move(p));
      }
      break;
    }
    case LogRecordType::kCheckpoint: {
      uint32_t nt = dec.GetFixed32();
      if (!dec.ok() || nt > 1u << 20) {
        return Status::Corruption("bad checkpoint record");
      }
      for (uint32_t i = 0; i < nt; ++i) {
        ActiveTxn t;
        t.txn = dec.GetFixed64();
        t.last_lsn = dec.GetFixed64();
        rec.active_txns.push_back(t);
      }
      uint32_t nd = dec.GetFixed32();
      if (!dec.ok() || nd > 1u << 20) {
        return Status::Corruption("bad checkpoint record");
      }
      for (uint32_t i = 0; i < nd; ++i) {
        DirtyPage d;
        d.page = PageAddr::Unpack(dec.GetFixed64());
        d.rec_lsn = dec.GetFixed64();
        rec.dirty_pages.push_back(d);
      }
      rec.redo_floor = dec.GetFixed64();
      break;
    }
    default:
      return Status::Corruption("unknown log record type " +
                                std::to_string(static_cast<int>(rec.type)));
  }
  if (!dec.ok()) return Status::Corruption("truncated log record");
  return rec;
}

}  // namespace bess
