#include "wal/recovery.h"

#include <unordered_set>

#include "obs/trace.h"
#include "storage/page_io.h"
#include "util/crc32c.h"

namespace bess {

Status RecoveryManager::Run() {
  BESS_SPAN("wal.recovery");
  BESS_COUNT("wal.recovery.runs");
  BESS_ASSIGN_OR_RETURN(Lsn checkpoint, log_->GetCheckpointLsn());
  {
    BESS_SPAN("wal.recovery.analysis");
    BESS_RETURN_IF_ERROR(Analysis(checkpoint));
  }
  {
    BESS_SPAN("wal.recovery.redo");
    BESS_RETURN_IF_ERROR(Redo());
  }
  {
    BESS_SPAN("wal.recovery.undo");
    BESS_RETURN_IF_ERROR(Undo());
  }
  stats_.recovered_tail_lsn = log_->tail_lsn();
  stats_.torn_tail = log_->tail_was_torn();
  return sink_->Sync();
}

Status RecoveryManager::Analysis(Lsn checkpoint_lsn) {
  // Seed the transaction table from the checkpoint, then roll forward.
  if (checkpoint_lsn != kNullLsn) {
    BESS_ASSIGN_OR_RETURN(LogRecord cp, log_->ReadRecord(checkpoint_lsn));
    if (cp.type != LogRecordType::kCheckpoint) {
      return Status::Corruption("master record does not point at checkpoint");
    }
    for (const LogRecord::ActiveTxn& t : cp.active_txns) {
      txns_[t.txn].last_lsn = t.last_lsn;
    }
  }
  return log_->Scan(checkpoint_lsn, [&](Lsn lsn, const LogRecord& rec) {
    stats_.records_scanned++;
    switch (rec.type) {
      case LogRecordType::kBegin:
        txns_[rec.txn];  // materialize
        break;
      case LogRecordType::kCommit:
        txns_[rec.txn].committed = true;
        break;
      case LogRecordType::kEnd:
        txns_[rec.txn].ended = true;
        break;
      case LogRecordType::kAbort:
      case LogRecordType::kPrepare:
        // Presumed abort: a prepared transaction with no commit record is
        // a loser after restart.
        break;
      case LogRecordType::kPageWrite:
      case LogRecordType::kClr:
        txns_[rec.txn].last_lsn = lsn;
        break;
      case LogRecordType::kCheckpoint:
        break;
      case LogRecordType::kFullPageImage:
        // Media-repair images never join a transaction's undo chain.
        break;
    }
    return Status::OK();
  });
}

Status RecoveryManager::Redo() {
  // Repeating history: blindly reapply every after-image in LSN order.
  // Full-page physical images make this idempotent without page LSNs.
  return log_->Scan(kNullLsn, [&](Lsn lsn, const LogRecord& rec) {
    if (rec.type == LogRecordType::kPageWrite ||
        rec.type == LogRecordType::kClr ||
        rec.type == LogRecordType::kFullPageImage) {
      if (!rec.after.empty()) {
        BESS_RETURN_IF_ERROR(
            sink_->WritePage(rec.page, rec.after.data(), lsn));
        stats_.redo_pages++;
        BESS_COUNT("wal.recovery.redo.pages");
      }
    }
    return Status::OK();
  });
}

Status RecoveryManager::Undo() {
  for (auto& [txn, state] : txns_) {
    if (state.committed || state.ended) {
      stats_.winner_txns++;
      continue;
    }
    stats_.loser_txns++;
    // Walk the prev_lsn chain backwards, restoring before-images. CLRs
    // from a previous (crashed) undo attempt are skipped via undo_next,
    // so undo never undoes its own compensation.
    Lsn cur = state.last_lsn;
    while (cur != kNullLsn) {
      BESS_ASSIGN_OR_RETURN(LogRecord rec, log_->ReadRecord(cur));
      if (rec.type == LogRecordType::kClr) {
        cur = rec.undo_next;
        continue;
      }
      if (rec.type == LogRecordType::kPageWrite) {
        stats_.undo_records++;
        BESS_COUNT("wal.recovery.undo.records");
        if (!rec.before.empty()) {
          BESS_RETURN_IF_ERROR(
              sink_->WritePage(rec.page, rec.before.data(), kNullLsn));
        }
        LogRecord clr;
        clr.type = LogRecordType::kClr;
        clr.txn = txn;
        clr.prev_lsn = state.last_lsn;
        clr.page = rec.page;
        clr.after = rec.before;  // the image the CLR (re)applies on redo
        clr.undo_next = rec.prev_lsn;
        BESS_ASSIGN_OR_RETURN(Lsn clr_lsn, log_->Append(clr));
        state.last_lsn = clr_lsn;
        stats_.clrs_written++;
      }
      cur = rec.prev_lsn;
    }
    LogRecord end;
    end.type = LogRecordType::kEnd;
    end.txn = txn;
    end.prev_lsn = state.last_lsn;
    BESS_RETURN_IF_ERROR(log_->AppendAndFlush(end).status());
  }
  return Status::OK();
}

Status RepairPageFromLog(LogManager* log, uint16_t db, uint16_t area,
                         PageId page, uint32_t expected_masked_crc,
                         std::string* image) {
  BESS_SPAN("wal.page_repair");
  const PageAddr target{db, area, page};
  // Pass 1: which transactions committed? Only their after-images describe
  // states that were ever made durable on purpose.
  std::unordered_set<TxnId> committed;
  BESS_RETURN_IF_ERROR(log->Scan(kNullLsn, [&](Lsn, const LogRecord& rec) {
    if (rec.type == LogRecordType::kCommit) committed.insert(rec.txn);
    return Status::OK();
  }));
  // Pass 2: the *last* byte-exact candidate wins (highest LSN = the image
  // the trailer was stamped from, or an identical rewrite of it).
  bool found = false;
  BESS_RETURN_IF_ERROR(log->Scan(kNullLsn, [&](Lsn, const LogRecord& rec) {
    const bool candidate =
        rec.type == LogRecordType::kFullPageImage ||
        rec.type == LogRecordType::kClr ||
        (rec.type == LogRecordType::kPageWrite && committed.count(rec.txn));
    if (!candidate || !(rec.page == target)) return Status::OK();
    if (rec.after.size() != kPageSize) return Status::OK();
    if (crc32c::Mask(PageCrc(area, page, rec.after.data())) !=
        expected_masked_crc) {
      return Status::OK();
    }
    *image = rec.after;
    found = true;
    return Status::OK();
  }));
  if (!found) {
    return Status::NotFound("no byte-exact WAL image for page " +
                            std::to_string(page));
  }
  return Status::OK();
}

}  // namespace bess
