#include "wal/recovery.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "obs/trace.h"
#include "storage/page_io.h"
#include "util/crc32c.h"

namespace bess {

Status RecoveryManager::Run() {
  BESS_SPAN("wal.recovery");
  BESS_COUNT("wal.recovery.runs");
  BESS_ASSIGN_OR_RETURN(Lsn checkpoint, log_->GetCheckpointLsn());
  {
    BESS_SPAN("wal.recovery.analysis");
    BESS_RETURN_IF_ERROR(Analysis(checkpoint));
  }
  {
    BESS_SPAN("wal.recovery.redo");
    BESS_RETURN_IF_ERROR(Redo());
  }
  {
    BESS_SPAN("wal.recovery.undo");
    BESS_RETURN_IF_ERROR(Undo());
  }
  stats_.recovered_tail_lsn = log_->tail_lsn();
  stats_.torn_tail = log_->tail_was_torn();
  return sink_->Sync();
}

Status RecoveryManager::Analysis(Lsn checkpoint_lsn) {
  // Establish the redo floor from the checkpoint, then roll the transaction
  // table forward. Without a checkpoint, redo must repeat history from the
  // start of the retained log.
  redo_start_ = kNullLsn;
  Lsn scan_start = checkpoint_lsn;
  if (checkpoint_lsn != kNullLsn) {
    BESS_ASSIGN_OR_RETURN(LogRecord cp, log_->ReadRecord(checkpoint_lsn));
    if (cp.type != LogRecordType::kCheckpoint) {
      return Status::Corruption("master record does not point at checkpoint");
    }
    // The checkpoint's redo floor already folds in the snapshot's dirty-page
    // recLSNs and active transactions' first LSNs; re-min against the dirty
    // pages defensively (it can only lower the floor, never lose redo work).
    redo_start_ = cp.redo_floor;
    for (const LogRecord::DirtyPage& d : cp.dirty_pages) {
      if (d.rec_lsn != kNullLsn &&
          (redo_start_ == kNullLsn || d.rec_lsn < redo_start_)) {
        redo_start_ = d.rec_lsn;
      }
    }
    // Scan from the redo floor, NOT from the checkpoint record. The
    // checkpoint is fuzzy: records appended between its snapshot and the
    // append of the record itself — commit records included — are invisible
    // to the snapshotted transaction table, so seeding from cp.active_txns
    // could resurrect an already-committed transaction as a loser and roll
    // back an acknowledged commit. The floor lower-bounds every snapshotted
    // transaction's first record (it folds in their first LSNs), so scanning
    // from it rebuilds the full table — begin, writes, commit — from the
    // records themselves.
    scan_start = redo_start_;
  }
  return log_->Scan(scan_start, [&](Lsn lsn, const LogRecord& rec) {
    stats_.records_scanned++;
    switch (rec.type) {
      case LogRecordType::kBegin:
        txns_[rec.txn];  // materialize
        break;
      case LogRecordType::kCommit:
        txns_[rec.txn].committed = true;
        break;
      case LogRecordType::kEnd:
        txns_[rec.txn].ended = true;
        break;
      case LogRecordType::kAbort:
      case LogRecordType::kPrepare:
        // Presumed abort: a prepared transaction with no commit record is
        // a loser after restart.
        break;
      case LogRecordType::kPageWrite:
      case LogRecordType::kClr:
      case LogRecordType::kIndexPut:
      case LogRecordType::kIndexDelete:
        txns_[rec.txn].last_lsn = lsn;
        break;
      case LogRecordType::kIndexSmo:
        // Transaction-less nested top action (txn = kNoTxn): structurally
        // valid whether or not any enclosing transaction commits, so it
        // never joins an undo chain — redo-only.
        break;
      case LogRecordType::kCheckpoint:
        break;
      case LogRecordType::kFullPageImage:
        // Media-repair images never join a transaction's undo chain.
        break;
    }
    return Status::OK();
  });
}

namespace {

/// One redo worker: a bounded queue of after-images for the pages hashed to
/// it. Per-page ordering is preserved because a page always hashes to the
/// same worker and the scan feeds items in LSN order.
struct RedoWorker {
  struct Item {
    Lsn lsn;
    PageAddr page;
    std::string after;
  };
  static constexpr size_t kQueueCap = 128;

  std::mutex mu;
  std::condition_variable cv_pop;   // worker waits for items
  std::condition_variable cv_push;  // producer waits for space
  std::deque<Item> queue;
  bool done = false;
  uint64_t pages = 0;
  Status status;
  std::thread thread;

  void RunLoop(PageSink* sink, std::atomic<bool>* failed) {
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_pop.wait(lk, [&] { return done || !queue.empty(); });
        if (queue.empty()) return;
        item = std::move(queue.front());
        queue.pop_front();
        cv_push.notify_one();
      }
      if (failed->load(std::memory_order_relaxed)) continue;  // drain
      Status st = sink->WritePage(item.page, item.after.data(), item.lsn);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lk(mu);
        if (status.ok()) status = st;
        failed->store(true, std::memory_order_relaxed);
        continue;
      }
      pages++;
      BESS_COUNT("wal.recovery.redo.pages");
    }
  }
};

}  // namespace

Status RecoveryManager::Redo() {
  // Repeating history: blindly reapply every after-image, starting at the
  // recLSN floor from analysis. Full-page physical images make replay
  // idempotent without page LSNs, and make pages independent — so the work
  // partitions by page across workers, each applying its pages in LSN order.
  const int workers = std::max(1, opts_.redo_workers);
  stats_.redo_start_lsn = redo_start_;
  stats_.redo_workers = workers;

  if (workers == 1) {
    return log_->Scan(redo_start_, [&](Lsn lsn, const LogRecord& rec) {
      if (rec.type == LogRecordType::kPageWrite ||
          rec.type == LogRecordType::kClr ||
          rec.type == LogRecordType::kFullPageImage ||
          rec.type == LogRecordType::kIndexPut ||
          rec.type == LogRecordType::kIndexDelete) {
        if (!rec.after.empty()) {
          BESS_RETURN_IF_ERROR(
              sink_->WritePage(rec.page, rec.after.data(), lsn));
          stats_.redo_pages++;
          BESS_COUNT("wal.recovery.redo.pages");
        }
      } else if (rec.type == LogRecordType::kIndexSmo) {
        for (const LogRecord::SmoPage& p : rec.smo_pages) {
          BESS_RETURN_IF_ERROR(sink_->WritePage(p.page, p.image.data(), lsn));
          stats_.redo_pages++;
          BESS_COUNT("wal.recovery.redo.pages");
        }
      }
      return Status::OK();
    });
  }

  std::vector<std::unique_ptr<RedoWorker>> pool;
  std::atomic<bool> failed{false};
  for (int i = 0; i < workers; ++i) {
    auto w = std::make_unique<RedoWorker>();
    w->thread = std::thread([worker = w.get(), this, &failed] {
      worker->RunLoop(sink_, &failed);
    });
    pool.push_back(std::move(w));
  }
  auto push = [&](Lsn lsn, PageAddr page, const std::string& after) {
    RedoWorker& w = *pool[std::hash<uint64_t>{}(page.Pack()) % pool.size()];
    std::unique_lock<std::mutex> lk(w.mu);
    w.cv_push.wait(lk, [&] {
      return w.queue.size() < RedoWorker::kQueueCap ||
             failed.load(std::memory_order_relaxed);
    });
    w.queue.push_back({lsn, page, after});
    w.cv_pop.notify_one();
  };
  Status scan_st = log_->Scan(redo_start_, [&](Lsn lsn, const LogRecord& rec) {
    const bool single = rec.type == LogRecordType::kPageWrite ||
                        rec.type == LogRecordType::kClr ||
                        rec.type == LogRecordType::kFullPageImage ||
                        rec.type == LogRecordType::kIndexPut ||
                        rec.type == LogRecordType::kIndexDelete;
    if (!single && rec.type != LogRecordType::kIndexSmo) return Status::OK();
    if (failed.load(std::memory_order_relaxed)) {
      return Status::Aborted("redo worker failed");  // stop scanning early
    }
    if (single) {
      if (!rec.after.empty()) push(lsn, rec.page, rec.after);
    } else {
      for (const LogRecord::SmoPage& p : rec.smo_pages) {
        push(lsn, p.page, p.image);
      }
    }
    return Status::OK();
  });
  Status worker_st;
  for (auto& w : pool) {
    {
      std::lock_guard<std::mutex> lk(w->mu);
      w->done = true;
    }
    w->cv_pop.notify_all();
    w->thread.join();
    stats_.redo_pages += w->pages;
    if (worker_st.ok() && !w->status.ok()) worker_st = w->status;
  }
  // A worker failure is the root cause; the scan's Aborted is just the
  // early-stop signal it triggered.
  if (!worker_st.ok()) return worker_st;
  return scan_st;
}

Status RecoveryManager::Undo() {
  for (auto& [txn, state] : txns_) {
    if (state.committed || state.ended) {
      stats_.winner_txns++;
      continue;
    }
    stats_.loser_txns++;
    // Walk the prev_lsn chain backwards, restoring before-images. CLRs
    // from a previous (crashed) undo attempt are skipped via undo_next,
    // so undo never undoes its own compensation. Appends here are exempt
    // from log-full backpressure: recovery must complete even (especially)
    // on a full log, and its records are what let the log shrink again.
    Lsn cur = state.last_lsn;
    while (cur != kNullLsn) {
      BESS_ASSIGN_OR_RETURN(LogRecord rec, log_->ReadRecord(cur));
      if (rec.type == LogRecordType::kClr) {
        cur = rec.undo_next;
        continue;
      }
      if (rec.type == LogRecordType::kIndexSmo) {
        // Splits are redo-only nested top actions: structurally valid
        // whether or not the enclosing transaction commits. Never reversed.
        cur = rec.prev_lsn;
        continue;
      }
      if (rec.type == LogRecordType::kIndexPut ||
          rec.type == LogRecordType::kIndexDelete) {
        stats_.undo_records++;
        BESS_COUNT("wal.recovery.undo.records");
        if (opts_.index_undo) {
          Lsn new_tail = state.last_lsn;
          BESS_RETURN_IF_ERROR(
              opts_.index_undo(rec, state.last_lsn, &new_tail));
          if (new_tail != state.last_lsn) {
            state.last_lsn = new_tail;
            stats_.clrs_written++;
          }
        }
        cur = rec.prev_lsn;
        continue;
      }
      if (rec.type == LogRecordType::kPageWrite) {
        stats_.undo_records++;
        BESS_COUNT("wal.recovery.undo.records");
        if (!rec.before.empty()) {
          BESS_RETURN_IF_ERROR(
              sink_->WritePage(rec.page, rec.before.data(), kNullLsn));
        }
        LogRecord clr;
        clr.type = LogRecordType::kClr;
        clr.txn = txn;
        clr.prev_lsn = state.last_lsn;
        clr.page = rec.page;
        clr.after = rec.before;  // the image the CLR (re)applies on redo
        clr.undo_next = rec.prev_lsn;
        BESS_ASSIGN_OR_RETURN(Lsn clr_lsn, log_->AppendUnthrottled(clr));
        state.last_lsn = clr_lsn;
        stats_.clrs_written++;
      }
      cur = rec.prev_lsn;
    }
    LogRecord end;
    end.type = LogRecordType::kEnd;
    end.txn = txn;
    end.prev_lsn = state.last_lsn;
    BESS_ASSIGN_OR_RETURN(Lsn end_lsn, log_->AppendUnthrottled(end));
    BESS_RETURN_IF_ERROR(log_->Flush(end_lsn));
  }
  return Status::OK();
}

Status RepairPageFromLog(LogManager* log, uint16_t db, uint16_t area,
                         PageId page, uint32_t expected_masked_crc,
                         std::string* image) {
  BESS_SPAN("wal.page_repair");
  const PageAddr target{db, area, page};
  // Pass 1: which transactions committed? Only their after-images describe
  // states that were ever made durable on purpose.
  std::unordered_set<TxnId> committed;
  BESS_RETURN_IF_ERROR(log->Scan(kNullLsn, [&](Lsn, const LogRecord& rec) {
    if (rec.type == LogRecordType::kCommit) committed.insert(rec.txn);
    return Status::OK();
  }));
  // Pass 2: the *last* byte-exact candidate wins (highest LSN = the image
  // the trailer was stamped from, or an identical rewrite of it).
  bool found = false;
  auto try_image = [&](const std::string& bytes) {
    if (bytes.size() != kPageSize) return;
    if (crc32c::Mask(PageCrc(area, page, bytes.data())) !=
        expected_masked_crc) {
      return;
    }
    *image = bytes;
    found = true;
  };
  BESS_RETURN_IF_ERROR(log->Scan(kNullLsn, [&](Lsn, const LogRecord& rec) {
    if (rec.type == LogRecordType::kIndexSmo) {
      // Index pages are steal/no-force: any logged image can be the one the
      // trailer was stamped from, committed or not — the CRC match is the
      // byte-exactness proof.
      for (const LogRecord::SmoPage& p : rec.smo_pages) {
        if (p.page == target) try_image(p.image);
      }
      return Status::OK();
    }
    const bool candidate =
        rec.type == LogRecordType::kFullPageImage ||
        rec.type == LogRecordType::kClr ||
        rec.type == LogRecordType::kIndexPut ||
        rec.type == LogRecordType::kIndexDelete ||
        (rec.type == LogRecordType::kPageWrite && committed.count(rec.txn));
    if (!candidate || !(rec.page == target)) return Status::OK();
    try_image(rec.after);
    return Status::OK();
  }));
  if (!found) {
    return Status::NotFound("no byte-exact WAL image for page " +
                            std::to_string(page));
  }
  return Status::OK();
}

}  // namespace bess
