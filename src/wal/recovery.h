// ARIES-style restart recovery: analysis, redo (repeating history), undo
// with compensation records.
//
// With a fuzzy checkpoint (log_record.h kCheckpoint) in the master record,
// analysis seeds its transaction table from the checkpoint snapshot and
// scans forward from the checkpoint LSN, and redo starts at the checkpoint's
// redo floor — min over the snapshot's dirty-page recLSNs and active
// transactions' first LSNs — rather than the start of the log. Restart cost
// is then bounded by the dirty set at the last checkpoint, not log length.
//
// Redo partitions work by page across a small worker pool (redo of full
// physical images is blind and idempotent, so pages are independent; only
// per-page ordering matters, which hashing each page to a fixed worker
// preserves).
#ifndef BESS_WAL_RECOVERY_H_
#define BESS_WAL_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "wal/log_manager.h"

namespace bess {

/// Where recovered page images land (the storage areas, or a test double).
/// `lsn` is the LSN of the log record being applied (kNullLsn for undo
/// before-images) so the sink can stamp page trailers (DESIGN.md §7).
/// With redo_workers > 1, WritePage must be thread-safe for distinct pages
/// (StorageArea::WritePages is).
class PageSink {
 public:
  virtual ~PageSink() = default;
  virtual Status WritePage(PageAddr addr, const void* bytes, Lsn lsn) = 0;
  virtual Status Sync() = 0;
};

struct RecoveryOptions {
  /// Redo worker threads; <= 1 applies images inline on the scanning thread.
  int redo_workers = 0;

  /// Logical undo hook for index records (DESIGN.md §14). Called during the
  /// undo pass for each loser kIndexPut/kIndexDelete: the callback must
  /// reverse the logical operation against the *recovered* tree (re-descend;
  /// a split may have moved the key) and append a CLR whose prev_lsn is
  /// `chain_tail` and whose undo_next is the record's prev_lsn, returning
  /// the CLR's LSN in *new_tail. When null, index records are skipped (the
  /// caller has no live trees — tests exercising only object pages).
  std::function<Status(const LogRecord& rec, Lsn chain_tail, Lsn* new_tail)>
      index_undo;
};

struct RecoveryStats {
  uint64_t records_scanned = 0;
  uint64_t redo_pages = 0;
  uint64_t undo_records = 0;
  uint64_t clrs_written = 0;
  uint64_t loser_txns = 0;
  uint64_t winner_txns = 0;
  Lsn redo_start_lsn = kNullLsn;  ///< where redo began (the recLSN floor)
  int redo_workers = 1;
  Lsn recovered_tail_lsn = kNullLsn;  ///< log tail after the torn-tail scan
  bool torn_tail = false;  ///< the log ended in a truncated/garbage record
};

/// Runs the three ARIES passes over `log`, applying page images to `sink`.
/// Safe to re-run after a crash during recovery itself (CLRs make undo
/// idempotent; redo is blind physical reapplication).
class RecoveryManager {
 public:
  RecoveryManager(LogManager* log, PageSink* sink,
                  RecoveryOptions options = RecoveryOptions())
      : log_(log), sink_(sink), opts_(options) {}

  Status Run();

  const RecoveryStats& stats() const { return stats_; }

 private:
  struct TxnState {
    Lsn last_lsn = kNullLsn;
    bool committed = false;
    bool ended = false;
  };

  Status Analysis(Lsn checkpoint_lsn);
  Status Redo();
  Status Undo();

  LogManager* log_;
  PageSink* sink_;
  RecoveryOptions opts_;
  std::unordered_map<TxnId, TxnState> txns_;
  Lsn redo_start_ = kNullLsn;  ///< set by Analysis
  RecoveryStats stats_;
};

/// Single-page media repair (DESIGN.md §7): scans `log` for the most recent
/// image of (db, area, page) whose masked trailer CRC equals
/// `expected_masked_crc` and returns it in `image`. Candidate images are
/// full-page-image records and CLRs (always safe: they describe durable
/// states) plus kPageWrite after-images of *committed* transactions.
/// NotFound when no byte-exact image exists — the caller quarantines.
Status RepairPageFromLog(LogManager* log, uint16_t db, uint16_t area,
                         PageId page, uint32_t expected_masked_crc,
                         std::string* image);

}  // namespace bess

#endif  // BESS_WAL_RECOVERY_H_
