// LogManager: an append-only write-ahead log on one file.
//
// Physical layout:
//   [header page: magic, last checkpoint LSN]
//   then records: [u32 payload_len][u32 masked crc32c(payload)][payload]
//
// LSN = byte offset of the record. Appends are buffered in memory; Flush
// makes everything up to an LSN durable. Commit flushes use *group commit*
// (ARIES lineage; cf. Shore-MT's scalable logging): committers append under
// a short buffer latch, then the first committer to need durability becomes
// the batch leader — it snaps the whole buffer, writes and fsyncs it once
// with the latch released, and wakes every follower whose LSN the batch
// covered. Followers arriving mid-fsync park on the batch condition and
// either find themselves covered on wakeup or lead the next batch. One
// fsync thus pays for N commits; the `wal.group_commit.batch_size`
// histogram records N per fsync and `wal.fsync` its latency.
#ifndef BESS_WAL_LOG_MANAGER_H_
#define BESS_WAL_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>

#include "os/file.h"
#include "wal/log_record.h"

namespace bess {

class LogManager {
 public:
  /// Opens (creating if necessary) the log at `path`.
  static Result<std::unique_ptr<LogManager>> Open(const std::string& path);

  /// Appends a record; returns its LSN. Not yet durable.
  Result<Lsn> Append(const LogRecord& rec);

  /// Appends and makes durable up to and including this record.
  Result<Lsn> AppendAndFlush(const LogRecord& rec);

  /// Ensures everything up to `lsn` is durable.
  Status Flush(Lsn lsn);

  /// Scans all records from `from` (kNullLsn = start of log), invoking
  /// `fn(lsn, record)`. Stops cleanly at a truncated/corrupt tail (the
  /// expected state after a crash mid-append).
  Status Scan(Lsn from,
              const std::function<Status(Lsn, const LogRecord&)>& fn);

  /// Reads a single record at `lsn` (random access; used by undo to walk
  /// prev_lsn chains).
  Result<LogRecord> ReadRecord(Lsn lsn);

  /// Records the LSN of the latest checkpoint in the log header (the
  /// "master record"), durably.
  Status SetCheckpointLsn(Lsn lsn);
  Result<Lsn> GetCheckpointLsn();

  /// Byte offset one past the last appended record.
  Lsn tail_lsn() const;
  Lsn flushed_lsn() const;

  /// Discards the whole log and starts fresh (after a full checkpoint has
  /// made it redundant).
  Status Reset();

  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }

  /// True if the tail scan at open stopped short of the file size: the log
  /// ended in a truncated or corrupt record (crash mid-append). The torn
  /// bytes are dead — the next Append overwrites them.
  bool tail_was_torn() const { return torn_tail_; }

  /// Non-OK once a Sync has failed: the log is wedged (see fsyncgate — after
  /// a failed fsync the kernel may have dropped the dirty pages, so "retry
  /// and hope" silently loses log records). All further Append/Flush/
  /// SetCheckpointLsn/Reset return this status; recovery requires reopening.
  Status wedged() const;

 private:
  explicit LogManager(File file) : file_(std::move(file)) {}

  Status LoadExisting();
  /// Waits (with `lk` held on mutex_) until no batch is in flight, then
  /// claims flush ownership. Used by Flush leaders and by Reset/
  /// SetCheckpointLsn, which must not run file ops concurrently with a
  /// leader writing outside the mutex. Returns wedged_ if the log wedged
  /// while waiting.
  Status ClaimFlushOwnership(std::unique_lock<std::mutex>& lk);
  void ReleaseFlushOwnership();  // must hold mutex_

  File file_;
  mutable std::mutex mutex_;
  /// Group-commit state: followers park here; the leader holds
  /// flush_in_progress_ while its write+fsync runs outside the mutex.
  std::condition_variable flush_cv_;
  bool flush_in_progress_ = false;
  uint64_t pending_syncers_ = 0;  ///< Flush callers awaiting the next fsync
  std::string buffer_;       // appended but unwritten bytes
  Lsn buffer_start_ = 0;     // LSN of buffer_[0]
  Lsn tail_ = 0;
  Lsn flushed_ = 0;
  Lsn checkpoint_lsn_ = kNullLsn;
  bool torn_tail_ = false;  // set once at open by the tail scan
  std::atomic<uint64_t> sync_count_{0};
  Status wedged_;  // sticky first Sync failure; non-OK refuses all mutation
};

}  // namespace bess

#endif  // BESS_WAL_LOG_MANAGER_H_
