// LogManager: a bounded, append-only write-ahead log on recycled segments.
//
// Physical layout — a directory, not a single file:
//   master            two ping-pong master-record slots (version, checkpoint
//                     LSN, oldest LSN, crc); the reader picks the valid slot
//                     with the highest version, so a torn master write can
//                     never lose both copies
//   wal-<seq>.log     log segments: [header page: magic, seq, base LSN]
//                     then records: [u32 len][u32 masked crc32c][payload]
//
// LSNs are monotone byte offsets into the *logical* log stream and never
// reset, even across Reset(): the record at LSN L lives in the segment with
// the largest base <= L, at file offset header + (L - base). Records never
// span segments — when a segment fills, the log rolls to a fresh one whose
// base is the current tail, so the LSN space stays gapless.
//
// Appends are buffered in memory; Flush makes everything up to an LSN
// durable. Commit flushes use *group commit* (ARIES lineage; cf. Shore-MT's
// scalable logging): committers append under a short buffer latch, then the
// first committer to need durability becomes the batch leader — it snaps the
// whole buffer, writes and fsyncs it once with the latch released, and wakes
// every follower whose LSN the batch covered. One fsync thus pays for N
// commits; `wal.group_commit.batch_size` records N per fsync.
//
// Bounding the log: segments wholly below a caller-supplied retention floor
// (min recLSN over the dirty-page table, active transactions' first LSNs —
// see object/database.cc) are recycled by ReleaseSegments, in crash-safe
// order: the master's oldest-LSN bump is made durable *before* any file is
// unlinked, so a crash between the two only leaves garbage segments that the
// next Open deletes. When the retained log exceeds soft_limit_bytes,
// throttled appenders back off (fire the log-full callback, wait for a
// checkpoint to free segments, and fail with NoSpace after a bounded wait) —
// log-full degrades commits gracefully instead of wedging the log.
#ifndef BESS_WAL_LOG_MANAGER_H_
#define BESS_WAL_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "os/file.h"
#include "wal/log_record.h"

namespace bess {

class LogManager {
 public:
  struct Options {
    /// Nominal segment size (header included). A single record larger than
    /// one segment overflows its segment rather than spanning two.
    uint64_t segment_bytes = 4ull << 20;
    /// Retained-log backpressure threshold for throttled appends; 0 = off.
    uint64_t soft_limit_bytes = 0;
    /// How long a throttled append waits for space before NoSpace.
    uint32_t throttle_timeout_ms = 1000;
  };

  /// Opens (creating if necessary) the log directory at `dir`.
  static Result<std::unique_ptr<LogManager>> Open(const std::string& dir,
                                                  Options options);
  static Result<std::unique_ptr<LogManager>> Open(const std::string& dir) {
    return Open(dir, Options());
  }

  /// Appends a record; returns its LSN. Not yet durable. Subject to
  /// log-full backpressure: over the soft limit this fires the log-full
  /// callback, waits up to throttle_timeout_ms for segments to be released,
  /// then returns NoSpace — the log itself stays healthy.
  Result<Lsn> Append(const LogRecord& rec);

  /// Appends exempt from backpressure. For the records that *shrink* the
  /// log — checkpoints and recovery's CLR/End records — which must go
  /// through even (especially) when the log is full.
  Result<Lsn> AppendUnthrottled(const LogRecord& rec);

  /// Appends and makes durable up to and including this record.
  Result<Lsn> AppendAndFlush(const LogRecord& rec);

  /// Ensures everything up to `lsn` is durable.
  Status Flush(Lsn lsn);

  /// Scans records from `from` (kNullLsn = start of the retained log),
  /// invoking `fn(lsn, record)`. Stops cleanly at a truncated/corrupt tail
  /// (the expected state after a crash mid-append).
  Status Scan(Lsn from,
              const std::function<Status(Lsn, const LogRecord&)>& fn);

  /// Reads a single record at `lsn` (random access; used by undo to walk
  /// prev_lsn chains).
  Result<LogRecord> ReadRecord(Lsn lsn);

  /// Records the LSN of the latest checkpoint in the master record,
  /// durably (the master-record swing).
  Status SetCheckpointLsn(Lsn lsn);
  Result<Lsn> GetCheckpointLsn();

  /// Recycles every segment wholly below `floor` (every record the caller
  /// may still need must be >= floor). The master's oldest LSN is bumped
  /// durably *before* any segment file is unlinked. Wakes throttled
  /// appenders when space was freed.
  Status ReleaseSegments(Lsn floor);

  /// Invoked (without internal locks) when a throttled append finds the log
  /// over its soft limit — the hook that kicks a forced checkpoint. The
  /// callback must not call back into this LogManager.
  void SetLogFullCallback(std::function<void()> cb);

  /// Byte offset one past the last appended record.
  Lsn tail_lsn() const;
  Lsn flushed_lsn() const;

  /// Base LSN of the oldest retained segment: every record >= oldest_lsn()
  /// is still readable; anything below may have been recycled. Lock-free —
  /// the FPI-epoch check on the commit path reads this per page.
  Lsn oldest_lsn() const { return oldest_.load(std::memory_order_acquire); }

  /// Bytes of retained log (tail - oldest): what the soft limit throttles.
  uint64_t retained_bytes() const;

  /// True while the retained log is over its soft limit — the signal the
  /// server's admission control uses to shed new transactional work with
  /// RetryLater *before* it reaches a throttled append (DESIGN.md §12).
  bool IsBackpressured() const {
    return opts_.soft_limit_bytes > 0 &&
           retained_bytes() > opts_.soft_limit_bytes;
  }

  size_t segment_count() const;
  /// Paths of the retained segments, base-ascending (tests / tooling).
  std::vector<std::string> SegmentPaths() const;
  std::string master_path() const { return dir_ + "/master"; }

  /// Discards the whole log and starts fresh (after restart recovery has
  /// made it redundant). LSNs do NOT reset: the new epoch's first segment
  /// is based at the old tail.
  Status Reset();

  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }

  /// True if the tail scan at open stopped short of the physical log end:
  /// the log ended in a truncated or corrupt record (crash mid-append).
  bool tail_was_torn() const { return torn_tail_; }

  /// Non-OK once a Sync has failed: the log is wedged (see fsyncgate — after
  /// a failed fsync the kernel may have dropped the dirty pages, so "retry
  /// and hope" silently loses log records). All further Append/Flush/
  /// SetCheckpointLsn/Reset return this status; recovery requires reopening.
  /// Plain write failures (ENOSPC, injected I/O errors) do NOT wedge:
  /// nothing acked durable was lost, the operation just fails.
  Status wedged() const;

 private:
  struct Segment {
    uint64_t seq = 0;
    Lsn base = 0;
    File file;
    /// Bytes were written (at roll time) without an fsync; the next flush
    /// leader must fsync this segment before acking. Guarded by mutex_;
    /// stable while a flush is in flight (rolls skip during flushes).
    bool needs_sync = false;
  };
  using SegmentPtr = std::shared_ptr<Segment>;

  explicit LogManager(std::string dir, Options options)
      : dir_(std::move(dir)), opts_(options) {}

  Status LoadExisting();
  Result<SegmentPtr> CreateSegment(uint64_t seq, Lsn base);
  /// Durably writes the next master version. Write failure returns without
  /// wedging; fsync failure wedges. Caller holds mutex_ with flush
  /// ownership claimed (or is single-threaded inside Open).
  Status WriteMasterLocked(Lsn checkpoint_lsn, Lsn oldest_lsn);
  /// Segment holding `lsn` (largest base <= lsn), or nullptr.
  SegmentPtr SegmentFor(Lsn lsn) const;
  /// Rolls to a fresh segment when the current one is full. Best-effort:
  /// failures leave the log appending to the (overflowing) current segment.
  void MaybeRollLocked();
  Result<Lsn> AppendImpl(const LogRecord& rec, bool throttled);

  /// Waits (with `lk` held on mutex_) until no batch is in flight, then
  /// claims flush ownership. Used by Flush leaders and by Reset/
  /// SetCheckpointLsn/ReleaseSegments, which must not run file ops
  /// concurrently with a leader writing outside the mutex. Returns wedged_
  /// if the log wedged while waiting.
  Status ClaimFlushOwnership(std::unique_lock<std::mutex>& lk);
  void ReleaseFlushOwnership();  // must hold mutex_

  const std::string dir_;
  const Options opts_;
  File master_;
  uint64_t master_version_ = 0;
  mutable std::mutex mutex_;
  /// Group-commit state: followers park here; the leader holds
  /// flush_in_progress_ while its write+fsync runs outside the mutex.
  std::condition_variable flush_cv_;
  /// Throttled appenders park here; ReleaseSegments/Reset signal it.
  std::condition_variable space_cv_;
  bool flush_in_progress_ = false;
  uint64_t pending_syncers_ = 0;  ///< Flush callers awaiting the next fsync
  std::vector<SegmentPtr> segments_;  // base-ascending; back() is current
  std::string buffer_;       // appended but unwritten bytes (current segment)
  Lsn buffer_start_ = 0;     // LSN of buffer_[0]
  Lsn tail_ = 0;
  Lsn flushed_ = 0;
  std::atomic<Lsn> oldest_{0};
  Lsn checkpoint_lsn_ = kNullLsn;
  std::function<void()> log_full_cb_;
  bool torn_tail_ = false;  // set once at open by the tail scan
  std::atomic<uint64_t> sync_count_{0};
  Status wedged_;  // sticky first Sync failure; non-OK refuses all mutation
};

}  // namespace bess

#endif  // BESS_WAL_LOG_MANAGER_H_
