// Write-ahead log records (paper §3: "recovery is based on an ARIES-like
// write-ahead log (WAL) protocol").
//
// Page-write records carry full before/after page images (physical logging):
// redo is a blind, idempotent reapplication of after-images in LSN order
// ("repeating history"); undo writes before-images backwards along each
// loser's prev_lsn chain, emitting compensation records (CLRs) so that undo
// itself is restartable.
#ifndef BESS_WAL_LOG_RECORD_H_
#define BESS_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/storage_area.h"
#include "txn/lock_manager.h"
#include "util/slice.h"
#include "util/status.h"

namespace bess {

/// Log sequence number: the byte offset of the record in the log file.
using Lsn = uint64_t;
inline constexpr Lsn kNullLsn = 0;  // offset 0 holds the log header

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kCommit,
  kAbort,       ///< abort decided; undo follows
  kEnd,         ///< transaction fully finished (undo complete if any)
  kPageWrite,   ///< physical before/after images of one page
  kClr,         ///< compensation: before-image applied during undo
  kCheckpoint,  ///< fuzzy checkpoint: txn table + dirty page table
  kPrepare,     ///< 2PC phase 1: transaction is in doubt (presumed abort)
  kFullPageImage,  ///< full page image for media repair (DESIGN.md §7);
                   ///< redo applies it like kPageWrite, undo never sees it
                   ///< (prev_lsn is always kNullLsn)

  // B+-tree index records (DESIGN.md §14). Physiological: redo is a blind
  // after-image apply of the touched leaf (the record carries the full
  // post-op leaf image), undo is *logical* — re-descend the live tree and
  // delete/re-insert the key, because a split may have moved it to a
  // different page since.
  kIndexPut,     ///< ikey/ival inserted (iold = replaced value, if any);
                 ///< page + after = the leaf's post-op image
  kIndexDelete,  ///< ikey removed (iold = the value it had);
                 ///< page + after = the leaf's post-op image
  kIndexSmo,     ///< structure modification (split / root grow): redo-only
                 ///< nested top action carrying full images of every page
                 ///< it touched; undo skips it (splits are never reversed)
};

struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  TxnId txn = kNoTxn;
  Lsn prev_lsn = kNullLsn;  ///< previous record of the same txn

  // kPageWrite / kClr:
  PageAddr page;
  std::string before;  ///< empty for kClr
  std::string after;
  Lsn undo_next = kNullLsn;  ///< kClr: next record to undo

  // kCheckpoint:
  struct ActiveTxn {
    TxnId txn;
    Lsn last_lsn;
  };
  std::vector<ActiveTxn> active_txns;
  struct DirtyPage {
    PageAddr page;
    Lsn rec_lsn;
  };
  std::vector<DirtyPage> dirty_pages;
  /// kCheckpoint: lower bound for redo — min over the dirty pages' recLSNs,
  /// the active transactions' first LSNs, and the snapshot-start LSN. No
  /// page image needing redo can live below it.
  Lsn redo_floor = kNullLsn;

  // kIndexPut / kIndexDelete: the logical payload for undo. `page`/`after`
  // above double as the physical redo image of the touched leaf.
  uint16_t index_area = 0;  ///< storage area holding the index
  std::string ikey;
  std::string ival;          ///< kIndexPut: value inserted
  std::string iold;          ///< replaced (put) or removed (delete) value
  bool iold_present = false; ///< distinguishes "replaced empty" from "fresh"

  // kIndexSmo: full images of every page the SMO touched (parent, left,
  // right, meta), applied atomically by redo.
  struct SmoPage {
    PageAddr page;
    std::string image;
  };
  std::vector<SmoPage> smo_pages;

  void EncodeTo(std::string* out) const;
  static Result<LogRecord> DecodeFrom(Slice payload);
};

}  // namespace bess

#endif  // BESS_WAL_LOG_RECORD_H_
