// Write-ahead log records (paper §3: "recovery is based on an ARIES-like
// write-ahead log (WAL) protocol").
//
// Page-write records carry full before/after page images (physical logging):
// redo is a blind, idempotent reapplication of after-images in LSN order
// ("repeating history"); undo writes before-images backwards along each
// loser's prev_lsn chain, emitting compensation records (CLRs) so that undo
// itself is restartable.
#ifndef BESS_WAL_LOG_RECORD_H_
#define BESS_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/storage_area.h"
#include "txn/lock_manager.h"
#include "util/slice.h"
#include "util/status.h"

namespace bess {

/// Log sequence number: the byte offset of the record in the log file.
using Lsn = uint64_t;
inline constexpr Lsn kNullLsn = 0;  // offset 0 holds the log header

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kCommit,
  kAbort,       ///< abort decided; undo follows
  kEnd,         ///< transaction fully finished (undo complete if any)
  kPageWrite,   ///< physical before/after images of one page
  kClr,         ///< compensation: before-image applied during undo
  kCheckpoint,  ///< fuzzy checkpoint: txn table + dirty page table
  kPrepare,     ///< 2PC phase 1: transaction is in doubt (presumed abort)
  kFullPageImage,  ///< full page image for media repair (DESIGN.md §7);
                   ///< redo applies it like kPageWrite, undo never sees it
                   ///< (prev_lsn is always kNullLsn)
};

struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  TxnId txn = kNoTxn;
  Lsn prev_lsn = kNullLsn;  ///< previous record of the same txn

  // kPageWrite / kClr:
  PageAddr page;
  std::string before;  ///< empty for kClr
  std::string after;
  Lsn undo_next = kNullLsn;  ///< kClr: next record to undo

  // kCheckpoint:
  struct ActiveTxn {
    TxnId txn;
    Lsn last_lsn;
  };
  std::vector<ActiveTxn> active_txns;
  struct DirtyPage {
    PageAddr page;
    Lsn rec_lsn;
  };
  std::vector<DirtyPage> dirty_pages;
  /// kCheckpoint: lower bound for redo — min over the dirty pages' recLSNs,
  /// the active transactions' first LSNs, and the snapshot-start LSN. No
  /// page image needing redo can live below it.
  Lsn redo_floor = kNullLsn;

  void EncodeTo(std::string* out) const;
  static Result<LogRecord> DecodeFrom(Slice payload);
};

}  // namespace bess

#endif  // BESS_WAL_LOG_RECORD_H_
