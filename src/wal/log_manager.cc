#include "wal/log_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "obs/trace.h"
#include "os/fault_injection.h"
#include "util/config.h"
#include "util/crc32c.h"

namespace bess {
namespace {

constexpr uint32_t kSegMagic = 0xBE551070u;
constexpr uint32_t kMasterMagic = 0xBE55AA57u;
constexpr size_t kSegHeaderSize = kPageSize;  // magic + seq + base LSN + crc
constexpr size_t kFrameHeader = 8;            // u32 len + u32 masked crc
// Master record: two ping-pong slots; version v writes slot v & 1, the
// reader takes the valid slot with the higher version.
constexpr size_t kMasterSlotStride = 64;
constexpr size_t kMasterSlotBytes = 32;  // magic + version + ckpt + oldest + crc

std::string SegmentName(uint64_t seq) {
  char buf[32];
  snprintf(buf, sizeof(buf), "wal-%08llu.log",
           static_cast<unsigned long long>(seq));
  return buf;
}

void EncodeMasterSlot(char* slot, uint64_t version, Lsn checkpoint_lsn,
                      Lsn oldest_lsn) {
  memset(slot, 0, kMasterSlotBytes);
  EncodeFixed32(slot, kMasterMagic);
  EncodeFixed64(slot + 4, version);
  EncodeFixed64(slot + 12, checkpoint_lsn);
  EncodeFixed64(slot + 20, oldest_lsn);
  EncodeFixed32(slot + 28, crc32c::Mask(crc32c::Value(slot, 28)));
}

bool DecodeMasterSlot(const char* slot, uint64_t* version, Lsn* checkpoint_lsn,
                      Lsn* oldest_lsn) {
  if (DecodeFixed32(slot) != kMasterMagic) return false;
  if (crc32c::Unmask(DecodeFixed32(slot + 28)) != crc32c::Value(slot, 28)) {
    return false;
  }
  *version = DecodeFixed64(slot + 4);
  *checkpoint_lsn = DecodeFixed64(slot + 12);
  *oldest_lsn = DecodeFixed64(slot + 20);
  return true;
}

}  // namespace

Result<std::unique_ptr<LogManager>> LogManager::Open(const std::string& dir,
                                                     Options options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("create log directory " + dir + ": " +
                           ec.message());
  }
  auto log = std::unique_ptr<LogManager>(new LogManager(dir, options));
  BESS_RETURN_IF_ERROR(log->LoadExisting());
  return log;
}

Result<LogManager::SegmentPtr> LogManager::CreateSegment(uint64_t seq,
                                                         Lsn base) {
  const std::string path = dir_ + "/" + SegmentName(seq);
  BESS_RETURN_IF_ERROR(fault::Check("wal.segment.roll", path));
  BESS_ASSIGN_OR_RETURN(File file, File::Open(path));
  char header[kSegHeaderSize];
  memset(header, 0, sizeof(header));
  EncodeFixed32(header, kSegMagic);
  EncodeFixed64(header + 4, seq);
  EncodeFixed64(header + 12, base);
  EncodeFixed32(header + 20, crc32c::Mask(crc32c::Value(header, 20)));
  Status st = file.WriteAt(0, header, sizeof(header));
  // The header must be durable before any record fsync in this segment:
  // otherwise a crash could ack records the tail scan can no longer locate.
  if (st.ok()) st = file.Sync();
  if (!st.ok()) {
    file.Close();
    (void)File::Remove(path);
    return st;
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  auto seg = std::make_shared<Segment>();
  seg->seq = seq;
  seg->base = base;
  seg->file = std::move(file);
  return seg;
}

Status LogManager::WriteMasterLocked(Lsn checkpoint_lsn, Lsn oldest_lsn) {
  BESS_RETURN_IF_ERROR(fault::Check("wal.master.swing", master_.path()));
  const uint64_t version = master_version_ + 1;
  char slot[kMasterSlotBytes];
  EncodeMasterSlot(slot, version, checkpoint_lsn, oldest_lsn);
  Status st =
      master_.WriteAt((version & 1) * kMasterSlotStride, slot, sizeof(slot));
  if (!st.ok()) return st;  // master unchanged on disk; not wedged
  {
    BESS_SPAN("wal.fsync");
    st = master_.Sync();
  }
  if (!st.ok()) {
    wedged_ = st;
    return st;
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  master_version_ = version;
  checkpoint_lsn_ = checkpoint_lsn;
  oldest_.store(oldest_lsn, std::memory_order_release);
  return Status::OK();
}

Status LogManager::LoadExisting() {
  BESS_ASSIGN_OR_RETURN(master_, File::Open(master_path()));
  BESS_ASSIGN_OR_RETURN(uint64_t master_size, master_.Size());
  bool have_master = false;
  Lsn master_oldest = kSegHeaderSize;
  if (master_size >= kMasterSlotBytes) {
    char slots[2 * kMasterSlotStride];
    memset(slots, 0, sizeof(slots));
    const size_t n = std::min<uint64_t>(master_size, sizeof(slots));
    BESS_RETURN_IF_ERROR(master_.ReadAt(0, slots, n));
    for (int i = 0; i < 2; ++i) {
      uint64_t version;
      Lsn ckpt, oldest;
      if (static_cast<size_t>(i) * kMasterSlotStride + kMasterSlotBytes > n) {
        continue;
      }
      if (!DecodeMasterSlot(slots + i * kMasterSlotStride, &version, &ckpt,
                            &oldest)) {
        continue;
      }
      if (!have_master || version > master_version_) {
        have_master = true;
        master_version_ = version;
        checkpoint_lsn_ = ckpt;
        master_oldest = oldest;
      }
    }
    if (!have_master) {
      return Status::Corruption("no valid master record in " + master_path());
    }
  }

  // Enumerate segments; a file with a bad header is a creation torn by a
  // crash — its records were never acked (the header fsync precedes any
  // record fsync), so it is deleted, not an error.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0) continue;
    auto file = File::Open(entry.path().string(), /*create=*/false);
    if (!file.ok()) continue;
    char header[kSegHeaderSize];
    uint64_t size = 0;
    if (auto s = file->Size(); s.ok()) size = *s;
    bool valid = size >= kSegHeaderSize &&
                 file->ReadAt(0, header, sizeof(header)).ok() &&
                 DecodeFixed32(header) == kSegMagic &&
                 crc32c::Unmask(DecodeFixed32(header + 20)) ==
                     crc32c::Value(header, 20);
    if (!valid) {
      file->Close();
      (void)File::Remove(entry.path().string());
      continue;
    }
    auto seg = std::make_shared<Segment>();
    seg->seq = DecodeFixed64(header + 4);
    seg->base = DecodeFixed64(header + 12);
    seg->file = std::move(*file);
    segments_.push_back(std::move(seg));
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const SegmentPtr& a, const SegmentPtr& b) {
              return a->base != b->base ? a->base < b->base : a->seq < b->seq;
            });
  // Equal bases: a roll/reset re-based at an empty segment's tail; the
  // higher sequence is the live epoch, the lower one holds nothing.
  for (size_t i = 0; i + 1 < segments_.size();) {
    if (segments_[i]->base == segments_[i + 1]->base) {
      const std::string path = segments_[i]->file.path();
      segments_[i]->file.Close();
      (void)File::Remove(path);
      segments_.erase(segments_.begin() + i);
    } else {
      ++i;
    }
  }
  // Segments wholly below the master's oldest LSN are leftovers of a crash
  // between the recycle's master bump and its unlinks.
  while (segments_.size() > 1 && segments_[1]->base <= master_oldest) {
    const std::string path = segments_.front()->file.path();
    segments_.front()->file.Close();
    (void)File::Remove(path);
    segments_.erase(segments_.begin());
  }

  if (segments_.empty()) {
    // Fresh log (or every segment lost): start an epoch at the master's
    // oldest LSN so LSNs stay monotone.
    BESS_ASSIGN_OR_RETURN(SegmentPtr seg, CreateSegment(1, master_oldest));
    segments_.push_back(std::move(seg));
    tail_ = flushed_ = buffer_start_ = master_oldest;
    oldest_.store(master_oldest, std::memory_order_release);
    if (checkpoint_lsn_ != kNullLsn) checkpoint_lsn_ = kNullLsn;
    if (!have_master) {
      BESS_RETURN_IF_ERROR(WriteMasterLocked(kNullLsn, master_oldest));
    }
    return Status::OK();
  }

  // Find the true tail by scanning records across segments (crashes leave a
  // torn final record; later segments past a tear hold only unacked bytes —
  // an ack of any byte beyond a segment boundary requires that boundary's
  // fsync to have completed first).
  Lsn lsn = segments_.front()->base;
  size_t live = 0;
  bool torn = false;
  for (size_t i = 0; i < segments_.size(); ++i) {
    SegmentPtr seg = segments_[i];
    if (seg->base != lsn) {  // gap: everything from here on is unreachable
      torn = true;
      break;
    }
    Lsn seg_end;
    if (i + 1 < segments_.size()) {
      seg_end = segments_[i + 1]->base;
    } else {
      BESS_ASSIGN_OR_RETURN(uint64_t size, seg->file.Size());
      seg_end = seg->base + (size > kSegHeaderSize ? size - kSegHeaderSize : 0);
    }
    std::string frame(kFrameHeader, '\0');
    while (lsn + kFrameHeader <= seg_end) {
      const uint64_t off = kSegHeaderSize + (lsn - seg->base);
      if (!seg->file.ReadAt(off, frame.data(), kFrameHeader).ok()) break;
      const uint32_t len = DecodeFixed32(frame.data());
      if (len == 0 || len > (64u << 20) || lsn + kFrameHeader + len > seg_end) {
        break;
      }
      std::string payload(len, '\0');
      if (!seg->file.ReadAt(off + kFrameHeader, payload.data(), len).ok()) {
        break;
      }
      const uint32_t want = crc32c::Unmask(DecodeFixed32(frame.data() + 4));
      if (crc32c::Value(payload.data(), len) != want) break;
      lsn += kFrameHeader + len;
    }
    live = i;
    if (lsn < seg_end || i + 1 == segments_.size()) {
      torn = torn || lsn < seg_end;
      break;
    }
  }
  tail_ = flushed_ = buffer_start_ = lsn;
  if (torn || live + 1 < segments_.size()) {
    // The scan stopped before the physical log end: a torn/corrupt record
    // from a crash mid-append. The dead bytes are discarded so stale frames
    // beyond the tail can never resurrect after re-appending.
    torn_tail_ = true;
    BESS_COUNT("wal.torn_tail");
    SegmentPtr cur = segments_[live];
    (void)cur->file.Truncate(kSegHeaderSize + (tail_ - cur->base));
    for (size_t i = live + 1; i < segments_.size(); ++i) {
      const std::string path = segments_[i]->file.path();
      segments_[i]->file.Close();
      (void)File::Remove(path);
    }
    segments_.resize(live + 1);
  }
  oldest_.store(segments_.front()->base, std::memory_order_release);
  // A checkpoint LSN we cannot read is no checkpoint: a crash in the wrong
  // window (master swung, records torn) can leave the master pointing past
  // the recovered tail, or below the oldest retained segment. Clamp to
  // kNullLsn so recovery scans from the start of the retained log instead
  // of failing forever on a dangling pointer.
  if (checkpoint_lsn_ != kNullLsn &&
      (checkpoint_lsn_ >= tail_ || checkpoint_lsn_ < oldest_lsn())) {
    checkpoint_lsn_ = kNullLsn;
  }
  if (!have_master) {
    BESS_RETURN_IF_ERROR(WriteMasterLocked(kNullLsn, oldest_lsn()));
  }
  return Status::OK();
}

LogManager::SegmentPtr LogManager::SegmentFor(Lsn lsn) const {
  // Largest base <= lsn. Caller holds mutex_.
  SegmentPtr best;
  for (const SegmentPtr& seg : segments_) {
    if (seg->base > lsn) break;
    best = seg;
  }
  return best;
}

void LogManager::MaybeRollLocked() {
  // Rolls are skipped while a flush leader is writing outside the mutex:
  // the leader's snapshot (current segment, needs_sync set) must stay
  // stable, and its error path must be able to splice its batch back in
  // front of the buffer contiguously.
  if (flush_in_progress_) return;
  SegmentPtr cur = segments_.back();
  if (tail_ == cur->base) return;  // empty segment: let one record overflow
  if (kSegHeaderSize + (tail_ - cur->base) < opts_.segment_bytes) return;
  if (!buffer_.empty()) {
    const uint64_t off = kSegHeaderSize + (buffer_start_ - cur->base);
    if (!cur->file.WriteAt(off, buffer_.data(), buffer_.size()).ok()) {
      return;  // can't drain the buffer (ENOSPC?): keep appending in memory
    }
    cur->needs_sync = true;
    buffer_.clear();
    buffer_start_ = tail_;
  }
  auto seg = CreateSegment(cur->seq + 1, tail_);
  if (!seg.ok()) {
    // Best-effort: the current segment simply overflows its nominal size.
    BESS_COUNT("wal.segment.roll_failed");
    return;
  }
  segments_.push_back(std::move(*seg));
  buffer_start_ = tail_;
  BESS_COUNT("wal.segment.rolls");
}

Result<Lsn> LogManager::Append(const LogRecord& rec) {
  return AppendImpl(rec, /*throttled=*/true);
}

Result<Lsn> LogManager::AppendUnthrottled(const LogRecord& rec) {
  return AppendImpl(rec, /*throttled=*/false);
}

Result<Lsn> LogManager::AppendImpl(const LogRecord& rec, bool throttled) {
  std::string payload;
  rec.EncodeTo(&payload);
  std::unique_lock<std::mutex> lk(mutex_);
  if (!wedged_.ok()) return wedged_;
  if (throttled && opts_.soft_limit_bytes > 0 &&
      tail_ - oldest_.load(std::memory_order_relaxed) >=
          opts_.soft_limit_bytes) {
    // Log full: backpressure, not a wedge. Kick the log-full hook (a forced
    // checkpoint frees segments), wait a bounded time for space, then give
    // up with NoSpace — the caller's commit fails cleanly and can retry.
    BESS_COUNT("wal.throttle.waits");
    if (log_full_cb_) {
      auto cb = log_full_cb_;
      lk.unlock();
      cb();
      lk.lock();
      if (!wedged_.ok()) return wedged_;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(opts_.throttle_timeout_ms);
    while (wedged_.ok() &&
           tail_ - oldest_.load(std::memory_order_relaxed) >=
               opts_.soft_limit_bytes) {
      if (space_cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
        if (tail_ - oldest_.load(std::memory_order_relaxed) >=
            opts_.soft_limit_bytes) {
          BESS_COUNT("wal.throttle.timeouts");
          return Status::NoSpace(
              "log full: " + std::to_string(tail_ - oldest_lsn()) +
              " bytes retained (soft limit " +
              std::to_string(opts_.soft_limit_bytes) + ")");
        }
        break;
      }
    }
    if (!wedged_.ok()) return wedged_;
  }
  SegmentPtr cur = segments_.back();
  if (kSegHeaderSize + (tail_ - cur->base) + kFrameHeader + payload.size() >
      opts_.segment_bytes) {
    MaybeRollLocked();
  }
  const Lsn lsn = tail_;
  char frame[kFrameHeader];
  EncodeFixed32(frame, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(frame + 4,
                crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  buffer_.append(frame, kFrameHeader);
  buffer_.append(payload);
  tail_ += kFrameHeader + payload.size();
  BESS_COUNT("wal.append.records");
  BESS_COUNT_N("wal.append.bytes", kFrameHeader + payload.size());
  return lsn;
}

Result<Lsn> LogManager::AppendAndFlush(const LogRecord& rec) {
  BESS_ASSIGN_OR_RETURN(Lsn lsn, Append(rec));
  BESS_RETURN_IF_ERROR(Flush(lsn));
  return lsn;
}

Status LogManager::ClaimFlushOwnership(std::unique_lock<std::mutex>& lk) {
  while (flush_in_progress_) {
    flush_cv_.wait(lk);
  }
  if (!wedged_.ok()) return wedged_;
  flush_in_progress_ = true;
  return Status::OK();
}

void LogManager::ReleaseFlushOwnership() {
  flush_in_progress_ = false;
  flush_cv_.notify_all();
}

Status LogManager::Flush(Lsn lsn) {
  std::unique_lock<std::mutex> lk(mutex_);
  if (!wedged_.ok()) return wedged_;
  if (flushed_ > lsn) return Status::OK();  // covered by an earlier batch
  pending_syncers_++;
  // Follower: a leader's fsync is in flight. Park on the batch condition;
  // on wakeup either that batch covered our LSN (done) or we lead the next.
  while (flush_in_progress_) {
    flush_cv_.wait(lk);
    if (!wedged_.ok()) return wedged_;
    if (flushed_ > lsn) return Status::OK();
  }
  // Leader: snap the whole buffer (our record and every committer batched
  // behind us) and do the one write+fsync with the latch released, so
  // appenders and the next batch's followers are never blocked on I/O.
  flush_in_progress_ = true;
  uint64_t batch = pending_syncers_;
  if (batch == 0) batch = 1;  // our registration was snapped by a prior batch
  pending_syncers_ = 0;
  std::string batch_buf;
  batch_buf.swap(buffer_);
  const Lsn write_at = buffer_start_;
  const Lsn batch_end = tail_;
  buffer_start_ = batch_end;
  SegmentPtr cur = segments_.back();
  // Segments that took roll-time writes without an fsync: their bytes are
  // below this batch's end, so this ack must cover them too.
  std::vector<SegmentPtr> to_sync;
  for (const SegmentPtr& seg : segments_) {
    if (seg->needs_sync && seg != cur) to_sync.push_back(seg);
  }
  lk.unlock();

  Status st;
  bool write_failed = false;
  if (!batch_buf.empty()) {
    st = cur->file.WriteAt(kSegHeaderSize + (write_at - cur->base),
                           batch_buf.data(), batch_buf.size());
    write_failed = !st.ok();
  }
  if (st.ok()) {
    BESS_SPAN("wal.fsync");
    for (const SegmentPtr& seg : to_sync) {
      st = seg->file.Sync();
      if (!st.ok()) break;
    }
    if (st.ok()) st = cur->file.Sync();
  }

  lk.lock();
  if (!st.ok()) {
    if (write_failed) {
      // The write itself failed (ENOSPC, injected I/O error): nothing that
      // was acked durable is in doubt, so this is NOT a wedge. Splice the
      // batch back in front of the buffer — contiguous, since rolls are
      // excluded while a flush is in flight — and fail just this flush.
      batch_buf.append(buffer_);
      buffer_.swap(batch_buf);
      buffer_start_ = write_at;
      BESS_COUNT("wal.flush.write_failed");
      ReleaseFlushOwnership();
      return st;
    }
    // fsyncgate: a failed (or interrupted) fsync may have already discarded
    // the dirty pages, so retrying can report "durable" for data that never
    // hit the platter. Wedge the log permanently; only a reopen (which
    // re-scans the true on-disk tail) clears it. Followers wake to wedged_.
    wedged_ = st;
    ReleaseFlushOwnership();
    return st;
  }
  for (const SegmentPtr& seg : to_sync) seg->needs_sync = false;
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  flushed_ = batch_end;
  BESS_HIST("wal.group_commit.batch_size", batch);
  ReleaseFlushOwnership();
  return Status::OK();
}

Status LogManager::Scan(
    Lsn from, const std::function<Status(Lsn, const LogRecord&)>& fn) {
  // Make everything visible to the read path first.
  BESS_RETURN_IF_ERROR(Flush(tail_lsn() - 1));
  Lsn lsn;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    lsn = from == kNullLsn ? segments_.front()->base : from;
  }
  char frame[kFrameHeader];
  for (;;) {
    SegmentPtr seg;
    Lsn seg_end;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (lsn + kFrameHeader > flushed_) break;
      seg = SegmentFor(lsn);
      if (seg == nullptr) return Status::NotFound(
          "log scan at recycled LSN " + std::to_string(lsn));
      seg_end = flushed_;
      for (const SegmentPtr& s : segments_) {
        if (s->base > lsn) {
          seg_end = std::min(seg_end, s->base);
          break;
        }
      }
    }
    if (lsn + kFrameHeader > seg_end) {
      lsn = seg_end;  // records never span segments; continue in the next
      continue;
    }
    const uint64_t off = kSegHeaderSize + (lsn - seg->base);
    BESS_RETURN_IF_ERROR(seg->file.ReadAt(off, frame, kFrameHeader));
    const uint32_t len = DecodeFixed32(frame);
    if (len == 0 || lsn + kFrameHeader + len > seg_end) break;
    std::string payload(len, '\0');
    BESS_RETURN_IF_ERROR(
        seg->file.ReadAt(off + kFrameHeader, payload.data(), len));
    const uint32_t want = crc32c::Unmask(DecodeFixed32(frame + 4));
    if (crc32c::Value(payload.data(), len) != want) break;  // torn tail
    BESS_ASSIGN_OR_RETURN(LogRecord rec, LogRecord::DecodeFrom(payload));
    BESS_RETURN_IF_ERROR(fn(lsn, rec));
    lsn += kFrameHeader + len;
  }
  return Status::OK();
}

Result<LogRecord> LogManager::ReadRecord(Lsn lsn) {
  BESS_RETURN_IF_ERROR(Flush(tail_lsn() - 1));
  SegmentPtr seg;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    seg = SegmentFor(lsn);
  }
  if (seg == nullptr) {
    return Status::NotFound("log record at recycled LSN " +
                            std::to_string(lsn));
  }
  const uint64_t off = kSegHeaderSize + (lsn - seg->base);
  char frame[kFrameHeader];
  BESS_RETURN_IF_ERROR(seg->file.ReadAt(off, frame, kFrameHeader));
  const uint32_t len = DecodeFixed32(frame);
  if (len == 0 || len > (64u << 20)) {
    return Status::Corruption("bad record length at LSN " +
                              std::to_string(lsn));
  }
  std::string payload(len, '\0');
  BESS_RETURN_IF_ERROR(seg->file.ReadAt(off + kFrameHeader, payload.data(),
                                        len));
  if (crc32c::Value(payload.data(), len) !=
      crc32c::Unmask(DecodeFixed32(frame + 4))) {
    return Status::Corruption("record checksum mismatch at LSN " +
                              std::to_string(lsn));
  }
  return LogRecord::DecodeFrom(payload);
}

Status LogManager::SetCheckpointLsn(Lsn lsn) {
  std::unique_lock<std::mutex> lk(mutex_);
  if (!wedged_.ok()) return wedged_;
  // Exclude any in-flight group-commit batch: its fsync must not be able to
  // observe (and make durable) a master record pointing past its own tail.
  BESS_RETURN_IF_ERROR(ClaimFlushOwnership(lk));
  Status st =
      WriteMasterLocked(lsn, oldest_.load(std::memory_order_relaxed));
  ReleaseFlushOwnership();
  return st;
}

Result<Lsn> LogManager::GetCheckpointLsn() {
  std::lock_guard<std::mutex> guard(mutex_);
  return checkpoint_lsn_;
}

Status LogManager::ReleaseSegments(Lsn floor) {
  std::unique_lock<std::mutex> lk(mutex_);
  if (!wedged_.ok()) return wedged_;
  BESS_RETURN_IF_ERROR(ClaimFlushOwnership(lk));
  // A segment is recyclable when the *next* segment's base is still <=
  // floor: every record >= floor then lives in a retained segment. The
  // current segment never recycles.
  size_t drop = 0;
  while (drop + 1 < segments_.size() &&
         segments_[drop + 1]->base <= floor) {
    drop++;
  }
  if (drop == 0) {
    ReleaseFlushOwnership();
    return Status::OK();
  }
  // Crash-safe order: the master's oldest bump is durable *before* any
  // unlink, so a crash in between leaves only garbage segments that the
  // next Open deletes (wholly below the master's oldest).
  Status st = WriteMasterLocked(checkpoint_lsn_, segments_[drop]->base);
  if (!st.ok()) {
    ReleaseFlushOwnership();
    return st;
  }
  size_t removed = 0;
  for (size_t i = 0; i < drop; ++i) {
    const std::string path = segments_[i]->file.path();
    st = fault::Check("wal.recycle.unlink", path);
    if (!st.ok()) break;  // retained files are re-pruned by the next pass
    // Unlink without closing: Scan/ReadRecord capture a SegmentPtr under
    // the mutex but pread outside it, so an explicit Close here could yank
    // the fd (or let its number be reused) mid-read. POSIX keeps unlinked-
    // but-open files readable; the fd closes in ~File when the last
    // SegmentPtr drops.
    (void)File::Remove(path);
    removed++;
    BESS_COUNT("wal.segment.recycled");
  }
  segments_.erase(segments_.begin(), segments_.begin() + removed);
  space_cv_.notify_all();
  ReleaseFlushOwnership();
  return st;
}

void LogManager::SetLogFullCallback(std::function<void()> cb) {
  std::lock_guard<std::mutex> guard(mutex_);
  log_full_cb_ = std::move(cb);
}

Lsn LogManager::tail_lsn() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return tail_;
}

Lsn LogManager::flushed_lsn() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return flushed_;
}

uint64_t LogManager::retained_bytes() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return tail_ - oldest_.load(std::memory_order_relaxed);
}

size_t LogManager::segment_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return segments_.size();
}

std::vector<std::string> LogManager::SegmentPaths() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<std::string> paths;
  for (const SegmentPtr& seg : segments_) paths.push_back(seg->file.path());
  return paths;
}

Status LogManager::Reset() {
  std::unique_lock<std::mutex> lk(mutex_);
  if (!wedged_.ok()) return wedged_;
  // Excluding an in-flight batch also keeps the leader's segment snapshot
  // valid (mutex_ stays held across our own I/O, which also keeps appenders
  // out — Reset is rare and cold).
  BESS_RETURN_IF_ERROR(ClaimFlushOwnership(lk));
  auto finish = [&](Status st) {
    if (!st.ok()) wedged_ = st;
    ReleaseFlushOwnership();
    return st;
  };
  buffer_.clear();
  const Lsn epoch = tail_;
  if (segments_.size() == 1 && segments_.back()->base == epoch &&
      checkpoint_lsn_ == kNullLsn) {
    // Already an empty single-segment log; nothing to discard.
    buffer_start_ = flushed_ = epoch;
    return finish(Status::OK());
  }
  // Crash-proof order: (1) start the new epoch's segment at the old tail,
  // (2) swing the master to it, (3) unlink the old epoch. A crash after any
  // step recovers: after (1) the new empty segment just extends the log;
  // after (2) the old segments are wholly below the master's oldest and the
  // next Open deletes them.
  SegmentPtr fresh;
  if (segments_.back()->base == epoch) {
    fresh = segments_.back();  // current segment is empty: reuse as epoch 0
    segments_.pop_back();
  } else {
    auto created = CreateSegment(segments_.back()->seq + 1, epoch);
    if (!created.ok()) return finish(created.status());
    fresh = std::move(*created);
  }
  Status st = WriteMasterLocked(kNullLsn, epoch);
  if (!st.ok()) {
    segments_.push_back(fresh);  // keep it addressable; Open dedupes anyway
    std::sort(segments_.begin(), segments_.end(),
              [](const SegmentPtr& a, const SegmentPtr& b) {
                return a->base != b->base ? a->base < b->base
                                          : a->seq < b->seq;
              });
    return finish(st);
  }
  std::vector<SegmentPtr> old;
  old.swap(segments_);
  segments_.push_back(std::move(fresh));
  tail_ = flushed_ = buffer_start_ = epoch;
  for (SegmentPtr& seg : old) {
    const std::string path = seg->file.path();
    if (!fault::Check("wal.recycle.unlink", path).ok()) continue;
    // No Close before the unlink — in-flight readers may still hold the
    // SegmentPtr (see ReleaseSegments); ~File closes the fd when it drops.
    (void)File::Remove(path);
  }
  space_cv_.notify_all();
  return finish(Status::OK());
}

Status LogManager::wedged() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return wedged_;
}

}  // namespace bess
