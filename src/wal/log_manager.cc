#include "wal/log_manager.h"

#include <cstring>

#include "obs/trace.h"
#include "util/config.h"
#include "util/crc32c.h"

namespace bess {
namespace {

constexpr uint32_t kLogMagic = 0xBE55106Fu;
constexpr size_t kHeaderSize = kPageSize;  // one page: magic + checkpoint LSN
constexpr size_t kFrameHeader = 8;         // u32 len + u32 masked crc

}  // namespace

Result<std::unique_ptr<LogManager>> LogManager::Open(const std::string& path) {
  BESS_ASSIGN_OR_RETURN(File file, File::Open(path));
  auto log = std::unique_ptr<LogManager>(new LogManager(std::move(file)));
  BESS_RETURN_IF_ERROR(log->LoadExisting());
  return log;
}

Status LogManager::LoadExisting() {
  BESS_ASSIGN_OR_RETURN(uint64_t size, file_.Size());
  if (size < kHeaderSize) {
    // Fresh log: write the header.
    char header[kHeaderSize];
    memset(header, 0, sizeof(header));
    EncodeFixed32(header, kLogMagic);
    EncodeFixed64(header + 4, kNullLsn);
    BESS_RETURN_IF_ERROR(file_.WriteAt(0, header, sizeof(header)));
    BESS_RETURN_IF_ERROR(file_.Sync());
    tail_ = flushed_ = kHeaderSize;
    buffer_start_ = kHeaderSize;
    checkpoint_lsn_ = kNullLsn;
    return Status::OK();
  }
  char header[kHeaderSize];
  BESS_RETURN_IF_ERROR(file_.ReadAt(0, header, sizeof(header)));
  if (DecodeFixed32(header) != kLogMagic) {
    return Status::Corruption("not a BeSS log: " + file_.path());
  }
  checkpoint_lsn_ = DecodeFixed64(header + 4);
  // Find the true tail by scanning (crashes can leave a torn final record).
  Lsn lsn = kHeaderSize;
  std::string frame(kFrameHeader, '\0');
  while (lsn + kFrameHeader <= size) {
    if (!file_.ReadAt(lsn, frame.data(), kFrameHeader).ok()) break;
    const uint32_t len = DecodeFixed32(frame.data());
    if (len == 0 || len > (64u << 20) || lsn + kFrameHeader + len > size) {
      break;
    }
    std::string payload(len, '\0');
    if (!file_.ReadAt(lsn + kFrameHeader, payload.data(), len).ok()) break;
    const uint32_t want = crc32c::Unmask(DecodeFixed32(frame.data() + 4));
    if (crc32c::Value(payload.data(), len) != want) break;
    lsn += kFrameHeader + len;
  }
  tail_ = flushed_ = lsn;
  buffer_start_ = lsn;
  if (lsn < size) {
    // The scan stopped before end-of-file: a torn/corrupt final record from
    // a crash mid-append. Normal ARIES business, but worth surfacing — a
    // torn tail on *every* open would point at a write-path bug.
    torn_tail_ = true;
    BESS_COUNT("wal.torn_tail");
  }
  // A crash between Reset()'s truncate and its header rewrite can leave the
  // master record pointing past the (now shorter) tail. A checkpoint LSN we
  // cannot read is no checkpoint: clamp to kNullLsn so recovery scans from
  // the start instead of failing forever on a dangling pointer.
  if (checkpoint_lsn_ != kNullLsn && checkpoint_lsn_ >= tail_) {
    checkpoint_lsn_ = kNullLsn;
  }
  return Status::OK();
}

Result<Lsn> LogManager::Append(const LogRecord& rec) {
  std::string payload;
  rec.EncodeTo(&payload);
  std::lock_guard<std::mutex> guard(mutex_);
  if (!wedged_.ok()) return wedged_;
  const Lsn lsn = tail_;
  char frame[kFrameHeader];
  EncodeFixed32(frame, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(frame + 4,
                crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  buffer_.append(frame, kFrameHeader);
  buffer_.append(payload);
  tail_ += kFrameHeader + payload.size();
  BESS_COUNT("wal.append.records");
  BESS_COUNT_N("wal.append.bytes", kFrameHeader + payload.size());
  return lsn;
}

Result<Lsn> LogManager::AppendAndFlush(const LogRecord& rec) {
  BESS_ASSIGN_OR_RETURN(Lsn lsn, Append(rec));
  BESS_RETURN_IF_ERROR(Flush(lsn));
  return lsn;
}

Status LogManager::ClaimFlushOwnership(std::unique_lock<std::mutex>& lk) {
  while (flush_in_progress_) {
    flush_cv_.wait(lk);
  }
  if (!wedged_.ok()) return wedged_;
  flush_in_progress_ = true;
  return Status::OK();
}

void LogManager::ReleaseFlushOwnership() {
  flush_in_progress_ = false;
  flush_cv_.notify_all();
}

Status LogManager::Flush(Lsn lsn) {
  std::unique_lock<std::mutex> lk(mutex_);
  if (!wedged_.ok()) return wedged_;
  if (flushed_ > lsn) return Status::OK();  // covered by an earlier batch
  pending_syncers_++;
  // Follower: a leader's fsync is in flight. Park on the batch condition;
  // on wakeup either that batch covered our LSN (done) or we lead the next.
  while (flush_in_progress_) {
    flush_cv_.wait(lk);
    if (!wedged_.ok()) return wedged_;
    if (flushed_ > lsn) return Status::OK();
  }
  // Leader: snap the whole buffer (our record and every committer batched
  // behind us) and do the one write+fsync with the latch released, so
  // appenders and the next batch's followers are never blocked on I/O.
  flush_in_progress_ = true;
  uint64_t batch = pending_syncers_;
  if (batch == 0) batch = 1;  // our registration was snapped by a prior batch
  pending_syncers_ = 0;
  std::string batch_buf;
  batch_buf.swap(buffer_);
  const Lsn write_at = buffer_start_;
  const Lsn batch_end = tail_;
  buffer_start_ = batch_end;
  lk.unlock();

  Status st;
  if (!batch_buf.empty()) {
    st = file_.WriteAt(write_at, batch_buf.data(), batch_buf.size());
  }
  if (st.ok()) {
    BESS_SPAN("wal.fsync");
    st = file_.Sync();
  }

  lk.lock();
  if (!st.ok()) {
    // fsyncgate: a failed (or interrupted) fsync may have already discarded
    // the dirty pages, so retrying can report "durable" for data that never
    // hit the platter. Wedge the log permanently; only a reopen (which
    // re-scans the true on-disk tail) clears it. Followers wake to wedged_.
    wedged_ = st;
    ReleaseFlushOwnership();
    return st;
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  flushed_ = batch_end;
  BESS_HIST("wal.group_commit.batch_size", batch);
  ReleaseFlushOwnership();
  return Status::OK();
}

Status LogManager::Scan(
    Lsn from, const std::function<Status(Lsn, const LogRecord&)>& fn) {
  // Make everything visible to the read path first.
  BESS_RETURN_IF_ERROR(Flush(tail_lsn() - 1));
  Lsn lsn = from == kNullLsn ? kHeaderSize : from;
  char frame[kFrameHeader];
  for (;;) {
    Lsn end;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      end = flushed_;
    }
    if (lsn + kFrameHeader > end) break;
    BESS_RETURN_IF_ERROR(file_.ReadAt(lsn, frame, kFrameHeader));
    const uint32_t len = DecodeFixed32(frame);
    if (len == 0 || lsn + kFrameHeader + len > end) break;
    std::string payload(len, '\0');
    BESS_RETURN_IF_ERROR(file_.ReadAt(lsn + kFrameHeader, payload.data(), len));
    const uint32_t want = crc32c::Unmask(DecodeFixed32(frame + 4));
    if (crc32c::Value(payload.data(), len) != want) break;  // torn tail
    BESS_ASSIGN_OR_RETURN(LogRecord rec, LogRecord::DecodeFrom(payload));
    BESS_RETURN_IF_ERROR(fn(lsn, rec));
    lsn += kFrameHeader + len;
  }
  return Status::OK();
}

Result<LogRecord> LogManager::ReadRecord(Lsn lsn) {
  BESS_RETURN_IF_ERROR(Flush(tail_lsn() - 1));
  char frame[kFrameHeader];
  BESS_RETURN_IF_ERROR(file_.ReadAt(lsn, frame, kFrameHeader));
  const uint32_t len = DecodeFixed32(frame);
  if (len == 0 || len > (64u << 20)) {
    return Status::Corruption("bad record length at LSN " +
                              std::to_string(lsn));
  }
  std::string payload(len, '\0');
  BESS_RETURN_IF_ERROR(file_.ReadAt(lsn + kFrameHeader, payload.data(), len));
  if (crc32c::Value(payload.data(), len) !=
      crc32c::Unmask(DecodeFixed32(frame + 4))) {
    return Status::Corruption("record checksum mismatch at LSN " +
                              std::to_string(lsn));
  }
  return LogRecord::DecodeFrom(payload);
}

Status LogManager::SetCheckpointLsn(Lsn lsn) {
  std::unique_lock<std::mutex> lk(mutex_);
  if (!wedged_.ok()) return wedged_;
  // Exclude any in-flight group-commit batch: its fsync must not be able to
  // observe (and make durable) a master record pointing past its own tail.
  BESS_RETURN_IF_ERROR(ClaimFlushOwnership(lk));
  char buf[12];
  EncodeFixed32(buf, kLogMagic);
  EncodeFixed64(buf + 4, lsn);
  Status st = file_.WriteAt(0, buf, sizeof(buf));
  if (st.ok()) {
    BESS_SPAN("wal.fsync");
    st = file_.Sync();
  }
  if (!st.ok()) {
    wedged_ = st;
    ReleaseFlushOwnership();
    return st;
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_lsn_ = lsn;
  ReleaseFlushOwnership();
  return Status::OK();
}

Result<Lsn> LogManager::GetCheckpointLsn() {
  std::lock_guard<std::mutex> guard(mutex_);
  return checkpoint_lsn_;
}

Lsn LogManager::tail_lsn() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return tail_;
}

Lsn LogManager::flushed_lsn() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return flushed_;
}

Status LogManager::Reset() {
  std::unique_lock<std::mutex> lk(mutex_);
  if (!wedged_.ok()) return wedged_;
  // Truncating under an in-flight batch write would race the leader's file
  // ops; claim flush ownership first (mutex_ stays held across our own I/O,
  // which also keeps appenders out — Reset is rare and cold).
  BESS_RETURN_IF_ERROR(ClaimFlushOwnership(lk));
  auto finish = [&](Status st) {
    if (!st.ok()) wedged_ = st;
    ReleaseFlushOwnership();
    return st;
  };
  buffer_.clear();
  Status st = file_.Truncate(kHeaderSize);
  if (!st.ok()) return finish(st);
  char header[kHeaderSize];
  memset(header, 0, sizeof(header));
  EncodeFixed32(header, kLogMagic);
  EncodeFixed64(header + 4, kNullLsn);
  st = file_.WriteAt(0, header, sizeof(header));
  if (st.ok()) {
    BESS_SPAN("wal.fsync");
    st = file_.Sync();
  }
  if (!st.ok()) return finish(st);
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  tail_ = flushed_ = buffer_start_ = kHeaderSize;
  checkpoint_lsn_ = kNullLsn;
  return finish(Status::OK());
}

Status LogManager::wedged() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return wedged_;
}

}  // namespace bess
