#include "wal/log_manager.h"

#include <cstring>

#include "obs/trace.h"
#include "util/config.h"
#include "util/crc32c.h"

namespace bess {
namespace {

constexpr uint32_t kLogMagic = 0xBE55106Fu;
constexpr size_t kHeaderSize = kPageSize;  // one page: magic + checkpoint LSN
constexpr size_t kFrameHeader = 8;         // u32 len + u32 masked crc

}  // namespace

Result<std::unique_ptr<LogManager>> LogManager::Open(const std::string& path) {
  BESS_ASSIGN_OR_RETURN(File file, File::Open(path));
  auto log = std::unique_ptr<LogManager>(new LogManager(std::move(file)));
  BESS_RETURN_IF_ERROR(log->LoadExisting());
  return log;
}

Status LogManager::LoadExisting() {
  BESS_ASSIGN_OR_RETURN(uint64_t size, file_.Size());
  if (size < kHeaderSize) {
    // Fresh log: write the header.
    char header[kHeaderSize];
    memset(header, 0, sizeof(header));
    EncodeFixed32(header, kLogMagic);
    EncodeFixed64(header + 4, kNullLsn);
    BESS_RETURN_IF_ERROR(file_.WriteAt(0, header, sizeof(header)));
    BESS_RETURN_IF_ERROR(file_.Sync());
    tail_ = flushed_ = kHeaderSize;
    buffer_start_ = kHeaderSize;
    checkpoint_lsn_ = kNullLsn;
    return Status::OK();
  }
  char header[kHeaderSize];
  BESS_RETURN_IF_ERROR(file_.ReadAt(0, header, sizeof(header)));
  if (DecodeFixed32(header) != kLogMagic) {
    return Status::Corruption("not a BeSS log: " + file_.path());
  }
  checkpoint_lsn_ = DecodeFixed64(header + 4);
  // Find the true tail by scanning (crashes can leave a torn final record).
  Lsn lsn = kHeaderSize;
  std::string frame(kFrameHeader, '\0');
  while (lsn + kFrameHeader <= size) {
    if (!file_.ReadAt(lsn, frame.data(), kFrameHeader).ok()) break;
    const uint32_t len = DecodeFixed32(frame.data());
    if (len == 0 || len > (64u << 20) || lsn + kFrameHeader + len > size) {
      break;
    }
    std::string payload(len, '\0');
    if (!file_.ReadAt(lsn + kFrameHeader, payload.data(), len).ok()) break;
    const uint32_t want = crc32c::Unmask(DecodeFixed32(frame.data() + 4));
    if (crc32c::Value(payload.data(), len) != want) break;
    lsn += kFrameHeader + len;
  }
  tail_ = flushed_ = lsn;
  buffer_start_ = lsn;
  if (lsn < size) {
    // The scan stopped before end-of-file: a torn/corrupt final record from
    // a crash mid-append. Normal ARIES business, but worth surfacing — a
    // torn tail on *every* open would point at a write-path bug.
    torn_tail_ = true;
    BESS_COUNT("wal.torn_tail");
  }
  // A crash between Reset()'s truncate and its header rewrite can leave the
  // master record pointing past the (now shorter) tail. A checkpoint LSN we
  // cannot read is no checkpoint: clamp to kNullLsn so recovery scans from
  // the start instead of failing forever on a dangling pointer.
  if (checkpoint_lsn_ != kNullLsn && checkpoint_lsn_ >= tail_) {
    checkpoint_lsn_ = kNullLsn;
  }
  return Status::OK();
}

Result<Lsn> LogManager::Append(const LogRecord& rec) {
  std::string payload;
  rec.EncodeTo(&payload);
  std::lock_guard<std::mutex> guard(mutex_);
  if (!wedged_.ok()) return wedged_;
  const Lsn lsn = tail_;
  char frame[kFrameHeader];
  EncodeFixed32(frame, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(frame + 4,
                crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  buffer_.append(frame, kFrameHeader);
  buffer_.append(payload);
  tail_ += kFrameHeader + payload.size();
  BESS_COUNT("wal.append.records");
  BESS_COUNT_N("wal.append.bytes", kFrameHeader + payload.size());
  return lsn;
}

Result<Lsn> LogManager::AppendAndFlush(const LogRecord& rec) {
  BESS_ASSIGN_OR_RETURN(Lsn lsn, Append(rec));
  BESS_RETURN_IF_ERROR(Flush(lsn));
  return lsn;
}

Status LogManager::Flush(Lsn lsn) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!wedged_.ok()) return wedged_;
  if (flushed_ > lsn) return Status::OK();  // group commit: already durable
  if (!buffer_.empty()) {
    BESS_RETURN_IF_ERROR(
        file_.WriteAt(buffer_start_, buffer_.data(), buffer_.size()));
    buffer_start_ += buffer_.size();
    buffer_.clear();
  }
  Status sync;
  {
    BESS_SPAN("wal.fsync");
    sync = file_.Sync();
  }
  if (!sync.ok()) {
    // fsyncgate: a failed fsync may have already discarded the dirty pages,
    // so retrying can report "durable" for data that never hit the platter.
    // Wedge the log permanently; only a reopen (which re-scans the true
    // on-disk tail) clears it.
    wedged_ = sync;
    return sync;
  }
  sync_count_++;
  flushed_ = tail_;
  return Status::OK();
}

Status LogManager::Scan(
    Lsn from, const std::function<Status(Lsn, const LogRecord&)>& fn) {
  // Make everything visible to the read path first.
  BESS_RETURN_IF_ERROR(Flush(tail_ - 1));
  Lsn lsn = from == kNullLsn ? kHeaderSize : from;
  char frame[kFrameHeader];
  for (;;) {
    Lsn end;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      end = flushed_;
    }
    if (lsn + kFrameHeader > end) break;
    BESS_RETURN_IF_ERROR(file_.ReadAt(lsn, frame, kFrameHeader));
    const uint32_t len = DecodeFixed32(frame);
    if (len == 0 || lsn + kFrameHeader + len > end) break;
    std::string payload(len, '\0');
    BESS_RETURN_IF_ERROR(file_.ReadAt(lsn + kFrameHeader, payload.data(), len));
    const uint32_t want = crc32c::Unmask(DecodeFixed32(frame + 4));
    if (crc32c::Value(payload.data(), len) != want) break;  // torn tail
    BESS_ASSIGN_OR_RETURN(LogRecord rec, LogRecord::DecodeFrom(payload));
    BESS_RETURN_IF_ERROR(fn(lsn, rec));
    lsn += kFrameHeader + len;
  }
  return Status::OK();
}

Result<LogRecord> LogManager::ReadRecord(Lsn lsn) {
  BESS_RETURN_IF_ERROR(Flush(tail_ - 1));
  char frame[kFrameHeader];
  BESS_RETURN_IF_ERROR(file_.ReadAt(lsn, frame, kFrameHeader));
  const uint32_t len = DecodeFixed32(frame);
  if (len == 0 || len > (64u << 20)) {
    return Status::Corruption("bad record length at LSN " +
                              std::to_string(lsn));
  }
  std::string payload(len, '\0');
  BESS_RETURN_IF_ERROR(file_.ReadAt(lsn + kFrameHeader, payload.data(), len));
  if (crc32c::Value(payload.data(), len) !=
      crc32c::Unmask(DecodeFixed32(frame + 4))) {
    return Status::Corruption("record checksum mismatch at LSN " +
                              std::to_string(lsn));
  }
  return LogRecord::DecodeFrom(payload);
}

Status LogManager::SetCheckpointLsn(Lsn lsn) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!wedged_.ok()) return wedged_;
  char buf[12];
  EncodeFixed32(buf, kLogMagic);
  EncodeFixed64(buf + 4, lsn);
  BESS_RETURN_IF_ERROR(file_.WriteAt(0, buf, sizeof(buf)));
  Status sync;
  {
    BESS_SPAN("wal.fsync");
    sync = file_.Sync();
  }
  if (!sync.ok()) {
    wedged_ = sync;
    return sync;
  }
  sync_count_++;
  checkpoint_lsn_ = lsn;
  return Status::OK();
}

Result<Lsn> LogManager::GetCheckpointLsn() {
  std::lock_guard<std::mutex> guard(mutex_);
  return checkpoint_lsn_;
}

Lsn LogManager::tail_lsn() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return tail_;
}

Lsn LogManager::flushed_lsn() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return flushed_;
}

Status LogManager::Reset() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!wedged_.ok()) return wedged_;
  buffer_.clear();
  BESS_RETURN_IF_ERROR(file_.Truncate(kHeaderSize));
  char header[kHeaderSize];
  memset(header, 0, sizeof(header));
  EncodeFixed32(header, kLogMagic);
  EncodeFixed64(header + 4, kNullLsn);
  BESS_RETURN_IF_ERROR(file_.WriteAt(0, header, sizeof(header)));
  Status sync;
  {
    BESS_SPAN("wal.fsync");
    sync = file_.Sync();
  }
  if (!sync.ok()) {
    wedged_ = sync;
    return sync;
  }
  sync_count_++;
  tail_ = flushed_ = buffer_start_ = kHeaderSize;
  checkpoint_lsn_ = kNullLsn;
  return Status::OK();
}

Status LogManager::wedged() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return wedged_;
}

}  // namespace bess
