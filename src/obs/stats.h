// bess::Stats — the public, serializable snapshot of the metrics registry.
//
// Snapshot() freezes every counter, gauge and histogram of the process (and,
// through the shared default block, of worker processes forked after obs
// init) into a value type with three stable serializations:
//
//   ToText():   "name value" lines, sorted by name — greppable, diffable.
//   ToJson():   one flat JSON object; histograms expand to name.count,
//               name.sum, name.p50, name.p95, name.p99, name.max — the
//               format of the bench metrics sidecars.
//   EncodeTo(): compact binary (the kMsgGetStats wire payload), loss-free
//               including raw histogram buckets so deltas recompute
//               quantiles exactly.
//
// StatsDelta(before, after) subtracts counters and histogram buckets, so a
// bench can attribute counts to one phase of a run; gauges keep the `after`
// value (a level, not a flow).
#ifndef BESS_OBS_STATS_H_
#define BESS_OBS_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "util/slice.h"
#include "util/status.h"

namespace bess {

/// Frozen histogram state: raw power-of-two buckets plus derived quantiles.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, obs::kHistBuckets> buckets{};

  /// Quantile estimate (q in [0,1]): linear interpolation inside the
  /// winning power-of-two bucket. 0 when the histogram is empty.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the highest occupied bucket (0 when empty).
  uint64_t max_bound() const;
};

struct Stats {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;  ///< instantaneous levels
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter (or gauge) value by name, 0 when absent.
  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    if (it != counters.end()) return it->second;
    auto git = gauges.find(name);
    return git == gauges.end() ? 0 : git->second;
  }
  const HistogramSnapshot* histogram(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }

  std::string ToText() const;
  std::string ToJson() const;

  void EncodeTo(std::string* out) const;
  static Result<Stats> DecodeFrom(Slice payload);
};

/// Snapshot of the process-default registry.
Stats Snapshot();
/// Snapshot of an explicit registry (shared-cache blocks, tests).
Stats SnapshotOf(const obs::Registry& registry);

/// after - before: counters and histogram buckets subtract (clamped at 0);
/// gauges keep their `after` level. Metrics new in `after` pass through.
Stats StatsDelta(const Stats& before, const Stats& after);

}  // namespace bess

#endif  // BESS_OBS_STATS_H_
