#include "obs/stats.h"

#include <cinttypes>
#include <cstdio>

namespace bess {
namespace {

/// Lower/upper value bounds of histogram bucket `i` (see HistBucketOf).
void BucketBounds(uint32_t i, uint64_t* lo, uint64_t* hi) {
  if (i == 0) {
    *lo = *hi = 0;
    return;
  }
  *lo = 1ull << (i - 1);
  *hi = i >= 63 ? UINT64_MAX : (1ull << i);
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  // Integral values print as integers so counter fields stay integers.
  if (v == static_cast<double>(static_cast<uint64_t>(v))) {
    snprintf(buf, sizeof(buf), "%" PRIu64, static_cast<uint64_t>(v));
  } else {
    snprintf(buf, sizeof(buf), "%.3f", v);
  }
  out->append(buf);
}

void AppendJsonField(std::string* out, const std::string& name, double v,
                     bool* first) {
  if (!*first) out->append(",");
  *first = false;
  out->append("\"").append(name).append("\":");
  AppendJsonNumber(out, v);
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  double seen = 0;
  for (uint32_t i = 0; i < obs::kHistBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double next = seen + static_cast<double>(buckets[i]);
    if (next >= rank) {
      uint64_t lo, hi;
      BucketBounds(i, &lo, &hi);
      if (i == 0) return 0.0;
      const double frac =
          (rank - seen) / static_cast<double>(buckets[i]);
      return static_cast<double>(lo) +
             frac * static_cast<double>(hi - lo);
    }
    seen = next;
  }
  return static_cast<double>(max_bound());
}

uint64_t HistogramSnapshot::max_bound() const {
  for (uint32_t i = obs::kHistBuckets; i-- > 0;) {
    if (buckets[i] != 0) {
      uint64_t lo, hi;
      BucketBounds(i, &lo, &hi);
      return hi;
    }
  }
  return 0;
}

std::string Stats::ToText() const {
  std::string out;
  char buf[96];
  for (const auto& [name, v] : counters) {
    snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
    out.append(name).append(buf);
  }
  for (const auto& [name, v] : gauges) {
    snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
    out.append(name).append(buf);
  }
  for (const auto& [name, h] : histograms) {
    snprintf(buf, sizeof(buf),
             " count=%" PRIu64 " sum=%" PRIu64
             " p50=%.0f p95=%.0f p99=%.0f max<=%" PRIu64 "\n",
             h.count, h.sum, h.p50(), h.p95(), h.p99(), h.max_bound());
    out.append(name).append(buf);
  }
  return out;
}

std::string Stats::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    AppendJsonField(&out, name, static_cast<double>(v), &first);
  }
  for (const auto& [name, v] : gauges) {
    AppendJsonField(&out, name, static_cast<double>(v), &first);
  }
  for (const auto& [name, h] : histograms) {
    AppendJsonField(&out, name + ".count", static_cast<double>(h.count),
                    &first);
    AppendJsonField(&out, name + ".sum", static_cast<double>(h.sum), &first);
    AppendJsonField(&out, name + ".mean", h.mean(), &first);
    AppendJsonField(&out, name + ".p50", h.p50(), &first);
    AppendJsonField(&out, name + ".p95", h.p95(), &first);
    AppendJsonField(&out, name + ".p99", h.p99(), &first);
    AppendJsonField(&out, name + ".max",
                    static_cast<double>(h.max_bound()), &first);
  }
  out.append("}");
  return out;
}

void Stats::EncodeTo(std::string* out) const {
  PutFixed32(out, static_cast<uint32_t>(counters.size()));
  for (const auto& [name, v] : counters) {
    PutLengthPrefixed(out, name);
    PutFixed64(out, v);
  }
  PutFixed32(out, static_cast<uint32_t>(gauges.size()));
  for (const auto& [name, v] : gauges) {
    PutLengthPrefixed(out, name);
    PutFixed64(out, v);
  }
  PutFixed32(out, static_cast<uint32_t>(histograms.size()));
  for (const auto& [name, h] : histograms) {
    PutLengthPrefixed(out, name);
    PutFixed64(out, h.count);
    PutFixed64(out, h.sum);
    for (uint64_t b : h.buckets) PutFixed64(out, b);
  }
}

Result<Stats> Stats::DecodeFrom(Slice payload) {
  Stats s;
  Decoder dec(payload);
  const uint32_t nc = dec.GetFixed32();
  for (uint32_t i = 0; i < nc && dec.ok(); ++i) {
    std::string name = dec.GetLengthPrefixed().ToString();
    s.counters[name] = dec.GetFixed64();
  }
  const uint32_t ng = dec.GetFixed32();
  for (uint32_t i = 0; i < ng && dec.ok(); ++i) {
    std::string name = dec.GetLengthPrefixed().ToString();
    s.gauges[name] = dec.GetFixed64();
  }
  const uint32_t nh = dec.GetFixed32();
  for (uint32_t i = 0; i < nh && dec.ok(); ++i) {
    std::string name = dec.GetLengthPrefixed().ToString();
    HistogramSnapshot h;
    h.count = dec.GetFixed64();
    h.sum = dec.GetFixed64();
    for (auto& b : h.buckets) b = dec.GetFixed64();
    s.histograms[name] = h;
  }
  if (!dec.ok()) return Status::Protocol("truncated stats payload");
  return s;
}

Stats SnapshotOf(const obs::Registry& registry) {
  Stats s;
  registry.ForEach([&s](std::string_view name, obs::MetricKind kind,
                        const obs::Cell* cells) {
    const std::string key(name);
    switch (kind) {
      case obs::MetricKind::kCounter:
        s.counters[key] = cells[0].load(std::memory_order_relaxed);
        break;
      case obs::MetricKind::kGauge:
        s.gauges[key] = cells[0].load(std::memory_order_relaxed);
        break;
      case obs::MetricKind::kHistogram: {
        HistogramSnapshot h;
        h.count = cells[0].load(std::memory_order_relaxed);
        h.sum = cells[1].load(std::memory_order_relaxed);
        for (uint32_t b = 0; b < obs::kHistBuckets; ++b) {
          h.buckets[b] = cells[2 + b].load(std::memory_order_relaxed);
        }
        s.histograms[key] = h;
        break;
      }
    }
  });
  return s;
}

Stats Snapshot() { return SnapshotOf(obs::Registry::Default()); }

Stats StatsDelta(const Stats& before, const Stats& after) {
  Stats d;
  for (const auto& [name, v] : after.counters) {
    auto it = before.counters.find(name);
    const uint64_t prev = it == before.counters.end() ? 0 : it->second;
    d.counters[name] = v >= prev ? v - prev : 0;
  }
  d.gauges = after.gauges;  // levels, not flows
  for (const auto& [name, h] : after.histograms) {
    HistogramSnapshot out = h;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      const HistogramSnapshot& prev = it->second;
      out.count = h.count >= prev.count ? h.count - prev.count : 0;
      out.sum = h.sum >= prev.sum ? h.sum - prev.sum : 0;
      for (uint32_t b = 0; b < obs::kHistBuckets; ++b) {
        out.buckets[b] = h.buckets[b] >= prev.buckets[b]
                             ? h.buckets[b] - prev.buckets[b]
                             : 0;
      }
    }
    d.histograms[name] = out;
  }
  return d;
}

}  // namespace bess
