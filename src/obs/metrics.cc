#include "obs/metrics.h"

#include <sys/mman.h>

#include <cstdlib>

namespace bess {
namespace obs {
namespace {

/// Landing pad for registrations a full registry cannot hold: increments are
/// safe, values are shared garbage. Sized for the largest metric kind.
Cell g_overflow_cells[kHistCells];

/// Tiny test-and-test-and-set spinlock over the header's reg_lock word.
/// Held only while registering a new name (once per call site per process),
/// never on the increment path.
class RegLockGuard {
 public:
  explicit RegLockGuard(std::atomic<uint32_t>* l) : l_(l) {
    for (;;) {
      uint32_t expect = 0;
      if (l_->compare_exchange_weak(expect, 1, std::memory_order_acquire)) {
        return;
      }
      while (l_->load(std::memory_order_relaxed) != 0) {
      }
    }
  }
  ~RegLockGuard() { l_->store(0, std::memory_order_release); }

 private:
  std::atomic<uint32_t>* l_;
};

}  // namespace

size_t Registry::BytesFor(uint32_t max_metrics, uint32_t max_cells) {
  return sizeof(RegistryHeader) +
         static_cast<size_t>(max_metrics) * sizeof(MetricDef) +
         static_cast<size_t>(max_cells) * sizeof(Cell);
}

Result<Registry> Registry::Create(void* mem, size_t bytes,
                                  uint32_t max_metrics, uint32_t max_cells) {
  if (mem == nullptr) return Status::InvalidArgument("null metrics block");
  if (bytes < BytesFor(max_metrics, max_cells)) {
    return Status::InvalidArgument("metrics block too small");
  }
  auto* header = static_cast<RegistryHeader*>(mem);
  if (header->magic == RegistryHeader::kMagic) return Attach(mem, bytes);
  auto* defs = reinterpret_cast<MetricDef*>(header + 1);
  auto* cells = reinterpret_cast<Cell*>(defs + max_metrics);
  memset(mem, 0, BytesFor(max_metrics, max_cells));
  header->max_metrics = max_metrics;
  header->max_cells = max_cells;
  // Publish the magic last: an attacher that sees it sees a formatted block.
  std::atomic_thread_fence(std::memory_order_release);
  header->magic = RegistryHeader::kMagic;
  return Registry(header, defs, cells);
}

Result<Registry> Registry::Attach(void* mem, size_t bytes) {
  if (mem == nullptr) return Status::InvalidArgument("null metrics block");
  auto* header = static_cast<RegistryHeader*>(mem);
  if (bytes < sizeof(RegistryHeader) ||
      header->magic != RegistryHeader::kMagic) {
    return Status::InvalidArgument("not a metrics block");
  }
  if (bytes < BytesFor(header->max_metrics, header->max_cells)) {
    return Status::InvalidArgument("metrics block truncated");
  }
  auto* defs = reinterpret_cast<MetricDef*>(header + 1);
  auto* cells = reinterpret_cast<Cell*>(defs + header->max_metrics);
  return Registry(header, defs, cells);
}

Registry& Registry::Default() {
  static Registry reg = [] {
    const size_t bytes = BytesFor(kDefaultMaxMetrics, kDefaultMaxCells);
    // MAP_SHARED so processes forked after this point write into the same
    // block — a bench's worker processes report into the parent's sidecar.
    void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) mem = ::calloc(1, bytes);  // degraded: private
    auto r = Create(mem, bytes, kDefaultMaxMetrics, kDefaultMaxCells);
    return r.ok() ? *r : Registry();
  }();
  return reg;
}

Cell* Registry::CellsFor(std::string_view name, MetricKind kind,
                         uint32_t cell_count) {
#if !BESS_METRICS_ENABLED
  (void)name;
  (void)kind;
  (void)cell_count;
  return g_overflow_cells;
#else
  if (header_ == nullptr) return g_overflow_cells;
  if (name.size() >= MetricDef::kNameCap) name = name.substr(0, 0);  // reject
  if (name.empty()) return g_overflow_cells;

  // Fast path: already live. Registration fills definition slots in order,
  // so the live entries are a publish-once prefix — scan until the first
  // free slot, lock-free.
  for (uint32_t i = 0; i < header_->max_metrics; ++i) {
    MetricDef& d = defs_[i];
    if (d.state.load(std::memory_order_acquire) != 2) break;
    if (name == d.name) return cells_ + d.first_cell;
  }

  // Slow path: register under the block's spinlock (dedupes racing
  // processes registering the same name).
  RegLockGuard lock(&header_->reg_lock);
  for (uint32_t i = 0; i < header_->max_metrics; ++i) {
    MetricDef& d = defs_[i];
    const uint32_t st = d.state.load(std::memory_order_acquire);
    if (st == 2) {
      if (name == d.name) return cells_ + d.first_cell;
      continue;
    }
    if (st != 0) continue;
    const uint32_t first = header_->used_cells.load(std::memory_order_relaxed);
    if (first + cell_count > header_->max_cells) return g_overflow_cells;
    header_->used_cells.store(first + cell_count, std::memory_order_relaxed);
    memset(d.name, 0, sizeof(d.name));
    memcpy(d.name, name.data(), name.size());
    d.kind = static_cast<uint8_t>(kind);
    d.first_cell = first;
    d.state.store(2, std::memory_order_release);
    header_->live_metrics.fetch_add(1, std::memory_order_release);
    return cells_ + first;
  }
  return g_overflow_cells;  // definition table full
#endif
}

void Registry::ForEach(
    const std::function<void(std::string_view, MetricKind, const Cell*)>& fn)
    const {
  if (header_ == nullptr) return;
  for (uint32_t i = 0; i < header_->max_metrics; ++i) {
    const MetricDef& d = defs_[i];
    if (d.state.load(std::memory_order_acquire) != 2) continue;
    fn(std::string_view(d.name), static_cast<MetricKind>(d.kind),
       cells_ + d.first_cell);
  }
}

void Registry::ResetCells() {
  if (header_ == nullptr) return;
  const uint32_t used = header_->used_cells.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < used; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace bess
