// Observability: a lock-free metrics registry (paper-evaluation substrate).
//
// The paper argues its design choices win "by rough factors" but prints no
// numbers; every bench in this repo regenerates one of those claims, and the
// counters here are the currency those regenerated claims are paid in.
//
// Design constraints, in order:
//   1. Shared-memory compatible. All mutable state lives in one flat block
//      of plain `std::atomic<uint64_t>` cells behind a POD header, so the
//      same code runs over private memory, a MAP_SHARED|MAP_ANONYMOUS
//      mapping (the process-default registry — forked workers inherit the
//      mapping and their counts aggregate into the parent's block), or a
//      POSIX shm object shared by the node-cache processes of §4.1.2.
//   2. Lock-free hot path. Increment/record is a relaxed fetch_add on a
//      pre-resolved cell pointer; name resolution happens once per call
//      site (static-local handle in the BESS_COUNT/BESS_HIST macros) and is
//      the only place a (shared-memory) spinlock is taken.
//   3. Disarmable. With BESS_METRICS_ENABLED=0 (CMake -DBESS_METRICS=OFF)
//      every handle operation and every macro compiles to nothing.
//
// Metric naming follows `module.noun.verb` (see DESIGN.md §6), e.g.
// `cache.hit`, `vm.fault.detect`, `wal.fsync` (a latency histogram whose
// snapshot expands to wal.fsync.count / .p50 / .p95 / .p99).
//
// Histograms are power-of-two bucketed: bucket 0 counts zeros, bucket i
// (i >= 1) counts values in [2^(i-1), 2^i). Quantiles are extracted from
// the bucket counts with linear interpolation inside the winning bucket —
// a p99 is therefore exact to within a factor of 2, which is enough to
// compare operation modes that differ "by rough factors".
#ifndef BESS_OBS_METRICS_H_
#define BESS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string_view>

#include "util/status.h"

// CMake option BESS_METRICS=OFF defines BESS_METRICS_ENABLED=0.
#ifndef BESS_METRICS_ENABLED
#define BESS_METRICS_ENABLED 1
#endif

namespace bess {
namespace obs {

using Cell = std::atomic<uint64_t>;
static_assert(sizeof(Cell) == 8, "cells must be plain 64-bit words");

enum class MetricKind : uint8_t { kCounter = 1, kGauge = 2, kHistogram = 3 };

inline constexpr uint32_t kHistBuckets = 64;
/// Cells of one histogram: [0] count, [1] sum, [2..2+kHistBuckets) buckets.
inline constexpr uint32_t kHistCells = 2 + kHistBuckets;

/// Bucket index of a value: 0 for 0, else 1 + floor(log2(v)), capped.
inline uint32_t HistBucketOf(uint64_t v) {
  if (v == 0) return 0;
  uint32_t b = 64 - static_cast<uint32_t>(__builtin_clzll(v));
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

/// One registered metric, resident in the shared block. POD + atomics only.
struct MetricDef {
  static constexpr uint32_t kNameCap = 52;
  char name[kNameCap];
  std::atomic<uint32_t> state;  ///< 0 free, 1 claiming, 2 live
  uint8_t kind;
  uint8_t pad[3];
  uint32_t first_cell;
};
static_assert(sizeof(MetricDef) == 64, "one cache line per definition");

struct RegistryHeader {
  static constexpr uint32_t kMagic = 0xBE550B5Eu;
  uint32_t magic;
  uint32_t max_metrics;
  uint32_t max_cells;
  std::atomic<uint32_t> reg_lock;  ///< registration spinlock (cold path only)
  std::atomic<uint32_t> used_cells;
  std::atomic<uint32_t> live_metrics;
  uint32_t pad[2];
};
static_assert(sizeof(RegistryHeader) == 32);

// ---- Handles ----------------------------------------------------------------
// A handle is a resolved cell pointer; operations are relaxed atomics.
// Handles stay valid for the life of the registry block (cells are never
// freed or moved). A handle from a full registry points at a shared
// overflow cell: increments are safe but meaningless.

class Counter {
 public:
  Counter() = default;
  explicit Counter(Cell* c) : c_(c) {}
#if BESS_METRICS_ENABLED
  void Inc(uint64_t n = 1) { c_->fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return c_->load(std::memory_order_relaxed); }
#else
  void Inc(uint64_t = 1) {}
  uint64_t value() const { return 0; }
#endif

 private:
  Cell* c_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(Cell* c) : c_(c) {}
#if BESS_METRICS_ENABLED
  void Set(uint64_t v) { c_->store(v, std::memory_order_relaxed); }
  void Add(uint64_t n = 1) { c_->fetch_add(n, std::memory_order_relaxed); }
  void Sub(uint64_t n = 1) { c_->fetch_sub(n, std::memory_order_relaxed); }
  uint64_t value() const { return c_->load(std::memory_order_relaxed); }
#else
  void Set(uint64_t) {}
  void Add(uint64_t = 1) {}
  void Sub(uint64_t = 1) {}
  uint64_t value() const { return 0; }
#endif

 private:
  Cell* c_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(Cell* cells) : cells_(cells) {}
#if BESS_METRICS_ENABLED
  void Record(uint64_t v) {
    cells_[0].fetch_add(1, std::memory_order_relaxed);
    cells_[1].fetch_add(v, std::memory_order_relaxed);
    cells_[2 + HistBucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t count() const { return cells_[0].load(std::memory_order_relaxed); }
  uint64_t sum() const { return cells_[1].load(std::memory_order_relaxed); }
#else
  void Record(uint64_t) {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
#endif

 private:
  Cell* cells_ = nullptr;
};

// ---- Registry ---------------------------------------------------------------

/// A view over one metrics block: [RegistryHeader][MetricDef...][Cell...].
/// The view itself is a value (three pointers); the block is what's shared.
class Registry {
 public:
  static constexpr uint32_t kDefaultMaxMetrics = 512;
  static constexpr uint32_t kDefaultMaxCells = 16384;

  Registry() = default;

  /// Bytes a block with this geometry occupies.
  static size_t BytesFor(uint32_t max_metrics, uint32_t max_cells);

  /// Formats a registry over `mem` (which must hold BytesFor(...) bytes and
  /// should be zeroed). If `mem` already carries a live registry (magic
  /// matches), attaches to it instead — create-or-attach is what the
  /// shared-memory mode wants.
  static Result<Registry> Create(void* mem, size_t bytes, uint32_t max_metrics,
                                 uint32_t max_cells);

  /// Attaches to an existing block (InvalidArgument when the magic is absent).
  static Result<Registry> Attach(void* mem, size_t bytes);

  /// The process-default registry. Backed by a MAP_SHARED|MAP_ANONYMOUS
  /// mapping, so worker processes forked after first use share the block and
  /// their counts aggregate here (bench_modes relies on this).
  static Registry& Default();

  bool valid() const { return header_ != nullptr; }

  /// Finds or registers a metric and returns its handle. O(live metrics)
  /// on first resolution; call sites cache the handle (see macros below).
  Counter counter(std::string_view name) {
    return Counter(CellsFor(name, MetricKind::kCounter, 1));
  }
  Gauge gauge(std::string_view name) {
    return Gauge(CellsFor(name, MetricKind::kGauge, 1));
  }
  Histogram histogram(std::string_view name) {
    return Histogram(CellsFor(name, MetricKind::kHistogram, kHistCells));
  }

  /// Visits every live metric. `cells` has 1 cell for counters/gauges and
  /// kHistCells for histograms. Reads are relaxed; a snapshot taken during
  /// concurrent updates is per-cell consistent, not cross-cell.
  void ForEach(const std::function<void(std::string_view name, MetricKind kind,
                                        const Cell* cells)>& fn) const;

  /// Zeroes every cell (tests and bench warm-up). Names stay registered.
  void ResetCells();

  const RegistryHeader* header() const { return header_; }

 private:
  Registry(RegistryHeader* h, MetricDef* d, Cell* c)
      : header_(h), defs_(d), cells_(c) {}

  Cell* CellsFor(std::string_view name, MetricKind kind, uint32_t cell_count);

  RegistryHeader* header_ = nullptr;
  MetricDef* defs_ = nullptr;
  Cell* cells_ = nullptr;
};

}  // namespace obs
}  // namespace bess

// ---- Call-site macros -------------------------------------------------------
// Resolve the metric once (thread-safe static local), then hit the cell.
// Usable from the fault path: after first resolution the cost is one
// relaxed fetch_add and no locks.

#if BESS_METRICS_ENABLED
#define BESS_OBS_CONCAT_IMPL_(a, b) a##b
#define BESS_OBS_CONCAT_(a, b) BESS_OBS_CONCAT_IMPL_(a, b)

#define BESS_COUNT_N(name, n)                                   \
  do {                                                          \
    static ::bess::obs::Counter BESS_OBS_CONCAT_(_bess_c_,      \
                                                 __LINE__) =    \
        ::bess::obs::Registry::Default().counter(name);         \
    BESS_OBS_CONCAT_(_bess_c_, __LINE__).Inc(n);                \
  } while (0)
#define BESS_COUNT(name) BESS_COUNT_N(name, 1)

#define BESS_GAUGE_ADD(name, n)                                 \
  do {                                                          \
    static ::bess::obs::Gauge BESS_OBS_CONCAT_(_bess_g_,        \
                                               __LINE__) =      \
        ::bess::obs::Registry::Default().gauge(name);           \
    BESS_OBS_CONCAT_(_bess_g_, __LINE__).Add(n);                \
  } while (0)
#define BESS_GAUGE_SUB(name, n)                                 \
  do {                                                          \
    static ::bess::obs::Gauge BESS_OBS_CONCAT_(_bess_g_,        \
                                               __LINE__) =      \
        ::bess::obs::Registry::Default().gauge(name);           \
    BESS_OBS_CONCAT_(_bess_g_, __LINE__).Sub(n);                \
  } while (0)

#define BESS_HIST(name, v)                                      \
  do {                                                          \
    static ::bess::obs::Histogram BESS_OBS_CONCAT_(_bess_h_,    \
                                                   __LINE__) =  \
        ::bess::obs::Registry::Default().histogram(name);       \
    BESS_OBS_CONCAT_(_bess_h_, __LINE__).Record(v);             \
  } while (0)
#else
#define BESS_COUNT_N(name, n) \
  do {                        \
  } while (0)
#define BESS_COUNT(name) \
  do {                   \
  } while (0)
#define BESS_GAUGE_ADD(name, n) \
  do {                          \
  } while (0)
#define BESS_GAUGE_SUB(name, n) \
  do {                          \
  } while (0)
#define BESS_HIST(name, v) \
  do {                     \
  } while (0)
#endif

#endif  // BESS_OBS_METRICS_H_
