// Scoped trace spans: BESS_SPAN("wal.fsync") times the enclosing scope,
// feeds the duration (nanoseconds) into the like-named latency histogram,
// and — when tracing is armed — appends a complete ("ph":"X") event to an
// in-memory buffer that Stop() writes out as chrome://tracing JSON (load it
// in chrome://tracing or https://ui.perfetto.dev).
//
// Arming: Trace::Start(path) programmatically, or run any binary with
// BESS_TRACE=/path/to/trace.json in the environment (the buffer flushes at
// process exit). Disarmed spans cost two steady_clock reads plus one
// histogram record; with BESS_METRICS_ENABLED=0 the macro compiles away
// entirely.
#ifndef BESS_OBS_TRACE_H_
#define BESS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace bess {
namespace obs {

class Trace {
 public:
  /// Arms collection; events buffer in memory until Stop(). Bounded: after
  /// kMaxEvents the buffer wraps (newest events win).
  static Status Start(const std::string& path);

  /// Writes the buffered events as chrome://tracing JSON and disarms.
  static Status Stop();

  static bool active() { return active_.load(std::memory_order_relaxed); }

  /// Appends one complete event (called by SpanScope; name must outlive the
  /// trace — span names are string literals).
  static void Emit(const char* name, uint64_t start_ns, uint64_t dur_ns);

  /// Nanoseconds on the span clock (steady, process-relative).
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  static std::atomic<bool> active_;
};

/// RAII span: records scope duration into `hist` and into the trace buffer.
class SpanScope {
 public:
  SpanScope(const char* name, Histogram hist)
      : name_(name), hist_(hist), start_ns_(Trace::NowNs()) {}
  ~SpanScope() {
    const uint64_t dur = Trace::NowNs() - start_ns_;
    hist_.Record(dur);
    if (Trace::active()) Trace::Emit(name_, start_ns_, dur);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  Histogram hist_;
  uint64_t start_ns_;
};

}  // namespace obs
}  // namespace bess

#if BESS_METRICS_ENABLED
/// Times the rest of the enclosing scope under `name` (a string literal,
/// `module.noun.verb`); the duration lands in the like-named histogram.
#define BESS_SPAN(name)                                                \
  static ::bess::obs::Histogram BESS_OBS_CONCAT_(_bess_span_h_,        \
                                                 __LINE__) =           \
      ::bess::obs::Registry::Default().histogram(name);                \
  ::bess::obs::SpanScope BESS_OBS_CONCAT_(_bess_span_, __LINE__)(      \
      name, BESS_OBS_CONCAT_(_bess_span_h_, __LINE__))
#else
#define BESS_SPAN(name) \
  do {                  \
  } while (0)
#endif

#endif  // BESS_OBS_TRACE_H_
