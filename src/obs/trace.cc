#include "obs/trace.h"

#include <sys/types.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace bess {
namespace obs {
namespace {

constexpr size_t kMaxEvents = 1u << 20;

struct Event {
  const char* name;
  uint64_t start_ns;
  uint64_t dur_ns;
  uint64_t tid;
};

struct TraceState {
  std::mutex mutex;
  std::string path;
  std::vector<Event> events;
  size_t next = 0;  // ring cursor once full
  bool wrapped = false;
};

TraceState& State() {
  static TraceState state;
  return state;
}

uint64_t ThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1);
  return id;
}

void WriteEvent(FILE* f, const Event& e, bool* first) {
  if (!*first) fputs(",\n", f);
  *first = false;
  fprintf(f,
          "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%" PRIu64
          ",\"ts\":%.3f,\"dur\":%.3f}",
          e.name, ::getpid(), e.tid,
          static_cast<double>(e.start_ns) / 1e3,
          static_cast<double>(e.dur_ns) / 1e3);
}

}  // namespace

std::atomic<bool> Trace::active_{false};

Status Trace::Start(const std::string& path) {
  TraceState& st = State();
  std::lock_guard<std::mutex> guard(st.mutex);
  if (active_.load()) return Status::Busy("trace already active");
  st.path = path;
  st.events.clear();
  st.events.reserve(4096);
  st.next = 0;
  st.wrapped = false;
  active_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Trace::Stop() {
  TraceState& st = State();
  std::lock_guard<std::mutex> guard(st.mutex);
  if (!active_.exchange(false)) return Status::InvalidArgument("not tracing");
  FILE* f = ::fopen(st.path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot write trace " + st.path);
  fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  // Ring order: oldest surviving event first.
  if (st.wrapped) {
    for (size_t i = st.next; i < st.events.size(); ++i) {
      WriteEvent(f, st.events[i], &first);
    }
  }
  for (size_t i = 0; i < st.next; ++i) WriteEvent(f, st.events[i], &first);
  if (!st.wrapped) {
    for (size_t i = st.next; i < st.events.size(); ++i) {
      WriteEvent(f, st.events[i], &first);
    }
  }
  fputs("\n]}\n", f);
  ::fclose(f);
  st.events.clear();
  return Status::OK();
}

void Trace::Emit(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  TraceState& st = State();
  std::lock_guard<std::mutex> guard(st.mutex);
  if (!active_.load(std::memory_order_relaxed)) return;
  const Event e{name, start_ns, dur_ns, ThreadId()};
  if (st.events.size() < kMaxEvents) {
    st.events.push_back(e);
    st.next = st.events.size();
    if (st.next == kMaxEvents) st.next = 0;
  } else {
    st.events[st.next] = e;
    st.next = (st.next + 1) % kMaxEvents;
    st.wrapped = true;
  }
}

namespace {

/// BESS_TRACE=/path/trace.json arms tracing for the whole process lifetime;
/// the buffer flushes at exit.
struct EnvTraceArm {
  EnvTraceArm() {
    const char* path = ::getenv("BESS_TRACE");
    if (path == nullptr || path[0] == '\0') return;
    if (Trace::Start(path).ok()) {
      ::atexit([] { (void)Trace::Stop(); });
    }
  }
} g_env_trace_arm;

}  // namespace

}  // namespace obs
}  // namespace bess
