// On-page layout of B+-tree index nodes (DESIGN.md §14).
//
// An index lives in its own storage area. Page 0 is the index meta page
// (root pointer, height, leaf-chain head, page allocator cursor); every
// other page the tree uses is a node. The full kPageSize bytes are node
// payload — integrity trailers are out-of-band (storage/page_io.h).
//
// Node layout (little-endian):
//
//   0   magic     u32   0xBE55B7EE
//   4   level     u8    0 = leaf; internals count up toward the root
//   5   flags     u8    unused
//   6   count     u16   populated slots
//   8   heap      u16   offset of the lowest used heap byte
//   10  live      u16   live bytes: sum of cell sizes + 2 per slot
//   12  next      u32   leaf only: next-leaf page id (kInvalidPage = end)
//   16  leftmost  u32   internal only: child for keys < key(0)
//   20  reserved  u32
//   24  slots     u16[count]  cell offsets, key-sorted
//   ... free ...
//   heap cells, allocated downward from the page end
//
// Leaf cell:      u16 klen, u16 vlen, key bytes, value bytes
// Internal cell:  u16 klen, u32 child, key bytes
//
// Mutation is slot-array surgery: inserts carve a cell off the heap and
// splice a slot; removals splice the slot out and leak the cell (lazy
// delete). When the contiguous gap is too small but enough leaked bytes
// exist, Compact rebuilds the heap in place through a scratch page.
#ifndef BESS_INDEX_BTREE_PAGE_H_
#define BESS_INDEX_BTREE_PAGE_H_

#include <cstdint>
#include <cstring>

#include "storage/storage_area.h"
#include "util/config.h"
#include "util/slice.h"

namespace bess {

inline constexpr uint32_t kBtreeNodeMagic = 0xBE55B7EEu;
inline constexpr uint32_t kIndexMetaMagic = 0xBE55D3C5u;

/// Bounds enforced at the public API: together with the header they
/// guarantee any node can hold at least 6 worst-case entries, so a split
/// always leaves both halves with room for the insert that triggered it.
inline constexpr size_t kIndexMaxKeyLen = 256;
inline constexpr size_t kIndexMaxValLen = 256;

inline constexpr size_t kNodeHeaderSize = 24;
inline constexpr size_t kNodeUsable = kPageSize - kNodeHeaderSize;
/// Worst-case insert footprint (slot + cell), per node kind.
inline constexpr size_t kLeafWorstNeed =
    2 + 4 + kIndexMaxKeyLen + kIndexMaxValLen;
inline constexpr size_t kInternalWorstNeed = 2 + 6 + kIndexMaxKeyLen;

/// Mutable view over one node page (non-owning; the caller pins the frame).
class NodeView {
 public:
  explicit NodeView(char* p) : p_(p) {}

  static void Init(char* p, uint8_t level);

  bool valid() const { return DecodeFixed32(p_) == kBtreeNodeMagic; }
  uint8_t level() const { return static_cast<uint8_t>(p_[4]); }
  bool is_leaf() const { return level() == 0; }
  uint16_t count() const { return DecodeFixed16(p_ + 6); }
  uint16_t live() const { return DecodeFixed16(p_ + 10); }
  uint32_t next_leaf() const { return DecodeFixed32(p_ + 12); }
  void set_next_leaf(uint32_t n) { EncodeFixed32(p_ + 12, n); }
  uint32_t leftmost() const { return DecodeFixed32(p_ + 16); }
  void set_leftmost(uint32_t c) { EncodeFixed32(p_ + 16, c); }

  Slice key_at(uint16_t i) const;
  Slice leaf_val_at(uint16_t i) const;
  uint32_t child_at(uint16_t i) const;

  /// First slot whose key is >= `key` (== count() when all are smaller).
  uint16_t LowerBound(Slice key) const;
  /// Exact-match lookup; *pos is the LowerBound either way.
  bool Find(Slice key, uint16_t* pos) const;
  /// Internal node: the child to descend into for `key`.
  uint32_t FindChild(Slice key) const;

  /// True when a worst-case insert might not fit — the preemptive-split
  /// trigger (split-before-descend keeps parents never-full).
  bool NeedsSplit() const {
    return kNodeUsable - live() <
           (is_leaf() ? kLeafWorstNeed : kInternalWorstNeed);
  }

  /// Inserts (key, value) at slot `pos` (caller: pos = LowerBound, key
  /// absent). False when the node genuinely lacks the live bytes; a
  /// fragmented heap is compacted internally first.
  bool LeafInsert(uint16_t pos, Slice key, Slice value);
  void LeafRemove(uint16_t pos);
  /// Inserts separator (key → child) at slot `pos`.
  bool InternalInsert(uint16_t pos, Slice key, uint32_t child);

 private:
  uint16_t slot(uint16_t i) const {
    return DecodeFixed16(p_ + kNodeHeaderSize + 2 * i);
  }
  uint16_t heap_top() const { return DecodeFixed16(p_ + 8); }
  size_t CellSize(Slice key, Slice val) const {
    return is_leaf() ? 4 + key.size() + val.size() : 6 + key.size();
  }
  bool InsertCell(uint16_t pos, Slice key, Slice val, uint32_t child);
  void Compact();

  char* p_;
};

/// View over the index meta page (page 0 of the index area).
class MetaView {
 public:
  explicit MetaView(char* p) : p_(p) {}

  static void Init(char* p, uint32_t root, uint32_t first_leaf,
                   uint32_t alloc_next, uint32_t alloc_end);

  bool valid() const { return DecodeFixed32(p_) == kIndexMetaMagic; }
  uint32_t root() const { return DecodeFixed32(p_ + 8); }
  void set_root(uint32_t r) { EncodeFixed32(p_ + 8, r); }
  uint32_t height() const { return DecodeFixed32(p_ + 12); }
  void set_height(uint32_t h) { EncodeFixed32(p_ + 12, h); }
  uint32_t first_leaf() const { return DecodeFixed32(p_ + 16); }
  uint32_t alloc_next() const { return DecodeFixed32(p_ + 20); }
  void set_alloc_next(uint32_t v) { EncodeFixed32(p_ + 20, v); }
  uint32_t alloc_end() const { return DecodeFixed32(p_ + 24); }
  void set_alloc_end(uint32_t v) { EncodeFixed32(p_ + 24, v); }

 private:
  char* p_;
};

}  // namespace bess

#endif  // BESS_INDEX_BTREE_PAGE_H_
