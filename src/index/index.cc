#include "index/index.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "os/fault_injection.h"

namespace bess {

namespace {
/// Node pages are allocated from the area in chunks of this many pages and
/// handed out by the meta page's cursor. The buddy update for a fresh chunk
/// is synchronous; the cursor advance rides the SMO record that consumed the
/// chunk, so a crash in between at worst leaks one chunk.
constexpr uint32_t kIndexAllocChunk = 64;
}  // namespace

// Synchronous page transfer for the index area. Cache keys are packed
// PageAddrs whose (db, area) are fixed per index, so runs unpack once and
// split only at extent boundaries (ReadPages/WritePages runs must not cross
// one). Write-back stamps LSN 0 trailers like every cache write-back; the
// WAL-before-data gate is the injected callback.
class BTreeIndex::PageIoImpl : public FrameTable::PageIo {
 public:
  PageIoImpl(StorageArea* area, std::function<Status(uint64_t)> wal_gate)
      : area_(area), gate_(std::move(wal_gate)) {}

  Status Fetch(uint64_t key, void* buf) override {
    return area_->ReadPages(PageAddr::Unpack(key).page, 1, buf);
  }
  Status Write(uint64_t key, const void* buf) override {
    return area_->WritePages(PageAddr::Unpack(key).page, 1, buf, 0);
  }
  Status FetchRun(uint64_t first_key, uint32_t count, void* buf) override {
    return RunOp(PageAddr::Unpack(first_key).page, count, buf, false);
  }
  Status WriteRun(uint64_t first_key, uint32_t count,
                  const void* buf) override {
    return RunOp(PageAddr::Unpack(first_key).page, count,
                 const_cast<void*>(buf), true);
  }
  Status EnsureWalDurable(uint64_t lsn) override {
    if (lsn == 0 || !gate_) return Status::OK();
    return gate_(lsn);
  }

 private:
  Status RunOp(PageId first, uint32_t count, void* buf, bool write) {
    char* p = static_cast<char*>(buf);
    while (count > 0) {
      const uint32_t left_in_extent =
          kPagesPerExtent - (first % kPagesPerExtent);
      const uint32_t n = std::min(count, left_in_extent);
      if (write) {
        BESS_RETURN_IF_ERROR(area_->WritePages(first, n, p, 0));
      } else {
        BESS_RETURN_IF_ERROR(area_->ReadPages(first, n, p));
      }
      first += n;
      count -= n;
      p += static_cast<size_t>(n) * kPageSize;
    }
    return Status::OK();
  }

  StorageArea* area_;
  std::function<Status(uint64_t)> gate_;
};

// Heap frames with real write-back latching. The frame core's lifecycle
// contract says PrepareForWriteback latches the frame against writers for
// the length of the flush I/O (the shared cache does the same with its shm
// slot latches); plain HeapPlacement skips it because its users never
// mutate a frame that can be flushed concurrently. Index leaves are
// steal/no-force — the bgwriter flushes them while Put/Delete/undo rewrite
// them in place — so mutators take the same latch (LockFrame) around
// bytes + MarkDirty, and a flush never reads a half-applied image.
class BTreeIndex::LatchedPlacement : public HeapPlacement {
 public:
  explicit LatchedPlacement(uint32_t frame_count)
      : HeapPlacement(frame_count),
        latches_(std::make_unique<Latch[]>(frame_count)),
        held_(std::make_unique<std::atomic<uint8_t>[]>(frame_count)) {
    for (uint32_t f = 0; f < frame_count; ++f) held_[f].store(0);
  }
  Status PrepareForWriteback(uint32_t f) override {
    latches_[f].Lock();
    held_[f].store(1, std::memory_order_release);
    return Status::OK();
  }
  Status FinishWriteback(uint32_t f, bool ok) override {
    (void)ok;
    // Guarded like SharedPlacement: a batch unwind may finish frames it
    // never prepared.
    if (held_[f].exchange(0, std::memory_order_acq_rel) != 0) {
      latches_[f].Unlock();
    }
    return Status::OK();
  }
  void LockFrame(uint32_t f) { latches_[f].Lock(); }
  void UnlockFrame(uint32_t f) { latches_[f].Unlock(); }

 private:
  std::unique_ptr<Latch[]> latches_;
  std::unique_ptr<std::atomic<uint8_t>[]> held_;
};

Status BTreeIndex::Format(StorageArea* area) {
  auto meta_seg = area->AllocSegment(1);
  if (!meta_seg.ok()) return meta_seg.status();
  if (meta_seg->first_page != 0) {
    // Recovery relies on the meta page living at page 0 (it opens index
    // runtimes before the catalog is loaded) — only a fresh area qualifies.
    return Status::InvalidArgument("index area is not fresh");
  }
  auto chunk = area->AllocSegment(kIndexAllocChunk);
  if (!chunk.ok()) return chunk.status();

  std::vector<char> page(kPageSize);
  const PageId root = chunk->first_page;
  NodeView::Init(page.data(), 0);  // empty root leaf
  BESS_RETURN_IF_ERROR(area->WritePages(root, 1, page.data(), 0));
  MetaView::Init(page.data(), root, root, root + 1,
                 chunk->first_page + chunk->page_count);
  BESS_RETURN_IF_ERROR(area->WritePages(0, 1, page.data(), 0));
  return area->Sync();
}

BTreeIndex::BTreeIndex(StorageArea* area, const Options& opts)
    : area_(area), opts_(opts), scratch_(6 * kPageSize) {}

BTreeIndex::~BTreeIndex() {
  if (table_ != nullptr) table_->Stop();
  if (aio_ != nullptr) aio_->Shutdown();
}

void BTreeIndex::Detach() {
  std::lock_guard<std::mutex> g(latch_);
  if (detached_) return;
  detached_ = true;
  // Stop() joins the bgwriter and drains in-flight async ops — after it
  // returns, nothing in this runtime can invoke the database-capturing
  // callbacks (on_cleaned, ensure_wal_durable, append_smo) again; the
  // foreground entry points are gated by detached_ under the latch.
  if (table_ != nullptr) table_->Stop();
  if (aio_ != nullptr) aio_->Shutdown();
}

Status BTreeIndex::FlushDirty() {
  std::lock_guard<std::mutex> g(latch_);
  if (detached_) return Status::InvalidArgument("index detached from closed database");
  return table_->FlushDirty();
}

Status BTreeIndex::InitRuntime() {
  if (opts_.cache_frames < 8) opts_.cache_frames = 8;
  io_ = std::make_unique<PageIoImpl>(area_, opts_.ensure_wal_durable);
  placement_ = std::make_unique<LatchedPlacement>(opts_.cache_frames);
  if (opts_.use_async) {
    AsyncPageIoOptions ao;
    ao.backend = "pool";
    ao.queue_depth = opts_.async_queue_depth;
    ao.workers = opts_.async_workers;
    BESS_ASSIGN_OR_RETURN(aio_, MakeAsyncPageIo(ao, io_.get()));
  }
  FrameTable::Options fo;
  fo.frame_count = opts_.cache_frames;
  fo.enable_bgwriter = opts_.enable_bgwriter;
  fo.bgwriter_interval_ms = opts_.bgwriter_interval_ms;
  fo.async_io = aio_.get();
  fo.async_queue_depth = opts_.async_queue_depth;
  fo.on_cleaned = opts_.on_cleaned;
  table_ = std::make_unique<FrameTable>(fo, placement_.get(), io_.get());
  return table_->Init();
}

Result<std::unique_ptr<BTreeIndex>> BTreeIndex::Open(StorageArea* area,
                                                     const Options& opts) {
  std::unique_ptr<BTreeIndex> idx(new BTreeIndex(area, opts));
  BESS_RETURN_IF_ERROR(idx->InitRuntime());
  BESS_ASSIGN_OR_RETURN(Pin meta_pin, idx->FixPage(0));
  if (!MetaView(meta_pin.data).valid()) {
    return Status::Corruption("not an index area (bad meta page)");
  }
  return idx;
}

Result<BTreeIndex::Pin> BTreeIndex::FixPage(PageId page) {
  BESS_ASSIGN_OR_RETURN(FrameTable::FixResult r,
                        table_->Fix(PackPage(page), false, true));
  return Pin(table_.get(), r.frame, static_cast<char*>(r.data));
}

Status BTreeIndex::ApplyImage(PageId page, const char* image, Lsn lsn) {
  BESS_ASSIGN_OR_RETURN(FrameTable::FixResult r,
                        table_->Fix(PackPage(page), false, true));
  // Bytes + MarkDirty under the frame latch: write-back snapshots under
  // the same latch, so the flush I/O never reads a half-applied image and
  // its WAL gate sees the covering LSN.
  placement_->LockFrame(r.frame);
  memcpy(r.data, image, kPageSize);
  // Fixed clean then dirtied explicitly so clean→dirty records `lsn` as the
  // frame's recLSN (a for_write fix would leave it 0 = unknown).
  Status st = table_->MarkDirty(r.frame, lsn);
  placement_->UnlockFrame(r.frame);
  Status unpin = table_->Unpin(r.frame);
  return st.ok() ? unpin : st;
}

Result<PageId> BTreeIndex::AllocNodePage(MetaView* meta) {
  if (meta->alloc_next() >= meta->alloc_end()) {
    BESS_ASSIGN_OR_RETURN(DiskSegment seg,
                          area_->AllocSegment(kIndexAllocChunk));
    meta->set_alloc_next(seg.first_page);
    meta->set_alloc_end(seg.first_page + seg.page_count);
    BESS_COUNT("index.alloc.chunks");
  }
  const PageId p = meta->alloc_next();
  meta->set_alloc_next(p + 1);
  return p;
}

Status BTreeIndex::SplitChild(Pin* parent, PageId parent_id, Pin* child,
                              PageId child_id, Pin* meta_pin) {
  // Compose every post-SMO image in scratch; the cache is untouched until
  // the kIndexSmo record is on the log (WAL rule for multi-page atomicity).
  char* meta_img = scratch_.data();
  char* left_img = scratch_.data() + kPageSize;
  char* right_img = scratch_.data() + 2 * kPageSize;
  char* parent_img = scratch_.data() + 3 * kPageSize;

  memcpy(meta_img, meta_pin->data, kPageSize);
  MetaView meta(meta_img);
  BESS_ASSIGN_OR_RETURN(PageId right_id, AllocNodePage(&meta));

  NodeView src(child->data);
  const uint16_t n = src.count();
  if (n < 2) return Status::Internal("split of a near-empty index node");
  const uint16_t m = n / 2;

  NodeView::Init(left_img, src.level());
  NodeView::Init(right_img, src.level());
  NodeView left(left_img);
  NodeView right(right_img);
  std::string sep = src.key_at(m).ToString();
  if (src.is_leaf()) {
    for (uint16_t i = 0; i < m; ++i) {
      left.LeafInsert(i, src.key_at(i), src.leaf_val_at(i));
    }
    for (uint16_t i = m; i < n; ++i) {
      right.LeafInsert(static_cast<uint16_t>(i - m), src.key_at(i),
                       src.leaf_val_at(i));
    }
    left.set_next_leaf(right_id);
    right.set_next_leaf(src.next_leaf());
  } else {
    left.set_leftmost(src.leftmost());
    for (uint16_t i = 0; i < m; ++i) {
      left.InternalInsert(i, src.key_at(i), src.child_at(i));
    }
    // key(m) is pushed up; its child becomes the right node's leftmost.
    right.set_leftmost(src.child_at(m));
    for (uint16_t i = static_cast<uint16_t>(m + 1); i < n; ++i) {
      right.InternalInsert(static_cast<uint16_t>(i - m - 1), src.key_at(i),
                           src.child_at(i));
    }
  }

  const bool root_grow = parent == nullptr;
  if (root_grow) {
    BESS_ASSIGN_OR_RETURN(PageId new_root, AllocNodePage(&meta));
    NodeView::Init(parent_img, static_cast<uint8_t>(src.level() + 1));
    NodeView np(parent_img);
    np.set_leftmost(child_id);
    np.InternalInsert(0, sep, right_id);
    meta.set_root(new_root);
    meta.set_height(meta.height() + 1);
    parent_id = new_root;
  } else {
    memcpy(parent_img, parent->data, kPageSize);
    NodeView np(parent_img);
    if (!np.InternalInsert(np.LowerBound(sep), sep, right_id)) {
      return Status::Internal("index parent full despite preemptive split");
    }
  }

  BESS_RETURN_IF_ERROR(fault::Check("index.smo.log"));
  Lsn lsn = kNullLsn;
  if (opts_.append_smo) {
    LogRecord rec;
    rec.type = LogRecordType::kIndexSmo;
    rec.index_area = area_->area_id();
    auto addr = [this](PageId p) {
      return PageAddr{opts_.db, area_->area_id(), p};
    };
    rec.smo_pages.push_back({addr(0), std::string(meta_img, kPageSize)});
    rec.smo_pages.push_back(
        {addr(parent_id), std::string(parent_img, kPageSize)});
    rec.smo_pages.push_back({addr(child_id), std::string(left_img, kPageSize)});
    rec.smo_pages.push_back(
        {addr(right_id), std::string(right_img, kPageSize)});
    BESS_ASSIGN_OR_RETURN(lsn, opts_.append_smo(rec));
  }
  BESS_RETURN_IF_ERROR(fault::Check("index.smo.apply"));
  // A crash from here until all four land is repaired by redo (blind
  // reapplication of the record's images); apply order does not matter.
  BESS_RETURN_IF_ERROR(ApplyImage(0, meta_img, lsn));
  BESS_RETURN_IF_ERROR(ApplyImage(parent_id, parent_img, lsn));
  BESS_RETURN_IF_ERROR(ApplyImage(child_id, left_img, lsn));
  BESS_RETURN_IF_ERROR(ApplyImage(right_id, right_img, lsn));
  BESS_RETURN_IF_ERROR(fault::Check("index.smo.applied"));
  BESS_COUNT("index.smo");
  if (root_grow) BESS_COUNT("index.root_grow");
  return Status::OK();
}

Status BTreeIndex::DescendForWrite(Slice key, Pin* leaf, PageId* leaf_id) {
  // A root split restarts the descent; interior splits retry one level.
  // Height is tiny (≤4 for any realistic population), so bound hard.
  for (int attempt = 0; attempt < 64; ++attempt) {
    BESS_ASSIGN_OR_RETURN(Pin meta_pin, FixPage(0));
    MetaView meta(meta_pin.data);
    if (!meta.valid()) return Status::Corruption("bad index meta page");
    PageId cur_id = meta.root();
    BESS_ASSIGN_OR_RETURN(Pin cur, FixPage(cur_id));
    if (!NodeView(cur.data).valid()) {
      return Status::Corruption("bad index root node");
    }
    if (NodeView(cur.data).NeedsSplit()) {
      BESS_RETURN_IF_ERROR(SplitChild(nullptr, 0, &cur, cur_id, &meta_pin));
      continue;  // restart from the new root
    }
    while (!NodeView(cur.data).is_leaf()) {
      const PageId child_id = NodeView(cur.data).FindChild(key);
      BESS_ASSIGN_OR_RETURN(Pin child, FixPage(child_id));
      if (!NodeView(child.data).valid()) {
        return Status::Corruption("bad index node on descent");
      }
      if (NodeView(child.data).NeedsSplit()) {
        BESS_RETURN_IF_ERROR(
            SplitChild(&cur, cur_id, &child, child_id, &meta_pin));
        // The parent frame was updated in place; re-route the key — it may
        // now belong to the new right sibling.
        continue;
      }
      cur = std::move(child);
      cur_id = child_id;
    }
    *leaf = std::move(cur);
    *leaf_id = cur_id;
    return Status::OK();
  }
  return Status::Internal("index descent did not converge");
}

Status BTreeIndex::DescendForRead(Slice key, Pin* leaf, PageId* leaf_id) {
  BESS_ASSIGN_OR_RETURN(Pin meta_pin, FixPage(0));
  MetaView meta(meta_pin.data);
  if (!meta.valid()) return Status::Corruption("bad index meta page");
  PageId cur_id = meta.root();
  BESS_ASSIGN_OR_RETURN(Pin cur, FixPage(cur_id));
  while (true) {
    NodeView node(cur.data);
    if (!node.valid()) return Status::Corruption("bad index node on descent");
    if (node.is_leaf()) break;
    const PageId child_id = node.FindChild(key);
    BESS_ASSIGN_OR_RETURN(Pin child, FixPage(child_id));
    cur = std::move(child);
    cur_id = child_id;
  }
  *leaf = std::move(cur);
  *leaf_id = cur_id;
  return Status::OK();
}

Status BTreeIndex::Put(Slice key, Slice value, const RecordLogger& log) {
  if (key.empty() || key.size() > kIndexMaxKeyLen) {
    return Status::InvalidArgument("index key must be 1..256 bytes");
  }
  if (value.size() > kIndexMaxValLen) {
    return Status::InvalidArgument("index value must be <= 256 bytes");
  }
  std::lock_guard<std::mutex> g(latch_);
  if (detached_) return Status::InvalidArgument("index detached from closed database");
  Pin leaf;
  PageId leaf_id = kInvalidPage;
  BESS_RETURN_IF_ERROR(DescendForWrite(key, &leaf, &leaf_id));

  char* img = scratch_.data() + 4 * kPageSize;
  memcpy(img, leaf.data, kPageSize);
  NodeView node(img);
  uint16_t pos = 0;
  const bool replaced = node.Find(key, &pos);
  std::string old;
  if (replaced) {
    old = node.leaf_val_at(pos).ToString();
    node.LeafRemove(pos);
  }
  if (!node.LeafInsert(pos, key, value)) {
    return Status::Internal("index leaf full despite preemptive split");
  }

  Lsn lsn = kNullLsn;
  if (log) {
    LogRecord rec;
    rec.type = LogRecordType::kIndexPut;
    rec.page = PageAddr{opts_.db, area_->area_id(), leaf_id};
    rec.after.assign(img, kPageSize);
    rec.index_area = area_->area_id();
    rec.ikey = key.ToString();
    rec.ival = value.ToString();
    rec.iold = old;
    rec.iold_present = replaced;
    BESS_ASSIGN_OR_RETURN(lsn, log(std::move(rec)));
  }
  placement_->LockFrame(leaf.frame);
  memcpy(leaf.data, img, kPageSize);
  Status dirty = table_->MarkDirty(leaf.frame, lsn);
  placement_->UnlockFrame(leaf.frame);
  BESS_RETURN_IF_ERROR(dirty);
  BESS_COUNT("index.put");
  return Status::OK();
}

Status BTreeIndex::Delete(Slice key, bool* existed, const RecordLogger& log) {
  if (key.empty() || key.size() > kIndexMaxKeyLen) {
    return Status::InvalidArgument("index key must be 1..256 bytes");
  }
  std::lock_guard<std::mutex> g(latch_);
  if (detached_) return Status::InvalidArgument("index detached from closed database");
  Pin leaf;
  PageId leaf_id = kInvalidPage;
  BESS_RETURN_IF_ERROR(DescendForRead(key, &leaf, &leaf_id));

  char* img = scratch_.data() + 4 * kPageSize;
  memcpy(img, leaf.data, kPageSize);
  NodeView node(img);
  uint16_t pos = 0;
  const bool found = node.Find(key, &pos);
  if (existed != nullptr) *existed = found;
  if (!found) return Status::OK();  // nothing to log or apply
  std::string old = node.leaf_val_at(pos).ToString();
  node.LeafRemove(pos);

  Lsn lsn = kNullLsn;
  if (log) {
    LogRecord rec;
    rec.type = LogRecordType::kIndexDelete;
    rec.page = PageAddr{opts_.db, area_->area_id(), leaf_id};
    rec.after.assign(img, kPageSize);
    rec.index_area = area_->area_id();
    rec.ikey = key.ToString();
    rec.iold = std::move(old);
    rec.iold_present = true;
    BESS_ASSIGN_OR_RETURN(lsn, log(std::move(rec)));
  }
  placement_->LockFrame(leaf.frame);
  memcpy(leaf.data, img, kPageSize);
  Status dirty = table_->MarkDirty(leaf.frame, lsn);
  placement_->UnlockFrame(leaf.frame);
  BESS_RETURN_IF_ERROR(dirty);
  BESS_COUNT("index.delete");
  return Status::OK();
}

Result<bool> BTreeIndex::Get(Slice key, std::string* value) {
  std::lock_guard<std::mutex> g(latch_);
  if (detached_) return Status::InvalidArgument("index detached from closed database");
  Pin leaf;
  PageId leaf_id = kInvalidPage;
  BESS_RETURN_IF_ERROR(DescendForRead(key, &leaf, &leaf_id));
  NodeView node(leaf.data);
  uint16_t pos = 0;
  BESS_COUNT("index.get");
  if (!node.Find(key, &pos)) return false;
  if (value != nullptr) {
    const Slice v = node.leaf_val_at(pos);
    value->assign(v.data(), v.size());
  }
  return true;
}

Status BTreeIndex::CollectLeaves(Slice lo, Slice hi,
                                 std::vector<PageId>* out) {
  BESS_ASSIGN_OR_RETURN(Pin meta_pin, FixPage(0));
  MetaView meta(meta_pin.data);
  if (!meta.valid()) return Status::Corruption("bad index meta page");

  std::function<Status(PageId)> walk = [&](PageId id) -> Status {
    BESS_ASSIGN_OR_RETURN(Pin pin, FixPage(id));
    NodeView node(pin.data);
    if (!node.valid()) return Status::Corruption("bad index node in scan");
    if (node.is_leaf()) {
      out->push_back(id);
      return Status::OK();
    }
    const uint16_t n = node.count();
    // Child c covers keys in [key(c-1), key(c)); c = 0 is the leftmost.
    auto child_index = [&](Slice k) {  // # separators <= k
      uint16_t a = 0, b = n;
      while (a < b) {
        const uint16_t mid = static_cast<uint16_t>((a + b) / 2);
        if (node.key_at(mid).compare(k) <= 0) {
          a = static_cast<uint16_t>(mid + 1);
        } else {
          b = mid;
        }
      }
      return a;
    };
    const uint16_t c_lo = lo.empty() ? 0 : child_index(lo);
    const uint16_t c_hi = hi.empty() ? n : child_index(hi);
    const bool kids_are_leaves = node.level() == 1;
    std::vector<PageId> kids;
    for (uint16_t c = c_lo; c <= c_hi; ++c) {
      kids.push_back(c == 0 ? node.leftmost()
                            : node.child_at(static_cast<uint16_t>(c - 1)));
    }
    pin.Release();  // keep pins O(height), not O(fanout^height)
    // Level-1 children are the leaves themselves: emit their ids without
    // fixing them, or this walk faults the whole leaf set in serially and
    // the push scan downstream has nothing left to prefetch.
    if (kids_are_leaves) {
      out->insert(out->end(), kids.begin(), kids.end());
      return Status::OK();
    }
    for (PageId kid : kids) BESS_RETURN_IF_ERROR(walk(kid));
    return Status::OK();
  };
  return walk(meta.root());
}

Status BTreeIndex::Scan(Slice lo, Slice hi, const EntryFn& fn) {
  std::lock_guard<std::mutex> g(latch_);
  if (detached_) return Status::InvalidArgument("index detached from closed database");
  std::vector<PageId> leaves;
  BESS_RETURN_IF_ERROR(CollectLeaves(lo, hi, &leaves));
  std::vector<uint64_t> keys;
  keys.reserve(leaves.size());
  for (PageId p : leaves) keys.push_back(PackPage(p));
  // Bounds copied out: the consumer runs against pinned frame bytes and
  // must not rely on caller stack slices staying addressable mid-pipeline.
  const std::string lo_s = lo.ToString();
  const std::string hi_s = hi.ToString();
  BESS_COUNT("index.scan");
  return table_->ScanKeys(keys, [&](uint64_t, const void* page) -> Status {
    NodeView node(const_cast<char*>(static_cast<const char*>(page)));
    if (!node.valid() || !node.is_leaf()) {
      return Status::Corruption("index scan reached a non-leaf page");
    }
    const uint16_t n = node.count();
    uint16_t i = lo_s.empty() ? 0 : node.LowerBound(lo_s);
    for (; i < n; ++i) {
      const Slice k = node.key_at(i);
      if (!hi_s.empty() && k.compare(hi_s) > 0) break;
      BESS_RETURN_IF_ERROR(fn(k, node.leaf_val_at(i)));
      BESS_COUNT("index.scan.entries");
    }
    return Status::OK();
  });
}

Status BTreeIndex::UndoLogical(const LogRecord& rec, const ClrLogger& log_clr) {
  if (rec.type != LogRecordType::kIndexPut &&
      rec.type != LogRecordType::kIndexDelete) {
    return Status::InvalidArgument("not a logically undoable index record");
  }
  std::lock_guard<std::mutex> g(latch_);
  if (detached_) return Status::InvalidArgument("index detached from closed database");
  const Slice key(rec.ikey);
  Pin leaf;
  PageId leaf_id = kInvalidPage;
  // Write descent: reversing a delete re-inserts and may need a split
  // (logged as its own SMO, even mid-undo).
  BESS_RETURN_IF_ERROR(DescendForWrite(key, &leaf, &leaf_id));

  char* img = scratch_.data() + 4 * kPageSize;
  memcpy(img, leaf.data, kPageSize);
  NodeView node(img);
  uint16_t pos = 0;
  const bool found = node.Find(key, &pos);
  if (rec.type == LogRecordType::kIndexPut && !rec.iold_present) {
    if (found) node.LeafRemove(pos);  // else: already reversed
  } else {
    // Put-over-old or delete: restore the previous value.
    if (found) node.LeafRemove(pos);
    if (!node.LeafInsert(pos, key, rec.iold)) {
      return Status::Internal("index leaf full during logical undo");
    }
  }

  Lsn lsn = kNullLsn;
  if (log_clr) {
    BESS_ASSIGN_OR_RETURN(
        lsn, log_clr(PageAddr{opts_.db, area_->area_id(), leaf_id},
                     std::string(img, kPageSize)));
  }
  placement_->LockFrame(leaf.frame);
  memcpy(leaf.data, img, kPageSize);
  Status dirty = table_->MarkDirty(leaf.frame, lsn);
  placement_->UnlockFrame(leaf.frame);
  BESS_RETURN_IF_ERROR(dirty);
  BESS_COUNT("index.undo");
  return Status::OK();
}

Status BTreeIndex::Validate(uint64_t* entries) {
  std::lock_guard<std::mutex> g(latch_);
  if (detached_) return Status::InvalidArgument("index detached from closed database");
  BESS_ASSIGN_OR_RETURN(Pin meta_pin, FixPage(0));
  MetaView meta(meta_pin.data);
  if (!meta.valid()) return Status::Corruption("bad index meta page");
  if (meta.height() == 0) return Status::Corruption("zero index height");

  uint64_t count = 0;
  std::string last_key;
  bool have_last = false;
  std::vector<std::pair<PageId, PageId>> chain;  // (leaf, its next pointer)

  // In-order walk carrying the separator window every key must fall in:
  // child c of an internal node holds keys in [key(c-1), key(c)).
  std::function<Status(PageId, uint32_t, std::string, bool, std::string, bool)>
      walk = [&](PageId id, uint32_t level, std::string lo, bool has_lo,
                 std::string hi, bool has_hi) -> Status {
    BESS_ASSIGN_OR_RETURN(Pin pin, FixPage(id));
    NodeView node(pin.data);
    if (!node.valid()) return Status::Corruption("bad node magic");
    if (node.level() != level) return Status::Corruption("level mismatch");
    const uint16_t n = node.count();
    for (uint16_t i = 0; i < n; ++i) {
      const Slice k = node.key_at(i);
      if (i > 0 && node.key_at(static_cast<uint16_t>(i - 1)).compare(k) >= 0) {
        return Status::Corruption("keys out of order within node");
      }
      if (has_lo && k.compare(lo) < 0) {
        return Status::Corruption("key below its separator window");
      }
      if (has_hi && k.compare(hi) >= 0) {
        return Status::Corruption("key above its separator window");
      }
    }
    if (node.is_leaf()) {
      chain.emplace_back(id, node.next_leaf());
      count += n;
      if (n > 0) {
        if (have_last && Slice(last_key).compare(node.key_at(0)) >= 0) {
          return Status::Corruption("keys out of order across leaves");
        }
        last_key = node.key_at(static_cast<uint16_t>(n - 1)).ToString();
        have_last = true;
      }
      return Status::OK();
    }
    if (node.leftmost() == kInvalidPage) {
      return Status::Corruption("internal node without leftmost child");
    }
    struct Child {
      PageId id;
      std::string lo, hi;
      bool has_lo, has_hi;
    };
    std::vector<Child> kids;
    kids.push_back({node.leftmost(), lo, n > 0 ? node.key_at(0).ToString() : hi,
                    has_lo, n > 0 ? true : has_hi});
    for (uint16_t i = 0; i < n; ++i) {
      kids.push_back({node.child_at(i), node.key_at(i).ToString(),
                      i + 1 < n
                          ? node.key_at(static_cast<uint16_t>(i + 1)).ToString()
                          : hi,
                      true, i + 1 < n ? true : has_hi});
    }
    pin.Release();
    for (auto& c : kids) {
      BESS_RETURN_IF_ERROR(
          walk(c.id, level - 1, c.lo, c.has_lo, c.hi, c.has_hi));
    }
    return Status::OK();
  };
  BESS_RETURN_IF_ERROR(
      walk(meta.root(), meta.height() - 1, "", false, "", false));

  for (size_t i = 0; i < chain.size(); ++i) {
    const PageId want =
        i + 1 < chain.size() ? chain[i + 1].first : kInvalidPage;
    if (chain[i].second != want) return Status::Corruption("broken leaf chain");
  }
  if (!chain.empty() && meta.first_leaf() != chain[0].first) {
    return Status::Corruption("meta first_leaf does not head the chain");
  }
  if (entries != nullptr) *entries = count;
  return Status::OK();
}

}  // namespace bess
