#include "index/btree_page.h"

#include <vector>

namespace bess {

void NodeView::Init(char* p, uint8_t level) {
  memset(p, 0, kPageSize);
  EncodeFixed32(p, kBtreeNodeMagic);
  p[4] = static_cast<char>(level);
  EncodeFixed16(p + 6, 0);                              // count
  EncodeFixed16(p + 8, static_cast<uint16_t>(kPageSize % 65536));  // heap
  EncodeFixed16(p + 10, 0);                             // live
  EncodeFixed32(p + 12, kInvalidPage);                  // next leaf
  EncodeFixed32(p + 16, kInvalidPage);                  // leftmost child
}

// heap == 0 encodes kPageSize (4096 < 65536, so in practice heap is stored
// verbatim; the modulo in Init only matters if kPageSize ever hits 64 KiB).

Slice NodeView::key_at(uint16_t i) const {
  const char* cell = p_ + slot(i);
  const uint16_t klen = DecodeFixed16(cell);
  return Slice(cell + (is_leaf() ? 4 : 6), klen);
}

Slice NodeView::leaf_val_at(uint16_t i) const {
  const char* cell = p_ + slot(i);
  const uint16_t klen = DecodeFixed16(cell);
  const uint16_t vlen = DecodeFixed16(cell + 2);
  return Slice(cell + 4 + klen, vlen);
}

uint32_t NodeView::child_at(uint16_t i) const {
  return DecodeFixed32(p_ + slot(i) + 2);
}

uint16_t NodeView::LowerBound(Slice key) const {
  uint16_t lo = 0, hi = count();
  while (lo < hi) {
    const uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (key_at(mid).compare(key) < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool NodeView::Find(Slice key, uint16_t* pos) const {
  const uint16_t i = LowerBound(key);
  *pos = i;
  return i < count() && key_at(i) == key;
}

uint32_t NodeView::FindChild(Slice key) const {
  // Separator semantics: child(i) holds keys >= key(i) (and < key(i+1));
  // keys below key(0) live under the leftmost child.
  const uint16_t n = count();
  uint16_t lo = 0, hi = n;
  while (lo < hi) {  // first separator strictly greater than key
    const uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (key_at(mid).compare(key) <= 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? leftmost() : child_at(static_cast<uint16_t>(lo - 1));
}

bool NodeView::InsertCell(uint16_t pos, Slice key, Slice val, uint32_t child) {
  const size_t cell = CellSize(key, val);
  const size_t need = cell + 2;
  const uint16_t n = count();
  if (kNodeUsable - live() < need) return false;  // genuinely out of space
  const size_t slot_end = kNodeHeaderSize + 2 * (static_cast<size_t>(n) + 1);
  if (static_cast<size_t>(heap_top()) < slot_end + cell) Compact();
  const uint16_t off = static_cast<uint16_t>(heap_top() - cell);
  char* c = p_ + off;
  EncodeFixed16(c, static_cast<uint16_t>(key.size()));
  if (is_leaf()) {
    EncodeFixed16(c + 2, static_cast<uint16_t>(val.size()));
    memcpy(c + 4, key.data(), key.size());
    memcpy(c + 4 + key.size(), val.data(), val.size());
  } else {
    EncodeFixed32(c + 2, child);
    memcpy(c + 6, key.data(), key.size());
  }
  char* slots = p_ + kNodeHeaderSize;
  memmove(slots + 2 * (pos + 1), slots + 2 * pos,
          2 * (static_cast<size_t>(n) - pos));
  EncodeFixed16(slots + 2 * pos, off);
  EncodeFixed16(p_ + 6, static_cast<uint16_t>(n + 1));
  EncodeFixed16(p_ + 8, off);
  EncodeFixed16(p_ + 10, static_cast<uint16_t>(live() + need));
  return true;
}

bool NodeView::LeafInsert(uint16_t pos, Slice key, Slice value) {
  return InsertCell(pos, key, value, 0);
}

bool NodeView::InternalInsert(uint16_t pos, Slice key, uint32_t child) {
  return InsertCell(pos, key, Slice(), child);
}

void NodeView::LeafRemove(uint16_t pos) {
  const uint16_t n = count();
  const Slice k = key_at(pos);
  const Slice v = leaf_val_at(pos);
  const uint16_t dead = static_cast<uint16_t>(CellSize(k, v) + 2);
  char* slots = p_ + kNodeHeaderSize;
  memmove(slots + 2 * pos, slots + 2 * (pos + 1),
          2 * (static_cast<size_t>(n) - pos - 1));
  EncodeFixed16(p_ + 6, static_cast<uint16_t>(n - 1));
  EncodeFixed16(p_ + 10, static_cast<uint16_t>(live() - dead));
  // The cell bytes leak until the next Compact (lazy delete, no merges).
}

void NodeView::Compact() {
  // Rebuild the heap densely through a scratch page; slot order (and the
  // header) are preserved, only cell offsets move.
  std::vector<char> scratch(kPageSize);
  char* s = scratch.data();
  memcpy(s, p_, kNodeHeaderSize);
  const uint16_t n = count();
  uint16_t top = static_cast<uint16_t>(kPageSize);
  for (uint16_t i = 0; i < n; ++i) {
    const char* cell = p_ + slot(i);
    const uint16_t klen = DecodeFixed16(cell);
    const size_t sz = is_leaf() ? 4u + klen + DecodeFixed16(cell + 2)
                                : 6u + klen;
    top = static_cast<uint16_t>(top - sz);
    memcpy(s + top, cell, sz);
    EncodeFixed16(s + kNodeHeaderSize + 2 * i, top);
  }
  EncodeFixed16(s + 8, top);
  memcpy(p_, s, kPageSize);
}

void MetaView::Init(char* p, uint32_t root, uint32_t first_leaf,
                    uint32_t alloc_next, uint32_t alloc_end) {
  memset(p, 0, kPageSize);
  EncodeFixed32(p, kIndexMetaMagic);
  EncodeFixed32(p + 4, 1);  // version
  EncodeFixed32(p + 8, root);
  EncodeFixed32(p + 12, 1);  // height: root is a leaf
  EncodeFixed32(p + 16, first_leaf);
  EncodeFixed32(p + 20, alloc_next);
  EncodeFixed32(p + 24, alloc_end);
}

}  // namespace bess
