// BTreeIndex: a WAL-logged paged B+-tree over the frame core
// (DESIGN.md §14; ROADMAP item 1).
//
// The tree lives in its own storage area (page 0 = meta, the rest nodes)
// and runs its page traffic through a private FrameTable — so pin/evict/
// write-back, the background writer, and the WAL-before-data gate all come
// from the one buffer core (cache/frame_table.h), not from bespoke index
// I/O. Policy contrast with object pages (§8): object transactions are
// no-steal/force (pages logged and forced at commit); index pages are
// steal/no-force — dirty index frames are written back lazily by the
// bgwriter (or eviction), commit forces only the log. Recovery therefore
// redoes index records blindly and undoes losers *logically* (re-descend
// and reverse — a split may have moved the key since).
//
// Logging protocol:
//   kIndexPut/kIndexDelete  appended to the owning transaction's chain by
//       the caller-supplied RecordLogger; carry the logical payload (key,
//       value, replaced value) for undo AND the touched leaf's full post-op
//       image for blind redo.
//   kIndexSmo  transaction-less nested top action (txn = kNoTxn): full
//       images of every page a split touched (parent, left, right, meta),
//       appended unthrottled *before* the images are applied to the cache.
//       Redo-only — splits are never reversed; a loser's keys are removed
//       logically, the structure they left behind stays.
//
// Concurrency: one coarse latch serializes structural access per index
// (ordering: latch_ is acquired before any WAL append or frame fix; it
// never nests inside the database's meta/rec mutexes — see §14).
#ifndef BESS_INDEX_INDEX_H_
#define BESS_INDEX_INDEX_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/async_page_io.h"
#include "cache/frame_table.h"
#include "index/btree_page.h"
#include "storage/storage_area.h"
#include "wal/log_record.h"

namespace bess {

class BTreeIndex {
 public:
  struct Options {
    uint16_t db = 0;                 ///< PageAddr db field for cache keys
    uint32_t cache_frames = 128;
    bool enable_bgwriter = true;
    uint32_t bgwriter_interval_ms = 2;
    /// Pool-backed async I/O behind the frame table: bgwriter batches go
    /// out as one submission (key-sorted, write-coalescible) and leaf
    /// scans ride the push pipeline. Off = fully synchronous (recovery
    /// runtimes, tests).
    bool use_async = true;
    uint32_t async_workers = 2;
    uint32_t async_queue_depth = 16;
    /// Forwarded to FrameTable (→ the database's dirty-page table).
    std::function<void(uint64_t key, uint64_t rec_lsn)> on_cleaned;
    /// WAL-before-data gate for write-back (wal->Flush). Null = no WAL.
    std::function<Status(uint64_t lsn)> ensure_wal_durable;
    /// Appends one kIndexSmo record durably enough for the protocol
    /// (unthrottled; SMOs must go through even on a full log). Null = SMOs
    /// unlogged (standalone benches without a WAL).
    std::function<Result<Lsn>(const LogRecord& rec)> append_smo;
  };

  /// Appends one kIndexPut/kIndexDelete to the calling transaction's
  /// chain, filling txn/prev_lsn, and returns its LSN. Called with the
  /// tree latch held.
  using RecordLogger = std::function<Result<Lsn>(LogRecord&& rec)>;
  using EntryFn = std::function<Status(Slice key, Slice value)>;

  /// Formats a *fresh* area as an empty index: meta at page 0, one node
  /// chunk, an empty root leaf. Direct synchronous writes + Sync — index
  /// creation is made durable by the catalog save, not the WAL.
  static Status Format(StorageArea* area);

  /// Opens a formatted area. The area must outlive the index.
  static Result<std::unique_ptr<BTreeIndex>> Open(StorageArea* area,
                                                  const Options& opts);
  ~BTreeIndex();
  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  /// Upsert. Key ≤ kIndexMaxKeyLen, value ≤ kIndexMaxValLen bytes.
  Status Put(Slice key, Slice value, const RecordLogger& log);
  /// Removes `key`; *existed reports whether it was present (absent is OK).
  Status Delete(Slice key, bool* existed, const RecordLogger& log);
  /// Point lookup: true + *value when present.
  Result<bool> Get(Slice key, std::string* value);
  /// Ordered scan over [lo, hi] (inclusive; empty lo = from the start,
  /// empty hi = to the end). Collects the leaf page list from the internal
  /// levels under the latch, then streams the leaves through the frame
  /// table's push scan (ScanKeys) — deep-queue prefetch instead of
  /// pointer-chasing demand misses. Entries are delivered in key order.
  Status Scan(Slice lo, Slice hi, const EntryFn& fn);

  /// Appends the CLR compensating one logical undo step — called with the
  /// touched leaf and its post-undo image, returns the CLR's LSN (the new
  /// chain tail). Null = unlogged undo (tests).
  using ClrLogger =
      std::function<Result<Lsn>(PageAddr page, const std::string& after)>;

  /// Logical undo of one kIndexPut/kIndexDelete against the live tree
  /// (abort and restart-undo paths). Re-descends for the key — a split may
  /// have moved it since — reverses the operation, hands the leaf's
  /// post-undo image to `log_clr`, and applies it at the CLR's LSN.
  /// Idempotent: undoing an already-reversed record still emits the CLR
  /// (the image is simply unchanged), so restart-undo converges.
  Status UndoLogical(const LogRecord& rec, const ClrLogger& log_clr);

  /// Structural validation for tests: walks the whole tree checking node
  /// magic, key order within and across leaves, separator consistency and
  /// the leaf chain; counts entries.
  Status Validate(uint64_t* entries);

  Status FlushDirty();
  void CollectDirty(std::vector<std::pair<uint64_t, uint64_t>>* out) const {
    table_->CollectDirty(out);
  }

  /// Severs the runtime from its owning database: joins the background
  /// writer, shuts down the async pool, and fails every subsequent
  /// operation. ~Database calls this because Index handles share ownership
  /// of the runtime — a handle outliving the database must degrade into
  /// errors, not leave a bgwriter thread calling back into freed state.
  void Detach();

  FrameTable* table() { return table_.get(); }
  AsyncPageIo* async_io() { return aio_.get(); }
  StorageArea* area() { return area_; }
  uint16_t area_id() const { return area_->area_id(); }

 private:
  class PageIoImpl;
  class LatchedPlacement;
  /// RAII pin over one fixed frame.
  struct Pin {
    FrameTable* t = nullptr;
    uint32_t frame = kNoFrame;
    char* data = nullptr;
    Pin() = default;
    Pin(FrameTable* table, uint32_t f, char* d)
        : t(table), frame(f), data(d) {}
    Pin(Pin&& o) noexcept : t(o.t), frame(o.frame), data(o.data) {
      o.t = nullptr;
    }
    Pin& operator=(Pin&& o) noexcept {
      Release();
      t = o.t;
      frame = o.frame;
      data = o.data;
      o.t = nullptr;
      return *this;
    }
    ~Pin() { Release(); }
    void Release() {
      if (t != nullptr) (void)t->Unpin(frame);
      t = nullptr;
    }
  };

  BTreeIndex(StorageArea* area, const Options& opts);
  Status InitRuntime();

  uint64_t PackPage(PageId page) const {
    return PageAddr{opts_.db, area_->area_id(), page}.Pack();
  }
  Result<Pin> FixPage(PageId page);
  /// Installs `image` over `page` in the cache and dirties it at `lsn`.
  Status ApplyImage(PageId page, const char* image, Lsn lsn);

  /// Allocates the next node page out of the meta's chunk cursor; `meta`
  /// is the scratch meta image the enclosing SMO will log+apply (the
  /// allocator advance rides the SMO record). May call AllocSegment for a
  /// fresh chunk (synchronous buddy update; a crash before the SMO record
  /// lands at worst leaks the chunk).
  Result<PageId> AllocNodePage(MetaView* meta);

  /// Splits full child `child_id` of `parent` (or grows the root when
  /// `parent.data == nullptr`), logging one kIndexSmo and applying its
  /// images. All images are composed in scratch first; the cache is only
  /// touched after the record is appended.
  Status SplitChild(Pin* parent, PageId parent_id, Pin* child,
                    PageId child_id, Pin* meta_pin);

  /// Descends to the leaf for `key`, preemptively splitting any full node
  /// on the way (so parents always have room). Returns the pinned leaf.
  Status DescendForWrite(Slice key, Pin* leaf, PageId* leaf_id);
  Status DescendForRead(Slice key, Pin* leaf, PageId* leaf_id);

  /// Collects, in key order, the page ids of every leaf that may hold
  /// keys in [lo, hi], by walking internal nodes only.
  Status CollectLeaves(Slice lo, Slice hi, std::vector<PageId>* out);

  StorageArea* area_;
  Options opts_;
  std::mutex latch_;  ///< coarse per-index latch (§14 lock order)
  bool detached_ = false;  ///< guarded by latch_; set once by Detach()
  std::unique_ptr<PageIoImpl> io_;
  std::unique_ptr<LatchedPlacement> placement_;
  std::unique_ptr<AsyncPageIo> aio_;
  std::unique_ptr<FrameTable> table_;
  std::vector<char> scratch_;  ///< SMO image composition (guarded by latch_)
};

}  // namespace bess

#endif  // BESS_INDEX_INDEX_H_
