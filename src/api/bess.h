// api/bess.h — deprecated umbrella.
//
// The facade split in two: include "bess/bess.h" for the application
// surface (refs, TxnGuard, stats snapshot) and "bess/bess_internal.h" for
// the embedder surface (server, caches, hooks, large objects). This header
// keeps old includes building by pulling in both.
#ifndef BESS_API_BESS_H_
#define BESS_API_BESS_H_

#include "bess/bess.h"           // IWYU pragma: export
#include "bess/bess_internal.h"  // IWYU pragma: export

#endif  // BESS_API_BESS_H_
