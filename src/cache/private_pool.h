// Private buffer pool: the copy-on-access operation mode's cache
// (paper §4.1.1).
//
// "Each process has a private buffer pool ... implemented as a fixed size
// file divided into a number of frames whose size is equal to the BeSS page
// size. The above file is mapped into the process' virtual address space
// using the UNIX mmap system call. Because the file serves as backing store
// for the buffer pool, no physical or swap space is allocated."
//
// This class is a thin *configuration* of the shared frame-lifecycle core
// (cache/frame_table.h): frame states, eviction, write-back ordering and
// the optional bgwriter/prefetch services all live there. What this file
// contributes is the placement — an mmap'd pool file plus the paper's
// protection-state machinery (§4.2):
//
//   - replacement recency is derived from access protection: the clock
//     demotes a frame by revoking access; touching it faults, and the
//     handler re-enables it (the "used" signal);
//   - write detection maps fetched frames read-only; the first store
//     faults and marks the frame dirty before granting write access.
#ifndef BESS_CACHE_PRIVATE_POOL_H_
#define BESS_CACHE_PRIVATE_POOL_H_

#include <atomic>
#include <memory>
#include <string>

#include "cache/frame_table.h"
#include "os/fault_dispatcher.h"
#include "os/file.h"
#include "storage/storage_area.h"
#include "util/config.h"
#include "util/status.h"
#include "vm/segment_store.h"

namespace bess {

class PrivateBufferPool : public FaultRangeOwner {
 public:
  struct Stats {
    uint64_t fixes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_writebacks = 0;
    uint64_t second_chances = 0;
    uint64_t sync_writebacks = 0;   ///< write-backs paid on the fault path
    uint64_t bgwriter_flushed = 0;
  };

  /// Frame-core knobs exposed to pool users (bench_modes drives the
  /// bgwriter comparison through these).
  struct Options {
    std::string policy = "clock";
    bool enable_bgwriter = false;
    uint32_t bgwriter_interval_ms = 5;
    bool enable_prefetch = false;
  };

  /// Creates a pool of `frame_count` frames backed by the file at `path`
  /// (created/truncated), fetching misses through `store`.
  static Result<std::unique_ptr<PrivateBufferPool>> Open(
      const std::string& path, uint32_t frame_count, SegmentStore* store);
  static Result<std::unique_ptr<PrivateBufferPool>> Open(
      const std::string& path, uint32_t frame_count, SegmentStore* store,
      const Options& options);
  ~PrivateBufferPool() override;

  /// Returns the frame address holding `page`, fetching on a miss (and
  /// evicting via the clock when full). The pointer is valid until the
  /// frame is replaced; fixing again is cheap on a hit.
  Result<void*> Fix(PageAddr page, bool for_write = false);

  /// True if the page is currently cached (no I/O).
  bool Contains(PageAddr page);

  /// Writes every dirty frame back through the store.
  Status FlushDirty();

  /// Drops every frame (end-of-transaction behaviour for clients without
  /// inter-transaction caching, §3).
  Status Clear();

  bool OnFault(void* addr, bool is_write) override;

  Stats stats() const;
  uint32_t frame_count() const { return frame_count_; }
  FrameTable* table() { return table_.get(); }

 private:
  /// The protection side of the lifecycle; every hook runs under the
  /// FrameTable mutex except PrepareForWriteback (by core contract).
  class PoolPlacement : public FrameTable::Placement {
   public:
    explicit PoolPlacement(PrivateBufferPool* pool) : pool_(pool) {}
    char* frame_data(uint32_t f) override { return pool_->FrameAddr(f); }
    Status BeginLoad(uint32_t f) override;
    Status FinishLoad(uint32_t f, bool for_write) override;
    Status OnAccess(uint32_t f, bool dirty) override;
    Status OnDirty(uint32_t f) override;
    Status Demote(uint32_t f) override;
    Status PrepareForWriteback(uint32_t f) override;
    Status FinishWriteback(uint32_t f, bool ok) override;
    Status OnEvict(uint32_t f) override;

   private:
    PrivateBufferPool* pool_;
  };

  enum Prot : uint8_t { kOpen = 0, kRevoked = 1 };

  PrivateBufferPool(File file, uint32_t frame_count, SegmentStore* store,
                    const Options& options)
      : file_(std::move(file)),
        frame_count_(frame_count),
        store_io_(store),
        options_(options),
        placement_(this) {}

  Status Init();
  char* FrameAddr(uint32_t f) const {
    return base_ + static_cast<size_t>(f) * kPageSize;
  }

  File file_;
  uint32_t frame_count_;
  StorePageIo store_io_;
  Options options_;
  char* base_ = nullptr;
  int dispatcher_slot_ = -1;
  /// Per-frame protection marker (kRevoked = access-protected by the
  /// clock). Written under the table mutex before the mprotect that makes
  /// it observable; read lock-free on the fault path.
  std::unique_ptr<std::atomic<uint8_t>[]> prot_;
  std::atomic<uint64_t> second_chances_{0};
  PoolPlacement placement_;
  std::unique_ptr<FrameTable> table_;
};

}  // namespace bess

#endif  // BESS_CACHE_PRIVATE_POOL_H_
