// Private buffer pool: the copy-on-access operation mode's cache
// (paper §4.1.1).
//
// "Each process has a private buffer pool ... implemented as a fixed size
// file divided into a number of frames whose size is equal to the BeSS page
// size. The above file is mapped into the process' virtual address space
// using the UNIX mmap system call. Because the file serves as backing store
// for the buffer pool, no physical or swap space is allocated."
//
// Replacement is the paper's protection-state clock (§4.2): the cache
// manager cannot observe loads/stores directly under memory mapping, so the
// clock derives "recently used" from the frame's protection state —
// accessible frames are skipped but access-protected on the way past
// (second chance); a frame still protected when the hand returns is
// replaced. Touching a protected frame faults; the handler re-enables
// access, which is what marks the frame used.
//
// Write detection works the same way at the pool level: frames are mapped
// read-only after a fetch; the first store faults and marks the frame
// dirty before granting write access.
#ifndef BESS_CACHE_PRIVATE_POOL_H_
#define BESS_CACHE_PRIVATE_POOL_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/fault_dispatcher.h"
#include "os/file.h"
#include "storage/storage_area.h"
#include "util/config.h"
#include "util/status.h"
#include "vm/segment_store.h"

namespace bess {

class PrivateBufferPool : public FaultRangeOwner {
 public:
  struct Stats {
    uint64_t fixes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_writebacks = 0;
    uint64_t second_chances = 0;
  };

  /// Creates a pool of `frame_count` frames backed by the file at `path`
  /// (created/truncated), fetching misses through `store`.
  static Result<std::unique_ptr<PrivateBufferPool>> Open(
      const std::string& path, uint32_t frame_count, SegmentStore* store);
  ~PrivateBufferPool() override;

  /// Returns the frame address holding `page`, fetching on a miss (and
  /// evicting via the clock when full). The pointer is valid until the
  /// frame is replaced; fixing again is cheap on a hit.
  Result<void*> Fix(PageAddr page, bool for_write = false);

  /// True if the page is currently cached (no I/O).
  bool Contains(PageAddr page);

  /// Writes every dirty frame back through the store.
  Status FlushDirty();

  /// Drops every frame (end-of-transaction behaviour for clients without
  /// inter-transaction caching, §3).
  Status Clear();

  bool OnFault(void* addr, bool is_write) override;

  const Stats& stats() const { return stats_; }
  uint32_t frame_count() const { return frame_count_; }

 private:
  enum FrameState : uint8_t { kFree = 0, kAccessible, kProtected };

  PrivateBufferPool(File file, uint32_t frame_count, SegmentStore* store)
      : file_(std::move(file)), frame_count_(frame_count), store_(store) {}

  Status Init();
  char* FrameAddr(uint32_t f) const {
    return base_ + static_cast<size_t>(f) * kPageSize;
  }
  /// Clock sweep: returns a victim frame (flushing it if dirty).
  Result<uint32_t> AcquireFrame();
  Status EvictFrame(uint32_t f);
  /// Body of FlushDirty; caller holds mu_ (Clear() reuses it, which is why
  /// a plain mutex suffices here).
  Status FlushDirtyLocked();

  struct FrameInfo {
    uint64_t page_key = 0;
    FrameState state = kFree;
    bool dirty = false;
  };

  File file_;
  uint32_t frame_count_;
  SegmentStore* store_;
  char* base_ = nullptr;
  int dispatcher_slot_ = -1;
  std::mutex mu_;
  std::vector<FrameInfo> frames_;
  std::unordered_map<uint64_t, uint32_t> page_table_;
  uint32_t hand_ = 0;
  Stats stats_;
};

}  // namespace bess

#endif  // BESS_CACHE_PRIVATE_POOL_H_
