// The node cache and shared-memory operation mode (paper §4, Figures 3-4).
//
// The cache is one POSIX shared-memory object: control data (latches, the
// shared mapping table SMT, per-slot metadata, a process table for crash
// cleanup) followed by the page frames. Every process maps the whole object
// once (control access) and additionally maps individual *cache slots* into
// its private virtual-memory address range (PVMA) with MAP_FIXED.
//
// The SMT assigns each database page a *virtual frame* index, the same for
// every process ("if a process maps a page at some frame, all processes see
// this page at this frame — but possibly at different address"). Offsets
// from the start of this fictitious address space (SVMA) are therefore
// valid shared pointers; shm_ref<T> translates SVMA offsets to process
// addresses by adding the local PVMA base. A pointer needs to be fixed only
// once, by the first process that fetched the page.
//
// Slot lifecycle, replacement and write-back are NOT implemented here: the
// slot array is a shared-memory FrameMeta[] driven by the common
// frame-lifecycle core (cache/frame_table.h) with the SMT as its directory
// and the level-2 clock hand in the header as its shared policy state. What
// this file keeps is the shared-memory *placement*: PVMA binding, the
// per-process level-1 protection clock (§4.2: accessible → protected →
// invalid), and crash cleanup. The slot reference counter of the paper is
// the frame's pin count — a slot with pins == 0 is bound by no process and
// only then can the level-2 clock replace it.
#ifndef BESS_CACHE_SHARED_CACHE_H_
#define BESS_CACHE_SHARED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/frame_table.h"
#include "os/fault_dispatcher.h"
#include "os/latch.h"
#include "os/shm.h"
#include "storage/storage_area.h"
#include "util/config.h"
#include "util/status.h"
#include "vm/segment_store.h"

namespace bess {

inline constexpr uint32_t kMaxCacheProcs = 64;

/// One SMT entry: page -> (virtual frame, current cache slot).
struct SmtEntry {
  std::atomic<uint64_t> page_key{0};  ///< 0 = empty
  std::atomic<uint32_t> vframe{kNoFrame};
  std::atomic<uint32_t> slot{kNoFrame};  ///< kNoFrame when not cached
};

struct ShmHeader {
  static constexpr uint32_t kMagic = 0xBE555CADu;  ///< v2: FrameMeta slots
  uint32_t magic;
  uint32_t frame_count;   ///< cache slots
  uint32_t vframe_count;  ///< PVMA frames (>= frame_count)
  uint32_t smt_capacity;
  Latch smt_latch;
  std::atomic<uint32_t> clock_hand{0};     ///< level-2 hand over slots
  std::atomic<uint32_t> next_vframe{0};
  std::atomic<uint32_t> pids[kMaxCacheProcs];
};

/// The shared cache object itself (creation/attachment + raw accessors).
/// Per-slot control data is the lifecycle core's FrameMeta, placed in the
/// shared segment so every process sees one state machine per slot.
class SharedCache {
 public:
  struct Geometry {
    uint32_t frame_count = 256;
    uint32_t vframe_count = 1024;
    uint32_t smt_capacity = 4096;  ///< power of two, > vframe_count
  };

  static Result<SharedCache> Create(const std::string& name, Geometry geo);
  static Result<SharedCache> Attach(const std::string& name);

  SharedCache() = default;
  SharedCache(SharedCache&&) = default;
  SharedCache& operator=(SharedCache&&) = default;

  ShmHeader* header() const { return header_; }
  FrameMeta* slot(uint32_t i) const { return slots_ + i; }
  SmtEntry* entry(uint32_t i) const { return smt_ + i; }
  /// Per-process slot-binding map (crash cleanup bookkeeping, per [20]).
  uint8_t* proc_bindings(uint32_t proc_idx) const {
    return bindings_ + static_cast<size_t>(proc_idx) * header_->frame_count;
  }
  /// File offset of slot i's page frame (for MAP_FIXED into the PVMA).
  uint64_t frame_offset(uint32_t i) const {
    return frames_offset_ + static_cast<uint64_t>(i) * kPageSize;
  }
  /// Direct pointer to slot i's frame in this process's whole-object map.
  char* frame_data(uint32_t i) const {
    return static_cast<char*>(shm_.base()) + frame_offset(i);
  }
  int fd() const { return shm_.fd(); }

  /// Finds or creates the SMT entry for `page_key`, assigning a virtual
  /// frame on first sight. NoSpace when SMT or vframes are exhausted.
  Result<SmtEntry*> AssignEntry(uint64_t page_key);
  /// Finds the entry for `page_key`; nullptr when absent.
  SmtEntry* FindEntry(uint64_t page_key) const;
  /// Entry whose vframe == `vframe`, or nullptr (linear probe; fault path).
  SmtEntry* EntryByVframe(uint32_t vframe) const;

  /// Registers this process in the process table; returns its index.
  Result<uint32_t> RegisterProcess();
  void UnregisterProcess(uint32_t proc_idx);

  /// Breaks latches and releases slot bindings held by dead processes
  /// ("cleanup of shared structures from process failures", §4.1.2).
  /// Returns the number of dead processes cleaned.
  Result<int> CleanupDeadProcesses();

  Status Unlink() { return shm_.Unlink(); }

 private:
  void InitPointers();

  SharedMemory shm_;
  ShmHeader* header_ = nullptr;
  FrameMeta* slots_ = nullptr;
  SmtEntry* smt_ = nullptr;
  uint8_t* bindings_ = nullptr;
  uint64_t frames_offset_ = 0;
};

/// Per-process window into the shared cache: the PVMA region plus the
/// level-1 clock. This is the "shared memory" operation mode's access path.
/// Slot replacement (the level-2 clock), fetch, and write-back are the
/// frame core's job; this class binds slots into the PVMA and feeds the
/// core's pin counts from its bindings.
class SharedPageSpace : public FaultRangeOwner {
 public:
  struct Stats {
    uint64_t fixes = 0;
    uint64_t hits = 0;           ///< slot already in cache
    uint64_t misses = 0;         ///< fetched from the store
    uint64_t second_chances = 0; ///< protected frame re-enabled
    uint64_t remaps = 0;         ///< invalid frame re-bound to a slot
    uint64_t evictions = 0;      ///< level-2 replacements performed
    uint64_t clock_sweeps = 0;
  };

  /// Frame-core knobs (bench_modes drives the bgwriter comparison).
  struct Options {
    bool enable_bgwriter = false;
    uint32_t bgwriter_interval_ms = 5;
    /// Unsupported in shared mode — Open fails if set. The prefetch
    /// install step cannot take the SMT latch from the background thread
    /// (lock-order inversion with the miss path), so cross-process
    /// single-copy residency cannot be guaranteed for speculative loads.
    bool enable_prefetch = false;
  };

  /// `store` supplies page fetch/write-back (a LocalStore on the node
  /// server, a remote store on pure clients).
  static Result<std::unique_ptr<SharedPageSpace>> Open(SharedCache cache,
                                                       SegmentStore* store);
  static Result<std::unique_ptr<SharedPageSpace>> Open(SharedCache cache,
                                                       SegmentStore* store,
                                                       const Options& options);
  ~SharedPageSpace() override;

  /// Returns the stable per-process address of `page`, fetching and mapping
  /// as needed. The address stays valid for the life of the process: after
  /// replacement it refaults transparently. `for_write` marks the slot
  /// dirty (shared-mode writes synchronize via latches, §4.1.2).
  Result<void*> Fix(PageAddr page, bool for_write);

  /// Latch helpers for atomic object read/write in the shared cache.
  Status LatchPage(PageAddr page);
  Status UnlatchPage(PageAddr page);

  /// SVMA offset of a process address (shared pointer form), and back.
  Result<uint64_t> ToSvma(const void* addr) const;
  void* FromSvma(uint64_t svma) const {
    return pvma_base_ + svma;
  }

  /// Writes back every dirty slot through the store (LSN-ordered by the
  /// frame core).
  Status FlushDirty();

  /// Level-1 clock over this process's frames: accessible -> protected,
  /// protected -> invalid (unbind). Sweeps `frames` frames from the local
  /// hand (0 = full sweep).
  Status RunClockLevel1(uint32_t frames = 0);

  bool OnFault(void* addr, bool is_write) override;

  Stats stats() const;
  char* pvma_base() const { return pvma_base_; }
  SharedCache* cache() { return &cache_; }
  FrameTable* table() { return table_.get(); }

 private:
  /// Local (per-process) binding state of a PVMA frame; the shared slot
  /// lifecycle lives in FrameMeta.
  enum PvmaState : uint8_t { kInvalid = 0, kProtected = 1, kAccessible = 2 };

  /// The SMT as the frame core's directory. Entries are created by
  /// AssignEntry before the core ever sees the key, so Install only updates
  /// the entry's slot field.
  class SmtDirectory : public FrameTable::Directory {
   public:
    explicit SmtDirectory(SharedCache* cache) : cache_(cache) {}
    uint32_t Lookup(uint64_t key) override;
    Status Install(uint64_t key, uint32_t f) override;
    void Erase(uint64_t key, uint32_t f) override;

   private:
    SharedCache* cache_;
  };

  /// Shared-memory placement: frames are always mapped read-write in the
  /// whole-object view (protection applies to PVMA views, handled by the
  /// level-1 clock), so most hooks are no-ops. Write-back of a *bound*
  /// slot latches it against cross-process writers.
  class SharedPlacement : public FrameTable::Placement {
   public:
    explicit SharedPlacement(SharedPageSpace* space) : space_(space) {}
    char* frame_data(uint32_t f) override;
    Status PrepareForWriteback(uint32_t f) override;
    Status FinishWriteback(uint32_t f, bool ok) override;
    Status ReleasePressure() override;

   private:
    SharedPageSpace* space_;
  };

  explicit SharedPageSpace(SharedCache cache, SegmentStore* store,
                           const Options& options)
      : cache_(std::move(cache)),
        store_io_(store),
        options_(options),
        smt_dir_(&cache_),
        placement_(this) {}

  Status Init();
  /// Binds `vframe` to `slot`: MAP_FIXED of the slot's frame, read-write.
  /// A new binding pins the slot (the paper's slot reference counter).
  Status BindFrame(uint32_t vframe, uint32_t slot);
  /// Unbinds: decommit + unpin.
  Status UnbindFrame(uint32_t vframe);
  /// Makes `entry`'s page resident via the frame core and binds it, under
  /// the SMT latch (cross-process miss serialization).
  Status MapIn(SmtEntry* entry, uint32_t vframe);
  Status ResolveFrameFault(uint32_t vframe);
  /// Body of RunClockLevel1; caller holds mu_. Also the core's
  /// ReleasePressure hook (reached only from Fix, which holds mu_).
  Status RunClockLevel1Locked(uint32_t frames);

  SharedCache cache_;
  StorePageIo store_io_;
  Options options_;
  SmtDirectory smt_dir_;
  SharedPlacement placement_;
  std::unique_ptr<FrameTable> table_;
  char* pvma_base_ = nullptr;
  size_t pvma_bytes_ = 0;
  int dispatcher_slot_ = -1;
  uint32_t proc_idx_ = kNoFrame;
  std::vector<uint8_t> frame_state_;
  std::vector<uint32_t> frame_slot_;  // bound slot per vframe (local view)
  /// latched_[s] != 0 while this process's write-back of slot s holds its
  /// latch. Only the thread running that write-back touches entry s
  /// (serialized by the kWriting state under the table mutex).
  std::vector<uint8_t> latched_;
  uint32_t local_hand_ = 0;
  std::mutex mu_;
  Stats stats_;
};

}  // namespace bess

#endif  // BESS_CACHE_SHARED_CACHE_H_
