// CachedSegmentStore: a read cache between the mapper and a SegmentStore.
//
// Server-linked applications fetch straight from the storage areas, so a
// page cache there mostly duplicates the OS file cache. Remote clients are
// different: every SegmentStore fetch is an RPC, and re-faulting a segment
// after eviction repeats the round trip. This decorator keeps recently
// fetched pages in a heap-placement frame-core configuration and serves
// repeat fetches locally.
//
// The cache is read-only from the frame core's point of view — frames are
// never dirtied, so there is nothing to write back and no bgwriter. Writes
// go through to the inner store and refresh the cached copy (write-through),
// keeping the cache coherent with the paper's no-steal/force discipline
// where pages only reach the store at commit.
//
// It also implements PrefetchSink: the mapper reports each fetched page run,
// the frame core's sequential-run detector turns consecutive runs into
// read-ahead (cache.prefetch.* metrics).
#ifndef BESS_CACHE_CACHED_STORE_H_
#define BESS_CACHE_CACHED_STORE_H_

#include <functional>
#include <memory>
#include <string>

#include "cache/async_page_io.h"
#include "cache/frame_table.h"
#include "storage/storage_area.h"
#include "util/config.h"
#include "vm/segment_store.h"

namespace bess {

class CachedSegmentStore : public SegmentStore, public PrefetchSink {
 public:
  struct Options {
    uint32_t frame_count = 0;
    bool enable_prefetch = true;
    uint32_t prefetch_trigger = 2;  ///< runs, not pages: be eager on RPC paths
    uint32_t prefetch_window = 8;
    /// Forwarded to FrameTable::Options::on_cleaned: fired (without the
    /// table mutex) when a write-back finalizes a frame clean.
    std::function<void(uint64_t key, uint64_t rec_lsn)> on_cleaned;

    /// Batched async backend for prefetch and push-based scans:
    /// "off" (default) keeps the classic synchronous paths;
    /// "auto"/"uring"/"pool" select an AsyncPageIo (see async_page_io.h).
    std::string async_backend = "off";
    uint32_t async_queue_depth = 16;
    uint32_t async_workers = 4;
    /// Raw (fd, offset) resolver enabling the io_uring path; null limits
    /// backend selection to the worker pool over the inner store.
    aio::RawPageSource* raw_source = nullptr;
  };

  /// `inner` must outlive this store.
  CachedSegmentStore(SegmentStore* inner, Options options);
  ~CachedSegmentStore() override;

  Status Init();
  void Stop();

  Status FetchSlotted(SegmentId id, void* buf, uint32_t* page_count) override;
  Status FetchPages(uint16_t db, uint16_t area, PageId first,
                    uint32_t page_count, void* buf) override;
  Status WritePages(uint16_t db, uint16_t area, PageId first,
                    uint32_t page_count, const void* buf) override;

  void NoteFetch(uint16_t db, uint16_t area, PageId first,
                 uint32_t page_count) override;

  /// Per-page scan delivery: `page` is frame-resident for the call only.
  using ScanConsumer =
      std::function<Status(PageId page, const void* bytes)>;

  /// Streams `page_count` pages from `first` through `consume` in order.
  /// With an async backend this is the push path: reads are staged into
  /// the frame table ahead of the consumer (FrameTable::ScanRange);
  /// without one it degrades to the pull-on-fault loop.
  Status ScanPages(uint16_t db, uint16_t area, PageId first,
                   uint32_t page_count, const ScanConsumer& consume);

  /// Active async backend name ("off" when none).
  const char* async_backend() const {
    return async_io_ == nullptr ? "off" : async_io_->backend();
  }
  AsyncPageIo* async_io() { return async_io_.get(); }

  /// Refreshes the cached copy of a page (used by the commit force path).
  void Refresh(uint16_t db, uint16_t area, PageId page, const void* bytes);
  /// Drops everything (after scrub/repair the store may differ from us).
  void InvalidateAll();

  FrameTable* table() { return table_.get(); }

 private:
  static uint64_t Key(uint16_t db, uint16_t area, PageId page) {
    return PageAddr{db, area, page}.Pack();
  }

  SegmentStore* inner_;
  Options options_;
  HeapPlacement placement_;
  StorePageIo io_;
  /// Destroyed after table_ (declared first): the table's Stop() drains
  /// every in-flight op before the backend's threads go away.
  std::unique_ptr<AsyncPageIo> async_io_;
  std::unique_ptr<FrameTable> table_;
};

}  // namespace bess

#endif  // BESS_CACHE_CACHED_STORE_H_
