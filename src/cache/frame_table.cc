#include "cache/frame_table.h"

#include <algorithm>
#include <chrono>

#include "cache/async_page_io.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace bess {
namespace {

/// How long a foreground miss nudges the bgwriter before falling back to a
/// synchronous write-back, and how many whole acquisition rounds run before
/// giving up (each round ends in Placement::ReleasePressure).
constexpr int kBgWaitAttempts = 3;
constexpr int kPressureRounds = 3;
constexpr auto kLoadPoll = std::chrono::milliseconds(1);

class MapDirectory : public FrameTable::Directory {
 public:
  uint32_t Lookup(uint64_t key) override {
    auto it = map_.find(key);
    return it == map_.end() ? kNoFrame : it->second;
  }
  Status Install(uint64_t key, uint32_t f) override {
    map_[key] = f;
    return Status::OK();
  }
  void Erase(uint64_t key, uint32_t f) override {
    auto it = map_.find(key);
    if (it != map_.end() && it->second == f) map_.erase(it);
  }

 private:
  std::unordered_map<uint64_t, uint32_t> map_;
};

}  // namespace

FrameTable::FrameTable(const Options& opts, Placement* placement, PageIo* io)
    : opts_(opts), placement_(placement), io_(io) {}

FrameTable::~FrameTable() { Stop(); }

Status FrameTable::Init() {
  if (opts_.frame_count == 0) {
    return Status::InvalidArgument("frame table needs at least one frame");
  }
  if (opts_.async_io != nullptr) {
    if (opts_.directory != nullptr) {
      // Async claim/install runs under only this process's table mutex —
      // same single-copy hazard as prefetch below.
      return Status::InvalidArgument(
          "async I/O is unsupported with an external (cross-process) "
          "directory");
    }
    if (opts_.async_queue_depth == 0) opts_.async_queue_depth = 1;
    aio_ = opts_.async_io;
    aio_pending_.assign(opts_.frame_count, PendingAio{});
  }
  if (opts_.enable_prefetch && opts_.directory != nullptr) {
    // The prefetch claim/install step runs on the background thread under
    // only this process's table mutex. An external directory (the shared
    // mapping table) is also written by other processes' miss paths, which
    // serialize on the SMT latch that thread does not hold — a prefetch
    // here racing a remote miss could leave one page resident in two
    // slots, breaking the single-copy invariant.
    return Status::InvalidArgument(
        "prefetch is unsupported with an external (cross-process) directory");
  }
  ClockPolicyOptions co;
  co.use_ref_bits = opts_.clock_ref_bits;
  co.shared_hand = opts_.shared_hand;
  BESS_ASSIGN_OR_RETURN(
      policy_, MakeReplacementPolicy(opts_.policy, opts_.frame_count, co));
  if (opts_.frames != nullptr) {
    meta_ = opts_.frames;
  } else {
    owned_meta_.reset(new FrameMeta[opts_.frame_count]);
    meta_ = owned_meta_.get();
  }
  if (opts_.directory != nullptr) {
    dir_ = opts_.directory;
  } else {
    owned_dir_.reset(new MapDirectory());
    dir_ = owned_dir_.get();
  }
  if (opts_.enable_bgwriter || opts_.enable_prefetch) {
    std::lock_guard<std::mutex> guard(mu_);
    running_ = true;
    bg_thread_ = std::thread([this] { BackgroundMain(); });
  }
  return Status::OK();
}

void FrameTable::Stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    running_ = false;
  }
  bg_cv_.notify_all();
  if (bg_thread_.joinable()) bg_thread_.join();
  if (aio_ != nullptr) {
    // Drain every in-flight async op: a frame left kLoading/kWriting with a
    // pending completion would leak (never evictable). The engine contract
    // guarantees one completion per accepted request, so this terminates;
    // the retry cap only guards against a wedged backend.
    std::unique_lock<std::mutex> lk(mu_);
    for (int spins = 0; aio_inflight_ > 0 && spins < 200; ++spins) {
      (void)ReapAioLocked(lk, 50);
    }
    if (aio_inflight_ > 0) {
      BESS_ERROR("frame table stopped with " << aio_inflight_
                                             << " async page ops unreaped");
    }
  }
}

bool FrameTable::EvictableLocked(uint32_t f, bool allow_dirty) const {
  if (meta_[f].pins.load(std::memory_order_acquire) != 0) return false;
  // A frame whose write-back I/O is still in flight (kWriting, or kDirty
  // after a re-dirty) must keep its bytes until that writer lands.
  if (meta_[f].writer.load(std::memory_order_acquire) != 0) return false;
  switch (meta_[f].State()) {
    case FrameState::kFree:
    case FrameState::kClean:
      return true;
    case FrameState::kDirty:
      return allow_dirty;
    default:
      return false;
  }
}

Status FrameTable::MarkDirtyLocked(uint32_t f, uint64_t lsn) {
  FrameMeta& m = meta_[f];
  switch (m.State()) {
    case FrameState::kClean:
    case FrameState::kWriting:
      // kWriting: the in-flight write-back carries a stale image; leaving
      // the frame dirty makes its finalize CAS fail, so the page is
      // rewritten later. This is how re-dirty-during-write stays lossless.
      // recLSN: set only when the frame was verifiably clean — this LSN is
      // then the page's redo lower bound until it turns clean again. On a
      // kWriting re-dirty the old recLSN stands (the in-flight write may
      // still fail, so the earlier records may still need redo); 0 means
      // dirtied without an LSN and the checkpoint has no bound to snapshot.
      if (m.State() == FrameState::kClean) {
        m.rec_lsn.store(lsn, std::memory_order_relaxed);
      }
      SetState(f, FrameState::kDirty);
      // Software flavour of the write-detection event the fault path
      // counts for hardware detection (§2.3).
      BESS_COUNT("vm.fault.detect");
      break;
    case FrameState::kDirty:
      break;
    default:
      return Status::Internal("MarkDirty on a frame with no page");
  }
  if (lsn != 0) {
    uint64_t cur = m.page_lsn.load(std::memory_order_relaxed);
    while (lsn > cur &&
           !m.page_lsn.compare_exchange_weak(cur, lsn,
                                             std::memory_order_relaxed)) {
    }
  }
  return placement_->OnDirty(f);
}

Status FrameTable::MarkDirty(uint32_t f, uint64_t lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  if (f >= opts_.frame_count) return Status::InvalidArgument("bad frame");
  return MarkDirtyLocked(f, lsn);
}

Status FrameTable::NoteAccess(uint32_t f) {
  std::unique_lock<std::mutex> lk(mu_);
  if (f >= opts_.frame_count) return Status::InvalidArgument("bad frame");
  const FrameState st = StateOf(f);
  if (st != FrameState::kClean && st != FrameState::kDirty &&
      st != FrameState::kWriting) {
    return Status::Internal("touch of a frame with no page");
  }
  policy_->OnAccess(f);
  return placement_->OnAccess(f, st == FrameState::kDirty);
}

Status FrameTable::EvictLocked(uint32_t f) {
  FrameMeta& m = meta_[f];
  if (m.State() == FrameState::kFree) {
    policy_->OnEvict(f);
    return Status::OK();
  }
  SetState(f, FrameState::kEvicting);
  const uint64_t old_key = m.page_key.load(std::memory_order_acquire);
  if (m.prefetched.exchange(0, std::memory_order_relaxed) != 0) {
    stats_.prefetch_wasted++;
    BESS_COUNT("cache.prefetch.wasted");
  }
  if (old_key != 0) dir_->Erase(old_key, f);
  Status es = placement_->OnEvict(f);
  m.page_key.store(0, std::memory_order_release);
  m.page_lsn.store(0, std::memory_order_relaxed);
  m.rec_lsn.store(0, std::memory_order_relaxed);
  SetState(f, FrameState::kFree);
  policy_->OnEvict(f);
  if (old_key != 0) {
    stats_.evictions++;
    BESS_COUNT("cache.eviction");
  }
  // A frame just became free: a foreground pressure-waiter blocked on
  // cleaned_cv_ may now have a victim — or, if this was the last unpinned
  // dirty frame (evicted after a write-back), waiting no longer helps.
  // Without this notify that waiter sleeps out its whole slice.
  cleaned_cv_.notify_all();
  return es;
}

Status FrameTable::WriteBackLocked(uint32_t f,
                                   std::unique_lock<std::mutex>& lk,
                                   WritebackMode mode) {
  FrameMeta& m = meta_[f];
  if (io_ == nullptr) {
    // Put/get caches have no backing store: dirty frames simply drop.
    SetState(f, FrameState::kClean);
    return Status::OK();
  }
  // One write-back per frame at a time, across threads and processes: the
  // writer flag is claimed before any state change, so a frame re-dirtied
  // while its write is in flight (kWriting → kDirty via MarkDirty) cannot
  // enter a second concurrent write-back, and the finalize CAS below can
  // only ever match this writer's own kWriting.
  for (uint8_t unclaimed = 0;
       !m.writer.compare_exchange_strong(unclaimed, 1,
                                         std::memory_order_acq_rel);
       unclaimed = 0) {
    // Background and evict callers just skip: the frame is retried next
    // round or re-validated by the caller. Flush waits out the in-flight
    // write (possibly another process's, hence the timed poll) so
    // FlushDirty's everything-durable contract holds.
    if (mode != WritebackMode::kFlush) return Status::OK();
    cleaned_cv_.wait_for(lk, kLoadPoll);
  }
  if (m.State() != FrameState::kDirty) {
    // Cleaned — or evicted and reloaded — while we waited for the flag.
    m.writer.store(0, std::memory_order_release);
    return Status::OK();
  }
  SetState(f, FrameState::kWriting);
  const uint64_t key = m.page_key.load(std::memory_order_acquire);
  lk.unlock();
  // Structural invariant (the PR 4 self-deadlock fix, now a lifecycle
  // rule): the placement makes the frame readable — lifting any access
  // protection and latching against writers — before I/O touches it.
  Status ws = placement_->PrepareForWriteback(f);
  // The covering LSN is read only after the placement latched the frame:
  // a mutator may have rewritten the bytes between the claim above and
  // the latch, and the WAL gate must cover whatever image the I/O reads.
  const uint64_t lsn = m.page_lsn.load(std::memory_order_acquire);
  if (ws.ok()) ws = io_->EnsureWalDurable(lsn);
  if (ws.ok()) ws = io_->Write(key, placement_->frame_data(f));
  lk.lock();
  if (!ws.ok()) {
    SetState(f, FrameState::kDirty);
    (void)placement_->FinishWriteback(f, false);
    m.writer.store(0, std::memory_order_release);
    cleaned_cv_.notify_all();
    return ws;
  }
  // Fails when the frame was re-dirtied during the write; it then stays
  // kDirty and is written again later. FinishWriteback runs after, so the
  // placement re-arms protection from the true post-write state.
  uint8_t expected = static_cast<uint8_t>(FrameState::kWriting);
  bool cleaned = false;
  uint64_t cleaned_rec_lsn = 0;
  if (m.state.compare_exchange_strong(expected,
                                      static_cast<uint8_t>(FrameState::kClean),
                                      std::memory_order_acq_rel)) {
    cleaned = true;
    cleaned_rec_lsn = m.rec_lsn.exchange(0, std::memory_order_relaxed);
  }
  (void)placement_->FinishWriteback(f, true);
  m.writer.store(0, std::memory_order_release);
  stats_.writebacks++;
  BESS_COUNT("cache.writeback");
  if (mode == WritebackMode::kSyncEvict) {
    stats_.sync_writebacks++;
    BESS_COUNT("cache.evict.sync_writeback");
  } else if (mode == WritebackMode::kBackground) {
    stats_.bgwriter_flushed++;
    BESS_COUNT("cache.bgwriter.flushed");
  }
  cleaned_cv_.notify_all();
  load_cv_.notify_all();
  if (cleaned && opts_.on_cleaned) {
    // Without the mutex: the checkpoint thread holds its recovery mutex
    // across CollectDirty (which takes mu_), and the callback takes that
    // same recovery mutex — firing under mu_ would invert the order. The
    // frame may be re-dirtied or evicted by the time the callback runs;
    // that's fine, the callback only parks (key, recLSN) conservatively.
    lk.unlock();
    opts_.on_cleaned(key, cleaned_rec_lsn);
    lk.lock();
  }
  return Status::OK();
}

Result<uint32_t> FrameTable::AcquireFrameLocked(
    std::unique_lock<std::mutex>& lk) {
  Status demote_status;
  auto demote = [&](uint32_t f) {
    Status s = placement_->Demote(f);
    if (!s.ok() && demote_status.ok()) demote_status = s;
  };
  auto clean = [&](uint32_t f) { return EvictableLocked(f, false); };
  auto any = [&](uint32_t f) { return EvictableLocked(f, true); };

  for (int round = 0; round < kPressureRounds; ++round) {
    if (opts_.enable_bgwriter && io_ != nullptr) {
      // Prefer clean victims; when only dirty frames remain, kick the
      // bgwriter and wait briefly instead of stalling on write I/O.
      for (int attempt = 0;; ++attempt) {
        const uint32_t f = policy_->PickVictim(clean, demote);
        BESS_RETURN_IF_ERROR(demote_status);
        if (f != kNoFrame) {
          BESS_RETURN_IF_ERROR(EvictLocked(f));
          return f;
        }
        if (attempt >= kBgWaitAttempts) break;
        // Waiting only helps if the bgwriter can actually mint a victim:
        // an unpinned dirty frame (or one whose write-back is already in
        // flight). When every frame is pinned (shared mode with all slots
        // bound), fall through to ReleasePressure instead.
        auto any_cleanable = [&] {
          for (uint32_t i = 0; i < opts_.frame_count; ++i) {
            const FrameState st = StateOf(i);
            if (meta_[i].pins.load(std::memory_order_acquire) == 0 &&
                (st == FrameState::kDirty || st == FrameState::kWriting)) {
              return true;
            }
          }
          return false;
        };
        auto any_clean_victim = [&] {
          for (uint32_t i = 0; i < opts_.frame_count; ++i) {
            if (EvictableLocked(i, false)) return true;
          }
          return false;
        };
        if (!any_cleanable()) break;
        urgent_flush_ = true;
        bg_cv_.notify_all();
        stats_.pressure_waits++;
        BESS_COUNT("cache.bgwriter.pressure_wait");
        // Predicate wait, not a bare timed sleep: the state this waiter
        // cares about can change without a write-back completing — the
        // last unpinned dirty frame can get pinned (waiting is then
        // futile) or evicted (a victim exists). Both paths notify
        // cleaned_cv_; the predicate makes the wakeup effective instead of
        // sleeping out the full slice (missed-wakeup fix).
        cleaned_cv_.wait_for(
            lk, std::chrono::milliseconds(opts_.bgwriter_wait_slice_ms),
            [&] { return any_clean_victim() || !any_cleanable(); });
      }
    }
    const uint32_t f = policy_->PickVictim(any, demote);
    BESS_RETURN_IF_ERROR(demote_status);
    if (f != kNoFrame) {
      if (StateOf(f) == FrameState::kDirty && io_ != nullptr) {
        BESS_RETURN_IF_ERROR(
            WriteBackLocked(f, lk, WritebackMode::kSyncEvict));
        // The lock dropped during the write; re-validate before evicting.
        if (!EvictableLocked(f, false)) continue;
      }
      BESS_RETURN_IF_ERROR(EvictLocked(f));
      return f;
    }
    BESS_RETURN_IF_ERROR(placement_->ReleasePressure());
  }
  return Status::Busy("cache exhausted: all frames pinned or bound");
}

Result<FrameTable::FixResult> FrameTable::Fix(uint64_t key, bool for_write,
                                              bool pin) {
  if (key == 0) return Status::InvalidArgument("null page key");
  std::unique_lock<std::mutex> lk(mu_);
  stats_.fixes++;
  for (;;) {
    const uint32_t f = dir_->Lookup(key);
    if (f == kNoFrame) break;
    FrameMeta& m = meta_[f];
    if (m.page_key.load(std::memory_order_acquire) != key) break;
    const FrameState st = m.State();
    if (st == FrameState::kLoading) {
      // Another thread (or, in shared mode, another process) is filling
      // this frame; wait with a poll so cross-process loads finish too.
      // With an async backend the fill may be a completion nobody has
      // reaped yet — reap instead of sleeping so a lone foreground thread
      // makes progress without depending on the background thread.
      if (aio_ != nullptr && aio_inflight_ > 0) {
        (void)ReapAioLocked(lk, 1);
      } else {
        load_cv_.wait_for(lk, kLoadPoll);
      }
      continue;
    }
    if (st == FrameState::kFree || st == FrameState::kEvicting) break;
    // Hit.
    if (m.prefetched.exchange(0, std::memory_order_relaxed) != 0) {
      stats_.prefetch_hits++;
      BESS_COUNT("cache.prefetch.hits");
      FeedPrefetchLocked(key, 1);
    }
    policy_->OnAccess(f);
    BESS_RETURN_IF_ERROR(placement_->OnAccess(f, st == FrameState::kDirty));
    if (for_write) BESS_RETURN_IF_ERROR(MarkDirtyLocked(f, 0));
    if (pin) {
      m.pins.fetch_add(1, std::memory_order_acq_rel);
      if (m.State() == FrameState::kDirty) {
        // Pinning a dirty frame may have removed the last frame the
        // bgwriter could mint into a victim: wake pressure-waiters so they
        // re-check instead of sleeping out their slice (missed-wakeup fix).
        cleaned_cv_.notify_all();
      }
    }
    stats_.hits++;
    BESS_COUNT("cache.hit");
    return FixResult{f, placement_->frame_data(f), true};
  }

  // Miss: claim a frame, publish it as loading, fetch outside the lock.
  BESS_ASSIGN_OR_RETURN(const uint32_t f, AcquireFrameLocked(lk));
  FrameMeta& m = meta_[f];
  m.page_key.store(key, std::memory_order_release);
  m.prefetched.store(0, std::memory_order_relaxed);
  SetState(f, FrameState::kLoading);
  // Install/BeginLoad/fetch failures all unwind through the cleanup below:
  // a frame left kLoading is never evictable and would leak permanently.
  Status ls = dir_->Install(key, f);
  if (ls.ok()) ls = placement_->BeginLoad(f);
  if (ls.ok()) {
    FeedPrefetchLocked(key, 1);
    if (io_ != nullptr) {
      lk.unlock();
      ls = io_->Fetch(key, placement_->frame_data(f));
      lk.lock();
    } else {
      memset(placement_->frame_data(f), 0, kPageSize);
    }
  }
  if (!ls.ok()) {
    dir_->Erase(key, f);
    m.page_key.store(0, std::memory_order_release);
    SetState(f, FrameState::kFree);
    load_cv_.notify_all();
    return ls;
  }
  SetState(f, for_write ? FrameState::kDirty : FrameState::kClean);
  BESS_RETURN_IF_ERROR(placement_->FinishLoad(f, for_write));
  policy_->OnInsert(f);
  if (pin) m.pins.fetch_add(1, std::memory_order_acq_rel);
  stats_.misses++;
  BESS_COUNT("cache.miss");
  load_cv_.notify_all();
  return FixResult{f, placement_->frame_data(f), false};
}

Status FrameTable::Unpin(uint32_t f) {
  if (f >= opts_.frame_count) return Status::InvalidArgument("bad frame");
  std::lock_guard<std::mutex> guard(mu_);
  if (meta_[f].pins.load(std::memory_order_acquire) == 0) {
    return Status::Internal("unpin of an unpinned frame");
  }
  meta_[f].pins.fetch_sub(1, std::memory_order_acq_rel);
  return Status::OK();
}

bool FrameTable::Contains(uint64_t key) {
  std::lock_guard<std::mutex> guard(mu_);
  const uint32_t f = dir_->Lookup(key);
  if (f == kNoFrame) return false;
  if (meta_[f].page_key.load(std::memory_order_acquire) != key) return false;
  return meta_[f].State() != FrameState::kFree;
}

Status FrameTable::FlushDirtyLocked(std::unique_lock<std::mutex>& lk,
                                    WritebackMode mode) {
  if (io_ == nullptr) return Status::OK();
  std::vector<uint32_t> dirty;
  uint64_t max_lsn = 0;
  for (uint32_t f = 0; f < opts_.frame_count; ++f) {
    if (StateOf(f) != FrameState::kDirty) continue;
    dirty.push_back(f);
    max_lsn =
        std::max(max_lsn, meta_[f].page_lsn.load(std::memory_order_relaxed));
  }
  if (dirty.empty()) return Status::OK();
  // LSN-ascending order + one up-front WAL gate: WAL-before-data holds for
  // every page, with one log fsync per pass instead of one per page.
  std::sort(dirty.begin(), dirty.end(), [this](uint32_t a, uint32_t b) {
    return meta_[a].page_lsn.load(std::memory_order_relaxed) <
           meta_[b].page_lsn.load(std::memory_order_relaxed);
  });
  if (max_lsn != 0) {
    lk.unlock();
    Status ws = io_->EnsureWalDurable(max_lsn);
    lk.lock();
    BESS_RETURN_IF_ERROR(ws);
  }
  for (uint32_t f : dirty) {
    if (StateOf(f) != FrameState::kDirty) continue;
    BESS_RETURN_IF_ERROR(WriteBackLocked(f, lk, mode));
  }
  return Status::OK();
}

Status FrameTable::FlushDirty() {
  std::unique_lock<std::mutex> lk(mu_);
  return FlushDirtyLocked(lk, WritebackMode::kFlush);
}

void FrameTable::CollectDirty(
    std::vector<std::pair<uint64_t, uint64_t>>* out) const {
  std::lock_guard<std::mutex> guard(mu_);
  for (uint32_t f = 0; f < opts_.frame_count; ++f) {
    const FrameState st = StateOf(f);
    // kWriting counts: the write-back has not been acked durable yet, so
    // redo must still cover this page from its recLSN.
    if (st != FrameState::kDirty && st != FrameState::kWriting) continue;
    const uint64_t key = meta_[f].page_key.load(std::memory_order_acquire);
    if (key == 0) continue;
    out->emplace_back(key, meta_[f].rec_lsn.load(std::memory_order_relaxed));
  }
}

bool FrameTable::Get(uint64_t key, void* out) {
  if (key == 0) return false;
  std::lock_guard<std::mutex> guard(mu_);
  stats_.fixes++;
  const uint32_t f = dir_->Lookup(key);
  if (f == kNoFrame || meta_[f].page_key.load(std::memory_order_acquire) != key) {
    stats_.misses++;
    return false;
  }
  const FrameState st = StateOf(f);
  if (st == FrameState::kFree || st == FrameState::kLoading ||
      st == FrameState::kEvicting) {
    stats_.misses++;
    return false;
  }
  memcpy(out, placement_->frame_data(f), kPageSize);
  policy_->OnAccess(f);
  stats_.hits++;
  BESS_COUNT("cache.hit");
  return true;
}

Status FrameTable::Put(uint64_t key, const void* bytes) {
  if (key == 0) return Status::InvalidArgument("null page key");
  std::unique_lock<std::mutex> lk(mu_);
  const uint32_t f = dir_->Lookup(key);
  if (f != kNoFrame &&
      meta_[f].page_key.load(std::memory_order_acquire) == key) {
    const FrameState st = StateOf(f);
    if (st == FrameState::kLoading || st == FrameState::kEvicting ||
        st == FrameState::kWriting) {
      return Status::Busy("frame busy");
    }
    if (st != FrameState::kFree) {
      memcpy(placement_->frame_data(f), bytes, kPageSize);
      policy_->OnAccess(f);
      return Status::OK();
    }
  }
  BESS_ASSIGN_OR_RETURN(const uint32_t nf, AcquireFrameLocked(lk));
  FrameMeta& m = meta_[nf];
  m.page_key.store(key, std::memory_order_release);
  m.prefetched.store(0, std::memory_order_relaxed);
  BESS_RETURN_IF_ERROR(placement_->BeginLoad(nf));
  memcpy(placement_->frame_data(nf), bytes, kPageSize);
  SetState(nf, FrameState::kClean);
  BESS_RETURN_IF_ERROR(placement_->FinishLoad(nf, false));
  BESS_RETURN_IF_ERROR(dir_->Install(key, nf));
  policy_->OnInsert(nf);
  return Status::OK();
}

Status FrameTable::Invalidate(uint64_t key) {
  std::unique_lock<std::mutex> lk(mu_);
  const uint32_t f = dir_->Lookup(key);
  if (f == kNoFrame ||
      meta_[f].page_key.load(std::memory_order_acquire) != key) {
    return Status::OK();
  }
  if (meta_[f].pins.load(std::memory_order_acquire) != 0) {
    return Status::Busy("frame pinned");
  }
  const FrameState st = StateOf(f);
  if (st == FrameState::kLoading || st == FrameState::kWriting ||
      meta_[f].writer.load(std::memory_order_acquire) != 0) {
    return Status::Busy("frame busy");
  }
  if (st == FrameState::kDirty && io_ != nullptr) {
    // Never silently drop modified data: write it back first. The mutex
    // drops during the I/O, so re-validate the frame before evicting.
    BESS_RETURN_IF_ERROR(WriteBackLocked(f, lk, WritebackMode::kFlush));
    if (meta_[f].page_key.load(std::memory_order_acquire) != key) {
      return Status::OK();
    }
    if (meta_[f].pins.load(std::memory_order_acquire) != 0) {
      return Status::Busy("frame pinned");
    }
    if (StateOf(f) != FrameState::kClean) return Status::Busy("frame busy");
  }
  return EvictLocked(f);
}

Status FrameTable::Clear(bool flush) {
  std::unique_lock<std::mutex> lk(mu_);
  if (flush) {
    BESS_RETURN_IF_ERROR(FlushDirtyLocked(lk, WritebackMode::kFlush));
  }
  for (uint32_t f = 0; f < opts_.frame_count; ++f) {
    if (meta_[f].pins.load(std::memory_order_acquire) != 0) continue;
    FrameState st = StateOf(f);
    if (flush && st == FrameState::kDirty && io_ != nullptr) {
      // Re-dirtied since (or during) the flush pass: write it back rather
      // than dropping the update. The mutex drops during the I/O, so
      // re-validate below before evicting.
      BESS_RETURN_IF_ERROR(WriteBackLocked(f, lk, WritebackMode::kFlush));
      if (meta_[f].pins.load(std::memory_order_acquire) != 0) continue;
      st = StateOf(f);
    }
    if (st == FrameState::kFree || st == FrameState::kLoading ||
        st == FrameState::kWriting ||
        meta_[f].writer.load(std::memory_order_acquire) != 0 ||
        (flush && st == FrameState::kDirty)) {
      continue;
    }
    BESS_RETURN_IF_ERROR(EvictLocked(f));
  }
  return Status::OK();
}

Status FrameTable::ScanRange(uint64_t first_key, uint32_t count,
                             const ScanConsumer& consume) {
  if (first_key == 0) return Status::InvalidArgument("null page key");
  return ScanOrdered(
      count, [first_key](uint32_t i) { return first_key + i; }, consume);
}

Status FrameTable::ScanKeys(const std::vector<uint64_t>& keys,
                            const ScanConsumer& consume) {
  for (uint64_t k : keys) {
    if (k == 0) return Status::InvalidArgument("null page key");
  }
  return ScanOrdered(static_cast<uint32_t>(keys.size()),
                     [&keys](uint32_t i) { return keys[i]; }, consume);
}

Status FrameTable::ScanOrdered(uint32_t count,
                               const std::function<uint64_t(uint32_t)>& key_at,
                               const ScanConsumer& consume) {
  if (count == 0) return Status::OK();

  // Pull fallback: no async backend (or an external directory, where this
  // process must not claim frames off the demand path) — a plain Fix loop.
  if (aio_ == nullptr || opts_.directory != nullptr) {
    for (uint32_t idx = 0; idx < count; ++idx) {
      const uint64_t key = key_at(idx);
      BESS_ASSIGN_OR_RETURN(FixResult r, Fix(key, /*for_write=*/false,
                                             /*pin=*/true));
      Status cs = consume(key, r.data);
      (void)Unpin(r.frame);
      BESS_RETURN_IF_ERROR(cs);
      {
        std::lock_guard<std::mutex> guard(mu_);
        stats_.scan_pages++;
        stats_.scan_fallbacks++;
      }
      BESS_COUNT("cache.scan.pages");
      BESS_COUNT("cache.scan.fallback");
    }
    return Status::OK();
  }

  std::unique_lock<std::mutex> lk(mu_);
  uint32_t next_idx = 0;  // first position not yet staged/considered

  // Pushes reads for upcoming keys into claimed kLoading frames until the
  // queue depth is reached. Resident keys are skipped (consumed from cache
  // below); claim failures stop the wave — later keys retry next call.
  // Consecutive keys in the list stage as one run (coalescible downstream);
  // a discontinuity just ends the run, the next wave picks up after it.
  auto stage = [&]() {
    while (next_idx < count && aio_inflight_ < opts_.async_queue_depth) {
      const uint64_t key0 = key_at(next_idx);
      if (dir_->Lookup(key0) != kNoFrame) {
        ++next_idx;
        continue;
      }
      const uint32_t cap = std::min<uint32_t>(
          count - next_idx, opts_.async_queue_depth - aio_inflight_);
      uint32_t want = 1;
      while (want < cap && key_at(next_idx + want) == key0 + want) ++want;
      std::vector<uint32_t> frames;
      ClaimLoadingRunLocked(key0, want, &frames);
      if (frames.empty()) return;
      const uint32_t n = static_cast<uint32_t>(frames.size());
      std::vector<AsyncPageIo::Request> reqs(n);
      for (uint32_t i = 0; i < n; ++i) {
        const uint32_t f = frames[i];
        reqs[i].write = false;
        reqs[i].key = key0 + i;
        reqs[i].buf = placement_->frame_data(f);
        reqs[i].user_data = f;
        aio_pending_[f] = PendingAio{AioOp::kScanRead, key0 + i};
      }
      aio_inflight_ += n;
      scan_inflight_ += n;
      stats_.scan_staged += n;
      BESS_HIST("cache.scan.depth", scan_inflight_);
      next_idx += n;
      lk.unlock();
      const Status ss = aio_->Submit(reqs.data(), n);
      BESS_COUNT_N("cache.scan.staged", n);
      lk.lock();
      if (!ss.ok()) {
        for (uint32_t i = 0; i < n; ++i) {
          const uint32_t f = frames[i];
          aio_pending_[f] = PendingAio{};
          aio_inflight_--;
          scan_inflight_--;
          dir_->Erase(key0 + i, f);
          meta_[f].page_key.store(0, std::memory_order_release);
          SetState(f, FrameState::kFree);
        }
        load_cv_.notify_all();
        return;
      }
    }
  };

  // Drains this scan's outstanding reads before any return: an abandoned
  // kLoading frame would leak, and its buffer must stay valid meanwhile.
  auto drain = [&]() {
    for (int spins = 0; scan_inflight_ > 0 && spins < 200; ++spins) {
      (void)ReapAioLocked(lk, 50);
    }
  };

  stage();
  for (uint32_t idx = 0; idx < count; ++idx) {
    const uint64_t key = key_at(idx);
    for (;;) {
      const uint32_t f = dir_->Lookup(key);
      if (f != kNoFrame &&
          meta_[f].page_key.load(std::memory_order_acquire) == key) {
        const FrameState st = StateOf(f);
        if (st == FrameState::kLoading) {
          if (aio_inflight_ > 0) {
            (void)ReapAioLocked(lk, 1);
          } else {
            load_cv_.wait_for(lk, kLoadPoll);
          }
          continue;
        }
        if (st != FrameState::kFree && st != FrameState::kEvicting) {
          // Consumable. Pin so the frame survives the unlocked callback;
          // no policy promotion — a scan must not flush the hot set.
          meta_[f].pins.fetch_add(1, std::memory_order_acq_rel);
          if (meta_[f].prefetched.exchange(0, std::memory_order_relaxed) !=
              0) {
            stats_.prefetch_hits++;
            BESS_COUNT("cache.prefetch.hits");
          }
          stats_.scan_pages++;
          BESS_COUNT("cache.scan.pages");
          lk.unlock();
          const Status cs = consume(key, placement_->frame_data(f));
          lk.lock();
          meta_[f].pins.fetch_sub(1, std::memory_order_acq_rel);
          if (!cs.ok()) {
            drain();
            return cs;
          }
          // Refill the staging window as the consumer advances — without
          // this the scan degenerates into batch-synchronous waves (stage
          // queue_depth, drain it dry, stage again) and device time stops
          // overlapping consumer compute.
          stage();
          break;
        }
      }
      // Not resident: try to stage it (frames may have freed up); when
      // that fails too, fall back to a demand fix — the pull path.
      stage();
      if (dir_->Lookup(key) != kNoFrame) continue;
      stats_.scan_fallbacks++;
      BESS_COUNT("cache.scan.fallback");
      lk.unlock();
      auto r = Fix(key, /*for_write=*/false, /*pin=*/true);
      if (!r.ok()) {
        lk.lock();
        drain();
        return r.status();
      }
      const Status cs = consume(key, r->data);
      (void)Unpin(r->frame);
      lk.lock();
      stats_.scan_pages++;
      BESS_COUNT("cache.scan.pages");
      if (!cs.ok()) {
        drain();
        return cs;
      }
      break;
    }
    stage();  // keep the pipeline deep while the consumer works
  }
  drain();
  return Status::OK();
}

FrameTable::Stats FrameTable::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

// ---- prefetch ---------------------------------------------------------------

void FrameTable::NotePrefetchHint(uint64_t key, uint32_t count) {
  std::lock_guard<std::mutex> guard(mu_);
  FeedPrefetchLocked(key, count);
}

void FrameTable::FeedPrefetchLocked(uint64_t key, uint32_t count) {
  if (!opts_.enable_prefetch || io_ == nullptr || key == 0 || count == 0) {
    return;
  }
  // A hint covering exactly what the demand stream already reported (the
  // upstream sink echoing fetches this table itself served) adds nothing.
  if (key + count == pf_next_ && pf_run_ != 0) return;
  if (key == pf_next_) {
    pf_run_ += count;
  } else {
    pf_run_ = count;
    pf_frontier_ = key + count;
  }
  pf_next_ = key + count;
  if (pf_frontier_ < pf_next_) pf_frontier_ = pf_next_;
  // Issue when the run is established and the remaining read-ahead runway
  // is shorter than the trigger distance (keeps the pipeline ahead).
  if (pf_run_ >= opts_.prefetch_trigger &&
      pf_frontier_ < pf_next_ + opts_.prefetch_trigger &&
      prefetch_q_.size() < 4) {
    prefetch_q_.emplace_back(pf_frontier_, opts_.prefetch_window);
    pf_frontier_ += opts_.prefetch_window;
    bg_cv_.notify_all();
  }
}

void FrameTable::ClaimLoadingRunLocked(uint64_t first, uint32_t count,
                                       std::vector<uint32_t>* frames) {
  // Never evict a staged-but-unconsumed speculative load to stage another:
  // completed scan/prefetch pages are clean, unpinned and ranked coldest,
  // which made them prime PickIdle victims — deep queues cannibalized
  // their own window and every cannibalized page came back as a full-
  // latency demand fix (cache.scan.fallback). The demand path can still
  // evict prefetched frames, so a truly wasted prefetch is reclaimed
  // there (and counted cache.prefetch.wasted), not leaked.
  auto clean = [&](uint32_t f) {
    return EvictableLocked(f, false) &&
           meta_[f].prefetched.load(std::memory_order_relaxed) == 0;
  };
  for (uint32_t i = 0; i < count; ++i) {
    if (dir_->Lookup(first + i) != kNoFrame) break;
    // PickIdle: no ref bits cleared, no demotions — speculative loads
    // must not burn a resident page's second chance.
    const uint32_t f = policy_->PickIdle(clean);
    if (f == kNoFrame) break;
    if (!EvictLocked(f).ok()) break;
    meta_[f].page_key.store(first + i, std::memory_order_release);
    SetState(f, FrameState::kLoading);
    if (!dir_->Install(first + i, f).ok() || !placement_->BeginLoad(f).ok()) {
      dir_->Erase(first + i, f);
      meta_[f].page_key.store(0, std::memory_order_release);
      SetState(f, FrameState::kFree);
      break;
    }
    frames->push_back(f);
  }
}

void FrameTable::DoPrefetchLocked(std::unique_lock<std::mutex>& lk) {
  if (aio_ != nullptr) {
    DoPrefetchAsyncLocked(lk);
    return;
  }
  while (!prefetch_q_.empty()) {
    auto [start, count] = prefetch_q_.front();
    prefetch_q_.pop_front();
    uint64_t first = start;
    while (count > 0 && dir_->Lookup(first) != kNoFrame) {
      ++first;
      --count;
    }
    std::vector<uint32_t> frames;
    ClaimLoadingRunLocked(first, count, &frames);
    if (frames.empty()) continue;
    const uint32_t n = static_cast<uint32_t>(frames.size());
    pf_scratch_.resize(static_cast<size_t>(n) * kPageSize);
    lk.unlock();
    const Status fs = io_->FetchRun(first, n, pf_scratch_.data());
    lk.lock();
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t f = frames[i];
      if (fs.ok()) {
        memcpy(placement_->frame_data(f),
               pf_scratch_.data() + static_cast<size_t>(i) * kPageSize,
               kPageSize);
        (void)placement_->FinishLoad(f, false);
        SetState(f, FrameState::kClean);
        meta_[f].prefetched.store(1, std::memory_order_relaxed);
        // No policy OnInsert: an undemanded page should rank coldest so
        // wasted prefetches recycle first.
        stats_.prefetch_issued++;
        BESS_COUNT("cache.prefetch.issued");
      } else {
        dir_->Erase(first + i, f);
        meta_[f].page_key.store(0, std::memory_order_release);
        SetState(f, FrameState::kFree);
      }
    }
    load_cv_.notify_all();
  }
}

// ---- async pipeline ---------------------------------------------------------

void FrameTable::DoPrefetchAsyncLocked(std::unique_lock<std::mutex>& lk) {
  while (!prefetch_q_.empty() && aio_inflight_ < opts_.async_queue_depth) {
    auto [start, count] = prefetch_q_.front();
    prefetch_q_.pop_front();
    uint64_t first = start;
    while (count > 0 && dir_->Lookup(first) != kNoFrame) {
      ++first;
      --count;
    }
    count = std::min(count, opts_.async_queue_depth - aio_inflight_);
    std::vector<uint32_t> frames;
    ClaimLoadingRunLocked(first, count, &frames);
    if (frames.empty()) continue;
    const uint32_t n = static_cast<uint32_t>(frames.size());
    std::vector<AsyncPageIo::Request> reqs(n);
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t f = frames[i];
      reqs[i].write = false;
      reqs[i].key = first + i;
      reqs[i].buf = placement_->frame_data(f);
      reqs[i].user_data = f;
      aio_pending_[f] = PendingAio{AioOp::kPrefetchRead, first + i};
    }
    aio_inflight_ += n;
    BESS_HIST("cache.prefetch.depth", aio_inflight_);
    // Submit without the mutex (the backend may block briefly); the frames
    // are kLoading with pending ops, so nothing can touch them meanwhile.
    lk.unlock();
    const Status ss = aio_->Submit(reqs.data(), n);
    lk.lock();
    if (!ss.ok()) {
      // Nothing was queued: unwind every claimed frame.
      for (uint32_t i = 0; i < n; ++i) {
        const uint32_t f = frames[i];
        aio_pending_[f] = PendingAio{};
        aio_inflight_--;
        dir_->Erase(first + i, f);
        meta_[f].page_key.store(0, std::memory_order_release);
        SetState(f, FrameState::kFree);
      }
      load_cv_.notify_all();
      return;
    }
  }
}

void FrameTable::ProcessAioLocked(
    const aio::AioCompletion* cs, uint32_t n,
    std::vector<std::pair<uint64_t, uint64_t>>* cleaned) {
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t f = static_cast<uint32_t>(cs[i].user_data);
    if (f >= opts_.frame_count) continue;
    const PendingAio p = aio_pending_[f];
    if (p.op == AioOp::kNone) continue;
    aio_pending_[f] = PendingAio{};
    aio_inflight_--;
    if (p.op == AioOp::kScanRead) scan_inflight_--;
    FrameMeta& m = meta_[f];
    const bool ok = cs[i].status.ok();
    if (p.op == AioOp::kPrefetchRead || p.op == AioOp::kScanRead) {
      if (ok) {
        (void)placement_->FinishLoad(f, false);
        SetState(f, FrameState::kClean);
        m.prefetched.store(1, std::memory_order_relaxed);
        // No policy OnInsert: an undemanded page should rank coldest so
        // wasted speculative loads recycle first.
        stats_.prefetch_issued++;
        BESS_COUNT("cache.prefetch.issued");
      } else {
        // Unwind exactly like a failed demand load: the next Fix of this
        // key misses and surfaces the store error on its own fetch.
        dir_->Erase(p.key, f);
        m.page_key.store(0, std::memory_order_release);
        SetState(f, FrameState::kFree);
      }
    } else {  // kFlushWrite — the async tail of WriteBackLocked
      if (ok) {
        uint8_t expected = static_cast<uint8_t>(FrameState::kWriting);
        bool now_clean = false;
        uint64_t cleaned_rec_lsn = 0;
        // Fails when the frame was re-dirtied mid-flight: it stays kDirty
        // and is written again later (same losslessness as the sync path).
        if (m.state.compare_exchange_strong(
                expected, static_cast<uint8_t>(FrameState::kClean),
                std::memory_order_acq_rel)) {
          now_clean = true;
          cleaned_rec_lsn = m.rec_lsn.exchange(0, std::memory_order_relaxed);
        }
        (void)placement_->FinishWriteback(f, true);
        m.writer.store(0, std::memory_order_release);
        stats_.writebacks++;
        BESS_COUNT("cache.writeback");
        stats_.bgwriter_flushed++;
        BESS_COUNT("cache.bgwriter.flushed");
        if (now_clean && opts_.on_cleaned) {
          cleaned->emplace_back(p.key, cleaned_rec_lsn);
        }
      } else {
        if (m.State() == FrameState::kWriting) SetState(f, FrameState::kDirty);
        (void)placement_->FinishWriteback(f, false);
        m.writer.store(0, std::memory_order_release);
        stats_.bgwriter_errors++;
        BESS_COUNT("cache.bgwriter.error");
      }
    }
  }
  cleaned_cv_.notify_all();
  load_cv_.notify_all();
}

uint32_t FrameTable::ReapAioLocked(std::unique_lock<std::mutex>& lk,
                                   uint32_t timeout_ms) {
  if (aio_ == nullptr || aio_inflight_ == 0) return 0;
  aio::AioCompletion buf[32];
  lk.unlock();
  const uint32_t n = aio_->Reap(buf, 32, timeout_ms);
  lk.lock();
  if (n == 0) return 0;
  std::vector<std::pair<uint64_t, uint64_t>> cleaned;
  ProcessAioLocked(buf, n, &cleaned);
  if (!cleaned.empty()) {
    // on_cleaned fires without the mutex — same lock-order contract as the
    // synchronous write-back path.
    lk.unlock();
    for (const auto& [key, rec] : cleaned) opts_.on_cleaned(key, rec);
    lk.lock();
  }
  return n;
}

// ---- bgwriter ---------------------------------------------------------------

void FrameTable::BgFlushRoundLocked(std::unique_lock<std::mutex>& lk) {
  if (!opts_.enable_bgwriter || io_ == nullptr) return;
  const bool urgent = urgent_flush_;
  urgent_flush_ = false;
  auto is_dirty = [&](uint32_t f) {
    // Skip frames another flusher already has in flight — WriteBackLocked
    // would skip them anyway; don't burn batch slots on them.
    return StateOf(f) == FrameState::kDirty &&
           meta_[f].writer.load(std::memory_order_acquire) == 0;
  };
  std::vector<uint32_t> cand;
  if (urgent) {
    for (uint32_t f = 0; f < opts_.frame_count; ++f) {
      if (is_dirty(f)) cand.push_back(f);
    }
  } else {
    policy_->FlushHorizon(opts_.bgwriter_lookahead, is_dirty, &cand);
    if (cand.size() > opts_.bgwriter_batch) cand.resize(opts_.bgwriter_batch);
  }
  if (cand.empty()) return;
  if (aio_ != nullptr) {
    AsyncBgFlushBatchLocked(lk, cand);
    stats_.bgwriter_rounds++;
    BESS_COUNT("cache.bgwriter.round");
    return;
  }
  uint64_t max_lsn = 0;
  for (uint32_t f : cand) {
    max_lsn =
        std::max(max_lsn, meta_[f].page_lsn.load(std::memory_order_relaxed));
  }
  std::sort(cand.begin(), cand.end(), [this](uint32_t a, uint32_t b) {
    return meta_[a].page_lsn.load(std::memory_order_relaxed) <
           meta_[b].page_lsn.load(std::memory_order_relaxed);
  });
  if (max_lsn != 0) {
    lk.unlock();
    const Status ws = io_->EnsureWalDurable(max_lsn);
    lk.lock();
    if (!ws.ok()) {
      stats_.bgwriter_errors++;
      BESS_COUNT("cache.bgwriter.error");
      return;
    }
  }
  uint32_t flushed = 0;
  for (uint32_t f : cand) {
    if (StateOf(f) != FrameState::kDirty) continue;
    const Status ws = WriteBackLocked(f, lk, WritebackMode::kBackground);
    if (!ws.ok()) {
      // The frame stays dirty; the store may recover (transient injected
      // faults) — keep the thread alive and retry on a later round.
      stats_.bgwriter_errors++;
      BESS_COUNT("cache.bgwriter.error");
      break;
    }
    ++flushed;
  }
  stats_.bgwriter_rounds++;
  BESS_COUNT("cache.bgwriter.round");
  if (flushed != 0) BESS_HIST("cache.bgwriter.batch_size", flushed);
}

void FrameTable::AsyncBgFlushBatchLocked(std::unique_lock<std::mutex>& lk,
                                         const std::vector<uint32_t>& cand) {
  // Claim the whole batch under the mutex first: writer flag + kWriting
  // make each frame untouchable, so keys and buffers stay stable across
  // the unlocked stretch below.
  std::vector<uint32_t> batch;
  batch.reserve(cand.size());
  std::vector<AsyncPageIo::Request> reqs;
  reqs.reserve(cand.size());
  uint64_t max_lsn = 0;
  for (uint32_t f : cand) {
    if (aio_inflight_ + batch.size() >= opts_.async_queue_depth) break;
    FrameMeta& m = meta_[f];
    if (StateOf(f) != FrameState::kDirty) continue;
    uint8_t unclaimed = 0;
    if (!m.writer.compare_exchange_strong(unclaimed, 1,
                                          std::memory_order_acq_rel)) {
      continue;  // another flusher owns it
    }
    SetState(f, FrameState::kWriting);
    const uint64_t key = m.page_key.load(std::memory_order_acquire);
    const uint64_t lsn = m.page_lsn.load(std::memory_order_relaxed);
    aio_pending_[f] = PendingAio{AioOp::kFlushWrite, key};
    batch.push_back(f);
    AsyncPageIo::Request r;
    r.write = true;
    r.key = key;
    r.buf = placement_->frame_data(f);
    r.lsn = lsn;
    r.user_data = f;
    reqs.push_back(r);
    max_lsn = std::max(max_lsn, lsn);
  }
  if (batch.empty()) return;
  // Key-ascending submission order: the single WAL gate below covers the
  // whole batch regardless of in-batch order, so sorting costs nothing —
  // and it lets the pool backend merge consecutive-key pages into one
  // device write (AioStats::write_runs), the write-side mirror of the
  // scan path's read coalescing.
  std::sort(reqs.begin(), reqs.end(),
            [](const AsyncPageIo::Request& a, const AsyncPageIo::Request& b) {
              return a.key < b.key;
            });
  const uint32_t n = static_cast<uint32_t>(batch.size());
  aio_inflight_ += n;
  lk.unlock();
  Status ws;
  for (uint32_t f : batch) {
    // Same structural invariant as WriteBackLocked: the frame is made
    // readable before any I/O can touch it.
    ws = placement_->PrepareForWriteback(f);
    if (!ws.ok()) break;
  }
  if (ws.ok()) {
    // Covering LSNs re-read only now, with every frame latched by its
    // placement: a mutator may have rewritten bytes between the claim and
    // the latch, and the gate must cover whatever images the I/O reads.
    for (auto& r : reqs) {
      const uint32_t f = static_cast<uint32_t>(r.user_data);
      r.lsn = meta_[f].page_lsn.load(std::memory_order_acquire);
      max_lsn = std::max(max_lsn, r.lsn);
    }
  }
  // ONE durability gate covers the whole batch (WAL-before-data for its
  // highest LSN implies it for every member) — this is the submission-
  // batching win the scan bench measures against per-page gating.
  if (ws.ok() && max_lsn != 0) ws = io_->EnsureWalDurable(max_lsn);
  if (ws.ok()) ws = aio_->Submit(reqs.data(), n);
  lk.lock();
  if (!ws.ok()) {
    // Nothing was queued (Submit is all-or-nothing): release every claim.
    for (uint32_t f : batch) {
      aio_pending_[f] = PendingAio{};
      aio_inflight_--;
      if (StateOf(f) == FrameState::kWriting) SetState(f, FrameState::kDirty);
      (void)placement_->FinishWriteback(f, false);
      meta_[f].writer.store(0, std::memory_order_release);
    }
    stats_.bgwriter_errors++;
    BESS_COUNT("cache.bgwriter.error");
    cleaned_cv_.notify_all();
    return;
  }
  stats_.async_flush_batches++;
  BESS_COUNT("cache.bgwriter.async_batch");
  BESS_HIST("cache.bgwriter.batch_size", n);
}

void FrameTable::BackgroundMain() {
  std::unique_lock<std::mutex> lk(mu_);
  while (running_) {
    // With async ops in flight, tick fast to reap completions promptly;
    // otherwise sleep out the bgwriter interval. Prefetch work only wakes
    // the thread when it can actually submit (queue depth available) —
    // else the wait predicate would spin while the pipeline is full.
    const bool pipeline_busy = aio_ != nullptr && aio_inflight_ > 0;
    bg_cv_.wait_for(
        lk,
        std::chrono::milliseconds(pipeline_busy ? 1
                                                : opts_.bgwriter_interval_ms),
        [&] {
          return !running_ || urgent_flush_ ||
                 (!prefetch_q_.empty() &&
                  (aio_ == nullptr ||
                   aio_inflight_ < opts_.async_queue_depth));
        });
    if (!running_) break;
    if (aio_ != nullptr) (void)ReapAioLocked(lk, 0);
    if (opts_.enable_prefetch) DoPrefetchLocked(lk);
    BgFlushRoundLocked(lk);
  }
}

}  // namespace bess
