// AsyncPageIo: the batched page-granular side of the push pipeline
// (DESIGN.md §13), sitting between the FrameTable and an I/O backend.
//
// Callers submit vectors of whole-page reads/writes keyed by packed
// PageAddr and reap completions; `user_data` is the caller's correlation
// token (the frame table uses the frame index). Two implementations are
// selected at runtime by MakeAsyncPageIo:
//
//   WorkerPoolPageIo     emulation over any synchronous FrameTable::PageIo
//       (SegmentStore, RPC, in-memory test store). Works everywhere,
//       inherits that backend's fault points, and additionally applies the
//       "aio.read"/"aio.write"/"aio.reorder" schedules so the async fault
//       matrix runs even without real files.
//   FileEnginePageIo     an os/async_io.h AsyncFileEngine (io_uring when
//       the kernel has it) over a RawPageSource that resolves keys to
//       (fd, offset) and re-applies the storage integrity envelope —
//       CRC/LSN trailer verification after reads, trailer stamping after
//       writes — so the raw path detects exactly what ReadPages/WritePages
//       detect. Pages that are not raw-reachable (quarantined, unknown
//       area) transparently fall back to the synchronous PageIo.
//
// Contract shared by both: every accepted request produces exactly one
// completion; completions may arrive in any order; a request completes with
// the page fully transferred or with a non-OK status — never a prefix.
#ifndef BESS_CACHE_ASYNC_PAGE_IO_H_
#define BESS_CACHE_ASYNC_PAGE_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cache/frame_table.h"
#include "os/async_io.h"
#include "util/status.h"

namespace bess {

class AsyncPageIo {
 public:
  struct Request {
    bool write = false;
    uint64_t key = 0;    ///< PageAddr::Pack()
    void* buf = nullptr; ///< kPageSize bytes; read dest / write source —
                         ///< must stay valid until the completion is reaped
    uint64_t lsn = 0;    ///< write: page LSN for the integrity trailer
    uint64_t user_data = 0;
  };
  /// bytes == kPageSize on success, 0 on failure.
  using Completion = aio::AioCompletion;

  virtual ~AsyncPageIo() = default;

  /// Queues `n` page transfers. On a non-OK return nothing was queued.
  virtual Status Submit(const Request* reqs, uint32_t n) = 0;

  /// Pops up to `max` completions, waiting at most `timeout_ms` for the
  /// first (0 = poll).
  virtual uint32_t Reap(Completion* out, uint32_t max,
                        uint32_t timeout_ms) = 0;

  /// Stops accepting work; already-produced completions stay reapable.
  virtual void Shutdown() = 0;

  virtual const char* backend() const = 0;
  virtual aio::AioStats stats() const = 0;
};

struct AsyncPageIoOptions {
  /// "auto" = uring when a RawPageSource is given and the kernel supports
  /// it, else the worker pool. "uring"/"pool" force (uring still falls back
  /// at runtime when unsupported). "off" is rejected — gate at the caller.
  std::string backend = "auto";
  uint32_t queue_depth = 16;
  uint32_t workers = 4;  ///< pool backend only
};

/// Runtime backend selection. `sync_io` backs the worker pool and the raw
/// path's fallback; `raw` (optional) enables the file-engine path.
Result<std::unique_ptr<AsyncPageIo>> MakeAsyncPageIo(
    const AsyncPageIoOptions& options, FrameTable::PageIo* sync_io,
    aio::RawPageSource* raw = nullptr);

}  // namespace bess

#endif  // BESS_CACHE_ASYNC_PAGE_IO_H_
