#include "cache/private_pool.h"

#include <cstring>

#include "obs/metrics.h"
#include "os/vmem.h"
#include "util/logging.h"

namespace bess {

Result<std::unique_ptr<PrivateBufferPool>> PrivateBufferPool::Open(
    const std::string& path, uint32_t frame_count, SegmentStore* store) {
  if (frame_count == 0) {
    return Status::InvalidArgument("pool needs at least one frame");
  }
  BESS_ASSIGN_OR_RETURN(File file, File::Open(path));
  BESS_RETURN_IF_ERROR(
      file.Truncate(static_cast<uint64_t>(frame_count) * kPageSize));
  auto pool = std::unique_ptr<PrivateBufferPool>(
      new PrivateBufferPool(std::move(file), frame_count, store));
  BESS_RETURN_IF_ERROR(pool->Init());
  return pool;
}

Status PrivateBufferPool::Init() {
  // The pool file itself is the backing store for the frames (§4.1.1).
  BESS_ASSIGN_OR_RETURN(
      void* base,
      vmem::MapFile(static_cast<size_t>(frame_count_) * kPageSize,
                    file_.fd(), 0));
  base_ = static_cast<char*>(base);
  frames_.assign(frame_count_, FrameInfo{});
  dispatcher_slot_ = FaultDispatcher::Instance().RegisterRange(
      base_, static_cast<size_t>(frame_count_) * kPageSize, this);
  return Status::OK();
}

PrivateBufferPool::~PrivateBufferPool() {
  if (dispatcher_slot_ >= 0) {
    FaultDispatcher::Instance().UnregisterRange(dispatcher_slot_);
  }
  if (base_ != nullptr) {
    (void)vmem::Release(base_, static_cast<size_t>(frame_count_) * kPageSize);
  }
}

Status PrivateBufferPool::EvictFrame(uint32_t f) {
  FrameInfo& info = frames_[f];
  if (info.state == kFree) return Status::OK();
  if (info.dirty) {
    // The clock demotes a victim to access-protected before replacing it;
    // write-back must lift that first. Reading the frame while it is
    // protected would fault into OnFault on this thread — which needs mu_,
    // already held here.
    if (info.state == kProtected) {
      BESS_RETURN_IF_ERROR(
          vmem::Protect(FrameAddr(f), kPageSize, vmem::kRead));
      info.state = kAccessible;
    }
    const PageAddr addr = PageAddr::Unpack(info.page_key);
    BESS_RETURN_IF_ERROR(store_->WritePages(addr.db, addr.area, addr.page, 1,
                                            FrameAddr(f)));
    stats_.dirty_writebacks++;
    BESS_COUNT("cache.writeback");
  }
  page_table_.erase(info.page_key);
  info = FrameInfo{};
  stats_.evictions++;
  BESS_COUNT("cache.eviction");
  return Status::OK();
}

Result<uint32_t> PrivateBufferPool::AcquireFrame() {
  // Protection-state clock (§4.2): skip free-on-first-use, give accessible
  // frames a second chance by protecting them, replace protected frames.
  for (uint32_t step = 0; step < 2 * frame_count_ + 1; ++step) {
    const uint32_t f = hand_;
    hand_ = (hand_ + 1) % frame_count_;
    FrameInfo& info = frames_[f];
    switch (info.state) {
      case kFree:
        return f;
      case kAccessible:
        BESS_RETURN_IF_ERROR(
            vmem::Protect(FrameAddr(f), kPageSize, vmem::kNone));
        info.state = kProtected;
        break;
      case kProtected:
        BESS_RETURN_IF_ERROR(EvictFrame(f));
        return f;
    }
  }
  return Status::Internal("clock failed to find a victim");
}

Result<void*> PrivateBufferPool::Fix(PageAddr page, bool for_write) {
  std::lock_guard<std::mutex> guard(mu_);
  stats_.fixes++;
  const uint64_t key = page.Pack();
  auto it = page_table_.find(key);
  if (it != page_table_.end()) {
    const uint32_t f = it->second;
    FrameInfo& info = frames_[f];
    if (info.state == kProtected) {
      // Second chance taken explicitly on a fix.
      BESS_RETURN_IF_ERROR(vmem::Protect(
          FrameAddr(f), kPageSize,
          info.dirty ? vmem::kReadWrite : vmem::kRead));
      info.state = kAccessible;
      stats_.second_chances++;
    }
    if (for_write && !info.dirty) {
      info.dirty = true;
      // Clean frame fixed for write: the software flavour of the same
      // write-detection event OnFault counts for hardware detection.
      BESS_COUNT("vm.fault.detect");
      BESS_RETURN_IF_ERROR(
          vmem::Protect(FrameAddr(f), kPageSize, vmem::kReadWrite));
    }
    stats_.hits++;
    BESS_COUNT("cache.hit");
    return FrameAddr(f);
  }

  BESS_ASSIGN_OR_RETURN(uint32_t f, AcquireFrame());
  BESS_RETURN_IF_ERROR(
      vmem::Protect(FrameAddr(f), kPageSize, vmem::kReadWrite));
  BESS_RETURN_IF_ERROR(
      store_->FetchPages(page.db, page.area, page.page, 1, FrameAddr(f)));
  FrameInfo& info = frames_[f];
  info.page_key = key;
  info.state = kAccessible;
  info.dirty = for_write;
  if (!for_write) {
    // Read-only until the first store faults (write detection, §2.3).
    BESS_RETURN_IF_ERROR(vmem::Protect(FrameAddr(f), kPageSize, vmem::kRead));
  }
  page_table_[key] = f;
  stats_.misses++;
  BESS_COUNT("cache.miss");
  return FrameAddr(f);
}

bool PrivateBufferPool::Contains(PageAddr page) {
  std::lock_guard<std::mutex> guard(mu_);
  return page_table_.count(page.Pack()) != 0;
}

Status PrivateBufferPool::FlushDirty() {
  std::lock_guard<std::mutex> guard(mu_);
  return FlushDirtyLocked();
}

Status PrivateBufferPool::FlushDirtyLocked() {
  for (uint32_t f = 0; f < frame_count_; ++f) {
    FrameInfo& info = frames_[f];
    if (info.state == kFree || !info.dirty) continue;
    const PageAddr addr = PageAddr::Unpack(info.page_key);
    // The frame may be access-protected by the clock: read via protection.
    if (info.state == kProtected) {
      BESS_RETURN_IF_ERROR(
          vmem::Protect(FrameAddr(f), kPageSize, vmem::kRead));
    }
    BESS_RETURN_IF_ERROR(store_->WritePages(addr.db, addr.area, addr.page, 1,
                                            FrameAddr(f)));
    if (info.state == kProtected) {
      BESS_RETURN_IF_ERROR(
          vmem::Protect(FrameAddr(f), kPageSize, vmem::kNone));
    } else {
      BESS_RETURN_IF_ERROR(
          vmem::Protect(FrameAddr(f), kPageSize, vmem::kRead));
    }
    info.dirty = false;
    stats_.dirty_writebacks++;
    BESS_COUNT("cache.writeback");
  }
  return Status::OK();
}

Status PrivateBufferPool::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  BESS_RETURN_IF_ERROR(FlushDirtyLocked());
  for (uint32_t f = 0; f < frame_count_; ++f) {
    if (frames_[f].state == kProtected) {
      BESS_RETURN_IF_ERROR(
          vmem::Protect(FrameAddr(f), kPageSize, vmem::kReadWrite));
    }
    frames_[f] = FrameInfo{};
  }
  page_table_.clear();
  hand_ = 0;
  return Status::OK();
}

bool PrivateBufferPool::OnFault(void* addr, bool is_write) {
  // Note: `is_write` is only a hint and absent on some kernels; all
  // decisions below derive from the tracked frame state (a fault on a
  // readable frame can only be a store).
  (void)is_write;
  std::lock_guard<std::mutex> guard(mu_);
  const size_t off =
      static_cast<size_t>(static_cast<char*>(addr) - base_);
  const uint32_t f = static_cast<uint32_t>(off / kPageSize);
  if (f >= frame_count_) return false;
  FrameInfo& info = frames_[f];
  if (info.state == kProtected) {
    // Touch of a protected frame: re-enable (this is the "used" signal the
    // clock observes). Restore read-only so a later store is still caught.
    Status s = vmem::Protect(FrameAddr(f), kPageSize,
                             info.dirty ? vmem::kReadWrite : vmem::kRead);
    if (!s.ok()) return false;
    info.state = kAccessible;
    stats_.second_chances++;
    return true;  // a store refaults immediately and lands below
  }
  if (info.state == kAccessible && !info.dirty) {
    // Readable frame faulted: must be the first store — update detection.
    info.dirty = true;
    BESS_COUNT("vm.fault.detect");
    return vmem::Protect(FrameAddr(f), kPageSize, vmem::kReadWrite).ok();
  }
  return false;
}

}  // namespace bess
