#include "cache/private_pool.h"

#include <cstring>

#include "obs/metrics.h"
#include "os/vmem.h"
#include "util/logging.h"

namespace bess {

// ---- PoolPlacement ----------------------------------------------------------
//
// No eviction or write-back loop lives here: the FrameTable drives the
// lifecycle and these hooks only translate it into mprotect state.

Status PrivateBufferPool::PoolPlacement::BeginLoad(uint32_t f) {
  pool_->prot_[f].store(kOpen, std::memory_order_relaxed);
  return vmem::Protect(pool_->FrameAddr(f), kPageSize, vmem::kReadWrite);
}

Status PrivateBufferPool::PoolPlacement::FinishLoad(uint32_t f,
                                                    bool for_write) {
  if (for_write) return Status::OK();
  // Read-only until the first store faults (write detection, §2.3).
  return vmem::Protect(pool_->FrameAddr(f), kPageSize, vmem::kRead);
}

Status PrivateBufferPool::PoolPlacement::OnAccess(uint32_t f, bool dirty) {
  if (pool_->prot_[f].load(std::memory_order_relaxed) != kRevoked) {
    return Status::OK();
  }
  // Second chance: re-enable access, read-only so a later store is still
  // caught. The store before the mprotect keeps the fault path's lock-free
  // read consistent (a fault implies the mprotect completed).
  pool_->prot_[f].store(kOpen, std::memory_order_relaxed);
  BESS_RETURN_IF_ERROR(vmem::Protect(pool_->FrameAddr(f), kPageSize,
                                     dirty ? vmem::kReadWrite : vmem::kRead));
  pool_->second_chances_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PrivateBufferPool::PoolPlacement::OnDirty(uint32_t f) {
  return vmem::Protect(pool_->FrameAddr(f), kPageSize, vmem::kReadWrite);
}

Status PrivateBufferPool::PoolPlacement::Demote(uint32_t f) {
  pool_->prot_[f].store(kRevoked, std::memory_order_relaxed);
  return vmem::Protect(pool_->FrameAddr(f), kPageSize, vmem::kNone);
}

Status PrivateBufferPool::PoolPlacement::PrepareForWriteback(uint32_t f) {
  // Lifecycle invariant: the frame must be readable before write-back I/O
  // touches it — reading an access-protected frame would fault into
  // OnFault on the writing thread. Downgrading an open dirty frame to
  // read-only here also catches stores racing the write: they fault, the
  // frame re-dirties, and the finalize CAS keeps it dirty.
  return vmem::Protect(pool_->FrameAddr(f), kPageSize, vmem::kRead);
}

Status PrivateBufferPool::PoolPlacement::FinishWriteback(uint32_t f,
                                                         bool ok) {
  (void)ok;
  if (pool_->prot_[f].load(std::memory_order_relaxed) == kRevoked) {
    // Restore the clock's revocation.
    return vmem::Protect(pool_->FrameAddr(f), kPageSize, vmem::kNone);
  }
  const bool clean = pool_->table_->meta(f)->State() == FrameState::kClean;
  return vmem::Protect(pool_->FrameAddr(f), kPageSize,
                       clean ? vmem::kRead : vmem::kReadWrite);
}

Status PrivateBufferPool::PoolPlacement::OnEvict(uint32_t f) {
  pool_->prot_[f].store(kOpen, std::memory_order_relaxed);
  return Status::OK();
}

// ---- PrivateBufferPool ------------------------------------------------------

Result<std::unique_ptr<PrivateBufferPool>> PrivateBufferPool::Open(
    const std::string& path, uint32_t frame_count, SegmentStore* store) {
  return Open(path, frame_count, store, Options{});
}

Result<std::unique_ptr<PrivateBufferPool>> PrivateBufferPool::Open(
    const std::string& path, uint32_t frame_count, SegmentStore* store,
    const Options& options) {
  if (frame_count == 0) {
    return Status::InvalidArgument("pool needs at least one frame");
  }
  BESS_ASSIGN_OR_RETURN(File file, File::Open(path));
  BESS_RETURN_IF_ERROR(
      file.Truncate(static_cast<uint64_t>(frame_count) * kPageSize));
  auto pool = std::unique_ptr<PrivateBufferPool>(
      new PrivateBufferPool(std::move(file), frame_count, store, options));
  BESS_RETURN_IF_ERROR(pool->Init());
  return pool;
}

Status PrivateBufferPool::Init() {
  // The pool file itself is the backing store for the frames (§4.1.1).
  BESS_ASSIGN_OR_RETURN(
      void* base,
      vmem::MapFile(static_cast<size_t>(frame_count_) * kPageSize,
                    file_.fd(), 0));
  base_ = static_cast<char*>(base);
  prot_.reset(new std::atomic<uint8_t>[frame_count_]);
  for (uint32_t f = 0; f < frame_count_; ++f) {
    prot_[f].store(kOpen, std::memory_order_relaxed);
  }
  FrameTable::Options topts;
  topts.frame_count = frame_count_;
  topts.policy = options_.policy;
  topts.enable_bgwriter = options_.enable_bgwriter;
  topts.bgwriter_interval_ms = options_.bgwriter_interval_ms;
  topts.enable_prefetch = options_.enable_prefetch;
  table_.reset(new FrameTable(topts, &placement_, &store_io_));
  // Fault routing must be live before the table's background services
  // start touching protection state.
  dispatcher_slot_ = FaultDispatcher::Instance().RegisterRange(
      base_, static_cast<size_t>(frame_count_) * kPageSize, this);
  return table_->Init();
}

PrivateBufferPool::~PrivateBufferPool() {
  if (table_ != nullptr) table_->Stop();
  if (dispatcher_slot_ >= 0) {
    FaultDispatcher::Instance().UnregisterRange(dispatcher_slot_);
  }
  table_.reset();
  if (base_ != nullptr) {
    (void)vmem::Release(base_, static_cast<size_t>(frame_count_) * kPageSize);
  }
}

Result<void*> PrivateBufferPool::Fix(PageAddr page, bool for_write) {
  BESS_ASSIGN_OR_RETURN(FrameTable::FixResult r,
                        table_->Fix(page.Pack(), for_write));
  return r.data;
}

bool PrivateBufferPool::Contains(PageAddr page) {
  return table_->Contains(page.Pack());
}

Status PrivateBufferPool::FlushDirty() { return table_->FlushDirty(); }

Status PrivateBufferPool::Clear() { return table_->Clear(/*flush=*/true); }

bool PrivateBufferPool::OnFault(void* addr, bool is_write) {
  // Note: `is_write` is only a hint and absent on some kernels; decisions
  // derive from tracked state (a fault on a readable frame can only be a
  // store).
  (void)is_write;
  const size_t off = static_cast<size_t>(static_cast<char*>(addr) - base_);
  const uint32_t f = static_cast<uint32_t>(off / kPageSize);
  if (f >= frame_count_) return false;
  if (prot_[f].load(std::memory_order_relaxed) == kRevoked) {
    // Touch of a protected frame: the clock's "used" signal. A store
    // refaults immediately and lands in the branch below.
    return table_->NoteAccess(f).ok();
  }
  // Readable frame faulted: the first store — software update detection.
  return table_->MarkDirty(f).ok();
}

PrivateBufferPool::Stats PrivateBufferPool::stats() const {
  const FrameTable::Stats t = table_->stats();
  Stats s;
  s.fixes = t.fixes;
  s.hits = t.hits;
  s.misses = t.misses;
  s.evictions = t.evictions;
  s.dirty_writebacks = t.writebacks;
  s.second_chances = second_chances_.load(std::memory_order_relaxed);
  s.sync_writebacks = t.sync_writebacks;
  s.bgwriter_flushed = t.bgwriter_flushed;
  return s;
}

}  // namespace bess
