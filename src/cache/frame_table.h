// The frame-lifecycle core shared by every BeSS cache (paper §4).
//
// Both operation modes — copy-on-access private pools (§4.1.1) and the
// shared-memory cache (§4.1.2) — plus the node server's page cache are
// *configurations* of this one state machine. A frame moves through
//
//            ┌────────────────────────────────────────────┐
//            ▼                                            │
//   free → loading → clean ⇄ dirty → writing → clean → evicting → free
//
// and the FrameTable owns every transition. What differs per mode is
// injected through three seams:
//
//   Placement  — where frame bytes live (private mmap'd file, POSIX shm
//                slots, plain heap) and how access protection tracks the
//                lifecycle. The structural invariant inherited from the
//                PR 4 eviction self-deadlock fix lives here:
//                PrepareForWriteback is ALWAYS called before any I/O reads
//                a frame, so a protection-demoted frame is made readable
//                first and write-back can never fault into the handler
//                while the table mutex is held.
//   PageIo     — how pages are fetched/written (SegmentStore, RPC, none),
//                including the WAL-before-data gate for dirty write-back.
//   Directory  — page-key → frame map (process-private hash map, or the
//                shared mapping table in shm).
//
// Replacement is pluggable (cache/replacement_policy.h). Two I/O services
// run off the demand path on a background thread:
//
//   bgwriter  — flushes dirty frames ahead of the eviction hand, batched
//               and LSN-ordered (one WAL gate per batch), so foreground
//               faults find clean victims instead of paying synchronous
//               write-back (`cache.bgwriter.*`, `cache.evict.sync_writeback`).
//   prefetch  — segment-sequential read-ahead driven by demand-miss
//               patterns (`cache.prefetch.{issued,hits,wasted}`); PageAddr
//               keys are dense within an area, so key+1 is the next
//               sequential page.
#ifndef BESS_CACHE_FRAME_TABLE_H_
#define BESS_CACHE_FRAME_TABLE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/replacement_policy.h"
#include "os/async_io.h"
#include "os/latch.h"
#include "storage/storage_area.h"
#include "util/config.h"
#include "util/status.h"
#include "vm/segment_store.h"

namespace bess {

class AsyncPageIo;

/// Page-frame lifecycle states. Stored as one byte so the whole FrameMeta
/// is shared-memory safe.
enum class FrameState : uint8_t {
  kFree = 0,      ///< no page
  kLoading = 1,   ///< fetch in flight; bytes not yet valid
  kClean = 2,     ///< matches the store
  kDirty = 3,     ///< modified since fetch/last write-back
  kWriting = 4,   ///< write-back in flight (re-dirty allowed)
  kEvicting = 5,  ///< being detached from the directory (momentary)
};

/// Per-frame control data. POD-layout atomics only: the shared cache
/// places an array of these in POSIX shm, private pools allocate theirs.
struct FrameMeta {
  Latch latch;                          ///< page latch (shared mode)
  std::atomic<uint64_t> page_key{0};    ///< PageAddr::Pack(); 0 = none
  std::atomic<uint64_t> page_lsn{0};    ///< newest WAL LSN covering the page
  /// recLSN: the WAL LSN that first dirtied this frame since it was last
  /// clean — the lower bound for redo of this page (the fuzzy checkpoint's
  /// dirty-page table snapshots it). 0 while clean, or when the dirtying
  /// write carried no LSN (redo then starts conservatively at log start).
  std::atomic<uint64_t> rec_lsn{0};
  std::atomic<uint32_t> pins{0};        ///< pin / cross-process binding count
  std::atomic<uint8_t> state{0};        ///< FrameState
  std::atomic<uint8_t> prefetched{0};   ///< loaded ahead, not yet demanded
  /// Write-back ownership. Claimed (CAS 0 → 1) before any state change by
  /// the one flusher whose I/O is pending — across threads AND processes —
  /// so a frame re-dirtied mid-write (kWriting → kDirty) cannot enter a
  /// second concurrent write-back, and the finalize CAS can only match the
  /// owner's own kWriting. A frame with writer != 0 is never evictable:
  /// its bytes are still being read by the in-flight I/O.
  std::atomic<uint8_t> writer{0};

  FrameState State() const {
    return static_cast<FrameState>(state.load(std::memory_order_acquire));
  }
};

class FrameTable {
 public:
  /// Frame placement: byte storage + the protection side of the lifecycle.
  /// Hooks run with the table mutex held unless noted; they must not call
  /// back into the FrameTable.
  class Placement {
   public:
    virtual ~Placement() = default;
    virtual char* frame_data(uint32_t f) = 0;
    /// Frame is about to be filled: make it writable by this process.
    virtual Status BeginLoad(uint32_t f) { return Status::OK(); }
    /// Fill done; arm write detection when the mode wants it.
    virtual Status FinishLoad(uint32_t f, bool for_write) {
      (void)f;
      (void)for_write;
      return Status::OK();
    }
    /// Frame accessed (fix hit or raw touch): lift a demotion if present.
    virtual Status OnAccess(uint32_t f, bool dirty) {
      (void)f;
      (void)dirty;
      return Status::OK();
    }
    /// Frame turned dirty: grant write access.
    virtual Status OnDirty(uint32_t f) {
      (void)f;
      return Status::OK();
    }
    /// Replacement second chance: revoke access so the next touch faults.
    virtual Status Demote(uint32_t f) {
      (void)f;
      return Status::OK();
    }
    /// Called — without the table mutex — before write-back I/O reads the
    /// frame. Must leave the frame readable by this process (lifting any
    /// access protection) and may block to latch it against writers.
    virtual Status PrepareForWriteback(uint32_t f) {
      (void)f;
      return Status::OK();
    }
    /// Write-back finished (table mutex held again): release what
    /// PrepareForWriteback took and re-arm detection when `ok` and still
    /// clean.
    virtual Status FinishWriteback(uint32_t f, bool ok) {
      (void)f;
      (void)ok;
      return Status::OK();
    }
    virtual Status OnEvict(uint32_t f) {
      (void)f;
      return Status::OK();
    }
    /// Nothing evictable: make progress possible (shared mode runs its
    /// level-1 sweep + dead-process cleanup). Only invoked from Fix.
    virtual Status ReleasePressure() { return Status::OK(); }
  };

  /// Page transfer + durability ordering. Called without the table mutex.
  class PageIo {
   public:
    virtual ~PageIo() = default;
    virtual Status Fetch(uint64_t key, void* buf) = 0;
    virtual Status Write(uint64_t key, const void* buf) = 0;
    /// Sequential run fetch for prefetch; keys are PageAddr-packed and
    /// dense, so key + i addresses page first + i of the same area.
    virtual Status FetchRun(uint64_t first_key, uint32_t count, void* buf) {
      for (uint32_t i = 0; i < count; ++i) {
        BESS_RETURN_IF_ERROR(
            Fetch(first_key + i, static_cast<char*>(buf) + i * kPageSize));
      }
      return Status::OK();
    }
    /// Sequential run write for coalesced flush batches: pages for keys
    /// [first_key, first_key + count) laid out contiguously in `buf`.
    /// Default decomposes into single writes; stores that can issue one
    /// device op for the run override it (AioStats::write_runs counts).
    virtual Status WriteRun(uint64_t first_key, uint32_t count,
                            const void* buf) {
      for (uint32_t i = 0; i < count; ++i) {
        BESS_RETURN_IF_ERROR(Write(first_key + i,
                                   static_cast<const char*>(buf) +
                                       static_cast<size_t>(i) * kPageSize));
      }
      return Status::OK();
    }
    /// WAL-before-data: make the log durable up to `lsn` before the frame
    /// bytes it covers reach the store. Default: no WAL in play.
    virtual Status EnsureWalDurable(uint64_t lsn) {
      (void)lsn;
      return Status::OK();
    }
  };

  /// page-key → frame map. Called with the table mutex held.
  class Directory {
   public:
    virtual ~Directory() = default;
    virtual uint32_t Lookup(uint64_t key) = 0;
    virtual Status Install(uint64_t key, uint32_t f) = 0;
    virtual void Erase(uint64_t key, uint32_t f) = 0;
  };

  struct Options {
    uint32_t frame_count = 0;
    std::string policy = "clock";        ///< clock | lru | lru2
    bool clock_ref_bits = true;          ///< see ClockPolicyOptions
    std::atomic<uint32_t>* shared_hand = nullptr;
    /// External FrameMeta array (shared memory); owned array when null.
    FrameMeta* frames = nullptr;
    /// External directory (the SMT); internal hash map when null.
    Directory* directory = nullptr;

    bool enable_bgwriter = false;
    uint32_t bgwriter_interval_ms = 5;
    uint32_t bgwriter_batch = 16;        ///< frames per round (flush-ahead)
    uint32_t bgwriter_lookahead = 32;    ///< horizon scanned for candidates

    bool enable_prefetch = false;
    uint32_t prefetch_trigger = 3;       ///< sequential misses before issue
    uint32_t prefetch_window = 8;        ///< pages per read-ahead

    /// Batched asynchronous I/O backend (non-owning; must outlive the
    /// table — Stop() drains all in-flight operations before returning).
    /// When set: prefetch submits deep-queue read batches straight into
    /// kLoading frames instead of fetching one run at a time, bgwriter
    /// rounds go out as one batched submission with a single WAL gate per
    /// batch, and ScanRange pushes pages ahead of its consumer. Null keeps
    /// the classic synchronous paths.
    AsyncPageIo* async_io = nullptr;
    /// Max async page operations in flight (prefetch + scan + flush).
    uint32_t async_queue_depth = 16;
    /// One foreground pressure-wait slice (the bounded wait for the
    /// bgwriter to mint a clean victim). Exposed for regression tests.
    uint32_t bgwriter_wait_slice_ms = 50;

    /// Fired after a write-back finalizes a frame clean, with the page key
    /// and the recLSN the frame carried while dirty (0 = unknown). Invoked
    /// WITHOUT the table mutex — the callback may take locks that order
    /// before it (the database's recovery mutex does: checkpoint holds it
    /// across CollectDirty). Used to park the written page in the WAL
    /// dirty-page table until an area fsync verifiably covers the write.
    std::function<void(uint64_t key, uint64_t rec_lsn)> on_cleaned;
  };

  struct Stats {
    uint64_t fixes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;        ///< all dirty write-backs
    uint64_t sync_writebacks = 0;   ///< paid on the foreground evict path
    uint64_t bgwriter_flushed = 0;
    uint64_t bgwriter_rounds = 0;
    uint64_t bgwriter_errors = 0;
    uint64_t prefetch_issued = 0;
    uint64_t prefetch_hits = 0;
    uint64_t prefetch_wasted = 0;
    uint64_t pressure_waits = 0;    ///< foreground waited for the bgwriter
    uint64_t async_flush_batches = 0;  ///< bgwriter batches submitted async
    uint64_t scan_pages = 0;        ///< pages delivered by ScanRange
    uint64_t scan_staged = 0;       ///< scan reads pushed ahead of consume
    uint64_t scan_fallbacks = 0;    ///< scan pages that fell back to Fix
  };

  struct FixResult {
    uint32_t frame = kNoFrame;
    void* data = nullptr;
    bool hit = false;
  };

  /// `io` may be null for put/get-style caches that never fetch or write
  /// back (misses zero-fill, dirty frames are dropped on evict).
  FrameTable(const Options& opts, Placement* placement, PageIo* io);
  ~FrameTable();
  FrameTable(const FrameTable&) = delete;
  FrameTable& operator=(const FrameTable&) = delete;

  /// Validates options, builds the replacement policy, starts the
  /// background thread when bgwriter/prefetch are enabled.
  Status Init();
  /// Stops the background thread (idempotent; ~FrameTable calls it).
  void Stop();

  /// Returns the frame holding `key`, loading it on a miss (evicting via
  /// the policy when full). With `pin` the frame is pinned before the
  /// table mutex drops, so it cannot be replaced until Unpin.
  Result<FixResult> Fix(uint64_t key, bool for_write, bool pin = false);
  Status Unpin(uint32_t f);

  /// Software / fault-path write detection: ensure `f` is dirty and
  /// writable. `lsn` (when nonzero) raises the frame's WAL horizon.
  Status MarkDirty(uint32_t f, uint64_t lsn = 0);


  /// Raw-touch signal from a placement fault handler: the frame was
  /// demoted and got touched — re-enable it and tell the policy.
  Status NoteAccess(uint32_t f);

  /// Sequential-access hint (a demand fetch of `count` pages at `key`
  /// happened upstream); may schedule read-ahead.
  void NotePrefetchHint(uint64_t key, uint32_t count);

  /// Per-page scan delivery. `page` points at frame bytes valid only for
  /// the duration of the call (the frame is pinned); the callback runs
  /// without the table mutex and must not call back into this table.
  using ScanConsumer = std::function<Status(uint64_t key, const void* page)>;

  /// Streams pages [first_key, first_key + count) through `consume` in key
  /// order. With an async backend, reads for upcoming pages are pushed into
  /// kLoading frames up to the queue depth while earlier pages are being
  /// consumed (push-based scan); pages it cannot stage (resident, pinned-
  /// out cache, failed speculative read) are served through the classic
  /// pull-on-fault path. Consumed pages are not promoted by the
  /// replacement policy, so a scan cannot flush the hot set.
  Status ScanRange(uint64_t first_key, uint32_t count,
                   const ScanConsumer& consume);

  /// Streams an explicit, ordered page list through `consume` — the bounded
  /// sub-range scan the index leaf chain needs (satellite of DESIGN.md §14).
  /// Same push pipeline as ScanRange: consecutive keys inside `keys` are
  /// staged as coalescible read runs; non-contiguous steps break the run
  /// but still ride the deep queue. Keys may be arbitrary but must be
  /// distinct and in the order the consumer expects.
  Status ScanKeys(const std::vector<uint64_t>& keys,
                  const ScanConsumer& consume);

  bool Contains(uint64_t key);

  /// Writes every dirty frame back, LSN-ordered, one WAL gate per pass.
  Status FlushDirty();

  /// Snapshots (page key, recLSN) for every frame that may hold bytes the
  /// store does not: the fuzzy checkpoint's dirty-page table. Includes
  /// frames with a write-back in flight (not yet acked durable). A recLSN
  /// of 0 means unknown — the checkpoint must treat it conservatively.
  void CollectDirty(std::vector<std::pair<uint64_t, uint64_t>>* out) const;

  /// Copy-out / copy-in convenience for put/get caches (node cache).
  bool Get(uint64_t key, void* out);
  Status Put(uint64_t key, const void* bytes);

  /// Drops `key` if present and unpinned. A dirty frame is written back
  /// first (Busy if it is still busy afterwards) — modified data is never
  /// silently discarded. With no PageIo the bytes drop by definition.
  Status Invalidate(uint64_t key);

  /// Evicts every unpinned frame. With `flush`, dirty frames — including
  /// frames re-dirtied during the flush pass — are written back before
  /// eviction and never dropped (a frame that stays busy is skipped).
  /// Without `flush`, dirty data is discarded by design.
  Status Clear(bool flush);

  FrameMeta* meta(uint32_t f) const { return meta_ + f; }
  char* frame_data(uint32_t f) { return placement_->frame_data(f); }
  Stats stats() const;
  uint32_t frame_count() const { return opts_.frame_count; }
  const char* policy_name() const { return policy_->name(); }

 private:
  enum class WritebackMode { kSyncEvict, kFlush, kBackground };

  /// What an in-flight async operation will do to its frame when reaped.
  enum class AioOp : uint8_t { kNone = 0, kPrefetchRead, kScanRead, kFlushWrite };
  struct PendingAio {
    AioOp op = AioOp::kNone;
    uint64_t key = 0;
  };

  FrameState StateOf(uint32_t f) const { return meta_[f].State(); }
  void SetState(uint32_t f, FrameState s) {
    meta_[f].state.store(static_cast<uint8_t>(s), std::memory_order_release);
  }
  bool EvictableLocked(uint32_t f, bool allow_dirty) const;
  Status MarkDirtyLocked(uint32_t f, uint64_t lsn);
  Result<uint32_t> AcquireFrameLocked(std::unique_lock<std::mutex>& lk);
  Status EvictLocked(uint32_t f);
  /// kDirty → kWriting → (kClean | kDirty). Drops and reacquires `lk`
  /// around PrepareForWriteback + I/O.
  Status WriteBackLocked(uint32_t f, std::unique_lock<std::mutex>& lk,
                         WritebackMode mode);
  Status FlushDirtyLocked(std::unique_lock<std::mutex>& lk,
                          WritebackMode mode);
  void FeedPrefetchLocked(uint64_t key, uint32_t count);
  void DoPrefetchLocked(std::unique_lock<std::mutex>& lk);
  void BgFlushRoundLocked(std::unique_lock<std::mutex>& lk);
  void BackgroundMain();

  // ---- async pipeline (all guarded by mu_ unless noted) ----
  /// Claims up to `count` idle frames for keys [first, first+count),
  /// stopping at the first resident key or when the policy has no idle
  /// victim; claimed frames are installed in the directory as kLoading.
  void ClaimLoadingRunLocked(uint64_t first, uint32_t count,
                             std::vector<uint32_t>* frames);
  /// Shared body of ScanRange/ScanKeys: streams pages key_at(0..count-1)
  /// through `consume`, staging ahead through the async pipeline when one
  /// is configured.
  Status ScanOrdered(uint32_t count,
                     const std::function<uint64_t(uint32_t)>& key_at,
                     const ScanConsumer& consume);
  /// Submits prefetch queue entries as async read batches (deep queue).
  void DoPrefetchAsyncLocked(std::unique_lock<std::mutex>& lk);
  /// Submits one bgwriter candidate set as a single async write batch with
  /// one WAL durability gate.
  void AsyncBgFlushBatchLocked(std::unique_lock<std::mutex>& lk,
                               const std::vector<uint32_t>& cand);
  /// Applies reaped completions to their frames' state machines.
  void ProcessAioLocked(const aio::AioCompletion* cs, uint32_t n,
                        std::vector<std::pair<uint64_t, uint64_t>>* cleaned);
  /// Reaps (dropping `lk` around the wait) and processes completions; fires
  /// on_cleaned callbacks without the mutex. Returns completions processed.
  uint32_t ReapAioLocked(std::unique_lock<std::mutex>& lk,
                         uint32_t timeout_ms);

  Options opts_;
  Placement* placement_;
  PageIo* io_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unique_ptr<FrameMeta[]> owned_meta_;
  FrameMeta* meta_ = nullptr;
  std::unique_ptr<Directory> owned_dir_;
  Directory* dir_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable bg_cv_;       ///< wakes the background thread
  std::condition_variable cleaned_cv_;  ///< a frame turned clean
  std::condition_variable load_cv_;     ///< a load finished
  bool running_ = false;
  bool urgent_flush_ = false;
  std::thread bg_thread_;

  // Sequential-run detector (guarded by mu_).
  uint64_t pf_next_ = 0;      ///< next expected demand key
  uint64_t pf_frontier_ = 0;  ///< first key not yet prefetched/queued
  uint32_t pf_run_ = 0;
  std::deque<std::pair<uint64_t, uint32_t>> prefetch_q_;
  std::string pf_scratch_;

  // Async pipeline state (guarded by mu_). A frame with a PendingAio op is
  // kLoading (reads) or kWriting+writer (flushes): never evictable, never
  // reusable until its completion is processed.
  AsyncPageIo* aio_ = nullptr;
  std::vector<PendingAio> aio_pending_;  ///< indexed by frame
  uint32_t aio_inflight_ = 0;
  uint32_t scan_inflight_ = 0;  ///< subset of aio_inflight_ from ScanRange

  Stats stats_;
};

/// Plain heap placement: no protection, no faults — for caches that only
/// see accesses through explicit calls (node cache, classic baselines).
class HeapPlacement : public FrameTable::Placement {
 public:
  explicit HeapPlacement(uint32_t frame_count)
      : data_(static_cast<size_t>(frame_count) * kPageSize, '\0') {}
  char* frame_data(uint32_t f) override {
    return data_.data() + static_cast<size_t>(f) * kPageSize;
  }

 private:
  std::vector<char> data_;
};

/// PageIo over a SegmentStore: unpacks keys to (db, area, page).
class StorePageIo : public FrameTable::PageIo {
 public:
  explicit StorePageIo(SegmentStore* store) : store_(store) {}
  Status Fetch(uint64_t key, void* buf) override {
    const PageAddr a = PageAddr::Unpack(key);
    return store_->FetchPages(a.db, a.area, a.page, 1, buf);
  }
  Status Write(uint64_t key, const void* buf) override {
    const PageAddr a = PageAddr::Unpack(key);
    return store_->WritePages(a.db, a.area, a.page, 1, buf);
  }
  Status FetchRun(uint64_t first_key, uint32_t count, void* buf) override {
    const PageAddr a = PageAddr::Unpack(first_key);
    return store_->FetchPages(a.db, a.area, a.page, count, buf);
  }
  Status WriteRun(uint64_t first_key, uint32_t count,
                  const void* buf) override {
    const PageAddr a = PageAddr::Unpack(first_key);
    return store_->WritePages(a.db, a.area, a.page, count, buf);
  }

 private:
  SegmentStore* store_;
};

}  // namespace bess

#endif  // BESS_CACHE_FRAME_TABLE_H_
