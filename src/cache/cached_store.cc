#include "cache/cached_store.h"

#include <cstring>

namespace bess {

CachedSegmentStore::CachedSegmentStore(SegmentStore* inner, Options options)
    : inner_(inner), options_(options),
      placement_(options.frame_count == 0 ? 1 : options.frame_count),
      io_(inner) {
  if (options_.async_backend != "off") {
    AsyncPageIoOptions aopts;
    aopts.backend = options_.async_backend;
    aopts.queue_depth = options_.async_queue_depth;
    aopts.workers = options_.async_workers;
    auto made = MakeAsyncPageIo(aopts, &io_, options_.raw_source);
    // A backend that cannot be built (bad name) degrades to synchronous
    // paths rather than failing the cache; Init-time callers can check
    // async_backend() when they require the push pipeline.
    if (made.ok()) async_io_ = std::move(*made);
  }
  FrameTable::Options topts;
  topts.frame_count = options_.frame_count == 0 ? 1 : options_.frame_count;
  topts.policy = "clock";
  topts.enable_prefetch = options_.enable_prefetch;
  topts.prefetch_trigger = options_.prefetch_trigger;
  topts.prefetch_window = options_.prefetch_window;
  topts.on_cleaned = options_.on_cleaned;
  topts.async_io = async_io_.get();
  topts.async_queue_depth = options_.async_queue_depth;
  table_.reset(new FrameTable(topts, &placement_, &io_));
}

CachedSegmentStore::~CachedSegmentStore() { Stop(); }

Status CachedSegmentStore::Init() { return table_->Init(); }

void CachedSegmentStore::Stop() {
  if (table_ != nullptr) table_->Stop();
  if (async_io_ != nullptr) async_io_->Shutdown();
}

Status CachedSegmentStore::FetchSlotted(SegmentId id, void* buf,
                                        uint32_t* page_count) {
  // Slotted images carry runtime fields the store rewrites on every fetch;
  // they are small (<= kMaxSlottedPages) and not worth caching raw.
  return inner_->FetchSlotted(id, buf, page_count);
}

Status CachedSegmentStore::FetchPages(uint16_t db, uint16_t area, PageId first,
                                      uint32_t page_count, void* buf) {
  char* out = static_cast<char*>(buf);
  for (uint32_t i = 0; i < page_count; ++i) {
    auto r = table_->Fix(Key(db, area, first + i), /*for_write=*/false);
    BESS_RETURN_IF_ERROR(r.status());
    memcpy(out + static_cast<size_t>(i) * kPageSize, r->data, kPageSize);
  }
  return Status::OK();
}

Status CachedSegmentStore::WritePages(uint16_t db, uint16_t area, PageId first,
                                      uint32_t page_count, const void* buf) {
  BESS_RETURN_IF_ERROR(inner_->WritePages(db, area, first, page_count, buf));
  const char* in = static_cast<const char*>(buf);
  for (uint32_t i = 0; i < page_count; ++i) {
    // Best effort: a busy frame (mid-load) just keeps its eventual fresh
    // copy — the inner store already has the new bytes.
    (void)table_->Put(Key(db, area, first + i),
                      in + static_cast<size_t>(i) * kPageSize);
  }
  return Status::OK();
}

Status CachedSegmentStore::ScanPages(uint16_t db, uint16_t area, PageId first,
                                     uint32_t page_count,
                                     const ScanConsumer& consume) {
  return table_->ScanRange(Key(db, area, first), page_count,
                           [&](uint64_t key, const void* bytes) {
                             return consume(PageAddr::Unpack(key).page, bytes);
                           });
}

void CachedSegmentStore::NoteFetch(uint16_t db, uint16_t area, PageId first,
                                   uint32_t page_count) {
  table_->NotePrefetchHint(Key(db, area, first), page_count);
}

void CachedSegmentStore::Refresh(uint16_t db, uint16_t area, PageId page,
                                 const void* bytes) {
  (void)table_->Put(Key(db, area, page), bytes);
}

void CachedSegmentStore::InvalidateAll() {
  (void)table_->Clear(/*flush=*/false);
}

}  // namespace bess
