#include "cache/replacement_policy.h"

#include <algorithm>

namespace bess {

// ---- ClockPolicy ------------------------------------------------------------

ClockPolicy::ClockPolicy(uint32_t frame_count, ClockPolicyOptions opts)
    : frame_count_(frame_count), opts_(opts) {
  if (opts_.use_ref_bits) ref_.assign(frame_count_, 0);
}

uint32_t ClockPolicy::Advance() {
  if (opts_.shared_hand != nullptr) {
    return opts_.shared_hand->fetch_add(1, std::memory_order_relaxed) %
           frame_count_;
  }
  const uint32_t f = local_hand_;
  local_hand_ = (local_hand_ + 1) % frame_count_;
  return f;
}

uint32_t ClockPolicy::PeekHand() const {
  if (opts_.shared_hand != nullptr) {
    return opts_.shared_hand->load(std::memory_order_relaxed) % frame_count_;
  }
  return local_hand_;
}

void ClockPolicy::OnInsert(uint32_t f) {
  if (opts_.use_ref_bits) ref_[f] = 1;
}

void ClockPolicy::OnAccess(uint32_t f) {
  if (opts_.use_ref_bits) ref_[f] = 1;
}

void ClockPolicy::OnEvict(uint32_t f) {
  if (opts_.use_ref_bits) ref_[f] = 0;
}

uint32_t ClockPolicy::PickVictim(const FrameFilter& evictable,
                                 const DemoteHook& demote) {
  // Two revolutions: the first clears reference bits (demoting as it goes),
  // the second is guaranteed to find any frame that stayed cold.
  for (uint32_t step = 0; step < 2 * frame_count_ + 1; ++step) {
    const uint32_t f = Advance();
    if (!evictable(f)) continue;
    if (opts_.use_ref_bits && ref_[f]) {
      ref_[f] = 0;
      if (demote) demote(f);
      continue;
    }
    return f;
  }
  return kNoFrame;
}

uint32_t ClockPolicy::PickIdle(const FrameFilter& evictable) const {
  const uint32_t start = PeekHand();
  for (uint32_t i = 0; i < frame_count_; ++i) {
    const uint32_t f = (start + i) % frame_count_;
    if (!evictable(f)) continue;
    if (opts_.use_ref_bits && ref_[f]) continue;
    return f;
  }
  return kNoFrame;
}

void ClockPolicy::FlushHorizon(uint32_t n, const FrameFilter& candidate,
                               std::vector<uint32_t>* out) const {
  const uint32_t start = PeekHand();
  for (uint32_t i = 0; i < frame_count_ && out->size() < n; ++i) {
    const uint32_t f = (start + i) % frame_count_;
    if (candidate(f)) out->push_back(f);
  }
}

// ---- LruKPolicy -------------------------------------------------------------

LruKPolicy::LruKPolicy(uint32_t frame_count, int k)
    : frame_count_(frame_count), k_(k) {
  hist_.assign(frame_count_, History{});
}

std::pair<uint64_t, uint64_t> LruKPolicy::RankKey(uint32_t f) const {
  const History& h = hist_[f];
  if (k_ == 2) return {h.prev, h.last};
  return {h.last, 0};
}

void LruKPolicy::OnInsert(uint32_t f) { OnAccess(f); }

void LruKPolicy::OnAccess(uint32_t f) {
  History& h = hist_[f];
  ++tick_;
  if (k_ == 2) h.prev = h.last;
  h.last = tick_;
}

void LruKPolicy::OnEvict(uint32_t f) { hist_[f] = History{}; }

uint32_t LruKPolicy::PickVictim(const FrameFilter& evictable,
                                const DemoteHook& demote) {
  (void)demote;  // LRU-K has no second-chance notion
  return PickIdle(evictable);
}

uint32_t LruKPolicy::PickIdle(const FrameFilter& evictable) const {
  uint32_t best = kNoFrame;
  std::pair<uint64_t, uint64_t> best_key{~0ull, ~0ull};
  for (uint32_t f = 0; f < frame_count_; ++f) {
    if (!evictable(f)) continue;
    const auto key = RankKey(f);
    if (best == kNoFrame || key < best_key) {
      best = f;
      best_key = key;
    }
  }
  return best;
}

void LruKPolicy::FlushHorizon(uint32_t n, const FrameFilter& candidate,
                              std::vector<uint32_t>* out) const {
  std::vector<uint32_t> cands;
  for (uint32_t f = 0; f < frame_count_; ++f) {
    if (candidate(f)) cands.push_back(f);
  }
  std::sort(cands.begin(), cands.end(), [this](uint32_t a, uint32_t b) {
    return RankKey(a) < RankKey(b);
  });
  if (cands.size() > n) cands.resize(n);
  out->insert(out->end(), cands.begin(), cands.end());
}

// ---- factory ----------------------------------------------------------------

Result<std::unique_ptr<ReplacementPolicy>> MakeReplacementPolicy(
    const std::string& name, uint32_t frame_count,
    ClockPolicyOptions clock_opts) {
  if (name == "clock") {
    return std::unique_ptr<ReplacementPolicy>(
        new ClockPolicy(frame_count, clock_opts));
  }
  if (name == "lru") {
    return std::unique_ptr<ReplacementPolicy>(new LruKPolicy(frame_count, 1));
  }
  if (name == "lru2") {
    return std::unique_ptr<ReplacementPolicy>(new LruKPolicy(frame_count, 2));
  }
  return Status::InvalidArgument("unknown replacement policy: " + name);
}

}  // namespace bess
