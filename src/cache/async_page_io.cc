#include "cache/async_page_io.h"

#include <atomic>
#include <cstring>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "os/fault_injection.h"
#include "util/config.h"

namespace bess {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// WorkerPoolPageIo: async emulation over a synchronous PageIo.

class WorkerPoolPageIo final : public AsyncPageIo {
 public:
  WorkerPoolPageIo(FrameTable::PageIo* sync_io, uint32_t workers) : sync_(sync_io) {
    if (workers == 0) workers = 1;
    threads_.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i) {
      threads_.emplace_back(&WorkerPoolPageIo::WorkerMain, this);
    }
  }

  ~WorkerPoolPageIo() override { Shutdown(); }

  Status Submit(const Request* reqs, uint32_t n) override {
    if (n == 0) return Status::OK();
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return Status::Aborted("async page io stopped");
    uint64_t now = inflight_.fetch_add(n, std::memory_order_acq_rel) + n;
    uint64_t seen = max_inflight_.load(std::memory_order_relaxed);
    while (now > seen && !max_inflight_.compare_exchange_weak(
                             seen, now, std::memory_order_relaxed)) {
    }
    for (uint32_t i = 0; i < n; ++i) queue_.push_back(reqs[i]);
    work_cv_.notify_all();
    return Status::OK();
  }

  uint32_t Reap(Completion* out, uint32_t max, uint32_t timeout_ms) override {
    return mailbox_.Reap(out, max, timeout_ms);
  }

  void Shutdown() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

  const char* backend() const override { return "pool"; }

  aio::AioStats stats() const override {
    aio::AioStats s;
    s.reads = reads_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.short_fixups = short_fixups_.load(std::memory_order_relaxed);
    s.reorders = mailbox_.reorders();
    s.max_inflight = max_inflight_.load(std::memory_order_relaxed);
    s.io_busy_ns = io_busy_ns_.load(std::memory_order_relaxed);
    s.read_runs = read_runs_.load(std::memory_order_relaxed);
    s.write_runs = write_runs_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  /// Longest read run one worker services as a single device op. Bounds the
  /// scratch buffer (64 KiB) and keeps other workers fed at deep queues.
  static constexpr uint32_t kMaxRunPages = 16;

  void WorkerMain() {
    std::vector<Request> run;
    for (;;) {
      run.clear();
      {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] { return stopped_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopped and drained
        run.push_back(queue_.front());
        queue_.pop_front();
        // Batched transfers: queued requests of the same kind for
        // consecutive keys ride one device op (FetchRun / WriteRun) —
        // block-layer style request merging. Scan staging, prefetch, and
        // bgwriter flush batches all submit in ascending key order, so the
        // natural runs sit adjacent at the queue head; a gap, a kind
        // switch, or a key whose page field would carry into the area bits
        // ends the run.
        while (run.size() < kMaxRunPages && !queue_.empty() &&
               queue_.front().write == run.front().write &&
               (run.back().key & 0xFFFFFFFFull) != 0xFFFFFFFFull &&
               queue_.front().key == run.back().key + 1) {
          run.push_back(queue_.front());
          queue_.pop_front();
        }
      }
      if (run.size() == 1) {
        Execute(run[0]);
      } else if (run.front().write) {
        ExecuteWriteRun(run);
      } else {
        ExecuteReadRun(run);
      }
    }
  }

  void Execute(const Request& req) {
    uint64_t t0 = NowNs();
    (req.write ? writes_ : reads_).fetch_add(1, std::memory_order_relaxed);
    Status st;
    fault::FaultOutcome out;
    if (fault::Armed()) {
      out = fault::FaultRegistry::Instance().EvaluateIo(
          req.write ? "aio.write" : "aio.read", "", kPageSize);
      if (out.crash) fault::FaultRegistry::CrashNow();
    }
    Status err;
    size_t first_cap = kPageSize;
    if (aio::AioFaultFails(out, kPageSize, &err, &first_cap)) {
      st = err;
    } else {
      st = req.write ? sync_->Write(req.key, req.buf)
                     : sync_->Fetch(req.key, req.buf);
      if (st.ok() && first_cap < kPageSize) {
        // Injected short completion: the synchronous backend has no partial
        // transfer to resume, so a read is re-issued whole — the loop-to-
        // complete contract holds; the caller still sees one completion.
        short_fixups_.fetch_add(1, std::memory_order_relaxed);
        if (!req.write) st = sync_->Fetch(req.key, req.buf);
      }
    }
    if (!st.ok()) errors_.fetch_add(1, std::memory_order_relaxed);
    (req.write ? write_runs_ : read_runs_)
        .fetch_add(1, std::memory_order_relaxed);
    io_busy_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    Completion c;
    c.user_data = req.user_data;
    c.status = st;
    c.bytes = st.ok() ? kPageSize : 0;
    bool last = inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1;
    mailbox_.Deliver(c, last);
  }

  /// Services a coalesced run of `n` reads for consecutive keys with one
  /// FetchRun. Fault evaluation stays per request — a mid-run io_error fails
  /// only its own request, a short injected count still completes at full
  /// length — so the aio fault matrix observes the same semantics as
  /// uncoalesced singles, and each request gets its own completion.
  void ExecuteReadRun(const std::vector<Request>& run) {
    const uint32_t n = static_cast<uint32_t>(run.size());
    const uint64_t t0 = NowNs();
    reads_.fetch_add(n, std::memory_order_relaxed);
    std::vector<Status> st(n, Status::OK());
    std::vector<bool> faulted(n, false);
    if (fault::Armed()) {
      for (uint32_t i = 0; i < n; ++i) {
        fault::FaultOutcome out = fault::FaultRegistry::Instance().EvaluateIo(
            "aio.read", "", kPageSize);
        if (out.crash) fault::FaultRegistry::CrashNow();
        Status err;
        size_t first_cap = kPageSize;
        if (aio::AioFaultFails(out, kPageSize, &err, &first_cap)) {
          st[i] = err;
          faulted[i] = true;
        } else if (first_cap < kPageSize) {
          // Injected short count: the run transfer below reads full length
          // anyway (the loop-to-complete contract); record the fixup.
          short_fixups_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    std::vector<char> scratch;
    uint32_t i = 0;
    while (i < n) {
      if (faulted[i]) {
        ++i;
        continue;
      }
      uint32_t j = i + 1;
      while (j < n && !faulted[j]) ++j;
      const uint32_t len = j - i;
      scratch.resize(static_cast<size_t>(len) * kPageSize);
      const Status rs = sync_->FetchRun(run[i].key, len, scratch.data());
      read_runs_.fetch_add(1, std::memory_order_relaxed);
      if (rs.ok()) {
        for (uint32_t k = 0; k < len; ++k) {
          memcpy(run[i + k].buf,
                 scratch.data() + static_cast<size_t>(k) * kPageSize,
                 kPageSize);
        }
      } else {
        // The run fetch fails as a unit; retry each page alone so one bad
        // page cannot fail its neighbours' requests.
        for (uint32_t k = 0; k < len; ++k) {
          st[i + k] = sync_->Fetch(run[i + k].key, run[i + k].buf);
          read_runs_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      i = j;
    }
    io_busy_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    for (uint32_t k = 0; k < n; ++k) {
      if (!st[k].ok()) errors_.fetch_add(1, std::memory_order_relaxed);
      Completion c;
      c.user_data = run[k].user_data;
      c.status = st[k];
      c.bytes = st[k].ok() ? kPageSize : 0;
      const bool last = inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1;
      mailbox_.Deliver(c, last);
    }
  }

  /// Services a coalesced run of `n` writes for consecutive keys with one
  /// WriteRun. Mirrors ExecuteReadRun: faults evaluate per request (a
  /// mid-run io_error drops only its own page out of the run), a failed run
  /// transfer retries each page alone, and every request gets its own
  /// completion. Note the synchronous single-write path drops the request
  /// LSN too — EnsureWalDurable already gated the batch upstream.
  void ExecuteWriteRun(const std::vector<Request>& run) {
    const uint32_t n = static_cast<uint32_t>(run.size());
    const uint64_t t0 = NowNs();
    writes_.fetch_add(n, std::memory_order_relaxed);
    std::vector<Status> st(n, Status::OK());
    std::vector<bool> faulted(n, false);
    if (fault::Armed()) {
      for (uint32_t i = 0; i < n; ++i) {
        fault::FaultOutcome out = fault::FaultRegistry::Instance().EvaluateIo(
            "aio.write", "", kPageSize);
        if (out.crash) fault::FaultRegistry::CrashNow();
        Status err;
        size_t first_cap = kPageSize;
        if (aio::AioFaultFails(out, kPageSize, &err, &first_cap)) {
          st[i] = err;
          faulted[i] = true;
        } else if (first_cap < kPageSize) {
          // Injected short count: WriteRun below transfers full length
          // anyway (loop-to-complete); record the fixup.
          short_fixups_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    std::vector<char> scratch;
    uint32_t i = 0;
    while (i < n) {
      if (faulted[i]) {
        ++i;
        continue;
      }
      uint32_t j = i + 1;
      while (j < n && !faulted[j]) ++j;
      const uint32_t len = j - i;
      scratch.resize(static_cast<size_t>(len) * kPageSize);
      for (uint32_t k = 0; k < len; ++k) {
        memcpy(scratch.data() + static_cast<size_t>(k) * kPageSize,
               run[i + k].buf, kPageSize);
      }
      const Status ws = sync_->WriteRun(run[i].key, len, scratch.data());
      write_runs_.fetch_add(1, std::memory_order_relaxed);
      if (!ws.ok()) {
        // The run write fails as a unit; retry each page alone so one bad
        // page cannot fail its neighbours' requests.
        for (uint32_t k = 0; k < len; ++k) {
          st[i + k] = sync_->Write(run[i + k].key, run[i + k].buf);
          write_runs_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      i = j;
    }
    io_busy_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    for (uint32_t k = 0; k < n; ++k) {
      if (!st[k].ok()) errors_.fetch_add(1, std::memory_order_relaxed);
      Completion c;
      c.user_data = run[k].user_data;
      c.status = st[k];
      c.bytes = st[k].ok() ? kPageSize : 0;
      const bool last = inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1;
      mailbox_.Deliver(c, last);
    }
  }

  FrameTable::PageIo* sync_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Request> queue_;
  bool stopped_ = false;
  std::vector<std::thread> threads_;
  aio::CompletionMailbox mailbox_;
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> short_fixups_{0};
  std::atomic<uint64_t> max_inflight_{0};
  std::atomic<uint64_t> io_busy_ns_{0};
  std::atomic<uint64_t> read_runs_{0};
  std::atomic<uint64_t> write_runs_{0};
};

// ---------------------------------------------------------------------------
// FileEnginePageIo: AsyncFileEngine over a RawPageSource.

class FileEnginePageIo final : public AsyncPageIo {
 public:
  FileEnginePageIo(std::unique_ptr<aio::AsyncFileEngine> engine,
                   aio::RawPageSource* raw, FrameTable::PageIo* sync_fallback)
      : engine_(std::move(engine)), raw_(raw), sync_(sync_fallback) {}

  ~FileEnginePageIo() override { Shutdown(); }

  Status Submit(const Request* reqs, uint32_t n) override {
    std::vector<aio::AioRequest> batch;
    batch.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      const Request& r = reqs[i];
      int fd = -1;
      uint64_t off = 0;
      if (!raw_->RawRun(r.key, 1, &fd, &off)) {
        // Not raw-reachable (quarantined page, unknown area): complete via
        // the synchronous path so the caller never needs a special case.
        Status st = sync_ == nullptr
                        ? Status::NotSupported("page not raw-reachable")
                        : (r.write ? sync_->Write(r.key, r.buf)
                                   : sync_->Fetch(r.key, r.buf));
        PostImmediate(r.user_data, st);
        continue;
      }
      uint64_t id;
      {
        std::lock_guard<std::mutex> lk(pending_mu_);
        id = next_id_++;
        pending_.emplace(id, r);
      }
      aio::AioRequest ar;
      ar.op = r.write ? aio::Op::kWrite : aio::Op::kRead;
      ar.fd = fd;
      ar.offset = off;
      ar.buf = r.buf;
      ar.len = kPageSize;
      ar.user_data = id;
      batch.push_back(ar);
    }
    if (batch.empty()) return Status::OK();
    Status st = engine_->Submit(batch.data(), static_cast<uint32_t>(batch.size()));
    if (!st.ok()) {
      // Engine refused the whole batch: fail those requests loudly so every
      // accepted request still produces a completion.
      std::lock_guard<std::mutex> lk(pending_mu_);
      for (const auto& ar : batch) {
        auto it = pending_.find(ar.user_data);
        if (it == pending_.end()) continue;
        PostImmediate(it->second.user_data, st);
        pending_.erase(it);
      }
    }
    return Status::OK();
  }

  uint32_t Reap(Completion* out, uint32_t max, uint32_t timeout_ms) override {
    uint32_t n = 0;
    {
      std::lock_guard<std::mutex> lk(immediate_mu_);
      while (n < max && !immediate_.empty()) {
        out[n++] = immediate_.front();
        immediate_.pop_front();
      }
    }
    if (n >= max) return n;
    std::vector<Completion> tmp(max - n);
    uint32_t m = engine_->Reap(tmp.data(), max - n, n > 0 ? 0 : timeout_ms);
    for (uint32_t i = 0; i < m; ++i) {
      Request req;
      {
        std::lock_guard<std::mutex> lk(pending_mu_);
        auto it = pending_.find(tmp[i].user_data);
        if (it == pending_.end()) continue;
        req = it->second;
        pending_.erase(it);
      }
      Status st = tmp[i].status;
      if (st.ok()) {
        // Re-apply the storage integrity envelope around the raw transfer.
        st = req.write ? raw_->FinishWrite(req.key, 1, req.buf, req.lsn)
                       : raw_->FinishRead(req.key, 1, req.buf);
      }
      out[n].user_data = req.user_data;
      out[n].status = st;
      out[n].bytes = st.ok() ? kPageSize : 0;
      ++n;
    }
    return n;
  }

  void Shutdown() override { engine_->Shutdown(); }

  const char* backend() const override { return engine_->backend(); }
  aio::AioStats stats() const override { return engine_->stats(); }

 private:
  void PostImmediate(uint64_t user_data, Status st) {
    Completion c;
    c.user_data = user_data;
    c.status = st;
    c.bytes = st.ok() ? kPageSize : 0;
    std::lock_guard<std::mutex> lk(immediate_mu_);
    immediate_.push_back(c);
  }

  std::unique_ptr<aio::AsyncFileEngine> engine_;
  aio::RawPageSource* raw_;
  FrameTable::PageIo* sync_;
  std::mutex pending_mu_;
  std::unordered_map<uint64_t, Request> pending_;
  uint64_t next_id_ = 1;
  std::mutex immediate_mu_;
  std::deque<Completion> immediate_;
};

}  // namespace

Result<std::unique_ptr<AsyncPageIo>> MakeAsyncPageIo(
    const AsyncPageIoOptions& options, FrameTable::PageIo* sync_io,
    aio::RawPageSource* raw) {
  if (options.backend == "off") {
    return Status::InvalidArgument("async backend is off");
  }
  if (options.backend != "auto" && options.backend != "uring" &&
      options.backend != "pool") {
    return Status::InvalidArgument("unknown async backend: " +
                                   options.backend);
  }
  const bool want_uring =
      options.backend != "pool" && raw != nullptr &&
      (options.backend == "uring" || aio::AsyncFileEngine::UringSupported());
  if (want_uring) {
    aio::AsyncFileEngine::Options eo;
    eo.backend = options.backend == "pool" ? "pool" : options.backend;
    eo.queue_depth = options.queue_depth;
    eo.workers = options.workers;
    BESS_ASSIGN_OR_RETURN(auto engine, aio::AsyncFileEngine::Create(eo));
    return std::unique_ptr<AsyncPageIo>(std::make_unique<FileEnginePageIo>(
        std::move(engine), raw, sync_io));
  }
  if (sync_io == nullptr) {
    return Status::InvalidArgument(
        "worker-pool async backend needs a synchronous PageIo");
  }
  return std::unique_ptr<AsyncPageIo>(
      std::make_unique<WorkerPoolPageIo>(sync_io, options.workers));
}

}  // namespace bess
