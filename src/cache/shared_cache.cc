#include "cache/shared_cache.h"

#include <errno.h>
#include <signal.h>
#include <string.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "os/vmem.h"
#include "util/logging.h"

namespace bess {
namespace {

constexpr size_t Align(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

uint64_t HashKey(uint64_t key) {
  key ^= key >> 33;
  key *= 0xFF51AFD7ED558CCDull;
  key ^= key >> 33;
  return key;
}

struct Layout {
  size_t slots_off;
  size_t smt_off;
  size_t bindings_off;
  size_t frames_off;
  size_t total;
};

Layout ComputeLayout(uint32_t frame_count, uint32_t smt_capacity) {
  Layout l;
  l.slots_off = Align(sizeof(ShmHeader), 64);
  l.smt_off = Align(l.slots_off + frame_count * sizeof(FrameMeta), 64);
  l.bindings_off = Align(l.smt_off + smt_capacity * sizeof(SmtEntry), 64);
  l.frames_off = Align(
      l.bindings_off + static_cast<size_t>(kMaxCacheProcs) * frame_count,
      kPageSize);
  l.total = l.frames_off + static_cast<size_t>(frame_count) * kPageSize;
  return l;
}

}  // namespace

// ---- SharedCache ------------------------------------------------------------

void SharedCache::InitPointers() {
  header_ = static_cast<ShmHeader*>(shm_.base());
  const Layout l = ComputeLayout(header_->frame_count, header_->smt_capacity);
  char* base = static_cast<char*>(shm_.base());
  slots_ = reinterpret_cast<FrameMeta*>(base + l.slots_off);
  smt_ = reinterpret_cast<SmtEntry*>(base + l.smt_off);
  bindings_ = reinterpret_cast<uint8_t*>(base + l.bindings_off);
  frames_offset_ = l.frames_off;
}

Result<SharedCache> SharedCache::Create(const std::string& name,
                                        Geometry geo) {
  if (geo.vframe_count < geo.frame_count ||
      (geo.smt_capacity & (geo.smt_capacity - 1)) != 0 ||
      geo.smt_capacity <= geo.vframe_count) {
    return Status::InvalidArgument("bad shared cache geometry");
  }
  const Layout l = ComputeLayout(geo.frame_count, geo.smt_capacity);
  SharedCache cache;
  BESS_ASSIGN_OR_RETURN(cache.shm_, SharedMemory::Create(name, l.total));
  auto* h = static_cast<ShmHeader*>(cache.shm_.base());
  h->magic = ShmHeader::kMagic;
  h->frame_count = geo.frame_count;
  h->vframe_count = geo.vframe_count;
  h->smt_capacity = geo.smt_capacity;
  cache.InitPointers();
  // SMT slots start empty (vframe/slot must read as kNoFrame, not zero).
  for (uint32_t i = 0; i < geo.smt_capacity; ++i) {
    cache.smt_[i].vframe.store(kNoFrame, std::memory_order_relaxed);
    cache.smt_[i].slot.store(kNoFrame, std::memory_order_relaxed);
  }
  return cache;
}

Result<SharedCache> SharedCache::Attach(const std::string& name) {
  SharedCache cache;
  BESS_ASSIGN_OR_RETURN(cache.shm_, SharedMemory::Attach(name));
  auto* h = static_cast<ShmHeader*>(cache.shm_.base());
  if (h->magic != ShmHeader::kMagic) {
    return Status::Corruption("not a BeSS shared cache: " + name);
  }
  cache.InitPointers();
  return cache;
}

Result<SmtEntry*> SharedCache::AssignEntry(uint64_t page_key) {
  if (page_key == 0) return Status::InvalidArgument("null page key");
  const uint32_t mask = header_->smt_capacity - 1;
  uint32_t idx = static_cast<uint32_t>(HashKey(page_key)) & mask;
  for (uint32_t probe = 0; probe < header_->smt_capacity; ++probe) {
    SmtEntry* e = entry(idx);
    const uint64_t cur = e->page_key.load(std::memory_order_acquire);
    if (cur == page_key) return e;
    if (cur == 0) {
      // Claim under the SMT latch (assignments are rare relative to hits).
      LatchGuard guard(header_->smt_latch);
      if (e->page_key.load(std::memory_order_acquire) == 0) {
        const uint32_t vf =
            header_->next_vframe.fetch_add(1, std::memory_order_relaxed);
        if (vf >= header_->vframe_count) {
          header_->next_vframe.fetch_sub(1, std::memory_order_relaxed);
          return Status::NoSpace("virtual frames exhausted");
        }
        e->vframe.store(vf, std::memory_order_relaxed);
        e->slot.store(kNoFrame, std::memory_order_relaxed);
        e->page_key.store(page_key, std::memory_order_release);
        return e;
      }
      // Lost the race; re-inspect this index.
      if (e->page_key.load(std::memory_order_acquire) == page_key) return e;
    }
    idx = (idx + 1) & mask;
  }
  return Status::NoSpace("shared mapping table full");
}

SmtEntry* SharedCache::FindEntry(uint64_t page_key) const {
  const uint32_t mask = header_->smt_capacity - 1;
  uint32_t idx = static_cast<uint32_t>(HashKey(page_key)) & mask;
  for (uint32_t probe = 0; probe < header_->smt_capacity; ++probe) {
    SmtEntry* e = entry(idx);
    const uint64_t cur = e->page_key.load(std::memory_order_acquire);
    if (cur == page_key) return e;
    if (cur == 0) return nullptr;
    idx = (idx + 1) & mask;
  }
  return nullptr;
}

SmtEntry* SharedCache::EntryByVframe(uint32_t vframe) const {
  for (uint32_t i = 0; i < header_->smt_capacity; ++i) {
    SmtEntry* e = entry(i);
    if (e->page_key.load(std::memory_order_acquire) != 0 &&
        e->vframe.load(std::memory_order_relaxed) == vframe) {
      return e;
    }
  }
  return nullptr;
}

Result<uint32_t> SharedCache::RegisterProcess() {
  const uint32_t pid = static_cast<uint32_t>(::getpid());
  for (uint32_t i = 0; i < kMaxCacheProcs; ++i) {
    uint32_t expected = 0;
    if (header_->pids[i].compare_exchange_strong(expected, pid)) {
      memset(proc_bindings(i), 0, header_->frame_count);
      return i;
    }
  }
  return Status::NoSpace("shared cache process table full");
}

void SharedCache::UnregisterProcess(uint32_t proc_idx) {
  if (proc_idx >= kMaxCacheProcs) return;
  uint8_t* bound = proc_bindings(proc_idx);
  for (uint32_t s = 0; s < header_->frame_count; ++s) {
    if (bound[s]) {
      bound[s] = 0;
      slot(s)->pins.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  header_->pids[proc_idx].store(0, std::memory_order_release);
}

Result<int> SharedCache::CleanupDeadProcesses() {
  int cleaned = 0;
  for (uint32_t i = 0; i < kMaxCacheProcs; ++i) {
    const uint32_t pid = header_->pids[i].load(std::memory_order_acquire);
    if (pid == 0) continue;
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) continue;
    // Dead process: release its slot bindings and break its latches.
    UnregisterProcess(i);
    if (header_->smt_latch.holder_pid() == pid) {
      header_->smt_latch.BreakOrphaned();
    }
    for (uint32_t s = 0; s < header_->frame_count; ++s) {
      if (slot(s)->latch.holder_pid() == pid) slot(s)->latch.BreakOrphaned();
    }
    ++cleaned;
  }
  return cleaned;
}

// ---- SharedPageSpace::SmtDirectory ------------------------------------------

uint32_t SharedPageSpace::SmtDirectory::Lookup(uint64_t key) {
  SmtEntry* e = cache_->FindEntry(key);
  if (e == nullptr) return kNoFrame;
  return e->slot.load(std::memory_order_acquire);
}

Status SharedPageSpace::SmtDirectory::Install(uint64_t key, uint32_t f) {
  SmtEntry* e = cache_->FindEntry(key);
  if (e == nullptr) {
    return Status::Internal("page key has no SMT entry");
  }
  e->slot.store(f, std::memory_order_release);
  return Status::OK();
}

void SharedPageSpace::SmtDirectory::Erase(uint64_t key, uint32_t f) {
  SmtEntry* e = cache_->FindEntry(key);
  if (e != nullptr && e->slot.load(std::memory_order_relaxed) == f) {
    e->slot.store(kNoFrame, std::memory_order_release);
  }
}

// ---- SharedPageSpace::SharedPlacement ---------------------------------------

char* SharedPageSpace::SharedPlacement::frame_data(uint32_t f) {
  return space_->cache_.frame_data(f);
}

Status SharedPageSpace::SharedPlacement::PrepareForWriteback(uint32_t f) {
  // Latch unconditionally. A bound slot may be stored to through another
  // process's PVMA at any moment, and a pins == 0 snapshot taken here —
  // the flusher does not hold the SMT latch — can be invalidated the next
  // instant by another process binding the slot; the latch is the only
  // thing that keeps the on-store image untorn for the length of the I/O.
  space_->cache_.slot(f)->latch.Lock();
  space_->latched_[f] = 1;
  return Status::OK();
}

Status SharedPageSpace::SharedPlacement::FinishWriteback(uint32_t f, bool ok) {
  (void)ok;
  if (space_->latched_[f]) {
    space_->latched_[f] = 0;
    space_->cache_.slot(f)->latch.Unlock();
  }
  return Status::OK();
}

Status SharedPageSpace::SharedPlacement::ReleasePressure() {
  // Every slot is bound somewhere; push our own bindings down one level
  // (other processes run their level-1 sweeps themselves) and reclaim the
  // bindings of crashed processes (§4.1.2). Reached only from Fix, so the
  // space mutex is held.
  BESS_RETURN_IF_ERROR(space_->RunClockLevel1Locked(0));
  return space_->cache_.CleanupDeadProcesses().status();
}

// ---- SharedPageSpace --------------------------------------------------------

Result<std::unique_ptr<SharedPageSpace>> SharedPageSpace::Open(
    SharedCache cache, SegmentStore* store) {
  return Open(std::move(cache), store, Options{});
}

Result<std::unique_ptr<SharedPageSpace>> SharedPageSpace::Open(
    SharedCache cache, SegmentStore* store, const Options& options) {
  auto space = std::unique_ptr<SharedPageSpace>(
      new SharedPageSpace(std::move(cache), store, options));
  BESS_RETURN_IF_ERROR(space->Init());
  return space;
}

Status SharedPageSpace::Init() {
  (void)cache_.CleanupDeadProcesses();
  BESS_ASSIGN_OR_RETURN(proc_idx_, cache_.RegisterProcess());
  const uint32_t vframes = cache_.header()->vframe_count;
  pvma_bytes_ = static_cast<size_t>(vframes) * kPageSize;
  BESS_ASSIGN_OR_RETURN(void* base, vmem::Reserve(pvma_bytes_));
  pvma_base_ = static_cast<char*>(base);
  frame_state_.assign(vframes, kInvalid);
  frame_slot_.assign(vframes, kNoFrame);
  latched_.assign(cache_.header()->frame_count, 0);

  FrameTable::Options topts;
  topts.frame_count = cache_.header()->frame_count;
  topts.policy = "clock";
  // The level-2 clock's recency signal is the pin count fed by per-process
  // bindings, not per-fix reference bits; the hand lives in the header so
  // all processes share one sweep position.
  topts.clock_ref_bits = false;
  topts.shared_hand = &cache_.header()->clock_hand;
  topts.frames = cache_.slot(0);
  topts.directory = &smt_dir_;
  topts.enable_bgwriter = options_.enable_bgwriter;
  topts.bgwriter_interval_ms = options_.bgwriter_interval_ms;
  topts.enable_prefetch = options_.enable_prefetch;
  table_.reset(new FrameTable(topts, &placement_, &store_io_));
  BESS_RETURN_IF_ERROR(table_->Init());

  dispatcher_slot_ = FaultDispatcher::Instance().RegisterRange(
      pvma_base_, pvma_bytes_, this);
  return Status::OK();
}

SharedPageSpace::~SharedPageSpace() {
  if (table_ != nullptr) table_->Stop();
  if (dispatcher_slot_ >= 0) {
    FaultDispatcher::Instance().UnregisterRange(dispatcher_slot_);
  }
  if (proc_idx_ != kNoFrame) cache_.UnregisterProcess(proc_idx_);
  if (pvma_base_ != nullptr) {
    (void)vmem::Release(pvma_base_, pvma_bytes_);
  }
}

Status SharedPageSpace::BindFrame(uint32_t vframe, uint32_t slot) {
  BESS_RETURN_IF_ERROR(vmem::MapFileFixed(
      pvma_base_ + static_cast<size_t>(vframe) * kPageSize, kPageSize,
      cache_.fd(), cache_.frame_offset(slot), vmem::kReadWrite));
  if (!cache_.proc_bindings(proc_idx_)[slot]) {
    cache_.proc_bindings(proc_idx_)[slot] = 1;
    cache_.slot(slot)->pins.fetch_add(1, std::memory_order_acq_rel);
  }
  frame_state_[vframe] = kAccessible;
  frame_slot_[vframe] = slot;
  return Status::OK();
}

Status SharedPageSpace::UnbindFrame(uint32_t vframe) {
  const uint32_t slot = frame_slot_[vframe];
  BESS_RETURN_IF_ERROR(vmem::CommitAnonymous(
      pvma_base_ + static_cast<size_t>(vframe) * kPageSize, kPageSize,
      vmem::kNone));
  if (slot != kNoFrame && cache_.proc_bindings(proc_idx_)[slot]) {
    cache_.proc_bindings(proc_idx_)[slot] = 0;
    cache_.slot(slot)->pins.fetch_sub(1, std::memory_order_acq_rel);
  }
  frame_state_[vframe] = kInvalid;
  frame_slot_[vframe] = kNoFrame;
  return Status::OK();
}

Status SharedPageSpace::MapIn(SmtEntry* entry, uint32_t vframe) {
  // The SMT latch serializes cross-process miss paths: while we hold it,
  // no other process can bind or replace slots, so an unpinned frame the
  // core picks as victim stays untouchable until we bind it.
  LatchGuard smt(cache_.header()->smt_latch);
  const uint64_t key = entry->page_key.load(std::memory_order_acquire);
  BESS_ASSIGN_OR_RETURN(FrameTable::FixResult r,
                        table_->Fix(key, /*for_write=*/false, /*pin=*/true));
  // The transient fix pin covers the gap until the binding's own pin is in
  // place.
  Status bs = BindFrame(vframe, r.frame);
  Status us = table_->Unpin(r.frame);
  return bs.ok() ? us : bs;
}

Result<void*> SharedPageSpace::Fix(PageAddr page, bool for_write) {
  std::lock_guard<std::mutex> guard(mu_);
  stats_.fixes++;
  BESS_ASSIGN_OR_RETURN(SmtEntry * entry, cache_.AssignEntry(page.Pack()));
  const uint32_t vframe = entry->vframe.load(std::memory_order_relaxed);
  void* addr = pvma_base_ + static_cast<size_t>(vframe) * kPageSize;

  if (frame_state_[vframe] == kAccessible) {
    stats_.hits++;
    BESS_COUNT("cache.hit");
  } else if (frame_state_[vframe] == kProtected) {
    // Second chance: the binding is intact, only access was revoked.
    BESS_RETURN_IF_ERROR(vmem::Protect(addr, kPageSize, vmem::kReadWrite));
    frame_state_[vframe] = kAccessible;
    stats_.second_chances++;
  } else {
    BESS_RETURN_IF_ERROR(MapIn(entry, vframe));
  }
  if (for_write) {
    // Clean -> dirty is the software flavour of write detection (§2.3);
    // the core counts it.
    BESS_RETURN_IF_ERROR(table_->MarkDirty(frame_slot_[vframe]));
  }
  return addr;
}

Status SharedPageSpace::LatchPage(PageAddr page) {
  SmtEntry* e = cache_.FindEntry(page.Pack());
  if (e == nullptr) return Status::NotFound("page not in shared space");
  const uint32_t s = e->slot.load(std::memory_order_acquire);
  if (s == kNoFrame) return Status::NotFound("page not resident");
  cache_.slot(s)->latch.Lock();
  return Status::OK();
}

Status SharedPageSpace::UnlatchPage(PageAddr page) {
  SmtEntry* e = cache_.FindEntry(page.Pack());
  if (e == nullptr) return Status::NotFound("page not in shared space");
  const uint32_t s = e->slot.load(std::memory_order_acquire);
  if (s == kNoFrame) return Status::NotFound("page not resident");
  cache_.slot(s)->latch.Unlock();
  return Status::OK();
}

Result<uint64_t> SharedPageSpace::ToSvma(const void* addr) const {
  const char* p = static_cast<const char*>(addr);
  if (p < pvma_base_ || p >= pvma_base_ + pvma_bytes_) {
    return Status::InvalidArgument("address outside the PVMA");
  }
  return static_cast<uint64_t>(p - pvma_base_);
}

Status SharedPageSpace::FlushDirty() { return table_->FlushDirty(); }

Status SharedPageSpace::RunClockLevel1(uint32_t frames) {
  std::lock_guard<std::mutex> guard(mu_);
  return RunClockLevel1Locked(frames);
}

Status SharedPageSpace::RunClockLevel1Locked(uint32_t frames) {
  const uint32_t vframes = cache_.header()->vframe_count;
  if (frames == 0 || frames > vframes) frames = vframes;
  stats_.clock_sweeps++;
  for (uint32_t i = 0; i < frames; ++i) {
    const uint32_t vf = local_hand_;
    local_hand_ = (local_hand_ + 1) % vframes;
    switch (frame_state_[vf]) {
      case kAccessible: {
        // Revoke access; the frame keeps its slot (second chance).
        void* addr = pvma_base_ + static_cast<size_t>(vf) * kPageSize;
        BESS_RETURN_IF_ERROR(vmem::Protect(addr, kPageSize, vmem::kNone));
        frame_state_[vf] = kProtected;
        break;
      }
      case kProtected:
        BESS_RETURN_IF_ERROR(UnbindFrame(vf));
        break;
      case kInvalid:
        break;
    }
  }
  return Status::OK();
}

bool SharedPageSpace::OnFault(void* addr, bool is_write) {
  (void)is_write;
  std::lock_guard<std::mutex> guard(mu_);
  const size_t off = static_cast<size_t>(static_cast<char*>(addr) -
                                         pvma_base_);
  const uint32_t vframe = static_cast<uint32_t>(off / kPageSize);
  if (vframe >= frame_state_.size()) return false;
  Status s = ResolveFrameFault(vframe);
  if (!s.ok()) {
    BESS_ERROR("shared-space fault failed: " << s.ToString());
    return false;
  }
  return true;
}

Status SharedPageSpace::ResolveFrameFault(uint32_t vframe) {
  void* addr = pvma_base_ + static_cast<size_t>(vframe) * kPageSize;
  if (frame_state_[vframe] == kProtected) {
    BESS_RETURN_IF_ERROR(vmem::Protect(addr, kPageSize, vmem::kReadWrite));
    frame_state_[vframe] = kAccessible;
    stats_.second_chances++;
    return Status::OK();
  }
  if (frame_state_[vframe] == kInvalid) {
    SmtEntry* entry = cache_.EntryByVframe(vframe);
    if (entry == nullptr) {
      return Status::NotFound("fault on unassigned virtual frame");
    }
    BESS_RETURN_IF_ERROR(MapIn(entry, vframe));
    stats_.remaps++;
    return Status::OK();
  }
  return Status::Internal("fault on accessible frame");
}

SharedPageSpace::Stats SharedPageSpace::stats() const {
  Stats s = stats_;
  const FrameTable::Stats t = table_->stats();
  s.hits += t.hits;
  s.misses += t.misses;
  s.evictions += t.evictions;
  return s;
}

}  // namespace bess
