// Pluggable replacement policies for the frame-lifecycle core (§4.2).
//
// A policy ranks frames; it never touches frame contents, protection or
// I/O. The FrameTable drives it through access/insert/evict notifications
// and asks it for victims. Two families ship:
//
//   clock — the paper's second-chance clock. With `use_ref_bits` the policy
//           keeps one reference bit per frame (textbook CLOCK); without, it
//           is a pure rotor over externally-managed recency (the shared
//           cache's level-2 hand, where level-1 protection demotion is the
//           recency signal and lives in the placement).
//   lru / lru2 — LRU-K for K = 1 and 2. LRU-2 ranks by the second-most-
//           recent access, so one-touch scan pages lose to re-referenced
//           hot pages (the seam-proving policy the private clock cannot
//           express).
//
// All methods are called with the owning FrameTable's mutex held; policies
// need no locking of their own.
#ifndef BESS_CACHE_REPLACEMENT_POLICY_H_
#define BESS_CACHE_REPLACEMENT_POLICY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace bess {

inline constexpr uint32_t kNoFrame = 0xFFFFFFFFu;

class ReplacementPolicy {
 public:
  /// True when frame `f` may be replaced right now (unpinned, clean enough
  /// for the caller's pass). Provided by the FrameTable.
  using FrameFilter = std::function<bool(uint32_t)>;
  /// Second-chance hook: the policy demoted `f` instead of evicting it and
  /// the placement should revoke access so a future touch re-promotes it.
  using DemoteHook = std::function<void(uint32_t)>;

  virtual ~ReplacementPolicy() = default;
  virtual const char* name() const = 0;

  /// A page was installed in frame `f`.
  virtual void OnInsert(uint32_t f) = 0;
  /// Frame `f` was accessed (fix hit or raw-touch fault).
  virtual void OnAccess(uint32_t f) = 0;
  /// Frame `f` was evicted; forget its history.
  virtual void OnEvict(uint32_t f) = 0;

  /// Picks a victim among frames passing `evictable`, demoting still-warm
  /// candidates through `demote` on the way. kNoFrame when nothing passes.
  virtual uint32_t PickVictim(const FrameFilter& evictable,
                              const DemoteHook& demote) = 0;

  /// Like PickVictim but read-only: no ref bits cleared, no demotions, no
  /// hand movement. Used by prefetch so speculative loads never burn a
  /// resident page's second chance.
  virtual uint32_t PickIdle(const FrameFilter& evictable) const = 0;

  /// Appends up to `n` frames the hand will reach soonest that pass
  /// `candidate` — the bgwriter's flush-ahead window.
  virtual void FlushHorizon(uint32_t n, const FrameFilter& candidate,
                            std::vector<uint32_t>* out) const = 0;
};

struct ClockPolicyOptions {
  bool use_ref_bits = true;
  /// When set, the hand lives in shared memory (one rotor for every
  /// process attached to the cache); otherwise a private hand is used.
  std::atomic<uint32_t>* shared_hand = nullptr;
};

class ClockPolicy : public ReplacementPolicy {
 public:
  ClockPolicy(uint32_t frame_count, ClockPolicyOptions opts);
  const char* name() const override { return "clock"; }
  void OnInsert(uint32_t f) override;
  void OnAccess(uint32_t f) override;
  void OnEvict(uint32_t f) override;
  uint32_t PickVictim(const FrameFilter& evictable,
                      const DemoteHook& demote) override;
  uint32_t PickIdle(const FrameFilter& evictable) const override;
  void FlushHorizon(uint32_t n, const FrameFilter& candidate,
                    std::vector<uint32_t>* out) const override;

 private:
  uint32_t Advance();
  uint32_t PeekHand() const;

  uint32_t frame_count_;
  ClockPolicyOptions opts_;
  uint32_t local_hand_ = 0;
  std::vector<uint8_t> ref_;
};

/// LRU-K for K in {1, 2}. K = 1 is strict LRU; K = 2 ranks by the
/// penultimate access (never-re-referenced frames rank coldest).
class LruKPolicy : public ReplacementPolicy {
 public:
  LruKPolicy(uint32_t frame_count, int k);
  const char* name() const override { return k_ == 2 ? "lru2" : "lru"; }
  void OnInsert(uint32_t f) override;
  void OnAccess(uint32_t f) override;
  void OnEvict(uint32_t f) override;
  uint32_t PickVictim(const FrameFilter& evictable,
                      const DemoteHook& demote) override;
  uint32_t PickIdle(const FrameFilter& evictable) const override;
  void FlushHorizon(uint32_t n, const FrameFilter& candidate,
                    std::vector<uint32_t>* out) const override;

 private:
  struct History {
    uint64_t last = 0;  ///< most recent access tick
    uint64_t prev = 0;  ///< access before that (K = 2 rank key)
  };
  /// Lexicographic coldness key: smaller evicts first.
  std::pair<uint64_t, uint64_t> RankKey(uint32_t f) const;

  uint32_t frame_count_;
  int k_;
  uint64_t tick_ = 0;
  std::vector<History> hist_;
};

/// Factory over the policy names accepted in configuration ("clock",
/// "lru", "lru2"). InvalidArgument for anything else.
Result<std::unique_ptr<ReplacementPolicy>> MakeReplacementPolicy(
    const std::string& name, uint32_t frame_count,
    ClockPolicyOptions clock_opts = {});

}  // namespace bess

#endif  // BESS_CACHE_REPLACEMENT_POLICY_H_
