// Lock manager: strict two-phase locking with intention modes and
// timeout-based deadlock detection (paper §3: "The strict two phase locking
// algorithm is used for concurrency control ... timeouts are used for
// distributed deadlock detection").
//
// Resources are 64-bit keys; helpers build keys for pages, segments, and
// whole files so intention locking can layer them hierarchically. Locks are
// held by transaction id and released together at end of transaction
// (strictness). Lock *caching* across transactions (paper §3) is layered on
// top by the client cache: a cached lock is simply not released at commit
// and is given back when a callback arrives.
#ifndef BESS_TXN_LOCK_MANAGER_H_
#define BESS_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/config.h"
#include "util/status.h"

namespace bess {

using TxnId = uint64_t;
inline constexpr TxnId kNoTxn = 0;

/// Lock modes, ordered so that higher values are "stronger" only within
/// {S, X}; compatibility is given by the standard matrix.
enum class LockMode : uint8_t { kIS = 0, kIX, kS, kSIX, kX };

const char* LockModeName(LockMode m);

/// True when a holder in `held` allows a requester in `want`.
bool LockCompatible(LockMode held, LockMode want);

/// The least mode at least as strong as both (lattice join); used for
/// upgrades (e.g. S + IX -> SIX).
LockMode LockJoin(LockMode a, LockMode b);

/// Resource key builders (top 4 bits tag the namespace).
struct LockKey {
  static uint64_t Page(uint16_t db, uint16_t area, uint32_t page) {
    return (1ull << 60) | ((static_cast<uint64_t>(db) & 0xFFF) << 48) |
           (static_cast<uint64_t>(area) << 32) | page;
  }
  static uint64_t Segment(uint64_t packed_segment_id) {
    return (2ull << 60) | (packed_segment_id & 0x0FFFFFFFFFFFFFFFull);
  }
  static uint64_t File(uint16_t db, uint16_t file_id) {
    return (3ull << 60) | (static_cast<uint64_t>(db) << 16) | file_id;
  }
  static uint64_t Database(uint16_t db) { return (4ull << 60) | db; }

  static bool IsPage(uint64_t key) { return (key >> 60) == 1; }
  static bool IsSegment(uint64_t key) { return (key >> 60) == 2; }
  /// Inverse of Page(); valid only when IsPage(key).
  static void UnpackPage(uint64_t key, uint16_t* db, uint16_t* area,
                         uint32_t* page) {
    *db = static_cast<uint16_t>((key >> 48) & 0xFFF);
    *area = static_cast<uint16_t>((key >> 32) & 0xFFFF);
    *page = static_cast<uint32_t>(key & 0xFFFFFFFFu);
  }
  /// Inverse of Segment(); valid only when IsSegment(key).
  static uint64_t UnpackSegment(uint64_t key) {
    return key & 0x0FFFFFFFFFFFFFFFull;
  }
};

/// Statistics for benches (messages & waits are the currencies the paper's
/// related work optimizes).
struct LockStats {
  uint64_t acquires = 0;
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;
  uint64_t timeouts = 0;
  uint64_t upgrades = 0;
};

/// The lock table is hash-partitioned into kLockShards shards, each with its
/// own mutex + condition variable, so sessions locking disjoint resources
/// never serialize on one manager-wide mutex. A shard is picked by a
/// Fibonacci hash of the key; a transaction's locks spread across shards, so
/// ReleaseAll/HeldKeys visit every shard (cold paths). Timeout-based
/// deadlock detection stays correct across shards: a waiter that times out
/// first takes the rarely-contended detector mutex and re-checks
/// grantability once more before declaring itself the victim — a grant that
/// raced with the timeout wins over a spurious abort.
inline constexpr uint32_t kLockShards = 16;

class LockManager {
 public:
  explicit LockManager(int default_timeout_ms = kLockTimeoutMillis)
      : default_timeout_ms_(default_timeout_ms) {}

  /// Acquires (or upgrades to) `mode` on `key` for `txn`. Blocks up to
  /// `timeout_ms` (default: manager default); a timeout returns kDeadlock —
  /// the caller should abort the transaction (paper: timeouts stand in for
  /// deadlock detection). Re-acquiring an equal or weaker mode is a no-op.
  Status Acquire(TxnId txn, uint64_t key, LockMode mode, int timeout_ms = -1);

  /// Non-blocking acquire: kBusy instead of waiting.
  Status TryAcquire(TxnId txn, uint64_t key, LockMode mode);

  /// Releases one lock (used by callback handling / lock de-caching).
  Status Release(TxnId txn, uint64_t key);

  /// Releases everything `txn` holds (end of transaction; strict 2PL).
  void ReleaseAll(TxnId txn);

  /// Mode `txn` holds on `key`, or nullopt-ish: returns false if none.
  bool Holds(TxnId txn, uint64_t key, LockMode* mode = nullptr) const;

  /// True if some other transaction holds a lock on `key` incompatible
  /// with `mode` (used by the server's callback decision).
  bool Conflicts(TxnId txn, uint64_t key, LockMode mode) const;

  /// All keys held by txn (lock caching: the set to retain at commit).
  std::vector<uint64_t> HeldKeys(TxnId txn) const;

  /// All transactions holding `key` and their modes (callback targets).
  std::vector<std::pair<TxnId, LockMode>> Holders(uint64_t key) const;

  LockStats stats() const;

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
  };
  struct LockEntry {
    std::vector<Holder> holders;
    uint32_t waiters = 0;
  };
  /// One lock-table partition. Padded to a cache line so shard mutexes do
  /// not false-share under contention.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<uint64_t, LockEntry> table;
    /// Keys of *this shard* held per transaction (ReleaseAll/HeldKeys
    /// gather across all shards).
    std::unordered_map<TxnId, std::unordered_set<uint64_t>> by_txn;
    LockStats stats;
  };

  static uint32_t ShardIndex(uint64_t key) {
    // Fibonacci hash: the key namespaces pack structure into high and low
    // bits; multiply-shift mixes both into the shard index.
    return static_cast<uint32_t>((key * 0x9E3779B97F4A7C15ull) >> 59) %
           kLockShards;
  }
  Shard& ShardFor(uint64_t key) const { return shards_[ShardIndex(key)]; }

  Status AcquireInternal(TxnId txn, uint64_t key, LockMode mode,
                         int timeout_ms, bool blocking);
  static bool GrantableLocked(const LockEntry& entry, TxnId txn,
                              LockMode mode);

  mutable Shard shards_[kLockShards];
  /// Serializes timed-out waiters' victim passes across shards; taken only
  /// on the timeout path, never while holding a shard mutex.
  std::mutex detector_mu_;
  int default_timeout_ms_;
};

}  // namespace bess

#endif  // BESS_TXN_LOCK_MANAGER_H_
