#include "txn/lock_manager.h"

#include <chrono>

#include "hooks/hooks.h"
#include "obs/trace.h"

namespace bess {

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kSIX: return "SIX";
    case LockMode::kX: return "X";
  }
  return "?";
}

bool LockCompatible(LockMode held, LockMode want) {
  // Standard hierarchical locking compatibility matrix.
  static constexpr bool kCompat[5][5] = {
      //            IS     IX     S      SIX    X      (want)
      /* IS  */ {true, true, true, true, false},
      /* IX  */ {true, true, false, false, false},
      /* S   */ {true, false, true, false, false},
      /* SIX */ {true, false, false, false, false},
      /* X   */ {false, false, false, false, false},
  };
  return kCompat[static_cast<int>(held)][static_cast<int>(want)];
}

LockMode LockJoin(LockMode a, LockMode b) {
  if (a == b) return a;
  auto is = [](LockMode m, LockMode x) { return m == x; };
  // X absorbs everything.
  if (is(a, LockMode::kX) || is(b, LockMode::kX)) return LockMode::kX;
  // SIX joins.
  if (is(a, LockMode::kSIX) || is(b, LockMode::kSIX)) {
    return LockMode::kSIX;
  }
  if ((is(a, LockMode::kS) && is(b, LockMode::kIX)) ||
      (is(a, LockMode::kIX) && is(b, LockMode::kS))) {
    return LockMode::kSIX;
  }
  if (is(a, LockMode::kS) || is(b, LockMode::kS)) return LockMode::kS;
  if (is(a, LockMode::kIX) || is(b, LockMode::kIX)) return LockMode::kIX;
  return LockMode::kIS;
}

bool LockManager::GrantableLocked(const LockEntry& entry, TxnId txn,
                                  LockMode mode) {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;  // upgrades judged against others only
    if (!LockCompatible(h.mode, mode)) return false;
  }
  return true;
}

Status LockManager::Acquire(TxnId txn, uint64_t key, LockMode mode,
                            int timeout_ms) {
  return AcquireInternal(txn, key, mode,
                         timeout_ms < 0 ? default_timeout_ms_ : timeout_ms,
                         /*blocking=*/true);
}

Status LockManager::TryAcquire(TxnId txn, uint64_t key, LockMode mode) {
  return AcquireInternal(txn, key, mode, 0, /*blocking=*/false);
}

Status LockManager::AcquireInternal(TxnId txn, uint64_t key, LockMode mode,
                                    int timeout_ms, bool blocking) {
  Shard& sh = ShardFor(key);
  std::unique_lock<std::mutex> lk(sh.mu);
  sh.stats.acquires++;
  BESS_COUNT("txn.lock.acquire");

  LockEntry& entry = sh.table[key];
  // Already holding: no-op or upgrade.
  LockMode target = mode;
  Holder* mine = nullptr;
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      mine = &h;
      target = LockJoin(h.mode, mode);
      if (target == h.mode) return Status::OK();  // equal or weaker
      break;
    }
  }

  if (GrantableLocked(entry, txn, target)) {
    if (mine != nullptr) {
      mine->mode = target;
      sh.stats.upgrades++;
      BESS_COUNT("txn.lock.upgrade");
    } else {
      entry.holders.push_back(Holder{txn, target});
      sh.by_txn[txn].insert(key);
      sh.stats.immediate_grants++;
    }
    EventContext ctx;
    ctx.a = key;
    ctx.b = static_cast<uint64_t>(target);
    (void)FireEvent(Event::kLockAcquire, ctx);
    return Status::OK();
  }

  if (!blocking) {
    return Status::Busy("lock " + std::to_string(key) + " held in conflicting mode");
  }

  sh.stats.waits++;
  BESS_COUNT("txn.lock.wait");
  entry.waiters++;
  const uint64_t wait_start_ns = obs::Trace::NowNs();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // Re-checks grantability for this waiter; grants and clears the wait if
  // possible. Shared by the wakeup and the timeout-victim paths.
  auto try_grant_locked = [&]() -> bool {
    LockEntry& e = sh.table[key];
    // Re-resolve our holder entry (vector may have changed).
    Holder* me = nullptr;
    LockMode tgt = mode;
    for (Holder& h : e.holders) {
      if (h.txn == txn) {
        me = &h;
        tgt = LockJoin(h.mode, mode);
        break;
      }
    }
    if (!GrantableLocked(e, txn, tgt)) return false;
    if (me != nullptr) {
      me->mode = tgt;
      sh.stats.upgrades++;
    } else {
      e.holders.push_back(Holder{txn, tgt});
      sh.by_txn[txn].insert(key);
    }
    e.waiters--;
    BESS_HIST("txn.lock.wait.latency", obs::Trace::NowNs() - wait_start_ns);
    EventContext ctx;
    ctx.a = key;
    ctx.b = static_cast<uint64_t>(tgt);
    (void)FireEvent(Event::kLockAcquire, ctx);
    return true;
  };
  for (;;) {
    if (sh.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
      // Timeout stands in for deadlock detection (paper §3). Before
      // declaring this waiter the victim, take the global detector mutex
      // (never held together with a shard mutex by anyone else) and give
      // grantability one last look: a release on another shard's resource
      // chain may have unblocked us exactly as the clock ran out, and a
      // grant beats a spurious abort. The detector mutex serializes victim
      // passes so concurrent timeouts across shards pick victims one at a
      // time against a stable table.
      lk.unlock();
      std::lock_guard<std::mutex> victim_pass(detector_mu_);
      lk.lock();
      if (try_grant_locked()) return Status::OK();
      sh.table[key].waiters--;
      sh.stats.timeouts++;
      BESS_COUNT("txn.lock.timeout");
      BESS_HIST("txn.lock.wait.latency", obs::Trace::NowNs() - wait_start_ns);
      EventContext ctx;
      ctx.a = key;
      (void)FireEvent(Event::kDeadlock, ctx);
      return Status::Deadlock("lock wait timeout on key " +
                              std::to_string(key) + " (" +
                              LockModeName(mode) + ")");
    }
    if (try_grant_locked()) return Status::OK();
  }
}

Status LockManager::Release(TxnId txn, uint64_t key) {
  Shard& sh = ShardFor(key);
  std::unique_lock<std::mutex> lk(sh.mu);
  auto it = sh.table.find(key);
  if (it == sh.table.end()) return Status::NotFound("lock not held");
  auto& holders = it->second.holders;
  for (size_t i = 0; i < holders.size(); ++i) {
    if (holders[i].txn == txn) {
      holders.erase(holders.begin() + static_cast<long>(i));
      sh.by_txn[txn].erase(key);
      EventContext ctx;
      ctx.a = key;
      (void)FireEvent(Event::kLockRelease, ctx);
      if (holders.empty() && it->second.waiters == 0) sh.table.erase(it);
      sh.cv.notify_all();
      return Status::OK();
    }
  }
  return Status::NotFound("lock not held by txn");
}

void LockManager::ReleaseAll(TxnId txn) {
  // A transaction's locks spread over all shards; visit each (end of
  // transaction — cold relative to Acquire).
  for (Shard& sh : shards_) {
    std::unique_lock<std::mutex> lk(sh.mu);
    auto it = sh.by_txn.find(txn);
    if (it == sh.by_txn.end()) continue;
    for (uint64_t key : it->second) {
      auto te = sh.table.find(key);
      if (te == sh.table.end()) continue;
      auto& holders = te->second.holders;
      for (size_t i = 0; i < holders.size(); ++i) {
        if (holders[i].txn == txn) {
          holders.erase(holders.begin() + static_cast<long>(i));
          break;
        }
      }
      if (holders.empty() && te->second.waiters == 0) sh.table.erase(te);
    }
    sh.by_txn.erase(it);
    sh.cv.notify_all();
  }
}

bool LockManager::Holds(TxnId txn, uint64_t key, LockMode* mode) const {
  Shard& sh = ShardFor(key);
  std::unique_lock<std::mutex> lk(sh.mu);
  auto it = sh.table.find(key);
  if (it == sh.table.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn == txn) {
      if (mode != nullptr) *mode = h.mode;
      return true;
    }
  }
  return false;
}

bool LockManager::Conflicts(TxnId txn, uint64_t key, LockMode mode) const {
  Shard& sh = ShardFor(key);
  std::unique_lock<std::mutex> lk(sh.mu);
  auto it = sh.table.find(key);
  if (it == sh.table.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn != txn && !LockCompatible(h.mode, mode)) return true;
  }
  return false;
}

std::vector<uint64_t> LockManager::HeldKeys(TxnId txn) const {
  std::vector<uint64_t> out;
  for (const Shard& sh : shards_) {
    std::unique_lock<std::mutex> lk(sh.mu);
    auto it = sh.by_txn.find(txn);
    if (it == sh.by_txn.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<std::pair<TxnId, LockMode>> LockManager::Holders(
    uint64_t key) const {
  Shard& sh = ShardFor(key);
  std::unique_lock<std::mutex> lk(sh.mu);
  std::vector<std::pair<TxnId, LockMode>> out;
  auto it = sh.table.find(key);
  if (it != sh.table.end()) {
    for (const Holder& h : it->second.holders) out.emplace_back(h.txn, h.mode);
  }
  return out;
}

LockStats LockManager::stats() const {
  LockStats total;
  for (const Shard& sh : shards_) {
    std::unique_lock<std::mutex> lk(sh.mu);
    total.acquires += sh.stats.acquires;
    total.immediate_grants += sh.stats.immediate_grants;
    total.waits += sh.stats.waits;
    total.timeouts += sh.stats.timeouts;
    total.upgrades += sh.stats.upgrades;
  }
  return total;
}

}  // namespace bess
