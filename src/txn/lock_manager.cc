#include "txn/lock_manager.h"

#include <chrono>

#include "hooks/hooks.h"
#include "obs/trace.h"

namespace bess {

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kSIX: return "SIX";
    case LockMode::kX: return "X";
  }
  return "?";
}

bool LockCompatible(LockMode held, LockMode want) {
  // Standard hierarchical locking compatibility matrix.
  static constexpr bool kCompat[5][5] = {
      //            IS     IX     S      SIX    X      (want)
      /* IS  */ {true, true, true, true, false},
      /* IX  */ {true, true, false, false, false},
      /* S   */ {true, false, true, false, false},
      /* SIX */ {true, false, false, false, false},
      /* X   */ {false, false, false, false, false},
  };
  return kCompat[static_cast<int>(held)][static_cast<int>(want)];
}

LockMode LockJoin(LockMode a, LockMode b) {
  if (a == b) return a;
  auto is = [](LockMode m, LockMode x) { return m == x; };
  // X absorbs everything.
  if (is(a, LockMode::kX) || is(b, LockMode::kX)) return LockMode::kX;
  // SIX joins.
  if (is(a, LockMode::kSIX) || is(b, LockMode::kSIX)) {
    return LockMode::kSIX;
  }
  if ((is(a, LockMode::kS) && is(b, LockMode::kIX)) ||
      (is(a, LockMode::kIX) && is(b, LockMode::kS))) {
    return LockMode::kSIX;
  }
  if (is(a, LockMode::kS) || is(b, LockMode::kS)) return LockMode::kS;
  if (is(a, LockMode::kIX) || is(b, LockMode::kIX)) return LockMode::kIX;
  return LockMode::kIS;
}

bool LockManager::GrantableLocked(const LockEntry& entry, TxnId txn,
                                  LockMode mode) {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;  // upgrades judged against others only
    if (!LockCompatible(h.mode, mode)) return false;
  }
  return true;
}

Status LockManager::Acquire(TxnId txn, uint64_t key, LockMode mode,
                            int timeout_ms) {
  return AcquireInternal(txn, key, mode,
                         timeout_ms < 0 ? default_timeout_ms_ : timeout_ms,
                         /*blocking=*/true);
}

Status LockManager::TryAcquire(TxnId txn, uint64_t key, LockMode mode) {
  return AcquireInternal(txn, key, mode, 0, /*blocking=*/false);
}

Status LockManager::AcquireInternal(TxnId txn, uint64_t key, LockMode mode,
                                    int timeout_ms, bool blocking) {
  std::unique_lock<std::mutex> lk(mutex_);
  stats_.acquires++;
  BESS_COUNT("txn.lock.acquire");

  LockEntry& entry = table_[key];
  // Already holding: no-op or upgrade.
  LockMode target = mode;
  Holder* mine = nullptr;
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      mine = &h;
      target = LockJoin(h.mode, mode);
      if (target == h.mode) return Status::OK();  // equal or weaker
      break;
    }
  }

  if (GrantableLocked(entry, txn, target)) {
    if (mine != nullptr) {
      mine->mode = target;
      stats_.upgrades++;
      BESS_COUNT("txn.lock.upgrade");
    } else {
      entry.holders.push_back(Holder{txn, target});
      by_txn_[txn].insert(key);
      stats_.immediate_grants++;
    }
    EventContext ctx;
    ctx.a = key;
    ctx.b = static_cast<uint64_t>(target);
    (void)FireEvent(Event::kLockAcquire, ctx);
    return Status::OK();
  }

  if (!blocking) {
    return Status::Busy("lock " + std::to_string(key) + " held in conflicting mode");
  }

  stats_.waits++;
  BESS_COUNT("txn.lock.wait");
  entry.waiters++;
  const uint64_t wait_start_ns = obs::Trace::NowNs();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
      // Timeout stands in for deadlock detection (paper §3).
      table_[key].waiters--;
      stats_.timeouts++;
      BESS_COUNT("txn.lock.timeout");
      BESS_HIST("txn.lock.wait.latency", obs::Trace::NowNs() - wait_start_ns);
      EventContext ctx;
      ctx.a = key;
      (void)FireEvent(Event::kDeadlock, ctx);
      return Status::Deadlock("lock wait timeout on key " +
                              std::to_string(key) + " (" +
                              LockModeName(mode) + ")");
    }
    LockEntry& e = table_[key];
    // Re-resolve our holder entry (vector may have changed).
    Holder* me = nullptr;
    LockMode tgt = mode;
    for (Holder& h : e.holders) {
      if (h.txn == txn) {
        me = &h;
        tgt = LockJoin(h.mode, mode);
        break;
      }
    }
    if (GrantableLocked(e, txn, tgt)) {
      if (me != nullptr) {
        me->mode = tgt;
        stats_.upgrades++;
      } else {
        e.holders.push_back(Holder{txn, tgt});
        by_txn_[txn].insert(key);
      }
      e.waiters--;
      BESS_HIST("txn.lock.wait.latency", obs::Trace::NowNs() - wait_start_ns);
      EventContext ctx;
      ctx.a = key;
      ctx.b = static_cast<uint64_t>(tgt);
      (void)FireEvent(Event::kLockAcquire, ctx);
      return Status::OK();
    }
  }
}

Status LockManager::Release(TxnId txn, uint64_t key) {
  std::unique_lock<std::mutex> lk(mutex_);
  auto it = table_.find(key);
  if (it == table_.end()) return Status::NotFound("lock not held");
  auto& holders = it->second.holders;
  for (size_t i = 0; i < holders.size(); ++i) {
    if (holders[i].txn == txn) {
      holders.erase(holders.begin() + static_cast<long>(i));
      by_txn_[txn].erase(key);
      EventContext ctx;
      ctx.a = key;
      (void)FireEvent(Event::kLockRelease, ctx);
      if (holders.empty() && it->second.waiters == 0) table_.erase(it);
      cv_.notify_all();
      return Status::OK();
    }
  }
  return Status::NotFound("lock not held by txn");
}

void LockManager::ReleaseAll(TxnId txn) {
  std::unique_lock<std::mutex> lk(mutex_);
  auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) return;
  for (uint64_t key : it->second) {
    auto te = table_.find(key);
    if (te == table_.end()) continue;
    auto& holders = te->second.holders;
    for (size_t i = 0; i < holders.size(); ++i) {
      if (holders[i].txn == txn) {
        holders.erase(holders.begin() + static_cast<long>(i));
        break;
      }
    }
    if (holders.empty() && te->second.waiters == 0) table_.erase(te);
  }
  by_txn_.erase(it);
  cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, uint64_t key, LockMode* mode) const {
  std::unique_lock<std::mutex> lk(mutex_);
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn == txn) {
      if (mode != nullptr) *mode = h.mode;
      return true;
    }
  }
  return false;
}

bool LockManager::Conflicts(TxnId txn, uint64_t key, LockMode mode) const {
  std::unique_lock<std::mutex> lk(mutex_);
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn != txn && !LockCompatible(h.mode, mode)) return true;
  }
  return false;
}

std::vector<uint64_t> LockManager::HeldKeys(TxnId txn) const {
  std::unique_lock<std::mutex> lk(mutex_);
  auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) return {};
  return std::vector<uint64_t>(it->second.begin(), it->second.end());
}

std::vector<std::pair<TxnId, LockMode>> LockManager::Holders(
    uint64_t key) const {
  std::unique_lock<std::mutex> lk(mutex_);
  std::vector<std::pair<TxnId, LockMode>> out;
  auto it = table_.find(key);
  if (it != table_.end()) {
    for (const Holder& h : it->second.holders) out.emplace_back(h.txn, h.mode);
  }
  return out;
}

LockStats LockManager::stats() const {
  std::unique_lock<std::mutex> lk(mutex_);
  return stats_;
}

}  // namespace bess
