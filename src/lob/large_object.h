// Very large objects with byte-range operations (paper §2.1).
//
// "BeSS offers a class interface for very large objects that includes byte
// range operations — such as read, write, insert, delete a number of bytes
// starting at some arbitrary byte position within the object, and append
// bytes at the end. ... The large object is stored in a sequence of
// variable-size segments indexed by a tree structure [3, 4]."
//
// The tree is positional (an EOS-style large-object B+-tree): inner nodes
// hold subtree byte counts, leaves hold descriptors of variable-size disk
// segments. Insert and delete at arbitrary offsets split/trim leaf extents
// and only rewrite the affected segments — an O(bytes moved at the edges)
// operation instead of the rewrite-everything a flat layout would force.
//
// Hooks: each leaf extent passes through the kLargeObjectStore /
// kLargeObjectFetch events on its way to/from disk, so users can register
// compression (or encryption) transforms without touching BeSS internals
// (§2.4). Stored size is tracked separately from logical size.
//
// Growth hints: `size_hint` picks the extent size, trading seek count for
// internal fragmentation, "in anticipation of object growth".
#ifndef BESS_LOB_LARGE_OBJECT_H_
#define BESS_LOB_LARGE_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/storage_area.h"
#include "util/slice.h"
#include "util/status.h"
#include "vm/segment_store.h"

namespace bess {

/// Disk-segment allocation, decoupled from Database so the LOB layer is
/// independently testable.
class ExtentAllocator {
 public:
  virtual ~ExtentAllocator() = default;
  virtual Result<DiskSegment> AllocExtent(uint16_t area, uint32_t pages) = 0;
  virtual Status FreeExtent(uint16_t area, PageId first_page) = 0;
};

/// Address of a large object's tree root.
struct LobRoot {
  uint16_t area = 0;
  PageId page = kInvalidPage;
  bool valid() const { return page != kInvalidPage; }
  uint64_t Pack() const {
    return (static_cast<uint64_t>(area) << 48) | page;
  }
  static LobRoot Unpack(uint64_t v) {
    return LobRoot{static_cast<uint16_t>(v >> 48),
                   static_cast<PageId>(v & 0xFFFFFFFFu)};
  }
};

class LargeObject {
 public:
  struct Options {
    uint16_t db = 1;
    uint16_t area = 0;       ///< area for tree nodes and extents
    uint32_t extent_pages = 8;  ///< target extent size (from the size hint)
  };

  /// Creates an empty large object; returns a handle positioned at it.
  /// `size_hint` (bytes, 0 = unknown) tunes the extent size.
  static Result<LargeObject> Create(SegmentStore* store,
                                    ExtentAllocator* alloc, Options opts,
                                    uint64_t size_hint = 0);

  /// Opens an existing large object by its root address.
  static Result<LargeObject> Open(SegmentStore* store, ExtentAllocator* alloc,
                                  Options opts, LobRoot root);

  LobRoot root() const { return root_; }

  /// Logical size in bytes.
  Result<uint64_t> Size();

  /// Reads `len` bytes at `offset` (short reads at EOF are reflected in the
  /// returned string's size).
  Result<std::string> Read(uint64_t offset, uint64_t len);

  /// Overwrites `data.size()` bytes at `offset` (must lie within the
  /// object; growing happens via Append/Insert).
  Status Write(uint64_t offset, Slice data);

  /// Inserts bytes at an arbitrary position, shifting the tail.
  Status Insert(uint64_t offset, Slice data);

  /// Deletes `len` bytes starting at `offset`, closing the gap.
  Status Delete(uint64_t offset, uint64_t len);

  /// Appends at the end (the common creation pattern, §2.1).
  Status Append(Slice data);

  /// Truncates to `new_size` bytes.
  Status Truncate(uint64_t new_size);

  /// Frees every extent and tree node.
  Status Destroy();

  /// Verifies tree invariants (counts consistent, extents non-empty);
  /// property tests call this after every mutation.
  Status CheckInvariants();

  /// Number of leaf extents (fragmentation metric for benches).
  Result<uint32_t> ExtentCount();

 private:
  struct Extent {
    uint64_t logical = 0;  ///< bytes of object data in this extent
    uint64_t stored = 0;   ///< bytes on disk (differs under compression)
    uint16_t area = 0;
    PageId first_page = kInvalidPage;
    uint32_t pages = 0;
  };

  LargeObject(SegmentStore* store, ExtentAllocator* alloc, Options opts,
              LobRoot root)
      : store_(store), alloc_(alloc), opts_(opts), root_(root) {}

  // The tree is kept as a flat, ordered extent list persisted across one or
  // more chained index pages (a root descriptor + continuation pages). The
  // positional "tree" lookup is a binary search over cumulative sizes held
  // in memory; with variable-size extents this matches the complexity
  // behaviour of the EOS structure while keeping the on-disk format simple.
  Status Load();
  Status Save();

  Result<size_t> FindExtent(uint64_t offset, uint64_t* local_offset);
  Result<std::string> FetchExtent(const Extent& e);
  Status StoreExtent(Extent* e, Slice bytes);
  Status FreeExtentDisk(const Extent& e);
  Result<Extent> NewExtent(Slice bytes);
  uint32_t ExtentBytesTarget() const {
    return opts_.extent_pages * static_cast<uint32_t>(kPageSize);
  }

  SegmentStore* store_;
  ExtentAllocator* alloc_;
  Options opts_;
  LobRoot root_;
  bool loaded_ = false;
  std::vector<Extent> extents_;
  std::vector<PageId> index_pages_;  // chained index pages incl. root
};

}  // namespace bess

#endif  // BESS_LOB_LARGE_OBJECT_H_
