#include "lob/large_object.h"

#include <algorithm>
#include <cstring>

#include "hooks/hooks.h"
#include "util/slice.h"

namespace bess {
namespace {

constexpr uint32_t kLobMagic = 0xBE55B10Bu;
constexpr size_t kIndexHeader = 16;  // magic, count, next(area|page)
constexpr size_t kEntryBytes = 26;   // logical u64, stored u64, area u16,
                                     // pages u32, first_page u32
constexpr size_t kEntriesPerPage = (kPageSize - kIndexHeader) / kEntryBytes;

uint32_t PagesFor(uint64_t bytes) {
  return static_cast<uint32_t>((bytes + kPageSize - 1) / kPageSize);
}

}  // namespace

Result<LargeObject> LargeObject::Create(SegmentStore* store,
                                        ExtentAllocator* alloc, Options opts,
                                        uint64_t size_hint) {
  if (size_hint > 0) {
    // Growth hint: size extents so the object fits in ~16 of them, within
    // [1, 64] pages each.
    uint32_t pages = PagesFor(size_hint / 16);
    opts.extent_pages = std::clamp<uint32_t>(pages, 1, 64);
  }
  BESS_ASSIGN_OR_RETURN(DiskSegment seg, alloc->AllocExtent(opts.area, 1));
  LargeObject lob(store, alloc, opts,
                  LobRoot{opts.area, seg.first_page});
  lob.loaded_ = true;
  lob.index_pages_.push_back(seg.first_page);
  BESS_RETURN_IF_ERROR(lob.Save());
  return lob;
}

Result<LargeObject> LargeObject::Open(SegmentStore* store,
                                      ExtentAllocator* alloc, Options opts,
                                      LobRoot root) {
  if (!root.valid()) return Status::InvalidArgument("invalid LOB root");
  LargeObject lob(store, alloc, opts, root);
  BESS_RETURN_IF_ERROR(lob.Load());
  return lob;
}

Status LargeObject::Load() {
  extents_.clear();
  index_pages_.clear();
  uint16_t area = root_.area;
  PageId page = root_.page;
  std::string buf(kPageSize, '\0');
  while (page != kInvalidPage) {
    BESS_RETURN_IF_ERROR(store_->FetchPages(opts_.db, area, page, 1,
                                            buf.data()));
    Decoder dec(buf);
    if (dec.GetFixed32() != kLobMagic) {
      return Status::Corruption("bad large-object index page");
    }
    const uint32_t count = dec.GetFixed32();
    const uint64_t next = dec.GetFixed64();
    if (count > kEntriesPerPage) {
      return Status::Corruption("overfull large-object index page");
    }
    index_pages_.push_back(page);
    for (uint32_t i = 0; i < count; ++i) {
      Extent e;
      e.logical = dec.GetFixed64();
      e.stored = dec.GetFixed64();
      e.area = dec.GetFixed16();
      e.pages = dec.GetFixed32();
      e.first_page = dec.GetFixed32();
      extents_.push_back(e);
    }
    if (!dec.ok()) return Status::Corruption("truncated LOB index");
    area = static_cast<uint16_t>(next >> 48);
    page = next == 0 ? kInvalidPage : static_cast<PageId>(next & 0xFFFFFFFFu);
  }
  loaded_ = true;
  return Status::OK();
}

Status LargeObject::Save() {
  const size_t pages_needed =
      std::max<size_t>(1, (extents_.size() + kEntriesPerPage - 1) /
                              kEntriesPerPage);
  // Grow / shrink the index chain.
  while (index_pages_.size() < pages_needed) {
    BESS_ASSIGN_OR_RETURN(DiskSegment seg,
                          alloc_->AllocExtent(opts_.area, 1));
    index_pages_.push_back(seg.first_page);
  }
  while (index_pages_.size() > pages_needed) {
    BESS_RETURN_IF_ERROR(
        alloc_->FreeExtent(opts_.area, index_pages_.back()));
    index_pages_.pop_back();
  }
  size_t next_entry = 0;
  for (size_t p = 0; p < index_pages_.size(); ++p) {
    const size_t here = std::min(kEntriesPerPage,
                                 extents_.size() - next_entry);
    std::string buf;
    buf.reserve(kPageSize);
    PutFixed32(&buf, kLobMagic);
    PutFixed32(&buf, static_cast<uint32_t>(here));
    const uint64_t next =
        p + 1 < index_pages_.size()
            ? (static_cast<uint64_t>(opts_.area) << 48) | index_pages_[p + 1]
            : 0;
    PutFixed64(&buf, next);
    for (size_t i = 0; i < here; ++i) {
      const Extent& e = extents_[next_entry + i];
      PutFixed64(&buf, e.logical);
      PutFixed64(&buf, e.stored);
      PutFixed16(&buf, e.area);
      PutFixed32(&buf, e.pages);
      PutFixed32(&buf, e.first_page);
    }
    buf.resize(kPageSize, '\0');
    BESS_RETURN_IF_ERROR(store_->WritePages(opts_.db, opts_.area,
                                            index_pages_[p], 1, buf.data()));
    next_entry += here;
  }
  return Status::OK();
}

Result<uint64_t> LargeObject::Size() {
  if (!loaded_) BESS_RETURN_IF_ERROR(Load());
  uint64_t total = 0;
  for (const Extent& e : extents_) total += e.logical;
  return total;
}

Result<size_t> LargeObject::FindExtent(uint64_t offset,
                                       uint64_t* local_offset) {
  uint64_t base = 0;
  for (size_t i = 0; i < extents_.size(); ++i) {
    if (offset < base + extents_[i].logical) {
      *local_offset = offset - base;
      return i;
    }
    base += extents_[i].logical;
  }
  return Status::InvalidArgument("offset " + std::to_string(offset) +
                                 " beyond object end");
}

Result<std::string> LargeObject::FetchExtent(const Extent& e) {
  std::string raw(static_cast<size_t>(e.pages) * kPageSize, '\0');
  BESS_RETURN_IF_ERROR(store_->FetchPages(opts_.db, e.area, e.first_page,
                                          e.pages, raw.data()));
  raw.resize(e.stored);
  EventContext ctx;
  ctx.a = e.first_page;
  ctx.buffer = &raw;
  BESS_RETURN_IF_ERROR(FireEvent(Event::kLargeObjectFetch, ctx));
  if (raw.size() != e.logical) {
    return Status::Corruption("large-object extent size mismatch after fetch "
                              "hooks (" + std::to_string(raw.size()) + " vs " +
                              std::to_string(e.logical) + ")");
  }
  return raw;
}

Status LargeObject::StoreExtent(Extent* e, Slice bytes) {
  std::string buf = bytes.ToString();
  const uint64_t logical = buf.size();
  EventContext ctx;
  ctx.buffer = &buf;
  BESS_RETURN_IF_ERROR(FireEvent(Event::kLargeObjectStore, ctx));
  const uint64_t stored = buf.size();
  const uint32_t pages_needed = std::max<uint32_t>(1, PagesFor(stored));
  if (e->first_page == kInvalidPage || pages_needed > e->pages) {
    if (e->first_page != kInvalidPage) {
      BESS_RETURN_IF_ERROR(alloc_->FreeExtent(e->area, e->first_page));
    }
    BESS_ASSIGN_OR_RETURN(DiskSegment seg,
                          alloc_->AllocExtent(opts_.area, pages_needed));
    e->area = opts_.area;
    e->first_page = seg.first_page;
    // Track the written span, not the (possibly rounded-up) allocation:
    // fetches must only read pages this extent has actually written.
    e->pages = pages_needed;
  }
  buf.resize(static_cast<size_t>(pages_needed) * kPageSize, '\0');
  BESS_RETURN_IF_ERROR(store_->WritePages(opts_.db, e->area, e->first_page,
                                          pages_needed, buf.data()));
  e->logical = logical;
  e->stored = stored;
  return Status::OK();
}

Status LargeObject::FreeExtentDisk(const Extent& e) {
  if (e.first_page == kInvalidPage) return Status::OK();
  return alloc_->FreeExtent(e.area, e.first_page);
}

Result<LargeObject::Extent> LargeObject::NewExtent(Slice bytes) {
  Extent e;
  BESS_RETURN_IF_ERROR(StoreExtent(&e, bytes));
  return e;
}

Result<std::string> LargeObject::Read(uint64_t offset, uint64_t len) {
  if (!loaded_) BESS_RETURN_IF_ERROR(Load());
  BESS_ASSIGN_OR_RETURN(uint64_t size, Size());
  if (offset >= size) return std::string();
  len = std::min(len, size - offset);
  std::string out;
  out.reserve(len);
  uint64_t local = 0;
  BESS_ASSIGN_OR_RETURN(size_t idx, FindExtent(offset, &local));
  while (out.size() < len && idx < extents_.size()) {
    BESS_ASSIGN_OR_RETURN(std::string bytes, FetchExtent(extents_[idx]));
    const uint64_t take =
        std::min<uint64_t>(len - out.size(), bytes.size() - local);
    out.append(bytes.data() + local, take);
    local = 0;
    ++idx;
  }
  return out;
}

Status LargeObject::Write(uint64_t offset, Slice data) {
  if (!loaded_) BESS_RETURN_IF_ERROR(Load());
  BESS_ASSIGN_OR_RETURN(uint64_t size, Size());
  if (offset + data.size() > size) {
    return Status::InvalidArgument("write beyond object end (use Append)");
  }
  if (data.empty()) return Status::OK();
  uint64_t local = 0;
  BESS_ASSIGN_OR_RETURN(size_t idx, FindExtent(offset, &local));
  size_t written = 0;
  while (written < data.size()) {
    Extent& e = extents_[idx];
    BESS_ASSIGN_OR_RETURN(std::string bytes, FetchExtent(e));
    const size_t take = std::min<size_t>(data.size() - written,
                                         bytes.size() - local);
    memcpy(bytes.data() + local, data.data() + written, take);
    BESS_RETURN_IF_ERROR(StoreExtent(&e, bytes));
    written += take;
    local = 0;
    ++idx;
  }
  return Save();
}

Status LargeObject::Append(Slice data) {
  if (!loaded_) BESS_RETURN_IF_ERROR(Load());
  if (data.empty()) return Status::OK();
  size_t consumed = 0;
  // Top up the final extent first so appends produce full extents.
  if (!extents_.empty() &&
      extents_.back().logical < ExtentBytesTarget()) {
    Extent& last = extents_.back();
    BESS_ASSIGN_OR_RETURN(std::string bytes, FetchExtent(last));
    const size_t room = ExtentBytesTarget() - bytes.size();
    const size_t take = std::min(room, data.size());
    bytes.append(data.data(), take);
    BESS_RETURN_IF_ERROR(StoreExtent(&last, bytes));
    consumed = take;
  }
  while (consumed < data.size()) {
    const size_t take =
        std::min<size_t>(ExtentBytesTarget(), data.size() - consumed);
    BESS_ASSIGN_OR_RETURN(Extent e,
                          NewExtent(Slice(data.data() + consumed, take)));
    extents_.push_back(e);
    consumed += take;
  }
  return Save();
}

Status LargeObject::Insert(uint64_t offset, Slice data) {
  if (!loaded_) BESS_RETURN_IF_ERROR(Load());
  BESS_ASSIGN_OR_RETURN(uint64_t size, Size());
  if (offset > size) return Status::InvalidArgument("insert beyond end");
  if (offset == size) return Append(data);
  if (data.empty()) return Status::OK();

  uint64_t local = 0;
  BESS_ASSIGN_OR_RETURN(size_t idx, FindExtent(offset, &local));
  Extent old = extents_[idx];
  BESS_ASSIGN_OR_RETURN(std::string bytes, FetchExtent(old));
  // New content of this position: prefix + inserted + suffix, re-chunked.
  std::string merged;
  merged.reserve(bytes.size() + data.size());
  merged.append(bytes.data(), local);
  merged.append(data.data(), data.size());
  merged.append(bytes.data() + local, bytes.size() - local);

  std::vector<Extent> pieces;
  size_t pos = 0;
  while (pos < merged.size()) {
    const size_t take =
        std::min<size_t>(ExtentBytesTarget(), merged.size() - pos);
    BESS_ASSIGN_OR_RETURN(Extent e,
                          NewExtent(Slice(merged.data() + pos, take)));
    pieces.push_back(e);
    pos += take;
  }
  BESS_RETURN_IF_ERROR(FreeExtentDisk(old));
  extents_.erase(extents_.begin() + static_cast<long>(idx));
  extents_.insert(extents_.begin() + static_cast<long>(idx), pieces.begin(),
                  pieces.end());
  return Save();
}

Status LargeObject::Delete(uint64_t offset, uint64_t len) {
  if (!loaded_) BESS_RETURN_IF_ERROR(Load());
  BESS_ASSIGN_OR_RETURN(uint64_t size, Size());
  if (offset >= size || len == 0) return Status::OK();
  len = std::min(len, size - offset);

  uint64_t local = 0;
  BESS_ASSIGN_OR_RETURN(size_t idx, FindExtent(offset, &local));
  uint64_t remaining = len;
  while (remaining > 0 && idx < extents_.size()) {
    Extent& e = extents_[idx];
    if (local == 0 && remaining >= e.logical) {
      // Whole extent disappears — no data movement at all.
      remaining -= e.logical;
      BESS_RETURN_IF_ERROR(FreeExtentDisk(e));
      extents_.erase(extents_.begin() + static_cast<long>(idx));
      continue;
    }
    // Partial: trim within this extent.
    BESS_ASSIGN_OR_RETURN(std::string bytes, FetchExtent(e));
    const uint64_t cut = std::min<uint64_t>(remaining, bytes.size() - local);
    bytes.erase(local, cut);
    remaining -= cut;
    if (bytes.empty()) {
      BESS_RETURN_IF_ERROR(FreeExtentDisk(e));
      extents_.erase(extents_.begin() + static_cast<long>(idx));
    } else {
      BESS_RETURN_IF_ERROR(StoreExtent(&e, bytes));
      ++idx;
    }
    local = 0;
  }
  return Save();
}

Status LargeObject::Truncate(uint64_t new_size) {
  BESS_ASSIGN_OR_RETURN(uint64_t size, Size());
  if (new_size >= size) return Status::OK();
  return Delete(new_size, size - new_size);
}

Status LargeObject::Destroy() {
  if (!loaded_) BESS_RETURN_IF_ERROR(Load());
  for (const Extent& e : extents_) {
    BESS_RETURN_IF_ERROR(FreeExtentDisk(e));
  }
  extents_.clear();
  for (PageId p : index_pages_) {
    BESS_RETURN_IF_ERROR(alloc_->FreeExtent(opts_.area, p));
  }
  index_pages_.clear();
  loaded_ = false;
  root_ = LobRoot{};
  return Status::OK();
}

Status LargeObject::CheckInvariants() {
  if (!loaded_) BESS_RETURN_IF_ERROR(Load());
  for (const Extent& e : extents_) {
    if (e.logical == 0) return Status::Corruption("empty extent in LOB");
    if (e.first_page == kInvalidPage || e.pages == 0) {
      return Status::Corruption("extent without disk segment");
    }
    if (e.stored > static_cast<uint64_t>(e.pages) * kPageSize) {
      return Status::Corruption("extent stored bytes exceed its pages");
    }
  }
  const size_t pages_needed =
      std::max<size_t>(1, (extents_.size() + kEntriesPerPage - 1) /
                              kEntriesPerPage);
  if (index_pages_.size() != pages_needed) {
    return Status::Corruption("LOB index chain length mismatch");
  }
  // The persisted form must reload to the same state.
  LargeObject copy(store_, alloc_, opts_, root_);
  BESS_RETURN_IF_ERROR(copy.Load());
  if (copy.extents_.size() != extents_.size()) {
    return Status::Corruption("LOB reload extent count mismatch");
  }
  for (size_t i = 0; i < extents_.size(); ++i) {
    if (copy.extents_[i].logical != extents_[i].logical ||
        copy.extents_[i].first_page != extents_[i].first_page) {
      return Status::Corruption("LOB reload extent mismatch");
    }
  }
  return Status::OK();
}

Result<uint32_t> LargeObject::ExtentCount() {
  if (!loaded_) BESS_RETURN_IF_ERROR(Load());
  return static_cast<uint32_t>(extents_.size());
}

}  // namespace bess
