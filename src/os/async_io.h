// Batched asynchronous file I/O: the engine room behind the push-based page
// pipeline (DESIGN.md §13).
//
// An AsyncFileEngine accepts a vector of read/write requests against raw
// file descriptors and completes them out of band. Two implementations are
// selected at runtime:
//
//   - UringFileEngine: raw io_uring syscalls (io_uring_setup / io_uring_enter
//     — no liburing dependency). One SQ writer at a time under a mutex; a
//     dedicated reaper thread blocks in IORING_ENTER_GETEVENTS and drains the
//     CQ. Short CQEs (a read or write that moved fewer bytes than asked) are
//     fixed up synchronously with pread/pwrite of the remainder, so callers
//     always see full-length completions or an error — never a silent prefix.
//   - ThreadPoolFileEngine: a worker pool issuing the same pread/pwrite
//     loops. This is the universal fallback (and the deterministic backend
//     for sanitizer runs); semantics are identical by construction, which is
//     what the parity tests in async_io_test.cc pin down.
//
// Both engines are driven through the fault-injection layer via three
// points, applied at completion time so the schedules see the same operation
// order regardless of backend:
//
//   "aio.read" / "aio.write"  EvaluateIo per request. kFail => the request
//       completes with that error. kShortWrite/kTornPage (bytes_allowed < n)
//       => the engine behaves as if the kernel returned a short count: it
//       loops to complete (counted in stats().short_fixups) and the caller
//       sees a full-length success. kNoSpace fails the request outright.
//   "aio.reorder"  plain Check per completion. A fired schedule defers that
//       completion until after the next one is delivered (or until the queue
//       drains), simulating out-of-order CQEs deterministically.
//
// Completion delivery is pull-based: callers Reap() into a small array.
// Every accepted request produces exactly one completion, including after
// Shutdown() (which drains). user_data is the caller's correlation token and
// is returned verbatim.
#ifndef BESS_OS_ASYNC_IO_H_
#define BESS_OS_ASYNC_IO_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "os/fault_injection.h"
#include "util/status.h"

namespace bess {
namespace aio {

enum class Op : uint8_t { kRead, kWrite };

struct AioRequest {
  Op op = Op::kRead;
  int fd = -1;
  uint64_t offset = 0;
  void* buf = nullptr;  ///< caller-owned; must stay valid until completion
  size_t len = 0;
  uint64_t user_data = 0;  ///< returned verbatim in the completion
};

struct AioCompletion {
  uint64_t user_data = 0;
  Status status;
  size_t bytes = 0;  ///< bytes moved (== len on success)
};

/// Classifies an armed "aio.read"/"aio.write" EvaluateIo outcome for a
/// request of `len` bytes. Returns true when the request must fail outright
/// with *error. Otherwise *first_cap is the byte count the (emulated) kernel
/// moves first — < len means an injected short completion the backend must
/// loop whole (kShortWrite/kTornPage schedules; kNoSpace always fails).
bool AioFaultFails(const fault::FaultOutcome& out, size_t len, Status* error,
                   size_t* first_cap);

struct AioStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t errors = 0;
  uint64_t short_fixups = 0;  ///< short kernel/injected counts looped whole
  uint64_t reorders = 0;      ///< completions deferred by "aio.reorder"
  uint64_t max_inflight = 0;
  uint64_t io_busy_ns = 0;  ///< wall time spent inside syscalls (pool) or
                            ///< with a non-empty ring (uring) — the overlap
                            ///< numerator for bench_scan
  uint64_t read_runs = 0;   ///< device read ops after request coalescing
                            ///< (pool backend merges queued reads for
                            ///< consecutive keys into one FetchRun; 0 when
                            ///< the backend does not coalesce)
  uint64_t write_runs = 0;  ///< device write ops after request coalescing
                            ///< (pool backend merges queued writes for
                            ///< consecutive keys — bgwriter batches sort by
                            ///< key to line these up; 0 = no coalescing)
};

/// Completion mailbox shared by both engines. Applies the "aio.reorder"
/// schedule on delivery; Reap flushes deferred completions on timeout or
/// when the engine reports the queue drained, so a reordered completion can
/// be late but never lost.
class CompletionMailbox {
 public:
  void Deliver(AioCompletion c, bool last_inflight);
  uint32_t Reap(AioCompletion* out, uint32_t max, uint32_t timeout_ms);
  uint64_t reorders() const {
    return reorders_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<AioCompletion> ready_;
  std::deque<AioCompletion> deferred_;
  std::atomic<uint64_t> reorders_{0};
};

class AsyncFileEngine {
 public:
  struct Options {
    /// "auto" picks uring when the kernel supports it, else pool.
    std::string backend = "auto";
    uint32_t queue_depth = 16;  ///< max requests in flight
    uint32_t workers = 4;       ///< pool backend only
  };

  virtual ~AsyncFileEngine() = default;

  /// Queues `n` requests. All-or-nothing: on a non-OK return nothing was
  /// queued and no completions will arrive for this call. May block briefly
  /// when the queue is at depth.
  virtual Status Submit(const AioRequest* reqs, uint32_t n) = 0;

  /// Pops up to `max` completions, waiting at most `timeout_ms` for the
  /// first (0 = poll). Returns the number written to `out`.
  virtual uint32_t Reap(AioCompletion* out, uint32_t max,
                        uint32_t timeout_ms) = 0;

  /// Stops accepting work and joins engine threads. Completions already
  /// produced remain reapable. Idempotent; the destructor calls it.
  virtual void Shutdown() = 0;

  virtual const char* backend() const = 0;
  virtual AioStats stats() const = 0;

  /// True when this kernel accepts io_uring_setup (probed once per process).
  static bool UringSupported();

  /// Builds the requested backend; "auto"/"uring" fall back to the pool
  /// when io_uring is unavailable, so this only fails on bad arguments.
  static Result<std::unique_ptr<AsyncFileEngine>> Create(
      const Options& options);
};

/// Resolves page-cache keys to raw (fd, offset) runs and applies the storage
/// layer's integrity envelope around raw transfers. Implemented by
/// AreaSegmentStore over StorageArea files; consumed by FileEnginePageIo so
/// the uring path keeps CRC/LSN trailer verification and quarantine behavior
/// identical to the synchronous ReadPages/WritePages path.
class RawPageSource {
 public:
  virtual ~RawPageSource() = default;

  /// Maps `count` pages starting at `key` to one contiguous byte range.
  /// Returns false when the run is not raw-reachable (unknown area, crosses
  /// an extent boundary, quarantined page) — the caller must fall back to
  /// the synchronous path.
  virtual bool RawRun(uint64_t key, uint32_t count, int* fd,
                      uint64_t* offset) = 0;
  /// Verifies trailers after a raw read landed in `buf` (reread/repair/
  /// quarantine exactly like the synchronous read path).
  virtual Status FinishRead(uint64_t key, uint32_t count, void* buf) = 0;
  /// Stamps the out-of-band CRC/LSN trailers after a raw write of `buf`
  /// completed (trailers live in extent meta pages and are flushed by Sync,
  /// so post-completion stamping matches the synchronous write path).
  virtual Status FinishWrite(uint64_t key, uint32_t count, const void* buf,
                             uint64_t lsn) = 0;
};

}  // namespace aio
}  // namespace bess

#endif  // BESS_OS_ASYNC_IO_H_
