#include "os/fault_dispatcher.h"

#include <signal.h>
#include <string.h>

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/metrics.h"

#if defined(__x86_64__) && defined(__linux__)
#include <ucontext.h>
#define BESS_HAVE_X86_ERR 1
#endif

namespace bess {
namespace {

struct sigaction g_prev_segv;
struct sigaction g_prev_bus;
std::mutex g_register_mutex;

void RestoreAndReraise(int signo, const struct sigaction* prev) {
  // Not one of ours: fall back to the previous disposition so real bugs
  // produce a normal crash (and gtest death tests keep working).
  sigaction(signo, prev, nullptr);
  raise(signo);
}

}  // namespace

FaultDispatcher& FaultDispatcher::Instance() {
  static FaultDispatcher* instance = new FaultDispatcher();
  return *instance;
}

void FaultDispatcher::Install() {
  bool expected = false;
  if (!installed_.compare_exchange_strong(expected, true)) return;

  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = reinterpret_cast<void (*)(int, siginfo_t*, void*)>(
      &FaultDispatcher::OnSignal);
  sa.sa_flags = SA_SIGINFO | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGSEGV, &sa, &g_prev_segv);
  sigaction(SIGBUS, &sa, &g_prev_bus);
}

int FaultDispatcher::RegisterRange(void* base, size_t len,
                                   FaultRangeOwner* owner) {
  Install();
  std::lock_guard<std::mutex> guard(g_register_mutex);
  for (int i = 0; i < kMaxRanges; ++i) {
    if (slots_[i].owner.load(std::memory_order_acquire) == nullptr) {
      slots_[i].len.store(len, std::memory_order_relaxed);
      slots_[i].base.store(reinterpret_cast<uintptr_t>(base),
                           std::memory_order_relaxed);
      // owner last: signal handler treats non-null owner as "slot live".
      slots_[i].owner.store(owner, std::memory_order_release);
      return i;
    }
  }
  return -1;
}

void FaultDispatcher::UnregisterRange(int id) {
  if (id < 0 || id >= kMaxRanges) return;
  std::lock_guard<std::mutex> guard(g_register_mutex);
  slots_[id].owner.store(nullptr, std::memory_order_release);
  slots_[id].base.store(0, std::memory_order_relaxed);
  slots_[id].len.store(0, std::memory_order_relaxed);
}

FaultRangeOwner* FaultDispatcher::FindOwner(const void* addr) {
  const uintptr_t a = reinterpret_cast<uintptr_t>(addr);
  for (int i = 0; i < kMaxRanges; ++i) {
    FaultRangeOwner* owner = slots_[i].owner.load(std::memory_order_acquire);
    if (owner == nullptr) continue;
    const uintptr_t base = slots_[i].base.load(std::memory_order_relaxed);
    const size_t len = slots_[i].len.load(std::memory_order_relaxed);
    if (a >= base && a < base + len) return owner;
  }
  return nullptr;
}

bool FaultDispatcher::Dispatch(void* addr, bool is_write) {
  FaultRangeOwner* owner = FindOwner(addr);
  if (owner == nullptr) return false;
  fault_count_.fetch_add(1, std::memory_order_relaxed);
  BESS_COUNT("vm.fault.dispatch");
  return owner->OnFault(addr, is_write);
}

void FaultDispatcher::OnSignal(int signo, void* siginfo, void* ucontext) {
  auto* info = static_cast<siginfo_t*>(siginfo);
  void* addr = info->si_addr;

  bool is_write = false;
#ifdef BESS_HAVE_X86_ERR
  if (ucontext != nullptr) {
    auto* uc = static_cast<ucontext_t*>(ucontext);
    // Page-fault error code bit 1: set when the access was a write.
    is_write = (uc->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
  }
#else
  (void)ucontext;
#endif

  if (Instance().Dispatch(addr, is_write)) return;

  RestoreAndReraise(signo, signo == SIGSEGV ? &g_prev_segv : &g_prev_bus);
}

}  // namespace bess
