// Process-wide SIGSEGV/SIGBUS dispatcher.
//
// BeSS "traps primitive events as they occur" (§2.4): touching a reserved
// (PROT_NONE) range raises a segment fault that triggers fetch-and-swizzle,
// and writing a read-protected page raises a protection fault that drives
// automatic update detection and lock acquisition (§2.3). This dispatcher
// owns the process signal handler and routes faults to the owner of the
// address range they landed in.
//
// Owners register coarse ranges (one arena per SegmentMapper / PVMA region),
// so the registry is tiny and scanned lock-free from signal context. A fault
// outside every registered range is re-raised with the previous disposition
// restored, so genuine wild-pointer crashes still crash.
#ifndef BESS_OS_FAULT_DISPATCHER_H_
#define BESS_OS_FAULT_DISPATCHER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace bess {

/// Implemented by subsystems that own reserved address ranges and resolve
/// faults inside them (SegmentMapper, PvmaRegion).
class FaultRangeOwner {
 public:
  virtual ~FaultRangeOwner() = default;

  /// Resolves a fault at `addr`. `is_write` is a hardware hint (true when
  /// the faulting access was a store, where the platform exposes that).
  /// Returns true if the fault was resolved and the instruction can resume.
  virtual bool OnFault(void* addr, bool is_write) = 0;
};

/// Singleton registry of fault-handled ranges. Thread-safe; reads from
/// signal context are lock-free.
class FaultDispatcher {
 public:
  static constexpr int kMaxRanges = 128;

  static FaultDispatcher& Instance();

  /// Installs the SIGSEGV/SIGBUS handlers (idempotent). Called automatically
  /// by RegisterRange.
  void Install();

  /// Registers [base, base+len) as owned. Returns a slot id, or -1 if the
  /// registry is full.
  int RegisterRange(void* base, size_t len, FaultRangeOwner* owner);

  /// Removes a registration. The owner must guarantee no fault can be
  /// in flight inside the range (i.e. the range is already inaccessible to
  /// application code).
  void UnregisterRange(int id);

  /// Total faults routed to owners since process start (for benches).
  uint64_t fault_count() const {
    return fault_count_.load(std::memory_order_relaxed);
  }

  /// Looks up the owner of `addr`; nullptr if unowned. Also used by the
  /// unswizzler to map a virtual address back to its segment.
  FaultRangeOwner* FindOwner(const void* addr);

 private:
  FaultDispatcher() = default;

  static void OnSignal(int signo, void* siginfo, void* ucontext);
  bool Dispatch(void* addr, bool is_write);

  struct RangeSlot {
    std::atomic<uintptr_t> base{0};
    std::atomic<size_t> len{0};
    std::atomic<FaultRangeOwner*> owner{nullptr};
  };

  RangeSlot slots_[kMaxRanges];
  std::atomic<bool> installed_{false};
  std::atomic<uint64_t> fault_count_{0};
};

}  // namespace bess

#endif  // BESS_OS_FAULT_DISPATCHER_H_
