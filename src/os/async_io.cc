#include "os/async_io.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "os/fault_injection.h"

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#if defined(__NR_io_uring_setup)
#include <linux/io_uring.h>
#define BESS_HAVE_URING 1
#endif
#endif

#ifndef BESS_HAVE_URING
#define BESS_HAVE_URING 0
#endif

namespace bess {
namespace aio {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// pread/pwrite the request whole, capping the first syscall at `first_cap`
/// to surface injected short counts to the loop. A cap of 0 is skipped (a
/// zero-byte syscall makes no progress).
Status FullTransfer(const AioRequest& req, size_t first_cap) {
  char* p = static_cast<char*>(req.buf);
  uint64_t off = req.offset;
  size_t left = req.len;
  bool first = true;
  while (left > 0) {
    size_t want = left;
    if (first && first_cap > 0 && first_cap < want) want = first_cap;
    first = false;
    ssize_t r = req.op == Op::kRead
                    ? pread(req.fd, p, want, static_cast<off_t>(off))
                    : pwrite(req.fd, p, want, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string(req.op == Op::kRead ? "pread: "
                                                             : "pwrite: ") +
                             strerror(errno));
    }
    if (r == 0) {
      // A write of 0 never terminates and a read of 0 is EOF mid-page:
      // either way the transfer cannot complete — fail loudly rather than
      // hand back a truncated page.
      return Status::IOError("short transfer: no progress at offset " +
                             std::to_string(off));
    }
    p += r;
    off += static_cast<uint64_t>(r);
    left -= static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

bool AioFaultFails(const fault::FaultOutcome& out, size_t len, Status* error,
                   size_t* first_cap) {
  *first_cap = len;
  if (out.bytes_allowed < len && !out.status.IsNoSpace()) {
    // kShortWrite/kTornPage at an aio point = short completion, recoverable.
    *first_cap = out.bytes_allowed;
    return false;
  }
  if (!out.status.ok()) {
    *error = out.status;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// CompletionMailbox

void CompletionMailbox::Deliver(AioCompletion c, bool last_inflight) {
  std::lock_guard<std::mutex> lk(mu_);
  // "aio.reorder": hold this completion back until a later one passes it.
  // The engine's final in-flight completion is never deferred, and Reap
  // flushes stragglers on timeout — reordering can delay, never lose.
  if (fault::Armed() && !last_inflight) {
    Status s = fault::FaultRegistry::Instance().Evaluate("aio.reorder", "");
    if (!s.ok()) {
      deferred_.push_back(c);
      reorders_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  ready_.push_back(c);
  while (!deferred_.empty()) {
    ready_.push_back(deferred_.front());
    deferred_.pop_front();
  }
  cv_.notify_all();
}

uint32_t CompletionMailbox::Reap(AioCompletion* out, uint32_t max,
                                 uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  if (ready_.empty() && timeout_ms > 0) {
    cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                 [&] { return !ready_.empty(); });
  }
  if (ready_.empty() && !deferred_.empty()) {
    // Nothing arrived to pass the deferred completions: deliver them now.
    while (!deferred_.empty()) {
      ready_.push_back(deferred_.front());
      deferred_.pop_front();
    }
  }
  uint32_t n = 0;
  while (n < max && !ready_.empty()) {
    out[n++] = ready_.front();
    ready_.pop_front();
  }
  return n;
}

// ---------------------------------------------------------------------------
// Shared engine state (stats + mailbox + inflight accounting)

namespace {

class EngineBase : public AsyncFileEngine {
 public:
  uint32_t Reap(AioCompletion* out, uint32_t max, uint32_t timeout_ms) final {
    return mailbox_.Reap(out, max, timeout_ms);
  }

  AioStats stats() const final {
    AioStats s;
    s.reads = reads_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.short_fixups = short_fixups_.load(std::memory_order_relaxed);
    s.reorders = mailbox_.reorders();
    s.max_inflight = max_inflight_.load(std::memory_order_relaxed);
    s.io_busy_ns = io_busy_ns_.load(std::memory_order_relaxed);
    return s;
  }

 protected:
  void NoteSubmitted(uint32_t n) {
    uint64_t now = inflight_.fetch_add(n, std::memory_order_acq_rel) + n;
    uint64_t seen = max_inflight_.load(std::memory_order_relaxed);
    while (now > seen &&
           !max_inflight_.compare_exchange_weak(seen, now,
                                                std::memory_order_relaxed)) {
    }
  }

  /// Runs the per-request fault schedule, finishes the transfer (with
  /// short-count fixup) or fails it, and delivers the completion. `moved`
  /// is what the backend already transferred (pool: 0, uring: cqe->res).
  void FinishRequest(const AioRequest& req, Status backend_status,
                     size_t moved) {
    uint64_t t0 = NowNs();
    AioCompletion c;
    c.user_data = req.user_data;
    if (req.op == Op::kRead) {
      reads_.fetch_add(1, std::memory_order_relaxed);
    } else {
      writes_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!backend_status.ok()) {
      c.status = backend_status;
    } else {
      fault::FaultOutcome out;
      if (fault::Armed()) {
        out = fault::FaultRegistry::Instance().EvaluateIo(
            req.op == Op::kRead ? "aio.read" : "aio.write", "", req.len);
        if (out.crash) fault::FaultRegistry::CrashNow();
      }
      Status err;
      size_t first_cap = req.len;
      if (AioFaultFails(out, req.len, &err, &first_cap)) {
        c.status = err;
      } else {
        // Injected shortness trims what the backend is considered to have
        // moved, so the fixup loop below runs on both backends.
        if (first_cap < req.len) moved = std::min(moved, first_cap);
        if (moved < req.len) {
          if (moved > 0 || first_cap < req.len) {
            short_fixups_.fetch_add(1, std::memory_order_relaxed);
          }
          AioRequest rest = req;
          rest.buf = static_cast<char*>(req.buf) + moved;
          rest.offset += moved;
          rest.len = req.len - moved;
          c.status = FullTransfer(rest, rest.len);
        }
        if (c.status.ok()) c.bytes = req.len;
      }
    }
    if (!c.status.ok()) errors_.fetch_add(1, std::memory_order_relaxed);
    io_busy_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    bool last = inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1;
    mailbox_.Deliver(c, last);
  }

  uint64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }
  void AddBusyNs(uint64_t ns) {
    io_busy_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  CompletionMailbox mailbox_;

 private:
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> short_fixups_{0};
  std::atomic<uint64_t> max_inflight_{0};
  std::atomic<uint64_t> io_busy_ns_{0};
};

// ---------------------------------------------------------------------------
// ThreadPoolFileEngine: pread/pwrite workers — the universal fallback.

class ThreadPoolFileEngine final : public EngineBase {
 public:
  explicit ThreadPoolFileEngine(uint32_t workers) {
    if (workers == 0) workers = 1;
    workers_.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i) {
      workers_.emplace_back(&ThreadPoolFileEngine::WorkerMain, this);
    }
  }

  ~ThreadPoolFileEngine() override { Shutdown(); }

  Status Submit(const AioRequest* reqs, uint32_t n) override {
    if (n == 0) return Status::OK();
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return Status::Aborted("async engine stopped");
    NoteSubmitted(n);
    for (uint32_t i = 0; i < n; ++i) queue_.push_back(reqs[i]);
    if (n == 1) {
      work_cv_.notify_one();
    } else {
      work_cv_.notify_all();
    }
    return Status::OK();
  }

  void Shutdown() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
    workers_.clear();
  }

  const char* backend() const override { return "pool"; }

 private:
  void WorkerMain() {
    for (;;) {
      AioRequest req;
      {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] { return stopped_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopped and drained
        req = queue_.front();
        queue_.pop_front();
      }
      FinishRequest(req, Status::OK(), /*moved=*/0);
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<AioRequest> queue_;
  bool stopped_ = false;
  std::vector<std::thread> workers_;
};

#if BESS_HAVE_URING

// ---------------------------------------------------------------------------
// UringFileEngine: raw io_uring syscalls, no liburing.

int SysUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

class UringFileEngine final : public EngineBase {
 public:
  ~UringFileEngine() override { Shutdown(); }

  Status Init(uint32_t queue_depth) {
    // Ring sized at 2x the caller's depth so submission never has to spin
    // on SQ space even with completions pending in the CQ.
    unsigned entries = 8;
    while (entries < queue_depth * 2 && entries < 4096) entries <<= 1;

    struct io_uring_params p;
    memset(&p, 0, sizeof(p));
    ring_fd_ = SysUringSetup(entries, &p);
    if (ring_fd_ < 0) {
      return Status::IOError(std::string("io_uring_setup: ") +
                             strerror(errno));
    }
    sq_entries_ = p.sq_entries;

    sq_ring_sz_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_ring_sz_ = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
    single_mmap_ = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap_) {
      sq_ring_sz_ = cq_ring_sz_ = std::max(sq_ring_sz_, cq_ring_sz_);
    }
    sq_ring_ptr_ = mmap(nullptr, sq_ring_sz_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_SQ_RING);
    if (sq_ring_ptr_ == MAP_FAILED) {
      sq_ring_ptr_ = nullptr;
      return CloseWithError("mmap sq ring");
    }
    if (single_mmap_) {
      cq_ring_ptr_ = sq_ring_ptr_;
    } else {
      cq_ring_ptr_ = mmap(nullptr, cq_ring_sz_, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd_,
                          IORING_OFF_CQ_RING);
      if (cq_ring_ptr_ == MAP_FAILED) {
        cq_ring_ptr_ = nullptr;
        return CloseWithError("mmap cq ring");
      }
    }
    sqes_sz_ = p.sq_entries * sizeof(struct io_uring_sqe);
    void* sqes = mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) return CloseWithError("mmap sqes");
    sqes_ = static_cast<struct io_uring_sqe*>(sqes);

    char* sq = static_cast<char*>(sq_ring_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    char* cq = static_cast<char*>(cq_ring_ptr_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + p.cq_off.cqes);

    reaper_ = std::thread(&UringFileEngine::ReaperMain, this);
    return Status::OK();
  }

  Status Submit(const AioRequest* reqs, uint32_t n) override {
    if (n == 0) return Status::OK();
    if (stopped_.load(std::memory_order_acquire)) {
      return Status::Aborted("async engine stopped");
    }
    // Register the batch before any sqe becomes visible: a completion can
    // arrive the instant the kernel sees the entry.
    std::vector<uint64_t> ids(n);
    {
      std::lock_guard<std::mutex> lk(pending_mu_);
      for (uint32_t i = 0; i < n; ++i) {
        ids[i] = next_id_++;
        pending_.emplace(ids[i], reqs[i]);
      }
    }
    NoteSubmitted(n);

    std::lock_guard<std::mutex> lk(sq_mu_);
    uint32_t done = 0;
    while (done < n) {
      unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
      unsigned tail = *sq_tail_;  // sole producer under sq_mu_
      unsigned space = sq_entries_ - (tail - head);
      uint32_t chunk = std::min(n - done, space);
      if (chunk == 0) {
        // Ring full mid-batch (batch larger than the ring): the pending
        // entries drain inside io_uring_enter below on the next lap.
        (void)SysUringEnter(ring_fd_, 0, 0, 0);
        continue;
      }
      for (uint32_t i = 0; i < chunk; ++i) {
        unsigned idx = (tail + i) & *sq_mask_;
        struct io_uring_sqe* sqe = &sqes_[idx];
        memset(sqe, 0, sizeof(*sqe));
        const AioRequest& r = reqs[done + i];
        sqe->opcode = r.op == Op::kRead ? IORING_OP_READ : IORING_OP_WRITE;
        sqe->fd = r.fd;
        sqe->addr = reinterpret_cast<uint64_t>(r.buf);
        sqe->len = static_cast<uint32_t>(r.len);
        sqe->off = r.offset;
        sqe->user_data = ids[done + i];
        sq_array_[idx] = idx;
      }
      __atomic_store_n(sq_tail_, tail + chunk, __ATOMIC_RELEASE);
      uint32_t submitted = 0;
      while (submitted < chunk) {
        int ret = SysUringEnter(ring_fd_, chunk - submitted, 0, 0);
        if (ret < 0) {
          if (errno == EINTR || errno == EAGAIN) continue;
          // The sqes are already visible; fail the whole remainder loudly
          // via error completions so every request still completes.
          FailRemainder(reqs, ids, done + submitted, n,
                        Status::IOError(std::string("io_uring_enter: ") +
                                        strerror(errno)));
          return Status::OK();
        }
        submitted += static_cast<uint32_t>(ret);
      }
      done += chunk;
    }
    return Status::OK();
  }

  void Shutdown() override {
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) {
      if (reaper_.joinable()) reaper_.join();
      return;
    }
    if (ring_fd_ >= 0) {
      // Wake the reaper blocked in GETEVENTS with a NOP (user_data 0).
      std::lock_guard<std::mutex> lk(sq_mu_);
      unsigned tail = *sq_tail_;
      unsigned idx = tail & *sq_mask_;
      struct io_uring_sqe* sqe = &sqes_[idx];
      memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_NOP;
      sqe->user_data = 0;
      sq_array_[idx] = idx;
      __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
      (void)SysUringEnter(ring_fd_, 1, 0, 0);
    }
    if (reaper_.joinable()) reaper_.join();
    Unmap();
  }

  const char* backend() const override { return "uring"; }

 private:
  Status CloseWithError(const char* what) {
    Status st = Status::IOError(std::string(what) + ": " + strerror(errno));
    Unmap();
    return st;
  }

  void Unmap() {
    if (sqes_ != nullptr) {
      munmap(sqes_, sqes_sz_);
      sqes_ = nullptr;
    }
    if (cq_ring_ptr_ != nullptr && !single_mmap_) {
      munmap(cq_ring_ptr_, cq_ring_sz_);
    }
    cq_ring_ptr_ = nullptr;
    if (sq_ring_ptr_ != nullptr) {
      munmap(sq_ring_ptr_, sq_ring_sz_);
      sq_ring_ptr_ = nullptr;
    }
    if (ring_fd_ >= 0) {
      close(ring_fd_);
      ring_fd_ = -1;
    }
  }

  void FailRemainder(const AioRequest* reqs, const std::vector<uint64_t>& ids,
                     uint32_t from, uint32_t n, Status st) {
    for (uint32_t i = from; i < n; ++i) {
      bool mine;
      {
        std::lock_guard<std::mutex> lk(pending_mu_);
        mine = pending_.erase(ids[i]) != 0;
      }
      // The kernel may have consumed some of these sqes before the enter
      // failed; those complete through the reaper instead.
      if (mine) FinishRequest(reqs[i], st, 0);
    }
  }

  void ReaperMain() {
    for (;;) {
      unsigned head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
      unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      if (head == tail) {
        if (stopped_.load(std::memory_order_acquire) && inflight() == 0) {
          return;
        }
        uint64_t t0 = NowNs();
        int ret =
            SysUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
        if (inflight() > 0) AddBusyNs(NowNs() - t0);
        (void)ret;  // EINTR just re-loops
        continue;
      }
      while (head != tail) {
        const struct io_uring_cqe* cqe = &cqes_[head & *cq_mask_];
        uint64_t id = cqe->user_data;
        int res = cqe->res;
        ++head;
        __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
        ProcessCqe(id, res);
        tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      }
    }
  }

  void ProcessCqe(uint64_t id, int res) {
    if (id == 0) return;  // shutdown NOP
    AioRequest req;
    {
      std::lock_guard<std::mutex> lk(pending_mu_);
      auto it = pending_.find(id);
      if (it == pending_.end()) return;  // failed in FailRemainder already
      req = it->second;
      pending_.erase(it);
    }
    if (res < 0) {
      FinishRequest(req, Status::IOError(std::string("io_uring cqe: ") +
                                         strerror(-res)),
                    0);
    } else {
      FinishRequest(req, Status::OK(), static_cast<size_t>(res));
    }
  }

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  void* sq_ring_ptr_ = nullptr;
  void* cq_ring_ptr_ = nullptr;
  size_t sq_ring_sz_ = 0;
  size_t cq_ring_sz_ = 0;
  bool single_mmap_ = false;
  struct io_uring_sqe* sqes_ = nullptr;
  size_t sqes_sz_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  struct io_uring_cqe* cqes_ = nullptr;

  std::mutex sq_mu_;
  std::mutex pending_mu_;
  std::unordered_map<uint64_t, AioRequest> pending_;
  uint64_t next_id_ = 1;
  std::atomic<bool> stopped_{false};
  std::thread reaper_;
};

#endif  // BESS_HAVE_URING

}  // namespace

// ---------------------------------------------------------------------------

bool AsyncFileEngine::UringSupported() {
#if BESS_HAVE_URING
  static const bool supported = [] {
    struct io_uring_params p;
    memset(&p, 0, sizeof(p));
    int fd = SysUringSetup(4, &p);
    if (fd < 0) return false;
    close(fd);
    return true;
  }();
  return supported;
#else
  return false;
#endif
}

Result<std::unique_ptr<AsyncFileEngine>> AsyncFileEngine::Create(
    const Options& options) {
  if (options.queue_depth == 0) {
    return Status::InvalidArgument("queue_depth must be > 0");
  }
  if (options.backend != "auto" && options.backend != "uring" &&
      options.backend != "pool") {
    return Status::InvalidArgument("unknown async backend: " +
                                   options.backend);
  }
#if BESS_HAVE_URING
  if (options.backend != "pool" && UringSupported()) {
    auto uring = std::make_unique<UringFileEngine>();
    if (uring->Init(options.queue_depth).ok()) {
      return std::unique_ptr<AsyncFileEngine>(std::move(uring));
    }
    // Setup raced with resource limits: fall through to the pool.
  }
#endif
  return std::unique_ptr<AsyncFileEngine>(
      std::make_unique<ThreadPoolFileEngine>(options.workers));
}

}  // namespace aio
}  // namespace bess
