// POSIX shared-memory segments. The node cache (§4, Figure 3) is "created by
// using the shared memory facilities provided by UNIX that associate a
// virtual address range with a file"; this wrapper provides exactly that,
// plus the fd needed to map individual cache frames into per-process PVMA
// frames with MAP_FIXED (§4.1.2, Figure 4).
#ifndef BESS_OS_SHM_H_
#define BESS_OS_SHM_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace bess {

/// A named shared-memory object mapped read-write into this process.
/// Move-only; unmaps on destruction. Unlink() removes the name system-wide.
class SharedMemory {
 public:
  SharedMemory() = default;
  ~SharedMemory();
  SharedMemory(SharedMemory&& other) noexcept;
  SharedMemory& operator=(SharedMemory&& other) noexcept;
  SharedMemory(const SharedMemory&) = delete;
  SharedMemory& operator=(const SharedMemory&) = delete;

  /// Creates (or replaces) a shared-memory object of `size` bytes and maps
  /// it. The creator should later call Unlink().
  static Result<SharedMemory> Create(const std::string& name, size_t size);

  /// Attaches to an existing object created by another process.
  static Result<SharedMemory> Attach(const std::string& name);

  void* base() const { return base_; }
  size_t size() const { return size_; }
  int fd() const { return fd_; }
  const std::string& name() const { return name_; }
  bool valid() const { return base_ != nullptr; }

  /// Removes the name from the system (existing mappings stay valid).
  Status Unlink();

  /// Unmaps and closes without unlinking.
  void Detach();

 private:
  SharedMemory(std::string name, int fd, void* base, size_t size)
      : name_(std::move(name)), fd_(fd), base_(base), size_(size) {}

  std::string name_;
  int fd_ = -1;
  void* base_ = nullptr;
  size_t size_ = 0;
};

}  // namespace bess

#endif  // BESS_OS_SHM_H_
