#include "os/file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include "os/fault_injection.h"

namespace bess {
namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + strerror(errno);
}

}  // namespace

File::~File() { Close(); }

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Result<File> File::Open(const std::string& path, bool create) {
  int flags = O_RDWR | O_CLOEXEC;
  if (create) flags |= O_CREAT;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::IOError(Errno("open", path));
  return File(fd, path);
}

Result<File> File::OpenReadOnly(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("open(ro)", path));
  return File(fd, path);
}

Status File::ReadAt(uint64_t offset, void* buf, size_t n) const {
  size_t first_cap = n;
  if (fault::Armed()) {
    fault::FaultOutcome out =
        fault::FaultRegistry::Instance().EvaluateIo("file.readat", path_, n);
    if (out.crash) fault::FaultRegistry::CrashNow();
    // Injected short read (kShortWrite/kTornPage schedules): cap the first
    // pread so the loop below has to resume mid-buffer — the partial-count
    // path a test can't provoke from a regular file any other way. Unlike
    // WriteAt, a short count on a read is not a torn-data hazard, so it is
    // recoverable here rather than an error. A zero cap would mimic EOF
    // (r == 0, a hard error below), so the smallest injectable cap is one
    // byte; kNoSpace and plain kFail still surface their status.
    if (out.bytes_allowed < n && out.bytes_allowed > 0 &&
        !out.status.IsNoSpace()) {
      first_cap = out.bytes_allowed;
    } else if (!out.status.ok()) {
      return out.status;
    }
  }
  char* p = static_cast<char*>(buf);
  size_t left = n;
  uint64_t off = offset;
  while (left > 0) {
    const size_t ask = left == n && first_cap < left ? first_cap : left;
    ssize_t r = ::pread(fd_, p, ask, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("pread", path_));
    }
    if (r == 0) {
      return Status::IOError("pread " + path_ + ": short read at offset " +
                             std::to_string(off));
    }
    p += r;
    off += static_cast<uint64_t>(r);
    left -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status File::WriteAt(uint64_t offset, const void* buf, size_t n) {
  if (fault::Armed()) {
    fault::FaultOutcome out =
        fault::FaultRegistry::Instance().EvaluateIo("file.writeat", path_, n);
    if (out.bytes_allowed < n) {
      // Torn write: persist a prefix of the request, then fail or die —
      // the on-disk state a crash mid-pwrite leaves behind.
      if (out.bytes_allowed > 0) {
        (void)WriteAtUnchecked(offset, buf, out.bytes_allowed);
      }
      if (out.crash) fault::FaultRegistry::CrashNow();
      return out.status.ok() ? Status::IOError("injected torn write")
                             : out.status;
    }
    if (out.crash) fault::FaultRegistry::CrashNow();
    if (!out.status.ok()) return out.status;
  }
  return WriteAtUnchecked(offset, buf, n);
}

Status File::WriteAtUnchecked(uint64_t offset, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  size_t left = n;
  uint64_t off = offset;
  while (left > 0) {
    ssize_t w = ::pwrite(fd_, p, left, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("pwrite", path_));
    }
    p += w;
    off += static_cast<uint64_t>(w);
    left -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status File::Append(const void* buf, size_t n) {
  BESS_RETURN_IF_ERROR(fault::Check("file.append", path_));
  auto size = Size();
  BESS_RETURN_IF_ERROR(size.status());
  return WriteAt(*size, buf, n);
}

Status File::Sync() {
  // A crashpoint here dies *before* fdatasync: buffered writes are issued
  // but not durable — the classic lost-tail power-failure scenario.
  BESS_RETURN_IF_ERROR(fault::Check("file.sync", path_));
  if (::fdatasync(fd_) != 0) {
    // Deliberately NOT an EINTR retry loop (unlike ReadAt/WriteAt): once an
    // fdatasync returns — even interrupted — the kernel may have cleared the
    // dirty flags on pages it failed to write, so a retried call can report
    // "durable" for data that never reached the platter (fsyncgate; see the
    // wedging contract in wal/log_manager.h). Any non-zero return surfaces
    // as an error and the caller wedges or re-verifies.
    return Status::IOError(Errno("fdatasync", path_));
  }
  return Status::OK();
}

Status File::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError(Errno("ftruncate", path_));
  }
  return Status::OK();
}

Result<uint64_t> File::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Status::IOError(Errno("fstat", path_));
  return static_cast<uint64_t>(st.st_size);
}

void File::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status File::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound("unlink " + path);
    return Status::IOError(Errno("unlink", path));
  }
  return Status::OK();
}

bool File::Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace bess
