// Central fault-injection layer: a process-wide registry of named injection
// points with deterministic, seed-driven schedules. Production code calls
// fault::Check("point", detail) (or the I/O-aware variant) at the places a
// real system fails — file reads/writes/fsync, socket send/recv, store
// write-back — and tests arm FaultSpecs to make exactly those places fail,
// stall, tear, or kill the process.
//
// Cost when nothing is armed: a single relaxed atomic load (fault::Armed()),
// checked inline before any registry work. Hot paths stay hot.
//
// Injection-point naming convention: "<subsystem>.<operation>", lowercase,
// e.g. "file.writeat", "file.sync", "sock.send", "memstore.fetch",
// "client.2pc.decision". Points are not pre-declared; arming an unknown name
// simply never matches (a misspelled point is visible via hits() == 0).
#ifndef BESS_OS_FAULT_INJECTION_H_
#define BESS_OS_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/random.h"
#include "util/status.h"

namespace bess {
namespace fault {

/// Number of armed injection points, process-wide. Non-zero switches every
/// instrumented call site onto the slow path.
extern std::atomic<uint32_t> g_armed_points;

/// The zero-cost gate: one relaxed atomic load, inlined at every site.
inline bool Armed() {
  return g_armed_points.load(std::memory_order_relaxed) != 0;
}

enum class FaultAction : uint8_t {
  kFail,        ///< return spec.code / spec.message from the call site
  kLatency,     ///< sleep latency_us, then let the operation proceed
  kShortWrite,  ///< persist only max_bytes of the request, then fail (torn)
  kCrash,       ///< SIGKILL the process (no unwind, no flush) — a crashpoint
  kBitRot,      ///< silently flip a bit in the persisted bytes (media decay)
  kTornPage,    ///< silently persist only a prefix but report success
  kNoSpace,     ///< ENOSPC: nothing persisted, the call returns NoSpace
};

/// A deterministic schedule for one injection point. The trigger sequence is
/// fully determined by (skip, count, probability, seed): the same spec armed
/// against the same operation sequence fires at the same operations.
struct FaultSpec {
  FaultAction action = FaultAction::kFail;
  StatusCode code = StatusCode::kIOError;  ///< kFail / kShortWrite status
  std::string message = "injected fault";
  int skip = 0;         ///< let this many matching operations through first
  int count = -1;       ///< fire at most this many times (-1 = unlimited)
  double probability = 1.0;  ///< per-operation fire probability after skip
  uint64_t seed = 0x5EEDu;   ///< PRNG seed for probability draws
  uint32_t latency_us = 0;   ///< kLatency: injected delay
  size_t max_bytes = 0;      ///< kShortWrite/kCrash: bytes persisted first
  /// Only operations whose detail string (e.g. the file path) contains this
  /// substring match; empty matches everything.
  std::string detail_filter;

  /// Convenience: fail the nth matching operation (1-based), once.
  static FaultSpec FailNth(int nth, StatusCode code = StatusCode::kIOError) {
    FaultSpec s;
    s.skip = nth - 1;
    s.count = 1;
    s.code = code;
    return s;
  }
  /// Convenience: crash the process at the nth matching operation (1-based).
  static FaultSpec CrashAtNth(int nth) {
    FaultSpec s;
    s.action = FaultAction::kCrash;
    s.skip = nth - 1;
    s.count = 1;
    return s;
  }
  /// Convenience: the disk fills at the nth matching write and stays full
  /// for `times` operations (-1 = until disarmed).
  static FaultSpec NoSpaceAtNth(int nth, int times = -1) {
    FaultSpec s;
    s.action = FaultAction::kNoSpace;
    s.code = StatusCode::kNoSpace;
    s.message = "injected ENOSPC";
    s.skip = nth - 1;
    s.count = times;
    return s;
  }
};

/// What the call site must do. OK status + bytes_allowed >= n = proceed.
struct FaultOutcome {
  Status status;  ///< non-OK: the call site returns this (after partial I/O)
  size_t bytes_allowed = SIZE_MAX;  ///< < n: persist only a prefix (torn)
  bool crash = false;  ///< call CrashNow() after the partial I/O is issued
  /// kBitRot: corrupt the bytes actually persisted (the call still reports
  /// success — the lying disk). Which bit to flip is the call site's choice
  /// so the corruption stays deterministic per page.
  bool bit_rot = false;
};

class FaultRegistry {
 public:
  static FaultRegistry& Instance();

  /// Arms (or replaces) the schedule for an injection point.
  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Times the point fired (triggered a fault), since the last ResetCounters.
  /// Survives Disarm so tests can assert after the fact.
  uint64_t hits(const std::string& point) const;
  void ResetCounters();

  /// Slow-path evaluation for plain (non-sized) operations. kCrash fires
  /// CrashNow() directly; kLatency sleeps and returns OK.
  Status Evaluate(const char* point, const std::string& detail);

  /// Slow-path evaluation for a sized write. Never crashes or sleeps while
  /// holding the registry lock; kCrash is returned as outcome.crash so the
  /// call site can issue the partial write before dying.
  FaultOutcome EvaluateIo(const char* point, const std::string& detail,
                          size_t n);

  /// Dies without unwinding (SIGKILL): no destructors, no buffer flushes —
  /// the honest simulation of power loss / kill -9.
  [[noreturn]] static void CrashNow();

 private:
  struct ArmedPoint {
    FaultSpec spec;
    Random rng{1};
    int skip_left = 0;
    int count_left = -1;
  };

  FaultRegistry() = default;
  /// Decides whether `point` fires for this operation; fills `out` (but
  /// performs no side effect such as sleeping or crashing). Returns true if
  /// a fault was scheduled.
  bool Decide(const char* point, const std::string& detail, size_t n,
              FaultOutcome* out, uint32_t* latency_us);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, ArmedPoint> points_;
  std::unordered_map<std::string, uint64_t> hit_counts_;
};

/// The standard injection gate for non-sized operations. Zero cost (one
/// relaxed load) when nothing is armed.
inline Status Check(const char* point, const std::string& detail = "") {
  if (!Armed()) return Status::OK();
  return FaultRegistry::Instance().Evaluate(point, detail);
}

}  // namespace fault
}  // namespace bess

#endif  // BESS_OS_FAULT_INJECTION_H_
