#include "os/fault_injection.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>

namespace bess {
namespace fault {

std::atomic<uint32_t> g_armed_points{0};

namespace {

Status MakeStatus(const FaultSpec& spec) {
  switch (spec.code) {
    case StatusCode::kNotFound:
      return Status::NotFound(spec.message);
    case StatusCode::kCorruption:
      return Status::Corruption(spec.message);
    case StatusCode::kNotSupported:
      return Status::NotSupported(spec.message);
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(spec.message);
    case StatusCode::kBusy:
      return Status::Busy(spec.message);
    case StatusCode::kDeadlock:
      return Status::Deadlock(spec.message);
    case StatusCode::kAborted:
      return Status::Aborted(spec.message);
    case StatusCode::kNoSpace:
      return Status::NoSpace(spec.message);
    case StatusCode::kProtocol:
      return Status::Protocol(spec.message);
    case StatusCode::kInternal:
      return Status::Internal(spec.message);
    case StatusCode::kWouldBlock:
      return Status::WouldBlock(spec.message);
    case StatusCode::kIOError:
    case StatusCode::kOk:
    default:
      return Status::IOError(spec.message);
  }
}

}  // namespace

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto [it, inserted] = points_.try_emplace(point);
  ArmedPoint& p = it->second;
  p.skip_left = spec.skip;
  p.count_left = spec.count;
  p.rng = Random(spec.seed);
  p.spec = std::move(spec);
  if (inserted) {
    g_armed_points.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (points_.erase(point) > 0) {
    g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> guard(mutex_);
  g_armed_points.fetch_sub(static_cast<uint32_t>(points_.size()),
                           std::memory_order_relaxed);
  points_.clear();
}

uint64_t FaultRegistry::hits(const std::string& point) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = hit_counts_.find(point);
  return it == hit_counts_.end() ? 0 : it->second;
}

void FaultRegistry::ResetCounters() {
  std::lock_guard<std::mutex> guard(mutex_);
  hit_counts_.clear();
}

bool FaultRegistry::Decide(const char* point, const std::string& detail,
                           size_t n, FaultOutcome* out, uint32_t* latency_us) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  ArmedPoint& p = it->second;
  if (!p.spec.detail_filter.empty() &&
      detail.find(p.spec.detail_filter) == std::string::npos) {
    return false;
  }
  if (p.skip_left > 0) {
    --p.skip_left;
    return false;
  }
  if (p.count_left == 0) return false;
  if (p.spec.probability < 1.0 && !p.rng.Bernoulli(p.spec.probability)) {
    return false;
  }
  if (p.count_left > 0) --p.count_left;
  hit_counts_[point]++;

  switch (p.spec.action) {
    case FaultAction::kLatency:
      *latency_us = p.spec.latency_us;
      return true;
    case FaultAction::kFail:
      out->status = MakeStatus(p.spec);
      return true;
    case FaultAction::kShortWrite:
      // Strictly short: never allow the full request through.
      out->bytes_allowed = n > 0 ? std::min(p.spec.max_bytes, n - 1) : 0;
      out->status = MakeStatus(p.spec);
      return true;
    case FaultAction::kCrash:
      out->bytes_allowed = n > 0 ? std::min(p.spec.max_bytes, n) : 0;
      out->crash = true;
      return true;
    case FaultAction::kBitRot:
      // Status stays OK: the write "succeeds" but the media decays.
      out->bit_rot = true;
      return true;
    case FaultAction::kTornPage:
      // Silent torn write: a prefix lands, the call still reports success.
      out->bytes_allowed = n > 0 ? std::min(p.spec.max_bytes, n - 1) : 0;
      return true;
    case FaultAction::kNoSpace:
      // ENOSPC: the write is refused whole — unlike kShortWrite no prefix
      // lands, and unlike an fsync failure nothing already-acked is in doubt.
      out->bytes_allowed = 0;
      out->status = Status::NoSpace(p.spec.message);
      return true;
  }
  return false;
}

Status FaultRegistry::Evaluate(const char* point, const std::string& detail) {
  FaultOutcome out;
  uint32_t latency_us = 0;
  if (!Decide(point, detail, 0, &out, &latency_us)) return Status::OK();
  if (out.crash) CrashNow();
  if (latency_us > 0) ::usleep(latency_us);
  return out.status;
}

FaultOutcome FaultRegistry::EvaluateIo(const char* point,
                                       const std::string& detail, size_t n) {
  FaultOutcome out;
  uint32_t latency_us = 0;
  if (!Decide(point, detail, n, &out, &latency_us)) {
    return FaultOutcome{};
  }
  if (latency_us > 0) ::usleep(latency_us);
  return out;
}

void FaultRegistry::CrashNow() {
  // SIGKILL, not _exit: no atexit handlers, no stream flushes, and the
  // parent observes a genuine kill — exactly what a crashpoint simulates.
  ::kill(::getpid(), SIGKILL);
  ::_exit(137);  // unreachable; placates [[noreturn]]
}

}  // namespace fault
}  // namespace bess
