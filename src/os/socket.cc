#include "os/socket.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>

#include "os/fault_injection.h"

namespace bess {
namespace {

std::atomic<uint64_t> g_messages_sent{0};

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " + strerror(errno));
}

Status FillSockaddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  memcpy(addr->sun_path, path.c_str(), path.size());
  return Status::OK();
}

Status SetFdNonBlocking(int fd, bool on) {
  if (fd < 0) return Status::InvalidArgument("invalid socket");
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::OK();
}

/// Blocks until `events` is pending on `fd` (or an error/hangup, which the
/// following Try* call will surface). Used by the blocking wrappers to ride
/// out WouldBlock from the non-blocking core.
Status WaitReady(int fd, short events) {
  for (;;) {
    struct pollfd pfd = {fd, events, 0};
    int r = ::poll(&pfd, 1, -1);
    if (r > 0) return Status::OK();
    if (r < 0 && errno != EINTR) return ErrnoStatus("poll");
  }
}

}  // namespace

// ---- MsgSocket --------------------------------------------------------------

MsgSocket::~MsgSocket() { Close(); }

MsgSocket::MsgSocket(MsgSocket&& other) noexcept
    : fd_(other.fd_),
      latency_us_(other.latency_us_),
      name_(std::move(other.name_)) {
  other.fd_ = -1;
}

MsgSocket& MsgSocket::operator=(MsgSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    latency_us_ = other.latency_us_;
    name_ = std::move(other.name_);
    other.fd_ = -1;
  }
  return *this;
}

Result<MsgSocket> MsgSocket::Connect(const std::string& path) {
  sockaddr_un addr;
  BESS_RETURN_IF_ERROR(FillSockaddr(path, &addr));
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoStatus("connect");
    ::close(fd);
    return s;
  }
  MsgSocket sock(fd);
  sock.name_ = path;
  return sock;
}

Status MsgSocket::Pair(MsgSocket* a, MsgSocket* b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    return ErrnoStatus("socketpair");
  }
  *a = MsgSocket(fds[0]);
  *b = MsgSocket(fds[1]);
  return Status::OK();
}

Status MsgSocket::SetNonBlocking(bool on) {
  return SetFdNonBlocking(fd_, on);
}

// ---- non-blocking core ------------------------------------------------------

void MsgSocket::QueueFrame(uint16_t type, uint64_t req_id, Slice payload,
                           SendContinuation* cont, uint32_t deadline_ms) {
  // Compact a fully drained continuation so back-to-back queue/flush cycles
  // don't grow the buffer forever.
  if (cont->empty()) cont->clear();
  char header[kHeaderSize];
  EncodeFixed32(header, static_cast<uint32_t>(payload.size()));
  EncodeFixed16(header + 4, type);
  EncodeFixed64(header + 6, req_id);
  EncodeFixed32(header + 14, deadline_ms);
  cont->buf.append(header, sizeof(header));
  if (!payload.empty()) cont->buf.append(payload.data(), payload.size());
  g_messages_sent.fetch_add(1, std::memory_order_relaxed);
}

Status MsgSocket::TrySend(SendContinuation* cont) {
  while (!cont->empty()) {
    size_t n = cont->pending_bytes();
    if (fault::Armed()) {
      fault::FaultOutcome out =
          fault::FaultRegistry::Instance().EvaluateIo("sock.trysend", name_, n);
      if (!out.status.ok() && out.bytes_allowed == SIZE_MAX) {
        // kFail spec: surface as-is (code kWouldBlock simulates EAGAIN).
        return out.status;
      }
      if (out.bytes_allowed < n) {
        // kShortWrite spec: the wire accepts only a prefix this call; the
        // remainder stays in the continuation, exactly like real EAGAIN
        // after a partial write.
        if (out.bytes_allowed == 0) {
          return Status::WouldBlock("injected zero-byte write window");
        }
        n = out.bytes_allowed;
        ssize_t w = ::send(fd_, cont->buf.data() + cont->off, n, MSG_NOSIGNAL);
        if (w > 0) cont->off += static_cast<size_t>(w);
        return Status::WouldBlock("injected short write");
      }
    }
    ssize_t w = ::send(fd_, cont->buf.data() + cont->off, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::WouldBlock("send would block");
      }
      return ErrnoStatus("send");
    }
    cont->off += static_cast<size_t>(w);
  }
  cont->clear();
  return Status::OK();
}

Status MsgSocket::TryRecv(Message* out, RecvContinuation* cont) {
  if (fault::Armed()) {
    BESS_RETURN_IF_ERROR(fault::Check("sock.tryrecv", name_));
  }
  if (cont->target == 0) cont->target = kHeaderSize;
  for (;;) {
    while (cont->buf.size() < cont->target) {
      const size_t old = cont->buf.size();
      const size_t want = cont->target - old;
      cont->buf.resize(cont->target);
      ssize_t r = ::recv(fd_, cont->buf.data() + old, want, 0);
      if (r < 0) {
        cont->buf.resize(old);
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return Status::WouldBlock("recv would block");
        }
        return ErrnoStatus("recv");
      }
      if (r == 0) {
        cont->buf.resize(old);
        return Status::Protocol("peer closed connection");
      }
      cont->buf.resize(old + static_cast<size_t>(r));
    }
    if (!cont->have_header) {
      const uint32_t len = DecodeFixed32(cont->buf.data());
      if (len > (64u << 20)) {
        return Status::Protocol("oversized frame: " + std::to_string(len));
      }
      cont->have_header = true;
      cont->target = kHeaderSize + len;
      continue;
    }
    out->type = DecodeFixed16(cont->buf.data() + 4);
    out->req_id = DecodeFixed64(cont->buf.data() + 6);
    out->deadline_ms = DecodeFixed32(cont->buf.data() + 14);
    out->payload.assign(cont->buf, kHeaderSize, std::string::npos);
    cont->clear();
    return Status::OK();
  }
}

// ---- blocking wrappers ------------------------------------------------------

Status MsgSocket::Send(uint16_t type, Slice payload, uint64_t req_id,
                       uint32_t deadline_ms) {
  BESS_RETURN_IF_ERROR(fault::Check("sock.send", name_));
  if (latency_us_ > 0) ::usleep(latency_us_);
  SendContinuation cont;
  QueueFrame(type, req_id, payload, &cont, deadline_ms);
  for (;;) {
    Status s = TrySend(&cont);
    if (s.ok()) return s;
    if (!s.IsWouldBlock()) return s;
    BESS_RETURN_IF_ERROR(WaitReady(fd_, POLLOUT));
  }
}

Result<Message> MsgSocket::Recv() {
  BESS_RETURN_IF_ERROR(fault::Check("sock.recv", name_));
  RecvContinuation cont;
  Message msg;
  for (;;) {
    Status s = TryRecv(&msg, &cont);
    if (s.ok()) return msg;
    if (!s.IsWouldBlock()) return s;
    BESS_RETURN_IF_ERROR(WaitReady(fd_, POLLIN));
  }
}

Result<Message> MsgSocket::RecvTimeout(int timeout_ms) {
  struct pollfd pfd = {fd_, POLLIN, 0};
  int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) return ErrnoStatus("poll");
  if (r == 0) return Status::Busy("recv timeout");
  return Recv();
}

void MsgSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void MsgSocket::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t MsgSocket::TotalMessagesSent() {
  return g_messages_sent.load(std::memory_order_relaxed);
}

void MsgSocket::ResetMessageCounter() { g_messages_sent.store(0); }

// ---- MsgListener ------------------------------------------------------------

MsgListener::~MsgListener() { Close(); }

MsgListener::MsgListener(MsgListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

MsgListener& MsgListener::operator=(MsgListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Result<MsgListener> MsgListener::Listen(const std::string& path) {
  sockaddr_un addr;
  BESS_RETURN_IF_ERROR(FillSockaddr(path, &addr));
  // Probe before unlinking: a connect() that succeeds means a live server
  // still owns this path — report kBusy instead of stealing its socket.
  // ECONNREFUSED / ENOENT mean the file is stale (or absent) and safe to
  // remove.
  int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (probe >= 0) {
    int rc = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    ::close(probe);
    if (rc == 0) {
      return Status::Busy("address in use by live server: " + path);
    }
  }
  ::unlink(path.c_str());
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoStatus("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 512) != 0) {
    Status s = ErrnoStatus("listen");
    ::close(fd);
    return s;
  }
  return MsgListener(fd, path);
}

Result<MsgSocket> MsgListener::Accept() {
  for (;;) {
    int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking listener: fall back to a poll so the blocking
        // contract holds in either fd mode.
        Status s = WaitReady(fd_, POLLIN);
        if (!s.ok()) return s;
        continue;
      }
      return ErrnoStatus("accept");
    }
    return MsgSocket(cfd);
  }
}

Result<MsgSocket> MsgListener::AcceptTimeout(int timeout_ms) {
  struct pollfd pfd = {fd_, POLLIN, 0};
  int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) return ErrnoStatus("poll(accept)");
  if (r == 0) return Status::Busy("accept timeout");
  return Accept();
}

Result<MsgSocket> MsgListener::TryAccept() {
  for (;;) {
    int cfd = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::WouldBlock("no pending connection");
      }
      return ErrnoStatus("accept4");
    }
    return MsgSocket(cfd);
  }
}

Status MsgListener::SetNonBlocking(bool on) {
  return SetFdNonBlocking(fd_, on);
}

void MsgListener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void MsgListener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
    if (!path_.empty()) ::unlink(path_.c_str());
  }
}

}  // namespace bess
