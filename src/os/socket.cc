#include "os/socket.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>

#include "os/fault_injection.h"

namespace bess {
namespace {

std::atomic<uint64_t> g_messages_sent{0};

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " + strerror(errno));
}

Status FillSockaddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  memcpy(addr->sun_path, path.c_str(), path.size());
  return Status::OK();
}

}  // namespace

// ---- MsgSocket --------------------------------------------------------------

MsgSocket::~MsgSocket() { Close(); }

MsgSocket::MsgSocket(MsgSocket&& other) noexcept
    : fd_(other.fd_),
      latency_us_(other.latency_us_),
      name_(std::move(other.name_)) {
  other.fd_ = -1;
}

MsgSocket& MsgSocket::operator=(MsgSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    latency_us_ = other.latency_us_;
    name_ = std::move(other.name_);
    other.fd_ = -1;
  }
  return *this;
}

Result<MsgSocket> MsgSocket::Connect(const std::string& path) {
  sockaddr_un addr;
  BESS_RETURN_IF_ERROR(FillSockaddr(path, &addr));
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoStatus("connect");
    ::close(fd);
    return s;
  }
  MsgSocket sock(fd);
  sock.name_ = path;
  return sock;
}

Status MsgSocket::Pair(MsgSocket* a, MsgSocket* b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    return ErrnoStatus("socketpair");
  }
  *a = MsgSocket(fds[0]);
  *b = MsgSocket(fds[1]);
  return Status::OK();
}

Status MsgSocket::Send(uint16_t type, Slice payload) {
  BESS_RETURN_IF_ERROR(fault::Check("sock.send", name_));
  if (latency_us_ > 0) ::usleep(latency_us_);
  char header[6];
  EncodeFixed32(header, static_cast<uint32_t>(payload.size()));
  EncodeFixed16(header + 4, type);
  BESS_RETURN_IF_ERROR(SendAll(header, sizeof(header)));
  if (!payload.empty()) {
    BESS_RETURN_IF_ERROR(SendAll(payload.data(), payload.size()));
  }
  g_messages_sent.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<Message> MsgSocket::Recv() {
  BESS_RETURN_IF_ERROR(fault::Check("sock.recv", name_));
  char header[6];
  BESS_RETURN_IF_ERROR(RecvAll(header, sizeof(header)));
  Message msg;
  uint32_t len = DecodeFixed32(header);
  msg.type = DecodeFixed16(header + 4);
  if (len > (64u << 20)) {
    return Status::Protocol("oversized frame: " + std::to_string(len));
  }
  msg.payload.resize(len);
  if (len > 0) BESS_RETURN_IF_ERROR(RecvAll(msg.payload.data(), len));
  return msg;
}

Result<Message> MsgSocket::RecvTimeout(int timeout_ms) {
  struct pollfd pfd = {fd_, POLLIN, 0};
  int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) return ErrnoStatus("poll");
  if (r == 0) return Status::Busy("recv timeout");
  return Recv();
}

Status MsgSocket::SendAll(const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status MsgSocket::RecvAll(void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    ssize_t r = ::recv(fd_, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv");
    }
    if (r == 0) return Status::Protocol("peer closed connection");
    p += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

void MsgSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void MsgSocket::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t MsgSocket::TotalMessagesSent() {
  return g_messages_sent.load(std::memory_order_relaxed);
}

void MsgSocket::ResetMessageCounter() { g_messages_sent.store(0); }

// ---- MsgListener ------------------------------------------------------------

MsgListener::~MsgListener() { Close(); }

MsgListener::MsgListener(MsgListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

MsgListener& MsgListener::operator=(MsgListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Result<MsgListener> MsgListener::Listen(const std::string& path) {
  sockaddr_un addr;
  BESS_RETURN_IF_ERROR(FillSockaddr(path, &addr));
  // Probe before unlinking: a connect() that succeeds means a live server
  // still owns this path — report kBusy instead of stealing its socket.
  // ECONNREFUSED / ENOENT mean the file is stale (or absent) and safe to
  // remove.
  int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (probe >= 0) {
    int rc = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    ::close(probe);
    if (rc == 0) {
      return Status::Busy("address in use by live server: " + path);
    }
  }
  ::unlink(path.c_str());
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoStatus("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    Status s = ErrnoStatus("listen");
    ::close(fd);
    return s;
  }
  return MsgListener(fd, path);
}

Result<MsgSocket> MsgListener::Accept() {
  for (;;) {
    int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("accept");
    }
    return MsgSocket(cfd);
  }
}

Result<MsgSocket> MsgListener::AcceptTimeout(int timeout_ms) {
  struct pollfd pfd = {fd_, POLLIN, 0};
  int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) return ErrnoStatus("poll(accept)");
  if (r == 0) return Status::Busy("accept timeout");
  return Accept();
}

void MsgListener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void MsgListener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
    if (!path_.empty()) ::unlink(path_.c_str());
  }
}

}  // namespace bess
