// Thin RAII wrappers over POSIX file I/O: positional reads/writes, sync,
// resize. All BeSS disk access (storage areas, WAL, private buffer pools)
// goes through this layer.
#ifndef BESS_OS_FILE_H_
#define BESS_OS_FILE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace bess {

/// A file opened for random positional access. Move-only.
class File {
 public:
  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Opens (creating if needed) a read-write file.
  static Result<File> Open(const std::string& path, bool create = true);
  /// Opens an existing file read-only.
  static Result<File> OpenReadOnly(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

  /// Reads exactly n bytes at `offset`; short reads are IOError.
  Status ReadAt(uint64_t offset, void* buf, size_t n) const;
  /// Writes exactly n bytes at `offset`.
  Status WriteAt(uint64_t offset, const void* buf, size_t n);
  /// Appends exactly n bytes at the current end (as tracked by Size()).
  Status Append(const void* buf, size_t n);

  /// Flushes data (and metadata) to stable storage.
  Status Sync();
  /// Grows or shrinks the file to `size` bytes.
  Status Truncate(uint64_t size);

  Result<uint64_t> Size() const;

  void Close();

  /// The raw pwrite loop, bypassing fault injection. Used to persist the
  /// prefix of an injected torn write, and by the storage layer to issue
  /// deliberately corrupted page images (bit_rot / torn_page simulation)
  /// without re-triggering "file.writeat" faults.
  Status WriteAtUnchecked(uint64_t offset, const void* buf, size_t n);

  /// Deletes a file from the filesystem; NotFound if absent.
  static Status Remove(const std::string& path);
  static bool Exists(const std::string& path);

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

}  // namespace bess

#endif  // BESS_OS_FILE_H_
