#include "os/shm.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace bess {
namespace {

Status ErrnoStatus(const std::string& what, const std::string& name) {
  return Status::IOError(what + " " + name + ": " + strerror(errno));
}

}  // namespace

SharedMemory::~SharedMemory() { Detach(); }

SharedMemory::SharedMemory(SharedMemory&& other) noexcept
    : name_(std::move(other.name_)),
      fd_(other.fd_),
      base_(other.base_),
      size_(other.size_) {
  other.fd_ = -1;
  other.base_ = nullptr;
  other.size_ = 0;
}

SharedMemory& SharedMemory::operator=(SharedMemory&& other) noexcept {
  if (this != &other) {
    Detach();
    name_ = std::move(other.name_);
    fd_ = other.fd_;
    base_ = other.base_;
    size_ = other.size_;
    other.fd_ = -1;
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<SharedMemory> SharedMemory::Create(const std::string& name,
                                          size_t size) {
  ::shm_unlink(name.c_str());  // replace any stale object
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return ErrnoStatus("shm_open(create)", name);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    Status s = ErrnoStatus("ftruncate", name);
    ::close(fd);
    ::shm_unlink(name.c_str());
    return s;
  }
  void* base =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    Status s = ErrnoStatus("mmap", name);
    ::close(fd);
    ::shm_unlink(name.c_str());
    return s;
  }
  memset(base, 0, size);
  return SharedMemory(name, fd, base, size);
}

Result<SharedMemory> SharedMemory::Attach(const std::string& name) {
  int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return ErrnoStatus("shm_open(attach)", name);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = ErrnoStatus("fstat", name);
    ::close(fd);
    return s;
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* base =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    Status s = ErrnoStatus("mmap", name);
    ::close(fd);
    return s;
  }
  return SharedMemory(name, fd, base, size);
}

Status SharedMemory::Unlink() {
  if (::shm_unlink(name_.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("shm_unlink", name_);
  }
  return Status::OK();
}

void SharedMemory::Detach() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace bess
