// Virtual-memory primitives: address-range reservation, protection changes,
// fixed-address file mapping. These are the hardware facilities the paper
// builds on — reserved (PROT_NONE) ranges produce segment faults on first
// touch, and write-protected pages produce protection faults used for
// automatic update detection (§2.1–§2.3).
//
// All calls are counted so benchmarks can report syscall overheads
// (bench_protect, bench_detect).
#ifndef BESS_OS_VMEM_H_
#define BESS_OS_VMEM_H_

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace bess {
namespace vmem {

enum Protection : int {
  kNone = 0,       ///< no access: any touch faults (reserved / invalid frame)
  kRead = 1,       ///< read-only: writes fault (update detection)
  kReadWrite = 3,  ///< full access
};

/// Reserves `len` bytes of address space with no access and no backing
/// storage committed. Touching it faults. Returns the base address.
Result<void*> Reserve(size_t len);

/// Releases a reservation (or any mapping) made by this module.
Status Release(void* addr, size_t len);

/// Changes protection of [addr, addr+len). addr and len must be page-aligned.
Status Protect(void* addr, size_t len, Protection prot);

/// Commits anonymous zeroed memory at a fixed address inside an existing
/// reservation, with the given protection.
Status CommitAnonymous(void* addr, size_t len, Protection prot);

/// Maps `len` bytes of `fd` at file offset `offset` to the fixed address
/// `addr` (inside an existing reservation), shared, with protection `prot`.
Status MapFileFixed(void* addr, size_t len, int fd, uint64_t offset,
                    Protection prot);

/// Maps a file (shared, read-write) at a system-chosen address.
Result<void*> MapFile(size_t len, int fd, uint64_t offset);

/// Counters for benchmark reporting.
struct Counters {
  uint64_t reserve_calls;
  uint64_t protect_calls;
  uint64_t commit_calls;
  uint64_t map_fixed_calls;
};
Counters GetCounters();
void ResetCounters();

}  // namespace vmem
}  // namespace bess

#endif  // BESS_OS_VMEM_H_
