// Latches: short-duration spinlocks implemented with atomic test-and-set,
// as used by BeSS "for synchronizing concurrent accesses and implementing
// atomic read/write operations on the cached objects" (§4.1.2).
//
// Latch is a trivially-constructible POD-layout type so it can live inside
// POSIX shared memory and be used by multiple processes. Cleanup after a
// process dies while holding a latch is handled one level up by tracking
// process actions (§4.1.2, per Rdb/VMS [20]): the holder's pid is recorded
// so a recovery pass can detect and break orphaned latches.
#ifndef BESS_OS_LATCH_H_
#define BESS_OS_LATCH_H_

#include <unistd.h>

#include <atomic>
#include <cstdint>

namespace bess {

/// A test-and-set spinlock safe for placement in shared memory.
class Latch {
 public:
  Latch() = default;

  void Lock() {
    uint32_t spins = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) break;
      // Exponential-ish backoff: spin, then yield the CPU.
      if (++spins > 64) {
        ::usleep(50);
      } else {
        for (uint32_t i = 0; i < (1u << (spins > 10 ? 10 : spins)); ++i) {
          asm volatile("" ::: "memory");
        }
      }
    }
    holder_pid_.store(static_cast<uint32_t>(::getpid()),
                      std::memory_order_relaxed);
  }

  bool TryLock() {
    if (flag_.exchange(true, std::memory_order_acquire)) return false;
    holder_pid_.store(static_cast<uint32_t>(::getpid()),
                      std::memory_order_relaxed);
    return true;
  }

  void Unlock() {
    holder_pid_.store(0, std::memory_order_relaxed);
    flag_.store(false, std::memory_order_release);
  }

  bool is_locked() const { return flag_.load(std::memory_order_acquire); }

  /// Pid of the current holder (0 if unheld). Used by crash cleanup to break
  /// latches held by dead processes.
  uint32_t holder_pid() const {
    return holder_pid_.load(std::memory_order_relaxed);
  }

  /// Forcibly releases a latch whose holder has died. Only the shared-cache
  /// recovery pass may call this.
  void BreakOrphaned() {
    holder_pid_.store(0, std::memory_order_relaxed);
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<uint32_t> holder_pid_{0};
};

/// RAII scope guard for a Latch.
class LatchGuard {
 public:
  explicit LatchGuard(Latch& latch) : latch_(&latch) { latch_->Lock(); }
  ~LatchGuard() {
    if (latch_ != nullptr) latch_->Unlock();
  }
  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;

  /// Releases early.
  void Unlock() {
    if (latch_ != nullptr) {
      latch_->Unlock();
      latch_ = nullptr;
    }
  }

 private:
  Latch* latch_;
};

}  // namespace bess

#endif  // BESS_OS_LATCH_H_
