#include "os/vmem.h"

#include <errno.h>
#include <string.h>
#include <sys/mman.h>

#include <atomic>

namespace bess {
namespace vmem {
namespace {

std::atomic<uint64_t> g_reserve_calls{0};
std::atomic<uint64_t> g_protect_calls{0};
std::atomic<uint64_t> g_commit_calls{0};
std::atomic<uint64_t> g_map_fixed_calls{0};

int ToProt(Protection p) {
  switch (p) {
    case kNone:
      return PROT_NONE;
    case kRead:
      return PROT_READ;
    case kReadWrite:
      return PROT_READ | PROT_WRITE;
  }
  return PROT_NONE;
}

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " + strerror(errno));
}

}  // namespace

Result<void*> Reserve(size_t len) {
  g_reserve_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = ::mmap(nullptr, len, PROT_NONE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) return ErrnoStatus("mmap(reserve)");
  return p;
}

Status Release(void* addr, size_t len) {
  if (::munmap(addr, len) != 0) return ErrnoStatus("munmap");
  return Status::OK();
}

Status Protect(void* addr, size_t len, Protection prot) {
  g_protect_calls.fetch_add(1, std::memory_order_relaxed);
  if (::mprotect(addr, len, ToProt(prot)) != 0) {
    return ErrnoStatus("mprotect");
  }
  return Status::OK();
}

Status CommitAnonymous(void* addr, size_t len, Protection prot) {
  g_commit_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = ::mmap(addr, len, ToProt(prot),
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0);
  if (p == MAP_FAILED) return ErrnoStatus("mmap(commit)");
  return Status::OK();
}

Status MapFileFixed(void* addr, size_t len, int fd, uint64_t offset,
                    Protection prot) {
  g_map_fixed_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = ::mmap(addr, len, ToProt(prot), MAP_SHARED | MAP_FIXED, fd,
                   static_cast<off_t>(offset));
  if (p == MAP_FAILED) return ErrnoStatus("mmap(file,fixed)");
  return Status::OK();
}

Result<void*> MapFile(size_t len, int fd, uint64_t offset) {
  void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                   static_cast<off_t>(offset));
  if (p == MAP_FAILED) return ErrnoStatus("mmap(file)");
  return p;
}

Counters GetCounters() {
  return Counters{
      g_reserve_calls.load(std::memory_order_relaxed),
      g_protect_calls.load(std::memory_order_relaxed),
      g_commit_calls.load(std::memory_order_relaxed),
      g_map_fixed_calls.load(std::memory_order_relaxed),
  };
}

void ResetCounters() {
  g_reserve_calls.store(0);
  g_protect_calls.store(0);
  g_commit_calls.store(0);
  g_map_fixed_calls.store(0);
}

}  // namespace vmem
}  // namespace bess
