// Framed message transport over Unix-domain sockets: the client/server and
// server/server communication substrate (paper §3, Figure 2).
//
// The paper's testbed was workstations on a LAN; here all peers are local
// processes, so each socket supports an injectable per-message latency to
// simulate network round-trip cost in benchmarks (see DESIGN.md §1.4).
// Global send counters let benches report messages-per-transaction, the
// metric callback-locking papers optimize.
#ifndef BESS_OS_SOCKET_H_
#define BESS_OS_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace bess {

/// One framed message: a small type tag plus an opaque payload.
struct Message {
  uint16_t type = 0;
  std::string payload;
};

/// A connected, bidirectional, message-framed socket. Move-only.
/// Thread-compatible: concurrent Send from multiple threads must be
/// externally serialized, likewise Recv.
class MsgSocket {
 public:
  MsgSocket() = default;
  ~MsgSocket();
  MsgSocket(MsgSocket&& other) noexcept;
  MsgSocket& operator=(MsgSocket&& other) noexcept;
  MsgSocket(const MsgSocket&) = delete;
  MsgSocket& operator=(const MsgSocket&) = delete;

  /// Connects to a listening socket at `path`.
  static Result<MsgSocket> Connect(const std::string& path);

  /// Creates a connected socketpair (for in-process or fork-based peers).
  static Status Pair(MsgSocket* a, MsgSocket* b);

  bool valid() const { return fd_ >= 0; }

  /// Sends one message (applies the simulated latency first).
  Status Send(uint16_t type, Slice payload);

  /// Receives one message; blocks. Returns Protocol status on peer close.
  Result<Message> Recv();

  /// Receives one message if available within `timeout_ms`; kBusy on timeout.
  Result<Message> RecvTimeout(int timeout_ms);

  /// Simulated one-way latency added before each send, in microseconds.
  void set_simulated_latency_us(uint32_t us) { latency_us_ = us; }

  /// Identity string passed to fault injection as the detail (Connect sets
  /// it to the peer path; accepted/pair sockets default to empty). Lets a
  /// FaultSpec.detail_filter target e.g. only client-side sockets.
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  void Close();

  /// Shuts the connection down (both directions) without closing the fd:
  /// unblocks a thread parked in Recv on this socket from another thread.
  void Shutdown();

  /// Process-wide count of messages sent (benchmark metric).
  static uint64_t TotalMessagesSent();
  static void ResetMessageCounter();

 private:
  friend class MsgListener;
  explicit MsgSocket(int fd) : fd_(fd) {}

  Status SendAll(const void* buf, size_t n);
  Status RecvAll(void* buf, size_t n);

  int fd_ = -1;
  uint32_t latency_us_ = 0;
  std::string name_;
};

/// A listening Unix-domain socket accepting MsgSocket connections.
class MsgListener {
 public:
  MsgListener() = default;
  ~MsgListener();
  MsgListener(MsgListener&& other) noexcept;
  MsgListener& operator=(MsgListener&& other) noexcept;
  MsgListener(const MsgListener&) = delete;
  MsgListener& operator=(const MsgListener&) = delete;

  /// Binds and listens at `path`. A stale socket file (no live listener) is
  /// removed; if a live server answers a probe connect, returns kBusy rather
  /// than yanking the socket out from under it.
  static Result<MsgListener> Listen(const std::string& path);

  /// Accepts one connection; blocks.
  Result<MsgSocket> Accept();

  /// Accepts with a timeout: kBusy if nothing arrives within `timeout_ms`
  /// (lets accept loops poll a stop flag; plain shutdown()/close() does not
  /// reliably unblock accept on all kernels).
  Result<MsgSocket> AcceptTimeout(int timeout_ms);

  /// Unblocks a thread parked in Accept (call before Close from another
  /// thread).
  void Shutdown();

  void Close();
  bool valid() const { return fd_ >= 0; }

 private:
  MsgListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

}  // namespace bess

#endif  // BESS_OS_SOCKET_H_
