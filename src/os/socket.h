// Framed message transport over Unix-domain sockets: the client/server and
// server/server communication substrate (paper §3, Figure 2).
//
// The paper's testbed was workstations on a LAN; here all peers are local
// processes, so each socket supports an injectable per-message latency to
// simulate network round-trip cost in benchmarks (see DESIGN.md §1.4).
// Global send counters let benches report messages-per-transaction, the
// metric callback-locking papers optimize.
//
// The API is layered (DESIGN.md §11): the *non-blocking* surface —
// TrySend/TryRecv over explicit continuation buffers, returning WouldBlock
// when the wire stalls mid-frame — is the one framing implementation; the
// blocking Send/Recv calls are thin wrappers that poll until the same
// continuations complete. The server's reactor drives the Try* surface on
// epoll-readiness; clients and tests keep the simple blocking calls.
#ifndef BESS_OS_SOCKET_H_
#define BESS_OS_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace bess {

/// One framed message: a small type tag, a pipelining correlation id, a
/// request deadline, and an opaque payload. Replies echo the request's id so
/// a connection can carry many in-flight RPCs (req_id 0 = unpipelined
/// request/response). `deadline_ms` is the sender's remaining time budget
/// (relative, so peers need no clock agreement): 0 = no deadline; a server
/// sheds queued work whose budget expired before dispatch instead of
/// executing it (DESIGN.md §12).
struct Message {
  uint16_t type = 0;
  uint64_t req_id = 0;
  uint32_t deadline_ms = 0;
  std::string payload;
};

/// Unsent framed bytes of one or more queued messages. An explicit
/// continuation: TrySend flushes from it until the wire blocks, and the
/// caller retries the same continuation when the socket becomes writable.
struct SendContinuation {
  std::string buf;  ///< framed bytes (header + payload per message)
  size_t off = 0;   ///< bytes already on the wire

  bool empty() const { return off >= buf.size(); }
  size_t pending_bytes() const { return buf.size() - off; }
  void clear() {
    buf.clear();
    off = 0;
  }
};

/// Partially received frame. TryRecv accumulates into it across calls until
/// a whole message is available.
struct RecvContinuation {
  std::string buf;      ///< raw bytes of the current frame so far
  size_t target = 0;    ///< bytes needed before the next parse step (0 = init)
  bool have_header = false;

  bool mid_frame() const { return !buf.empty(); }
  void clear() {
    buf.clear();
    target = 0;
    have_header = false;
  }
};

/// A connected, bidirectional, message-framed socket. Move-only.
/// Thread-compatible: concurrent Send from multiple threads must be
/// externally serialized, likewise Recv.
class MsgSocket {
 public:
  /// Wire frame header: u32 payload length, u16 type, u64 request id,
  /// u32 deadline budget in ms (0 = none).
  static constexpr size_t kHeaderSize = 18;

  MsgSocket() = default;
  ~MsgSocket();
  MsgSocket(MsgSocket&& other) noexcept;
  MsgSocket& operator=(MsgSocket&& other) noexcept;
  MsgSocket(const MsgSocket&) = delete;
  MsgSocket& operator=(const MsgSocket&) = delete;

  /// Connects to a listening socket at `path`.
  static Result<MsgSocket> Connect(const std::string& path);

  /// Creates a connected socketpair (for in-process or fork-based peers).
  static Status Pair(MsgSocket* a, MsgSocket* b);

  bool valid() const { return fd_ >= 0; }

  // ---- non-blocking surface (the framing implementation) -------------------

  /// Appends one framed message to `cont` (no I/O, never blocks). Counts
  /// toward TotalMessagesSent. Several messages may be queued before a
  /// flush; they leave the wire back-to-back.
  static void QueueFrame(uint16_t type, uint64_t req_id, Slice payload,
                         SendContinuation* cont, uint32_t deadline_ms = 0);

  /// Writes as much of `cont` as the wire accepts. OK = continuation fully
  /// flushed; WouldBlock = partial progress, retry when writable (fault
  /// point "sock.trysend": a kFail spec with code kWouldBlock simulates
  /// EAGAIN, a kShortWrite spec lets only a prefix through per call).
  Status TrySend(SendContinuation* cont);

  /// Reads whatever is available into `cont`; OK when a complete message
  /// was assembled into `out` (continuation resets for the next frame).
  /// WouldBlock = frame still incomplete; Protocol on clean peer close.
  /// Fault point "sock.tryrecv".
  Status TryRecv(Message* out, RecvContinuation* cont);

  /// Switches O_NONBLOCK. The blocking wrappers work in either mode (they
  /// poll on WouldBlock), so reactor-owned sockets can stay non-blocking
  /// even when handed to blocking callers (e.g. the callback channel).
  Status SetNonBlocking(bool on);

  // ---- blocking wrappers ---------------------------------------------------

  /// Sends one message (applies the simulated latency first); blocks until
  /// the whole frame is on the wire. Thin wrapper over QueueFrame+TrySend.
  Status Send(uint16_t type, Slice payload, uint64_t req_id = 0,
              uint32_t deadline_ms = 0);

  /// Receives one message; blocks. Returns Protocol status on peer close.
  /// Thin wrapper over TryRecv.
  Result<Message> Recv();

  /// Receives one message if available within `timeout_ms`; kBusy on
  /// timeout. A negative timeout waits forever (poll-first: the fault point
  /// "sock.recv" is only consulted once data or close is pending).
  Result<Message> RecvTimeout(int timeout_ms);

  /// Simulated one-way latency added before each send, in microseconds.
  void set_simulated_latency_us(uint32_t us) { latency_us_ = us; }

  /// Identity string passed to fault injection as the detail (Connect sets
  /// it to the peer path; accepted/pair sockets default to empty). Lets a
  /// FaultSpec.detail_filter target e.g. only client-side sockets.
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  int fd() const { return fd_; }

  void Close();

  /// Shuts the connection down (both directions) without closing the fd:
  /// unblocks a thread parked in Recv on this socket from another thread.
  void Shutdown();

  /// Process-wide count of messages sent (benchmark metric).
  static uint64_t TotalMessagesSent();
  static void ResetMessageCounter();

 private:
  friend class MsgListener;
  explicit MsgSocket(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint32_t latency_us_ = 0;
  std::string name_;
};

/// A listening Unix-domain socket accepting MsgSocket connections.
class MsgListener {
 public:
  MsgListener() = default;
  ~MsgListener();
  MsgListener(MsgListener&& other) noexcept;
  MsgListener& operator=(MsgListener&& other) noexcept;
  MsgListener(const MsgListener&) = delete;
  MsgListener& operator=(const MsgListener&) = delete;

  /// Binds and listens at `path`. A stale socket file (no live listener) is
  /// removed; if a live server answers a probe connect, returns kBusy rather
  /// than yanking the socket out from under it.
  static Result<MsgListener> Listen(const std::string& path);

  /// Accepts one connection; blocks.
  Result<MsgSocket> Accept();

  /// Accepts with a timeout: kBusy if nothing arrives within `timeout_ms`
  /// (lets accept loops poll a stop flag; plain shutdown()/close() does not
  /// reliably unblock accept on all kernels).
  Result<MsgSocket> AcceptTimeout(int timeout_ms);

  /// Accepts without blocking: WouldBlock when no connection is pending.
  /// The reactor drains pending connections on epoll readiness with this.
  Result<MsgSocket> TryAccept();

  /// Switches O_NONBLOCK on the listening fd (for epoll-driven accept).
  Status SetNonBlocking(bool on);

  /// Unblocks a thread parked in Accept (call before Close from another
  /// thread).
  void Shutdown();

  void Close();
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  MsgListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

}  // namespace bess

#endif  // BESS_OS_SOCKET_H_
