// Baseline page caches for the replacement-policy comparison (§4.2).
//
// BeSS cannot run the textbook clock because "the cache manager does not
// have enough information indicating which slots have been accessed
// recently due to the memory mapping architecture" — applications touch
// pages through raw pointers, invisible to a function-call cache. These
// baselines model that classic world: they only learn about accesses that
// arrive through Fix(). bench_clock feeds all caches the same trace, where
// a fraction of accesses are raw pointer touches, and reports hit rates:
// the protection-state clock (PrivateBufferPool) sees the touches via
// faults, these baselines do not.
//
// Both baselines are heap-placement configurations of the common frame
// core (cache/frame_table.h) — same state machine as the real pools, just
// with no protection hooks and the classic policies ("lru", "clock").
#ifndef BESS_BASELINE_REPLACEMENT_H_
#define BESS_BASELINE_REPLACEMENT_H_

#include "cache/frame_table.h"
#include "storage/storage_area.h"
#include "util/config.h"
#include "util/status.h"
#include "vm/segment_store.h"

namespace bess {

/// Common interface so the bench can drive every cache identically.
class PageCacheBase {
 public:
  struct Stats {
    uint64_t fixes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  virtual ~PageCacheBase() = default;
  /// Explicit page access (the only signal these baselines receive).
  virtual Result<void*> Fix(PageAddr page, bool for_write) = 0;
  virtual Status FlushDirty() = 0;
  const Stats& stats() const { return stats_; }

 protected:
  Stats stats_;
};

/// A frame-core configuration with heap frames and a classic policy.
class ClassicPool : public PageCacheBase {
 public:
  ClassicPool(uint32_t frame_count, SegmentStore* store,
              const std::string& policy);
  Result<void*> Fix(PageAddr page, bool for_write) override;
  Status FlushDirty() override;

 private:
  static FrameTable::Options MakeOptions(uint32_t frame_count,
                                         const std::string& policy);
  void RefreshStats();

  HeapPlacement placement_;
  StorePageIo io_;
  FrameTable table_;
  Status init_;
};

/// Strict LRU (the frame core's "lru" = LRU-K with K = 1).
class LruPool : public ClassicPool {
 public:
  LruPool(uint32_t frame_count, SegmentStore* store)
      : ClassicPool(frame_count, store, "lru") {}
};

/// Textbook clock: one reference bit per frame, set on Fix.
class ClassicClockPool : public ClassicPool {
 public:
  ClassicClockPool(uint32_t frame_count, SegmentStore* store)
      : ClassicPool(frame_count, store, "clock") {}
};

}  // namespace bess

#endif  // BESS_BASELINE_REPLACEMENT_H_
