// Baseline page caches for the replacement-policy comparison (§4.2).
//
// BeSS cannot run the textbook clock because "the cache manager does not
// have enough information indicating which slots have been accessed
// recently due to the memory mapping architecture" — applications touch
// pages through raw pointers, invisible to a function-call cache. These
// baselines model that classic world: they only learn about accesses that
// arrive through Fix(). bench_clock feeds all caches the same trace, where
// a fraction of accesses are raw pointer touches, and reports hit rates:
// the protection-state clock (PrivateBufferPool) sees the touches via
// faults, these baselines do not.
#ifndef BESS_BASELINE_REPLACEMENT_H_
#define BESS_BASELINE_REPLACEMENT_H_

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/storage_area.h"
#include "util/config.h"
#include "util/status.h"
#include "vm/segment_store.h"

namespace bess {

/// Common interface so the bench can drive every cache identically.
class PageCacheBase {
 public:
  struct Stats {
    uint64_t fixes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  virtual ~PageCacheBase() = default;
  /// Explicit page access (the only signal these baselines receive).
  virtual Result<void*> Fix(PageAddr page, bool for_write) = 0;
  virtual Status FlushDirty() = 0;
  const Stats& stats() const { return stats_; }

 protected:
  Stats stats_;
};

/// Strict LRU with a doubly-linked recency list.
class LruPool : public PageCacheBase {
 public:
  LruPool(uint32_t frame_count, SegmentStore* store);
  Result<void*> Fix(PageAddr page, bool for_write) override;
  Status FlushDirty() override;

 private:
  struct Frame {
    uint64_t key = 0;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_pos;
  };
  uint32_t frame_count_;
  SegmentStore* store_;
  std::vector<std::string> data_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_;
  std::list<uint32_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, uint32_t> table_;
};

/// Textbook clock: one reference bit per frame, set on Fix.
class ClassicClockPool : public PageCacheBase {
 public:
  ClassicClockPool(uint32_t frame_count, SegmentStore* store);
  Result<void*> Fix(PageAddr page, bool for_write) override;
  Status FlushDirty() override;

 private:
  struct Frame {
    uint64_t key = 0;
    bool used = false;
    bool ref_bit = false;
    bool dirty = false;
  };
  Result<uint32_t> Victim();
  uint32_t frame_count_;
  SegmentStore* store_;
  std::vector<std::string> data_;
  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, uint32_t> table_;
  uint32_t hand_ = 0;
};

}  // namespace bess

#endif  // BESS_BASELINE_REPLACEMENT_H_
