#include "baseline/replacement.h"

namespace bess {

FrameTable::Options ClassicPool::MakeOptions(uint32_t frame_count,
                                             const std::string& policy) {
  FrameTable::Options opts;
  opts.frame_count = frame_count;
  opts.policy = policy;
  return opts;
}

ClassicPool::ClassicPool(uint32_t frame_count, SegmentStore* store,
                         const std::string& policy)
    : placement_(frame_count),
      io_(store),
      table_(MakeOptions(frame_count, policy), &placement_, &io_),
      init_(table_.Init()) {}

void ClassicPool::RefreshStats() {
  const FrameTable::Stats t = table_.stats();
  stats_.fixes = t.fixes;
  stats_.hits = t.hits;
  stats_.misses = t.misses;
  stats_.evictions = t.evictions;
}

Result<void*> ClassicPool::Fix(PageAddr page, bool for_write) {
  BESS_RETURN_IF_ERROR(init_);
  auto r = table_.Fix(page.Pack(), for_write);
  RefreshStats();
  BESS_RETURN_IF_ERROR(r.status());
  return r->data;
}

Status ClassicPool::FlushDirty() {
  BESS_RETURN_IF_ERROR(init_);
  return table_.FlushDirty();
}

}  // namespace bess
