#include "baseline/replacement.h"

namespace bess {

// ---- LruPool ------------------------------------------------------------------

LruPool::LruPool(uint32_t frame_count, SegmentStore* store)
    : frame_count_(frame_count), store_(store) {
  data_.resize(frame_count);
  frames_.resize(frame_count);
  for (uint32_t f = 0; f < frame_count; ++f) {
    data_[f].resize(kPageSize);
    free_.push_back(frame_count - 1 - f);
  }
}

Result<void*> LruPool::Fix(PageAddr page, bool for_write) {
  stats_.fixes++;
  const uint64_t key = page.Pack();
  auto it = table_.find(key);
  if (it != table_.end()) {
    const uint32_t f = it->second;
    lru_.erase(frames_[f].lru_pos);
    lru_.push_front(f);
    frames_[f].lru_pos = lru_.begin();
    frames_[f].dirty |= for_write;
    stats_.hits++;
    return data_[f].data();
  }
  uint32_t f;
  if (!free_.empty()) {
    f = free_.back();
    free_.pop_back();
  } else {
    f = lru_.back();
    lru_.pop_back();
    Frame& victim = frames_[f];
    if (victim.dirty) {
      const PageAddr addr = PageAddr::Unpack(victim.key);
      BESS_RETURN_IF_ERROR(store_->WritePages(addr.db, addr.area, addr.page,
                                              1, data_[f].data()));
    }
    table_.erase(victim.key);
    stats_.evictions++;
  }
  BESS_RETURN_IF_ERROR(
      store_->FetchPages(page.db, page.area, page.page, 1, data_[f].data()));
  lru_.push_front(f);
  frames_[f] = Frame{key, for_write, lru_.begin()};
  table_[key] = f;
  stats_.misses++;
  return data_[f].data();
}

Status LruPool::FlushDirty() {
  for (uint32_t f = 0; f < frame_count_; ++f) {
    if (frames_[f].key == 0 || !frames_[f].dirty) continue;
    const PageAddr addr = PageAddr::Unpack(frames_[f].key);
    BESS_RETURN_IF_ERROR(store_->WritePages(addr.db, addr.area, addr.page, 1,
                                            data_[f].data()));
    frames_[f].dirty = false;
  }
  return Status::OK();
}

// ---- ClassicClockPool ------------------------------------------------------------

ClassicClockPool::ClassicClockPool(uint32_t frame_count, SegmentStore* store)
    : frame_count_(frame_count), store_(store) {
  data_.resize(frame_count);
  frames_.resize(frame_count);
  for (auto& d : data_) d.resize(kPageSize);
}

Result<uint32_t> ClassicClockPool::Victim() {
  for (uint32_t step = 0; step < 2 * frame_count_ + 1; ++step) {
    const uint32_t f = hand_;
    hand_ = (hand_ + 1) % frame_count_;
    Frame& frame = frames_[f];
    if (!frame.used) return f;
    if (frame.ref_bit) {
      frame.ref_bit = false;  // second chance
      continue;
    }
    if (frame.dirty) {
      const PageAddr addr = PageAddr::Unpack(frame.key);
      BESS_RETURN_IF_ERROR(store_->WritePages(addr.db, addr.area, addr.page,
                                              1, data_[f].data()));
    }
    table_.erase(frame.key);
    frame = Frame{};
    stats_.evictions++;
    return f;
  }
  return Status::Internal("clock failed to find a victim");
}

Result<void*> ClassicClockPool::Fix(PageAddr page, bool for_write) {
  stats_.fixes++;
  const uint64_t key = page.Pack();
  auto it = table_.find(key);
  if (it != table_.end()) {
    Frame& frame = frames_[it->second];
    frame.ref_bit = true;  // the only access signal this design gets
    frame.dirty |= for_write;
    stats_.hits++;
    return data_[it->second].data();
  }
  BESS_ASSIGN_OR_RETURN(uint32_t f, Victim());
  BESS_RETURN_IF_ERROR(
      store_->FetchPages(page.db, page.area, page.page, 1, data_[f].data()));
  frames_[f] = Frame{key, true, true, for_write};
  table_[key] = f;
  stats_.misses++;
  return data_[f].data();
}

Status ClassicClockPool::FlushDirty() {
  for (uint32_t f = 0; f < frame_count_; ++f) {
    if (!frames_[f].used || !frames_[f].dirty) continue;
    const PageAddr addr = PageAddr::Unpack(frames_[f].key);
    BESS_RETURN_IF_ERROR(store_->WritePages(addr.db, addr.area, addr.page, 1,
                                            data_[f].data()));
    frames_[f].dirty = false;
  }
  return Status::OK();
}

}  // namespace bess
