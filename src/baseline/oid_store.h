// Dereference baselines for bench_deref (paper §5).
//
// OidStore models EOS and similar systems where "inter-object references
// are OIDs": following a reference means decoding the OID and looking the
// object up in a resident-object hash table on every dereference —
// "pointer dereference in EOS is somewhat slow" (§5).
//
// SwizzlingStore models the software-swizzling alternative (White & DeWitt
// [33]): on fetch, every reference in the loaded objects is eagerly
// converted to a direct pointer into the in-memory copies; dereference is
// then a plain pointer chase, but the conversion pass is paid up front for
// every loaded object whether or not it is ever followed.
//
// BeSS's own scheme (virtual-memory pointers to object headers, fixed at
// segment-fault time) is benchmarked through the real SegmentMapper.
#ifndef BESS_BASELINE_OID_STORE_H_
#define BESS_BASELINE_OID_STORE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace bess {

/// EOS-style: every dereference is a hash-table lookup keyed by OID.
class OidStore {
 public:
  using ObjectId = uint64_t;

  /// Creates an object of `size` bytes; reference fields (at `ref_offsets`)
  /// will later be filled with ObjectIds.
  ObjectId Create(uint32_t size) {
    const ObjectId id = next_id_++;
    objects_[id] = std::make_unique<char[]>(size);
    return id;
  }

  /// The per-dereference cost this design pays: one hash lookup.
  void* Deref(ObjectId id) const {
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.get();
  }

  size_t size() const { return objects_.size(); }

 private:
  ObjectId next_id_ = 1;
  std::unordered_map<ObjectId, std::unique_ptr<char[]>> objects_;
};

/// Software swizzling: an explicit conversion pass turns every stored
/// ObjectId field into a direct pointer; dereference is then free.
class SwizzlingStore {
 public:
  using ObjectId = uint64_t;

  ObjectId Create(uint32_t size) {
    const ObjectId id = next_id_++;
    objects_[id] = std::make_unique<char[]>(size);
    return id;
  }

  void* Raw(ObjectId id) const {
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.get();
  }

  /// The up-front cost this design pays: walk every object and rewrite
  /// every reference field from ObjectId to pointer. Returns the number of
  /// references converted.
  uint64_t SwizzleAll(const std::vector<uint32_t>& ref_offsets) {
    uint64_t converted = 0;
    for (auto& [id, bytes] : objects_) {
      (void)id;
      for (uint32_t off : ref_offsets) {
        auto* field = reinterpret_cast<uint64_t*>(bytes.get() + off);
        if (*field == 0 || (*field & 1) == 0) continue;  // null or done
        const ObjectId target = *field >> 1;
        *field = reinterpret_cast<uint64_t>(Raw(target));
        ++converted;
      }
    }
    return converted;
  }

  /// Stores an unswizzled reference (tagged, like an on-disk form).
  static uint64_t PackRef(ObjectId id) { return (id << 1) | 1; }

  size_t size() const { return objects_.size(); }

 private:
  ObjectId next_id_ = 1;
  std::unordered_map<ObjectId, std::unique_ptr<char[]>> objects_;
};

}  // namespace bess

#endif  // BESS_BASELINE_OID_STORE_H_
