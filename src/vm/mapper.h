// SegmentMapper: the heart of BeSS's fast object-reference machinery
// (paper §2.1–§2.3).
//
// The mapper gives every slotted segment and every data segment a range of
// reserved (PROT_NONE) virtual addresses inside one arena. Accessing an
// object then unfolds in the paper's "three waves":
//
//   wave 1  a reference is swizzled: the target's *slotted* segment gets a
//           reserved address range (cheap — no fetch, no physical memory);
//   wave 2  touching the slot faults: the slotted segment is fetched, the
//           DP field of every slot is fixed with simple arithmetic to point
//           into a freshly *reserved* data-segment range, and outgoing
//           references are not yet touched;
//   wave 3  touching the object data faults: the data segment is fetched
//           and every reference in it (located via type descriptors) is
//           swizzled to the virtual address of the target slot — which may
//           start the next wave 1.
//
// Reservation is deliberately lazy ("less greedy" than ObjectStore / Texas /
// QuickStore): data-segment address space is reserved only when the owning
// slotted segment is actually fetched. A `greedy` option reproduces the
// eager behaviour as a baseline for bench_reserve.
//
// Update detection (§2.3): fetched data pages are mapped read-only; the
// first store to a page faults, the mapper records the page in the
// transaction's write set (via the AccessObserver, which also acquires the
// lock) and grants write access before the instruction resumes.
//
// Corruption prevention (§2.2): slotted segments are mapped write-protected;
// stray application stores into control structures fault and are *not*
// resolved. BeSS's own mutations run under SlottedWriteGuard, which
// unprotects, mutates, reprotects, and marks the segment dirty.
#ifndef BESS_VM_MAPPER_H_
#define BESS_VM_MAPPER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/fault_dispatcher.h"
#include "segment/slotted_view.h"
#include "segment/type_descriptor.h"
#include "vm/arena.h"
#include "vm/segment_store.h"

namespace bess {

/// Receives read/write access notifications; the transaction layer uses
/// them to acquire locks and maintain read/write sets automatically.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  /// A segment was fetched (first read access). Called with mapper lock held.
  virtual Status OnSegmentRead(SegmentId id) = 0;
  /// A page is about to become writable (first store). `page` is the
  /// absolute page address. Called from the fault path.
  virtual Status OnPageWrite(SegmentId id, PageAddr page) = 0;
};

/// A page image in on-disk form, produced at write-back time.
struct PageImage {
  uint16_t db = 0;
  uint16_t area = 0;
  PageId page = kInvalidPage;
  std::string bytes;  // kPageSize
};

class SegmentMapper : public FaultRangeOwner {
 public:
  struct Options {
    size_t arena_bytes = 1ull << 36;  ///< 64 GiB of reservable addresses
    bool protect_slotted = true;      ///< corruption prevention (§2.2)
    bool detect_writes = true;        ///< hardware update detection (§2.3)
    /// Baseline for bench_reserve: fetch referenced slotted segments (and
    /// hence reserve their data ranges) eagerly at swizzle time, like the
    /// greedy schemes of [19, 30, 34].
    bool greedy = false;
    /// Data-segment reservations get this growth headroom factor so resizes
    /// stay in place.
    uint32_t data_headroom = 4;
    /// Optional fetch observer: a caching store layer registers here to see
    /// which page runs fault in, feeding its sequential-run prefetcher.
    PrefetchSink* prefetch_sink = nullptr;
  };

  struct Stats {
    uint64_t slotted_faults = 0;
    uint64_t data_faults = 0;
    uint64_t write_faults = 0;
    uint64_t large_faults = 0;
    uint64_t swizzled_refs = 0;
    uint64_t unswizzled_refs = 0;
    uint64_t bytes_fetched = 0;
    uint64_t reserved_bytes = 0;   ///< address space handed out (current)
    uint64_t committed_bytes = 0;  ///< memory actually populated (current)
  };

  SegmentMapper(SegmentStore* store, TypeTable* types, Options opts);
  SegmentMapper(SegmentStore* store, TypeTable* types);
  ~SegmentMapper() override;
  SegmentMapper(const SegmentMapper&) = delete;
  SegmentMapper& operator=(const SegmentMapper&) = delete;

  // ---- References and object access ----------------------------------------

  /// Address of slot `slot_no` of segment `id`, reserving address space for
  /// the segment if this is its first appearance (wave 1). Touching the
  /// result faults the slotted segment in (wave 2).
  Result<Slot*> SlotAddress(SegmentId id, uint16_t slot_no);

  /// Reverse translation: which segment/slot does a swizzled pointer refer
  /// to? Works for reserved-but-unfetched segments too.
  Status ResolveSlotAddress(const void* slot_addr, SegmentId* id,
                            uint16_t* slot_no);

  /// Forces the slotted segment in (fetch now instead of on first touch).
  Result<SlottedView> FetchSlottedNow(SegmentId id);

  /// Forces the data segment in.
  Status FetchDataNow(SegmentId id);

  // ---- Object lifecycle -----------------------------------------------------

  /// Creates an object of `size` bytes in segment `id` (which must have
  /// room). Returns its slot. The object is zeroed unless `init` is given.
  Result<Slot*> CreateObject(SegmentId id, TypeIdx type, uint32_t size,
                             const void* init = nullptr);

  /// Creates a transparent large object: the slot points at a dedicated
  /// reserved range backed by its own disk segment (`area`/`first_page`).
  Result<Slot*> CreateLargeObject(SegmentId id, TypeIdx type, uint32_t size,
                                  uint16_t lo_area, PageId lo_first_page,
                                  uint16_t lo_pages);

  /// Deletes the object held by `slot` of segment `id`; its data bytes
  /// become a hole until compaction.
  Status DeleteObject(SegmentId id, uint16_t slot_no);

  /// Marks [ptr, ptr+len) dirty without a protection fault — used by the
  /// software update-detection baseline and by internal writers.
  Status MarkDirty(const void* ptr, size_t len);

  // ---- Reorganization (§2.1: references survive all of these) --------------

  /// Moves/resizes the data segment to a new disk location. In-memory
  /// object addresses are preserved when the new size fits the existing
  /// reservation; otherwise DPs are adjusted by the base delta (the paper's
  /// two arithmetic operations). References (which point at slots) are
  /// never affected.
  Status RelocateData(SegmentId id, uint16_t new_area, PageId new_first_page,
                      uint32_t new_page_count);

  /// Squeezes holes out of the data segment; DPs updated, references
  /// untouched.
  Status CompactData(SegmentId id);

  // ---- Transaction support --------------------------------------------------

  /// Predicates selecting which dirty state belongs to the caller's
  /// transaction: `seg_pred` gates slotted images, `page_pred` gates data /
  /// large pages. Null predicates select everything.
  using SegPred = std::function<bool(SegmentId)>;
  using PagePred = std::function<bool(PageAddr)>;

  /// Produces disk-form images of every dirty page (slotted segments with
  /// runtime fields cleared and DPs converted back to disk form; data pages
  /// with references unswizzled).
  Status CollectDirty(std::vector<PageImage>* out);

  /// Filtered variant for multi-transaction use: collects only the caller's
  /// pages. A slotted image is also collected when unswizzling the caller's
  /// data pages extended the outbound table (the two must persist together).
  Status CollectDirtyFor(std::vector<PageImage>* out, const SegPred& seg_pred,
                         const PagePred& page_pred);

  /// After a successful write-back: clears dirty state and re-protects data
  /// pages read-only so future writes are detected again.
  Status MarkClean();

  /// Filtered variant matching CollectDirtyFor.
  Status MarkCleanFor(const SegPred& seg_pred, const PagePred& page_pred);

  /// Abort support: restores the in-memory pre-write image of one page
  /// (captured at its first write fault) and re-protects it. Falls back to
  /// evicting the whole segment when no undo image exists.
  Status RevertPage(PageAddr page);

  /// CollectDirty + SegmentStore::WritePages + MarkClean.
  Status WriteBackAll();

  /// Abort support: drops segments that have dirty pages (they will refault
  /// with on-disk state); clean cached segments stay mapped.
  Status DiscardDirty();

  /// Decommits one segment's memory but keeps its address ranges reserved,
  /// so swizzled pointers into it stay valid and simply refault ("protected"
  /// frame state of §4.2). Dirty state must have been written back or be
  /// intentionally dropped (`drop_dirty`).
  Status Evict(SegmentId id, bool drop_dirty = false);

  /// Decommits every segment but keeps all address ranges reserved:
  /// references stay valid and refault from the store on next touch (the
  /// node-less client's end-of-transaction cache drop, §3).
  Status EvictAll(bool drop_dirty = false);

  /// Drops every mapping and reservation (end of process / cache clear).
  Status Reset();

  /// Installs a freshly formatted segment (no store fetch): used by object
  /// creation when a new object segment is allocated.
  Result<SlottedView> InstallNewSegment(SegmentId id, uint16_t file_id,
                                        uint32_t slotted_page_count,
                                        uint32_t slot_capacity,
                                        uint16_t outbound_capacity,
                                        uint16_t data_area,
                                        PageId data_first_page,
                                        uint32_t data_page_count);

  /// View over a mapped slotted segment (fetches it if needed).
  Result<SlottedView> View(SegmentId id);

  /// Runs `fn` with the slotted segment temporarily write-enabled and marks
  /// it dirty — the §2.2 unprotect/mutate/reprotect discipline.
  Status WithSlottedWritable(SegmentId id,
                             const std::function<Status(SlottedView&)>& fn);

  /// True when the segment is fetched (not merely reserved).
  bool IsMapped(SegmentId id);
  /// True if any address range is assigned to this segment.
  bool IsKnown(SegmentId id);

  void set_observer(AccessObserver* obs) { observer_ = obs; }

  bool OnFault(void* addr, bool is_write) override;

  Stats stats() const;
  SegmentStore* store() const { return store_; }
  TypeTable* types() const { return types_; }

 private:
  enum class Kind : uint8_t { kSlotted, kData, kLarge };
  enum PageState : uint8_t { kUnmapped = 0, kMappedRead = 1, kMappedDirty = 2 };

  struct LargeRange {
    uint16_t slot_no = 0;
    void* base = nullptr;
    size_t reserved = 0;
    bool mapped = false;
    uint16_t area = 0;
    PageId first_page = kInvalidPage;
    uint16_t page_count = 0;
    std::vector<uint8_t> page_state;
    std::unordered_map<uint32_t, std::string> page_undo;
  };

  // The paper's "segment handle": run-time control info for one segment.
  struct MappedSegment {
    SegmentId id;
    bool slotted_mapped = false;
    void* slotted_base = nullptr;
    size_t slotted_reserved = 0;
    uint32_t slotted_pages = 0;  // actual, once fetched
    bool slotted_dirty = false;

    void* data_base = nullptr;
    size_t data_reserved = 0;
    bool data_mapped = false;
    bool data_on_store = true;  // false for brand-new segments never written
    std::vector<uint8_t> data_page_state;
    std::unordered_map<uint32_t, std::string> data_page_undo;

    std::unordered_map<uint16_t, LargeRange> large;  // by slot_no
  };

  struct Range {
    uintptr_t begin;
    uintptr_t end;
    MappedSegment* seg;
    Kind kind;
    uint16_t slot_no;  // for kLarge
  };

  // All Locked methods require mu_ held. Public entry points lock exactly
  // once and delegate here; internal code never calls a public entry point
  // (mu_ is a plain mutex — no hidden re-entrancy).
  Result<MappedSegment*> EnsureReservedLocked(SegmentId id);
  Status WithSlottedWritableLocked(MappedSegment* seg,
                                   const std::function<Status(SlottedView&)>&
                                       fn);
  Status MarkDirtyLocked(const void* ptr, size_t len);
  Status ResolveSlotAddressLocked(const void* slot_addr, SegmentId* id,
                                  uint16_t* slot_no);
  Status EvictLocked(SegmentId id, bool drop_dirty);
  Status CollectDirtyForLocked(std::vector<PageImage>* out,
                               const SegPred& seg_pred,
                               const PagePred& page_pred);
  Status MarkCleanForLocked(const SegPred& seg_pred, const PagePred& page_pred);
  Status FaultSlottedLocked(MappedSegment* seg);
  Status FaultDataLocked(MappedSegment* seg);
  Status FaultLargeLocked(MappedSegment* seg, LargeRange* lr);
  Status WriteFaultLocked(MappedSegment* seg, Kind kind, LargeRange* lr,
                          void* addr);
  Status EnsureSlottedMappedLocked(MappedSegment* seg);
  Status EnsureDataMappedLocked(MappedSegment* seg);
  Status SwizzleDataLocked(MappedSegment* seg);
  Status ReserveDataRangeLocked(MappedSegment* seg, uint32_t data_pages);
  Status SetupAfterSlottedFetchLocked(MappedSegment* seg);
  Result<LargeRange*> ReserveLargeLocked(MappedSegment* seg, uint16_t slot_no,
                                         uint16_t area, PageId first_page,
                                         uint16_t pages, uint32_t size);
  Status CollectDirtyLocked(MappedSegment* seg, std::vector<PageImage>* out,
                            const SegPred& seg_pred,
                            const PagePred& page_pred);
  Status UnswizzleImageLocked(MappedSegment* seg, std::string* data_copy,
                              bool* outbound_changed);
  Status BuildDiskSlottedLocked(MappedSegment* seg, std::string* out);
  void AddRangeLocked(void* base, size_t len, MappedSegment* seg, Kind kind,
                      uint16_t slot_no = 0);
  void DropRangeLocked(void* base);
  Range* FindRangeLocked(const void* addr);
  Status DecommitSegmentLocked(MappedSegment* seg);
  Status ReleaseSegmentLocked(MappedSegment* seg);
  PageAddr DataPageAddr(MappedSegment* seg, uint32_t page_idx);
  SlottedView MappedView(MappedSegment* seg) {
    return SlottedView(seg->slotted_base,
                       static_cast<size_t>(seg->slotted_pages) * kPageSize);
  }

  SegmentStore* store_;
  TypeTable* types_;
  Options opts_;
  AddressArena arena_;
  int dispatcher_slot_ = -1;
  AccessObserver* observer_ = nullptr;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<MappedSegment>> segments_;
  std::map<uintptr_t, Range> ranges_;  // by begin address
  Stats stats_;
};

}  // namespace bess

#endif  // BESS_VM_MAPPER_H_
