// An in-memory SegmentStore: a page map keyed by (db, area, page).
// Used by unit tests and micro-benchmarks to exercise the mapper without
// disk I/O, and by fault-injection tests (it can fail on demand).
#ifndef BESS_VM_MEM_STORE_H_
#define BESS_VM_MEM_STORE_H_

#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

#include "os/fault_injection.h"
#include "vm/segment_store.h"

namespace bess {

/// Fetches a slotted segment via FetchPages: reads the first page, parses
/// the header for the true page count, then reads the rest. Any
/// SegmentStore whose slotted segments live in its page space can use this.
Status GenericFetchSlotted(SegmentStore* store, SegmentId id, void* buf,
                           uint32_t* page_count);

class InMemoryStore : public SegmentStore {
 public:
  Status FetchSlotted(SegmentId id, void* buf, uint32_t* page_count) override {
    return GenericFetchSlotted(this, id, buf, page_count);
  }

  Status FetchPages(uint16_t db, uint16_t area, PageId first,
                    uint32_t page_count, void* buf) override;

  Status WritePages(uint16_t db, uint16_t area, PageId first,
                    uint32_t page_count, const void* buf) override;

  /// Fail the next `n` fetches with IOError. Convenience wrapper arming the
  /// central "memstore.fetch" point (fault::FaultRegistry); tests that need
  /// richer schedules — probabilistic faults, write-back failures, crashes —
  /// arm "memstore.fetch" / "memstore.write" directly.
  void FailNextFetches(int n) {
    fault::FaultSpec spec;
    spec.count = n;
    spec.message = "injected fetch failure";
    fault::FaultRegistry::Instance().Arm("memstore.fetch", std::move(spec));
  }
  /// Fail the next `n` write-backs with IOError.
  void FailNextWrites(int n) {
    fault::FaultSpec spec;
    spec.count = n;
    spec.message = "injected write failure";
    fault::FaultRegistry::Instance().Arm("memstore.write", std::move(spec));
  }

  uint64_t pages_fetched() const { return pages_fetched_; }
  uint64_t pages_written() const { return pages_written_; }
  size_t page_count() const;

 private:
  static uint64_t Key(uint16_t db, uint16_t area, PageId page) {
    return PageAddr{db, area, page}.Pack();
  }

  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, std::string> pages_;
  uint64_t pages_fetched_ = 0;
  uint64_t pages_written_ = 0;
};

}  // namespace bess

#endif  // BESS_VM_MEM_STORE_H_
