// AddressArena: a large PROT_NONE reservation from which the mapper carves
// per-segment address ranges. Reserving virtual addresses costs no physical
// memory; a range is only committed when its segment is fetched. Keeping all
// ranges inside one arena lets the fault dispatcher route every BeSS fault
// with a single registered range.
#ifndef BESS_VM_ARENA_H_
#define BESS_VM_ARENA_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace bess {

class AddressArena {
 public:
  /// Reserves `bytes` (page-aligned) of inaccessible address space.
  static Result<AddressArena> Create(size_t bytes);

  AddressArena() = default;
  ~AddressArena();
  AddressArena(AddressArena&& other) noexcept;
  AddressArena& operator=(AddressArena&& other) noexcept;
  AddressArena(const AddressArena&) = delete;
  AddressArena& operator=(const AddressArena&) = delete;

  /// Hands out a sub-range of `bytes` (rounded up to pages) in PROT_NONE
  /// state. NoSpace when the arena is exhausted.
  Result<void*> Acquire(size_t bytes);

  /// Returns a sub-range: decommits any physical memory and recycles the
  /// addresses for future Acquire calls of the same size.
  Status Release(void* base, size_t bytes);

  void* base() const { return base_; }
  size_t size() const { return size_; }
  bool Contains(const void* p) const {
    return p >= base_ && p < static_cast<const char*>(base_) + size_;
  }

 private:
  AddressArena(void* base, size_t size) : base_(base), size_(size) {}

  void* base_ = nullptr;
  size_t size_ = 0;
  size_t bump_ = 0;
  std::mutex mutex_;
  std::map<size_t, std::vector<void*>> free_lists_;
};

}  // namespace bess

#endif  // BESS_VM_ARENA_H_
