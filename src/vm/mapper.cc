#include "vm/mapper.h"

#include <algorithm>
#include <cstring>

#include "hooks/hooks.h"
#include "obs/metrics.h"
#include "os/vmem.h"
#include "util/logging.h"

namespace bess {
namespace {

constexpr size_t kSlottedReserve = kMaxSlottedPages * kPageSize;

size_t PagesFor(size_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }

}  // namespace

SegmentMapper::SegmentMapper(SegmentStore* store, TypeTable* types,
                             Options opts)
    : store_(store), types_(types), opts_(opts) {
  auto arena = AddressArena::Create(opts_.arena_bytes);
  if (!arena.ok()) {
    BESS_ERROR("mapper arena reservation failed: "
               << arena.status().ToString());
    return;
  }
  arena_ = std::move(*arena);
  dispatcher_slot_ = FaultDispatcher::Instance().RegisterRange(
      arena_.base(), arena_.size(), this);
}

SegmentMapper::SegmentMapper(SegmentStore* store, TypeTable* types)
    : SegmentMapper(store, types, Options()) {}

SegmentMapper::~SegmentMapper() {
  if (dispatcher_slot_ >= 0) {
    FaultDispatcher::Instance().UnregisterRange(dispatcher_slot_);
  }
}

// ---- range registry ---------------------------------------------------------

void SegmentMapper::AddRangeLocked(void* base, size_t len, MappedSegment* seg,
                                   Kind kind, uint16_t slot_no) {
  const uintptr_t begin = reinterpret_cast<uintptr_t>(base);
  ranges_[begin] = Range{begin, begin + len, seg, kind, slot_no};
}

void SegmentMapper::DropRangeLocked(void* base) {
  ranges_.erase(reinterpret_cast<uintptr_t>(base));
}

SegmentMapper::Range* SegmentMapper::FindRangeLocked(const void* addr) {
  const uintptr_t a = reinterpret_cast<uintptr_t>(addr);
  auto it = ranges_.upper_bound(a);
  if (it == ranges_.begin()) return nullptr;
  --it;
  if (a >= it->second.begin && a < it->second.end) return &it->second;
  return nullptr;
}

// ---- reservation (wave 1) ---------------------------------------------------

Result<SegmentMapper::MappedSegment*> SegmentMapper::EnsureReservedLocked(
    SegmentId id) {
  auto it = segments_.find(id.Pack());
  if (it != segments_.end()) return it->second.get();

  auto seg = std::make_unique<MappedSegment>();
  seg->id = id;
  BESS_ASSIGN_OR_RETURN(seg->slotted_base, arena_.Acquire(kSlottedReserve));
  seg->slotted_reserved = kSlottedReserve;
  stats_.reserved_bytes += kSlottedReserve;
  AddRangeLocked(seg->slotted_base, kSlottedReserve, seg.get(),
                 Kind::kSlotted);
  MappedSegment* raw = seg.get();
  segments_[id.Pack()] = std::move(seg);
  return raw;
}

Status SegmentMapper::ReserveDataRangeLocked(MappedSegment* seg,
                                             uint32_t data_pages) {
  if (data_pages == 0) return Status::OK();
  size_t want = static_cast<size_t>(data_pages) * kPageSize;
  want *= opts_.data_headroom > 0 ? opts_.data_headroom : 1;
  BESS_ASSIGN_OR_RETURN(seg->data_base, arena_.Acquire(want));
  seg->data_reserved = want;
  stats_.reserved_bytes += want;
  AddRangeLocked(seg->data_base, want, seg, Kind::kData);
  return Status::OK();
}

Result<SegmentMapper::LargeRange*> SegmentMapper::ReserveLargeLocked(
    MappedSegment* seg, uint16_t slot_no, uint16_t area, PageId first_page,
    uint16_t pages, uint32_t size) {
  LargeRange lr;
  lr.slot_no = slot_no;
  lr.area = area;
  lr.first_page = first_page;
  lr.page_count = pages;
  const size_t reserve = std::max<size_t>(PagesFor(size), pages) * kPageSize;
  BESS_ASSIGN_OR_RETURN(lr.base, arena_.Acquire(reserve));
  lr.reserved = reserve;
  lr.page_state.assign(pages, kUnmapped);
  stats_.reserved_bytes += reserve;
  auto [it, inserted] = seg->large.insert_or_assign(slot_no, lr);
  (void)inserted;
  AddRangeLocked(it->second.base, reserve, seg, Kind::kLarge, slot_no);
  return &it->second;
}

// ---- slotted fetch (wave 2) -------------------------------------------------

Status SegmentMapper::FaultSlottedLocked(MappedSegment* seg) {
  EventContext ctx;
  ctx.a = seg->id.Pack();
  (void)FireEvent(Event::kSegmentFault, ctx);

  std::string buf(kSlottedReserve, '\0');
  uint32_t page_count = 0;
  BESS_RETURN_IF_ERROR(store_->FetchSlotted(seg->id, buf.data(), &page_count));
  if (page_count == 0 || page_count > kMaxSlottedPages) {
    return Status::Corruption("slotted segment has bad page count");
  }
  const size_t bytes = static_cast<size_t>(page_count) * kPageSize;
  BESS_RETURN_IF_ERROR(
      vmem::CommitAnonymous(seg->slotted_base, bytes, vmem::kReadWrite));
  stats_.committed_bytes += bytes;
  stats_.bytes_fetched += bytes;
  memcpy(seg->slotted_base, buf.data(), bytes);
  seg->slotted_pages = page_count;

  SlottedView view(seg->slotted_base, bytes);
  BESS_RETURN_IF_ERROR(view.Validate());
  if (!(view.header()->self() == seg->id)) {
    return Status::Corruption("slotted segment identity mismatch");
  }
  BESS_RETURN_IF_ERROR(SetupAfterSlottedFetchLocked(seg));

  // Wave 2 strongly predicts wave 3: hint the data range to the prefetcher
  // so it can stage those pages before the first object access faults.
  if (opts_.prefetch_sink != nullptr && view.header()->data_page_count > 0) {
    opts_.prefetch_sink->NoteFetch(seg->id.db, view.header()->data_area,
                                   view.header()->data_first_page,
                                   view.header()->data_page_count);
  }

  if (opts_.protect_slotted) {
    BESS_RETURN_IF_ERROR(
        vmem::Protect(seg->slotted_base, bytes, vmem::kRead));
  }
  seg->slotted_mapped = true;
  stats_.slotted_faults++;
  BESS_COUNT("vm.fault.slotted");
  BESS_COUNT("cache.miss");

  (void)FireEvent(Event::kSegmentFetch, ctx);
  if (observer_ != nullptr) {
    BESS_RETURN_IF_ERROR(observer_->OnSegmentRead(seg->id));
  }
  return Status::OK();
}

Status SegmentMapper::SetupAfterSlottedFetchLocked(MappedSegment* seg) {
  SlottedView view(seg->slotted_base,
                   static_cast<size_t>(seg->slotted_pages) * kPageSize);
  SlottedHeader* h = view.header();
  h->segment_handle = reinterpret_cast<uint64_t>(seg);

  // Reserve the data-segment address range now — this is the lazy scheme:
  // reservation happens when the slotted segment is actually accessed.
  if (seg->data_base == nullptr && h->data_page_count > 0) {
    BESS_RETURN_IF_ERROR(ReserveDataRangeLocked(seg, h->data_page_count));
  }
  seg->data_page_state.assign(h->data_page_count, kUnmapped);
  h->last_data_base = reinterpret_cast<uint64_t>(seg->data_base);

  // Fix every slot's DP: offset -> virtual address (two arithmetic ops per
  // slot), and give transparent large objects their own reserved ranges.
  for (uint32_t i = 0; i < h->slot_count; ++i) {
    Slot* s = view.slot(static_cast<uint16_t>(i));
    if (!s->in_use()) continue;
    s->lock_ref = 0;
    if (s->flags & kSlotLargeObject) {
      uint16_t area, pages;
      PageId page;
      Slot::UnpackDiskAddr(s->dp, &area, &page, &pages);
      BESS_ASSIGN_OR_RETURN(
          LargeRange * lr,
          ReserveLargeLocked(seg, static_cast<uint16_t>(i), area, page, pages,
                             s->size));
      s->dp = reinterpret_cast<uint64_t>(lr->base);
    } else if (s->flags & (kSlotVeryLarge)) {
      // DP is an overflow-segment offset; the byte-range class interprets
      // it. Not a virtual address.
    } else {
      s->dp = reinterpret_cast<uint64_t>(seg->data_base) + s->dp;
    }
  }
  return Status::OK();
}

// ---- data fetch + swizzle (wave 3) ------------------------------------------

Status SegmentMapper::FaultDataLocked(MappedSegment* seg) {
  if (!seg->slotted_mapped) {
    BESS_RETURN_IF_ERROR(FaultSlottedLocked(seg));
  }
  SlottedView view = MappedView(seg);
  SlottedHeader* h = view.header();
  const size_t bytes = static_cast<size_t>(h->data_page_count) * kPageSize;
  if (bytes == 0) return Status::Corruption("data fault on empty segment");

  EventContext ctx;
  ctx.a = seg->id.Pack();
  (void)FireEvent(Event::kSegmentFault, ctx);

  BESS_RETURN_IF_ERROR(
      vmem::CommitAnonymous(seg->data_base, bytes, vmem::kReadWrite));
  stats_.committed_bytes += bytes;
  if (seg->data_on_store) {
    BESS_RETURN_IF_ERROR(store_->FetchPages(seg->id.db, h->data_area,
                                            h->data_first_page,
                                            h->data_page_count,
                                            seg->data_base));
    stats_.bytes_fetched += bytes;
    if (opts_.prefetch_sink != nullptr) {
      opts_.prefetch_sink->NoteFetch(seg->id.db, h->data_area,
                                     h->data_first_page, h->data_page_count);
    }
  }
  seg->data_mapped = true;
  seg->data_page_state.assign(h->data_page_count, kMappedRead);

  BESS_RETURN_IF_ERROR(SwizzleDataLocked(seg));

  if (opts_.detect_writes) {
    BESS_RETURN_IF_ERROR(vmem::Protect(seg->data_base, bytes, vmem::kRead));
  }
  stats_.data_faults++;
  BESS_COUNT("vm.fault.data");
  if (seg->data_on_store) BESS_COUNT("cache.miss");
  (void)FireEvent(Event::kSegmentFetch, ctx);
  return Status::OK();
}

Status SegmentMapper::SwizzleDataLocked(MappedSegment* seg) {
  SlottedView view = MappedView(seg);
  SlottedHeader* h = view.header();
  std::vector<SegmentId> greedy_targets;

  for (uint32_t i = 0; i < h->slot_count; ++i) {
    Slot* s = view.slot(static_cast<uint16_t>(i));
    if (!s->in_use() ||
        (s->flags & (kSlotLargeObject | kSlotVeryLarge))) {
      continue;
    }
    auto type = types_->Get(s->type_idx);
    if (!type.ok()) return type.status();
    const TypeDescriptor* desc = *type;
    if (desc->ref_offsets.empty()) continue;
    char* obj = reinterpret_cast<char*>(s->dp);
    for (uint32_t off : desc->ref_offsets) {
      if (off + 8 > s->size) continue;
      uint64_t* field = reinterpret_cast<uint64_t*>(obj + off);
      const uint64_t v = *field;
      if (v == 0 || !DiskRef::IsUnswizzled(v)) continue;
      BESS_ASSIGN_OR_RETURN(SegmentId target,
                            view.ResolveOutbound(DiskRef::OutboundIdx(v)));
      BESS_ASSIGN_OR_RETURN(MappedSegment * tseg,
                            EnsureReservedLocked(target));
      const uint16_t slot_no = DiskRef::SlotNo(v);
      *field = reinterpret_cast<uint64_t>(
          static_cast<char*>(tseg->slotted_base) + SlotOffset(slot_no));
      stats_.swizzled_refs++;
      BESS_COUNT("vm.ref.swizzle");
      if (opts_.greedy && !tseg->slotted_mapped) {
        greedy_targets.push_back(target);
      }
    }
  }

  // Greedy baseline: fetch referenced slotted segments now, reserving their
  // data ranges immediately (ObjectStore/Texas/QuickStore-style eagerness).
  for (SegmentId target : greedy_targets) {
    auto res = EnsureReservedLocked(target);
    if (res.ok() && !(*res)->slotted_mapped) {
      BESS_RETURN_IF_ERROR(FaultSlottedLocked(*res));
    }
  }
  return Status::OK();
}

Status SegmentMapper::FaultLargeLocked(MappedSegment* seg, LargeRange* lr) {
  const size_t bytes = static_cast<size_t>(lr->page_count) * kPageSize;
  BESS_RETURN_IF_ERROR(
      vmem::CommitAnonymous(lr->base, bytes, vmem::kReadWrite));
  stats_.committed_bytes += bytes;
  if (seg->data_on_store) {
    BESS_RETURN_IF_ERROR(store_->FetchPages(seg->id.db, lr->area,
                                            lr->first_page, lr->page_count,
                                            lr->base));
    stats_.bytes_fetched += bytes;
    if (opts_.prefetch_sink != nullptr) {
      opts_.prefetch_sink->NoteFetch(seg->id.db, lr->area, lr->first_page,
                                     lr->page_count);
    }
  }
  lr->mapped = true;
  lr->page_state.assign(lr->page_count, kMappedRead);
  if (opts_.detect_writes) {
    BESS_RETURN_IF_ERROR(vmem::Protect(lr->base, bytes, vmem::kRead));
  }
  stats_.large_faults++;
  BESS_COUNT("vm.fault.large");
  if (seg->data_on_store) BESS_COUNT("cache.miss");
  return Status::OK();
}

// ---- write faults: update detection (§2.3) ----------------------------------

PageAddr SegmentMapper::DataPageAddr(MappedSegment* seg, uint32_t page_idx) {
  SlottedView view = MappedView(seg);
  const SlottedHeader* h = view.header();
  return PageAddr{seg->id.db, h->data_area, h->data_first_page + page_idx};
}

Status SegmentMapper::WriteFaultLocked(MappedSegment* seg, Kind kind,
                                       LargeRange* lr, void* addr) {
  char* page_base;
  uint32_t page_idx;
  PageAddr page_addr;
  std::vector<uint8_t>* states;

  if (kind == Kind::kData) {
    page_idx = static_cast<uint32_t>(
        (static_cast<char*>(addr) - static_cast<char*>(seg->data_base)) /
        kPageSize);
    if (page_idx >= seg->data_page_state.size() ||
        seg->data_page_state[page_idx] == kUnmapped) {
      return Status::Internal("write fault on unmapped data page");
    }
    page_base = static_cast<char*>(seg->data_base) + page_idx * kPageSize;
    page_addr = DataPageAddr(seg, page_idx);
    states = &seg->data_page_state;
  } else if (kind == Kind::kLarge) {
    page_idx = static_cast<uint32_t>(
        (static_cast<char*>(addr) - static_cast<char*>(lr->base)) /
        kPageSize);
    if (page_idx >= lr->page_state.size() ||
        lr->page_state[page_idx] == kUnmapped) {
      return Status::Internal("write fault on unmapped large page");
    }
    page_base = static_cast<char*>(lr->base) + page_idx * kPageSize;
    page_addr = PageAddr{seg->id.db, lr->area, lr->first_page + page_idx};
    states = &lr->page_state;
  } else {
    return Status::Internal("write fault on slotted segment");
  }

  if ((*states)[page_idx] == kMappedDirty) return Status::OK();

  // Record the update and acquire the write lock before the offending
  // instruction resumes (§2.3). A lock failure (deadlock timeout) poisons
  // the transaction via the observer; the write itself proceeds so the
  // faulting instruction can resume — commit will then refuse.
  if (observer_ != nullptr) {
    (void)observer_->OnPageWrite(seg->id, page_addr);
  }
  // Capture the pre-write image so an abort can restore it in memory.
  auto& undo = kind == Kind::kData ? seg->data_page_undo : lr->page_undo;
  undo.emplace(page_idx, std::string(page_base, kPageSize));
  (*states)[page_idx] = kMappedDirty;
  BESS_RETURN_IF_ERROR(vmem::Protect(page_base, kPageSize, vmem::kReadWrite));
  stats_.write_faults++;
  BESS_COUNT("vm.fault.detect");
  return Status::OK();
}

// ---- fault entry point ------------------------------------------------------

bool SegmentMapper::OnFault(void* addr, bool is_write) {
  std::lock_guard<std::mutex> guard(mu_);
  Range* range = FindRangeLocked(addr);
  if (range == nullptr) return false;
  MappedSegment* seg = range->seg;

  switch (range->kind) {
    case Kind::kSlotted: {
      if (!seg->slotted_mapped) {
        Status s = FaultSlottedLocked(seg);
        if (!s.ok()) {
          BESS_ERROR("slotted fault failed: " << s.ToString());
          return false;
        }
        return true;
      }
      // The slotted image is mapped readable: a fault inside it can only be
      // a store (`is_write` is just a hint; some kernels do not report it).
      (void)is_write;
      const size_t off = static_cast<size_t>(
          static_cast<char*>(addr) - static_cast<char*>(seg->slotted_base));
      if (off < static_cast<size_t>(seg->slotted_pages) * kPageSize) {
        // An application stray pointer hit a write-protected control
        // structure: this is exactly the corruption BeSS prevents (§2.2).
        EventContext ctx;
        ctx.a = seg->id.Pack();
        ctx.ptr = addr;
        (void)FireEvent(Event::kProtectionViolation, ctx);
      }
      return false;  // deliver the fault: do not let the write happen
    }
    case Kind::kData: {
      if (!seg->data_mapped) {
        Status s = FaultDataLocked(seg);
        if (!s.ok()) {
          BESS_ERROR("data fault failed: " << s.ToString());
          return false;
        }
        return true;
      }
      Status s = WriteFaultLocked(seg, Kind::kData, nullptr, addr);
      if (!s.ok()) {
        BESS_ERROR("write fault failed: " << s.ToString());
        return false;
      }
      return true;
    }
    case Kind::kLarge: {
      auto it = seg->large.find(range->slot_no);
      if (it == seg->large.end()) return false;
      LargeRange* lr = &it->second;
      if (!lr->mapped) {
        Status s = FaultLargeLocked(seg, lr);
        if (!s.ok()) {
          BESS_ERROR("large fault failed: " << s.ToString());
          return false;
        }
        return true;
      }
      Status s = WriteFaultLocked(seg, Kind::kLarge, lr, addr);
      return s.ok();
    }
  }
  return false;
}

// ---- public access ----------------------------------------------------------

Result<Slot*> SegmentMapper::SlotAddress(SegmentId id, uint16_t slot_no) {
  std::lock_guard<std::mutex> guard(mu_);
  BESS_ASSIGN_OR_RETURN(MappedSegment * seg, EnsureReservedLocked(id));
  if (seg->slotted_mapped) {
    SlottedView view = MappedView(seg);
    if (slot_no >= view.header()->slot_capacity) {
      return Status::InvalidArgument("slot number out of range");
    }
  }
  return reinterpret_cast<Slot*>(static_cast<char*>(seg->slotted_base) +
                                 SlotOffset(slot_no));
}

Status SegmentMapper::ResolveSlotAddress(const void* slot_addr, SegmentId* id,
                                         uint16_t* slot_no) {
  std::lock_guard<std::mutex> guard(mu_);
  return ResolveSlotAddressLocked(slot_addr, id, slot_no);
}

Status SegmentMapper::ResolveSlotAddressLocked(const void* slot_addr,
                                               SegmentId* id,
                                               uint16_t* slot_no) {
  Range* range = FindRangeLocked(slot_addr);
  if (range == nullptr || range->kind != Kind::kSlotted) {
    return Status::InvalidArgument("address is not a slot address");
  }
  const uintptr_t a = reinterpret_cast<uintptr_t>(slot_addr);
  const uintptr_t first = range->begin + SlotOffset(0);
  if (a < first || (a - first) % sizeof(Slot) != 0) {
    return Status::InvalidArgument("address is not slot-aligned");
  }
  *id = range->seg->id;
  *slot_no = static_cast<uint16_t>((a - first) / sizeof(Slot));
  return Status::OK();
}

Result<SlottedView> SegmentMapper::FetchSlottedNow(SegmentId id) {
  std::lock_guard<std::mutex> guard(mu_);
  BESS_ASSIGN_OR_RETURN(MappedSegment * seg, EnsureReservedLocked(id));
  BESS_RETURN_IF_ERROR(EnsureSlottedMappedLocked(seg));
  return MappedView(seg);
}

Status SegmentMapper::FetchDataNow(SegmentId id) {
  std::lock_guard<std::mutex> guard(mu_);
  BESS_ASSIGN_OR_RETURN(MappedSegment * seg, EnsureReservedLocked(id));
  BESS_RETURN_IF_ERROR(EnsureDataMappedLocked(seg));
  return Status::OK();
}

Status SegmentMapper::EnsureSlottedMappedLocked(MappedSegment* seg) {
  if (seg->slotted_mapped) {
    // Inter-transaction caching (§3): the segment survived in the mapper.
    BESS_COUNT("cache.hit");
    return Status::OK();
  }
  return FaultSlottedLocked(seg);
}

Status SegmentMapper::EnsureDataMappedLocked(MappedSegment* seg) {
  BESS_RETURN_IF_ERROR(EnsureSlottedMappedLocked(seg));
  if (seg->data_mapped) return Status::OK();
  return FaultDataLocked(seg);
}

Result<SlottedView> SegmentMapper::View(SegmentId id) {
  return FetchSlottedNow(id);
}

Status SegmentMapper::WithSlottedWritable(
    SegmentId id, const std::function<Status(SlottedView&)>& fn) {
  std::lock_guard<std::mutex> guard(mu_);
  BESS_ASSIGN_OR_RETURN(MappedSegment * seg, EnsureReservedLocked(id));
  BESS_RETURN_IF_ERROR(EnsureSlottedMappedLocked(seg));
  return WithSlottedWritableLocked(seg, fn);
}

Status SegmentMapper::WithSlottedWritableLocked(
    MappedSegment* seg, const std::function<Status(SlottedView&)>& fn) {
  const size_t bytes = static_cast<size_t>(seg->slotted_pages) * kPageSize;
  // Unprotect / mutate / reprotect (§2.2): trusted code only.
  if (opts_.protect_slotted) {
    BESS_RETURN_IF_ERROR(
        vmem::Protect(seg->slotted_base, bytes, vmem::kReadWrite));
  }
  SlottedView view = MappedView(seg);
  Status s = fn(view);
  if (opts_.protect_slotted) {
    Status p = vmem::Protect(seg->slotted_base, bytes, vmem::kRead);
    if (s.ok()) s = p;
  }
  if (s.ok()) seg->slotted_dirty = true;
  return s;
}

bool SegmentMapper::IsMapped(SegmentId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = segments_.find(id.Pack());
  return it != segments_.end() && it->second->slotted_mapped;
}

bool SegmentMapper::IsKnown(SegmentId id) {
  std::lock_guard<std::mutex> guard(mu_);
  return segments_.count(id.Pack()) != 0;
}

// ---- object lifecycle -------------------------------------------------------

Result<Slot*> SegmentMapper::CreateObject(SegmentId id, TypeIdx type,
                                          uint32_t size, const void* init) {
  std::lock_guard<std::mutex> guard(mu_);
  BESS_ASSIGN_OR_RETURN(MappedSegment * seg, EnsureReservedLocked(id));
  BESS_RETURN_IF_ERROR(EnsureDataMappedLocked(seg));

  uint16_t slot_no = kNoSlot;
  uint32_t data_off = 0;
  BESS_RETURN_IF_ERROR(WithSlottedWritableLocked(
      seg, [&](SlottedView& view) -> Status {
        BESS_ASSIGN_OR_RETURN(uint32_t off, view.AllocData(size));
        BESS_ASSIGN_OR_RETURN(uint16_t s, view.AllocSlot());
        Slot* slot = view.slot(s);
        slot->type_idx = type;
        slot->size = size;
        slot->dp = reinterpret_cast<uint64_t>(seg->data_base) + off;
        slot_no = s;
        data_off = off;
        return Status::OK();
      }));

  // Populate the object's bytes; make the covered pages writable + dirty.
  char* obj = static_cast<char*>(seg->data_base) + data_off;
  BESS_RETURN_IF_ERROR(MarkDirtyLocked(obj, size == 0 ? 1 : size));
  if (init != nullptr) {
    memcpy(obj, init, size);
  } else {
    memset(obj, 0, size);
  }

  EventContext ctx;
  ctx.a = id.Pack();
  ctx.b = slot_no;
  (void)FireEvent(Event::kObjectCreate, ctx);

  SlottedView view = MappedView(seg);
  return view.slot(slot_no);
}

Result<Slot*> SegmentMapper::CreateLargeObject(SegmentId id, TypeIdx type,
                                               uint32_t size, uint16_t lo_area,
                                               PageId lo_first_page,
                                               uint16_t lo_pages) {
  std::lock_guard<std::mutex> guard(mu_);
  BESS_ASSIGN_OR_RETURN(MappedSegment * seg, EnsureReservedLocked(id));
  BESS_RETURN_IF_ERROR(EnsureSlottedMappedLocked(seg));

  uint16_t slot_no = kNoSlot;
  BESS_RETURN_IF_ERROR(WithSlottedWritableLocked(
      seg, [&](SlottedView& view) -> Status {
        BESS_ASSIGN_OR_RETURN(uint16_t s, view.AllocSlot());
        Slot* slot = view.slot(s);
        slot->flags |= kSlotLargeObject;
        slot->type_idx = type;
        slot->size = size;
        slot_no = s;
        return Status::OK();
      }));

  BESS_ASSIGN_OR_RETURN(
      LargeRange * lr,
      ReserveLargeLocked(seg, slot_no, lo_area, lo_first_page, lo_pages,
                         size));
  // Fresh object: commit zeroed pages as already-mapped and dirty.
  const size_t bytes = static_cast<size_t>(lo_pages) * kPageSize;
  BESS_RETURN_IF_ERROR(
      vmem::CommitAnonymous(lr->base, bytes, vmem::kReadWrite));
  stats_.committed_bytes += bytes;
  lr->mapped = true;
  lr->page_state.assign(lo_pages, kMappedDirty);
  if (observer_ != nullptr) {
    for (uint32_t i = 0; i < lo_pages; ++i) {
      (void)observer_->OnPageWrite(
          id, PageAddr{id.db, lo_area, lo_first_page + i});
    }
  }

  BESS_RETURN_IF_ERROR(WithSlottedWritableLocked(
      seg, [&](SlottedView& view) -> Status {
        view.slot(slot_no)->dp = reinterpret_cast<uint64_t>(lr->base);
        return Status::OK();
      }));

  EventContext ctx;
  ctx.a = id.Pack();
  ctx.b = slot_no;
  (void)FireEvent(Event::kObjectCreate, ctx);

  SlottedView view = MappedView(seg);
  return view.slot(slot_no);
}

Status SegmentMapper::DeleteObject(SegmentId id, uint16_t slot_no) {
  std::lock_guard<std::mutex> guard(mu_);
  BESS_ASSIGN_OR_RETURN(MappedSegment * seg, EnsureReservedLocked(id));
  BESS_RETURN_IF_ERROR(EnsureSlottedMappedLocked(seg));

  EventContext ctx;
  ctx.a = id.Pack();
  ctx.b = slot_no;
  (void)FireEvent(Event::kObjectDelete, ctx);

  return WithSlottedWritableLocked(seg, [&](SlottedView& view) -> Status {
    Slot* slot = view.slot(slot_no);
    if (!slot->in_use()) {
      return Status::InvalidArgument("delete of unused slot");
    }
    if (slot->flags & kSlotLargeObject) {
      auto it = seg->large.find(slot_no);
      if (it != seg->large.end()) {
        DropRangeLocked(it->second.base);
        (void)arena_.Release(it->second.base, it->second.reserved);
        stats_.reserved_bytes -= it->second.reserved;
        seg->large.erase(it);
      }
    } else if (!(slot->flags & kSlotVeryLarge)) {
      view.NoteDataDead((slot->size + 7u) & ~7u);
    }
    return view.FreeSlot(slot_no);
  });
}

Status SegmentMapper::MarkDirty(const void* ptr, size_t len) {
  std::lock_guard<std::mutex> guard(mu_);
  return MarkDirtyLocked(ptr, len);
}

Status SegmentMapper::MarkDirtyLocked(const void* ptr, size_t len) {
  Range* range = FindRangeLocked(ptr);
  if (range == nullptr || range->kind == Kind::kSlotted) {
    return Status::InvalidArgument("MarkDirty outside an object range");
  }
  MappedSegment* seg = range->seg;
  LargeRange* lr = nullptr;
  char* base;
  std::vector<uint8_t>* states;
  if (range->kind == Kind::kData) {
    BESS_RETURN_IF_ERROR(EnsureDataMappedLocked(seg));
    base = static_cast<char*>(seg->data_base);
    states = &seg->data_page_state;
  } else {
    auto it = seg->large.find(range->slot_no);
    if (it == seg->large.end()) return Status::Internal("no large range");
    lr = &it->second;
    if (!lr->mapped) BESS_RETURN_IF_ERROR(FaultLargeLocked(seg, lr));
    base = static_cast<char*>(lr->base);
    states = &lr->page_state;
  }
  const uint32_t first =
      static_cast<uint32_t>((static_cast<const char*>(ptr) - base) /
                            kPageSize);
  const uint32_t last = static_cast<uint32_t>(
      (static_cast<const char*>(ptr) + len - 1 - base) / kPageSize);
  for (uint32_t p = first; p <= last && p < states->size(); ++p) {
    if ((*states)[p] == kMappedDirty) continue;
    if (observer_ != nullptr) {
      PageAddr pa = range->kind == Kind::kData
                        ? DataPageAddr(seg, p)
                        : PageAddr{seg->id.db, lr->area, lr->first_page + p};
      (void)observer_->OnPageWrite(seg->id, pa);
    }
    auto& undo =
        range->kind == Kind::kData ? seg->data_page_undo : lr->page_undo;
    undo.emplace(p, std::string(base + p * kPageSize, kPageSize));
    (*states)[p] = kMappedDirty;
    BESS_RETURN_IF_ERROR(
        vmem::Protect(base + p * kPageSize, kPageSize, vmem::kReadWrite));
  }
  return Status::OK();
}

// ---- reorganization ---------------------------------------------------------

Status SegmentMapper::RelocateData(SegmentId id, uint16_t new_area,
                                   PageId new_first_page,
                                   uint32_t new_page_count) {
  std::lock_guard<std::mutex> guard(mu_);
  BESS_ASSIGN_OR_RETURN(MappedSegment * seg, EnsureReservedLocked(id));
  BESS_RETURN_IF_ERROR(EnsureDataMappedLocked(seg));
  SlottedView view = MappedView(seg);
  SlottedHeader* h = view.header();
  if (static_cast<uint64_t>(new_page_count) * kPageSize <
      h->data_used) {
    return Status::InvalidArgument("new data segment too small for contents");
  }

  const size_t new_bytes = static_cast<size_t>(new_page_count) * kPageSize;
  const size_t old_bytes = static_cast<size_t>(h->data_page_count) * kPageSize;

  if (new_bytes > seg->data_reserved) {
    // Outgrew the reservation: move to a larger range and adjust DPs by the
    // base delta (paper: "two arithmetic operations").
    BESS_ASSIGN_OR_RETURN(void* new_base, arena_.Acquire(
        new_bytes * (opts_.data_headroom > 0 ? opts_.data_headroom : 1)));
    const size_t new_reserved =
        new_bytes * (opts_.data_headroom > 0 ? opts_.data_headroom : 1);
    BESS_RETURN_IF_ERROR(
        vmem::CommitAnonymous(new_base, new_bytes, vmem::kReadWrite));
    memcpy(new_base, seg->data_base, std::min(old_bytes, new_bytes));
    const int64_t delta = static_cast<char*>(new_base) -
                          static_cast<char*>(seg->data_base);
    BESS_RETURN_IF_ERROR(WithSlottedWritableLocked(
        seg, [&](SlottedView& v) -> Status {
          SlottedHeader* hh = v.header();
          for (uint32_t i = 0; i < hh->slot_count; ++i) {
            Slot* s = v.slot(static_cast<uint16_t>(i));
            if (s->in_use() &&
                !(s->flags & (kSlotLargeObject | kSlotVeryLarge))) {
              s->dp = static_cast<uint64_t>(
                  static_cast<int64_t>(s->dp) + delta);
            }
          }
          hh->last_data_base = reinterpret_cast<uint64_t>(new_base);
          return Status::OK();
        }));
    DropRangeLocked(seg->data_base);
    (void)arena_.Release(seg->data_base, seg->data_reserved);
    stats_.reserved_bytes += new_reserved;
    stats_.reserved_bytes -= seg->data_reserved;
    seg->data_base = new_base;
    seg->data_reserved = new_reserved;
    AddRangeLocked(new_base, new_reserved, seg, Kind::kData);
  } else if (new_bytes > old_bytes) {
    // Growing within the reservation: commit the new tail pages.
    BESS_RETURN_IF_ERROR(vmem::CommitAnonymous(
        static_cast<char*>(seg->data_base) + old_bytes, new_bytes - old_bytes,
        vmem::kReadWrite));
  }

  BESS_RETURN_IF_ERROR(WithSlottedWritableLocked(
      seg, [&](SlottedView& v) -> Status {
        SlottedHeader* hh = v.header();
        hh->data_area = new_area;
        hh->data_first_page = new_first_page;
        hh->data_page_count = new_page_count;
        return Status::OK();
      }));

  // Everything must land at the new disk location: all pages dirty.
  seg->data_page_state.assign(new_page_count, kMappedDirty);
  BESS_RETURN_IF_ERROR(
      vmem::Protect(seg->data_base, new_bytes, vmem::kReadWrite));
  if (observer_ != nullptr) {
    for (uint32_t p = 0; p < new_page_count; ++p) {
      (void)observer_->OnPageWrite(id, DataPageAddr(seg, p));
    }
  }
  return Status::OK();
}

Status SegmentMapper::CompactData(SegmentId id) {
  std::lock_guard<std::mutex> guard(mu_);
  BESS_ASSIGN_OR_RETURN(MappedSegment * seg, EnsureReservedLocked(id));
  BESS_RETURN_IF_ERROR(EnsureDataMappedLocked(seg));
  SlottedView view = MappedView(seg);
  SlottedHeader* h = view.header();

  // Order live small objects by their current position.
  struct Entry {
    uint16_t slot_no;
    uint64_t dp;
    uint32_t size;
  };
  std::vector<Entry> live;
  for (uint32_t i = 0; i < h->slot_count; ++i) {
    const Slot* s = view.slot(static_cast<uint16_t>(i));
    if (s->in_use() && !(s->flags & (kSlotLargeObject | kSlotVeryLarge))) {
      live.push_back(Entry{static_cast<uint16_t>(i), s->dp, s->size});
    }
  }
  std::sort(live.begin(), live.end(),
            [](const Entry& a, const Entry& b) { return a.dp < b.dp; });

  std::string scratch;
  std::vector<uint32_t> new_off(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    scratch.resize((scratch.size() + 7u) & ~7u);
    new_off[i] = static_cast<uint32_t>(scratch.size());
    scratch.append(reinterpret_cast<const char*>(live[i].dp), live[i].size);
  }
  scratch.resize((scratch.size() + 7u) & ~7u);

  const size_t bytes = static_cast<size_t>(h->data_page_count) * kPageSize;
  BESS_RETURN_IF_ERROR(
      vmem::Protect(seg->data_base, bytes, vmem::kReadWrite));
  memcpy(seg->data_base, scratch.data(), scratch.size());
  memset(static_cast<char*>(seg->data_base) + scratch.size(), 0,
         bytes - scratch.size());

  BESS_RETURN_IF_ERROR(WithSlottedWritableLocked(
      seg, [&](SlottedView& v) -> Status {
        for (size_t i = 0; i < live.size(); ++i) {
          v.slot(live[i].slot_no)->dp =
              reinterpret_cast<uint64_t>(seg->data_base) + new_off[i];
        }
        SlottedHeader* hh = v.header();
        hh->data_used = static_cast<uint32_t>(scratch.size());
        hh->data_dead = 0;
        return Status::OK();
      }));

  seg->data_page_state.assign(h->data_page_count, kMappedDirty);
  if (observer_ != nullptr) {
    for (uint32_t p = 0; p < h->data_page_count; ++p) {
      (void)observer_->OnPageWrite(id, DataPageAddr(seg, p));
    }
  }
  return Status::OK();
}

// ---- write-back -------------------------------------------------------------

Status SegmentMapper::UnswizzleImageLocked(MappedSegment* seg,
                                           std::string* data_copy,
                                           bool* outbound_changed) {
  SlottedView view = MappedView(seg);
  SlottedHeader* h = view.header();
  char* copy_base = data_copy->data();
  const uint64_t data_base = reinterpret_cast<uint64_t>(seg->data_base);

  for (uint32_t i = 0; i < h->slot_count; ++i) {
    const Slot* s = view.slot(static_cast<uint16_t>(i));
    if (!s->in_use() ||
        (s->flags & (kSlotLargeObject | kSlotVeryLarge))) {
      continue;
    }
    auto type = types_->Get(s->type_idx);
    if (!type.ok()) return type.status();
    const TypeDescriptor* desc = *type;
    if (desc->ref_offsets.empty()) continue;
    const uint64_t obj_off = s->dp - data_base;
    for (uint32_t off : desc->ref_offsets) {
      if (off + 8 > s->size) continue;
      uint64_t* field =
          reinterpret_cast<uint64_t*>(copy_base + obj_off + off);
      const uint64_t v = *field;
      if (v == 0 || DiskRef::IsUnswizzled(v)) continue;
      SegmentId target;
      uint16_t slot_no;
      BESS_RETURN_IF_ERROR(ResolveSlotAddressLocked(
          reinterpret_cast<const void*>(v), &target, &slot_no));
      uint16_t out_idx = kOutboundSelf;
      if (!(target == seg->id)) {
        // May append to the outbound table (a slotted mutation).
        BESS_RETURN_IF_ERROR(WithSlottedWritableLocked(
            seg, [&](SlottedView& wv) -> Status {
              BESS_ASSIGN_OR_RETURN(out_idx, wv.InternOutbound(target));
              return Status::OK();
            }));
        *outbound_changed = true;
      }
      *field = DiskRef::Pack(out_idx, slot_no);
      stats_.unswizzled_refs++;
    }
  }
  return Status::OK();
}

Status SegmentMapper::BuildDiskSlottedLocked(MappedSegment* seg,
                                             std::string* out) {
  const size_t bytes = static_cast<size_t>(seg->slotted_pages) * kPageSize;
  out->assign(static_cast<const char*>(seg->slotted_base), bytes);
  SlottedView copy(out->data(), bytes);
  SlottedHeader* h = copy.header();
  h->segment_handle = 0;
  h->last_data_base = 0;
  const uint64_t data_base = reinterpret_cast<uint64_t>(seg->data_base);
  for (uint32_t i = 0; i < h->slot_count; ++i) {
    Slot* s = copy.slot(static_cast<uint16_t>(i));
    s->lock_ref = 0;
    if (!s->in_use()) continue;
    if (s->flags & kSlotLargeObject) {
      auto it = seg->large.find(static_cast<uint16_t>(i));
      if (it == seg->large.end()) {
        return Status::Internal("large object without range at write-back");
      }
      s->dp = Slot::PackDiskAddr(it->second.area, it->second.first_page,
                                 it->second.page_count);
    } else if (s->flags & kSlotVeryLarge) {
      // dp already holds the overflow offset.
    } else {
      if (s->dp < data_base ||
          s->dp >= data_base + seg->data_reserved) {
        return Status::Corruption("slot DP outside data segment");
      }
      s->dp -= data_base;
    }
  }
  return Status::OK();
}

Status SegmentMapper::CollectDirtyLocked(MappedSegment* seg,
                                         std::vector<PageImage>* out,
                                         const SegPred& seg_pred,
                                         const PagePred& page_pred) {
  SlottedView view = MappedView(seg);
  SlottedHeader* h = view.header();
  auto page_selected = [&](PageAddr pa) {
    return page_pred == nullptr || page_pred(pa);
  };

  // Data pages first: unswizzling may add outbound entries, dirtying the
  // slotted segment.
  bool any_selected_dirty = false;
  for (uint32_t p = 0; p < seg->data_page_state.size(); ++p) {
    if (seg->data_page_state[p] == kMappedDirty &&
        page_selected(DataPageAddr(seg, p))) {
      any_selected_dirty = true;
      break;
    }
  }
  bool outbound_changed = false;
  if (any_selected_dirty) {
    std::string data_copy(
        static_cast<const char*>(seg->data_base),
        static_cast<size_t>(h->data_page_count) * kPageSize);
    BESS_RETURN_IF_ERROR(
        UnswizzleImageLocked(seg, &data_copy, &outbound_changed));
    for (uint32_t p = 0; p < seg->data_page_state.size(); ++p) {
      if (seg->data_page_state[p] != kMappedDirty ||
          !page_selected(DataPageAddr(seg, p))) {
        continue;
      }
      PageImage img;
      img.db = seg->id.db;
      img.area = h->data_area;
      img.page = h->data_first_page + p;
      img.bytes.assign(data_copy.data() + static_cast<size_t>(p) * kPageSize,
                       kPageSize);
      out->push_back(std::move(img));
    }
  }

  // Transparent large objects.
  for (auto& [slot_no, lr] : seg->large) {
    (void)slot_no;
    if (!lr.mapped) continue;
    for (uint32_t p = 0; p < lr.page_state.size(); ++p) {
      if (lr.page_state[p] != kMappedDirty ||
          !page_selected(PageAddr{seg->id.db, lr.area, lr.first_page + p})) {
        continue;
      }
      PageImage img;
      img.db = seg->id.db;
      img.area = lr.area;
      img.page = lr.first_page + p;
      img.bytes.assign(
          static_cast<const char*>(lr.base) + static_cast<size_t>(p) *
              kPageSize,
          kPageSize);
      out->push_back(std::move(img));
    }
  }

  // Slotted segment last (whole image when dirty — it is small). Included
  // when the caller owns the segment, or when its outbound table grew while
  // unswizzling the caller's pages (the two must persist together).
  const bool seg_selected = seg_pred == nullptr || seg_pred(seg->id);
  if (seg->slotted_dirty && (seg_selected || outbound_changed)) {
    std::string disk_image;
    BESS_RETURN_IF_ERROR(BuildDiskSlottedLocked(seg, &disk_image));
    for (uint32_t p = 0; p < seg->slotted_pages; ++p) {
      PageImage img;
      img.db = seg->id.db;
      img.area = seg->id.area;
      img.page = seg->id.first_page + p;
      img.bytes.assign(disk_image.data() + static_cast<size_t>(p) * kPageSize,
                       kPageSize);
      out->push_back(std::move(img));
    }
  }
  return Status::OK();
}

Status SegmentMapper::CollectDirty(std::vector<PageImage>* out) {
  return CollectDirtyFor(out, nullptr, nullptr);
}

Status SegmentMapper::CollectDirtyFor(std::vector<PageImage>* out,
                                      const SegPred& seg_pred,
                                      const PagePred& page_pred) {
  std::lock_guard<std::mutex> guard(mu_);
  return CollectDirtyForLocked(out, seg_pred, page_pred);
}

Status SegmentMapper::CollectDirtyForLocked(std::vector<PageImage>* out,
                                            const SegPred& seg_pred,
                                            const PagePred& page_pred) {
  for (auto& [key, seg] : segments_) {
    (void)key;
    if (!seg->slotted_mapped) continue;
    BESS_RETURN_IF_ERROR(
        CollectDirtyLocked(seg.get(), out, seg_pred, page_pred));
  }
  return Status::OK();
}

Status SegmentMapper::MarkClean() { return MarkCleanFor(nullptr, nullptr); }

Status SegmentMapper::MarkCleanFor(const SegPred& seg_pred,
                                   const PagePred& page_pred) {
  std::lock_guard<std::mutex> guard(mu_);
  return MarkCleanForLocked(seg_pred, page_pred);
}

Status SegmentMapper::MarkCleanForLocked(const SegPred& seg_pred,
                                         const PagePred& page_pred) {
  for (auto& [key, seg] : segments_) {
    (void)key;
    if (!seg->slotted_mapped) continue;
    auto page_selected = [&](PageAddr pa) {
      return page_pred == nullptr || page_pred(pa);
    };
    if (seg_pred == nullptr || seg_pred(seg->id)) {
      seg->slotted_dirty = false;
      seg->data_on_store = true;
    }
    for (uint32_t p = 0; p < seg->data_page_state.size(); ++p) {
      if (seg->data_page_state[p] != kMappedDirty ||
          !page_selected(DataPageAddr(seg.get(), p))) {
        continue;
      }
      seg->data_page_state[p] = kMappedRead;
      seg->data_page_undo.erase(p);
      seg->data_on_store = true;
      if (opts_.detect_writes) {
        BESS_RETURN_IF_ERROR(vmem::Protect(
            static_cast<char*>(seg->data_base) + static_cast<size_t>(p) *
                kPageSize,
            kPageSize, vmem::kRead));
      }
    }
    for (auto& [slot_no, lr] : seg->large) {
      (void)slot_no;
      for (uint32_t p = 0; p < lr.page_state.size(); ++p) {
        if (lr.page_state[p] != kMappedDirty ||
            !page_selected(
                PageAddr{seg->id.db, lr.area, lr.first_page + p})) {
          continue;
        }
        lr.page_state[p] = kMappedRead;
        lr.page_undo.erase(p);
        if (opts_.detect_writes) {
          BESS_RETURN_IF_ERROR(vmem::Protect(
              static_cast<char*>(lr.base) + static_cast<size_t>(p) *
                  kPageSize,
              kPageSize, vmem::kRead));
        }
      }
    }
  }
  return Status::OK();
}

Status SegmentMapper::RevertPage(PageAddr page) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [key, seg] : segments_) {
    (void)key;
    if (!seg->slotted_mapped || seg->id.db != page.db) continue;
    SlottedView view = MappedView(seg.get());
    const SlottedHeader* h = view.header();
    // Data segment page?
    if (seg->data_mapped && h->data_area == page.area &&
        page.page >= h->data_first_page &&
        page.page < h->data_first_page + h->data_page_count) {
      const uint32_t p = page.page - h->data_first_page;
      if (seg->data_page_state[p] != kMappedDirty) return Status::OK();
      auto it = seg->data_page_undo.find(p);
      if (it == seg->data_page_undo.end()) {
        // No in-memory undo image (e.g. fresh segment): refault from disk.
        return EvictLocked(seg->id, /*drop_dirty=*/true);
      }
      char* base = static_cast<char*>(seg->data_base) +
                   static_cast<size_t>(p) * kPageSize;
      memcpy(base, it->second.data(), kPageSize);
      seg->data_page_undo.erase(it);
      seg->data_page_state[p] = kMappedRead;
      if (opts_.detect_writes) {
        BESS_RETURN_IF_ERROR(vmem::Protect(base, kPageSize, vmem::kRead));
      }
      return Status::OK();
    }
    // Large object page?
    for (auto& [slot_no, lr] : seg->large) {
      (void)slot_no;
      if (!lr.mapped || lr.area != page.area ||
          page.page < lr.first_page ||
          page.page >= lr.first_page + lr.page_count) {
        continue;
      }
      const uint32_t p = page.page - lr.first_page;
      if (lr.page_state[p] != kMappedDirty) return Status::OK();
      auto it = lr.page_undo.find(p);
      if (it == lr.page_undo.end()) {
        return EvictLocked(seg->id, /*drop_dirty=*/true);
      }
      char* base =
          static_cast<char*>(lr.base) + static_cast<size_t>(p) * kPageSize;
      memcpy(base, it->second.data(), kPageSize);
      lr.page_undo.erase(it);
      lr.page_state[p] = kMappedRead;
      if (opts_.detect_writes) {
        BESS_RETURN_IF_ERROR(vmem::Protect(base, kPageSize, vmem::kRead));
      }
      return Status::OK();
    }
  }
  return Status::OK();  // page not mapped here: nothing to revert
}

Status SegmentMapper::WriteBackAll() {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<PageImage> pages;
  BESS_RETURN_IF_ERROR(CollectDirtyForLocked(&pages, nullptr, nullptr));
  for (const PageImage& img : pages) {
    BESS_RETURN_IF_ERROR(store_->WritePages(img.db, img.area, img.page, 1,
                                            img.bytes.data()));
  }
  return MarkCleanForLocked(nullptr, nullptr);
}

Status SegmentMapper::DecommitSegmentLocked(MappedSegment* seg) {
  if (seg->slotted_mapped) {
    BESS_RETURN_IF_ERROR(vmem::CommitAnonymous(
        seg->slotted_base, seg->slotted_reserved, vmem::kNone));
    stats_.committed_bytes -=
        static_cast<size_t>(seg->slotted_pages) * kPageSize;
    seg->slotted_mapped = false;
    seg->slotted_pages = 0;
    seg->slotted_dirty = false;
  }
  if (seg->data_mapped) {
    BESS_RETURN_IF_ERROR(
        vmem::CommitAnonymous(seg->data_base, seg->data_reserved, vmem::kNone));
    stats_.committed_bytes -= static_cast<size_t>(
        seg->data_page_state.size()) * kPageSize;
    seg->data_mapped = false;
  }
  seg->data_page_state.clear();
  seg->data_page_undo.clear();
  for (auto& [slot_no, lr] : seg->large) {
    (void)slot_no;
    lr.page_undo.clear();
    if (lr.mapped) {
      BESS_RETURN_IF_ERROR(
          vmem::CommitAnonymous(lr.base, lr.reserved, vmem::kNone));
      stats_.committed_bytes -=
          static_cast<size_t>(lr.page_count) * kPageSize;
      lr.mapped = false;
    }
    lr.page_state.assign(lr.page_count, kUnmapped);
  }
  return Status::OK();
}

Status SegmentMapper::Evict(SegmentId id, bool drop_dirty) {
  std::lock_guard<std::mutex> guard(mu_);
  return EvictLocked(id, drop_dirty);
}

Status SegmentMapper::EvictLocked(SegmentId id, bool drop_dirty) {
  auto it = segments_.find(id.Pack());
  if (it == segments_.end()) return Status::OK();
  MappedSegment* seg = it->second.get();
  if (!drop_dirty) {
    if (seg->slotted_dirty) {
      return Status::Busy("evict of dirty segment");
    }
    for (uint8_t st : seg->data_page_state) {
      if (st == kMappedDirty) return Status::Busy("evict of dirty segment");
    }
    for (auto& [slot_no, lr] : seg->large) {
      (void)slot_no;
      for (uint8_t st : lr.page_state) {
        if (st == kMappedDirty) return Status::Busy("evict of dirty segment");
      }
    }
  }
  EventContext ctx;
  ctx.a = id.Pack();
  (void)FireEvent(Event::kSegmentReplace, ctx);
  // Address ranges stay reserved so swizzled pointers into this segment
  // remain valid and simply refault on next touch.
  return DecommitSegmentLocked(seg);
}

Status SegmentMapper::DiscardDirty() {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [key, seg] : segments_) {
    (void)key;
    bool dirty = seg->slotted_dirty;
    for (uint8_t st : seg->data_page_state) dirty |= (st == kMappedDirty);
    for (auto& [slot_no, lr] : seg->large) {
      (void)slot_no;
      for (uint8_t st : lr.page_state) dirty |= (st == kMappedDirty);
    }
    if (!dirty) continue;
    if (!seg->data_on_store) {
      // Brand-new segment that was never written back: nothing on disk to
      // refault from; drop all knowledge of it.
      BESS_RETURN_IF_ERROR(DecommitSegmentLocked(seg.get()));
      continue;
    }
    BESS_RETURN_IF_ERROR(DecommitSegmentLocked(seg.get()));
  }
  return Status::OK();
}

Status SegmentMapper::ReleaseSegmentLocked(MappedSegment* seg) {
  BESS_RETURN_IF_ERROR(DecommitSegmentLocked(seg));
  DropRangeLocked(seg->slotted_base);
  (void)arena_.Release(seg->slotted_base, seg->slotted_reserved);
  stats_.reserved_bytes -= seg->slotted_reserved;
  if (seg->data_base != nullptr) {
    DropRangeLocked(seg->data_base);
    (void)arena_.Release(seg->data_base, seg->data_reserved);
    stats_.reserved_bytes -= seg->data_reserved;
  }
  for (auto& [slot_no, lr] : seg->large) {
    (void)slot_no;
    DropRangeLocked(lr.base);
    (void)arena_.Release(lr.base, lr.reserved);
    stats_.reserved_bytes -= lr.reserved;
  }
  return Status::OK();
}

Status SegmentMapper::EvictAll(bool drop_dirty) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [key, seg] : segments_) {
    (void)key;
    Status s = EvictLocked(seg->id, drop_dirty);
    if (!s.ok() && !s.IsBusy()) return s;
  }
  return Status::OK();
}

Status SegmentMapper::Reset() {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [key, seg] : segments_) {
    (void)key;
    BESS_RETURN_IF_ERROR(ReleaseSegmentLocked(seg.get()));
  }
  segments_.clear();
  ranges_.clear();
  return Status::OK();
}

Result<SlottedView> SegmentMapper::InstallNewSegment(
    SegmentId id, uint16_t file_id, uint32_t slotted_page_count,
    uint32_t slot_capacity, uint16_t outbound_capacity, uint16_t data_area,
    PageId data_first_page, uint32_t data_page_count) {
  std::lock_guard<std::mutex> guard(mu_);
  if (slotted_page_count == 0 || slotted_page_count > kMaxSlottedPages) {
    return Status::InvalidArgument("bad slotted page count");
  }
  BESS_ASSIGN_OR_RETURN(MappedSegment * seg, EnsureReservedLocked(id));
  if (seg->slotted_mapped) {
    return Status::InvalidArgument("segment already mapped");
  }
  const size_t bytes = static_cast<size_t>(slotted_page_count) * kPageSize;
  BESS_RETURN_IF_ERROR(
      vmem::CommitAnonymous(seg->slotted_base, bytes, vmem::kReadWrite));
  stats_.committed_bytes += bytes;
  BESS_ASSIGN_OR_RETURN(
      SlottedView view,
      SlottedView::Format(seg->slotted_base, bytes, id, file_id,
                          slot_capacity, outbound_capacity));
  SlottedHeader* h = view.header();
  h->data_area = data_area;
  h->data_first_page = data_first_page;
  h->data_page_count = data_page_count;
  h->segment_handle = reinterpret_cast<uint64_t>(seg);

  seg->slotted_pages = slotted_page_count;
  seg->slotted_mapped = true;
  seg->slotted_dirty = true;
  seg->data_on_store = false;

  BESS_RETURN_IF_ERROR(ReserveDataRangeLocked(seg, data_page_count));
  h->last_data_base = reinterpret_cast<uint64_t>(seg->data_base);
  const size_t data_bytes = static_cast<size_t>(data_page_count) * kPageSize;
  if (data_bytes > 0) {
    BESS_RETURN_IF_ERROR(
        vmem::CommitAnonymous(seg->data_base, data_bytes, vmem::kReadWrite));
    stats_.committed_bytes += data_bytes;
  }
  seg->data_mapped = data_page_count > 0;
  seg->data_page_state.assign(data_page_count, kMappedDirty);
  if (observer_ != nullptr) {
    BESS_RETURN_IF_ERROR(observer_->OnSegmentRead(id));
    for (uint32_t p = 0; p < data_page_count; ++p) {
      (void)observer_->OnPageWrite(id, DataPageAddr(seg, p));
    }
  }

  if (opts_.protect_slotted) {
    BESS_RETURN_IF_ERROR(vmem::Protect(seg->slotted_base, bytes, vmem::kRead));
  }
  return MappedView(seg);
}

SegmentMapper::Stats SegmentMapper::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

}  // namespace bess
