#include "vm/mem_store.h"

#include "segment/layout.h"

namespace bess {

Status GenericFetchSlotted(SegmentStore* store, SegmentId id, void* buf,
                           uint32_t* page_count) {
  BESS_RETURN_IF_ERROR(
      store->FetchPages(id.db, id.area, id.first_page, 1, buf));
  const auto* header = static_cast<const SlottedHeader*>(buf);
  if (header->magic != SlottedHeader::kMagic || header->page_count == 0 ||
      header->page_count > kMaxSlottedPages) {
    return Status::Corruption("fetched page is not a slotted segment head");
  }
  *page_count = header->page_count;
  if (header->page_count > 1) {
    BESS_RETURN_IF_ERROR(store->FetchPages(
        id.db, id.area, id.first_page + 1, header->page_count - 1,
        static_cast<char*>(buf) + kPageSize));
  }
  return Status::OK();
}

Status InMemoryStore::FetchPages(uint16_t db, uint16_t area, PageId first,
                                 uint32_t page_count, void* buf) {
  BESS_RETURN_IF_ERROR(fault::Check("memstore.fetch"));
  std::lock_guard<std::mutex> guard(mutex_);
  char* out = static_cast<char*>(buf);
  for (uint32_t i = 0; i < page_count; ++i) {
    auto it = pages_.find(Key(db, area, first + i));
    if (it == pages_.end()) {
      return Status::NotFound("page " + std::to_string(first + i) +
                              " not in store");
    }
    memcpy(out + static_cast<size_t>(i) * kPageSize, it->second.data(),
           kPageSize);
  }
  pages_fetched_ += page_count;
  return Status::OK();
}

Status InMemoryStore::WritePages(uint16_t db, uint16_t area, PageId first,
                                 uint32_t page_count, const void* buf) {
  BESS_RETURN_IF_ERROR(fault::Check("memstore.write"));
  std::lock_guard<std::mutex> guard(mutex_);
  const char* in = static_cast<const char*>(buf);
  for (uint32_t i = 0; i < page_count; ++i) {
    pages_[Key(db, area, first + i)] =
        std::string(in + static_cast<size_t>(i) * kPageSize, kPageSize);
  }
  pages_written_ += page_count;
  return Status::OK();
}

size_t InMemoryStore::page_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return pages_.size();
}

}  // namespace bess
