// SegmentStore: where the SegmentMapper gets and puts segment bytes.
//
// The mapper implements the paper's in-place access machinery independently
// of *where* pages come from; the store is the seam between process
// structures (§4):
//   - LocalStore          — direct to the storage areas (server-linked apps)
//   - ClientCache          — copy-on-access private pool via the node server
// Both serve the identical interface, "it is just the process boundaries
// that differ" (§4.1).
#ifndef BESS_VM_SEGMENT_STORE_H_
#define BESS_VM_SEGMENT_STORE_H_

#include <cstdint>

#include "segment/layout.h"
#include "util/status.h"

namespace bess {

/// Maximum pages in a slotted segment; the mapper reserves this much address
/// space for a slotted segment before its true size is known.
inline constexpr uint32_t kMaxSlottedPages = 16;

/// Observes successful page fetches so a cache layer can detect sequential
/// access runs and issue read-ahead (cache/frame_table.h prefetch). The
/// mapper fires this after each store fetch; implementations must tolerate
/// being called from fault-handling context (no re-entry into the mapper).
class PrefetchSink {
 public:
  virtual ~PrefetchSink() = default;
  virtual void NoteFetch(uint16_t db, uint16_t area, PageId first,
                         uint32_t page_count) = 0;
};

class SegmentStore {
 public:
  virtual ~SegmentStore() = default;

  /// Fetches the slotted segment image for `id` into `buf` (capacity
  /// kMaxSlottedPages * kPageSize). Sets `*page_count` to the actual size.
  virtual Status FetchSlotted(SegmentId id, void* buf,
                              uint32_t* page_count) = 0;

  /// Fetches `page_count` raw pages of (db, area) starting at `first`.
  virtual Status FetchPages(uint16_t db, uint16_t area, PageId first,
                            uint32_t page_count, void* buf) = 0;

  /// Writes `page_count` raw pages back.
  virtual Status WritePages(uint16_t db, uint16_t area, PageId first,
                            uint32_t page_count, const void* buf) = 0;
};

}  // namespace bess

#endif  // BESS_VM_SEGMENT_STORE_H_
