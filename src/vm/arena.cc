#include "vm/arena.h"

#include <sys/mman.h>

#include "os/vmem.h"
#include "util/config.h"

namespace bess {

Result<AddressArena> AddressArena::Create(size_t bytes) {
  const size_t rounded = (bytes + kPageSize - 1) & ~(kPageSize - 1);
  BESS_ASSIGN_OR_RETURN(void* base, vmem::Reserve(rounded));
  return AddressArena(base, rounded);
}

AddressArena::~AddressArena() {
  if (base_ != nullptr) {
    (void)vmem::Release(base_, size_);
  }
}

AddressArena::AddressArena(AddressArena&& other) noexcept
    : base_(other.base_),
      size_(other.size_),
      bump_(other.bump_),
      free_lists_(std::move(other.free_lists_)) {
  other.base_ = nullptr;
  other.size_ = 0;
}

AddressArena& AddressArena::operator=(AddressArena&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) (void)vmem::Release(base_, size_);
    base_ = other.base_;
    size_ = other.size_;
    bump_ = other.bump_;
    free_lists_ = std::move(other.free_lists_);
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<void*> AddressArena::Acquire(size_t bytes) {
  const size_t rounded = (bytes + kPageSize - 1) & ~(kPageSize - 1);
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = free_lists_.find(rounded);
  if (it != free_lists_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    return p;
  }
  if (bump_ + rounded > size_) {
    return Status::NoSpace("address arena exhausted");
  }
  void* p = static_cast<char*>(base_) + bump_;
  bump_ += rounded;
  return p;
}

Status AddressArena::Release(void* base, size_t bytes) {
  const size_t rounded = (bytes + kPageSize - 1) & ~(kPageSize - 1);
  // Decommit: replace with a fresh inaccessible reservation, freeing any
  // physical pages while keeping the addresses reserved.
  void* p = ::mmap(base, rounded, PROT_NONE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED,
                   -1, 0);
  if (p == MAP_FAILED) return Status::IOError("arena decommit failed");
  std::lock_guard<std::mutex> guard(mutex_);
  free_lists_[rounded].push_back(base);
  return Status::OK();
}

}  // namespace bess
