#include "util/crc32c.h"

#include <array>

namespace bess {
namespace crc32c {
namespace {

// Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Extend(uint32_t init_crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace bess
