// CRC32C (Castagnoli) checksums, used to detect torn or corrupted pages and
// log records.
#ifndef BESS_UTIL_CRC32C_H_
#define BESS_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace bess {
namespace crc32c {

/// Returns the CRC32C of data[0..n-1], continuing from `init_crc` (pass 0 to
/// start a fresh checksum).
uint32_t Extend(uint32_t init_crc, const void* data, size_t n);

/// CRC32C of a whole buffer.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

/// A CRC stored next to the data it covers would checksum to a fixed value
/// when re-checksummed; masking avoids that degenerate property.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace bess

#endif  // BESS_UTIL_CRC32C_H_
