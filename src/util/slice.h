// Slice: a non-owning view of a byte range, plus small encoding helpers
// used by the WAL and the wire protocol.
#ifndef BESS_UTIL_SLICE_H_
#define BESS_UTIL_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace bess {

/// A pointer + length view of immutable bytes. The viewed storage must
/// outlive the Slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(strlen(cstr)) {}      // NOLINT
  Slice(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  /// Drops the first n bytes from the view.
  void remove_prefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = 1;
    }
    return r;
  }

  bool operator==(const Slice& other) const { return compare(other) == 0; }
  bool operator!=(const Slice& other) const { return compare(other) != 0; }

 private:
  const char* data_;
  size_t size_;
};

// ---- Fixed-width little-endian encoding helpers ----------------------------

inline void EncodeFixed16(char* dst, uint16_t v) { memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, 8);
  return v;
}

inline void PutFixed16(std::string* dst, uint16_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 2);
}
inline void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 8);
}

/// Appends a 32-bit length prefix followed by the bytes.
inline void PutLengthPrefixed(std::string* dst, Slice s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Cursor for decoding the encodings above; tracks an error flag instead of
/// throwing on truncated input.
class Decoder {
 public:
  explicit Decoder(Slice input) : in_(input) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return in_.size(); }

  uint16_t GetFixed16() {
    if (!Check(2)) return 0;
    uint16_t v = DecodeFixed16(in_.data());
    in_.remove_prefix(2);
    return v;
  }
  uint32_t GetFixed32() {
    if (!Check(4)) return 0;
    uint32_t v = DecodeFixed32(in_.data());
    in_.remove_prefix(4);
    return v;
  }
  uint64_t GetFixed64() {
    if (!Check(8)) return 0;
    uint64_t v = DecodeFixed64(in_.data());
    in_.remove_prefix(8);
    return v;
  }
  Slice GetLengthPrefixed() {
    uint32_t len = GetFixed32();
    if (!Check(len)) return Slice();
    Slice s(in_.data(), len);
    in_.remove_prefix(len);
    return s;
  }
  Slice GetBytes(size_t n) {
    if (!Check(n)) return Slice();
    Slice s(in_.data(), n);
    in_.remove_prefix(n);
    return s;
  }

 private:
  bool Check(size_t n) {
    if (!ok_ || in_.size() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  Slice in_;
  bool ok_ = true;
};

}  // namespace bess

#endif  // BESS_UTIL_SLICE_H_
