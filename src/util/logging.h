// Minimal diagnostic logging. Off by default; enabled per-process via
// bess::SetLogLevel or the BESS_LOG environment variable (0..3).
#ifndef BESS_UTIL_LOGGING_H_
#define BESS_UTIL_LOGGING_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace bess {

enum class LogLevel : int { kNone = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Sets the process-wide diagnostic log level.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogLine(LogLevel level, const char* file, int line,
             const std::string& msg);
}  // namespace internal

#define BESS_LOG(level, ...)                                          \
  do {                                                                \
    if (static_cast<int>(::bess::GetLogLevel()) >=                    \
        static_cast<int>(::bess::LogLevel::level)) {                  \
      std::ostringstream _bess_oss;                                   \
      _bess_oss << __VA_ARGS__;                                       \
      ::bess::internal::LogLine(::bess::LogLevel::level, __FILE__,    \
                                __LINE__, _bess_oss.str());           \
    }                                                                 \
  } while (0)

#define BESS_ERROR(...) BESS_LOG(kError, __VA_ARGS__)
#define BESS_INFO(...) BESS_LOG(kInfo, __VA_ARGS__)
#define BESS_DEBUG(...) BESS_LOG(kDebug, __VA_ARGS__)

}  // namespace bess

#endif  // BESS_UTIL_LOGGING_H_
