// Small deterministic PRNG used by tests, benches and workload generators.
#ifndef BESS_UTIL_RANDOM_H_
#define BESS_UTIL_RANDOM_H_

#include <cstdint>

namespace bess {

/// xorshift128+ generator: fast, decent quality, reproducible across runs.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    s0_ = seed ? seed : 1;
    s1_ = SplitMix(&s0_);
    s0_ = SplitMix(&s1_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Zipf-ish skew: returns a value in [0, n) where low values are hot.
  /// `theta` in (0,1); higher theta = more skew. Approximate but cheap.
  uint64_t Skewed(uint64_t n, double theta = 0.8) {
    // Power-law transform of a uniform variate.
    double u = static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
    double v = 1.0;
    for (double t = theta; t > 0; t -= 0.25) v *= u;  // u^(ceil(theta/0.25))
    uint64_t idx = static_cast<uint64_t>(v * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s0_, s1_;
};

}  // namespace bess

#endif  // BESS_UTIL_RANDOM_H_
