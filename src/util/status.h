// Status and Result<T>: the error-handling vocabulary used across BeSS.
//
// BeSS does not throw exceptions across its API. Every fallible operation
// returns a Status (or a Result<T> when it also produces a value), in the
// style of RocksDB / Arrow. Status is cheap to copy when OK (no allocation).
#ifndef BESS_UTIL_STATUS_H_
#define BESS_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace bess {

/// Machine-readable classification of a failure.
enum class StatusCode : unsigned char {
  kOk = 0,
  kNotFound,
  kCorruption,
  kNotSupported,
  kInvalidArgument,
  kIOError,
  kBusy,           ///< resource temporarily unavailable (e.g. latch)
  kDeadlock,       ///< lock wait timed out; transaction should abort
  kAborted,        ///< transaction was aborted
  kNoSpace,        ///< allocator or cache exhausted
  kProtocol,       ///< malformed or unexpected network message
  kInternal,
  kWouldBlock,     ///< non-blocking op made no/partial progress; retry later
  kDeadlineExceeded,  ///< the request's deadline passed before completion
  kRetryLater,     ///< shed by admission control; retry after backing off
};

/// Returns the canonical spelling of a code, e.g. "NotFound".
const char* StatusCodeName(StatusCode code);

/// The result of a fallible operation that produces no value.
///
/// A default-constructed Status is OK and carries no allocation. Failure
/// states carry a code and a human-readable message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status NoSpace(std::string msg) {
    return Status(StatusCode::kNoSpace, std::move(msg));
  }
  static Status Protocol(std::string msg) {
    return Status(StatusCode::kProtocol, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status WouldBlock(std::string msg) {
    return Status(StatusCode::kWouldBlock, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status RetryLater(std::string msg) {
    return Status(StatusCode::kRetryLater, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsBusy() const { return code() == StatusCode::kBusy; }
  bool IsDeadlock() const { return code() == StatusCode::kDeadlock; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsNoSpace() const { return code() == StatusCode::kNoSpace; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsWouldBlock() const { return code() == StatusCode::kWouldBlock; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsRetryLater() const { return code() == StatusCode::kRetryLater; }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The failure message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(rep_->code);
    if (!rep_->message.empty()) {
      s += ": ";
      s += rep_->message;
    }
    return s;
  }

  bool operator==(const Status& other) const { return code() == other.code(); }

 private:
  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  struct Rep {
    StatusCode code;
    std::string message;
  };
  // shared_ptr keeps Status copyable cheaply; OK is nullptr.
  std::shared_ptr<const Rep> rep_;
};

/// The result of a fallible operation that produces a T on success.
///
/// Either holds a value (status().ok()) or a non-OK Status. Accessing the
/// value of a failed Result asserts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result is an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(var_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> var_;
};

// Propagate a non-OK Status to the caller.
#define BESS_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::bess::Status _bess_st = (expr);             \
    if (!_bess_st.ok()) return _bess_st;          \
  } while (0)

// Evaluate an expression yielding Result<T>; on error propagate its Status,
// otherwise bind the value to `lhs`.
#define BESS_ASSIGN_OR_RETURN(lhs, expr)             \
  auto BESS_CONCAT_(_bess_res_, __LINE__) = (expr);  \
  if (!BESS_CONCAT_(_bess_res_, __LINE__).ok())      \
    return BESS_CONCAT_(_bess_res_, __LINE__).status(); \
  lhs = std::move(BESS_CONCAT_(_bess_res_, __LINE__)).value()

#define BESS_CONCAT_(a, b) BESS_CONCAT_IMPL_(a, b)
#define BESS_CONCAT_IMPL_(a, b) a##b

}  // namespace bess

#endif  // BESS_UTIL_STATUS_H_
