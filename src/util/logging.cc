#include "util/logging.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>

namespace bess {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized; read BESS_LOG lazily

int InitLevel() {
  const char* env = std::getenv("BESS_LOG");
  return env ? std::atoi(env) : 0;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitLevel();
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

namespace internal {

void LogLine(LogLevel level, const char* file, int line,
             const std::string& msg) {
  const char* tag = level == LogLevel::kError  ? "E"
                    : level == LogLevel::kInfo ? "I"
                                               : "D";
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  fprintf(stderr, "[bess:%s pid=%d %s:%d] %s\n", tag, getpid(), base, line,
          msg.c_str());
}

}  // namespace internal
}  // namespace bess
