// Compile-time constants shared across BeSS modules. Values follow the paper
// where it gives numbers (page-granular protection, 64 KB transparent large
// object limit) and pick conventional defaults elsewhere.
#ifndef BESS_UTIL_CONFIG_H_
#define BESS_UTIL_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace bess {

/// Database page size. Must equal the virtual-memory page size so that
/// mprotect-based update detection and corruption prevention operate on
/// exactly one database page (paper §2.3: hardware detection works only for
/// granules that are multiples of the VM page size).
inline constexpr size_t kPageSize = 4096;

/// Pages per extent. Storage areas grow one extent at a time (§2) and the
/// binary buddy system allocates power-of-two page runs within an extent.
inline constexpr uint32_t kPagesPerExtent = 256;  // 1 MiB extents

/// Largest object that is accessed transparently, i.e. as if it were small
/// (§2.1: "currently, up to 64KB"). Bigger objects must use the byte-range
/// large-object class.
inline constexpr size_t kMaxTransparentObjectSize = 64 * 1024;

/// Maximum number of slots in one slotted segment.
inline constexpr uint32_t kMaxSlotsPerSegment = 4096;

/// Default number of pages in a freshly created data segment.
inline constexpr uint32_t kDefaultDataSegmentPages = 8;

/// Default lock-wait timeout (ms). The paper uses timeouts for (distributed)
/// deadlock detection (§3).
inline constexpr int kLockTimeoutMillis = 2000;

/// Default wait for one callback-locking round trip (§3). A client that
/// cannot answer within this window is treated as unresponsive and its
/// session is torn down (presumed abort).
inline constexpr int kCallbackTimeoutMillis = 500;

}  // namespace bess

#endif  // BESS_UTIL_CONFIG_H_
