#include "util/status.h"

namespace bess {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kNoSpace:
      return "NoSpace";
    case StatusCode::kProtocol:
      return "Protocol";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kWouldBlock:
      return "WouldBlock";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kRetryLater:
      return "RetryLater";
  }
  return "Unknown";
}

}  // namespace bess
