#include "object/database.h"

#include <algorithm>
#include <filesystem>
#include <thread>

#include "cache/cached_store.h"
#include "hooks/hooks.h"
#include "index/index.h"
#include "obs/trace.h"
#include "os/fault_injection.h"
#include "util/crc32c.h"
#include "util/logging.h"
#include "vm/mem_store.h"
#include "wal/recovery.h"

namespace bess {
namespace {

constexpr uint32_t kCatalogMagic = 0xBE55CA7Au;
constexpr uint32_t kCatalogPages = 16;
// By construction the catalog is the very first allocation in area 0.
constexpr PageId kCatalogFirstPage = 0;

thread_local Txn* tl_txn = nullptr;

std::mutex g_registry_mutex;
std::unordered_map<uint8_t, Database*> g_databases_by_id;

LogManager::Options WalOptions(const Database::Options& options) {
  LogManager::Options wopts;
  wopts.segment_bytes = options.wal_segment_bytes;
  wopts.soft_limit_bytes = options.wal_soft_limit_bytes;
  wopts.throttle_timeout_ms = options.wal_throttle_timeout_ms;
  return wopts;
}

}  // namespace

// ---- LocalStore -------------------------------------------------------------

// Direct access to the storage areas: the store used by applications linked
// with the server (or single-process deployments).
class Database::LocalStore : public SegmentStore {
 public:
  explicit LocalStore(Database* db) : db_(db) {}

  Status FetchSlotted(SegmentId id, void* buf, uint32_t* page_count) override {
    return GenericFetchSlotted(this, id, buf, page_count);
  }

  Status FetchPages(uint16_t db, uint16_t area, PageId first,
                    uint32_t page_count, void* buf) override {
    if (db != db_->db_id()) {
      return Status::InvalidArgument("fetch for foreign database");
    }
    StorageArea* a = db_->AreaOrNull(area);
    if (a == nullptr) return Status::NotFound("no storage area " +
                                              std::to_string(area));
    return a->ReadPages(first, page_count, buf);
  }

  Status WritePages(uint16_t db, uint16_t area, PageId first,
                    uint32_t page_count, const void* buf) override {
    if (db != db_->db_id()) {
      return Status::InvalidArgument("write for foreign database");
    }
    StorageArea* a = db_->AreaOrNull(area);
    if (a == nullptr) return Status::NotFound("no storage area " +
                                              std::to_string(area));
    return a->WritePages(first, page_count, buf, kNullLsn);
  }

 private:
  Database* db_;
};

// ---- Observer ---------------------------------------------------------------

// Feeds the fault path into the lock manager: automatic read/write set
// maintenance (paper §2.3). Lock failures poison the transaction rather than
// failing the fault — the offending instruction must resume; commit refuses.
class Database::Observer : public AccessObserver {
 public:
  explicit Observer(Database* db) : db_(db) {}

  Status OnSegmentRead(SegmentId id) override {
    Txn* txn = Database::Current();
    if (txn == nullptr || txn->db != db_) return Status::OK();
    Status s = db_->locks_.Acquire(txn->id, LockKey::Segment(id.Pack()),
                                   LockMode::kS,
                                   db_->options_.lock_timeout_ms);
    if (!s.ok() && !txn->poisoned) {
      txn->poisoned = true;
      txn->poison_status = s;
    }
    return Status::OK();
  }

  Status OnPageWrite(SegmentId id, PageAddr page) override {
    Txn* txn = Database::Current();
    if (txn == nullptr || txn->db != db_) return Status::OK();
    // Hierarchical locking: intention-exclusive on the segment, exclusive
    // on the page. Structural operations (create/delete/reorganize) take
    // the segment in X and therefore conflict with page writers.
    Status s = db_->locks_.Acquire(txn->id, LockKey::Segment(id.Pack()),
                                   LockMode::kIX,
                                   db_->options_.lock_timeout_ms);
    if (s.ok()) {
      s = db_->locks_.Acquire(
          txn->id, LockKey::Page(page.db, page.area, page.page), LockMode::kX,
          db_->options_.lock_timeout_ms);
    }
    if (!s.ok() && !txn->poisoned) {
      txn->poisoned = true;
      txn->poison_status = s;
    }
    return Status::OK();
  }

 private:
  Database* db_;
};

// ---- construction -----------------------------------------------------------

Database::Database(Options options)
    : options_(std::move(options)), locks_(options_.lock_timeout_ms) {}

Database::~Database() {
  StopCheckpointThread();
  {
    // Best-effort flush of index dirt (steal/no-force: a clean close that
    // skipped it would just replay from the WAL on the next open).
    std::vector<std::shared_ptr<BTreeIndex>> rts;
    {
      std::lock_guard<std::mutex> guard(indexes_mutex_);
      for (auto& [id, rt] : index_runtimes_) rts.push_back(rt);
      index_runtimes_.clear();
    }
    for (auto& rt : rts) (void)rt->FlushDirty();
    // Index handles share ownership of these runtimes and may outlive us.
    // Detach severs each runtime now — joins its bgwriter and gates every
    // entry point — so a surviving handle degrades into errors instead of
    // a background thread calling into a freed database (or its areas).
    for (auto& rt : rts) rt->Detach();
  }
  {
    std::lock_guard<std::mutex> guard(g_registry_mutex);
    g_databases_by_id.erase(static_cast<uint8_t>(options_.db_id));
  }
  EventContext ctx;
  ctx.a = options_.db_id;
  (void)FireEvent(Event::kDatabaseClose, ctx);
}

Result<std::unique_ptr<Database>> Database::Open(const Options& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("database directory required");
  }
  if (options.db_id == 0 || options.db_id > 255) {
    return Status::InvalidArgument("db_id must be in [1, 255] (OIDs carry "
                                   "8-bit database numbers)");
  }
  auto db = std::unique_ptr<Database>(new Database(options));
  db->observer_ = std::make_unique<Observer>(db.get());
  db->store_ = std::make_unique<LocalStore>(db.get());
  SegmentStore* mapper_store = db->store_.get();
  SegmentMapper::Options mapper_opts = options.mapper;
  if (options.page_cache_frames > 0) {
    CachedSegmentStore::Options copts;
    copts.frame_count = options.page_cache_frames;
    // A frame cleaned by write-back leaves CollectDirty's view before any
    // checkpoint fsync covers the write, so park it in the dirty-page
    // table (insert-after-write, like ForcePages) until a checkpoint's
    // area sync verifiably retires it. recLSN 0 = unknown: bound it by the
    // oldest retained LSN, conservative but never lossy.
    copts.on_cleaned = [raw = db.get()](uint64_t key, uint64_t rec_lsn) {
      if (raw->wal_ == nullptr) return;
      raw->TouchDpt(key,
                    rec_lsn != 0 ? rec_lsn : raw->wal_->oldest_lsn());
    };
    db->page_cache_ =
        std::make_unique<CachedSegmentStore>(db->store_.get(), copts);
    BESS_RETURN_IF_ERROR(db->page_cache_->Init());
    mapper_store = db->page_cache_.get();
    mapper_opts.prefetch_sink = db->page_cache_.get();
  }
  db->mapper_ = std::make_unique<SegmentMapper>(mapper_store, &db->types_,
                                                mapper_opts);
  db->mapper_->set_observer(db->observer_.get());

  if (options.create) {
    BESS_RETURN_IF_ERROR(db->CreateNew());
  } else {
    BESS_RETURN_IF_ERROR(db->OpenExisting());
  }
  db->StartCheckpointThread();

  {
    std::lock_guard<std::mutex> guard(g_registry_mutex);
    g_databases_by_id[static_cast<uint8_t>(options.db_id)] = db.get();
  }
  EventContext ctx;
  ctx.a = options.db_id;
  (void)FireEvent(Event::kDatabaseOpen, ctx);
  return db;
}

std::string Database::AreaPath(uint16_t area_id) const {
  return options_.dir + "/area_" + std::to_string(area_id) + ".bess";
}

StorageArea* Database::AreaOrNull(uint16_t area_id) const {
  // Leaf lock only: this is the mapper fetch path's re-entry point into the
  // database and must stay reachable while meta_mutex_ is held.
  std::lock_guard<std::mutex> guard(areas_mutex_);
  if (area_id >= areas_.size()) return nullptr;
  return areas_[area_id].get();
}

Status Database::CreateNew() {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  BESS_ASSIGN_OR_RETURN(auto area0, StorageArea::Create(AreaPath(0), 0));
  // Reserve the catalog segment: first allocation => logical page 0.
  BESS_ASSIGN_OR_RETURN(DiskSegment cat, area0->AllocSegment(kCatalogPages));
  if (cat.first_page != kCatalogFirstPage) {
    return Status::Internal("catalog segment not at page 0");
  }
  catalog_segment_ = SegmentId{options_.db_id, 0, cat.first_page};
  StorageArea* a0 = area0.get();
  {
    std::lock_guard<std::mutex> guard(areas_mutex_);
    areas_.push_back(std::move(area0));
  }

  if (options_.use_wal) {
    BESS_ASSIGN_OR_RETURN(
        wal_, LogManager::Open(options_.dir + "/wal", WalOptions(options_)));
  }
  InstallRepairHandlers();
  std::lock_guard<std::mutex> guard(meta_mutex_);
  catalog_dirty_ = true;
  BESS_RETURN_IF_ERROR(SaveCatalogLocked());
  return a0->Sync();
}

Status Database::OpenExisting() {
  // Areas are discovered from the directory (contiguous ids from 0).
  for (uint16_t i = 0;; ++i) {
    if (!File::Exists(AreaPath(i))) break;
    BESS_ASSIGN_OR_RETURN(auto area, StorageArea::Open(AreaPath(i)));
    std::lock_guard<std::mutex> guard(areas_mutex_);
    areas_.push_back(std::move(area));
  }
  if (area_count() == 0) {
    return Status::NotFound("no storage areas in " + options_.dir);
  }
  catalog_segment_ = SegmentId{options_.db_id, 0, kCatalogFirstPage};
  if (options_.use_wal) {
    // The WAL moved from a single file to the <dir>/wal directory. A
    // leftover wal.log may hold logged-but-unforced commits from a crash
    // of the old version; silently starting an empty segmented log would
    // drop them. Refuse instead of guessing.
    if (File::Exists(options_.dir + "/wal.log")) {
      return Status::NotSupported(
          "legacy single-file WAL found at " + options_.dir +
          "/wal.log; this version uses a segmented log directory. Reopen "
          "with the previous version to recover and checkpoint (clean "
          "shutdown), then delete wal.log — or delete it directly only if "
          "it is known to hold no unrecovered commits");
    }
    BESS_ASSIGN_OR_RETURN(
        wal_, LogManager::Open(options_.dir + "/wal", WalOptions(options_)));
    // Repair handlers must be live before recovery: redo's before-image
    // reads may themselves hit rotted pages.
    InstallRepairHandlers();
    BESS_RETURN_IF_ERROR(RunRecovery());
  } else {
    InstallRepairHandlers();
  }
  return LoadCatalog();
}

namespace {
class AreaSink : public PageSink {
 public:
  explicit AreaSink(std::vector<std::unique_ptr<StorageArea>>* areas)
      : areas_(areas) {}
  Status WritePage(PageAddr addr, const void* bytes, Lsn lsn) override {
    if (addr.area >= areas_->size()) {
      return Status::Corruption("recovery references unknown area " +
                                std::to_string(addr.area));
    }
    return (*areas_)[addr.area]->WritePages(addr.page, 1, bytes, lsn);
  }
  Status Sync() override {
    for (auto& a : *areas_) BESS_RETURN_IF_ERROR(a->Sync());
    return Status::OK();
  }

 private:
  std::vector<std::unique_ptr<StorageArea>>* areas_;
};
}  // namespace

Status Database::RunRecovery() {
  AreaSink sink(&areas_);
  RecoveryOptions ropts;
  ropts.redo_workers = options_.recovery_redo_workers;
  // Logical undo of loser index records runs against temporary tree
  // runtimes (synchronous I/O, no bgwriter) opened lazily per index area —
  // the catalog is not loaded yet, but the meta page is page 0 of the
  // area by construction. The runtimes are flushed and torn down before
  // the areas are synced and the log is reset below.
  std::unordered_map<uint16_t, std::unique_ptr<BTreeIndex>> undo_trees;
  ropts.index_undo = [this, &undo_trees](const LogRecord& rec, Lsn chain_tail,
                                         Lsn* new_tail) -> Status {
    auto it = undo_trees.find(rec.index_area);
    if (it == undo_trees.end()) {
      StorageArea* area = AreaOrNull(rec.index_area);
      if (area == nullptr) {
        return Status::Corruption("index record references unknown area " +
                                  std::to_string(rec.index_area));
      }
      BTreeIndex::Options iopts;
      iopts.db = options_.db_id;
      iopts.cache_frames = 64;
      iopts.enable_bgwriter = false;
      iopts.use_async = false;
      iopts.ensure_wal_durable = [this](uint64_t lsn) {
        return wal_->Flush(lsn);
      };
      iopts.append_smo = [this](const LogRecord& smo) {
        return wal_->AppendUnthrottled(smo);
      };
      BESS_ASSIGN_OR_RETURN(auto tree, BTreeIndex::Open(area, iopts));
      it = undo_trees.emplace(rec.index_area, std::move(tree)).first;
    }
    return it->second->UndoLogical(
        rec,
        [&](PageAddr page, const std::string& after) -> Result<Lsn> {
          LogRecord clr;
          clr.type = LogRecordType::kClr;
          clr.txn = rec.txn;
          clr.prev_lsn = chain_tail;
          clr.page = page;
          clr.after = after;
          clr.undo_next = rec.prev_lsn;
          BESS_ASSIGN_OR_RETURN(Lsn lsn, wal_->AppendUnthrottled(clr));
          *new_tail = lsn;
          return lsn;
        });
  };
  RecoveryManager recovery(wal_.get(), &sink, ropts);
  BESS_RETURN_IF_ERROR(recovery.Run());
  for (auto& [area_id, tree] : undo_trees) {
    BESS_RETURN_IF_ERROR(tree->FlushDirty());
  }
  undo_trees.clear();
  last_recovery_stats_ = recovery.stats();
  if (recovery.stats().records_scanned > 0) {
    BESS_INFO("recovery: " << recovery.stats().redo_pages << " pages redone, "
                           << recovery.stats().loser_txns << " losers undone");
  }
  if (recovery.stats().torn_tail) {
    BESS_INFO("recovery: torn log tail, recovered up to LSN "
              << recovery.stats().recovered_tail_lsn);
  }
  if (options_.scrub_on_recovery) {
    // Scrub while the log still exists: this is the last moment the old
    // epoch's images are available for single-page repair.
    ScrubReport report;
    for (auto& area : areas_) {
      Status s = area->Scrub(&report);
      if (!s.ok() && !s.IsCorruption()) return s;
    }
    if (report.verify_failures > 0) {
      BESS_INFO("recovery scrub: " << report.verify_failures << " bad pages, "
                                   << report.repaired << " repaired, "
                                   << report.quarantined << " quarantined");
    }
  }
  {
    std::lock_guard<std::mutex> guard(fpi_mutex_);
    fpi_logged_.clear();
  }
  // Sync the redone pages before truncating the log that could redo them
  // again: commits defer their data sync to exactly this moment (and to
  // Checkpoint), so the reset must not outrun the data.
  for (auto& area : areas_) BESS_RETURN_IF_ERROR(area->Sync());
  return wal_->Reset();
}

// ---- catalog ----------------------------------------------------------------

void Database::EncodeCatalogLocked(std::string* out) const {
  PutFixed32(out, static_cast<uint32_t>(areas_.size()));
  PutFixed16(out, next_file_id_);
  types_.EncodeTo(out);
  PutFixed32(out, static_cast<uint32_t>(files_.size()));
  for (const auto& [id, f] : files_) {
    PutFixed16(out, id);
    PutLengthPrefixed(out, f.name);
    out->push_back(f.multifile ? 1 : 0);
    PutFixed32(out, static_cast<uint32_t>(f.areas.size()));
    for (uint16_t a : f.areas) PutFixed16(out, a);
    PutFixed32(out, static_cast<uint32_t>(f.segments.size()));
    for (uint64_t s : f.segments) PutFixed64(out, s);
    PutFixed64(out, f.active_segment);
    PutFixed32(out, f.next_area);
  }
  PutFixed32(out, static_cast<uint32_t>(roots_by_name_.size()));
  for (const auto& [name, oid] : roots_by_name_) {
    PutLengthPrefixed(out, name);
    char buf[12];
    oid.EncodeTo(buf);
    out->append(buf, 12);
  }
  // Index catalog, appended last so catalogs written before indexes existed
  // (no section at all) still decode.
  PutFixed32(out, static_cast<uint32_t>(index_catalog_.size()));
  for (const auto& [name, area] : index_catalog_) {
    PutLengthPrefixed(out, name);
    PutFixed16(out, area);
  }
}

Status Database::LoadCatalog() {
  StorageArea* a0 = AreaOrNull(0);
  if (a0 == nullptr) return Status::NotFound("no storage area 0");
  std::string blob(static_cast<size_t>(kCatalogPages) * kPageSize, '\0');
  BESS_RETURN_IF_ERROR(
      a0->ReadPages(kCatalogFirstPage, kCatalogPages, blob.data()));
  Decoder head(blob);
  if (head.GetFixed32() != kCatalogMagic) {
    return Status::Corruption("bad catalog magic");
  }
  const uint32_t len = head.GetFixed32();
  const uint32_t crc = head.GetFixed32();
  if (len + 12 > blob.size()) return Status::Corruption("catalog too long");
  Slice payload(blob.data() + 12, len);
  if (crc32c::Unmask(crc) != crc32c::Value(payload.data(), payload.size())) {
    return Status::Corruption("catalog checksum mismatch");
  }

  std::lock_guard<std::mutex> guard(meta_mutex_);
  Decoder dec(payload);
  const uint32_t cataloged_areas = dec.GetFixed32();
  next_file_id_ = dec.GetFixed16();
  if (cataloged_areas != area_count()) {
    return Status::Corruption("catalog/directory area count mismatch");
  }
  BESS_RETURN_IF_ERROR(types_.DecodeFrom(&dec));
  const uint32_t nfiles = dec.GetFixed32();
  files_.clear();
  files_by_name_.clear();
  for (uint32_t i = 0; i < nfiles; ++i) {
    FileInfo f;
    f.file_id = dec.GetFixed16();
    f.name = dec.GetLengthPrefixed().ToString();
    f.multifile = dec.GetBytes(1).data()[0] != 0;
    const uint32_t nareas = dec.GetFixed32();
    for (uint32_t a = 0; a < nareas; ++a) f.areas.push_back(dec.GetFixed16());
    const uint32_t nsegs = dec.GetFixed32();
    for (uint32_t s = 0; s < nsegs; ++s) f.segments.push_back(dec.GetFixed64());
    f.active_segment = dec.GetFixed64();
    f.next_area = dec.GetFixed32();
    if (!dec.ok()) return Status::Corruption("truncated catalog (files)");
    files_by_name_[f.name] = f.file_id;
    files_[f.file_id] = std::move(f);
  }
  const uint32_t nroots = dec.GetFixed32();
  roots_by_name_.clear();
  roots_by_oid_.clear();
  for (uint32_t i = 0; i < nroots; ++i) {
    std::string name = dec.GetLengthPrefixed().ToString();
    Slice oid_bytes = dec.GetBytes(12);
    if (!dec.ok()) return Status::Corruption("truncated catalog (roots)");
    Oid oid = Oid::DecodeFrom(oid_bytes.data());
    roots_by_name_[name] = oid;
    roots_by_oid_[oid] = name;
  }
  index_catalog_.clear();
  if (dec.remaining() >= 4) {  // pre-index catalogs end at the roots
    const uint32_t nindexes = dec.GetFixed32();
    for (uint32_t i = 0; i < nindexes; ++i) {
      std::string name = dec.GetLengthPrefixed().ToString();
      const uint16_t area = dec.GetFixed16();
      if (!dec.ok()) return Status::Corruption("truncated catalog (indexes)");
      index_catalog_[name] = area;
    }
  }
  catalog_dirty_ = false;
  return Status::OK();
}

Status Database::SaveCatalogLocked() {
  if (!catalog_dirty_) return Status::OK();
  std::string payload;
  EncodeCatalogLocked(&payload);
  std::string blob(static_cast<size_t>(kCatalogPages) * kPageSize, '\0');
  if (payload.size() + 12 > blob.size()) {
    return Status::NoSpace("catalog exceeds its segment (" +
                           std::to_string(payload.size()) + " bytes)");
  }
  EncodeFixed32(blob.data(), kCatalogMagic);
  EncodeFixed32(blob.data() + 4, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(blob.data() + 8,
                crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  memcpy(blob.data() + 12, payload.data(), payload.size());
  StorageArea* a0 = AreaOrNull(0);
  if (a0 == nullptr) return Status::NotFound("no storage area 0");
  BESS_RETURN_IF_ERROR(
      a0->WritePages(kCatalogFirstPage, kCatalogPages, blob.data()));
  catalog_dirty_ = false;
  return Status::OK();
}

// ---- types / areas / files ---------------------------------------------------

Result<TypeIdx> Database::RegisterType(const TypeDescriptor& desc) {
  BESS_ASSIGN_OR_RETURN(TypeIdx idx, types_.Register(desc));
  std::lock_guard<std::mutex> guard(meta_mutex_);
  catalog_dirty_ = true;
  return idx;
}

Result<uint16_t> Database::AddStorageArea() {
  // meta_mutex_ serializes concurrent adds; areas_mutex_ (leaf) covers the
  // vector mutation itself against lock-free-path readers via AreaOrNull.
  std::lock_guard<std::mutex> guard(meta_mutex_);
  const uint16_t id = static_cast<uint16_t>(area_count());
  if (id > 255) return Status::NoSpace("OIDs carry 8-bit area numbers");
  BESS_ASSIGN_OR_RETURN(auto area, StorageArea::Create(AreaPath(id), id));
  BESS_RETURN_IF_ERROR(area->Sync());
  InstallRepairHandler(area.get());
  {
    std::lock_guard<std::mutex> areas_guard(areas_mutex_);
    areas_.push_back(std::move(area));
  }
  catalog_dirty_ = true;
  BESS_RETURN_IF_ERROR(SaveCatalogLocked());
  return id;
}

uint32_t Database::area_count() const {
  std::lock_guard<std::mutex> guard(areas_mutex_);
  return static_cast<uint32_t>(areas_.size());
}

Result<uint16_t> Database::CreateFile(const std::string& name,
                                      bool multifile) {
  std::lock_guard<std::mutex> guard(meta_mutex_);
  if (files_by_name_.count(name)) {
    return Status::InvalidArgument("file exists: " + name);
  }
  FileInfo f;
  f.file_id = next_file_id_++;
  f.name = name;
  f.multifile = multifile;
  f.areas.push_back(0);
  const uint16_t id = f.file_id;
  files_by_name_[name] = id;
  files_[id] = std::move(f);
  catalog_dirty_ = true;
  return id;
}

Result<uint16_t> Database::FindFile(const std::string& name) const {
  std::lock_guard<std::mutex> guard(meta_mutex_);
  auto it = files_by_name_.find(name);
  if (it == files_by_name_.end()) return Status::NotFound("file " + name);
  return it->second;
}

Status Database::AddFileArea(uint16_t file_id, uint16_t area_id) {
  std::lock_guard<std::mutex> guard(meta_mutex_);
  auto it = files_.find(file_id);
  if (it == files_.end()) return Status::NotFound("no such file");
  if (!it->second.multifile) {
    return Status::InvalidArgument(
        "plain BeSS files live in a single storage area (use a multifile)");
  }
  if (area_id >= areas_.size()) return Status::NotFound("no such area");
  for (uint16_t a : it->second.areas) {
    if (a == area_id) return Status::OK();
  }
  it->second.areas.push_back(area_id);
  catalog_dirty_ = true;
  return Status::OK();
}

// ---- transactions -------------------------------------------------------------

Txn* Database::Current() { return tl_txn; }

TxnId Database::NextTxnId() {
  return next_txn_id_.fetch_add(1, std::memory_order_relaxed);
}

Result<Txn*> Database::Begin() {
  if (tl_txn != nullptr) {
    return Status::InvalidArgument("thread already has an active transaction");
  }
  Txn* txn = new Txn();
  txn->id = NextTxnId();
  txn->db = this;
  tl_txn = txn;
  BESS_COUNT("txn.begin");
  EventContext ctx;
  ctx.a = txn->id;
  (void)FireEvent(Event::kTransactionBegin, ctx);
  return txn;
}

Result<Lsn> Database::LogPageSet(TxnId txn_id,
                                 const std::vector<PageImage>& pages,
                                 LogRecordType final_record,
                                 std::vector<Lsn>* page_lsns) {
  // Register before the first append: the fuzzy checkpoint's redo floor
  // folds in active transactions' first LSNs, which covers the window where
  // a page is logged but not yet forced (the DPT only learns of it at force
  // time). Reading the tail *before* kBegin keeps the bound conservative
  // against appends that slip in between. A transaction that already logged
  // index records (LogIndexRecord) is registered and admitted — its page
  // records continue the existing chain instead of opening a second one.
  bool had_chain = false;
  Lsn chain = kNullLsn;  // newest appended record of this txn's chain
  {
    std::lock_guard<std::mutex> guard(rec_mutex_);
    auto lt = logging_txns_.find(txn_id);
    if (lt != logging_txns_.end() && lt->second.last_lsn != kNullLsn) {
      had_chain = true;
      chain = lt->second.last_lsn;
    } else {
      logging_txns_[txn_id].first_lsn = wal_->tail_lsn();
    }
  }
  auto fail = [&](Status st) -> Result<Lsn> {
    // Nothing was forced, but the appended records cannot be left orphaned:
    // once the txn is unregistered it no longer pins the retention floor,
    // and a later checkpoint could recycle the segment holding the chain's
    // early records while newer ones survive — restart undo would then walk
    // prev_lsn into recycled log and fail forever. Close the chain now
    // (kAbort + CLRs + kEnd, best-effort: appends only fail here when the
    // log is wedged, and a wedged log blocks checkpoints — and thus
    // recycling — too, so the fully-retained chain stays undoable).
    (void)AbortLoggedChain(txn_id, chain);
    UnregisterLoggingTxn(txn_id);
    return st;
  };
  // Admission control: only the kBegin append is subject to log-full
  // backpressure. Once a transaction is admitted, its remaining records go
  // through unthrottled — a registered transaction pins the redo floor, so
  // throttling it mid-flight would wait on a checkpoint that can never free
  // space below its own records (self-deadlock until timeout).
  Lsn prev = chain;
  if (!had_chain) {
    LogRecord begin;
    begin.type = LogRecordType::kBegin;
    begin.txn = txn_id;
    auto begin_r = wal_->Append(begin);
    if (!begin_r.ok()) return fail(begin_r.status());
    prev = *begin_r;
    chain = prev;
  }
  std::string before(kPageSize, '\0');
  for (const PageImage& img : pages) {
    LogRecord rec;
    rec.type = LogRecordType::kPageWrite;
    rec.txn = txn_id;
    rec.prev_lsn = prev;
    rec.page = PageAddr{img.db, img.area, img.page};
    StorageArea* a = AreaOrNull(img.area);
    if (a == nullptr) return fail(Status::Internal("dirty page in unknown area"));
    Status rs = a->ReadPages(img.page, 1, before.data());
    if (!rs.ok()) return fail(rs);
    bool need_fpi = false;
    Lsn fpi_lsn = kNullLsn;
    {
      std::lock_guard<std::mutex> guard(fpi_mutex_);
      auto it = fpi_logged_.find(rec.page.Pack());
      if (it == fpi_logged_.end() || it->second < wal_->oldest_lsn()) {
        need_fpi = true;
      } else {
        fpi_lsn = it->second;
      }
    }
    if (!need_fpi) {
      // Pin the FPI this transaction now relies on, then re-validate.
      // Mark-then-verify pairs with the checkpoint's publish-then-fold:
      // a checkpoint publishes its tentative release floor (fpi_floor_)
      // *before* folding relied FPIs into the final floor under rec_mutex_.
      // Either our mark lands before the fold (the checkpoint retains the
      // FPI's segment), or the fold ran first — then rec_mutex_ ordering
      // guarantees we see the published floor here and relog instead of
      // relying on an image the checkpoint may already be recycling.
      {
        std::lock_guard<std::mutex> guard(rec_mutex_);
        auto& lt = logging_txns_[txn_id];
        if (lt.relied_fpi == kNullLsn || fpi_lsn < lt.relied_fpi) {
          lt.relied_fpi = fpi_lsn;
        }
      }
      if (fpi_lsn < fpi_floor_.load(std::memory_order_acquire) ||
          fpi_lsn < wal_->oldest_lsn()) {
        need_fpi = true;
      }
    }
    if (need_fpi) {
      // No FPI for this page in the retained log (never logged, or its
      // segment was recycled): log its current durable image so a media
      // failure later can be repaired to a byte-exact state. Costs no
      // extra I/O — the image is the before-image we just read. prev_lsn
      // stays kNullLsn so undo never walks into it.
      LogRecord fpi;
      fpi.type = LogRecordType::kFullPageImage;
      fpi.txn = txn_id;
      fpi.page = rec.page;
      fpi.after = before;
      auto fpi_r = wal_->AppendUnthrottled(fpi);
      if (!fpi_r.ok()) return fail(fpi_r.status());
      {
        std::lock_guard<std::mutex> guard(fpi_mutex_);
        fpi_logged_[rec.page.Pack()] = *fpi_r;
      }
      BESS_COUNT("wal.fpi.records");
    }
    rec.before = before;
    rec.after = img.bytes;
    auto rec_r = wal_->AppendUnthrottled(rec);
    if (!rec_r.ok()) return fail(rec_r.status());
    prev = *rec_r;
    chain = prev;
    if (page_lsns != nullptr) page_lsns->push_back(prev);
    {
      // The undo chain head, snapshotted by checkpoints so restart undo of
      // a txn active at checkpoint time starts at the right record.
      std::lock_guard<std::mutex> guard(rec_mutex_);
      logging_txns_[txn_id].last_lsn = prev;
    }
  }
  LogRecord fin;
  fin.type = final_record;
  fin.txn = txn_id;
  fin.prev_lsn = prev;
  auto lsn_r = wal_->AppendUnthrottled(fin);
  if (!lsn_r.ok()) return fail(lsn_r.status());
  Status fs = wal_->Flush(*lsn_r);  // WAL rule; flushes coalesce
  if (!fs.ok()) return fail(fs);
  return *lsn_r;
}

Status Database::ForcePages(const std::vector<PageImage>& pages, Lsn lsn,
                            const std::vector<Lsn>* page_lsns) {
  std::vector<StorageArea*> touched;
  for (size_t i = 0; i < pages.size(); ++i) {
    const PageImage& img = pages[i];
    StorageArea* a = AreaOrNull(img.area);
    if (a == nullptr) return Status::Internal("dirty page in unknown area");
    BESS_RETURN_IF_ERROR(a->WritePages(img.page, 1, img.bytes.data(), lsn));
    if (options_.use_wal && wal_ != nullptr) {
      // DPT entry strictly after the write: every entry a checkpoint trim
      // swaps out describes a completed write its area sync then covers.
      // The recLSN is the page's own kPageWrite record (never the commit
      // LSN — redo from the commit record would skip the page's images).
      const Lsn rec_lsn =
          page_lsns != nullptr && i < page_lsns->size() ? (*page_lsns)[i]
                                                        : lsn;
      if (rec_lsn != kNullLsn) {
        TouchDpt(PageAddr{img.db, img.area, img.page}.Pack(), rec_lsn);
      }
    }
    if (page_cache_ != nullptr) {
      // Forced pages bypass the store seam; keep the cached copies fresh.
      page_cache_->Refresh(img.db, img.area, img.page, img.bytes.data());
    }
    if (std::find(touched.begin(), touched.end(), a) == touched.end()) {
      touched.push_back(a);
    }
  }
  // Strict force syncs here, inside the commit. With the WAL on the sync
  // is deferred (the flushed commit record + after-images carry
  // durability; Checkpoint syncs before truncating the log), so the
  // commit path waits on one fsync chain instead of two.
  if (!options_.use_wal || options_.sync_on_commit) {
    for (StorageArea* a : touched) BESS_RETURN_IF_ERROR(a->Sync());
  }
  return Status::OK();
}

Status Database::LogAndForce(TxnId txn_id,
                             const std::vector<PageImage>& pages) {
  if (pages.empty()) {
    // No object pages to force — but the transaction may have logged index
    // records (steal/no-force: nothing to force at commit, durability is
    // the flushed commit record alone). Close its chain.
    if (!options_.use_wal || wal_ == nullptr) return Status::OK();
    const Lsn chain = TxnChainHead(txn_id);
    if (chain == kNullLsn) return Status::OK();
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.txn = txn_id;
    commit.prev_lsn = chain;
    auto commit_r = wal_->AppendUnthrottled(commit);
    Status cs = commit_r.ok() ? wal_->Flush(*commit_r) : commit_r.status();
    if (!cs.ok()) {
      // The commit was never acknowledged; close the chain as an abort so
      // its records cannot be half-recycled (same as LogPageSet's fail).
      (void)AbortLoggedChain(txn_id, chain);
      UnregisterLoggingTxn(txn_id);
      return cs;
    }
    LogRecord end;
    end.type = LogRecordType::kEnd;
    end.txn = txn_id;
    end.prev_lsn = *commit_r;
    Status es = wal_->AppendUnthrottled(end).status();
    UnregisterLoggingTxn(txn_id);
    return es;
  }
  Lsn commit_lsn = kNullLsn;
  std::vector<Lsn> page_lsns;
  if (options_.use_wal) {
    // LogPageSet unregisters the txn itself on failure (nothing forced).
    BESS_ASSIGN_OR_RETURN(
        commit_lsn,
        LogPageSet(txn_id, pages, LogRecordType::kCommit, &page_lsns));
  }
  // no-steal / force policy; trailers carry the commit LSN as page LSN
  Status fs = ForcePages(pages, commit_lsn,
                         options_.use_wal ? &page_lsns : nullptr);
  if (!fs.ok()) {
    // Partially forced commit: the txn stays registered so the retention
    // floor keeps its records (restart undo must be able to revert the
    // pages that did land) until this process restarts.
    return fs;
  }
  if (options_.use_wal) {
    LogRecord end;
    end.type = LogRecordType::kEnd;
    end.txn = txn_id;
    // Unthrottled like every post-admission record: the txn still pins the
    // retention floor, so throttling here would wait on a checkpoint that
    // cannot free space below the txn's own records.
    Status es = wal_->AppendUnthrottled(end).status();
    // Forced pages are in the DPT now; the DPT carries retention from here
    // even if the End append failed.
    UnregisterLoggingTxn(txn_id);
    return es;
  }
  return Status::OK();
}

void Database::UnregisterLoggingTxn(TxnId txn_id) {
  std::lock_guard<std::mutex> guard(rec_mutex_);
  logging_txns_.erase(txn_id);
}

Status Database::AbortLoggedChain(TxnId txn_id, Lsn last_lsn) {
  if (wal_ == nullptr || last_lsn == kNullLsn) return Status::OK();
  // A transaction whose records reached the log but whose pages were never
  // forced. Plain kAbort+kEnd would be wrong: restart redo blindly repeats
  // history, so the chain's after-images would land on disk with no loser
  // undo to remove them. Mirror restart undo instead — walk the prev_lsn
  // chain appending CLRs that (re)apply the before-images, then kEnd; redo
  // of the closed chain nets out to the untouched disk state, and analysis
  // never needs records below whatever suffix of the chain is retained.
  LogRecord abort_rec;
  abort_rec.type = LogRecordType::kAbort;
  abort_rec.txn = txn_id;
  abort_rec.prev_lsn = last_lsn;
  BESS_ASSIGN_OR_RETURN(Lsn tail, wal_->AppendUnthrottled(abort_rec));
  Lsn cur = last_lsn;
  while (cur != kNullLsn) {
    BESS_ASSIGN_OR_RETURN(LogRecord rec, wal_->ReadRecord(cur));
    if (rec.type == LogRecordType::kPageWrite && !rec.before.empty()) {
      LogRecord clr;
      clr.type = LogRecordType::kClr;
      clr.txn = txn_id;
      clr.prev_lsn = tail;
      clr.page = rec.page;
      clr.after = rec.before;
      clr.undo_next = rec.prev_lsn;
      BESS_ASSIGN_OR_RETURN(tail, wal_->AppendUnthrottled(clr));
      BESS_COUNT("wal.abort.clrs");
    } else if (rec.type == LogRecordType::kIndexPut ||
               rec.type == LogRecordType::kIndexDelete) {
      // Logical undo against the live tree (a split may have moved the key
      // since the record was written); the runtime hands back the leaf's
      // post-undo image, which the CLR carries for blind restart redo.
      BESS_ASSIGN_OR_RETURN(std::shared_ptr<BTreeIndex> rt,
                            IndexRuntime(rec.index_area));
      BESS_RETURN_IF_ERROR(rt->UndoLogical(
          rec,
          [&](PageAddr page, const std::string& after) -> Result<Lsn> {
            LogRecord clr;
            clr.type = LogRecordType::kClr;
            clr.txn = txn_id;
            clr.prev_lsn = tail;
            clr.page = page;
            clr.after = after;
            clr.undo_next = rec.prev_lsn;
            BESS_ASSIGN_OR_RETURN(tail, wal_->AppendUnthrottled(clr));
            BESS_COUNT("wal.abort.clrs");
            return tail;
          }));
    }
    cur = rec.prev_lsn;
  }
  LogRecord end;
  end.type = LogRecordType::kEnd;
  end.txn = txn_id;
  end.prev_lsn = tail;
  BESS_ASSIGN_OR_RETURN(Lsn end_lsn, wal_->AppendUnthrottled(end));
  return wal_->Flush(end_lsn);
}

void Database::TouchDpt(uint64_t page_key, Lsn rec_lsn) {
  std::lock_guard<std::mutex> guard(rec_mutex_);
  auto [it, inserted] = dpt_.try_emplace(page_key, rec_lsn);
  if (!inserted && rec_lsn < it->second) it->second = rec_lsn;
}

void Database::InstallRepairHandler(StorageArea* area) {
  const uint16_t area_id = area->area_id();
  area->set_repair_handler(
      [this, area_id](PageId page, uint32_t expected_crc,
                      std::string* image) -> Status {
        if (wal_ == nullptr) {
          return Status::NotFound("no WAL to repair from");
        }
        Status s = RepairPageFromLog(wal_.get(), options_.db_id, area_id,
                                     page, expected_crc, image);
        if (!s.ok()) BESS_COUNT("page.repair.miss");
        return s;
      });
}

void Database::InstallRepairHandlers() {
  std::lock_guard<std::mutex> guard(areas_mutex_);
  for (auto& area : areas_) InstallRepairHandler(area.get());
}

Status Database::Commit(Txn* txn, CommitStats* out) {
  const uint64_t start_ns = obs::Trace::NowNs();
  if (txn == nullptr || txn != tl_txn) {
    return Status::InvalidArgument("commit of foreign transaction");
  }
  if (txn->poisoned) {
    Status poison = txn->poison_status;
    BESS_RETURN_IF_ERROR(Abort(txn));
    return poison.ok() ? Status::Aborted("transaction was poisoned") : poison;
  }

  auto seg_pred = [this, txn](SegmentId id) {
    LockMode m;
    return locks_.Holds(txn->id, LockKey::Segment(id.Pack()), &m) &&
           m == LockMode::kX;
  };
  auto page_pred = [this, txn](PageAddr pa) {
    LockMode m;
    return locks_.Holds(txn->id, LockKey::Page(pa.db, pa.area, pa.page), &m) &&
           m == LockMode::kX;
  };

  std::vector<PageImage> pages;
  BESS_RETURN_IF_ERROR(mapper_->CollectDirtyFor(&pages, seg_pred, page_pred));
  {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    if (catalog_dirty_) {
      // The catalog rides along in the same atomic commit.
      std::string payload;
      EncodeCatalogLocked(&payload);
      std::string blob(static_cast<size_t>(kCatalogPages) * kPageSize, '\0');
      if (payload.size() + 12 > blob.size()) {
        return Status::NoSpace("catalog exceeds its segment");
      }
      EncodeFixed32(blob.data(), kCatalogMagic);
      EncodeFixed32(blob.data() + 4, static_cast<uint32_t>(payload.size()));
      EncodeFixed32(
          blob.data() + 8,
          crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
      memcpy(blob.data() + 12, payload.data(), payload.size());
      for (uint32_t p = 0; p < kCatalogPages; ++p) {
        PageImage img;
        img.db = options_.db_id;
        img.area = 0;
        img.page = kCatalogFirstPage + p;
        img.bytes.assign(blob.data() + static_cast<size_t>(p) * kPageSize,
                         kPageSize);
        pages.push_back(std::move(img));
      }
      catalog_dirty_ = false;
    }
  }

  const Lsn wal_before = wal_ != nullptr ? wal_->tail_lsn() : 0;
  Status s = LogAndForce(txn->id, pages);
  if (!s.ok()) {
    // Commit failed before any page hit the areas (WAL write/flush error) —
    // roll the transaction back.
    txn->poisoned = true;
    txn->poison_status = s;
    (void)Abort(txn);
    return s;
  }
  BESS_RETURN_IF_ERROR(mapper_->MarkCleanFor(seg_pred, page_pred));
  const size_t locks_held = locks_.HeldKeys(txn->id).size();
  locks_.ReleaseAll(txn->id);
  EventContext ctx;
  ctx.a = txn->id;
  (void)FireEvent(Event::kTransactionCommit, ctx);
  tl_txn = nullptr;
  delete txn;
  const uint64_t dur_ns = obs::Trace::NowNs() - start_ns;
  BESS_COUNT("txn.commit");
  BESS_HIST("txn.commit.latency", dur_ns);
  if (out != nullptr) {
    out->log_bytes =
        wal_ != nullptr ? static_cast<uint64_t>(wal_->tail_lsn() - wal_before)
                        : 0;
    out->pages_forced = static_cast<uint32_t>(pages.size());
    out->locks_held = static_cast<uint32_t>(locks_held);
    out->duration_ns = dur_ns;
  }
  return Status::OK();
}

Status Database::Abort(Txn* txn) {
  if (txn == nullptr || txn != tl_txn) {
    return Status::InvalidArgument("abort of foreign transaction");
  }
  // Index records are steal/no-force: unlike object pages their effects are
  // live in the trees (and possibly on disk) right now, so an abort must
  // close the WAL chain with logical undo + CLRs. Object-page records in
  // the same chain get before-image CLRs — redundant with the in-memory
  // revert below, but required for restart redo to net out. No-op for
  // transactions that never logged (the common abort: nothing committed).
  if (wal_ != nullptr) {
    const Lsn chain = TxnChainHead(txn->id);
    if (chain != kNullLsn) (void)AbortLoggedChain(txn->id, chain);
    UnregisterLoggingTxn(txn->id);
  }
  // Roll back in-memory state: segments this txn created/mutated
  // structurally are evicted (refault from disk); pages it dirtied are
  // restored from their undo images.
  std::vector<uint64_t> keys = locks_.HeldKeys(txn->id);
  for (uint64_t key : keys) {
    LockMode m;
    if (!locks_.Holds(txn->id, key, &m) || m != LockMode::kX) continue;
    if (LockKey::IsSegment(key)) {
      (void)mapper_->Evict(SegmentId::Unpack(LockKey::UnpackSegment(key)),
                           /*drop_dirty=*/true);
    }
  }
  for (uint64_t key : keys) {
    LockMode m;
    if (!locks_.Holds(txn->id, key, &m) || m != LockMode::kX) continue;
    if (LockKey::IsPage(key)) {
      uint16_t db, area;
      uint32_t page;
      LockKey::UnpackPage(key, &db, &area, &page);
      (void)mapper_->RevertPage(PageAddr{db, area, page});
    }
  }
  locks_.ReleaseAll(txn->id);
  EventContext ctx;
  ctx.a = txn->id;
  (void)FireEvent(Event::kTransactionAbort, ctx);
  tl_txn = nullptr;
  delete txn;
  BESS_COUNT("txn.abort");
  return Status::OK();
}

// ---- secondary indexes (DESIGN.md §14) --------------------------------------

Result<Lsn> Database::LogIndexRecord(TxnId txn_id, LogRecord&& rec) {
  if (wal_ == nullptr) {
    return Status::Internal("index logging without a WAL");
  }
  Lsn prev = kNullLsn;
  bool fresh = false;
  {
    std::lock_guard<std::mutex> guard(rec_mutex_);
    auto it = logging_txns_.find(txn_id);
    if (it != logging_txns_.end()) {
      prev = it->second.last_lsn;
    } else {
      // First record of this transaction: register before appending so the
      // checkpoint redo floor covers the chain (same rule as LogPageSet).
      fresh = true;
      logging_txns_[txn_id].first_lsn = wal_->tail_lsn();
    }
  }
  if (fresh) {
    // Admission control: the throttled kBegin is the transaction's only
    // gate; everything after goes through unthrottled (a registered txn
    // pins the redo floor — throttling it would self-deadlock on the
    // checkpoint it is waiting for).
    LogRecord begin;
    begin.type = LogRecordType::kBegin;
    begin.txn = txn_id;
    auto begin_r = wal_->Append(begin);
    if (!begin_r.ok()) {
      UnregisterLoggingTxn(txn_id);
      return begin_r.status();
    }
    prev = *begin_r;
  }
  rec.txn = txn_id;
  rec.prev_lsn = prev;
  BESS_ASSIGN_OR_RETURN(Lsn lsn, wal_->AppendUnthrottled(rec));
  {
    std::lock_guard<std::mutex> guard(rec_mutex_);
    logging_txns_[txn_id].last_lsn = lsn;
  }
  return lsn;
}

Lsn Database::TxnChainHead(TxnId txn_id) {
  std::lock_guard<std::mutex> guard(rec_mutex_);
  auto it = logging_txns_.find(txn_id);
  return it == logging_txns_.end() ? kNullLsn : it->second.last_lsn;
}

Result<std::shared_ptr<BTreeIndex>> Database::IndexRuntime(uint16_t area_id) {
  {
    std::lock_guard<std::mutex> guard(indexes_mutex_);
    auto it = index_runtimes_.find(area_id);
    if (it != index_runtimes_.end()) return it->second;
  }
  StorageArea* area = AreaOrNull(area_id);
  if (area == nullptr) {
    return Status::NotFound("no storage area " + std::to_string(area_id));
  }
  BTreeIndex::Options iopts;
  iopts.db = options_.db_id;
  if (wal_ != nullptr) {
    // Same write-back coupling as the page cache: a cleaned frame parks in
    // the DPT until a checkpoint sync verifiably covers the write, and the
    // WAL-before-data gate holds the write back until its LSN is durable.
    iopts.on_cleaned = [this](uint64_t key, uint64_t rec_lsn) {
      TouchDpt(key, rec_lsn != 0 ? rec_lsn : wal_->oldest_lsn());
    };
    iopts.ensure_wal_durable = [this](uint64_t lsn) {
      return wal_->Flush(lsn);
    };
    iopts.append_smo = [this](const LogRecord& smo) {
      return wal_->AppendUnthrottled(smo);
    };
  }
  BESS_ASSIGN_OR_RETURN(auto tree, BTreeIndex::Open(area, iopts));
  std::shared_ptr<BTreeIndex> shared(std::move(tree));
  std::lock_guard<std::mutex> guard(indexes_mutex_);
  auto [it, inserted] = index_runtimes_.emplace(area_id, std::move(shared));
  return it->second;  // a racing opener may have won; use whoever did
}

Result<Index> Database::CreateIndex(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("index name required");
  uint16_t area_id = 0;
  {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    if (index_catalog_.count(name) != 0) {
      return Status::InvalidArgument("index exists: " + name);
    }
    const uint16_t id = static_cast<uint16_t>(area_count());
    if (id > 255) return Status::NoSpace("OIDs carry 8-bit area numbers");
    BESS_ASSIGN_OR_RETURN(auto area, StorageArea::Create(AreaPath(id), id));
    BESS_RETURN_IF_ERROR(BTreeIndex::Format(area.get()));
    BESS_RETURN_IF_ERROR(area->Sync());
    InstallRepairHandler(area.get());
    {
      std::lock_guard<std::mutex> areas_guard(areas_mutex_);
      areas_.push_back(std::move(area));
    }
    index_catalog_[name] = id;
    catalog_dirty_ = true;
    // Creation is made durable by the catalog save, not the WAL — which
    // means the save must be synced here: the direct catalog write has no
    // WAL image to redo from, and its trailer stamp only reaches the file
    // on Sync (a commit-riding catalog save gets both from ForcePages).
    BESS_RETURN_IF_ERROR(SaveCatalogLocked());
    StorageArea* a0 = AreaOrNull(0);
    if (a0 == nullptr) return Status::NotFound("no storage area 0");
    BESS_RETURN_IF_ERROR(a0->Sync());
    area_id = id;
  }
  BESS_COUNT("index.create");
  return OpenHandle(name, area_id);
}

Result<Index> Database::OpenIndex(const std::string& name) {
  uint16_t area_id = 0;
  {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    auto it = index_catalog_.find(name);
    if (it == index_catalog_.end()) {
      return Status::NotFound("no index named " + name);
    }
    area_id = it->second;
  }
  return OpenHandle(name, area_id);
}

Result<Index> Database::OpenHandle(const std::string& name, uint16_t area_id) {
  BESS_ASSIGN_OR_RETURN(std::shared_ptr<BTreeIndex> rt, IndexRuntime(area_id));
  Index handle;
  handle.db_ = this;
  handle.impl_ = std::move(rt);
  handle.name_ = name;
  return handle;
}

Status Database::DropIndex(const std::string& name) {
  uint16_t area_id = 0;
  {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    auto it = index_catalog_.find(name);
    if (it == index_catalog_.end()) {
      return Status::NotFound("no index named " + name);
    }
    area_id = it->second;
    index_catalog_.erase(it);
    catalog_dirty_ = true;
    BESS_RETURN_IF_ERROR(SaveCatalogLocked());
    // Same durability rule as CreateIndex: the direct save needs its sync.
    StorageArea* a0 = AreaOrNull(0);
    if (a0 == nullptr) return Status::NotFound("no storage area 0");
    BESS_RETURN_IF_ERROR(a0->Sync());
  }
  std::shared_ptr<BTreeIndex> victim;
  {
    std::lock_guard<std::mutex> guard(indexes_mutex_);
    auto it = index_runtimes_.find(area_id);
    if (it != index_runtimes_.end()) {
      victim = std::move(it->second);
      index_runtimes_.erase(it);
    }
  }
  victim.reset();  // outstanding handles keep the runtime alive until dropped
  BESS_COUNT("index.drop");
  return Status::OK();
}

std::vector<std::string> Database::ListIndexes() const {
  std::lock_guard<std::mutex> guard(meta_mutex_);
  std::vector<std::string> names;
  names.reserve(index_catalog_.size());
  for (const auto& [name, area] : index_catalog_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

// ---- Index handle -----------------------------------------------------------

// Shared prologue of Index::Put/Delete: resolve the acting transaction id
// (autocommit mints a fresh one) and refuse poisoned transactions.
Status Database::IndexTxnPrologue(Txn* txn, bool* autocommit, TxnId* id) {
  if (txn != nullptr) {
    if (txn->db != this) {
      return Status::InvalidArgument("index write under foreign transaction");
    }
    if (txn->poisoned) {
      return txn->poison_status.ok()
                 ? Status::Aborted("transaction was poisoned")
                 : txn->poison_status;
    }
    *autocommit = false;
    *id = txn->id;
  } else {
    *autocommit = true;
    *id = NextTxnId();
  }
  return Status::OK();
}

Status Index::Put(Txn* txn, Slice key, Slice value) {
  if (!valid()) return Status::InvalidArgument("invalid index handle");
  bool autocommit = false;
  TxnId id = kNoTxn;
  BESS_RETURN_IF_ERROR(db_->IndexTxnPrologue(txn, &autocommit, &id));
  BTreeIndex::RecordLogger logger;
  if (db_->wal_ != nullptr) {
    logger = [this, id](LogRecord&& rec) {
      return db_->LogIndexRecord(id, std::move(rec));
    };
  }
  Status s = impl_->Put(key, value, logger);
  return db_->FinishIndexWrite(txn, id, autocommit, s);
}

Status Index::Delete(Txn* txn, Slice key, bool* existed) {
  if (!valid()) return Status::InvalidArgument("invalid index handle");
  bool autocommit = false;
  TxnId id = kNoTxn;
  BESS_RETURN_IF_ERROR(db_->IndexTxnPrologue(txn, &autocommit, &id));
  BTreeIndex::RecordLogger logger;
  if (db_->wal_ != nullptr) {
    logger = [this, id](LogRecord&& rec) {
      return db_->LogIndexRecord(id, std::move(rec));
    };
  }
  bool was_there = false;
  Status s = impl_->Delete(key, &was_there, logger);
  if (existed != nullptr) *existed = was_there;
  return db_->FinishIndexWrite(txn, id, autocommit, s);
}

Status Database::FinishIndexWrite(Txn* txn, TxnId id, bool autocommit,
                                  Status op) {
  if (!op.ok()) {
    if (wal_ != nullptr) {
      if (autocommit) {
        // Close whatever chain the failed op left behind (possibly none).
        const Lsn chain = TxnChainHead(id);
        if (chain != kNullLsn) (void)AbortLoggedChain(id, chain);
        UnregisterLoggingTxn(id);
      } else if (!txn->poisoned) {
        // The tree and the txn's chain may disagree now; only Abort's
        // logical undo reconciles them. Poison so commit refuses.
        txn->poisoned = true;
        txn->poison_status = op;
      }
    }
    return op;
  }
  if (autocommit && wal_ != nullptr) {
    // Micro-commit: kCommit + flush + kEnd on the chain (index pages are
    // steal/no-force — nothing to force, the flushed record is the commit).
    return LogAndForce(id, {});
  }
  return Status::OK();
}

Result<bool> Index::Get(Slice key, std::string* value) const {
  if (!valid()) return Status::InvalidArgument("invalid index handle");
  return impl_->Get(key, value);
}

Status Index::Scan(
    Slice lo, Slice hi,
    const std::function<Status(Slice key, Slice value)>& fn) const {
  if (!valid()) return Status::InvalidArgument("invalid index handle");
  return impl_->Scan(lo, hi, fn);
}

// ---- object lifecycle ---------------------------------------------------------

Result<SegmentId> Database::NewObjectSegmentLocked(FileInfo* file,
                                                   uint32_t min_data_bytes) {
  // Pick the placement area: plain files always use their single area,
  // multifiles round-robin across their placement set (parallel I/O, §2).
  uint16_t area_id = file->areas[0];
  if (file->multifile && !file->areas.empty()) {
    area_id = file->areas[file->next_area % file->areas.size()];
    file->next_area++;
  }
  StorageArea* area = AreaOrNull(area_id);
  if (area == nullptr) return Status::NotFound("no storage area");

  const size_t slotted_bytes = SlottedImageSize(options_.slot_capacity,
                                                options_.outbound_capacity);
  const uint32_t slotted_pages =
      static_cast<uint32_t>((slotted_bytes + kPageSize - 1) / kPageSize);
  uint32_t data_pages = options_.data_segment_pages;
  const uint32_t need = static_cast<uint32_t>(
      (min_data_bytes + kPageSize - 1) / kPageSize);
  if (need > data_pages) data_pages = need;

  BESS_ASSIGN_OR_RETURN(DiskSegment slotted, area->AllocSegment(slotted_pages));
  BESS_ASSIGN_OR_RETURN(DiskSegment data, area->AllocSegment(data_pages));

  const SegmentId id{options_.db_id, area_id, slotted.first_page};
  // Persist an empty, formatted image immediately: if the creating
  // transaction aborts, the catalog still points at a valid (empty)
  // segment, so scans and fetches keep working.
  {
    std::string image(static_cast<size_t>(slotted.page_count) * kPageSize,
                      '\0');
    BESS_ASSIGN_OR_RETURN(
        SlottedView view,
        SlottedView::Format(image.data(), image.size(), id, file->file_id,
                            options_.slot_capacity,
                            options_.outbound_capacity));
    SlottedHeader* h = view.header();
    h->data_area = area_id;
    h->data_first_page = data.first_page;
    h->data_page_count = data.page_count;
    BESS_RETURN_IF_ERROR(
        area->WritePages(slotted.first_page, slotted.page_count,
                         image.data()));
    std::string zeros(static_cast<size_t>(data.page_count) * kPageSize, '\0');
    BESS_RETURN_IF_ERROR(
        area->WritePages(data.first_page, data.page_count, zeros.data()));
  }
  // Creation owns the segment exclusively for this transaction.
  Txn* txn = Current();
  if (txn != nullptr && txn->db == this) {
    BESS_RETURN_IF_ERROR(locks_.Acquire(txn->id, LockKey::Segment(id.Pack()),
                                        LockMode::kX,
                                        options_.lock_timeout_ms));
  }
  BESS_ASSIGN_OR_RETURN(
      SlottedView view,
      mapper_->InstallNewSegment(id, file->file_id, slotted.page_count,
                                 options_.slot_capacity,
                                 options_.outbound_capacity, area_id,
                                 data.first_page, data.page_count));
  (void)view;
  file->segments.push_back(id.Pack());
  file->active_segment = id.Pack();
  catalog_dirty_ = true;
  return id;
}

Result<Slot*> Database::CreateObject(uint16_t file_id, TypeIdx type,
                                     uint32_t size, const void* init) {
  Txn* txn = Current();
  if (txn != nullptr && txn->poisoned) return txn->poison_status;

  std::lock_guard<std::mutex> guard(meta_mutex_);
  auto it = files_.find(file_id);
  if (it == files_.end()) return Status::NotFound("no such file");
  FileInfo* file = &it->second;

  // Big objects get their own disk segment but a slot in a normal segment
  // (transparent large objects, §2.1; up to 64 KB).
  if (size > kMaxTransparentObjectSize) {
    return Status::InvalidArgument(
        "objects above 64 KB must use the byte-range large-object class "
        "(bess::LargeObject)");
  }
  const bool large = size >= options_.large_object_threshold;

  // Find a home segment with room (slot + data space for small objects).
  for (int attempt = 0; attempt < 2; ++attempt) {
    SegmentId home = SegmentId::Unpack(file->active_segment);
    if (file->active_segment == 0 || !home.valid()) {
      BESS_ASSIGN_OR_RETURN(home, NewObjectSegmentLocked(file, large ? 0 : size));
    }
    // Take the segment X lock (creation mutates control structures).
    if (txn != nullptr && txn->db == this) {
      Status s = locks_.Acquire(txn->id, LockKey::Segment(home.Pack()),
                                LockMode::kX, options_.lock_timeout_ms);
      if (!s.ok()) return s;
    }
    Result<Slot*> slot = Status::Internal("");
    if (large) {
      const uint32_t pages =
          static_cast<uint32_t>((size + kPageSize - 1) / kPageSize);
      StorageArea* area = AreaOrNull(home.area);
      if (area == nullptr) return Status::NotFound("no storage area");
      BESS_ASSIGN_OR_RETURN(DiskSegment lo, area->AllocSegment(pages));
      slot = mapper_->CreateLargeObject(home, type, size, home.area,
                                        lo.first_page,
                                        static_cast<uint16_t>(lo.page_count));
      if (slot.ok() && init != nullptr) {
        memcpy(reinterpret_cast<void*>((*slot)->dp), init, size);
      } else if (!slot.ok()) {
        (void)area->FreeSegment(lo.first_page);
      }
    } else {
      slot = mapper_->CreateObject(home, type, size, init);
    }
    if (slot.ok()) return slot;
    if (!slot.status().IsNoSpace()) return slot;
    // Active segment full: open a fresh one and retry once.
    BESS_ASSIGN_OR_RETURN(home, NewObjectSegmentLocked(file, large ? 0 : size));
  }
  return Status::Internal("object placement failed twice");
}

Status Database::DeleteObject(Slot* slot) {
  SegmentId id;
  uint16_t slot_no;
  BESS_RETURN_IF_ERROR(mapper_->ResolveSlotAddress(slot, &id, &slot_no));
  Txn* txn = Current();
  if (txn != nullptr && txn->db == this) {
    BESS_RETURN_IF_ERROR(locks_.Acquire(txn->id, LockKey::Segment(id.Pack()),
                                        LockMode::kX,
                                        options_.lock_timeout_ms));
  }
  // Referential integrity: a deleted root loses its name (§2.5).
  auto oid = OidOf(slot);
  if (oid.ok()) {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    auto it = roots_by_oid_.find(*oid);
    if (it != roots_by_oid_.end()) {
      roots_by_name_.erase(it->second);
      roots_by_oid_.erase(it);
      catalog_dirty_ = true;
    }
  }
  return mapper_->DeleteObject(id, slot_no);
}

Result<Oid> Database::OidOf(Slot* slot) {
  SegmentId id;
  uint16_t slot_no;
  BESS_RETURN_IF_ERROR(mapper_->ResolveSlotAddress(slot, &id, &slot_no));
  if (id.area > 255) return Status::Internal("area id exceeds OID range");
  Oid oid;
  oid.host = options_.host_id;
  oid.db = static_cast<uint8_t>(id.db);
  oid.area = static_cast<uint8_t>(id.area);
  oid.page = id.first_page;
  oid.slot = slot_no;
  oid.uniq = static_cast<uint16_t>(slot->uniquifier);  // approximate (§2.1)
  return oid;
}

Result<Slot*> Database::Deref(const Oid& oid) {
  if (oid.db != static_cast<uint8_t>(options_.db_id)) {
    Database* other = FindById(oid.db);
    if (other == nullptr) {
      return Status::NotFound("database " + std::to_string(oid.db) +
                              " is not open");
    }
    return other->Deref(oid);
  }
  BESS_ASSIGN_OR_RETURN(SlottedView view,
                        mapper_->FetchSlottedNow(oid.segment()));
  if (oid.slot >= view.header()->slot_count) {
    return Status::NotFound("stale OID (slot beyond segment): " +
                            oid.ToString());
  }
  Slot* slot = view.slot(oid.slot);
  if (!slot->in_use() ||
      static_cast<uint16_t>(slot->uniquifier) != oid.uniq) {
    return Status::NotFound("stale OID (object deleted): " + oid.ToString());
  }
  return ResolveForward(slot);
}

Result<Slot*> Database::CreateForward(uint16_t file_id, const Oid& target) {
  char buf[12];
  target.EncodeTo(buf);
  BESS_ASSIGN_OR_RETURN(Slot * slot,
                        CreateObject(file_id, kRawBytesType, 12, buf));
  SegmentId id;
  uint16_t slot_no;
  BESS_RETURN_IF_ERROR(mapper_->ResolveSlotAddress(slot, &id, &slot_no));
  BESS_RETURN_IF_ERROR(mapper_->WithSlottedWritable(
      id, [&](SlottedView& view) -> Status {
        view.slot(slot_no)->flags |= kSlotForward;
        return Status::OK();
      }));
  return slot;
}

Result<Slot*> Database::ResolveForward(Slot* slot) {
  if (!(slot->flags & kSlotForward)) return slot;
  const char* data = reinterpret_cast<const char*>(slot->dp);
  Oid target = Oid::DecodeFrom(data);
  if (target.db == static_cast<uint8_t>(options_.db_id)) return Deref(target);
  Database* other = FindById(target.db);
  if (other == nullptr) {
    return Status::NotFound("forward object target database " +
                            std::to_string(target.db) + " is not open");
  }
  return other->Deref(target);
}

// ---- roots ------------------------------------------------------------------

Status Database::SetRoot(const std::string& name, Slot* slot) {
  BESS_ASSIGN_OR_RETURN(Oid oid, OidOf(slot));
  std::lock_guard<std::mutex> guard(meta_mutex_);
  // One name per object and one object per name: replace both directions.
  auto by_name = roots_by_name_.find(name);
  if (by_name != roots_by_name_.end()) roots_by_oid_.erase(by_name->second);
  auto by_oid = roots_by_oid_.find(oid);
  if (by_oid != roots_by_oid_.end()) roots_by_name_.erase(by_oid->second);
  roots_by_name_[name] = oid;
  roots_by_oid_[oid] = name;
  catalog_dirty_ = true;
  return Status::OK();
}

Result<Slot*> Database::GetRoot(const std::string& name) {
  Oid oid;
  {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    auto it = roots_by_name_.find(name);
    if (it == roots_by_name_.end()) {
      return Status::NotFound("no root named " + name);
    }
    oid = it->second;
  }
  return Deref(oid);
}

Status Database::RemoveRoot(const std::string& name) {
  std::lock_guard<std::mutex> guard(meta_mutex_);
  auto it = roots_by_name_.find(name);
  if (it == roots_by_name_.end()) return Status::NotFound("no root " + name);
  roots_by_oid_.erase(it->second);
  roots_by_name_.erase(it);
  catalog_dirty_ = true;
  return Status::OK();
}

std::string Database::NameOf(const Oid& oid) const {
  std::lock_guard<std::mutex> guard(meta_mutex_);
  auto it = roots_by_oid_.find(oid);
  return it == roots_by_oid_.end() ? "" : it->second;
}

// ---- scans ------------------------------------------------------------------

Status Database::Scan(uint16_t file_id,
                      const std::function<Status(Slot*)>& fn) {
  std::vector<uint64_t> segments;
  {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    auto it = files_.find(file_id);
    if (it == files_.end()) return Status::NotFound("no such file");
    segments = it->second.segments;
  }
  for (uint64_t packed : segments) {
    BESS_ASSIGN_OR_RETURN(SlottedView view,
                          mapper_->FetchSlottedNow(SegmentId::Unpack(packed)));
    const uint32_t n = view.header()->slot_count;
    for (uint32_t i = 0; i < n; ++i) {
      Slot* s = view.slot(static_cast<uint16_t>(i));
      if (!s->in_use()) continue;
      BESS_RETURN_IF_ERROR(fn(s));
    }
  }
  return Status::OK();
}

Status Database::ParallelScan(
    uint16_t file_id, int threads,
    const std::function<Status(const Slot&, const void* data)>& fn) {
  std::vector<uint64_t> segments;
  {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    auto it = files_.find(file_id);
    if (it == files_.end()) return Status::NotFound("no such file");
    segments = it->second.segments;
  }
  if (threads < 1) threads = 1;
  std::atomic<size_t> next{0};
  std::vector<Status> results(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      // Direct I/O path: each worker reads segments on its own, bypassing
      // the shared mapper — this is what makes the scan truly parallel.
      std::string slotted(kMaxSlottedPages * kPageSize, '\0');
      std::string data;
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= segments.size()) break;
        const SegmentId id = SegmentId::Unpack(segments[i]);
        uint32_t pages = 0;
        Status s = store_->FetchSlotted(id, slotted.data(), &pages);
        if (!s.ok()) {
          results[static_cast<size_t>(t)] = s;
          return;
        }
        SlottedView view(slotted.data(), pages * kPageSize);
        const SlottedHeader* h = view.header();
        data.resize(static_cast<size_t>(h->data_page_count) * kPageSize);
        if (h->data_page_count > 0) {
          s = store_->FetchPages(id.db, h->data_area, h->data_first_page,
                                 h->data_page_count, data.data());
          if (!s.ok()) {
            results[static_cast<size_t>(t)] = s;
            return;
          }
        }
        for (uint32_t j = 0; j < h->slot_count; ++j) {
          const Slot* slot = view.slot(static_cast<uint16_t>(j));
          if (!slot->in_use()) continue;
          const void* obj = nullptr;
          std::string large;
          if (slot->flags & kSlotLargeObject) {
            uint16_t area, lo_pages;
            PageId page;
            Slot::UnpackDiskAddr(slot->dp, &area, &page, &lo_pages);
            large.resize(static_cast<size_t>(lo_pages) * kPageSize);
            s = store_->FetchPages(id.db, area, page, lo_pages, large.data());
            if (!s.ok()) {
              results[static_cast<size_t>(t)] = s;
              return;
            }
            obj = large.data();
          } else if (!(slot->flags & (kSlotVeryLarge | kSlotForward))) {
            obj = data.data() + slot->dp;  // dp is an offset on disk
          } else {
            continue;
          }
          s = fn(*slot, obj);
          if (!s.ok()) {
            results[static_cast<size_t>(t)] = s;
            return;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const Status& s : results) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<uint64_t> Database::CountObjects(uint16_t file_id) {
  uint64_t count = 0;
  BESS_RETURN_IF_ERROR(Scan(file_id, [&](Slot*) {
    ++count;
    return Status::OK();
  }));
  return count;
}

// ---- reorganization -----------------------------------------------------------

Status Database::MoveFileData(uint16_t file_id, uint16_t to_area) {
  std::vector<uint64_t> segments;
  {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    auto it = files_.find(file_id);
    if (it == files_.end()) return Status::NotFound("no such file");
    if (AreaOrNull(to_area) == nullptr) return Status::NotFound("no such area");
    segments = it->second.segments;
  }
  Txn* txn = Current();
  for (uint64_t packed : segments) {
    const SegmentId id = SegmentId::Unpack(packed);
    if (txn != nullptr && txn->db == this) {
      BESS_RETURN_IF_ERROR(locks_.Acquire(txn->id,
                                          LockKey::Segment(id.Pack()),
                                          LockMode::kX,
                                          options_.lock_timeout_ms));
    }
    BESS_ASSIGN_OR_RETURN(SlottedView view, mapper_->FetchSlottedNow(id));
    const SlottedHeader* h = view.header();
    const uint16_t old_area = h->data_area;
    const PageId old_first = h->data_first_page;
    const uint32_t pages = h->data_page_count;
    if (old_area == to_area) continue;
    StorageArea* dst = AreaOrNull(to_area);
    StorageArea* src = AreaOrNull(old_area);
    if (dst == nullptr || src == nullptr) {
      return Status::NotFound("no such area");
    }
    BESS_ASSIGN_OR_RETURN(DiskSegment fresh, dst->AllocSegment(pages));
    BESS_RETURN_IF_ERROR(
        mapper_->RelocateData(id, to_area, fresh.first_page,
                              fresh.page_count));
    BESS_RETURN_IF_ERROR(src->FreeSegment(old_first));
  }
  return Status::OK();
}

Status Database::CompactFile(uint16_t file_id) {
  std::vector<uint64_t> segments;
  {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    auto it = files_.find(file_id);
    if (it == files_.end()) return Status::NotFound("no such file");
    segments = it->second.segments;
  }
  Txn* txn = Current();
  for (uint64_t packed : segments) {
    const SegmentId id = SegmentId::Unpack(packed);
    if (txn != nullptr && txn->db == this) {
      BESS_RETURN_IF_ERROR(locks_.Acquire(txn->id,
                                          LockKey::Segment(id.Pack()),
                                          LockMode::kX,
                                          options_.lock_timeout_ms));
    }
    BESS_RETURN_IF_ERROR(mapper_->CompactData(id));
  }
  return Status::OK();
}

// ---- server-side services -------------------------------------------------------

Status Database::ReadRawPages(uint16_t area, PageId first, uint32_t count,
                              void* buf) {
  StorageArea* a = AreaOrNull(area);
  if (a == nullptr) return Status::NotFound("no storage area");
  return a->ReadPages(first, count, buf);
}

Status Database::WriteRawPages(uint16_t area, PageId first, uint32_t count,
                               const void* buf) {
  StorageArea* a = AreaOrNull(area);
  if (a == nullptr) return Status::NotFound("no storage area");
  BESS_RETURN_IF_ERROR(a->WritePages(first, count, buf));
  if (page_cache_ != nullptr) {
    const char* in = static_cast<const char*>(buf);
    for (uint32_t i = 0; i < count; ++i) {
      page_cache_->Refresh(options_.db_id, area, first + i,
                           in + static_cast<size_t>(i) * kPageSize);
    }
  }
  return Status::OK();
}

Status Database::CommitPageSet(const std::vector<PageImage>& pages) {
  if (pages.empty()) return Status::OK();
  const TxnId id = NextTxnId();
  return LogAndForce(id, pages);
}

Status Database::PreparePageSet(uint64_t gtid,
                                const std::vector<PageImage>& pages) {
  if (!options_.use_wal) {
    return Status::NotSupported("2PC requires the WAL");
  }
  // Phase 1: make the page set durable in the log together with a prepare
  // record. Nothing is forced yet; presumed abort on restart. The txn stays
  // in the logging-txn table until phase 2 — an in-doubt txn pins the log's
  // retention floor at its first record (its page set lives only there).
  PreparedSet set;
  set.pages = pages;
  BESS_RETURN_IF_ERROR(
      LogPageSet(gtid, pages, LogRecordType::kPrepare, &set.page_lsns)
          .status());
  std::lock_guard<std::mutex> guard(prepared_mutex_);
  prepared_[gtid] = std::move(set);
  return Status::OK();
}

Status Database::CommitPrepared(uint64_t gtid) {
  PreparedSet set;
  {
    std::lock_guard<std::mutex> guard(prepared_mutex_);
    auto it = prepared_.find(gtid);
    if (it == prepared_.end()) {
      return Status::NotFound("no prepared transaction " +
                              std::to_string(gtid) + " (presumed abort)");
    }
    set = std::move(it->second);
    prepared_.erase(it);
  }
  // Phase 2 records bypass backpressure: resolving an in-doubt txn is what
  // lets the retention floor (and the log) shrink again.
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn = gtid;
  BESS_ASSIGN_OR_RETURN(Lsn lsn, wal_->AppendUnthrottled(commit));
  BESS_RETURN_IF_ERROR(wal_->Flush(lsn));
  BESS_RETURN_IF_ERROR(ForcePages(set.pages, lsn, &set.page_lsns));
  LogRecord end;
  end.type = LogRecordType::kEnd;
  end.txn = gtid;
  Status es = wal_->AppendUnthrottled(end).status();
  UnregisterLoggingTxn(gtid);
  return es;
}

Status Database::AbortPrepared(uint64_t gtid) {
  std::vector<Lsn> page_lsns;
  {
    std::lock_guard<std::mutex> guard(prepared_mutex_);
    auto it = prepared_.find(gtid);
    if (it != prepared_.end()) {
      page_lsns = std::move(it->second.page_lsns);
      prepared_.erase(it);
    }
  }
  if (!page_lsns.empty()) {
    // The prepared page set is in the log but was never forced: close the
    // chain with CLRs so blind restart redo nets out to the untouched disk
    // state (kAbort+kEnd alone would replay the after-images with no loser
    // undo to remove them).
    Status st = AbortLoggedChain(gtid, page_lsns.back());
    UnregisterLoggingTxn(gtid);
    return st;
  }
  // Nothing of this gtid in the log (presumed abort of an unknown txn):
  // record the decision for the coordinator's benefit only.
  LogRecord abort;
  abort.type = LogRecordType::kAbort;
  abort.txn = gtid;
  BESS_RETURN_IF_ERROR(wal_->AppendUnthrottled(abort).status());
  LogRecord end;
  end.type = LogRecordType::kEnd;
  end.txn = gtid;
  BESS_ASSIGN_OR_RETURN(Lsn lsn, wal_->AppendUnthrottled(end));
  Status fs = wal_->Flush(lsn);
  UnregisterLoggingTxn(gtid);
  return fs;
}

Result<Database::RemoteSegmentGrant> Database::GrantObjectSegment(
    uint16_t file_id, uint32_t min_data_bytes) {
  std::lock_guard<std::mutex> guard(meta_mutex_);
  auto it = files_.find(file_id);
  if (it == files_.end()) return Status::NotFound("no such file");
  FileInfo* file = &it->second;

  uint16_t area_id = file->areas[0];
  if (file->multifile && !file->areas.empty()) {
    area_id = file->areas[file->next_area % file->areas.size()];
    file->next_area++;
  }
  StorageArea* area = AreaOrNull(area_id);
  if (area == nullptr) return Status::NotFound("no storage area");
  const size_t slotted_bytes = SlottedImageSize(options_.slot_capacity,
                                                options_.outbound_capacity);
  const uint32_t slotted_pages =
      static_cast<uint32_t>((slotted_bytes + kPageSize - 1) / kPageSize);
  uint32_t data_pages = options_.data_segment_pages;
  const uint32_t need = static_cast<uint32_t>(
      (min_data_bytes + kPageSize - 1) / kPageSize);
  if (need > data_pages) data_pages = need;

  BESS_ASSIGN_OR_RETURN(DiskSegment slotted, area->AllocSegment(slotted_pages));
  BESS_ASSIGN_OR_RETURN(DiskSegment data, area->AllocSegment(data_pages));

  {
    const SegmentId id{options_.db_id, area_id, slotted.first_page};
    std::string image(static_cast<size_t>(slotted.page_count) * kPageSize,
                      '\0');
    BESS_ASSIGN_OR_RETURN(
        SlottedView view,
        SlottedView::Format(image.data(), image.size(), id, file_id,
                            options_.slot_capacity,
                            options_.outbound_capacity));
    SlottedHeader* h = view.header();
    h->data_area = area_id;
    h->data_first_page = data.first_page;
    h->data_page_count = data.page_count;
    BESS_RETURN_IF_ERROR(
        area->WritePages(slotted.first_page, slotted.page_count,
                         image.data()));
    std::string zeros(static_cast<size_t>(data.page_count) * kPageSize, '\0');
    BESS_RETURN_IF_ERROR(
        area->WritePages(data.first_page, data.page_count, zeros.data()));
  }

  RemoteSegmentGrant grant;
  grant.id = SegmentId{options_.db_id, area_id, slotted.first_page};
  grant.slotted_pages = slotted.page_count;
  grant.slot_capacity = options_.slot_capacity;
  grant.outbound_capacity = options_.outbound_capacity;
  grant.data_area = area_id;
  grant.data_first_page = data.first_page;
  grant.data_page_count = data.page_count;

  file->segments.push_back(grant.id.Pack());
  file->active_segment = grant.id.Pack();
  catalog_dirty_ = true;
  BESS_RETURN_IF_ERROR(SaveCatalogLocked());
  return grant;
}

Result<DiskSegment> Database::AllocDiskSegment(uint16_t area, uint32_t pages) {
  StorageArea* a = AreaOrNull(area);
  if (a == nullptr) return Status::NotFound("no storage area");
  return a->AllocSegment(pages);
}

Status Database::FreeDiskSegment(uint16_t area, PageId first_page) {
  StorageArea* a = AreaOrNull(area);
  if (a == nullptr) return Status::NotFound("no storage area");
  return a->FreeSegment(first_page);
}

Status Database::SetRootOid(const std::string& name, const Oid& oid) {
  std::lock_guard<std::mutex> guard(meta_mutex_);
  auto by_name = roots_by_name_.find(name);
  if (by_name != roots_by_name_.end()) roots_by_oid_.erase(by_name->second);
  auto by_oid = roots_by_oid_.find(oid);
  if (by_oid != roots_by_oid_.end()) roots_by_name_.erase(by_oid->second);
  roots_by_name_[name] = oid;
  roots_by_oid_[oid] = name;
  catalog_dirty_ = true;
  return SaveCatalogLocked();
}

Result<Oid> Database::GetRootOid(const std::string& name) {
  std::lock_guard<std::mutex> guard(meta_mutex_);
  auto it = roots_by_name_.find(name);
  if (it == roots_by_name_.end()) {
    return Status::NotFound("no root named " + name);
  }
  return it->second;
}

// ---- maintenance --------------------------------------------------------------

Status Database::Checkpoint() {
  if (!options_.use_wal || wal_ == nullptr) {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    BESS_RETURN_IF_ERROR(SaveCatalogLocked());
    return Sync();
  }
  // Fuzzy checkpoint (paper §3 / ARIES): commits never quiesce. One at a
  // time; the log stays fully appendable throughout.
  std::lock_guard<std::mutex> cp_guard(checkpoint_mutex_);
  BESS_SPAN("db.checkpoint");
  {
    std::lock_guard<std::mutex> guard(meta_mutex_);
    BESS_RETURN_IF_ERROR(SaveCatalogLocked());
  }
  // (1) Trim the dirty-page table: swap it out, fsync every area, discard.
  // Every swapped entry describes a write that completed before the entry
  // was made — ForcePages inserts after WritePages, and the frame core's
  // cleaned hook inserts after the write-back I/O returned — so the sync
  // covers it. Entries added concurrently land in the fresh table and stay
  // for the snapshot. This insert-after-write rule is also why a background
  // write-back finishing between the Sync below and the CollectDirty
  // snapshot cannot lose its page: the frame leaves CollectDirty's view,
  // but its DPT entry (made post-swap) keeps the redo floor at its recLSN
  // until a later checkpoint's sync verifiably covers the write. On a sync
  // failure the entries are merged back — nothing is verifiably durable.
  std::unordered_map<uint64_t, Lsn> trimmed;
  {
    std::lock_guard<std::mutex> guard(rec_mutex_);
    trimmed.swap(dpt_);
  }
  Status sync_st = Sync();
  if (!sync_st.ok()) {
    std::lock_guard<std::mutex> guard(rec_mutex_);
    for (const auto& [key, lsn] : trimmed) {
      auto [it, inserted] = dpt_.try_emplace(key, lsn);
      if (!inserted && lsn < it->second) it->second = lsn;
    }
    return sync_st;
  }
  // (2) Snapshot: remaining dirty pages (+ any write-cache dirt), active
  // transactions, and the redo floor = min(snapshot start, recLSNs, active
  // txns' first LSNs). Taken atomically under rec_mutex_ so no page or txn
  // can slip between the floor and the tables.
  LogRecord cp;
  cp.type = LogRecordType::kCheckpoint;
  Lsn snapshot_start;
  // Index runtimes snapshotted outside rec_mutex_ (indexes_mutex_ is a
  // leaf); their dirty frames fold into the DPT exactly like the page
  // cache's below — still-dirty frames re-enter at every checkpoint, and
  // frames cleaned in between entered via on_cleaned → TouchDpt.
  std::vector<std::shared_ptr<BTreeIndex>> index_rts;
  {
    std::lock_guard<std::mutex> guard(indexes_mutex_);
    for (const auto& [id, rt] : index_runtimes_) index_rts.push_back(rt);
  }
  {
    std::lock_guard<std::mutex> guard(rec_mutex_);
    snapshot_start = wal_->tail_lsn();
    cp.redo_floor = snapshot_start;
    for (const auto& rt : index_rts) {
      std::vector<std::pair<uint64_t, uint64_t>> frames;
      rt->CollectDirty(&frames);
      for (const auto& [key, rec_lsn] : frames) {
        const Lsn bound = rec_lsn != 0 ? rec_lsn : wal_->oldest_lsn();
        auto [it, inserted] = dpt_.try_emplace(key, bound);
        if (!inserted && bound < it->second) it->second = bound;
      }
    }
    if (page_cache_ != nullptr) {
      // Frame-table dirt (pages modified through the cache seam, not yet
      // written back). A recLSN of 0 is unknown: fold it in as "from the
      // start of the retained log" — conservative, never lossy.
      std::vector<std::pair<uint64_t, uint64_t>> frames;
      page_cache_->table()->CollectDirty(&frames);
      for (const auto& [key, rec_lsn] : frames) {
        const Lsn bound = rec_lsn != 0 ? rec_lsn : wal_->oldest_lsn();
        auto [it, inserted] = dpt_.try_emplace(key, bound);
        if (!inserted && bound < it->second) it->second = bound;
      }
    }
    for (const auto& [key, rec_lsn] : dpt_) {
      cp.dirty_pages.push_back({PageAddr::Unpack(key), rec_lsn});
      if (rec_lsn != kNullLsn && rec_lsn < cp.redo_floor) {
        cp.redo_floor = rec_lsn;
      }
    }
    for (const auto& [txn, state] : logging_txns_) {
      cp.active_txns.push_back({txn, state.last_lsn});
      if (state.first_lsn != kNullLsn && state.first_lsn < cp.redo_floor) {
        cp.redo_floor = state.first_lsn;
      }
    }
  }
  // Publish-then-fold (pairs with LogPageSet's mark-then-verify): announce
  // the tentative release floor first, then fold in the FPIs that admitted
  // transactions already decided to rely on. A transaction whose reliance
  // mark misses the fold is guaranteed — by rec_mutex_ ordering — to see
  // the published floor on its re-validation and relog the image instead.
  // The retained log thus always holds a base image for media repair of
  // every page an in-flight transaction is overwriting.
  fpi_floor_.store(cp.redo_floor, std::memory_order_release);
  Lsn release_floor = cp.redo_floor;
  {
    std::lock_guard<std::mutex> guard(rec_mutex_);
    for (const auto& [txn, state] : logging_txns_) {
      if (state.relied_fpi != kNullLsn && state.relied_fpi < release_floor) {
        release_floor = state.relied_fpi;
      }
    }
  }
  // (3) Log the checkpoint record (exempt from backpressure: checkpoints
  // are how a full log shrinks) and swing the master record to it.
  BESS_RETURN_IF_ERROR(fault::Check("wal.checkpoint.record", options_.dir));
  BESS_ASSIGN_OR_RETURN(Lsn cp_lsn, wal_->AppendUnthrottled(cp));
  BESS_RETURN_IF_ERROR(wal_->Flush(cp_lsn));
  BESS_RETURN_IF_ERROR(fault::Check("wal.checkpoint.master", options_.dir));
  BESS_RETURN_IF_ERROR(wal_->SetCheckpointLsn(cp_lsn));
  // (4) Retire FPI entries that fall below the release floor *before* any
  // segment is recycled: the next write of such a page then logs a fresh
  // full-page image, so media repair always has a base image in the
  // retained log. The release floor (not the redo floor) gates both the
  // pruning and the recycle, so an FPI a registered transaction relies on
  // stays readable until that transaction ends.
  {
    std::lock_guard<std::mutex> guard(fpi_mutex_);
    for (auto it = fpi_logged_.begin(); it != fpi_logged_.end();) {
      if (it->second < release_floor) {
        it = fpi_logged_.erase(it);
      } else {
        ++it;
      }
    }
  }
  BESS_RETURN_IF_ERROR(wal_->ReleaseSegments(release_floor));
  last_cp_tail_.store(snapshot_start, std::memory_order_relaxed);
  BESS_COUNT("wal.checkpoint.records");
  return Status::OK();
}

void Database::StartCheckpointThread() {
  if (!options_.use_wal || wal_ == nullptr) return;
  if (options_.checkpoint_log_bytes == 0 &&
      options_.wal_soft_limit_bytes == 0) {
    return;
  }
  // Log-full backpressure kicks the thread for an urgent run; the periodic
  // trigger fires on log bytes appended since the last checkpoint.
  wal_->SetLogFullCallback([this] {
    std::lock_guard<std::mutex> guard(cp_mutex_);
    cp_kick_ = true;
    cp_cv_.notify_all();
  });
  cp_stop_ = false;
  checkpoint_thread_ = std::thread([this] { CheckpointMain(); });
}

void Database::StopCheckpointThread() {
  {
    std::lock_guard<std::mutex> guard(cp_mutex_);
    cp_stop_ = true;
    cp_cv_.notify_all();
  }
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  if (wal_ != nullptr) wal_->SetLogFullCallback(nullptr);
}

void Database::CheckpointMain() {
  std::unique_lock<std::mutex> lk(cp_mutex_);
  while (!cp_stop_) {
    cp_cv_.wait_for(lk, std::chrono::milliseconds(200),
                    [this] { return cp_stop_ || cp_kick_; });
    if (cp_stop_) return;
    const bool kicked = cp_kick_;
    cp_kick_ = false;
    lk.unlock();
    const bool due =
        options_.checkpoint_log_bytes > 0 &&
        wal_->tail_lsn() - last_cp_tail_.load(std::memory_order_relaxed) >=
            options_.checkpoint_log_bytes;
    if (kicked || due) {
      Status st = Checkpoint();
      if (!st.ok()) BESS_COUNT("db.checkpoint.errors");
    }
    lk.lock();
  }
}

Status Database::Sync() {
  std::vector<StorageArea*> areas;
  {
    std::lock_guard<std::mutex> guard(areas_mutex_);
    for (auto& a : areas_) areas.push_back(a.get());
  }
  for (StorageArea* a : areas) BESS_RETURN_IF_ERROR(a->Sync());
  return Status::OK();
}

Result<ScrubReport> Database::Scrub() {
  BESS_SPAN("db.scrub");
  ScrubReport report;
  // Snapshot the area list; Scrub itself runs without any lock so long
  // scrubs don't stall allocation (areas are never removed once added).
  std::vector<StorageArea*> areas;
  {
    std::lock_guard<std::mutex> guard(areas_mutex_);
    for (auto& a : areas_) areas.push_back(a.get());
  }
  for (StorageArea* a : areas) {
    Status s = a->Scrub(&report);
    if (!s.ok() && !s.IsCorruption()) return s;
  }
  // Repair may have rewritten pages underneath the cache.
  if (page_cache_ != nullptr && report.repaired > 0) {
    page_cache_->InvalidateAll();
  }
  return report;
}

// ---- registry -----------------------------------------------------------------

Database* Database::FindById(uint8_t db_id) {
  std::lock_guard<std::mutex> guard(g_registry_mutex);
  auto it = g_databases_by_id.find(db_id);
  return it == g_databases_by_id.end() ? nullptr : it->second;
}

Database* Database::FindByAddress(const void* addr) {
  FaultRangeOwner* owner = FaultDispatcher::Instance().FindOwner(addr);
  if (owner == nullptr) return nullptr;
  std::lock_guard<std::mutex> guard(g_registry_mutex);
  for (auto& [id, db] : g_databases_by_id) {
    (void)id;
    if (db->mapper_.get() == owner) return db;
  }
  return nullptr;
}

}  // namespace bess
