// Object identifiers (paper §2.1): "The object identifier (OID) is a 96-bit
// number that uniquely identifies an object in a BeSS system. It contains
// the host machine number, the database number, the offset of the object's
// header within the database, and a number to approximate unique oids."
//
// The header offset is represented as (area, slotted-segment first page,
// slot number) — slotted segments are never relocated, so this is stable.
// The uniquifier snapshots the slot's reuse counter; dereferencing an OID
// whose uniquifier no longer matches fails instead of returning a new,
// unrelated object.
#ifndef BESS_OBJECT_OID_H_
#define BESS_OBJECT_OID_H_

#include <cstdint>
#include <functional>
#include <string>

#include "segment/layout.h"

namespace bess {

struct Oid {
  uint16_t host = 0;
  uint8_t db = 0;
  uint8_t area = 0;
  uint32_t page = kInvalidPage;  ///< slotted segment first page
  uint16_t slot = 0;
  uint16_t uniq = 0;

  bool valid() const { return page != kInvalidPage; }

  SegmentId segment() const { return SegmentId{db, area, page}; }

  /// 96-bit little-endian wire form.
  void EncodeTo(char out[12]) const;
  static Oid DecodeFrom(const char in[12]);

  bool operator==(const Oid& o) const {
    return host == o.host && db == o.db && area == o.area && page == o.page &&
           slot == o.slot && uniq == o.uniq;
  }

  std::string ToString() const;
};

static_assert(sizeof(Oid) == 12, "OIDs are 96 bits (paper §2.1)");

inline void Oid::EncodeTo(char out[12]) const {
  out[0] = static_cast<char>(host);
  out[1] = static_cast<char>(host >> 8);
  out[2] = static_cast<char>(db);
  out[3] = static_cast<char>(area);
  out[4] = static_cast<char>(page);
  out[5] = static_cast<char>(page >> 8);
  out[6] = static_cast<char>(page >> 16);
  out[7] = static_cast<char>(page >> 24);
  out[8] = static_cast<char>(slot);
  out[9] = static_cast<char>(slot >> 8);
  out[10] = static_cast<char>(uniq);
  out[11] = static_cast<char>(uniq >> 8);
}

inline Oid Oid::DecodeFrom(const char in[12]) {
  const auto* u = reinterpret_cast<const unsigned char*>(in);
  Oid oid;
  oid.host = static_cast<uint16_t>(u[0] | (u[1] << 8));
  oid.db = u[2];
  oid.area = u[3];
  oid.page = static_cast<uint32_t>(u[4]) | (static_cast<uint32_t>(u[5]) << 8) |
             (static_cast<uint32_t>(u[6]) << 16) |
             (static_cast<uint32_t>(u[7]) << 24);
  oid.slot = static_cast<uint16_t>(u[8] | (u[9] << 8));
  oid.uniq = static_cast<uint16_t>(u[10] | (u[11] << 8));
  return oid;
}

inline std::string Oid::ToString() const {
  return "oid(" + std::to_string(host) + ":" + std::to_string(db) + ":" +
         std::to_string(area) + ":" + std::to_string(page) + ":" +
         std::to_string(slot) + "#" + std::to_string(uniq) + ")";
}

struct OidHash {
  size_t operator()(const Oid& oid) const {
    uint64_t h = (static_cast<uint64_t>(oid.page) << 32) |
                 (static_cast<uint64_t>(oid.slot) << 16) | oid.uniq;
    h ^= (static_cast<uint64_t>(oid.host) << 40) |
         (static_cast<uint64_t>(oid.db) << 8) | oid.area;
    return std::hash<uint64_t>()(h);
  }
};

}  // namespace bess

#endif  // BESS_OBJECT_OID_H_
