// Database: the local BeSS engine — storage areas, the segment mapper,
// locking, write-ahead logging, BeSS files and multifiles, named roots and
// the catalog (paper §2).
//
// A database is a collection of BeSS files; files group objects for
// retrieval via scans, but any object is directly accessible through its
// reference or OID without touching its file (§2). All objects of a plain
// file live in one storage area; a *multifile* spans several areas, lifting
// the per-file size limit and enabling parallel I/O such as parallel file
// scans (§2, as used by Prospector/MoonBase).
//
// Transaction policy: strict 2PL (locks from the AccessObserver fault path),
// no-steal / force-at-commit buffering, and a physical WAL for atomicity of
// multi-page commits. Undo machinery exists (see wal/recovery) but in the
// default policy losers never reach disk.
#ifndef BESS_OBJECT_DATABASE_H_
#define BESS_OBJECT_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "object/oid.h"
#include "txn/lock_manager.h"
#include "vm/mapper.h"
#include "wal/log_manager.h"
#include "wal/recovery.h"

namespace bess {

class CachedSegmentStore;
class BTreeIndex;

/// A transaction handle. Obtain with Database::Begin (one active transaction
/// per thread); pass to Commit/Abort.
struct Txn {
  TxnId id = kNoTxn;
  Lsn last_lsn = kNullLsn;
  bool poisoned = false;
  Status poison_status;
  class Database* db = nullptr;
};

/// What a commit cost. Filled by Database::Commit / RemoteClient::Commit and
/// returned by TxnGuard::Commit as Result<CommitStats>.
struct CommitStats {
  uint64_t log_bytes = 0;    ///< WAL bytes appended (0 with use_wal=false)
  uint32_t pages_forced = 0; ///< dirty pages forced at commit (no-steal/force)
  uint32_t locks_held = 0;   ///< locks released by this commit
  uint64_t duration_ns = 0;  ///< wall time inside Commit
};

/// Handle to a named secondary index (DESIGN.md §14): a WAL-logged B+-tree
/// over byte-string keys, living in its own storage area. Obtained from
/// Database::CreateIndex/OpenIndex; cheap to copy (shared runtime).
///
/// Mutations may run inside a transaction (the index records join the
/// transaction's WAL chain; commit makes them durable, abort reverses them
/// logically) or standalone (`txn == nullptr`: each call is its own
/// committed micro-transaction). Index pages are steal/no-force — unlike
/// object pages they reach disk lazily via the background writer, and
/// restart recovery redoes/undoes them from the log.
class Index {
 public:
  Index() = default;
  bool valid() const { return impl_ != nullptr; }
  const std::string& name() const { return name_; }

  /// Upsert (key 1..256 bytes, value 0..256 bytes).
  Status Put(Txn* txn, Slice key, Slice value);
  /// Removes `key`; *existed (optional) reports whether it was present.
  Status Delete(Txn* txn, Slice key, bool* existed = nullptr);
  /// Point lookup: true + *value when present. Reads see the latest
  /// latched state (including uncommitted writes — see DESIGN.md §14).
  Result<bool> Get(Slice key, std::string* value) const;
  /// Ordered scan over [lo, hi] inclusive; empty lo = from the first key,
  /// empty hi = to the last. Leaves stream through the frame table's push
  /// pipeline. `fn` gets (key, value) views valid only during the call and
  /// must not call back into this index.
  Status Scan(Slice lo, Slice hi,
              const std::function<Status(Slice key, Slice value)>& fn) const;

 private:
  friend class Database;
  Database* db_ = nullptr;
  std::shared_ptr<BTreeIndex> impl_;
  std::string name_;
};

class Database {
 public:
  struct Options {
    std::string dir;            ///< directory holding areas, catalog, wal
    uint16_t db_id = 1;
    uint16_t host_id = 1;
    bool create = false;        ///< create fresh (true) or open existing
    bool use_wal = true;
    int lock_timeout_ms = kLockTimeoutMillis;
    SegmentMapper::Options mapper;
    /// Frames for an optional page cache between the mapper and the storage
    /// areas (cache/cached_store.h), with sequential prefetch. 0 = off —
    /// the right default for server-linked apps, where the OS file cache
    /// already covers re-fetches; set it when the store path is expensive.
    uint32_t page_cache_frames = 0;
    // Geometry of newly created object segments.
    uint32_t slot_capacity = 120;
    uint16_t outbound_capacity = 64;
    uint32_t data_segment_pages = kDefaultDataSegmentPages;
    /// Objects at least this big (bytes) become transparent large objects
    /// with their own disk segment. Must be <= kMaxTransparentObjectSize.
    uint32_t large_object_threshold = kPageSize;
    /// WAL segment size (the log is a ring of recycled segment files).
    uint64_t wal_segment_bytes = 4ull << 20;
    /// Retained-log soft limit: beyond it commit appends throttle (and kick
    /// a forced checkpoint) instead of growing the log unboundedly. 0 = off.
    uint64_t wal_soft_limit_bytes = 0;
    /// How long a throttled commit append waits for a checkpoint to free
    /// log space before failing with NoSpace.
    uint32_t wal_throttle_timeout_ms = 1000;
    /// Fuzzy-checkpoint trigger: checkpoint when this many log bytes have
    /// been appended since the last one (checked by a background thread).
    /// 0 disables the periodic trigger; explicit Checkpoint() still works.
    uint64_t checkpoint_log_bytes = 16ull << 20;
    /// Worker threads for the parallel redo pass of restart recovery.
    /// <= 1 replays inline.
    int recovery_redo_workers = 4;
    /// Scrub every area after restart recovery, while the log still holds
    /// the images needed for single-page media repair (DESIGN.md §7).
    bool scrub_on_recovery = true;
    /// fdatasync the data files inside every commit (strict force). Off by
    /// default when the WAL is on: the flushed commit record + after-images
    /// already make the commit durable (restart redo repeats history), so
    /// the data files only need syncing before the log is truncated — which
    /// Checkpoint/recovery do. Commits then wait on one fsync chain (the
    /// group-committed WAL), not two (DESIGN.md §8). Ignored — treated as
    /// true — when use_wal is false: forcing is then the only durability.
    bool sync_on_commit = false;
  };

  /// Opens or creates a database. Runs ARIES restart recovery when an
  /// existing database has a non-empty log.
  static Result<std::unique_ptr<Database>> Open(const Options& options);
  ~Database();

  uint16_t db_id() const { return options_.db_id; }

  // ---- Types ---------------------------------------------------------------

  /// Registers an object type; persisted in the catalog.
  Result<TypeIdx> RegisterType(const TypeDescriptor& desc);
  TypeTable* types() { return &types_; }

  // ---- Storage areas -------------------------------------------------------

  /// Adds a storage area (a new UNIX file under dir). Returns its area id.
  Result<uint16_t> AddStorageArea();
  uint32_t area_count() const;

  // ---- BeSS files ----------------------------------------------------------

  /// Creates a BeSS file. Plain files place all object segments in one
  /// area; multifiles may span all areas (AddFileArea to widen).
  Result<uint16_t> CreateFile(const std::string& name,
                              bool multifile = false);
  Result<uint16_t> FindFile(const std::string& name) const;
  /// Adds an area to a multifile's round-robin placement set.
  Status AddFileArea(uint16_t file_id, uint16_t area_id);

  // ---- Transactions ----------------------------------------------------------

  /// Begins a transaction on this thread (at most one per thread).
  Result<Txn*> Begin();
  /// Commits: WAL (before/after images + commit record, group-committed),
  /// force dirty pages, release locks. Cached segments stay mapped for the
  /// next transaction (inter-transaction caching, §3). `out`, when non-null,
  /// receives what the commit cost.
  Status Commit(Txn* txn, CommitStats* out = nullptr);
  /// Aborts: dirty segments dropped (no-steal: disk untouched), locks freed.
  Status Abort(Txn* txn);
  /// The thread's active transaction, or nullptr.
  static Txn* Current();

  // ---- Objects ---------------------------------------------------------------

  /// Creates an object in `file_id` (placement: current active segment, a
  /// new segment, or — for big objects — a dedicated transparent-large-
  /// object segment). Returns the object header (slot).
  Result<Slot*> CreateObject(uint16_t file_id, TypeIdx type, uint32_t size,
                             const void* init = nullptr);

  /// Deletes an object; removes its root name if it has one (referential
  /// integrity, §2.5).
  Status DeleteObject(Slot* slot);

  /// OID of a live object (paper: explicit identity for global_ref).
  Result<Oid> OidOf(Slot* slot);

  /// Dereferences an OID, validating the uniquifier. Follows forward
  /// objects and inter-database OIDs transparently (via the registry of
  /// open databases).
  Result<Slot*> Deref(const Oid& oid);

  /// Creates a forward object in this database referring to `target` (an
  /// object usually in another database); dereference follows it
  /// transparently (§2.1 inter-database references).
  Result<Slot*> CreateForward(uint16_t file_id, const Oid& target);

  /// If `slot` is a forward object, resolves to the real object; otherwise
  /// returns `slot` itself.
  Result<Slot*> ResolveForward(Slot* slot);

  // ---- Named roots (§2.5: a pair of hash tables) ----------------------------

  Status SetRoot(const std::string& name, Slot* slot);
  Result<Slot*> GetRoot(const std::string& name);
  Status RemoveRoot(const std::string& name);
  /// The name of an object, if it is a root ("" when not named).
  std::string NameOf(const Oid& oid) const;

  // ---- Scans -----------------------------------------------------------------

  /// Iterates every live object of a file (cursor-style). The callback gets
  /// the slot; object data faults in on access as usual.
  Status Scan(uint16_t file_id,
              const std::function<Status(Slot*)>& fn);

  /// Parallel scan for multifiles: segments are read with direct I/O on
  /// `threads` workers, bypassing the mapper cache (the content-analysis
  /// pattern of Prospector/MoonBase, §2). The callback receives raw object
  /// bytes (unswizzled) and runs concurrently.
  Status ParallelScan(
      uint16_t file_id, int threads,
      const std::function<Status(const Slot&, const void* data)>& fn);

  /// Live object count of a file (scans slotted segments only).
  Result<uint64_t> CountObjects(uint16_t file_id);

  // ---- Reorganization --------------------------------------------------------

  /// Moves every data segment of `file_id` into `to_area` — the paper's
  /// on-the-fly reorganization; references keep working throughout.
  Status MoveFileData(uint16_t file_id, uint16_t to_area);

  /// Compacts every data segment of the file.
  Status CompactFile(uint16_t file_id);

  // ---- Server-side services (used by BessServer, §3) -------------------------

  /// Raw page service for remote clients and node servers.
  Status ReadRawPages(uint16_t area, PageId first, uint32_t count, void* buf);
  Status WriteRawPages(uint16_t area, PageId first, uint32_t count,
                       const void* buf);

  /// Applies a remote client's commit atomically: WAL (before/after images
  /// + commit record, group-committed) then force.
  Status CommitPageSet(const std::vector<PageImage>& pages);

  /// Two-phase commit participant (paper §3): phase 1 logs the page set and
  /// a prepare record durably; phase 2 commits (forces) or aborts.
  Status PreparePageSet(uint64_t gtid, const std::vector<PageImage>& pages);
  Status CommitPrepared(uint64_t gtid);
  Status AbortPrepared(uint64_t gtid);

  /// Allocates and registers a fresh object segment for `file_id` without
  /// mapping it locally — a remote client formats and writes it. Returns
  /// the geometry the client needs.
  struct RemoteSegmentGrant {
    SegmentId id;
    uint32_t slotted_pages;
    uint32_t slot_capacity;
    uint16_t outbound_capacity;
    uint16_t data_area;
    PageId data_first_page;
    uint32_t data_page_count;
  };
  Result<RemoteSegmentGrant> GrantObjectSegment(uint16_t file_id,
                                                uint32_t min_data_bytes);

  /// Disk-segment service (large objects created remotely).
  Result<DiskSegment> AllocDiskSegment(uint16_t area, uint32_t pages);
  Status FreeDiskSegment(uint16_t area, PageId first_page);

  /// OID-based root directory access (remote clients hold OIDs, not slots).
  Status SetRootOid(const std::string& name, const Oid& oid);
  Result<Oid> GetRootOid(const std::string& name);

  // ---- Secondary indexes (DESIGN.md §14) -------------------------------------

  /// Creates a named B+-tree index in a fresh storage area and persists it
  /// in the catalog. The returned handle is immediately usable.
  Result<Index> CreateIndex(const std::string& name);
  /// Opens an existing index by name (the runtime is shared and cached).
  Result<Index> OpenIndex(const std::string& name);
  /// Removes the index from the catalog and drops its runtime. The area
  /// file itself is retained (area ids are append-only); its pages become
  /// unreachable.
  Status DropIndex(const std::string& name);
  std::vector<std::string> ListIndexes() const;

  // ---- Maintenance -----------------------------------------------------------

  /// Fuzzy checkpoint (non-blocking for committers): syncs the areas for
  /// the pages forced so far, logs a kCheckpoint record carrying the
  /// dirty-page table (page + recLSN) and active-transaction snapshot,
  /// swings the master record to it, and recycles log segments below the
  /// snapshot's redo floor. Commits keep running throughout. Also triggered
  /// periodically (Options::checkpoint_log_bytes) and on log-full
  /// backpressure.
  Status Checkpoint();
  Status Sync();

  /// Stats of the restart recovery run by Open (zeroed when none ran).
  const RecoveryStats& last_recovery_stats() const {
    return last_recovery_stats_;
  }

  /// Sweeps every stamped page of every area, verifying checksums and
  /// repairing (from the WAL) or quarantining what fails (DESIGN.md §7).
  /// Also exposed as a server opcode (kMsgScrub).
  Result<ScrubReport> Scrub();

  SegmentMapper* mapper() { return mapper_.get(); }
  LockManager* locks() { return &locks_; }
  LogManager* wal() { return wal_.get(); }
  const Options& options() const { return options_; }

  /// True while the retained WAL is over its soft limit. The server sheds
  /// new commit/prepare work with RetryLater while this holds, so clients
  /// back off instead of piling onto a throttled append (DESIGN.md §12).
  bool LogBackpressured() const {
    return wal_ != nullptr && wal_->IsBackpressured();
  }

  /// Finds the open Database that owns a mapped object address (used by
  /// typed references to route inter-database operations).
  static Database* FindByAddress(const void* addr);
  /// Finds an open database by id on this host (inter-db OID resolution).
  static Database* FindById(uint8_t db_id);

 private:
  friend class Index;
  class LocalStore;
  class Observer;
  struct FileInfo {
    uint16_t file_id = 0;
    std::string name;
    bool multifile = false;
    std::vector<uint16_t> areas;          // placement set
    std::vector<uint64_t> segments;       // packed SegmentIds, scan order
    uint64_t active_segment = 0;          // packed; 0 = none
    uint32_t next_area = 0;               // round-robin cursor
  };

  explicit Database(Options options);

  Status CreateNew();
  Status OpenExisting();
  Status RunRecovery();
  Status LoadCatalog();
  Status SaveCatalogLocked();
  void EncodeCatalogLocked(std::string* out) const;
  Result<SegmentId> NewObjectSegmentLocked(FileInfo* file, uint32_t min_data_bytes);
  Result<Slot*> CreateSmallObject(FileInfo* file, TypeIdx type, uint32_t size,
                                  const void* init, uint16_t extra_flags);
  StorageArea* AreaOrNull(uint16_t area_id) const;
  std::string AreaPath(uint16_t area_id) const;
  TxnId NextTxnId();
  Status LogAndForce(TxnId txn_id, const std::vector<PageImage>& pages);
  /// Logs the page set; returns the LSN of the final (commit/prepare)
  /// record so forced pages can be trailer-stamped with it. Registers the
  /// transaction in the logging-txn table first (unregistered again on
  /// error — nothing was forced). `page_lsns`, when non-null, receives the
  /// kPageWrite record LSN of each page: the page's recLSN when forced.
  Result<Lsn> LogPageSet(TxnId txn_id, const std::vector<PageImage>& pages,
                         LogRecordType final_record,
                         std::vector<Lsn>* page_lsns = nullptr);
  /// Forces pages to their areas. With the WAL on, each forced page enters
  /// the dirty-page table under its kPageWrite LSN (from `page_lsns`) —
  /// "dirty" here means forced but not yet fsynced; the next checkpoint's
  /// area sync retires the entries.
  Status ForcePages(const std::vector<PageImage>& pages, Lsn lsn = kNullLsn,
                    const std::vector<Lsn>* page_lsns = nullptr);
  void UnregisterLoggingTxn(TxnId txn_id);
  /// Closes an orphaned log chain (newest record `last_lsn`) with CLRs that
  /// restore every before-image, then kEnd, flushed. Used when a commit/
  /// prepare fails after records were appended: once the txn unregisters it
  /// stops pinning the retention floor, and a partially-recycled chain would
  /// brick restart undo. The CLRs (not a bare kAbort+kEnd) matter because
  /// redo blindly replays after-images and kEnd suppresses restart undo.
  Status AbortLoggedChain(TxnId txn_id, Lsn last_lsn);
  /// Insert-or-lower a dirty-page-table entry (recLSN = min).
  void TouchDpt(uint64_t page_key, Lsn rec_lsn);
  void StartCheckpointThread();
  void StopCheckpointThread();
  void CheckpointMain();
  /// Opens (or returns the cached) index runtime for an index area.
  Result<std::shared_ptr<BTreeIndex>> IndexRuntime(uint16_t area_id);
  /// Builds a public handle over the (cached) runtime for `area_id`.
  Result<Index> OpenHandle(const std::string& name, uint16_t area_id);
  /// Index-write prologue: acting txn id (autocommit mints one), poison gate.
  Status IndexTxnPrologue(Txn* txn, bool* autocommit, TxnId* id);
  /// Index-write epilogue: micro-commit (autocommit), or poison/abort the
  /// chain on failure.
  Status FinishIndexWrite(Txn* txn, TxnId id, bool autocommit, Status op);
  /// Appends one kIndexPut/kIndexDelete to `txn_id`'s WAL chain, admitting
  /// the transaction (throttled kBegin) on its first record. Called with
  /// the index latch held; takes rec_mutex_ (leaf) only.
  Result<Lsn> LogIndexRecord(TxnId txn_id, LogRecord&& rec);
  /// The txn's current undo-chain head, or kNullLsn when it never logged.
  Lsn TxnChainHead(TxnId txn_id);
  /// Hooks every area's read path up to WAL-based single-page repair.
  void InstallRepairHandlers();
  void InstallRepairHandler(StorageArea* area);

  Options options_;
  TypeTable types_;
  LockManager locks_;
  std::unique_ptr<LogManager> wal_;
  std::unique_ptr<LocalStore> store_;
  std::unique_ptr<CachedSegmentStore> page_cache_;  // optional, between the two
  std::unique_ptr<Observer> observer_;
  std::unique_ptr<SegmentMapper> mapper_;

  // Catalog guard (files, roots, catalog dirtiness). Plain mutex: nothing
  // that runs under it re-enters a meta_mutex_-taking entry point.
  mutable std::mutex meta_mutex_;
  // Leaf lock for the append-only area vector. The mapper's fetch path
  // re-enters the database while meta_mutex_ is held (CreateObject ->
  // mapper fault -> LocalStore -> AreaOrNull); area lookup goes through
  // this separate leaf so that path never touches meta_mutex_.
  // Lock order: meta_mutex_ -> areas_mutex_; never the reverse.
  mutable std::mutex areas_mutex_;
  std::vector<std::unique_ptr<StorageArea>> areas_;
  std::unordered_map<uint16_t, FileInfo> files_;
  std::unordered_map<std::string, uint16_t> files_by_name_;
  uint16_t next_file_id_ = 1;
  /// Index catalog: name → area id (guarded by meta_mutex_ like files_;
  /// persisted in the catalog blob).
  std::unordered_map<std::string, uint16_t> index_catalog_;
  /// Open index runtimes by area id. Leaf mutex: never held while calling
  /// into a runtime (shared_ptrs are copied out first).
  mutable std::mutex indexes_mutex_;
  std::unordered_map<uint16_t, std::shared_ptr<BTreeIndex>> index_runtimes_;
  // The paper's root directory: a pair of hash tables with enforced
  // referential integrity between objects and their names.
  std::unordered_map<std::string, Oid> roots_by_name_;
  std::unordered_map<Oid, std::string, OidHash> roots_by_oid_;
  bool catalog_dirty_ = false;
  SegmentId catalog_segment_;

  std::atomic<TxnId> next_txn_id_{1};

  // In-doubt distributed transactions (prepared, awaiting phase 2). The
  // page LSNs ride along so phase 2 can force with true recLSNs.
  struct PreparedSet {
    std::vector<PageImage> pages;
    std::vector<Lsn> page_lsns;
  };
  std::mutex prepared_mutex_;
  std::unordered_map<uint64_t, PreparedSet> prepared_;

  // Pages whose most recent full-page-image record is at the stored LSN.
  // A page needs a fresh FPI when it has none, or when its FPI fell below
  // the log's oldest retained LSN (the segment holding it was recycled) —
  // media repair must always find a base image in the retained log.
  // Checkpoint prunes entries below the new retention floor *before*
  // releasing segments, so the check can never pass on a recycled FPI.
  std::mutex fpi_mutex_;
  std::unordered_map<uint64_t, Lsn> fpi_logged_;
  /// Floor below which checkpoint may prune fpi_logged_ entries, published
  /// (release) before the prune happens. Writers use mark-then-verify: mark
  /// relied_fpi under rec_mutex_, then re-check the FPI against this floor
  /// and oldest_lsn(); checkpoint publishes the floor, then folds relied
  /// FPIs (under rec_mutex_) into its release floor — so either the writer
  /// sees the new floor and relogs, or the checkpoint sees the mark and
  /// retains.
  std::atomic<Lsn> fpi_floor_{0};

  // Recovery bookkeeping for fuzzy checkpoints (guarded by rec_mutex_; a
  // leaf below the WAL's internal mutex is never held when taking this —
  // order: rec_mutex_ -> LogManager internals).
  struct LoggingTxn {
    Lsn first_lsn = kNullLsn;  ///< at/below the txn's first record
    Lsn last_lsn = kNullLsn;   ///< newest kPageWrite (undo chain head)
    /// Oldest retained-log FPI this txn decided to rely on instead of
    /// relogging one (kNullLsn = none). Checkpoint folds these into its
    /// segment-release floor so the relied-on base image can't be recycled
    /// between the txn's FPI check and its records landing.
    Lsn relied_fpi = kNullLsn;
  };
  std::mutex rec_mutex_;
  /// Dirty-page table: pages forced to an area but not yet covered by an
  /// area fsync, with the LSN of the record that wrote them (recLSN).
  std::unordered_map<uint64_t, Lsn> dpt_;
  /// Transactions between their first log append and End (or phase 2).
  std::unordered_map<TxnId, LoggingTxn> logging_txns_;

  // Checkpoint machinery: one checkpoint at a time; a background thread
  // triggers on log growth and on log-full backpressure.
  std::mutex checkpoint_mutex_;
  std::mutex cp_mutex_;
  std::condition_variable cp_cv_;
  bool cp_stop_ = false;
  bool cp_kick_ = false;  ///< log-full callback requests an urgent run
  std::thread checkpoint_thread_;
  std::atomic<Lsn> last_cp_tail_{0};  ///< log tail at the last checkpoint

  RecoveryStats last_recovery_stats_;
};

}  // namespace bess

#endif  // BESS_OBJECT_DATABASE_H_
