// Primitive events and hook functions (paper §2.4).
//
// "Programmers have controlled access to a number of entry points in the
// system via the notion of primitive events and hook functions. BeSS traps
// primitive events as they occur and causes the associated hooks to be
// executed." Hooks are registered before persistent data is accessed and
// let users extend BeSS (statistics, compression of large objects, fixing
// hidden C++ pointers, ...) without touching application or BeSS internals.
#ifndef BESS_HOOKS_HOOKS_H_
#define BESS_HOOKS_HOOKS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace bess {

/// The primitive events BeSS traps (paper §2.4 lists segment fault or
/// replacement, database open, locking, transaction commit, deadlocks, and
/// the hardware protection-violation signals).
enum class Event : int {
  kSegmentFault = 0,     ///< a reserved segment range was touched
  kSegmentFetch,         ///< segment bytes were brought into memory
  kSegmentReplace,       ///< a cache slot / mapping was evicted
  kDatabaseOpen,
  kDatabaseClose,
  kLockAcquire,
  kLockRelease,
  kTransactionBegin,
  kTransactionCommit,
  kTransactionAbort,
  kDeadlock,
  kProtectionViolation,  ///< SIGSEGV/SIGBUS on a write-protected structure
  kObjectCreate,
  kObjectDelete,
  kLargeObjectStore,     ///< very large object segment about to be written
  kLargeObjectFetch,     ///< very large object segment just read
  kEventCount            // sentinel
};

const char* EventName(Event e);

/// Context passed to hooks. Fields are event-specific; unused ones are 0.
struct EventContext {
  uint64_t a = 0;  ///< e.g. packed SegmentId, lock resource, txn id
  uint64_t b = 0;  ///< e.g. page number, lock mode
  void* ptr = nullptr;            ///< e.g. faulting address
  std::string* buffer = nullptr;  ///< kLargeObjectStore/Fetch: mutable bytes
};

/// A hook. Returning a non-OK status from a *filtering* event
/// (kLargeObjectStore/Fetch) aborts the triggering operation; for purely
/// observational events the status is ignored.
using Hook = std::function<Status(Event, const EventContext&)>;

/// Registry of hooks, one chain per event. Thread-safe. Dispatch on the hot
/// path is a single atomic load when no hook is registered.
class HookRegistry {
 public:
  static HookRegistry& Instance();

  /// Registers a hook for one event; returns a registration id.
  uint64_t Register(Event e, Hook hook);

  /// Removes a registration.
  void Unregister(uint64_t id);

  /// Removes all hooks (tests).
  void Clear();

  /// True when at least one hook is attached to `e` (cheap).
  bool HasHooks(Event e) const {
    return counts_[static_cast<int>(e)].load(std::memory_order_relaxed) > 0;
  }

  /// Invokes every hook registered for `e` in registration order; returns
  /// the first non-OK status (after running remaining hooks is skipped).
  Status Fire(Event e, const EventContext& ctx);

  /// Total number of hook invocations (bench metric).
  uint64_t dispatch_count() const {
    return dispatches_.load(std::memory_order_relaxed);
  }

 private:
  HookRegistry() = default;

  struct Entry {
    uint64_t id;
    Hook hook;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> chains_[static_cast<int>(Event::kEventCount)];
  std::atomic<int> counts_[static_cast<int>(Event::kEventCount)] = {};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> dispatches_{0};
};

/// Convenience: fire an event if any hook is attached.
inline Status FireEvent(Event e, const EventContext& ctx) {
  HookRegistry& reg = HookRegistry::Instance();
  if (!reg.HasHooks(e)) return Status::OK();
  return reg.Fire(e, ctx);
}

}  // namespace bess

#endif  // BESS_HOOKS_HOOKS_H_
