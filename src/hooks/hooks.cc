#include "hooks/hooks.h"

namespace bess {

const char* EventName(Event e) {
  switch (e) {
    case Event::kSegmentFault: return "segment_fault";
    case Event::kSegmentFetch: return "segment_fetch";
    case Event::kSegmentReplace: return "segment_replace";
    case Event::kDatabaseOpen: return "database_open";
    case Event::kDatabaseClose: return "database_close";
    case Event::kLockAcquire: return "lock_acquire";
    case Event::kLockRelease: return "lock_release";
    case Event::kTransactionBegin: return "transaction_begin";
    case Event::kTransactionCommit: return "transaction_commit";
    case Event::kTransactionAbort: return "transaction_abort";
    case Event::kDeadlock: return "deadlock";
    case Event::kProtectionViolation: return "protection_violation";
    case Event::kObjectCreate: return "object_create";
    case Event::kObjectDelete: return "object_delete";
    case Event::kLargeObjectStore: return "large_object_store";
    case Event::kLargeObjectFetch: return "large_object_fetch";
    case Event::kEventCount: break;
  }
  return "unknown";
}

HookRegistry& HookRegistry::Instance() {
  static HookRegistry* instance = new HookRegistry();
  return *instance;
}

uint64_t HookRegistry::Register(Event e, Hook hook) {
  std::lock_guard<std::mutex> guard(mutex_);
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  chains_[static_cast<int>(e)].push_back(Entry{id, std::move(hook)});
  counts_[static_cast<int>(e)].fetch_add(1, std::memory_order_relaxed);
  return id;
}

void HookRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> guard(mutex_);
  for (int e = 0; e < static_cast<int>(Event::kEventCount); ++e) {
    auto& chain = chains_[e];
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i].id == id) {
        chain.erase(chain.begin() + static_cast<long>(i));
        counts_[e].fetch_sub(1, std::memory_order_relaxed);
        return;
      }
    }
  }
}

void HookRegistry::Clear() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (int e = 0; e < static_cast<int>(Event::kEventCount); ++e) {
    chains_[e].clear();
    counts_[e].store(0, std::memory_order_relaxed);
  }
}

Status HookRegistry::Fire(Event e, const EventContext& ctx) {
  // Copy the chain so hooks may (un)register hooks without deadlock.
  std::vector<Entry> chain;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    chain = chains_[static_cast<int>(e)];
  }
  for (const Entry& entry : chain) {
    dispatches_.fetch_add(1, std::memory_order_relaxed);
    Status s = entry.hook(e, ctx);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace bess
